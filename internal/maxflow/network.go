// Package maxflow implements exact maximum-flow / minimum-cut computation
// over rational capacities.
//
// The BD Allocation Mechanism (Definition 5 of the paper) and the parametric
// search for maximal bottlenecks both reduce to max-flow instances whose
// capacities are exact rationals and whose results feed exact comparisons,
// so the solvers here work entirely in numeric.Rat arithmetic. Three solvers
// are provided — Dinic's algorithm, FIFO push–relabel, and the Edmonds–Karp
// baseline — sharing one network representation; the experiment harness
// ablates them against each other (experiment E12).
//
// Infinite capacities (used for the "selector → covered" arcs of the
// bottleneck network and the B_i × C_i arcs of the allocation network) are
// replaced at solve time by a finite bound exceeding the total finite
// capacity; this preserves the max-flow value and every finite min-cut.
package maxflow

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Cap is an arc capacity: either a finite non-negative rational or +∞.
type Cap struct {
	v   numeric.Rat
	inf bool
}

// Finite returns a finite capacity. It panics if r < 0.
func Finite(r numeric.Rat) Cap {
	if r.Sign() < 0 {
		panic("maxflow: negative capacity")
	}
	return Cap{v: r}
}

// Inf is the infinite capacity.
var Inf = Cap{inf: true}

// IsInf reports whether c is infinite.
func (c Cap) IsInf() bool { return c.inf }

// Value returns the finite value of c; it panics on Inf.
func (c Cap) Value() numeric.Rat {
	if c.inf {
		panic("maxflow: Value of infinite capacity")
	}
	return c.v
}

// String formats the capacity.
func (c Cap) String() string {
	if c.inf {
		return "inf"
	}
	return c.v.String()
}

// arc is half of an undirected residual pair; arcs are stored in pairs
// (i, i^1) where i^1 is the reverse arc.
type arc struct {
	to   int
	cap  numeric.Rat // solved capacity (infinities already replaced)
	inf  bool        // declared infinite by the caller
	flow numeric.Rat
}

// Network is a directed flow network with a distinguished source and sink.
// Build it with AddEdge, then call Solve (or a solver-specific method).
type Network struct {
	n      int
	s, t   int
	arcs   []arc
	adj    [][]int // arc indices leaving each node
	solved bool
	pushes int64 // elementary pushes performed by the last solve
	// inj is the fault injector cached from SolveCtx's context so the push
	// hot loop pays one nil check instead of a context lookup per push. A
	// Network serves one solve at a time (pushes is not atomic), so a plain
	// field is safe.
	inj *fault.Injector
}

// NewNetwork returns a network with n nodes, source s and sink t.
func NewNetwork(n, s, t int) *Network {
	if n < 2 || s < 0 || s >= n || t < 0 || t >= n || s == t {
		panic(fmt.Sprintf("maxflow: bad network parameters n=%d s=%d t=%d", n, s, t))
	}
	return &Network{n: n, s: s, t: t, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// Source returns the source node.
func (nw *Network) Source() int { return nw.s }

// Sink returns the sink node.
func (nw *Network) Sink() int { return nw.t }

// AddEdge adds a directed arc u → v with capacity c and returns its edge id,
// usable with Flow after solving.
func (nw *Network) AddEdge(u, v int, c Cap) int {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		panic(fmt.Sprintf("maxflow: arc (%d,%d) out of range", u, v))
	}
	if nw.solved {
		panic("maxflow: AddEdge after solving")
	}
	id := len(nw.arcs)
	nw.arcs = append(nw.arcs, arc{to: v, cap: c.v, inf: c.inf})
	nw.adj[u] = append(nw.adj[u], id)
	nw.arcs = append(nw.arcs, arc{to: u})
	nw.adj[v] = append(nw.adj[v], id+1)
	return id
}

// Flow returns the flow on the arc with the given edge id after solving.
func (nw *Network) Flow(id int) numeric.Rat {
	if id < 0 || id >= len(nw.arcs) || id%2 != 0 {
		panic("maxflow: bad edge id")
	}
	return nw.arcs[id].flow
}

// finiteBound returns a value strictly larger than the sum of all finite
// capacities; substituting it for Inf preserves max flow and finite min cuts.
func (nw *Network) finiteBound() numeric.Rat {
	total := numeric.One
	for i := 0; i < len(nw.arcs); i += 2 {
		if !nw.arcs[i].inf {
			total = total.Add(nw.arcs[i].cap)
		}
	}
	return total
}

// prepare substitutes infinite capacities and resets flows.
func (nw *Network) prepare() {
	bound := nw.finiteBound()
	for i := 0; i < len(nw.arcs); i += 2 {
		if nw.arcs[i].inf {
			nw.arcs[i].cap = bound
		}
		nw.arcs[i].flow = numeric.Zero
		nw.arcs[i+1].flow = numeric.Zero
	}
	nw.pushes = 0
	nw.solved = true
}

// residual returns the residual capacity of arc id.
func (nw *Network) residual(id int) numeric.Rat {
	return nw.arcs[id].cap.Sub(nw.arcs[id].flow)
}

// push sends f along arc id (and -f along its reverse). The flow kernels
// cannot return errors mid-augmentation, so the fault site escalates error
// injections to panics (StrikePanic); the containment barriers up the stack
// convert them back into structured errors.
func (nw *Network) push(id int, f numeric.Rat) {
	if nw.inj != nil {
		nw.inj.StrikePanic(fault.SiteMaxflowPush)
	}
	nw.arcs[id].flow = nw.arcs[id].flow.Add(f)
	nw.arcs[id^1].flow = nw.arcs[id^1].flow.Sub(f)
	nw.pushes++
}

// Pushes returns the number of elementary flow pushes performed by the most
// recent solve — a machine-independent work measure for traces and
// benchmark tables.
func (nw *Network) Pushes() int64 { return nw.pushes }

// Algorithm selects a max-flow solver.
type Algorithm int

const (
	// Dinic is Dinic's blocking-flow algorithm (the default).
	Dinic Algorithm = iota
	// PushRelabel is FIFO push–relabel.
	PushRelabel
	// EdmondsKarp is the shortest-augmenting-path baseline.
	EdmondsKarp
)

// String names the algorithm for benchmark tables.
func (a Algorithm) String() string {
	switch a {
	case Dinic:
		return "dinic"
	case PushRelabel:
		return "push-relabel"
	case EdmondsKarp:
		return "edmonds-karp"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Solve computes a maximum s-t flow with the chosen algorithm and returns
// its value. The network may be re-solved; flows are reset each time.
func (nw *Network) Solve(algo Algorithm) numeric.Rat {
	nw.prepare()
	switch algo {
	case Dinic:
		return nw.dinic()
	case PushRelabel:
		return nw.pushRelabel()
	case EdmondsKarp:
		return nw.edmondsKarp()
	default:
		panic(fmt.Sprintf("maxflow: unknown algorithm %d", int(algo)))
	}
}

// SolveCtx is Solve with the solve recorded as a span on the context's
// trace: one "maxflow.solve" span per call, annotated with the algorithm
// and the network size plus the push count as counters. It also latches the
// context's fault injector (if any) onto the network for the duration of
// the solve, arming the maxflow.push site. With no span and no injector on
// the context it is exactly Solve.
func (nw *Network) SolveCtx(ctx context.Context, algo Algorithm) numeric.Rat {
	nw.inj = fault.FromContext(ctx)
	defer func() { nw.inj = nil }()
	_, sp := obs.Start(ctx, "maxflow.solve")
	if sp == nil {
		return nw.Solve(algo)
	}
	defer sp.End()
	sp.SetAttr("algo", algo.String())
	v := nw.Solve(algo)
	sp.AddInt("nodes", int64(nw.n))
	sp.AddInt("arcs", int64(len(nw.arcs)/2))
	sp.AddInt("pushes", nw.pushes)
	return v
}

// CheckConservation verifies flow conservation and capacity constraints
// after solving; it returns an error describing the first violation. Used
// by tests and by the allocation mechanism's internal audits.
func (nw *Network) CheckConservation() error {
	if !nw.solved {
		return fmt.Errorf("maxflow: network not solved")
	}
	excess := make([]numeric.Rat, nw.n)
	for u := 0; u < nw.n; u++ {
		for _, id := range nw.adj[u] {
			if id%2 != 0 {
				continue
			}
			a := nw.arcs[id]
			if a.flow.Sign() < 0 {
				return fmt.Errorf("maxflow: negative flow on arc %d", id)
			}
			if a.flow.Cmp(a.cap) > 0 {
				return fmt.Errorf("maxflow: arc %d overfull: %v > %v", id, a.flow, a.cap)
			}
			excess[u] = excess[u].Sub(a.flow)
			excess[a.to] = excess[a.to].Add(a.flow)
		}
	}
	for v := 0; v < nw.n; v++ {
		if v == nw.s || v == nw.t {
			continue
		}
		if !excess[v].IsZero() {
			return fmt.Errorf("maxflow: node %d violates conservation by %v", v, excess[v])
		}
	}
	if !excess[nw.t].Equal(excess[nw.s].Neg()) {
		return fmt.Errorf("maxflow: source/sink excess mismatch: %v vs %v", excess[nw.s], excess[nw.t])
	}
	return nil
}

package cert_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cert"
)

// FuzzCertRoundTrip fuzzes the checker with arbitrary bytes and pins the
// canonicalization property: any certificate that decodes and passes Check
// must survive encode → decode → Check → encode with bit-identical bytes
// after the first re-encode. Only cert and encoding/json are exercised —
// the fuzzer probes the verifier's parsing hardening (malformed rationals,
// hostile covers, outsized literals), never solver code.
func FuzzCertRoundTrip(f *testing.F) {
	// Minimal hand-built seeds; richer solver-built certificates live in
	// testdata/fuzz/FuzzCertRoundTrip (regenerate with TestRegenerateFuzzCorpus).
	f.Add([]byte(`{"schema":"bd-cert/v1","instance":{"n":1,"weights":["1"],"edges":null},"pairs":[{"b":[0],"c":[],"alpha":"0"}],"utilities":["0"]}`))
	f.Add([]byte(`{"schema":"bd-cert/v1","instance":{"n":2,"weights":["1","1"],"edges":[[0,1]]},"pairs":[{"b":[0,1],"c":[0,1],"alpha":"1","witness":[{"from":0,"to":1,"flow":"1"},{"from":1,"to":0,"flow":"1"}]}],"utilities":["1","1"]}`))
	f.Add([]byte(`{"schema":"ratio-cert/v1"}`))
	f.Add([]byte(`{"schema":"sweep-cert/v1","grid":0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var probe struct {
			Schema string `json:"schema"`
		}
		if json.Unmarshal(data, &probe) != nil {
			return
		}
		var c cert.Checkable
		var fresh func() cert.Checkable
		switch probe.Schema {
		case cert.SchemaDecomposition:
			c = new(cert.DecompositionCert)
			fresh = func() cert.Checkable { return new(cert.DecompositionCert) }
		case cert.SchemaRatio:
			c = new(cert.RatioCert)
			fresh = func() cert.Checkable { return new(cert.RatioCert) }
		case cert.SchemaSweep:
			c = new(cert.SweepCert)
			fresh = func() cert.Checkable { return new(cert.SweepCert) }
		default:
			return
		}
		if json.Unmarshal(data, c) != nil {
			return
		}
		if cert.Check(c) != nil {
			return // rejection is fine; we fuzz for panics and instability
		}
		b1, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal of checked certificate: %v", err)
		}
		d := fresh()
		if err := json.Unmarshal(b1, d); err != nil {
			t.Fatalf("re-decode of checked certificate: %v", err)
		}
		if err := cert.Check(d); err != nil {
			t.Fatalf("re-decoded certificate fails check: %v", err)
		}
		b2, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round trip not bit-identical:\n%s\n%s", b1, b2)
		}
	})
}

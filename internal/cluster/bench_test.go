// Router overhead benchmarks, recorded by ci.sh into BENCH_cluster.json:
// the same sustained /v1/ratio load driven directly against one backend and
// through the router in front of it. The rps delta is the cost of one
// placement decision plus one proxied hop.
package cluster

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

func benchNode(b *testing.B) string {
	b.Helper()
	srv, err := server.New(server.Config{Logger: discardLogger(), MaxQueueDepth: -1, NodeID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

func benchReqs() []client.RatioRequest {
	rings := [][]string{
		{"1", "2", "3", "4", "5"},
		{"7/2", "1", "1/3", "9", "2", "2"},
		{"100", "1", "1", "1", "1", "1", "1", "1"},
		{"3", "1", "2", "1", "5"},
	}
	reqs := make([]client.RatioRequest, len(rings))
	for i, ws := range rings {
		reqs[i] = client.RatioRequest{Graph: client.Graph{Ring: ws}, V: i % len(ws), Grid: 16}
	}
	return reqs
}

func runRatioLoad(b *testing.B, base string) {
	c := client.New(base,
		client.WithMaxAttempts(8),
		client.WithBackoff(time.Millisecond, 50*time.Millisecond),
		client.WithSeed(7))
	ctx := context.Background()
	reqs := benchReqs()
	for i := range reqs {
		if _, err := c.Ratio(ctx, &reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := reqs[int(next.Add(1))%len(reqs)]
			if _, err := c.Ratio(ctx, &req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "rps")
	}
}

// BenchmarkDirectRatioRPS is the baseline: the load against the backend.
func BenchmarkDirectRatioRPS(b *testing.B) {
	runRatioLoad(b, benchNode(b))
}

// BenchmarkRouterProxiedRatioRPS is the same load through a single-node
// router: pure coordination overhead, no failover in the loop.
func BenchmarkRouterProxiedRatioRPS(b *testing.B) {
	backend := benchNode(b)
	r, err := New(Config{
		Nodes:         []string{backend},
		ProbeInterval: 100 * time.Millisecond,
		Logger:        discardLogger(),
		TraceBuffer:   -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r.Start()
	ts := httptest.NewServer(r.Handler())
	b.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	runRatioLoad(b, ts.URL)
}

package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/bottleneck"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
)

// OptimizeOptions tunes the split optimizer. Zero values select defaults.
type OptimizeOptions struct {
	// Grid is the number of initial uniform samples of w1 over [0, w_v]
	// (default 64).
	Grid int
	// BisectIters bounds the exact bisection refining each decomposition
	// breakpoint (default 48, i.e. breakpoints located to w_v/2^48).
	BisectIters int
	// SampleK is the number of exact interior samples per piece used to
	// validate the piece's closed-form model (default 3).
	SampleK int
	// GoldenIters bounds the golden-section refinement per piece
	// (default 80; it runs on the exact closed-form formula in float64, so
	// iterations are cheap).
	GoldenIters int
	// Workers is the parallel worker count for the grid phase (≤ 0 =
	// GOMAXPROCS).
	Workers int
	// DisableEvalCache turns off the Instance's (w1, w2) → PathEval
	// memoization for this optimization run, forcing every grid point,
	// bisection probe and piece sample to decompose from scratch. A
	// benchmarking knob; results are identical either way.
	DisableEvalCache bool
	// DisableIncremental turns off the incremental split engine for this
	// run, so fresh evaluations use a stock per-call DecomposeWith — the
	// pre-optimization baseline. A benchmarking knob; results are identical
	// either way.
	DisableIncremental bool
}

func (o OptimizeOptions) withDefaults() OptimizeOptions {
	if o.Grid <= 0 {
		o.Grid = 64
	}
	if o.BisectIters <= 0 {
		o.BisectIters = 48
	}
	if o.SampleK <= 0 {
		o.SampleK = 3
	}
	if o.GoldenIters <= 0 {
		o.GoldenIters = 80
	}
	return o
}

// Piece describes one maximal interval of splits sharing a decomposition
// structure (the ⟨a_i, b_i⟩ intervals of Section III-B) together with the
// best split found inside it.
type Piece struct {
	Lo, Hi    numeric.Rat
	Signature string
	ClassV1   bottleneck.Class
	ClassV2   bottleneck.Class
	SamePair  bool
	// FormulaOK reports that the closed-form Möbius model of the piece
	// matched exact evaluations at the validation samples.
	FormulaOK bool
	BestW1    numeric.Rat
	BestU     numeric.Rat
}

// OptResult is the outcome of the split optimization.
type OptResult struct {
	// BestW1 maximizes U_{v¹}(w1, w_v−w1) + U_{v²}(w1, w_v−w1) over the
	// evaluated candidates; BestEval is its full (exact) evaluation.
	BestW1   numeric.Rat
	BestU    numeric.Rat
	BestEval *PathEval
	// Ratio = BestU / HonestU (1 when both are zero).
	Ratio numeric.Rat
	// Pieces is the certificate: the decomposition-structure intervals
	// discovered, in order.
	Pieces []Piece
	// Evals counts exact path evaluations performed.
	Evals int
}

// Optimize searches for the attacker's best two-identity split.
//
// Within a piece (fixed decomposition structure) each identity's utility is
// an explicit Möbius function of w1 — w1·P/(Q+w1) with exact rational
// constants read off the pair containing it — so the per-piece objective is
// maximized on its closed form (concave for distinct pairs) and the winner
// is re-evaluated exactly. Every reported number is therefore an exactly
// evaluated split: the result is a certified lower bound of ζ_v, tight to
// the optimizer's resolution. Theorem 8 caps it at 2, which callers can
// check with exact arithmetic.
func (in *Instance) Optimize(opts OptimizeOptions) (*OptResult, error) {
	return in.OptimizeCtx(context.Background(), opts)
}

// OptimizeCtx is Optimize with cancellation: the context is consulted by
// every exact evaluation (grid points, bisection probes, piece samples), so
// a canceled optimization aborts between decompositions with ctx.Err() and
// leaves the Instance's shared caches consistent.
func (in *Instance) OptimizeCtx(ctx context.Context, opts OptimizeOptions) (*OptResult, error) {
	opts = opts.withDefaults()
	ctx, span := obs.Start(ctx, "core.optimize")
	defer span.End()
	if span != nil {
		span.SetAttr("grid", strconv.Itoa(opts.Grid))
	}
	res := &OptResult{}
	defer func() { span.AddInt("evals", int64(res.Evals)) }()
	in.SetEvalCache(!opts.DisableEvalCache)
	in.SetIncremental(!opts.DisableIncremental)
	W := in.W()
	if W.IsZero() {
		ev, err := in.EvalSplitCtx(ctx, numeric.Zero)
		if err != nil {
			return nil, err
		}
		res.BestEval, res.BestU, res.Ratio = ev, ev.U, numeric.One
		res.Evals = 1
		return res, nil
	}

	// Phase 1: uniform grid, evaluated in parallel.
	type sample struct {
		w1 numeric.Rat
		ev *PathEval
	}
	grid := make([]sample, opts.Grid+1)
	gctx, gspan := obs.Start(ctx, "optimize.grid")
	errs := par.MapCtx(gctx, len(grid), opts.Workers, func(ctx context.Context, i int) error {
		w1 := W.MulInt(int64(i)).DivInt(int64(opts.Grid))
		ev, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			return err
		}
		grid[i] = sample{w1: w1, ev: ev}
		return nil
	})
	gspan.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Evals += len(grid)

	// Phase 2: locate breakpoints between samples with different structure
	// signatures by exact rational bisection, then try to snap the bracket
	// onto the exact breakpoint (the simplest rational inside it — these
	// boundaries are ratios of weight sums). A successful snap collapses
	// one side of the bracket, so the adjoining piece is represented by its
	// true closed endpoint and later exact evaluations (per-piece bests,
	// stage analysis) see clean rationals instead of 2^-48 dust.
	type boundary struct{ lo, hi numeric.Rat }
	var cuts []boundary
	bctx, bspan := obs.Start(ctx, "optimize.breakpoints")
	for i := 0; i+1 < len(grid); i++ {
		if grid[i].ev.Signature == grid[i+1].ev.Signature {
			continue
		}
		lo, hi := grid[i].w1, grid[i+1].w1
		sigLo := grid[i].ev.Signature
		sigHi := grid[i+1].ev.Signature
		for it := 0; it < opts.BisectIters; it++ {
			mid := lo.Add(hi).DivInt(2)
			ev, err := in.EvalSplitCtx(bctx, mid)
			if err != nil {
				bspan.End()
				return nil, err
			}
			res.Evals++
			if ev.Signature == sigLo {
				lo = mid
			} else {
				hi, sigHi = mid, ev.Signature
			}
		}
		if lo.Less(hi) {
			cand := numeric.SimplestBetween(lo, hi)
			ev, err := in.EvalSplitCtx(bctx, cand)
			if err != nil {
				bspan.End()
				return nil, err
			}
			res.Evals++
			switch ev.Signature {
			case sigLo:
				lo = cand
			case sigHi:
				hi = cand
			}
		}
		cuts = append(cuts, boundary{lo: lo, hi: hi})
	}
	bspan.AddInt("breakpoints", int64(len(cuts)))
	bspan.End()

	// Phase 3: assemble pieces [prev.hi, next.lo] and optimize within each.
	edges := []numeric.Rat{numeric.Zero}
	for _, c := range cuts {
		edges = append(edges, c.lo, c.hi)
	}
	edges = append(edges, W)
	sort.Slice(edges, func(i, j int) bool { return edges[i].Less(edges[j]) })

	// Seed with the honest split so that ties prefer it: when several splits
	// are optimal (e.g. ratio-1 instances, where Lemma 9 makes the honest
	// split itself optimal), the paper's stage analysis presumes the
	// "arbitrary" optimal pick is the trivial one. An arbitrary equal-value
	// w1* would send AnalyzeStages on a walk between two optima, where the
	// per-stage sign lemmas legitimately fail.
	pctx, pspan := obs.Start(ctx, "optimize.pieces")
	evHonest, err := in.EvalSplitCtx(pctx, in.W1Zero)
	if err != nil {
		pspan.End()
		return nil, err
	}
	res.Evals++
	res.BestEval, res.BestU, res.BestW1 = evHonest, evHonest.U, in.W1Zero
	best := func(w1 numeric.Rat, ev *PathEval) {
		if res.BestU.Less(ev.U) {
			res.BestEval, res.BestU, res.BestW1 = ev, ev.U, w1
		}
	}
	for i := 0; i+1 < len(edges); i += 2 {
		piece, bestEv, evals, err := in.optimizePiece(pctx, edges[i], edges[i+1], W, opts)
		if err != nil {
			pspan.End()
			return nil, err
		}
		res.Evals += evals
		res.Pieces = append(res.Pieces, *piece)
		best(piece.BestW1, bestEv)
	}
	// The breakpoints themselves are legal splits too.
	for _, c := range cuts {
		for _, w1 := range []numeric.Rat{c.lo, c.hi} {
			ev, err := in.EvalSplitCtx(pctx, w1)
			if err != nil {
				pspan.End()
				return nil, err
			}
			res.Evals++
			best(w1, ev)
		}
	}
	pspan.AddInt("pieces", int64(len(res.Pieces)))
	pspan.End()

	switch {
	case in.HonestU.Sign() > 0:
		res.Ratio = res.BestU.Div(in.HonestU)
	case res.BestU.Sign() > 0:
		return nil, fmt.Errorf("core: positive attack utility %v from zero honest utility", res.BestU)
	default:
		res.Ratio = numeric.One
	}
	return res, nil
}

// optimizePiece finds the best split inside [lo, hi] (one structure piece).
func (in *Instance) optimizePiece(ctx context.Context, lo, hi, W numeric.Rat, opts OptimizeOptions) (*Piece, *PathEval, int, error) {
	evals := 0
	mid := lo.Add(hi).DivInt(2)
	evMid, err := in.EvalSplitCtx(ctx, mid)
	if err != nil {
		return nil, nil, evals, err
	}
	evals++
	p := &Piece{
		Lo: lo, Hi: hi,
		Signature: evMid.Signature,
		ClassV1:   evMid.Dec.ClassOf(evMid.V1),
		ClassV2:   evMid.Dec.ClassOf(evMid.V2),
		SamePair:  evMid.Dec.PairIndexOf(evMid.V1) == evMid.Dec.PairIndexOf(evMid.V2),
		BestW1:    mid,
		BestU:     evMid.U,
	}
	var bestEv = evMid

	consider := func(w1 numeric.Rat) error {
		if w1.Less(lo) || hi.Less(w1) {
			return nil
		}
		ev, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			return err
		}
		evals++
		if p.BestU.Less(ev.U) {
			p.BestU, p.BestW1, bestEv = ev.U, w1, ev
		}
		return nil
	}
	if err := consider(lo); err != nil {
		return nil, nil, evals, err
	}
	if err := consider(hi); err != nil {
		return nil, nil, evals, err
	}

	// Build and validate the closed-form model of this piece.
	formula := pieceFormula(evMid, W)
	span := hi.Sub(lo)
	p.FormulaOK = true
	for k := 1; k <= opts.SampleK; k++ {
		w1 := lo.Add(span.MulInt(int64(k)).DivInt(int64(opts.SampleK + 1)))
		ev, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			return nil, nil, evals, err
		}
		evals++
		if p.BestU.Less(ev.U) {
			p.BestU, p.BestW1, bestEv = ev.U, w1, ev
		}
		got, want := formula(w1.Float64()), ev.U.Float64()
		if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
			p.FormulaOK = false
		}
	}

	if p.FormulaOK {
		// Golden-section on the closed form (cheap float evaluations), then
		// one exact evaluation at the winner.
		x := goldenMax(formula, lo.Float64(), hi.Float64(), opts.GoldenIters)
		if err := consider(snap(x, lo, hi)); err != nil {
			return nil, nil, evals, err
		}
	} else {
		// Fall back to a denser exact sweep.
		for k := 1; k <= 16; k++ {
			w1 := lo.Add(span.MulInt(int64(k)).DivInt(17))
			if err := consider(w1); err != nil {
				return nil, nil, evals, err
			}
		}
	}
	return p, bestEv, evals, nil
}

// goldenMax maximizes f over [a, b] by dense seeding plus golden-section.
func goldenMax(f func(float64) float64, a, b float64, iters int) float64 {
	const seeds = 64
	bestX, bestF := a, f(a)
	for i := 1; i <= seeds; i++ {
		x := a + (b-a)*float64(i)/float64(seeds+1)
		if v := f(x); v > bestF {
			bestX, bestF = x, v
		}
	}
	if v := f(b); v > bestF {
		bestX, bestF = b, v
	}
	// Golden-section around the best seed.
	h := (b - a) / float64(seeds+1)
	lo, hi := math.Max(a, bestX-h), math.Min(b, bestX+h)
	phi := (math.Sqrt(5) - 1) / 2
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := f(x1), f(x2)
	for it := 0; it < iters && hi-lo > 1e-15*(b-a+1); it++ {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = f(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = f(x1)
		}
	}
	mid := (lo + hi) / 2
	if f(mid) > bestF {
		return mid
	}
	return bestX
}

// snap converts a float candidate into an exact rational clamped to
// [lo, hi].
func snap(x float64, lo, hi numeric.Rat) numeric.Rat {
	if math.IsNaN(x) {
		return lo
	}
	r := numeric.Approximate(x, 1_000_000_007)
	if r.Less(lo) {
		return lo
	}
	if hi.Less(r) {
		return hi
	}
	return r
}

// pieceFormula builds the closed-form total utility of a piece as a float
// function of w1, from the exact pair data at the piece midpoint. Within a
// piece only w1 and w2 = W−w1 vary, so each identity's utility is:
//
//	class C (pair j):  U = w·w(B_j) / (w(C_j∖{id}) + w)
//	class B (pair j):  U = w·w(C_j) / (w(B_j∖{id}) + w)
//	class B=C:         U = w                            (α = 1)
//
// with the other identity's weight folded into the constants when both live
// in the same pair (where it appears as W − w1, still leaving a rational
// function of w1 alone).
func pieceFormula(ev *PathEval, W numeric.Rat) func(float64) float64 {
	Wf := W.Float64()
	i1, i2 := ev.Dec.PairIndexOf(ev.V1), ev.Dec.PairIndexOf(ev.V2)
	c1, c2 := ev.Dec.ClassOf(ev.V1), ev.Dec.ClassOf(ev.V2)

	pairW := func(idx int) (wB, wC float64) {
		pair := ev.Dec.Pairs[idx]
		b, c := numeric.Zero, numeric.Zero
		for _, u := range pair.B {
			b = b.Add(ev.Path.Weight(u))
		}
		for _, u := range pair.C {
			c = c.Add(ev.Path.Weight(u))
		}
		return b.Float64(), c.Float64()
	}

	if i1 == i2 {
		wB, wC := pairW(i1)
		w1m, w2m := ev.W1.Float64(), ev.W2.Float64()
		switch {
		case c1 == bottleneck.ClassBoth && c2 == bottleneck.ClassBoth:
			return func(float64) float64 { return Wf }
		case c1.IsC() && c2.IsC():
			// α = (w(C∖{v¹,v²}) + W)/w(B): constant in w1.
			kc := wC - w1m - w2m
			alpha := (kc + Wf) / wB
			return func(float64) float64 { return Wf / alpha }
		case c1.IsB() && c2.IsB():
			kb := wB - w1m - w2m
			alpha := wC / (kb + Wf)
			return func(float64) float64 { return Wf * alpha }
		case c1.IsB() && c2.IsC():
			kb, kc := wB-w1m, wC-w2m
			return func(w1 float64) float64 {
				alpha := (kc + Wf - w1) / (kb + w1)
				return w1*alpha + (Wf-w1)/alpha
			}
		default: // c1 C, c2 B
			kc, kb := wC-w1m, wB-w2m
			return func(w1 float64) float64 {
				alpha := (kc + w1) / (kb + Wf - w1)
				return w1/alpha + (Wf-w1)*alpha
			}
		}
	}

	single := func(idx int, cls bottleneck.Class, wm float64) func(float64) float64 {
		wB, wC := pairW(idx)
		switch {
		case cls == bottleneck.ClassBoth:
			return func(w float64) float64 { return w }
		case cls.IsC():
			q := wC - wm
			return func(w float64) float64 { return w * wB / (q + w) }
		default:
			q := wB - wm
			return func(w float64) float64 { return w * wC / (q + w) }
		}
	}
	u1 := single(i1, c1, ev.W1.Float64())
	u2 := single(i2, c2, ev.W2.Float64())
	return func(w1 float64) float64 { return u1(w1) + u2(Wf-w1) }
}

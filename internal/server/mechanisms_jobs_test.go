package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSweepJobMechanismScoped pins the durable-sweep side of the mechanism
// layer: a kind "sweep" job under a non-native backend completes with a
// Result bit-identical to the inline /v1/sweep of the same request, and
// content addressing keeps per-mechanism jobs distinct (no false dedupe).
func TestSweepJobMechanismScoped(t *testing.T) {
	_, ts := jobsTestServer(t)
	ring := WireGraph{Ring: []string{"3", "1", "2", "1", "5"}}

	resp, inline := jobsPost(t, ts.URL+"/v1/sweep", SweepRequest{Graph: ring, V: 0, Grid: 16, Mechanism: "eqsplit"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline sweep: %d %s", resp.StatusCode, inline)
	}

	resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 0, Grid: 16, Mechanism: "eqsplit"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	done := waitJobState(t, ts.URL, sub.Job.ID, "done")
	if got, want := strings.TrimSpace(string(done.Result)), strings.TrimSpace(string(inline)); got != want {
		t.Fatalf("job result diverges from inline sweep:\n got: %s\nwant: %s", got, want)
	}

	// The same sweep under bd is different work: it must enqueue a second
	// job, not dedupe against the eqsplit one.
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 0, Grid: 16})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bd submit after eqsplit: %d %s", resp.StatusCode, body)
	}
	var bdSub JobSubmitResponse
	if err := json.Unmarshal(body, &bdSub); err != nil {
		t.Fatal(err)
	}
	if bdSub.Deduped || bdSub.Job.ID == sub.Job.ID {
		t.Fatalf("bd sweep deduped against eqsplit job %s", sub.Job.ID)
	}

	// Resubmitting the eqsplit sweep is the same work: dedupe.
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 0, Grid: 16, Mechanism: "eqsplit"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var again JobSubmitResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Job.ID != sub.Job.ID {
		t.Fatalf("eqsplit resubmission did not dedupe: %+v", again)
	}

	// Unknown mechanisms fail at submission with the stable code.
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 0, Mechanism: "quantum"})
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || resp.StatusCode != http.StatusBadRequest || er.Code != CodeUnknownMechanism {
		t.Fatalf("unknown mechanism submit: %d %s", resp.StatusCode, body)
	}
}

// tournamentFixture is the durable-job tournament used by the tests below:
// two instances, two mechanisms, a grid big enough that a restart lands
// mid-run.
func tournamentFixture() TournamentRequest {
	return TournamentRequest{
		Instances: []TournamentWireInstance{
			{Graph: WireGraph{Ring: []string{"1", "3/2", "2", "1/2", "5", "7/3", "4"}}, V: 1},
			{Graph: WireGraph{Ring: []string{"9", "1", "1", "1", "1"}}, V: 0},
		},
		Mechanisms: []string{"bd", "eqsplit"},
		Grid:       96,
	}
}

// TestTournamentJobMatchesInline submits a kind "tournament" job and checks
// the durable Result against the inline /v1/tournament body — byte for
// byte — plus dedupe and progress accounting.
func TestTournamentJobMatchesInline(t *testing.T) {
	_, ts := jobsTestServer(t)
	req := tournamentFixture()

	resp, inline := jobsPost(t, ts.URL+"/v1/tournament", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline tournament: %d %s", resp.StatusCode, inline)
	}

	resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "tournament", Tournament: &req})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.Kind != "tournament" {
		t.Fatalf("job kind %q", sub.Job.Kind)
	}
	done := waitJobState(t, ts.URL, sub.Job.ID, "done")
	if done.TotalPoints != 4 {
		t.Fatalf("total points %d, want 4 (2 instances × 2 mechanisms)", done.TotalPoints)
	}
	if got, want := strings.TrimSpace(string(done.Result)), strings.TrimSpace(string(inline)); got != want {
		t.Fatalf("job result diverges from inline tournament:\n got: %s\nwant: %s", got, want)
	}

	// Equivalent submission — mechanisms spelled in a different order —
	// resolves to the same sorted set and dedupes.
	alt := req
	alt.Mechanisms = []string{"eqsplit", "bd"}
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "tournament", Tournament: &alt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var again JobSubmitResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Job.ID != sub.Job.ID {
		t.Fatalf("reordered tournament did not dedupe: %+v", again)
	}
}

// TestTournamentJobRecoveryAcrossServers is the restart drill of the
// acceptance criteria: a tournament job accepted by one server survives
// that server's death and completes on a successor over the same data dir
// with a Result identical to an uninterrupted inline run.
func TestTournamentJobRecoveryAcrossServers(t *testing.T) {
	dir := t.TempDir()
	req := tournamentFixture()

	srv1, ts1 := newTestServer(t, Config{DataDir: dir, MaxQueueDepth: -1})
	want := func() string {
		resp, body := jobsPost(t, ts1.URL+"/v1/tournament", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inline tournament: %d %s", resp.StatusCode, body)
		}
		return strings.TrimSpace(string(body))
	}()

	resp, body := jobsPost(t, ts1.URL+"/v1/jobs", JobSubmitRequest{Kind: "tournament", Tournament: &req})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	// Kill the first server while the job is (likely) mid-cell; Close blocks
	// until the worker has checkpointed and requeued.
	srv1.Close()

	srv2, ts2 := newTestServer(t, Config{DataDir: dir, MaxQueueDepth: -1})
	defer srv2.Close()
	done := waitJobState(t, ts2.URL, sub.Job.ID, "done")
	if got := strings.TrimSpace(string(done.Result)); got != want {
		t.Fatalf("recovered tournament diverges:\n got: %s\nwant: %s", got, want)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/client"
)

// marshalJSON renders v for a byte-level comparison.
func marshalJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestScenarioKillAndRecoverBitIdentical is the crash-recovery acceptance
// test of the scenario job kinds: a k-identity Sybil scan is started in a
// real child process, SIGKILLed mid-grid, and a fresh process over the same
// -data-dir must recover the scan from its WAL checkpoint and finish it
// bit-identically to an uninterrupted inline /v1/scenario of the same
// request. The jobs.wal.append latency fault slows checkpointing enough
// that the kill reliably lands mid-grid.
func TestScenarioKillAndRecoverBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	req := client.ScenarioRequest{
		Kind:  "ksybil",
		Graph: client.Graph{Ring: []string{"1", "3/2", "2", "5", "7/3", "4"}},
		V:     1, K: 3, Grid: 24, // 325 points — plenty of grid to die in
	}

	addr1 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	child1 := startChild(t, addr1, "-data-dir", dir,
		"-chaos", "jobs.wal.append=latency:1:10ms", "-chaos-allow")
	c1 := client.New("http://"+addr1, client.WithSeed(1))
	sub, err := c1.SubmitScenario(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Job.Kind != "ksybil" {
		t.Fatalf("submitted kind %q", sub.Job.Kind)
	}

	// Let the scan checkpoint a few grid points, then kill without ceremony.
	for {
		job, err := c1.GetJob(ctx, sub.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if client.JobTerminal(job.State) {
			t.Fatalf("job reached %q before the kill; grid too small", job.State)
		}
		if job.NextIndex >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := child1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child1.Wait() // "signal: killed" — the point of the test

	// A fresh process over the same data dir recovers and finishes the scan.
	addr2 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startChild(t, addr2, "-data-dir", dir)
	c2 := client.New("http://"+addr2, client.WithSeed(2))
	final, err := c2.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobDone {
		t.Fatalf("recovered job settled as %q (error %q)", final.State, final.Error)
	}
	if final.TotalPoints == 0 || final.NextIndex != final.TotalPoints {
		t.Fatalf("recovered job covered %d/%d points", final.NextIndex, final.TotalPoints)
	}

	// Bit-identical to the uninterrupted inline scan of the same request:
	// the job Result is the raw /v1/scenario body, so compare bytes.
	resp, err := c2.Scenario(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	fromJob, err := client.ScenarioResult(final)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KSybil == nil || fromJob.KSybil == nil {
		t.Fatalf("missing ksybil payloads: inline %+v, job %+v", resp, fromJob)
	}
	gotJSON, wantJSON := marshalJSON(t, fromJob), marshalJSON(t, resp)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("recovered result diverged from inline scan:\ngot:  %s\nwant: %s", gotJSON, wantJSON)
	}

	// Duplicate submission dedupes onto the finished job.
	dup, err := c2.SubmitScenario(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped || dup.Job.ID != sub.Job.ID {
		t.Fatalf("duplicate submission: %+v, want dedupe onto %s", dup, sub.Job.ID)
	}
}

package numeric

import (
	"math/big"
	"math/bits"
)

// bigRat aliases big.Rat so fallback paths read uniformly.
type bigRat = big.Rat

// Arithmetic operations. Every operation first attempts the int64 fast path
// and falls back to math/big on overflow; results are demoted back to the
// fast path whenever they fit, so chains of operations stay cheap.

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	if r.b == nil && s.b == nil {
		an, ad := r.parts()
		bn, bd := s.parts()
		// a/b + c/d = (a*d + c*b) / (b*d)
		if x, ok := mul64(an, bd); ok {
			if y, ok := mul64(bn, ad); ok {
				if n, ok := add64(x, y); ok {
					if d, ok := mul64(ad, bd); ok {
						return makeRat(n, d)
					}
				}
			}
		}
	}
	return demote(new(bigRat).Add(r.bigVal(), s.bigVal()))
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat {
	if r.b == nil {
		n, d := r.parts()
		// n is never MinInt64 by the representation invariant.
		return Rat{num: -n, den: d}
	}
	return demote(new(bigRat).Neg(r.b))
}

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	if r.b == nil && s.b == nil {
		an, ad := r.parts()
		bn, bd := s.parts()
		// Cross-reduce first so the fast path survives larger operands.
		g1 := gcd64(abs64(an), bd)
		g2 := gcd64(abs64(bn), ad)
		an, bd = an/g1, bd/g1
		bn, ad = bn/g2, ad/g2
		if n, ok := mul64(an, bn); ok {
			if d, ok := mul64(ad, bd); ok {
				return makeRat(n, d)
			}
		}
	}
	return demote(new(bigRat).Mul(r.bigVal(), s.bigVal()))
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("numeric: division by zero")
	}
	return r.Mul(s.Inv())
}

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat {
	if r.IsZero() {
		panic("numeric: inverse of zero")
	}
	if r.b == nil {
		n, d := r.parts()
		return makeRat(d, n)
	}
	return demote(new(bigRat).Inv(r.b))
}

// Cmp compares r and s and returns -1, 0 or +1.
//
// The fast path compares the cross products a·d′ and c·b′ as 128-bit
// integers (math/bits.Mul64), so comparisons of int64-backed rationals
// never fall back to big.Rat regardless of magnitude — comparisons are the
// single hottest operation in the decomposition DP.
func (r Rat) Cmp(s Rat) int {
	if r.b == nil && s.b == nil {
		an, ad := r.parts()
		bn, bd := s.parts()
		// Signs first: denominators are positive, so sign(r) = sign(an).
		sa, sb := sign64(an), sign64(bn)
		if sa != sb {
			if sa < sb {
				return -1
			}
			return 1
		}
		if sa == 0 {
			return 0
		}
		// Same non-zero sign: compare |an|·bd vs |bn|·ad in 128 bits and
		// flip for negatives.
		hi1, lo1 := bits.Mul64(uint64(abs64(an)), uint64(bd))
		hi2, lo2 := bits.Mul64(uint64(abs64(bn)), uint64(ad))
		cmp := 0
		switch {
		case hi1 != hi2:
			if hi1 < hi2 {
				cmp = -1
			} else {
				cmp = 1
			}
		case lo1 != lo2:
			if lo1 < lo2 {
				cmp = -1
			} else {
				cmp = 1
			}
		}
		return cmp * sa
	}
	return r.bigVal().Cmp(s.bigVal())
}

func sign64(x int64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Min returns the smaller of r and s.
func (r Rat) Min(s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Max returns the larger of r and s.
func (r Rat) Max(s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Sign() < 0 {
		return r.Neg()
	}
	return r
}

// MulInt returns r * n.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// DivInt returns r / n. It panics if n == 0.
func (r Rat) DivInt(n int64) Rat { return r.Div(FromInt(n)) }

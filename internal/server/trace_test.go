package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

// postTraced posts body and returns the status, raw body, and the trace id
// from the X-Trace-Id response header (0 when absent).
func postTraced(t *testing.T, base, path string, body any) (int, []byte, uint64) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	id, _ := strconv.ParseUint(resp.Header.Get("X-Trace-Id"), 10, 64)
	return resp.StatusCode, raw.Bytes(), id
}

// getTrace fetches /debug/trace?id= and decodes the snapshot on 200.
func getTrace(t *testing.T, base string, id uint64) (int, *obs.TraceSnapshot) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/debug/trace?id=%d", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	return resp.StatusCode, &snap
}

// TestRatioRequestTrace is the PR's acceptance criterion: with recording
// enabled, a /v1/ratio request yields a retrievable span tree whose stage
// durations account for (within 10%) the request's measured wall time, and
// whose compute stage links to the batched computation's own trace.
func TestRatioRequestTrace(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	ring := wireOf(mustRing(t, 15))

	status, raw, id := postTraced(t, ts.URL, "/v1/ratio", RatioRequest{Graph: ring, V: 1, Grid: 16})
	if status != http.StatusOK {
		t.Fatalf("ratio status %d: %s", status, raw)
	}
	if id == 0 {
		t.Fatal("no X-Trace-Id header on a traced endpoint")
	}

	code, snap := getTrace(t, ts.URL, id)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace?id=%d: status %d", id, code)
	}
	if snap.Name != "/v1/ratio" || snap.Root == nil {
		t.Fatalf("trace name %q root %v", snap.Name, snap.Root)
	}

	// The root's stage children must cover the request's wall time. The
	// root span IS the request (opened and finished by instrument), so it
	// is the noise-free wall-time reference.
	var stages time.Duration
	names := map[string]bool{}
	for _, ch := range snap.Root.Children {
		stages += ch.Duration
		names[ch.Name] = true
	}
	for _, want := range []string{"server.decode", "server.admit", "server.compute", "server.write"} {
		if !names[want] {
			t.Errorf("trace missing stage %q (have %v)", want, names)
		}
	}
	if stages < snap.Root.Duration*9/10 {
		t.Errorf("stage durations sum to %v, below 90%% of request wall time %v", stages, snap.Root.Duration)
	}
	if stages > snap.Root.Duration+snap.Root.Duration/10 {
		t.Errorf("stage durations sum to %v, above 110%% of request wall time %v", stages, snap.Root.Duration)
	}

	// The compute stage records which batched computation served it; that
	// trace is retrievable too and holds the solver span tree.
	compute := snap.Root.Find("server.compute")
	if compute.Counter("batch_joined")+compute.Counter("batch_opened") != 1 {
		t.Fatalf("compute span lacks a batch decision marker: %+v", compute.Counters)
	}
	batchID, err := strconv.ParseUint(compute.Attr("batch_trace"), 10, 64)
	if err != nil {
		t.Fatalf("compute span batch_trace attr %q: %v", compute.Attr("batch_trace"), err)
	}
	bsnap, ok := srv.Collector().Get(batchID)
	if !ok {
		t.Fatalf("batch trace %d not retrievable", batchID)
	}
	if bsnap.Root.Find("core.optimize") == nil {
		t.Fatalf("batch trace lacks the optimizer span tree: %v", bsnap.Root)
	}
}

// TestTraceEndpointMisses pins the /debug/trace failure modes: unknown and
// evicted ids 404 with a stable code, garbage ids 400, and a server with
// tracing disabled answers 404 without minting ids.
func TestTraceEndpointMisses(t *testing.T) {
	// Ring capacity 1: the second request evicts the first trace.
	_, ts := newTestServer(t, Config{TraceBuffer: 1})
	ring := WireGraph{Ring: []string{"1", "2", "3"}}
	_, _, id1 := postTraced(t, ts.URL, "/v1/utilities", UtilitiesRequest{Graph: ring})
	_, _, id2 := postTraced(t, ts.URL, "/v1/utilities", UtilitiesRequest{Graph: ring})
	if id1 == 0 || id2 == 0 {
		t.Fatalf("missing trace ids: %d, %d", id1, id2)
	}
	if code, _ := getTrace(t, ts.URL, id2); code != http.StatusOK {
		t.Fatalf("latest trace: status %d", code)
	}
	assertErrorCode(t, ts.URL, fmt.Sprintf("/debug/trace?id=%d", id1), http.StatusNotFound, CodeNotFound)
	assertErrorCode(t, ts.URL, fmt.Sprintf("/debug/trace?id=%d", id2+100), http.StatusNotFound, CodeNotFound)
	assertErrorCode(t, ts.URL, "/debug/trace?id=bogus", http.StatusBadRequest, CodeBadBody)

	// Tracing disabled: no ids are minted and the endpoint 404s cleanly.
	_, off := newTestServer(t, Config{TraceBuffer: -1})
	_, _, id := postTraced(t, off.URL, "/v1/utilities", UtilitiesRequest{Graph: ring})
	if id != 0 {
		t.Fatalf("disabled tracing still minted id %d", id)
	}
	assertErrorCode(t, off.URL, "/debug/trace?id=1", http.StatusNotFound, CodeNotFound)
}

// TestTraceRetentionExpiry: a trace older than TraceRetention answers 404.
func TestTraceRetentionExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRetention: time.Nanosecond})
	ring := WireGraph{Ring: []string{"1", "2", "3"}}
	_, _, id := postTraced(t, ts.URL, "/v1/utilities", UtilitiesRequest{Graph: ring})
	if id == 0 {
		t.Fatal("no trace id")
	}
	time.Sleep(time.Millisecond)
	assertErrorCode(t, ts.URL, fmt.Sprintf("/debug/trace?id=%d", id), http.StatusNotFound, CodeNotFound)
}

// assertErrorCode GETs path and asserts the structured error body.
func assertErrorCode(t *testing.T, base, path string, wantStatus int, wantCode string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode error body: %v", path, err)
	}
	if resp.StatusCode != wantStatus || body.Code != wantCode {
		t.Fatalf("GET %s: status %d code %q, want %d %q (message %q)",
			path, resp.StatusCode, body.Code, wantStatus, wantCode, body.Message)
	}
}

// TestStructuredErrorCodes walks every request-validation failure and pins
// its machine-readable code.
func TestStructuredErrorCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"1", "2", "3"}}
	path := WireGraph{Path: []string{"1", "2", "3"}}
	cases := []struct {
		name     string
		endpoint string
		body     any
		status   int
		code     string
	}{
		{"bad engine", "/v1/decompose", DecomposeRequest{Graph: ring, Engine: "quantum"}, 400, CodeBadEngine},
		{"bad graph shape", "/v1/decompose", DecomposeRequest{Graph: WireGraph{Ring: []string{"1", "1", "1"}, Path: []string{"1"}}}, 400, CodeBadGraph},
		{"negative weight", "/v1/utilities", UtilitiesRequest{Graph: WireGraph{Ring: []string{"1", "-2", "3"}}}, 400, CodeBadGraph},
		{"not ring (ratio)", "/v1/ratio", RatioRequest{Graph: path}, 400, CodeNotRing},
		{"not ring (sweep)", "/v1/sweep", SweepRequest{Graph: path}, 400, CodeNotRing},
		{"bad agent (ratio)", "/v1/ratio", RatioRequest{Graph: ring, V: 7}, 400, CodeBadAgent},
		{"bad agent (sweep)", "/v1/sweep", SweepRequest{Graph: ring, V: -1}, 400, CodeBadAgent},
		{"bad grid (ratio)", "/v1/ratio", RatioRequest{Graph: ring, Grid: 5000}, 400, CodeBadGrid},
		{"bad grid (sweep)", "/v1/sweep", SweepRequest{Graph: ring, Grid: -2}, 400, CodeBadGrid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL, tc.endpoint, tc.body)
			var body ErrorResponse
			if err := json.Unmarshal(raw, &body); err != nil {
				t.Fatalf("decode error body: %v\n%s", err, raw)
			}
			if status != tc.status || body.Code != tc.code {
				t.Fatalf("status %d code %q, want %d %q (%s)", status, body.Code, tc.status, tc.code, raw)
			}
			if body.Message == "" {
				t.Fatal("error message empty")
			}
		})
	}
	// Malformed JSON carries the decoder detail in Detail.
	status, raw := postRaw(t, ts.URL+"/v1/decompose", []byte(`{"graph":`))
	var body ErrorResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decode error body: %v\n%s", err, raw)
	}
	if status != 400 || body.Code != CodeBadBody || body.Detail == "" {
		t.Fatalf("bad body: status %d code %q detail %q", status, body.Code, body.Detail)
	}
}

// TestCacheMetricsByEndpoint asserts the per-endpoint cache hit/miss series
// and that request spans carry the cache decision.
func TestCacheMetricsByEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"1", "2", "3"}}
	for i := 0; i < 3; i++ {
		mustPost(t, ts.URL, "/v1/utilities", UtilitiesRequest{Graph: ring}, &UtilitiesResponse{})
	}
	_, _, id := postTraced(t, ts.URL, "/v1/decompose", DecomposeRequest{Graph: ring})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`irshared_cache_requests_total{endpoint="/v1/utilities",result="miss"} 1`,
		`irshared_cache_requests_total{endpoint="/v1/utilities",result="hit"} 2`,
		`irshared_cache_requests_total{endpoint="/v1/decompose",result="hit"} 1`,
		`irshared_stage_seconds_count{stage="/v1/utilities"} 3`,
		"irshared_traces_finished_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	// The decompose request hit the shared entry; its span says so.
	snap, ok := srv.Collector().Get(id)
	if !ok {
		t.Fatalf("trace %d not retrievable", id)
	}
	if snap.Root.Counter("cache_hit") != 1 {
		t.Fatalf("root span cache counters: %+v", snap.Root.Counters)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Durable job placement: POST /v1/jobs is routed like any compute request,
// but the router additionally records a TTL lease binding the accepted job
// to its owning node. The supervision loop renews leases by polling the
// owner's job detail — capturing every new checkpoint point into the lease
// — and re-places the job on a survivor, seeded with that checkpoint, when
// the owner dies or the lease expires. Content-addressed job IDs make the
// re-placement idempotent, and exact arithmetic makes the final result
// bit-identical to an uninterrupted single-node run.

// jobPlacementKey derives the ring key of a job submission. Sweep jobs use
// the mechanism-scoped instance key — the same placement as the inline
// endpoints, so a job lands where its instance cache is warm. Other kinds
// hash their canonical (re-marshaled) submission body.
func jobPlacementKey(req *server.JobSubmitRequest) (string, bool) {
	switch req.Kind {
	case "", "sweep":
		key, err := server.PlacementKey(&req.Graph, req.Mechanism)
		if err != nil {
			return "", false
		}
		return key, true
	default:
		canon, err := json.Marshal(req)
		if err != nil {
			return "", false
		}
		return "jobs|" + req.Kind + "|" + string(canon), true
	}
}

// handleJobSubmit places one durable job under a lease.
func (r *Router) handleJobSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "unreadable request body")
		return
	}
	var sub server.JobSubmitRequest
	if err := json.Unmarshal(body, &sub); err != nil {
		// Forward anyway: the backend produces the catalogue 400.
		r.forward(req.Context(), w, req, "/v1/jobs", body, r.aliveSequence("/v1/jobs"), nil)
		return
	}
	key, keyed := jobPlacementKey(&sub)
	if !keyed {
		key = "/v1/jobs"
	}
	ctx := req.Context()
	seq := r.aliveSequence(key)
	if len(seq) == 0 {
		writeError(w, http.StatusServiceUnavailable, CodeNoBackends, "no live backend nodes")
		return
	}
	if len(seq) > 2 {
		seq = seq[:2] // single-retry hedging, like every proxied request
	}
	var lastErr error
	for i, node := range seq {
		if i > 0 {
			r.failovers.Add(1)
		}
		status, hdr, respBody, err := r.exchange(ctx, node, req, "/v1/jobs", body)
		if err != nil || status == http.StatusBadGateway || status == http.StatusGatewayTimeout {
			if err == nil {
				err = fmt.Errorf("cluster: node %s answered %d", node, status)
			}
			lastErr = err
			continue
		}
		if status == http.StatusAccepted || status == http.StatusOK {
			var jr server.JobSubmitResponse
			if err := json.Unmarshal(respBody, &jr); err == nil && jr.Job.ID != "" && !terminalState(jr.Job.State) {
				ls := &Lease{
					JobID:  jr.Job.ID,
					Node:   node,
					Kind:   jr.Job.Kind,
					Key:    key,
					Expiry: time.Now().Add(r.cfg.LeaseTTL).UnixNano(),
					Body:   json.RawMessage(body),
				}
				if err := r.leases.grant(ctx, ls); err != nil {
					// The backend accepted the job but the placement is
					// unrecorded — an unsupervised job would never fail over.
					// Fail the request instead: resubmission dedupes to the
					// same job ID and only the grant is retried.
					r.log.Warn("lease grant failed", "job", jr.Job.ID, "err", err)
					writeErrorDetail(w, http.StatusServiceUnavailable, CodeLeaseUnavailable,
						"job accepted but lease not persisted; retry the submission", err.Error())
					return
				}
				r.leaseGrants.Add(1)
			}
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway,
		"backend placement and failover replica both failed", fmt.Sprint(lastErr))
}

// handleJobGet proxies a job lookup to its lease owner; jobs the router
// never placed (or whose lease is retired) are searched across the live
// membership.
func (r *Router) handleJobGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if ls, ok := r.leases.get(id); ok {
		if r.members.alive(ls.Node) {
			r.forward(req.Context(), w, req, "/v1/jobs/"+id, nil, []string{ls.Node}, nil)
			return
		}
		// The owner is down and re-placement is pending: answer from the
		// lease's observed checkpoint so pollers see a queued job making its
		// way to a survivor instead of a spurious 404.
		writeJSON(w, http.StatusOK, server.WireJob{
			ID: ls.JobID, Kind: ls.Kind, State: "queued",
			NextIndex: len(ls.Points), Points: ls.Points,
		})
		return
	}
	r.fanFind(w, req, id)
}

// handleJobList answers GET /v1/jobs cluster-wide: fan out to every live
// node (forwarding the state/kind filters), merge the answers with the
// lease table, and dedupe by job ID. Per-node cursors do not compose across
// a fleet, so the merged view is unpaginated — each node is drained page by
// page and ?cursor is rejected; ?limit caps the merged answer after the
// sort. A job listed by two nodes (a failover re-placement whose old owner
// still holds a stale copy) keeps the more advanced entry: terminal state
// first, then the higher checkpoint index. Leased jobs whose owner is
// currently unreachable appear as queued entries from the lease's observed
// checkpoint, exactly like handleJobGet; nodes that fail mid-fan-out are
// skipped the same way rather than failing the whole view.
func (r *Router) handleJobList(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	if q.Get("cursor") != "" {
		writeError(w, http.StatusBadRequest, "bad_body",
			"cluster-wide job lists are unpaginated; drop the cursor parameter")
		return
	}
	limit := 0
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad_body", "limit must be a positive integer")
			return
		}
		limit = n
	}
	filter := url.Values{}
	for _, k := range []string{"state", "kind"} {
		if v := q.Get(k); v != "" {
			filter.Set(k, v)
		}
	}

	merged := map[string]server.WireJob{}
	for _, node := range r.aliveSequence("/v1/jobs") {
		cursor := uint64(0)
		for {
			pageQ := url.Values{}
			for k, vs := range filter {
				pageQ[k] = vs
			}
			if cursor != 0 {
				pageQ.Set("cursor", strconv.FormatUint(cursor, 10))
			}
			// exchange forwards the proxied request's own query string, which
			// here carries the router-level limit (post-merge) and would
			// double the filters; hand it a clone with the per-page query.
			nreq := req.Clone(req.Context())
			nreq.URL.RawQuery = pageQ.Encode()
			status, hdr, respBody, err := r.exchange(req.Context(), node, nreq, "/v1/jobs", nil)
			if err != nil {
				break // unreachable mid-fan-out: the lease merge below covers its leased jobs
			}
			if status == http.StatusBadRequest {
				// An invalid filter is invalid on every node; answer with the
				// backend's catalogue error.
				copyHeaders(w, hdr)
				w.WriteHeader(status)
				w.Write(respBody)
				return
			}
			if status != http.StatusOK {
				break // jobs disabled on this node, or a gateway-grade failure
			}
			var page server.JobListResponse
			if err := json.Unmarshal(respBody, &page); err != nil {
				break
			}
			for _, j := range page.Jobs {
				if cur, ok := merged[j.ID]; !ok || jobFresher(j, cur) {
					merged[j.ID] = j
				}
			}
			if page.NextCursor == 0 {
				break
			}
			cursor = page.NextCursor
		}
	}

	// Leased jobs nobody listed — owner dead, unreachable, or its store
	// wiped — surface as queued from the router's observation, so the fleet
	// view never silently drops supervised work.
	state, kind := q.Get("state"), q.Get("kind")
	for _, ls := range r.leases.all() {
		if _, ok := merged[ls.JobID]; ok {
			continue
		}
		if (state != "" && state != "queued") || (kind != "" && kind != ls.Kind) {
			continue
		}
		merged[ls.JobID] = server.WireJob{
			ID: ls.JobID, Kind: ls.Kind, State: "queued", NextIndex: len(ls.Points),
		}
	}

	jobs := make([]server.WireJob, 0, len(merged))
	for _, j := range merged {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].CreatedAt != jobs[k].CreatedAt {
			return jobs[i].CreatedAt < jobs[k].CreatedAt
		}
		return jobs[i].ID < jobs[k].ID
	})
	if limit > 0 && len(jobs) > limit {
		jobs = jobs[:limit]
	}
	writeJSON(w, http.StatusOK, server.JobListResponse{Jobs: jobs})
}

// jobFresher reports whether a beats b as the authoritative view of one job:
// a terminal state beats a live one, then more checkpointed progress wins.
func jobFresher(a, b server.WireJob) bool {
	if terminalState(a.State) != terminalState(b.State) {
		return terminalState(a.State)
	}
	return a.NextIndex > b.NextIndex
}

// handleJobCancel proxies a cancellation and retires the lease once the
// backend confirms: a canceled job must not be resurrected by re-placement.
func (r *Router) handleJobCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	nodes := r.aliveSequence(id)
	if ls, ok := r.leases.get(id); ok && r.members.alive(ls.Node) {
		nodes = []string{ls.Node}
	}
	var lastErr error
	for _, node := range nodes {
		status, hdr, respBody, err := r.exchange(req.Context(), node, req, "/v1/jobs/"+id, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if status == http.StatusNotFound && len(nodes) > 1 {
			continue
		}
		if status < http.StatusMultipleChoices || status == http.StatusConflict {
			if err := r.leases.retire(req.Context(), id); err != nil {
				r.log.Warn("lease retire failed", "job", id, "err", err)
			} else {
				r.leaseRetired.Add(1)
			}
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	if lastErr != nil {
		writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway, "no backend could cancel the job", lastErr.Error())
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "no such job on any live node")
}

// fanFind asks every live node for the job and forwards the first non-404.
func (r *Router) fanFind(w http.ResponseWriter, req *http.Request, id string) {
	var lastErr error
	for _, node := range r.aliveSequence(id) {
		status, hdr, respBody, err := r.exchange(req.Context(), node, req, "/v1/jobs/"+id, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if status == http.StatusNotFound {
			continue
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	if lastErr != nil {
		writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway, "job lookup failed on every live node", lastErr.Error())
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "no such job on any live node")
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// superviseLeases is one pass of the lease loop: poll every leased job's
// owner, renew with the freshly observed checkpoint, retire finished jobs,
// and re-place jobs whose owner is dead, gone, or silent past the TTL.
func (r *Router) superviseLeases(ctx context.Context) {
	for _, ls := range r.leases.all() {
		now := time.Now()
		job, status, err := r.pollJob(ctx, ls.Node, ls.JobID)
		switch {
		case err == nil && status == http.StatusOK && terminalState(job.State):
			if rerr := r.leases.retire(ctx, ls.JobID); rerr != nil {
				r.log.Warn("lease retire failed", "job", ls.JobID, "err", rerr)
			} else {
				r.leaseRetired.Add(1)
			}
		case err == nil && status == http.StatusOK:
			start := len(ls.Points)
			var delta []server.WireSweepPoint
			if len(job.Points) > start {
				delta = job.Points[start:]
			}
			if rerr := r.leases.renew(ctx, ls.JobID, now.Add(r.cfg.LeaseTTL), start, delta, job.NextIndex); rerr != nil {
				// A failed renewal (lease fault site, write error) is only a
				// missed heartbeat: the lease keeps its old expiry and the
				// next pass retries. Degradation, not corruption.
				r.log.Warn("lease renew failed", "job", ls.JobID, "err", rerr)
			} else {
				r.leaseRenewals.Add(1)
			}
		case err == nil && status == http.StatusNotFound:
			// The owner lost the job (wiped store): re-place now.
			r.replaceLease(ctx, ls)
		default:
			// Owner unreachable or answering garbage. Re-place once it is
			// declared dead or the lease has expired — not before, so a
			// single slow poll doesn't double-run a healthy job.
			if !r.members.alive(ls.Node) || now.UnixNano() > ls.Expiry {
				r.replaceLease(ctx, ls)
			}
		}
	}
}

// pollJob fetches one job's detail view from a node.
func (r *Router) pollJob(ctx context.Context, node, id string) (*server.WireJob, int, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	ctx, sp := obs.Start(ctx, "router.lease_poll")
	sp.SetAttr("node", node)
	defer sp.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, nil
	}
	var job server.WireJob
	if err := json.Unmarshal(raw, &job); err != nil {
		return nil, 0, fmt.Errorf("cluster: job detail from %s: %w", node, err)
	}
	return &job, resp.StatusCode, nil
}

// replaceLease re-places a lost job on a survivor, seeding the submission
// with the lease's observed checkpoint so the new owner resumes instead of
// restarting. The original body is replayed — content addressing gives the
// identical job ID — with only the Checkpoint field added.
func (r *Router) replaceLease(ctx context.Context, ls Lease) {
	var survivors []string
	for _, n := range r.aliveSequence(ls.Key) {
		if n != ls.Node {
			survivors = append(survivors, n)
		}
	}
	if len(survivors) == 0 {
		// The old owner may be the only live node (e.g. its store was wiped
		// but the process lives): resubmitting there is still correct.
		if r.members.alive(ls.Node) {
			survivors = []string{ls.Node}
		} else {
			r.log.Warn("no survivor for lease; will retry", "job", ls.JobID)
			return
		}
	}
	var sub server.JobSubmitRequest
	if err := json.Unmarshal(ls.Body, &sub); err != nil {
		r.log.Error("lease body undecodable; dropping lease", "job", ls.JobID, "err", err)
		if rerr := r.leases.retire(ctx, ls.JobID); rerr != nil {
			r.log.Warn("lease retire failed", "job", ls.JobID, "err", rerr)
		}
		return
	}
	sub.Checkpoint = &server.JobCheckpoint{NextIndex: len(ls.Points), Points: ls.Points}
	body, err := json.Marshal(&sub)
	if err != nil {
		r.log.Error("lease re-placement encode failed", "job", ls.JobID, "err", err)
		return
	}
	node := survivors[0]
	status, _, respBody, err := r.postJSON(ctx, node, "/v1/jobs", body)
	if err != nil || (status != http.StatusAccepted && status != http.StatusOK) {
		r.log.Warn("lease re-placement failed; will retry", "job", ls.JobID, "node", node,
			"status", status, "err", err)
		return
	}
	var jr server.JobSubmitResponse
	if err := json.Unmarshal(respBody, &jr); err != nil || jr.Job.ID == "" {
		r.log.Warn("lease re-placement answer undecodable; will retry", "job", ls.JobID, "node", node)
		return
	}
	if terminalState(jr.Job.State) {
		// The survivor already has the finished job (it ran there before).
		if rerr := r.leases.retire(ctx, ls.JobID); rerr == nil {
			r.leaseRetired.Add(1)
		}
		return
	}
	nls := &Lease{
		JobID:     jr.Job.ID,
		Node:      node,
		Kind:      ls.Kind,
		Key:       ls.Key,
		Expiry:    time.Now().Add(r.cfg.LeaseTTL).UnixNano(),
		Body:      ls.Body,
		NextIndex: len(ls.Points),
		Points:    ls.Points,
	}
	if err := r.leases.grant(ctx, nls); err != nil {
		r.log.Warn("re-placement lease grant failed; will retry", "job", ls.JobID, "err", err)
		return
	}
	r.leaseReplaced.Add(1)
	r.log.Info("job re-placed", "job", ls.JobID, "from", ls.Node, "to", node,
		"resume_from", len(ls.Points))
}

// postJSON performs one bare POST (no statusWriter plumbing) for the lease
// loop.
func (r *Router) postJSON(ctx context.Context, node, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, raw, nil
}

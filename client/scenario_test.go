package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/server"
)

// TestScenarioClientLifecycle drives the scenario surface end to end:
// inline scan, durable submission of the same request, result decoding via
// ScenarioResult bit-identical to the inline answer, and the kind filter on
// the job list.
func TestScenarioClientLifecycle(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1, DataDir: t.TempDir()})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	req := &ScenarioRequest{
		Kind:  "ksybil",
		Graph: Graph{Ring: []string{"128", "2", "128", "128", "512", "4", "32"}},
		V:     4, K: 3, Grid: 6,
	}
	inline, err := c.Scenario(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if inline.Kind != "ksybil" || inline.KSybil == nil || inline.KSybil.Total != 28 {
		t.Fatalf("inline scan: %+v", inline)
	}

	sub, err := c.SubmitScenario(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Deduped || sub.Job.Kind != "ksybil" || sub.Job.TotalPoints != 28 {
		t.Fatalf("submission: %+v", sub)
	}
	job, err := c.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	fromJob, err := ScenarioResult(job)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(inline)
	got, _ := json.Marshal(fromJob)
	if !bytes.Equal(got, want) {
		t.Fatalf("job result diverged from inline scan:\njob:    %s\ninline: %s", got, want)
	}

	// The kind filter narrows a mixed list to the scenario job.
	if _, err := c.SubmitSweep(ctx, &JobSubmitRequest{Graph: Graph{Ring: []string{"1", "2", "3"}}, V: 0, Grid: 4}); err != nil {
		t.Fatal(err)
	}
	page, err := c.ListJobs(ctx, JobListQuery{Kind: "ksybil"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != sub.Job.ID || page.Jobs[0].Kind != "ksybil" {
		t.Fatalf("kind filter answered %+v", page.Jobs)
	}
}

// TestScenarioClientTopologyCert runs a cert-opted topology scan and checks
// the attached BD ring certificate locally — the client need not trust the
// server's ratio claim.
func TestScenarioClientTopologyCert(t *testing.T) {
	ts := newService(t, server.Config{})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	resp, err := c.Scenario(context.Background(), &ScenarioRequest{
		Kind: "topology", Families: []string{"ring"}, Count: 2, N: 5, Grid: 4, Seed: 3, Cert: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := resp.Topology
	if topo == nil || topo.Certificate == nil {
		t.Fatalf("no certificate: %+v", resp)
	}
	if err := cert.Check(topo.Certificate); err != nil {
		t.Fatalf("certificate check: %v", err)
	}
}

// TestScenarioResultErrors pins the decoder's refusals: nil jobs, wrong
// kinds, and unfinished jobs.
func TestScenarioResultErrors(t *testing.T) {
	if _, err := ScenarioResult(nil); err == nil {
		t.Fatal("nil job accepted")
	}
	if _, err := ScenarioResult(&Job{ID: "j1", Kind: "sweep", State: JobDone}); err == nil {
		t.Fatal("sweep job accepted")
	}
	if _, err := ScenarioResult(&Job{ID: "j1", Kind: "coalition", State: JobRunning}); err == nil {
		t.Fatal("running job accepted")
	}
}

// TestScenarioClientValidation maps a scenario_limit rejection through the
// typed error path.
func TestScenarioClientValidation(t *testing.T) {
	ts := newService(t, server.Config{})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	_, err := c.Scenario(context.Background(), &ScenarioRequest{
		Kind: "ksybil", Graph: Graph{Ring: []string{"1", "2", "3"}}, V: 0, K: 9,
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Code != server.CodeScenarioLimit {
		t.Fatalf("want 400 scenario_limit, got %v", err)
	}
}

package bottleneck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// minimizeOracle is the parametric subproblem behind the maximal-bottleneck
// search: for a fixed λ ≥ 0, minimize f_λ(S) = w(Γ(S)) − λ·w(S) over all
// vertex sets S (the empty set, of value 0, included).
//
// f_λ is submodular (w(Γ(·)) is submodular, λ·w(·) is modular), so its
// minimizers form a lattice closed under union; the maximal minimizer is the
// union of all minimizers, and at the optimal λ it is exactly the maximal
// bottleneck of Definition 2.
//
// The two methods split the work so Dinkelbach's intermediate iterations
// stay cheap: value reports the minimum together with the weight w(S) of a
// minimizer (enough to update λ, since α(S) = λ + val/w(S)), while maximal
// extracts the full maximal minimizer — needed only once, at the optimum.
type minimizeOracle interface {
	value(lambda numeric.Rat) (val, wS numeric.Rat)
	maximal(lambda numeric.Rat) []int
}

// maxBottleneck runs Dinkelbach's parametric method: starting from
// λ = α(V) ≤ 1 it alternates between solving the λ-subproblem and updating
// λ ← α(S) for the returned minimizer S. Every iterate is an attained
// α-value and strictly decreases, so with exact arithmetic the loop
// terminates at λ* = min_S α(S) with the maximal bottleneck in hand.
//
// The graph must have positive total weight.
func maxBottleneck(g *graph.Graph, o minimizeOracle, iterTrace func(lambda, value numeric.Rat)) (numeric.Rat, []int, error) {
	wV := g.TotalWeight()
	if wV.Sign() <= 0 {
		return numeric.Rat{}, nil, fmt.Errorf("bottleneck: graph has zero total weight")
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	lambda := g.WeightOf(g.NeighborhoodSet(all)).Div(wV) // α(V) ≤ 1
	for iter := 0; ; iter++ {
		if iter > g.N()*g.N()+64 {
			// Dinkelbach over exact rationals converges in far fewer steps;
			// exceeding this bound means a solver bug, not a hard instance.
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: Dinkelbach did not converge after %d iterations", iter)
		}
		val, wS := o.value(lambda)
		if iterTrace != nil {
			iterTrace(lambda, val)
		}
		if val.Sign() > 0 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: subproblem returned positive minimum %v (∅ has value 0)", val)
		}
		if val.Sign() == 0 {
			S := o.maximal(lambda)
			if g.WeightOf(S).Sign() <= 0 {
				return numeric.Rat{}, nil, fmt.Errorf("bottleneck: degenerate maximal minimizer at λ=%v", lambda)
			}
			return lambda, S, nil
		}
		// val < 0 forces w(S) > 0 (f(S) < 0 needs λ·w(S) > w(Γ(S)) ≥ 0).
		if wS.Sign() <= 0 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: negative minimum %v with zero-weight minimizer", val)
		}
		next := lambda.Add(val.Div(wS)) // = (λ·w(S) + f(S)) / w(S) = α(S)
		if !next.Less(lambda) {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: Dinkelbach stalled at λ=%v (next=%v)", lambda, next)
		}
		lambda = next
	}
}

package repro

import (
	"context"
	"strings"
	"testing"
)

// The facade test exercises the package-level tour end to end; detailed
// behavior is covered by the internal packages' suites.
func TestFacadeTour(t *testing.T) {
	ctx := context.Background()
	g := Ring(Ints(100, 1, 1, 1, 1, 1, 1, 1, 1))
	dec, err := Decompose(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ClassOf(0) != ClassB {
		t.Fatalf("heavy vertex class = %v", dec.ClassOf(0))
	}
	alloc, err := Allocate(ctx, g, WithDecomposition(dec))
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Utility(0).Equal(dec.Utility(g, 0)) {
		t.Fatal("allocation utility disagrees with Proposition 6")
	}
	ratio, err := IncentiveRatio(ctx, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Float64() < 1.6 || RatFromInt(2).Less(ratio) {
		t.Fatalf("incentive ratio = %v, expected in (1.6, 2]", ratio)
	}
}

func TestFacadeDynamicsAndSwarm(t *testing.T) {
	g := Path(Ints(1, 100, 2))
	dyn, err := RunDynamics(g, DynamicsOptions{MaxRounds: 500})
	if err != nil {
		t.Fatal(err)
	}
	swarm, err := RunSwarm(g, SwarmConfig{Rounds: 501})
	if err != nil {
		t.Fatal(err)
	}
	for v := range dyn.Utilities {
		if dyn.Utilities[v] != swarm.Utilities[v] {
			t.Fatalf("dynamics and swarm disagree at %d", v)
		}
	}
}

func TestFacadeTheorem8AndFamily(t *testing.T) {
	g, v, err := LowerBoundFamily(1, RatFromInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := VerifyTheorem8(g, v, OptimizeOptions{Grid: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.LeqTwo || !verdict.Stages.AllChecksPass() {
		t.Fatalf("Theorem 8 verdict failed: ratio %v", verdict.Ratio)
	}
	limit := LowerBoundLimitRatio(1)
	if limit.String() != "3/2" {
		t.Fatalf("limit ratio = %v", limit)
	}
}

func TestFacadeWideSurface(t *testing.T) {
	g := Ring(Ints(8, 1, 1, 1, 1))

	// Parallel decomposition delegates for connected graphs.
	dp, err := DecomposeParallel(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Decompose(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if dp.StructureSignature() != ds.StructureSignature() {
		t.Fatal("parallel decomposition differs")
	}

	// Async swarm under delay.
	async, err := RunAsyncSwarm(g, AsyncSwarmConfig{Rounds: 2000, MaxDelay: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(async.Utilities) != g.N() {
		t.Fatal("async utilities shape wrong")
	}

	// Misreporting never gains (Theorem 10).
	u, err := MisreportUtility(g, 0, NewRat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	honest, err := MisreportUtility(g, 0, g.Weight(0))
	if err != nil {
		t.Fatal(err)
	}
	if honest.Less(u) {
		t.Fatalf("misreport gained: %v > %v", u, honest)
	}

	// General-graph search and coalition search.
	sr, err := SybilSearch(Star(Ints(1, 5, 5, 5)), 0, SybilSearchOptions{GridResolution: 4})
	if err != nil {
		t.Fatal(err)
	}
	if RatFromInt(2).Less(sr.Ratio) {
		t.Fatalf("star search ratio %v > 2", sr.Ratio)
	}
	pa, err := PairAttack(g, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pa.CombinedRatio.Less(RatFromInt(1)) {
		t.Fatalf("coalition ratio %v < 1", pa.CombinedRatio)
	}

	// Swarm attack comparison at the facade level.
	ring, err := g.RingOrder(0)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareSwarmAttack(g, SplitSpec{
		V:       0,
		Parts:   [][]int{{ring[1]}, {ring[len(ring)-1]}},
		Weights: []Rat{NewRat(4, 1), NewRat(4, 1)},
	}, SwarmConfig{Rounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Gain > 2.001 {
		t.Fatalf("swarm gain %v > 2", cmp.Gain)
	}

	// Analysis surface: curve, classification, x*, intervals, Theorem 10.
	curve, err := SampleCurve(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTheorem10(curve); err != nil {
		t.Fatal(err)
	}
	if _, err := ClassifyAlphaCurve(curve); err != nil {
		t.Fatal(err)
	}
	x, c, err := AlphaStar(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "Case B-3" || !x.Equal(RatFromInt(2)) {
		t.Fatalf("AlphaStar = (%v, %v)", x, c)
	}
	ivs, err := IntervalPartition(g, 0, 16, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) < 2 {
		t.Fatalf("intervals: %d", len(ivs))
	}

	// Graph I/O round trip through the facade.
	var buf strings.Builder
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatal("graph round trip failed")
	}
	_ = NewGraph(3)
	_ = Complete(Ints(1, 1, 1))
	_ = Path(Ints(1, 2))
	_ = Fig1Graph()
}

func TestFacadeSybilSplit(t *testing.T) {
	g := Ring(Ints(4, 1, 2, 3))
	u, err := AttackUtility(g, SplitSpec{
		V:       0,
		Parts:   [][]int{{1}, {3}},
		Weights: []Rat{NewRat(2, 1), NewRat(2, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.Sign() <= 0 {
		t.Fatalf("attack utility %v", u)
	}
	if _, err := ParseRat("7/3"); err != nil {
		t.Fatal(err)
	}
}

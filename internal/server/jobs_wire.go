package server

import "encoding/json"

// Wire types of the /v1/jobs API: durable, resumable background jobs
// executed by the scheduler in internal/jobs. Three kinds exist: "sweep"
// (the default) walks one agent's split-utility curve under a chosen
// mechanism; "enumerate" exhaustively certifies every small ring over a
// rational lattice (internal/cert/enum); "tournament" evaluates every
// selected mechanism on an instance set (internal/mechanism). Submission is
// content-addressed — the job ID derives from the canonical parameters,
// mechanism included — so resubmitting equivalent work returns the existing
// job instead of duplicating it.

// JobSubmitRequest is the body of POST /v1/jobs. Kind selects the job type:
// "" or "sweep" runs the agent-V sweep of Graph at Grid+1 points (0 =
// default 64) under Mechanism ("" = default "bd"); "enumerate" runs the
// exhaustive small-n certification described by Enum; "tournament" runs the
// cross-mechanism evaluation described by Tournament (Graph/V/Grid/Mechanism
// are ignored for the latter two). Priority orders the scheduler queue
// (higher first, FIFO within a priority).
type JobSubmitRequest struct {
	Kind       string             `json:"kind,omitempty"`
	Graph      WireGraph          `json:"graph,omitempty"`
	V          int                `json:"v,omitempty"`
	Grid       int                `json:"grid,omitempty"`
	Mechanism  string             `json:"mechanism,omitempty"`
	Priority   int                `json:"priority,omitempty"`
	Enum       *EnumJobRequest    `json:"enum,omitempty"`
	Tournament *TournamentRequest `json:"tournament,omitempty"`
	// Scenario parameterizes the kinds "ksybil", "coalition", and
	// "topology": the same body as POST /v1/scenario, with its kind either
	// empty or equal to the job kind (Graph/V/Grid/Mechanism at this level
	// are ignored for scenario kinds).
	Scenario   *ScenarioRequest `json:"scenario,omitempty"`
	Checkpoint *JobCheckpoint   `json:"checkpoint,omitempty"`
}

// JobCheckpoint seeds a submission with progress already computed
// elsewhere: the cluster router re-places a job from a dead node onto a
// survivor with the last checkpoint it observed, so the new node resumes at
// NextIndex instead of restarting from zero. Points are the completed
// prefix (indices [0, NextIndex)) in the kind's checkpoint encoding, and
// NextIndex must equal len(Points). The seed only applies when the
// submission creates or restarts the job — deduping to a live or finished
// job keeps that job's own progress, which is never behind the router's
// observation of it.
type JobCheckpoint struct {
	NextIndex int              `json:"next_index"`
	Points    []WireSweepPoint `json:"points"`
}

// EnumJobRequest parameterizes a kind "enumerate" job: certify every
// canonical ring with MinN..MaxN vertices and integer weights 1..Levels
// (zero values select the enum package defaults 3/6/3), optimizing each
// instance on Grid and archiving the near-tight frontier at threshold
// 2−Eps. Eps is a rational string ("1/2" when empty).
type EnumJobRequest struct {
	MinN   int    `json:"min_n,omitempty"`
	MaxN   int    `json:"max_n,omitempty"`
	Levels int    `json:"levels,omitempty"`
	Grid   int    `json:"grid,omitempty"`
	Eps    string `json:"eps,omitempty"`
}

// sweepJobSpec is the persisted job specification: enough to re-derive the
// computation after a restart. The graph is stored in its canonical wire
// form so recovery does not depend on how the submitter spelled it.
// Mechanism is the resolved backend name; empty in specs persisted before
// the mechanism registry existed, which resolves to the default "bd" — so
// pre-existing job stores replay unchanged.
type sweepJobSpec struct {
	Graph     WireGraph `json:"graph"`
	V         int       `json:"v"`
	Grid      int       `json:"grid"`
	Mechanism string    `json:"mechanism,omitempty"`
}

// enumJobSpec is the persisted specification of an enumerate job. All
// fields are resolved (defaults applied, Eps canonical) at submission, and
// Total pins the instance count so progress reporting and resume never
// depend on re-walking the lattice.
type enumJobSpec struct {
	MinN   int    `json:"min_n"`
	MaxN   int    `json:"max_n"`
	Levels int    `json:"levels"`
	Grid   int    `json:"grid"`
	Eps    string `json:"eps"`
	Total  int    `json:"total"`
}

// WireJob is the API view of one job. Points carries the checkpointed
// prefix (indices [0, NextIndex)) and is populated only on the detail view;
// for sweep jobs a point is (w1, u), for enumerate jobs it is (instance key,
// certified ratio — or "!"-prefixed error), for tournament jobs it is
// (row-major cell index, cell JSON). Result is the final body once the job
// is done: a SweepResponse for sweeps (bit-identical to an uninterrupted
// /v1/sweep of the same request), an enum.Summary for enumerations, or a
// TournamentResponse for tournaments.
type WireJob struct {
	ID          string           `json:"id"`
	Kind        string           `json:"kind"`
	State       string           `json:"state"`
	Attempt     int              `json:"attempt"`
	Priority    int              `json:"priority,omitempty"`
	Error       string           `json:"error,omitempty"`
	NextIndex   int              `json:"next_index"`
	TotalPoints int              `json:"total_points,omitempty"`
	Points      []WireSweepPoint `json:"points,omitempty"`
	Result      json.RawMessage  `json:"result,omitempty"`
	CreatedAt   int64            `json:"created_unix_nano,omitempty"`
	StartedAt   int64            `json:"started_unix_nano,omitempty"`
	FinishedAt  int64            `json:"finished_unix_nano,omitempty"`
}

// JobSubmitResponse is the body of a POST /v1/jobs answer. Deduped reports
// that the submission matched an existing queued, running, or done job and
// no new work was enqueued (the HTTP status is 200 instead of 202).
type JobSubmitResponse struct {
	Job     WireJob `json:"job"`
	Deduped bool    `json:"deduped,omitempty"`
}

// JobListResponse is the body of GET /v1/jobs: jobs in submission order.
// NextCursor, when nonzero, is the cursor query parameter of the next page.
type JobListResponse struct {
	Jobs       []WireJob `json:"jobs"`
	NextCursor uint64    `json:"next_cursor,omitempty"`
}

// Error codes of the jobs API (see the main catalogue in wire.go).
const (
	// CodeJobsDisabled: the server runs without a data directory, so the
	// durable jobs API is not available (501). Start with -data-dir.
	CodeJobsDisabled = "jobs_disabled"
	// CodeJobTerminal: the operation needs a live job but the job already
	// reached a terminal state (409) — e.g. canceling a finished job.
	CodeJobTerminal = "job_terminal"
)

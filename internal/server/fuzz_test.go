package server

import (
	"encoding/json"
	"testing"
)

// FuzzRatDecode throws arbitrary strings at the wire-format rational
// decoder. Accepted values must encode back to a canonical fixed point
// (decode∘encode = identity on the encoded form) and survive a JSON round
// trip. This target surfaced the big.Rat exponent expansion ("1e999999999"
// materializing a billion-digit integer), now rejected by numeric.Parse.
func FuzzRatDecode(f *testing.F) {
	f.Add("0")
	f.Add("1")
	f.Add("-7")
	f.Add("22/7")
	f.Add("-3/9")
	f.Add("0.125")
	f.Add("1e3")
	f.Add("1e999999999")
	f.Add("1/0")
	f.Add("9223372036854775807")
	f.Add("170141183460469231731687303715884105727/3")
	f.Add(" 1")
	f.Add("+2/4")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := DecodeRat(input)
		if err != nil {
			return
		}
		enc := EncodeRat(r)
		r2, err := DecodeRat(enc)
		if err != nil {
			t.Fatalf("decode of own encoding %q: %v", enc, err)
		}
		if !r.Equal(r2) {
			t.Fatalf("decode(encode(%q)) = %v, want %v", input, r2, r)
		}
		if EncodeRat(r2) != enc {
			t.Fatalf("encoding not a fixed point: %q -> %q", enc, EncodeRat(r2))
		}
		// The wire format carries rationals as JSON strings; a full JSON
		// round trip must preserve the canonical form.
		blob, err := json.Marshal(enc)
		if err != nil {
			t.Fatalf("marshal %q: %v", enc, err)
		}
		var back string
		if err := json.Unmarshal(blob, &back); err != nil || back != enc {
			t.Fatalf("JSON round trip %q -> %q (err %v)", enc, back, err)
		}
	})
}

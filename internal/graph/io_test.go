package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/numeric"
)

func TestReadWriteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := RandomConnected(rng, rng.Intn(12)+1, 0.4, DistUniform)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v\n%s", err, buf.String())
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip size mismatch")
		}
		for v := 0; v < g.N(); v++ {
			if !back.Weight(v).Equal(g.Weight(v)) {
				t.Fatalf("weight of %d: %v != %v", v, back.Weight(v), g.Weight(v))
			}
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e[0], e[1]) {
				t.Fatalf("missing edge %v", e)
			}
		}
	}
}

func TestReadFractionalWeights(t *testing.T) {
	in := `# a triangle
n 3
w 0 1/2
w 1 0.25
w 2 3
e 0 1
e 1 2
e 0 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weight(0).Equal(numeric.New(1, 2)) || !g.Weight(1).Equal(numeric.New(1, 4)) {
		t.Fatalf("weights: %v %v", g.Weight(0), g.Weight(1))
	}
	if !g.IsRing() {
		t.Error("triangle should be a ring")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"w 0 1",             // w before n
		"e 0 1",             // e before n
		"n 2\nn 2",          // duplicate n
		"n x",               // bad count
		"n 2\nw 5 1",        // vertex out of range
		"n 2\nw 0 abc",      // bad weight
		"n 2\ne 0 5",        // edge out of range
		"n 2\ne 0 0",        // self loop
		"n 2\ne 0 1\ne 1 0", // duplicate edge
		"n 2\nq 1 2",        // unknown directive
		"n 2\nw 0 -3",       // negative weight
		"n 2\nw 0",          // missing field
		"n 2\ne 0",          // missing field
		"n",                 // missing count
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestDOT(t *testing.T) {
	g := Path(numeric.Ints(1, 2))
	g.SetLabel(0, "a")
	dot := DOT(g, func(v int) string {
		if v == 0 {
			return "lightblue"
		}
		return ""
	})
	for _, want := range []string{"graph G {", "0 -- 1;", `label="a\nw=1"`, `fillcolor="lightblue"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

package server

import "encoding/json"

// Wire types of the /v1/jobs API: durable, resumable sweep jobs executed in
// the background by the scheduler in internal/jobs. Submission is
// content-addressed — the job ID derives from the canonical instance key
// plus (v, grid) — so resubmitting the same sweep returns the existing job
// instead of duplicating work.

// JobSubmitRequest is the body of POST /v1/jobs: run the agent-V sweep of
// Graph at Grid+1 points (0 = default 64) as a durable background job.
// Priority orders the scheduler queue (higher first, FIFO within a
// priority).
type JobSubmitRequest struct {
	Graph    WireGraph `json:"graph"`
	V        int       `json:"v"`
	Grid     int       `json:"grid,omitempty"`
	Priority int       `json:"priority,omitempty"`
}

// sweepJobSpec is the persisted job specification: enough to re-derive the
// computation after a restart. The graph is stored in its canonical wire
// form so recovery does not depend on how the submitter spelled it.
type sweepJobSpec struct {
	Graph WireGraph `json:"graph"`
	V     int       `json:"v"`
	Grid  int       `json:"grid"`
}

// WireJob is the API view of one job. Points carries the checkpointed
// prefix (grid indices [0, NextIndex)) and is populated only on the detail
// view; Result is the final SweepResponse body once the job is done — a
// recovered job's Result is bit-identical to the response an uninterrupted
// /v1/sweep of the same request would have produced.
type WireJob struct {
	ID          string           `json:"id"`
	Kind        string           `json:"kind"`
	State       string           `json:"state"`
	Attempt     int              `json:"attempt"`
	Priority    int              `json:"priority,omitempty"`
	Error       string           `json:"error,omitempty"`
	NextIndex   int              `json:"next_index"`
	TotalPoints int              `json:"total_points,omitempty"`
	Points      []WireSweepPoint `json:"points,omitempty"`
	Result      json.RawMessage  `json:"result,omitempty"`
	CreatedAt   int64            `json:"created_unix_nano,omitempty"`
	StartedAt   int64            `json:"started_unix_nano,omitempty"`
	FinishedAt  int64            `json:"finished_unix_nano,omitempty"`
}

// JobSubmitResponse is the body of a POST /v1/jobs answer. Deduped reports
// that the submission matched an existing queued, running, or done job and
// no new work was enqueued (the HTTP status is 200 instead of 202).
type JobSubmitResponse struct {
	Job     WireJob `json:"job"`
	Deduped bool    `json:"deduped,omitempty"`
}

// JobListResponse is the body of GET /v1/jobs: jobs in submission order.
// NextCursor, when nonzero, is the cursor query parameter of the next page.
type JobListResponse struct {
	Jobs       []WireJob `json:"jobs"`
	NextCursor uint64    `json:"next_cursor,omitempty"`
}

// Error codes of the jobs API (see the main catalogue in wire.go).
const (
	// CodeJobsDisabled: the server runs without a data directory, so the
	// durable jobs API is not available (501). Start with -data-dir.
	CodeJobsDisabled = "jobs_disabled"
	// CodeJobTerminal: the operation needs a live job but the job already
	// reached a terminal state (409) — e.g. canceling a finished job.
	CodeJobTerminal = "job_terminal"
)

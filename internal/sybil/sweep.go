package sybil

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
)

// SweepOptions tunes RingSweep. Zero values select defaults.
type SweepOptions struct {
	// Grid is the number of uniform w1 intervals over [0, w_v] (default 64;
	// the sweep evaluates Grid+1 points including both endpoints).
	Grid int
	// Workers bounds the parallel evaluation workers (≤ 0 = GOMAXPROCS).
	Workers int
	// Cold disables the instance's evaluation cache and incremental split
	// engine, so every point costs a from-scratch decomposition — the
	// pre-optimization baseline, kept for benchmarking. Results are
	// identical either way.
	Cold bool
	// Start is the first grid index to evaluate, in [0, Grid]. A resumed
	// sweep passes the NextIndex of an earlier partial result; the returned
	// Points then cover [Start, NextIndex).
	Start int
	// Progress, when set, is invoked after each grid point completes, with
	// the point's grid index. With Workers > 1 the order is the completion
	// order, not the grid order; tests that need a deterministic checkpoint
	// set Workers to 1 so indices arrive ascending.
	Progress func(i int)
}

// SweepPoint is one exactly evaluated split of the sweep.
type SweepPoint struct {
	W1 numeric.Rat
	// U is the attacker's combined utility U_{v¹} + U_{v²} at this split.
	U numeric.Rat
}

// SweepResult is the outcome of RingSweep. When the context was canceled
// mid-sweep, Partial is true and Points holds only the contiguous completed
// prefix starting at Start — every point in it is bit-identical to the same
// point of an uncanceled run, because points are independent and exact.
// NextIndex is the first grid index NOT covered; rerunning with
// Start=NextIndex and concatenating Points reconstructs the full sweep.
type SweepResult struct {
	Points []SweepPoint
	// BestW1/BestU is the best split among Points (a lower bound on the
	// optimum; use core.Instance.Optimize for the certified piecewise
	// search). Zero when Points is empty.
	BestW1, BestU numeric.Rat
	// BestIndex is the index into Points of the best split — the earliest
	// maximum: BestU strictly exceeds every earlier point and is ≥ every
	// later one. Certificates (internal/cert) record and re-verify this
	// rule. Zero when Points is empty.
	BestIndex int
	// Honest is U_v(G; w), and Ratio = BestU / Honest (1 when both zero).
	// For a partial result the ratio covers only the returned points.
	Honest, Ratio numeric.Rat
	// Partial reports that cancellation cut the sweep short; Start/NextIndex
	// delimit the covered index range [Start, NextIndex).
	Partial   bool
	Start     int
	NextIndex int
	// Stats exposes the evaluation-cache and incremental-solver counters
	// accumulated by the sweep.
	Stats core.EvalStats
}

// RingSweep evaluates the two-identity split utility curve of agent v on
// ring g at Grid+1 evenly spaced w1 values, sharing one core.Instance so
// the incremental split engine — cached interior transfers, warm-started
// Dinkelbach, memoized residual tails — is reused across the whole sweep
// instead of paying a fresh decomposition per point.
func RingSweep(g *graph.Graph, v int, opts SweepOptions) (*SweepResult, error) {
	return RingSweepCtx(context.Background(), g, v, opts)
}

// RingSweepCtx is RingSweep with cancellation, tracing and checkpointed
// progress: the context is threaded into every split evaluation, and when
// it carries an obs span the sweep is recorded as one "sybil.ring_sweep"
// span. A context canceled mid-sweep does not discard completed work — the
// call returns the contiguous completed prefix with Partial set (see
// SweepResult) instead of an error, so a deadline converts the sweep into
// a resumable checkpoint rather than wasted cycles.
func RingSweepCtx(ctx context.Context, g *graph.Graph, v int, opts SweepOptions) (*SweepResult, error) {
	in, err := core.NewInstanceCtx(ctx, g, v)
	if err != nil {
		return nil, err
	}
	in.SetEvalCache(!opts.Cold)
	in.SetIncremental(!opts.Cold)
	return SweepInstanceCtx(ctx, in, opts)
}

// SweepInstanceCtx runs the sweep over an already-built instance, reusing
// whatever solver state it has accumulated (the server calls this with its
// cached per-graph instances). Same partial-result semantics as
// RingSweepCtx.
func SweepInstanceCtx(ctx context.Context, in *core.Instance, opts SweepOptions) (*SweepResult, error) {
	if opts.Grid <= 0 {
		opts.Grid = 64
	}
	if opts.Start < 0 || opts.Start > opts.Grid {
		return nil, fmt.Errorf("sybil: start index %d outside [0, %d]", opts.Start, opts.Grid)
	}
	ctx, span := obs.Start(ctx, "sybil.ring_sweep")
	defer span.End()
	if span != nil {
		span.SetAttr("grid", strconv.Itoa(opts.Grid))
		if opts.Start > 0 {
			span.SetAttr("start", strconv.Itoa(opts.Start))
		}
	}
	W := in.W()
	total := opts.Grid + 1 - opts.Start
	pts := make([]SweepPoint, total)
	done := make([]bool, total)
	errs := par.MapCtx(ctx, total, opts.Workers, func(ctx context.Context, k int) error {
		i := opts.Start + k
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fault.Hit(ctx, fault.SiteSweepPoint); err != nil {
			return err
		}
		w1 := W.MulInt(int64(i)).DivInt(int64(opts.Grid))
		ev, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			return err
		}
		pts[k] = SweepPoint{W1: w1, U: ev.U}
		done[k] = true
		if opts.Progress != nil {
			opts.Progress(i)
		}
		return nil
	})
	// Classify failures: context errors truncate the sweep to its completed
	// prefix; anything else (including injected faults) fails the whole call
	// so callers never mistake a broken sweep for a merely interrupted one.
	canceled := false
	for k, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = true
			continue
		}
		return nil, fmt.Errorf("sybil: sweep point %d: %w", opts.Start+k, err)
	}
	completed := total
	if canceled {
		completed = 0
		for completed < total && done[completed] {
			completed++
		}
	}
	res := &SweepResult{
		Points:    pts[:completed],
		Honest:    in.HonestU,
		Partial:   completed < total,
		Start:     opts.Start,
		NextIndex: opts.Start + completed,
	}
	if span != nil && res.Partial {
		span.AddEvent("sweep_partial", "next_index", strconv.Itoa(res.NextIndex))
	}
	if completed > 0 {
		res.BestW1, res.BestU = res.Points[0].W1, res.Points[0].U
		for i, p := range res.Points[1:] {
			if res.BestU.Less(p.U) {
				res.BestW1, res.BestU, res.BestIndex = p.W1, p.U, i+1
			}
		}
	}
	switch {
	case res.Honest.Sign() > 0:
		res.Ratio = res.BestU.Div(res.Honest)
	case res.BestU.Sign() > 0:
		return nil, fmt.Errorf("sybil: positive attack utility %v from zero honest utility", res.BestU)
	default:
		res.Ratio = numeric.One
	}
	res.Stats = in.EvalStats()
	return res, nil
}

package p2p

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestSwarmMatchesDynamicsExactly(t *testing.T) {
	// The message-passing swarm and the numeric recurrence are the same
	// algorithm with the same float operation order; results must be
	// bit-identical.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomRing(rng, rng.Intn(8)+3, graph.WeightDist(rng.Intn(3)))
		rounds := rng.Intn(50) + 10
		// The swarm's round-r utilities aggregate the offers computed in
		// round r-1 (a real network observes its income one round late), so
		// swarm(R) corresponds to dynamics(R-1).
		swarm, err := Run(g, Config{Rounds: rounds})
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := dynamics.Run(g, dynamics.Options{MaxRounds: rounds - 1, Tol: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		for v := range swarm.Utilities {
			if swarm.Utilities[v] != dyn.Utilities[v] {
				t.Fatalf("trial %d: swarm and dynamics diverge at %d: %v vs %v",
					trial, v, swarm.Utilities[v], dyn.Utilities[v])
			}
		}
	}
}

func TestSwarmConvergesToEquilibrium(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 100, 2))
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Rounds: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		want := d.Utility(g, v).Float64()
		if math.Abs(res.Utilities[v]-want) > 1e-6 {
			t.Errorf("U_%d = %v, equilibrium %v", v, res.Utilities[v], want)
		}
	}
}

func TestMessageCount(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 2, 3, 4))
	rounds := 17
	res, err := Run(g, Config{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * g.M() * rounds); res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
	if res.Rounds != rounds {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestHistoryTracking(t *testing.T) {
	g := graph.Ring(numeric.Ints(5, 1, 1, 1))
	res, err := Run(g, Config{Rounds: 30, TrackAgents: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 || len(res.History[0]) != 30 {
		t.Fatalf("history shape %d x %d", len(res.History), len(res.History[0]))
	}
	if res.History[0][29] != res.Utilities[0] {
		t.Fatal("history tail disagrees with final utilities")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(graph.New(0), Config{}); err == nil {
		t.Error("empty swarm accepted")
	}
	g := graph.Ring(numeric.Ints(1, 1, 1))
	if _, err := Run(g, Config{TrackAgents: []int{7}}); err == nil {
		t.Error("bad tracked agent accepted")
	}
}

func TestCompareAttackOnLowerBoundRing(t *testing.T) {
	// Heavy-vertex ring (the E6 family at k=2): the Sybil attack should
	// harvest noticeably more than the honest run, but never break 2.
	ws := numeric.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1)
	g := graph.Ring(ws)
	v := 3
	// Use the exact optimizer's best split; the swarm should realize its
	// predicted gain (up to dynamics convergence error).
	in, err := core.NewInstance(g, v)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(core.OptimizeOptions{Grid: 32})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := g.RingOrder(v)
	if err != nil {
		t.Fatal(err)
	}
	spec := graph.SplitSpec{
		V:       v,
		Parts:   [][]int{{ring[1]}, {ring[len(ring)-1]}},
		Weights: []numeric.Rat{opt.BestW1, g.Weight(v).Sub(opt.BestW1)},
	}
	cmp, err := CompareAttack(g, spec, Config{Rounds: 20000})
	if err != nil {
		t.Fatal(err)
	}
	predicted := opt.Ratio.Float64()
	if cmp.Gain < predicted-0.1 {
		t.Fatalf("swarm gain %v far below exact prediction %v", cmp.Gain, predicted)
	}
	if cmp.Gain > 2.000001 {
		t.Fatalf("gain %v exceeds Theorem 8's bound", cmp.Gain)
	}
}

func TestCompareAttackNeutralOnUnitRing(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1, 1, 1))
	ring, err := g.RingOrder(0)
	if err != nil {
		t.Fatal(err)
	}
	spec := graph.SplitSpec{
		V:       0,
		Parts:   [][]int{{ring[1]}, {ring[len(ring)-1]}},
		Weights: []numeric.Rat{numeric.New(1, 2), numeric.New(1, 2)},
	}
	cmp, err := CompareAttack(g, spec, Config{Rounds: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.Gain-1) > 1e-6 {
		t.Fatalf("unit ring attack gain %v, want 1", cmp.Gain)
	}
}

func TestSwarmParallelismIsDeterministic(t *testing.T) {
	g := graph.RandomRing(rand.New(rand.NewSource(72)), 12, graph.DistUniform)
	a, err := Run(g, Config{Rounds: 100, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{Rounds: 100, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Utilities {
		if a.Utilities[v] != b.Utilities[v] {
			t.Fatalf("worker count changed results at %d", v)
		}
	}
}

func TestFreeRiderIsStarved(t *testing.T) {
	// Tit-for-tat punishes free riding: the deviant's income decays to 0,
	// and the rest of the swarm converges to the equilibrium of the network
	// in which the free rider's weight is zero.
	g := graph.Ring(numeric.Ints(5, 7, 3, 9, 4))
	rider := 2
	res, err := Run(g, Config{Rounds: 4000, FreeRiders: []int{rider}, TrackAgents: []int{rider}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilities[rider] > 1e-9 {
		t.Fatalf("free rider still earns %v", res.Utilities[rider])
	}
	h := res.History[0]
	if !(h[0] > 1 && h[len(h)-1] < 1e-9) {
		t.Fatalf("free rider income did not decay: %v → %v", h[0], h[len(h)-1])
	}
	// Exact prediction: BD utilities of the graph with w_rider = 0.
	gz := g.Clone()
	gz.MustSetWeight(rider, numeric.Zero)
	dz, err := bottleneck.Decompose(gz)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if v == rider {
			continue
		}
		want := dz.Utility(gz, v).Float64()
		if math.Abs(res.Utilities[v]-want) > 1e-6*(want+1) {
			t.Fatalf("honest agent %d: swarm %v, zero-weight equilibrium %v", v, res.Utilities[v], want)
		}
	}
}

func TestFreeRiderValidation(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1))
	if _, err := Run(g, Config{FreeRiders: []int{7}}); err == nil {
		t.Fatal("out-of-range free rider accepted")
	}
}

package p2p

import (
	"math"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func asyncEquilibriumError(t *testing.T, g *graph.Graph, cfg AsyncConfig) float64 {
	t.Helper()
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAsync(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v := 0; v < g.N(); v++ {
		if e := math.Abs(res.Utilities[v] - d.Utility(g, v).Float64()); e > worst {
			worst = e
		}
	}
	return worst
}

func TestAsyncSynchronousMatchesEquilibrium(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 100, 2))
	err := asyncEquilibriumError(t, g, AsyncConfig{Rounds: 5000, MaxDelay: 1})
	if err > 1e-6 {
		t.Fatalf("synchronous async run error %v", err)
	}
}

func TestAsyncConvergesUnderDelay(t *testing.T) {
	// Latency alone must not break convergence: peers answer stale views,
	// but the fixed point is the same.
	g := graph.Ring(numeric.Ints(1, 7, 2, 9, 3))
	for _, delay := range []int{2, 4, 8} {
		err := asyncEquilibriumError(t, g, AsyncConfig{Rounds: 20000, MaxDelay: delay, Seed: 11})
		if err > 1e-4 {
			t.Errorf("delay %d: error %v", delay, err)
		}
	}
}

func TestAsyncConvergesUnderLoss(t *testing.T) {
	g := graph.Path(numeric.Ints(3, 50, 7))
	err := asyncEquilibriumError(t, g, AsyncConfig{Rounds: 30000, MaxDelay: 2, DropRate: 0.2, Seed: 13})
	if err > 1e-3 {
		t.Fatalf("20%% loss: error %v", err)
	}
}

func TestAsyncRecoversAfterChurn(t *testing.T) {
	// With churn the system is perturbed while peers are away, but once the
	// run's tail is churn-free (probabilistically, at a low rate) the error
	// should still be far below the no-protocol baseline. We check that the
	// final error is small relative to the utility scale.
	g := graph.Ring(numeric.Ints(10, 20, 30, 40, 50))
	errVal := asyncEquilibriumError(t, g, AsyncConfig{
		Rounds: 40000, MaxDelay: 2, ChurnRate: 0.0005, OfflineRounds: 20, Seed: 17,
	})
	if errVal > 1.0 {
		t.Fatalf("churn error %v too large", errVal)
	}
}

func TestAsyncChurnEventsCounted(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1, 1))
	res, err := RunAsync(g, AsyncConfig{Rounds: 2000, ChurnRate: 0.01, OfflineRounds: 5, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.OfflineEvents == 0 {
		t.Error("expected churn events at 1% rate over 2000 rounds")
	}
}

func TestAsyncDropAccounting(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1))
	res, err := RunAsync(g, AsyncConfig{Rounds: 1000, DropRate: 0.5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Delivered + res.Dropped
	if total == 0 || res.Dropped == 0 {
		t.Fatalf("accounting: delivered=%d dropped=%d", res.Delivered, res.Dropped)
	}
	frac := float64(res.Dropped) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction %v far from 0.5", frac)
	}
}

func TestAsyncDeterministicPerSeed(t *testing.T) {
	g := graph.Ring(numeric.Ints(5, 1, 9, 2))
	cfg := AsyncConfig{Rounds: 500, MaxDelay: 3, DropRate: 0.1, ChurnRate: 0.002, Seed: 29}
	a, err := RunAsync(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsync(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Utilities {
		if a.Utilities[v] != b.Utilities[v] {
			t.Fatal("same seed, different outcome")
		}
	}
	if a.Delivered != b.Delivered || a.Dropped != b.Dropped || a.OfflineEvents != b.OfflineEvents {
		t.Fatal("same seed, different accounting")
	}
}

func TestAsyncValidation(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1))
	if _, err := RunAsync(graph.New(0), AsyncConfig{}); err == nil {
		t.Error("empty swarm accepted")
	}
	if _, err := RunAsync(g, AsyncConfig{DropRate: 1.0}); err == nil {
		t.Error("drop rate 1 accepted")
	}
	if _, err := RunAsync(g, AsyncConfig{ChurnRate: -0.1}); err == nil {
		t.Error("negative churn accepted")
	}
	if _, err := RunAsync(g, AsyncConfig{TrackAgents: []int{5}}); err == nil {
		t.Error("bad tracked agent accepted")
	}
}

func TestAsyncHistoryTracked(t *testing.T) {
	g := graph.Ring(numeric.Ints(2, 3, 4))
	res, err := RunAsync(g, AsyncConfig{Rounds: 50, TrackAgents: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 1 || len(res.History[0]) != 50 {
		t.Fatalf("history shape wrong: %d x %d", len(res.History), len(res.History[0]))
	}
}

package cert

import (
	"fmt"
	"math/big"
	"sort"
)

// maxCertVertices bounds the instance size the checker accepts; it exists so
// a hostile certificate cannot demand unbounded allocation before the first
// arithmetic error is noticed.
const maxCertVertices = 1 << 16

// inst is a compiled Instance: parsed weights plus sorted adjacency.
type inst struct {
	n   int
	w   []*big.Rat
	adj [][]int
}

// compile validates the embedded instance and builds its adjacency. Edges
// must be in the canonical order (u < v, lexicographically increasing) —
// the same order the solvers' graph type emits — so instance identity stays
// textual.
func (ins *Instance) compile() (*inst, error) {
	if ins.N < 1 || ins.N > maxCertVertices {
		return nil, fmt.Errorf("cert: vertex count %d outside [1, %d]", ins.N, maxCertVertices)
	}
	if len(ins.Weights) != ins.N {
		return nil, fmt.Errorf("cert: %d weights for %d vertices", len(ins.Weights), ins.N)
	}
	out := &inst{n: ins.N, w: make([]*big.Rat, ins.N), adj: make([][]int, ins.N)}
	for v, s := range ins.Weights {
		r, err := parseNonNeg(s)
		if err != nil {
			return nil, fmt.Errorf("cert: weight[%d]: %w", v, err)
		}
		out.w[v] = r
	}
	prev := [2]int{-1, -1}
	for i, e := range ins.Edges {
		u, v := e[0], e[1]
		if u < 0 || v >= ins.N || u >= v {
			return nil, fmt.Errorf("cert: edge[%d] (%d,%d) is not a canonical in-range pair", i, u, v)
		}
		if u < prev[0] || (u == prev[0] && v <= prev[1]) {
			return nil, fmt.Errorf("cert: edge[%d] (%d,%d) out of canonical order", i, u, v)
		}
		prev = e
		out.adj[u] = append(out.adj[u], v)
		out.adj[v] = append(out.adj[v], u)
	}
	for v := range out.adj {
		sort.Ints(out.adj[v])
	}
	return out, nil
}

// hasEdge reports whether (u, v) is an edge of the compiled instance.
func (in *inst) hasEdge(u, v int) bool {
	a := in.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// checkVertexSet validates a strictly increasing in-range vertex list.
func checkVertexSet(name string, s []int, n int) error {
	for i, v := range s {
		if v < 0 || v >= n {
			return fmt.Errorf("cert: %s[%d] = %d out of range [0, %d)", name, i, v, n)
		}
		if i > 0 && v <= s[i-1] {
			return fmt.Errorf("cert: %s is not strictly increasing at index %d", name, i)
		}
	}
	return nil
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Check verifies the decomposition certificate:
//
//  1. the embedded instance is well formed and every rational is canonical,
//  2. the pairs partition the vertex set (B_i ∪ C_i disjoint across pairs,
//     self-paired B_k = C_k counted once),
//  3. extracting the pairs in order, C_i = Γ(B_i) ∩ V_i on the residual
//     graph, B_i is independent (unless self-paired), α_i = w(C_i)/w(B_i),
//     and the α chain is strictly increasing with α = 1 only at a final
//     self-pair,
//  4. every pair's Hall-condition flow witness is feasible and saturating —
//     proving min_{∅≠S⊆V_i} w(Γ(S)∩V_i)/w(S) ≥ α_i without enumerating
//     subsets — which together with (3) pins α_i as the exact bottleneck
//     value and the pair sequence as the canonical maximal decomposition,
//  5. the recorded utilities equal the Proposition 6 values derived from
//     the cover.
//
// No solver code runs: the checker re-derives everything from the
// certificate bytes with big.Rat arithmetic.
func (c *DecompositionCert) Check() error {
	if c.Schema != SchemaDecomposition {
		return fmt.Errorf("cert: schema %q, want %q", c.Schema, SchemaDecomposition)
	}
	in, err := c.Instance.compile()
	if err != nil {
		return err
	}
	if len(c.Pairs) == 0 {
		return fmt.Errorf("cert: no pairs")
	}

	// Pass 1: membership and partition.
	const (
		clsB = iota
		clsC
		clsBoth
	)
	owner := make([]int, in.n)
	class := make([]int, in.n)
	for v := range owner {
		owner[v] = -1
	}
	assign := func(v, pair, cls int) error {
		if owner[v] != -1 {
			return fmt.Errorf("cert: vertex %d assigned to pairs %d and %d", v, owner[v], pair)
		}
		owner[v], class[v] = pair, cls
		return nil
	}
	for i := range c.Pairs {
		p := &c.Pairs[i]
		if err := checkVertexSet(fmt.Sprintf("pair %d B", i), p.B, in.n); err != nil {
			return err
		}
		if err := checkVertexSet(fmt.Sprintf("pair %d C", i), p.C, in.n); err != nil {
			return err
		}
		if len(p.B) == 0 {
			return fmt.Errorf("cert: pair %d has empty B", i)
		}
		self := intsEq(p.B, p.C)
		for _, v := range p.B {
			cls := clsB
			if self {
				cls = clsBoth
			}
			if err := assign(v, i, cls); err != nil {
				return err
			}
		}
		if !self {
			for _, v := range p.C {
				if err := assign(v, i, clsC); err != nil {
					return err
				}
			}
		}
	}
	for v, o := range owner {
		if o == -1 {
			return fmt.Errorf("cert: vertex %d not covered by any pair", v)
		}
	}

	// Pass 2: sequential extraction with residual-neighborhood equality,
	// the α chain, and the flow witnesses.
	active := make([]bool, in.n)
	for v := range active {
		active[v] = true
	}
	inB := make([]bool, in.n)
	alphas := make([]*big.Rat, len(c.Pairs))
	var prev *big.Rat
	last := len(c.Pairs) - 1
	for i := range c.Pairs {
		p := &c.Pairs[i]
		self := intsEq(p.B, p.C)
		alpha, err := parseNonNeg(p.Alpha)
		if err != nil {
			return fmt.Errorf("cert: pair %d α: %w", i, err)
		}
		alphas[i] = alpha
		if alpha.Cmp(ratOne) > 0 {
			return fmt.Errorf("cert: pair %d has α = %s > 1", i, p.Alpha)
		}
		if prev != nil && alpha.Cmp(prev) <= 0 {
			return fmt.Errorf("cert: α chain not strictly increasing at pair %d", i)
		}
		prev = alpha
		if alpha.Cmp(ratOne) == 0 && !self {
			return fmt.Errorf("cert: pair %d has α = 1 but B ≠ C", i)
		}
		if self && (i != last || alpha.Cmp(ratOne) != 0) {
			return fmt.Errorf("cert: self-paired pair %d must be final with α = 1", i)
		}
		for _, v := range p.B {
			if !active[v] {
				return fmt.Errorf("cert: pair %d reuses removed vertex %d", i, v)
			}
		}
		wB, wC := new(big.Rat), new(big.Rat)
		for _, v := range p.B {
			wB.Add(wB, in.w[v])
		}
		for _, v := range p.C {
			wC.Add(wC, in.w[v])
		}
		if wB.Sign() > 0 {
			// α = w(C)/w(B) ⇔ α·w(B) = w(C), avoiding a division.
			if new(big.Rat).Mul(alpha, wB).Cmp(wC) != 0 {
				return fmt.Errorf("cert: pair %d α mismatch: α·w(B) ≠ w(C)", i)
			}
		} else if !self {
			return fmt.Errorf("cert: pair %d has zero-weight B without being a trailing self-pair", i)
		}
		// Residual neighborhood Γ(B_i) ∩ V_i.
		for _, v := range p.B {
			inB[v] = true
		}
		if self {
			// Trailing self-pair: the residual neighborhood must not escape
			// the pair (everything outside is already removed by
			// construction; internal edges are what makes α = 1 achievable).
			for _, v := range p.B {
				for _, u := range in.adj[v] {
					if active[u] && !inB[u] {
						return fmt.Errorf("cert: final self-pair %d has residual neighbor %d outside it", i, u)
					}
				}
			}
		} else {
			// B independent, and C exactly Γ(B) ∩ V_i. Together with the
			// partition from pass 1 this subsumes Proposition 3-(3)/(4): a
			// cross-pair B–B edge or a B_i → later-C_j edge would force the
			// far endpoint into C_i, clashing with its real assignment.
			nbr := make(map[int]bool)
			for _, v := range p.B {
				for _, u := range in.adj[v] {
					if inB[u] {
						return fmt.Errorf("cert: pair %d B is not independent (edge inside B at %d)", i, u)
					}
					if active[u] {
						nbr[u] = true
					}
				}
			}
			if len(nbr) != len(p.C) {
				return fmt.Errorf("cert: pair %d C has %d vertices, Γ(B)∩V_i has %d", i, len(p.C), len(nbr))
			}
			for _, u := range p.C {
				if !nbr[u] {
					return fmt.Errorf("cert: pair %d C contains %d ∉ Γ(B)∩V_i", i, u)
				}
			}
		}
		for _, v := range p.B {
			inB[v] = false
		}
		if err := in.checkWitness(active, alpha, p.Witness); err != nil {
			return fmt.Errorf("cert: pair %d: %w", i, err)
		}
		for _, v := range p.B {
			active[v] = false
		}
		for _, v := range p.C {
			active[v] = false
		}
	}

	// Pass 3: utilities.
	if len(c.Utilities) != in.n {
		return fmt.Errorf("cert: %d utilities for %d vertices", len(c.Utilities), in.n)
	}
	for v := 0; v < in.n; v++ {
		alpha := alphas[owner[v]]
		var u *big.Rat
		switch {
		case class[v] == clsBoth:
			u = in.w[v] // α = 1: w·α = w/α = w
		case class[v] == clsB:
			u = new(big.Rat).Mul(in.w[v], alpha)
		case alpha.Sign() == 0:
			u = ratZero // α = 0 pairs trade nothing
		default:
			u = new(big.Rat).Quo(in.w[v], alpha)
		}
		if ratStr(u) != c.Utilities[v] {
			return fmt.Errorf("cert: utility[%d] = %q, derived %q", v, c.Utilities[v], ratStr(u))
		}
	}
	return nil
}

// checkWitness verifies one pair's Hall-condition flow witness over the
// current residual graph: every arc connects active neighbors with a
// non-negative flow, every active vertex's outflow equals its demand
// α·w(v) exactly, and no vertex's inflow exceeds its supply w(u). A
// feasible saturating assignment certifies w(Γ(S)∩V_i) ≥ α·w(S) for every
// subset S of the residual graph — the bottleneck lower bound — by max-flow
// min-cut, without enumerating subsets.
func (in *inst) checkWitness(active []bool, alpha *big.Rat, witness []FlowEdge) error {
	out := make(map[int]*big.Rat, len(witness))
	inflow := make(map[int]*big.Rat, len(witness))
	for i, fe := range witness {
		if fe.From < 0 || fe.From >= in.n || fe.To < 0 || fe.To >= in.n {
			return fmt.Errorf("witness[%d] endpoints (%d,%d) out of range", i, fe.From, fe.To)
		}
		if !active[fe.From] || !active[fe.To] {
			return fmt.Errorf("witness[%d] touches a removed vertex", i)
		}
		if !in.hasEdge(fe.From, fe.To) {
			return fmt.Errorf("witness[%d] arc (%d,%d) is not a residual edge", i, fe.From, fe.To)
		}
		f, err := parseNonNeg(fe.Flow)
		if err != nil {
			return fmt.Errorf("witness[%d]: %w", i, err)
		}
		if acc, ok := out[fe.From]; ok {
			acc.Add(acc, f)
		} else {
			out[fe.From] = new(big.Rat).Set(f)
		}
		if acc, ok := inflow[fe.To]; ok {
			acc.Add(acc, f)
		} else {
			inflow[fe.To] = new(big.Rat).Set(f)
		}
	}
	demand := new(big.Rat)
	for v := 0; v < in.n; v++ {
		if !active[v] {
			continue
		}
		demand.Mul(alpha, in.w[v])
		got, ok := out[v]
		if !ok {
			got = ratZero
		}
		if got.Cmp(demand) != 0 {
			return fmt.Errorf("witness demand not saturated at vertex %d: routed %s, need %s",
				v, ratStr(got), ratStr(demand))
		}
	}
	for u, f := range inflow {
		if f.Cmp(in.w[u]) > 0 {
			return fmt.Errorf("witness oversubscribes vertex %d: %s > w = %s", u, ratStr(f), ratStr(in.w[u]))
		}
	}
	return nil
}

// ringCtx is the verified ring side of a ratio or sweep certificate,
// reusable across the certificate's many split checks.
type ringCtx struct {
	in    *inst
	v     int
	W     *big.Rat // attacker weight w_v
	order []int    // cyclic order starting at v, toward the lower-indexed neighbor
}

// newRingCtx compiles the ring instance (already certified by the caller),
// verifies it really is a ring, and fixes the split orientation: the path of
// every split is [v¹, order[1], ..., order[n-1], v²], matching the solver's
// RingOrder convention (first step toward the lower-indexed neighbor).
func newRingCtx(ring *DecompositionCert, v int) (*ringCtx, error) {
	in, err := ring.Instance.compile()
	if err != nil {
		return nil, err
	}
	if in.n < 3 {
		return nil, fmt.Errorf("cert: ring needs at least 3 vertices, got %d", in.n)
	}
	if v < 0 || v >= in.n {
		return nil, fmt.Errorf("cert: agent %d out of range [0, %d)", v, in.n)
	}
	for u := 0; u < in.n; u++ {
		if len(in.adj[u]) != 2 {
			return nil, fmt.Errorf("cert: vertex %d has degree %d, ring needs 2", u, len(in.adj[u]))
		}
	}
	order := make([]int, 0, in.n)
	seen := make([]bool, in.n)
	prev, cur := -1, v
	for len(order) < in.n {
		if seen[cur] {
			return nil, fmt.Errorf("cert: graph is not a connected ring")
		}
		seen[cur] = true
		order = append(order, cur)
		next := in.adj[cur][0]
		if next == prev {
			next = in.adj[cur][1]
		}
		prev, cur = cur, next
	}
	if cur != v {
		return nil, fmt.Errorf("cert: graph is not a connected ring")
	}
	return &ringCtx{in: in, v: v, W: in.w[v], order: order}, nil
}

// checkSplit verifies one split certificate against the ring: the embedded
// path instance must be exactly the ring cut open at v with the identity
// weights at the ends, the path decomposition certificate must check, and
// the utilities must be the path cover's values at the two identities. It
// returns the parsed (U, W1).
func (rc *ringCtx) checkSplit(s *SplitCert, ringWeights []string) (u, w1 *big.Rat, err error) {
	w1, err = parseNonNeg(s.W1)
	if err != nil {
		return nil, nil, fmt.Errorf("cert: split w1: %w", err)
	}
	w2, err := parseNonNeg(s.W2)
	if err != nil {
		return nil, nil, fmt.Errorf("cert: split w2: %w", err)
	}
	if new(big.Rat).Add(w1, w2).Cmp(rc.W) != 0 {
		return nil, nil, fmt.Errorf("cert: split %s + %s ≠ w_v = %s", s.W1, s.W2, ratStr(rc.W))
	}
	n := rc.in.n
	p := &s.Path
	if p.Instance.N != n+1 {
		return nil, nil, fmt.Errorf("cert: split path has %d vertices, want %d", p.Instance.N, n+1)
	}
	if p.Instance.Weights[0] != s.W1 || p.Instance.Weights[n] != s.W2 {
		return nil, nil, fmt.Errorf("cert: split path leaf weights disagree with (w1, w2)")
	}
	for i := 1; i < n; i++ {
		if p.Instance.Weights[i] != ringWeights[rc.order[i]] {
			return nil, nil, fmt.Errorf("cert: split path weight[%d] = %q, ring has %q",
				i, p.Instance.Weights[i], ringWeights[rc.order[i]])
		}
	}
	if len(p.Instance.Edges) != n {
		return nil, nil, fmt.Errorf("cert: split path has %d edges, want %d", len(p.Instance.Edges), n)
	}
	for i, e := range p.Instance.Edges {
		if e[0] != i || e[1] != i+1 {
			return nil, nil, fmt.Errorf("cert: split path edge[%d] = (%d,%d), want (%d,%d)", i, e[0], e[1], i, i+1)
		}
	}
	if err := p.Check(); err != nil {
		return nil, nil, fmt.Errorf("cert: split path: %w", err)
	}
	if s.U1 != p.Utilities[0] || s.U2 != p.Utilities[n] {
		return nil, nil, fmt.Errorf("cert: split identity utilities disagree with the path cover")
	}
	u1, err := parseNonNeg(s.U1)
	if err != nil {
		return nil, nil, err
	}
	u2, err := parseNonNeg(s.U2)
	if err != nil {
		return nil, nil, err
	}
	u = new(big.Rat).Add(u1, u2)
	if ratStr(u) != s.U {
		return nil, nil, fmt.Errorf("cert: split U = %q, want U1+U2 = %q", s.U, ratStr(u))
	}
	return u, w1, nil
}

// checkRatioRule verifies ratio = best/honest with the solvers' zero-honest
// convention, and the exact Theorem 8 comparison.
func checkRatioRule(honest, bestU *big.Rat, ratio string, leqTwo bool) error {
	r, err := parseNonNeg(ratio)
	if err != nil {
		return fmt.Errorf("cert: ratio: %w", err)
	}
	switch {
	case honest.Sign() > 0:
		// ratio = best/honest ⇔ ratio·honest = best.
		if new(big.Rat).Mul(r, honest).Cmp(bestU) != 0 {
			return fmt.Errorf("cert: ratio %s ≠ best/honest", ratio)
		}
	case bestU.Sign() > 0:
		return fmt.Errorf("cert: positive attack utility with zero honest utility")
	default:
		if r.Cmp(ratOne) != 0 {
			return fmt.Errorf("cert: zero-utility instance must record ratio 1, got %s", ratio)
		}
	}
	if r.Cmp(ratTwo) > 0 {
		return fmt.Errorf("cert: ratio %s exceeds the Theorem 8 bound 2", ratio)
	}
	if !leqTwo {
		return fmt.Errorf("cert: leq_two is false but the ratio check passed")
	}
	return nil
}

// horner evaluates a polynomial with ascending coefficients at x.
func horner(coeffs []*big.Rat, x *big.Rat) *big.Rat {
	acc := new(big.Rat)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, coeffs[i])
	}
	return acc
}

// parseCoeffs parses closed-form coefficients (any sign) with a degree cap.
func parseCoeffs(name string, ss []string, maxLen int) ([]*big.Rat, error) {
	if len(ss) == 0 || len(ss) > maxLen {
		return nil, fmt.Errorf("cert: %s has %d coefficients, want 1..%d", name, len(ss), maxLen)
	}
	out := make([]*big.Rat, len(ss))
	for i, s := range ss {
		r, err := parseRat(s)
		if err != nil {
			return nil, fmt.Errorf("cert: %s[%d]: %w", name, i, err)
		}
		out[i] = r
	}
	return out, nil
}

// Check verifies the full inequality chain of a ratio certificate:
//
//	honest  = Ring.Utilities[V]            (ring cover, flow witnesses)
//	U(w1)   ≤ Best.U  for every certified candidate — the honest split,
//	          every piece best, every breakpoint-bracket endpoint — with
//	          equality attained by Best (the optimizer's exact maximum rule)
//	Best.U  = U1 + U2 of the certified best-split path cover
//	ratio   = Best.U / honest  and  ratio ≤ 2   (Theorem 8, exact)
//
// plus the piece geometry: pieces tile [0, w_v] in order, gaps between
// consecutive pieces are bracketed by certified boundary evaluations, and
// each piece's exact closed form reproduces its best value when
// FormulaExact is set.
func (c *RatioCert) Check() error {
	if c.Schema != SchemaRatio {
		return fmt.Errorf("cert: schema %q, want %q", c.Schema, SchemaRatio)
	}
	if err := c.Ring.Check(); err != nil {
		return fmt.Errorf("cert: ring: %w", err)
	}
	rc, err := newRingCtx(&c.Ring, c.V)
	if err != nil {
		return err
	}
	if c.Honest != c.Ring.Utilities[c.V] {
		return fmt.Errorf("cert: honest = %q, ring cover says %q", c.Honest, c.Ring.Utilities[c.V])
	}
	honest, err := parseNonNeg(c.Honest)
	if err != nil {
		return err
	}
	bestU, _, err := rc.checkSplit(&c.Best, c.Ring.Instance.Weights)
	if err != nil {
		return fmt.Errorf("cert: best: %w", err)
	}

	// Candidate maximum: the honest utility is always a candidate (the
	// optimizer seeds with the honest split, whose path utility equals the
	// ring utility by Lemma 9).
	maxU := honest
	better := func(u *big.Rat) {
		if u.Cmp(maxU) > 0 {
			maxU = u
		}
	}
	var prevHi *big.Rat
	for i := range c.Pieces {
		p := &c.Pieces[i]
		lo, err := parseNonNeg(p.Lo)
		if err != nil {
			return fmt.Errorf("cert: piece %d lo: %w", i, err)
		}
		hi, err := parseNonNeg(p.Hi)
		if err != nil {
			return fmt.Errorf("cert: piece %d hi: %w", i, err)
		}
		if lo.Cmp(hi) > 0 {
			return fmt.Errorf("cert: piece %d has lo > hi", i)
		}
		if i == 0 && lo.Sign() != 0 {
			return fmt.Errorf("cert: first piece starts at %s, want 0", p.Lo)
		}
		if prevHi != nil && prevHi.Cmp(lo) > 0 {
			return fmt.Errorf("cert: piece %d overlaps its predecessor", i)
		}
		if i == len(c.Pieces)-1 && hi.Cmp(rc.W) != 0 {
			return fmt.Errorf("cert: last piece ends at %s, want w_v = %s", p.Hi, ratStr(rc.W))
		}
		prevHi = hi
		pu, pw1, err := rc.checkSplit(&p.Best, c.Ring.Instance.Weights)
		if err != nil {
			return fmt.Errorf("cert: piece %d best: %w", i, err)
		}
		if pw1.Cmp(lo) < 0 || pw1.Cmp(hi) > 0 {
			return fmt.Errorf("cert: piece %d best split %s outside [%s, %s]", i, p.Best.W1, p.Lo, p.Hi)
		}
		better(pu)
		if p.FormulaExact {
			num, err := parseCoeffs(fmt.Sprintf("piece %d num", i), p.Num, 4)
			if err != nil {
				return err
			}
			den, err := parseCoeffs(fmt.Sprintf("piece %d den", i), p.Den, 3)
			if err != nil {
				return err
			}
			dv := horner(den, pw1)
			if dv.Sign() == 0 {
				return fmt.Errorf("cert: piece %d closed form has a pole at its best split", i)
			}
			// Num(w1)/Den(w1) = U ⇔ Num(w1) = U·Den(w1).
			if horner(num, pw1).Cmp(new(big.Rat).Mul(pu, dv)) != 0 {
				return fmt.Errorf("cert: piece %d closed form does not reproduce its best value", i)
			}
		}
	}
	if len(c.Pieces) == 0 && rc.W.Sign() != 0 {
		return fmt.Errorf("cert: no pieces for a positive-weight attacker")
	}
	boundary := make(map[string]bool, len(c.Boundary))
	for i := range c.Boundary {
		bu, _, err := rc.checkSplit(&c.Boundary[i], c.Ring.Instance.Weights)
		if err != nil {
			return fmt.Errorf("cert: boundary %d: %w", i, err)
		}
		better(bu)
		boundary[c.Boundary[i].W1] = true
	}
	for i := 0; i+1 < len(c.Pieces); i++ {
		if !boundary[c.Pieces[i].Hi] || !boundary[c.Pieces[i+1].Lo] {
			return fmt.Errorf("cert: breakpoint bracket between pieces %d and %d lacks a boundary evaluation", i, i+1)
		}
	}
	if maxU.Cmp(bestU) != 0 {
		return fmt.Errorf("cert: best U = %s but the certified candidates reach %s", ratStr(bestU), ratStr(maxU))
	}
	return checkRatioRule(honest, bestU, c.Ratio, c.LeqTwo)
}

// Check verifies a sweep certificate: the ring cover, every grid point's
// split (with the grid geometry w1_i = w_v·i/Grid re-derived exactly), the
// earliest-maximum best-point rule, and the ratio rule with the exact
// Theorem 8 comparison.
func (c *SweepCert) Check() error {
	if c.Schema != SchemaSweep {
		return fmt.Errorf("cert: schema %q, want %q", c.Schema, SchemaSweep)
	}
	if err := c.Ring.Check(); err != nil {
		return fmt.Errorf("cert: ring: %w", err)
	}
	rc, err := newRingCtx(&c.Ring, c.V)
	if err != nil {
		return err
	}
	if c.Honest != c.Ring.Utilities[c.V] {
		return fmt.Errorf("cert: honest = %q, ring cover says %q", c.Honest, c.Ring.Utilities[c.V])
	}
	honest, err := parseNonNeg(c.Honest)
	if err != nil {
		return err
	}
	if c.Grid < 1 || c.Grid > maxCertVertices {
		return fmt.Errorf("cert: grid %d outside [1, %d]", c.Grid, maxCertVertices)
	}
	if c.Start < 0 || c.Start > c.Grid {
		return fmt.Errorf("cert: start %d outside [0, %d]", c.Start, c.Grid)
	}
	if len(c.Points) == 0 || c.Start+len(c.Points) > c.Grid+1 {
		return fmt.Errorf("cert: %d points from start %d overflow grid %d", len(c.Points), c.Start, c.Grid)
	}
	us := make([]*big.Rat, len(c.Points))
	gridDen := new(big.Rat).SetInt64(int64(c.Grid))
	for i := range c.Points {
		want := new(big.Rat).SetInt64(int64(c.Start + i))
		want.Quo(want.Mul(want, rc.W), gridDen)
		if c.Points[i].W1 != ratStr(want) {
			return fmt.Errorf("cert: point %d has w1 = %q, grid says %q", i, c.Points[i].W1, ratStr(want))
		}
		u, _, err := rc.checkSplit(&c.Points[i], c.Ring.Instance.Weights)
		if err != nil {
			return fmt.Errorf("cert: point %d: %w", i, err)
		}
		us[i] = u
	}
	if c.BestIndex < 0 || c.BestIndex >= len(c.Points) {
		return fmt.Errorf("cert: best_index %d outside [0, %d)", c.BestIndex, len(c.Points))
	}
	bestU := us[c.BestIndex]
	for j, u := range us {
		switch {
		case j < c.BestIndex && u.Cmp(bestU) >= 0:
			return fmt.Errorf("cert: point %d ties or beats best_index %d (earliest-maximum rule)", j, c.BestIndex)
		case u.Cmp(bestU) > 0:
			return fmt.Errorf("cert: point %d beats best_index %d", j, c.BestIndex)
		}
	}
	return checkRatioRule(honest, bestU, c.Ratio, c.LeqTwo)
}

package mechanism

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/allocation"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// PR is the iterative proportional-response backend: the Wu–Zhang dynamics
// (Definition 1 of the paper) iterated in exact rational arithmetic and
// stopped at a rational tolerance. It is the constructive counterpart of
// the fair resource-exchange equilibrium that Yan–Zhu (arXiv:1905.01670)
// compute combinatorially: the iteration converges toward the same
// equilibrium utilities, but the mechanism actually allocates the
// truncated iterate — so its fairness, efficiency, and Sybil incentive
// ratio can be compared against BD's exact equilibrium under identical
// attacks.
//
// Plain exact iteration squares denominator sizes every round, so each
// round quantizes the transfers onto the dyadic lattice {k·w_v/2^Prec}:
// every transfer of v is rounded down to the lattice and the rounding
// remainder goes to v's last neighbor in adjacency order, keeping the row
// sums Σ_u x_vu = w_v exact. States therefore live on a finite lattice,
// the iteration is deterministic, and termination is exact: the run stops
// when the largest per-edge change is at most Tol·max_v w_v (or after
// Rounds rounds).
type PR struct {
	// Rounds bounds the iteration count (default 256).
	Rounds int
	// Prec is the dyadic lattice precision in bits (default 24): transfers
	// are multiples of w_v/2^Prec.
	Prec uint
	// Tol is the relative termination tolerance (default 1/2^20): the run
	// stops when max |x(t+1)−x(t)| ≤ Tol·max_v w_v.
	Tol numeric.Rat
}

// Name implements Mechanism.
func (PR) Name() string { return "pr" }

// Description implements Describer.
func (PR) Description() string {
	return "exact-rational proportional-response iteration on a dyadic lattice, stopped at a rational tolerance (Wu-Zhang dynamics; cf. Yan-Zhu arXiv:1905.01670)"
}

// Certifiable implements Certifier: PR allocations are truncated iterates,
// not certified equilibria — no certificate format exists for them.
func (PR) Certifiable() bool { return false }

func (m PR) withDefaults() PR {
	if m.Rounds <= 0 {
		m.Rounds = 256
	}
	if m.Prec == 0 {
		m.Prec = 24
	}
	if m.Tol.Sign() <= 0 {
		m.Tol = numeric.New(1, 1<<20)
	}
	return m
}

// Allocate implements Mechanism.
func (m PR) Allocate(ctx context.Context, g *graph.Graph) (*allocation.Allocation, error) {
	m = m.withDefaults()
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("mechanism/pr: empty graph")
	}
	// x[v][j] is what v sends to its j-th neighbor (adjacency order).
	x := make([][]numeric.Rat, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		x[v] = make([]numeric.Rat, len(nb))
		if len(nb) == 0 || g.Weight(v).IsZero() {
			continue
		}
		share := g.Weight(v).DivInt(int64(len(nb)))
		for j := range nb {
			x[v][j] = share
		}
	}
	// reverse[v][j] = position of v in the adjacency list of its j-th
	// neighbor, so incoming transfers are read without search.
	reverse := make([][]int, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		reverse[v] = make([]int, len(nb))
		for j, u := range nb {
			reverse[v][j] = indexOf(g.Neighbors(u), v)
		}
	}
	wmax := numeric.MaxOf(g.Weights())
	tolAbs := m.Tol.Mul(wmax)
	next := make([][]numeric.Rat, n)
	for v := range next {
		next[v] = make([]numeric.Rat, len(x[v]))
	}
	for round := 0; round < m.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			wv := g.Weight(v)
			if len(x[v]) == 0 || wv.IsZero() {
				continue
			}
			// r_v = Σ_u x_uv, what v received this round.
			recv := numeric.Zero
			nb := g.Neighbors(v)
			for j := range nb {
				recv = recv.Add(x[nb[j]][reverse[v][j]])
			}
			if recv.IsZero() {
				// Nothing received: keep the current split (the equal split
				// persists, matching the dynamics' convention).
				copy(next[v], x[v])
				continue
			}
			// Proportional response, quantized: all but the last neighbor
			// round down to the lattice, the last takes the remainder.
			rest := wv
			for j := range nb {
				if j == len(nb)-1 {
					next[v][j] = rest
					break
				}
				raw := x[nb[j]][reverse[v][j]].Mul(wv).Div(recv)
				q := latticeFloor(raw, wv, m.Prec)
				next[v][j] = q
				rest = rest.Sub(q)
			}
		}
		// Termination: largest per-edge change at most the tolerance.
		maxDelta := numeric.Zero
		for v := 0; v < n; v++ {
			for j := range x[v] {
				if d := next[v][j].Sub(x[v][j]).Abs(); maxDelta.Less(d) {
					maxDelta = d
				}
			}
		}
		x, next = next, x
		if maxDelta.LessEq(tolAbs) {
			break
		}
	}
	a := allocation.New(n)
	for v := 0; v < n; v++ {
		for j, u := range g.Neighbors(v) {
			if !x[v][j].IsZero() {
				a.Add(v, u, x[v][j])
			}
		}
	}
	return a, nil
}

// latticeFloor rounds raw ∈ [0, wv] down to the lattice {k·wv/2^prec}:
// floor(raw·2^prec/wv)·wv/2^prec, exactly.
func latticeFloor(raw, wv numeric.Rat, prec uint) numeric.Rat {
	if raw.Sign() <= 0 {
		return numeric.Zero
	}
	// t = raw/wv·2^prec ≥ 0; k = ⌊t⌋ via big integer division.
	t := raw.Div(wv).Mul(pow2(prec))
	k := new(big.Int).Quo(t.Num(), t.Denom())
	return numeric.FromBig(new(big.Rat).SetInt(k)).Mul(wv).Div(pow2(prec))
}

// pow2 returns 2^prec as a Rat.
func pow2(prec uint) numeric.Rat {
	if prec < 63 {
		return numeric.FromInt(1 << prec)
	}
	return numeric.FromBig(new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), prec)))
}

// indexOf returns the position of v in nb (nb always contains v here).
func indexOf(nb []int, v int) int {
	for i, u := range nb {
		if u == v {
			return i
		}
	}
	panic("mechanism: adjacency lists out of sync")
}

func init() { Register(PR{}) }

// Ring attack walkthrough: follow the paper's proof machinery on one
// instance of the tight lower-bound family — the honest split (Lemma 9),
// the optimizer's structure pieces (Section III-B intervals), the two-stage
// walk with its lemma checks, and the final Theorem 8 verdict.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Family member k = 4: a 13-ring of unit peers plus one heavy peer
	// (weight 10^6); the attacker sits at ring distance 3 from it. The
	// H → ∞ ratio of this member is (2k+1)/(k+1) = 9/5.
	g, v, err := repro.LowerBoundFamily(4, repro.RatFromInt(1000000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring of %d agents, attacker %d, heavy peer 0 (w = %s)\n",
		g.N(), v, g.Weight(0))

	in, err := repro.NewInstance(g, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest utility U_v = %s; honest split (w1⁰, w2⁰) = (%s, %s)\n",
		in.HonestU, in.W1Zero, in.W2Zero)

	// Lemma 9: the honest split is utility-neutral.
	hs, err := in.HonestSplitEval()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 9 check: U(w1⁰, w2⁰) = %s (equals U_v: %v)\n",
		hs.U, hs.U.Equal(in.HonestU))

	// Optimize the split and show the discovered structure pieces.
	opt, err := in.Optimize(repro.OptimizeOptions{Grid: 96})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d structure pieces over [0, %s]:\n", len(opt.Pieces), in.W())
	for i, p := range opt.Pieces {
		fmt.Printf("  piece %d: [%.6f, %.6f] classes (v¹=%s, v²=%s) samePair=%v bestU=%.6f\n",
			i, p.Lo.Float64(), p.Hi.Float64(), p.ClassV1, p.ClassV2, p.SamePair, p.BestU.Float64())
	}
	fmt.Printf("best split w1* ≈ %.6f with attack utility %.6f\n",
		opt.BestW1.Float64(), opt.BestU.Float64())
	fmt.Printf("incentive ratio ζ_v = %.6f (limit for this family member: %s)\n",
		opt.Ratio.Float64(), repro.LowerBoundLimitRatio(4))

	// Reproduce the proof's two-stage walk at the optimum.
	rep, err := in.AnalyzeStages(opt.BestW1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstage analysis (manipulator class %s, initial form %s, adjusted=%v):\n",
		rep.VClass, rep.Form, rep.Adjusted)
	for _, c := range rep.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", status, c.Name, c.Detail)
	}
	fmt.Printf("Theorem 8 holds: %v (U* = %.6f ≤ 2·U_v = %.6f)\n",
		rep.BoundHolds, rep.UStar.Float64(), in.HonestU.Float64()*2)
}

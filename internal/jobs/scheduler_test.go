package jobs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
)

func newSched(t *testing.T, st *Store, pool int, run Runner) *Scheduler {
	t.Helper()
	s, err := NewScheduler(SchedulerConfig{Store: st, Pool: par.NewLimiter(pool), Run: run})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, st *Store, id string, want State) *Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rec, ok := st.Get(id); ok && rec.State == want {
			return rec
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec, _ := st.Get(id)
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, rec)
	return nil
}

func TestSchedulerRunsJob(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		if err := ckpt(0, []Point{{W1: "0", U: "1"}}); err != nil {
			return nil, err
		}
		return []byte(`{"answer":` + string(rec.Spec) + `}`), nil
	}
	s := newSched(t, st, 2, run)
	s.Start()
	rec, enqueued, err := s.Submit(context.Background(), Submission{Key: "a", Kind: "sweep", Spec: []byte(`42`)})
	if err != nil || !enqueued {
		t.Fatalf("submit: %v %v", enqueued, err)
	}
	done := waitState(t, st, rec.ID, StateDone)
	if string(done.Result) != `{"answer":42}` {
		t.Fatalf("result %q", done.Result)
	}
	if done.NextIndex != 1 || len(done.Points) != 1 {
		t.Fatalf("checkpoint not persisted: %+v", done)
	}
	stats := s.Stats()
	if stats.Transitions[StateDone] != 1 || stats.AgeCount != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	release := make(chan struct{})
	var mu sync.Mutex
	var ran []string
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		if rec.Key == "gate" {
			<-release
			return []byte(`{}`), nil
		}
		mu.Lock()
		ran = append(ran, rec.Key)
		mu.Unlock()
		return []byte(`{}`), nil
	}
	s := newSched(t, st, 1, run)
	s.Start()
	ctx := context.Background()
	gate, _, err := s.Submit(ctx, Submission{Key: "gate", Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, gate.ID, StateRunning)
	// With the only worker busy, queue low before high: high must still win.
	low, _, _ := s.Submit(ctx, Submission{Key: "low", Kind: "t", Priority: 1})
	hi, _, _ := s.Submit(ctx, Submission{Key: "high", Kind: "t", Priority: 9})
	close(release)
	waitState(t, st, low.ID, StateDone)
	waitState(t, st, hi.ID, StateDone)
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 2 || ran[0] != "high" || ran[1] != "low" {
		t.Fatalf("execution order %v, want [high low]", ran)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	release := make(chan struct{})
	defer close(release)
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		if rec.Key == "gate" {
			<-release
		}
		return []byte(`{}`), nil
	}
	s := newSched(t, st, 1, run)
	s.Start()
	ctx := context.Background()
	gate, _, _ := s.Submit(ctx, Submission{Key: "gate", Kind: "t"})
	waitState(t, st, gate.ID, StateRunning)
	victim, _, _ := s.Submit(ctx, Submission{Key: "victim", Kind: "t"})
	rec, err := s.Cancel(ctx, victim.ID)
	if err != nil || rec.State != StateCanceled {
		t.Fatalf("cancel queued: state=%s err=%v", rec.State, err)
	}
	if _, err := s.Cancel(ctx, victim.ID); err != ErrTerminal {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
	if _, err := s.Cancel(ctx, "jdeadbeefdeadbeef"); err != ErrNotFound {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestSchedulerCancelRunning(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	started := make(chan struct{})
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := newSched(t, st, 1, run)
	s.Start()
	ctx := context.Background()
	rec, _, err := s.Submit(ctx, Submission{Key: "victim", Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(ctx, rec.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, st, rec.ID, StateCanceled)
	if !got.CancelRequested {
		t.Fatalf("CancelRequested not persisted: %+v", got)
	}
}

func TestSchedulerShutdownRequeuesAndResumes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openStore(t, dir, StoreConfig{})
	checkpointed := make(chan struct{})
	// First incarnation: checkpoint two units, then hang until shutdown.
	run1 := func(jctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		if err := ckpt(rec.NextIndex, []Point{{W1: "0", U: "1"}, {W1: "1/4", U: "2"}}); err != nil {
			return nil, err
		}
		close(checkpointed)
		<-jctx.Done()
		return nil, jctx.Err()
	}
	s1 := newSched(t, st, 1, run1)
	s1.Start()
	rec, _, err := s1.Submit(ctx, Submission{Key: "resume-me", Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	<-checkpointed
	s1.Close()
	requeued := waitState(t, st, rec.ID, StateQueued)
	if requeued.NextIndex != 2 {
		t.Fatalf("checkpoint lost on shutdown requeue: %+v", requeued)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation over the same directory: Recover must requeue it
	// and the runner must see the checkpointed prefix.
	st2 := openStore(t, dir, StoreConfig{})
	var resumeFrom int
	var once sync.Once
	run2 := func(jctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		once.Do(func() { resumeFrom = rec.NextIndex })
		if err := ckpt(rec.NextIndex, []Point{{W1: "1/2", U: "3"}}); err != nil {
			return nil, err
		}
		return []byte(`{"resumed":true}`), nil
	}
	s2, err := NewScheduler(SchedulerConfig{Store: st2, Pool: par.NewLimiter(1), Run: run2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	n, err := s2.Recover(ctx)
	if err != nil || n != 1 {
		t.Fatalf("Recover: n=%d err=%v", n, err)
	}
	s2.Start()
	done := waitState(t, st2, rec.ID, StateDone)
	if resumeFrom != 2 {
		t.Fatalf("runner resumed from %d, want 2", resumeFrom)
	}
	if done.NextIndex != 3 || len(done.Points) != 3 {
		t.Fatalf("final checkpoint: %+v", done)
	}
	if s2.Stats().Recovered != 1 {
		t.Fatalf("recovered counter: %+v", s2.Stats())
	}
}

func TestSchedulerRecoverFaultAbortsBoot(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, StoreConfig{})
	submitN(t, st, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, StoreConfig{})
	s, err := NewScheduler(SchedulerConfig{
		Store: st2,
		Pool:  par.NewLimiter(1),
		Run:   func(context.Context, *Record, CheckpointFunc) ([]byte, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	inj, err := fault.New(1, fault.Rule{Site: fault.SiteJobsRecover, Kind: fault.KindError, Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Recover(fault.ContextWith(context.Background(), inj))
	if err == nil {
		t.Fatal("injected recover fault did not abort")
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs before the fault, want 1", n)
	}
}

func TestSchedulerPanicContainment(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		panic("poisoned job")
	}
	s := newSched(t, st, 1, run)
	s.Start()
	rec, _, err := s.Submit(context.Background(), Submission{Key: "boom", Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, st, rec.ID, StateFailed)
	if !strings.Contains(failed.Error, "poisoned job") {
		t.Fatalf("panic not captured in Error: %q", failed.Error)
	}
}

func TestSchedulerDedupe(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	block := make(chan struct{})
	defer close(block)
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		<-block
		return []byte(`{}`), nil
	}
	s := newSched(t, st, 1, run)
	s.Start()
	ctx := context.Background()
	a, _, err := s.Submit(ctx, Submission{Key: "same", Kind: "t"})
	if err != nil {
		t.Fatal(err)
	}
	b, enqueued, err := s.Submit(ctx, Submission{Key: "same", Kind: "t"})
	if err != nil || enqueued {
		t.Fatalf("duplicate enqueued: %v %v", enqueued, err)
	}
	if a.ID != b.ID {
		t.Fatalf("IDs differ: %s vs %s", a.ID, b.ID)
	}
	if s.Stats().Deduped != 1 {
		t.Fatalf("deduped counter: %+v", s.Stats())
	}
}

func TestSchedulerManyJobs(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	run := func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error) {
		return []byte(fmt.Sprintf(`{"k":%q}`, rec.Key)), nil
	}
	s := newSched(t, st, 4, run)
	s.Start()
	ctx := context.Background()
	var ids []string
	for i := 0; i < 40; i++ {
		rec, _, err := s.Submit(ctx, Submission{Key: fmt.Sprintf("k%d", i), Kind: "t", Priority: i % 3})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		waitState(t, st, id, StateDone)
	}
	if got := s.Stats().Transitions[StateDone]; got != 40 {
		t.Fatalf("done transitions %d, want 40", got)
	}
}

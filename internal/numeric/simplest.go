package numeric

import "math/big"

// SimplestBetween returns the rational with the smallest denominator (the
// Stern–Brocot "simplest" fraction) strictly inside the open interval
// (a, b). It panics unless a < b.
//
// The decomposition breakpoints of Section III-B are ratios of small weight
// sums; after an exact bisection brackets one inside (a, b), the simplest
// rational in the bracket recovers the breakpoint itself, letting the
// interval partition represent singleton intervals ⟨a_i, a_i⟩ exactly.
func SimplestBetween(a, b Rat) Rat {
	if b.Cmp(a) <= 0 {
		panic("numeric: SimplestBetween needs a < b")
	}
	switch {
	case a.Sign() >= 0:
		return simplestNonneg(a, b)
	case b.Sign() > 0:
		return Zero
	default:
		return simplestNonneg(b.Neg(), a.Neg()).Neg()
	}
}

// simplestNonneg handles 0 ≤ a < b via the Stern–Brocot recursion.
func simplestNonneg(a, b Rat) Rat {
	fa := floorRat(a)
	faR := FromBig(new(big.Rat).SetInt(fa))
	if next := faR.Add(One); next.Less(b) {
		// fa+1 ∈ (a, b): the smallest integer beyond a.
		return next
	}
	// Now (a, b) ⊆ (fa, fa+1].
	if a.Equal(faR) {
		// (fa, b) with b − fa ∈ (0, 1]: simplest is fa + 1/n for the
		// smallest integer n with 1/n < b − fa.
		n := floorRat(b.Sub(a).Inv())
		nRat := FromBig(new(big.Rat).SetInt(n)).Add(One)
		return a.Add(nRat.Inv())
	}
	// Fractional parts f ∈ (a−fa, b−fa) ⊆ (0, 1]: f = 1/g with g in the
	// reversed reciprocal interval.
	fracA := a.Sub(faR)
	fracB := b.Sub(faR)
	inner := simplestNonneg(fracB.Inv(), fracA.Inv())
	return faR.Add(inner.Inv())
}

// floorRat returns ⌊r⌋ as a big.Int.
func floorRat(r Rat) *big.Int {
	br := r.bigVal()
	q := new(big.Int)
	m := new(big.Int)
	q.QuoRem(br.Num(), br.Denom(), m)
	if m.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q
}

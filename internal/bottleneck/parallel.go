package bottleneck

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
)

// DecomposeParallel computes the bottleneck decomposition by decomposing
// each connected component concurrently and merging the per-component pair
// sequences by α-ratio.
//
// This is exact, not approximate: Γ never crosses components, so the global
// maximal bottleneck at each stage is the union of the per-component
// bottlenecks attaining the current global minimum α. The only subtlety is
// ties — when bottlenecks in different components share an α, the global
// decomposition extracts them as ONE pair, so the merge unions equal-α
// pairs (and the final α = 1 self-pairs, including the zero-weight
// convention pairs, collapse into one).
//
// For a connected graph this adds only goroutine overhead over
// DecomposeWith; its value is on the disconnected graphs the Sybil analysis
// mass-produces (every two-attacker split of a ring is two disjoint paths).
func DecomposeParallel(g *graph.Graph, engine Engine, workers int) (*Decomposition, error) {
	return DecomposeParallelCtx(context.Background(), g, engine, workers)
}

// DecomposeParallelCtx is DecomposeParallel with cancellation and tracing:
// the context reaches every per-component decomposition, and when it
// carries an obs span the merge is recorded as one span with the component
// fan-out on it.
func DecomposeParallelCtx(ctx context.Context, g *graph.Graph, engine Engine, workers int) (*Decomposition, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("bottleneck: empty graph")
	}
	comps := g.Components()
	if len(comps) == 1 {
		return decomposeInner(ctx, g, engine, nil)
	}
	ctx, span := obs.Start(ctx, "bottleneck.decompose_parallel")
	defer span.End()
	if span != nil {
		span.SetAttr("components", strconv.Itoa(len(comps)))
	}
	type result struct {
		dec  *Decomposition
		orig []int
		err  error
	}
	results := par.MapCtx(ctx, len(comps), workers, func(ctx context.Context, i int) result {
		sub, orig := g.InducedSubgraph(comps[i])
		dec, err := decomposeInner(ctx, sub, engine, nil)
		return result{dec: dec, orig: orig, err: err}
	})
	// Zero-weight convention pairs (w(B) = 0, the trailing self-pairs of
	// DecomposeWith's zero-attachment convention) stay out of the α-merge:
	// the global extraction never sees zero-weight vertices in a real stage,
	// so they union into the single trailing pair instead of being absorbed
	// by a positive α = 1 bottleneck.
	var all []Pair
	var zeroTrail []int
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("bottleneck: component %d: %w", i, r.err)
		}
		for _, p := range r.dec.Pairs {
			b := mapBack(p.B, r.orig)
			if g.WeightOf(b).Sign() == 0 {
				zeroTrail = unionSortedInts(zeroTrail, b)
				continue
			}
			all = append(all, Pair{
				B:     b,
				C:     mapBack(p.C, r.orig),
				Alpha: p.Alpha,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Alpha.Less(all[j].Alpha) })
	// Union equal-α runs into single pairs, as the global extraction would.
	d := &Decomposition{}
	for i := 0; i < len(all); {
		merged := all[i]
		j := i + 1
		for ; j < len(all) && all[j].Alpha.Equal(merged.Alpha); j++ {
			merged.B = unionSortedInts(merged.B, all[j].B)
			merged.C = unionSortedInts(merged.C, all[j].C)
		}
		d.Pairs = append(d.Pairs, merged)
		i = j
	}
	if len(zeroTrail) > 0 {
		d.Pairs = append(d.Pairs, Pair{B: zeroTrail, C: zeroTrail, Alpha: numeric.One})
	}
	if err := d.finish(g.N()); err != nil {
		return nil, err
	}
	return d, nil
}

// unionSortedInts merges two sorted, disjoint int slices.
func unionSortedInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

package build_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/graph"
)

// TestDifferentialReplay is the acceptance gate of the certificate harness:
// 100 random ring instances, each split-evaluated by the incremental
// SplitSolver AND the brute-force subset-enumeration engine, with every
// answer certified and cross-checked.
//
//   - the two engines must produce identical splits (same w1, same U),
//   - the certificate built from the incremental answer must pass
//     cert.Check — a package that imports no solver code, so the check is
//     independent verification, not a replay.
func TestDifferentialReplay(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20250807))
	checked := 0
	for checked < 100 {
		n := 3 + rng.Intn(5) // brute force enumerates 2^(n+1) subsets
		g := graph.RandomRing(rng, n, graph.DistUniform)
		v := rng.Intn(n)
		in, err := core.NewInstanceCtx(ctx, g, v)
		if err != nil {
			continue // zero-weight rings the allocation rejects
		}
		w1 := g.Weight(v).MulInt(int64(rng.Intn(5))).DivInt(4)

		evInc, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			t.Fatalf("instance %d: incremental eval: %v", checked, err)
		}
		// Brute-force oracle: decompose the same path with exhaustive
		// subset enumeration and compare the answers.
		decBrute, err := bottleneck.DecomposeWith(evInc.Path, bottleneck.EngineBrute)
		if err != nil {
			t.Fatalf("instance %d: brute decompose: %v", checked, err)
		}
		u1 := decBrute.Utility(evInc.Path, evInc.V1)
		u2 := decBrute.Utility(evInc.Path, evInc.V2)
		if !u1.Equal(evInc.U1) || !u2.Equal(evInc.U2) {
			t.Fatalf("instance %d: engines disagree: incremental (%v, %v), brute (%v, %v)",
				checked, evInc.U1, evInc.U2, u1, u2)
		}

		// Certify the incremental answer; Check must accept it. cert does
		// not import bottleneck/core/sybil, so this is independent evidence.
		sc, err := build.Split(ctx, evInc)
		if err != nil {
			t.Fatalf("instance %d: build: %v", checked, err)
		}
		if err := cert.Check(&sc.Path); err != nil {
			t.Fatalf("instance %d: certificate rejected: %v", checked, err)
		}
		// The brute-force cover certifies too, and both certificates agree.
		cBrute, err := build.Decomposition(ctx, evInc.Path, decBrute)
		if err != nil {
			t.Fatalf("instance %d: brute build: %v", checked, err)
		}
		if err := cert.Check(cBrute); err != nil {
			t.Fatalf("instance %d: brute certificate rejected: %v", checked, err)
		}
		if len(cBrute.Pairs) != len(sc.Path.Pairs) {
			t.Fatalf("instance %d: engines certify different covers (%d vs %d pairs)",
				checked, len(cBrute.Pairs), len(sc.Path.Pairs))
		}
		for i := range cBrute.Pairs {
			if cBrute.Pairs[i].Alpha != sc.Path.Pairs[i].Alpha {
				t.Fatalf("instance %d pair %d: α %s vs %s",
					checked, i, cBrute.Pairs[i].Alpha, sc.Path.Pairs[i].Alpha)
			}
		}
		checked++
	}
}

// FuzzSplitDifferential cross-checks the incremental SplitSolver against
// the stock per-call engine on fuzzer-chosen rings and splits, certifying
// the incremental answer each time.
func FuzzSplitDifferential(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(0), uint8(2), uint8(4))
	f.Add(int64(42), uint8(3), uint8(1), uint8(0), uint8(1))
	f.Add(int64(7), uint8(8), uint8(7), uint8(9), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, vRaw, num, den uint8) {
		ctx := context.Background()
		n := 3 + int(nRaw)%6
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRing(rng, n, graph.DistUniform)
		v := int(vRaw) % n
		in, err := core.NewInstanceCtx(ctx, g, v)
		if err != nil {
			t.Skip()
		}
		d := 1 + int(den)%32
		w1 := g.Weight(v).MulInt(int64(int(num) % (d + 1))).DivInt(int64(d))

		evInc, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			t.Fatalf("incremental eval: %v", err)
		}
		in.SetIncremental(false)
		in.SetEvalCache(false)
		evStock, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			t.Fatalf("stock eval: %v", err)
		}
		if !evInc.U.Equal(evStock.U) || evInc.Signature != evStock.Signature {
			t.Fatalf("engines disagree at w1=%v: incremental U=%v sig=%q, stock U=%v sig=%q",
				w1, evInc.U, evInc.Signature, evStock.U, evStock.Signature)
		}
		sc, err := build.Split(ctx, evInc)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if err := cert.Check(&sc.Path); err != nil {
			t.Fatalf("certificate rejected: %v", err)
		}
	})
}

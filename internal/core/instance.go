// Package core implements the paper's primary contribution: the analysis of
// a Sybil attack against the BD Allocation Mechanism on ring networks, whose
// incentive ratio Theorem 8 pins to exactly 2.
//
// An Instance fixes a ring G and a manipulative agent v. Splitting v into
// two identities v¹, v² (one per ring neighbor) turns the ring into the
// path P_v(w1, w2) with the identities as leaves. The package provides:
//
//   - exact evaluation of any split (and of the paper's off-simplex
//     intermediate configurations P_v(w1, w2) with w1 + w2 ≠ w_v used by the
//     two-stage proof),
//   - the honest split (w1⁰, w2⁰) of Lemma 9, read off the exact BD
//     allocation of the ring,
//   - a piece-aware optimizer for the attacker's best split (optimize.go),
//   - the two-stage decomposition of the proof with per-stage utility
//     deltas, the initial-form classification of Lemmas 14/20, and the
//     Adjusting Technique (stages.go),
//   - a Theorem 8 verdict for whole instances (theorem.go).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Instance is a ring resource-sharing game with a designated manipulative
// agent.
//
// An Instance memoizes split evaluations: every distinct (w1, w2) pair is
// decomposed at most once (exact rational keys, so 1/3 and 2/6 share an
// entry), and fresh evaluations run through an incremental
// bottleneck.SplitSolver that reuses interior DP state across the sweep.
// Both layers are exact and safe for concurrent use — the optimizer's grid
// phase evaluates splits from many goroutines.
type Instance struct {
	G *graph.Graph // the ring
	V int          // the manipulative agent

	// Dec is the bottleneck decomposition of the ring.
	Dec *bottleneck.Decomposition
	// HonestU is U_v(G; w), the utility without deviation.
	HonestU numeric.Rat
	// W1Zero and W2Zero are the amounts v sends to its two neighbors under
	// the honest BD allocation; by Lemma 9, splitting with exactly these
	// weights reproduces HonestU on the path.
	W1Zero, W2Zero numeric.Rat

	// interior lists the ring vertices between the two neighbors in path
	// order n1 ... n2 (i.e. the ring order starting after v).
	interior []int
	n1, n2   int

	// Split-evaluation machinery, fixed at construction: the interior
	// weights and identity labels never change between evaluations, so they
	// are computed once, and path-weight scratch slices are pooled
	// (graph.Path copies its input).
	interiorWs     []numeric.Rat
	origOf         []int
	label1, label2 string
	solver         *bottleneck.SplitSolver
	wsPool         sync.Pool

	evalMu    sync.RWMutex
	evalCache map[evalKey]*PathEval

	cacheOff, incrementalOff atomic.Bool
	cacheHits, cacheMisses   atomic.Int64
}

// evalKey is the exact identity of a configuration: canonical rational
// strings, so equal rationals with different representations collide.
type evalKey struct {
	w1, w2 string
}

// EvalStats reports the Instance's split-evaluation cache behavior.
type EvalStats struct {
	// CacheHits / CacheMisses count EvalPair calls served from / added to
	// the per-instance evaluation cache.
	CacheHits, CacheMisses int64
	// Solver holds the incremental engine's own counters (warm starts,
	// transfer and tail cache hits, stock-engine fallbacks).
	Solver bottleneck.SplitSolverStats
}

// NewInstance validates g as a ring and precomputes the honest-side data.
func NewInstance(g *graph.Graph, v int) (*Instance, error) {
	return NewInstanceCtx(context.Background(), g, v)
}

// NewInstanceCtx is NewInstance with cancellation and tracing threaded into
// the honest-side decomposition.
func NewInstanceCtx(ctx context.Context, g *graph.Graph, v int) (*Instance, error) {
	if !g.IsRing() {
		return nil, fmt.Errorf("core: graph is not a ring")
	}
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("core: vertex %d out of range", v)
	}
	ctx, span := obs.Start(ctx, "core.new_instance")
	defer span.End()
	dec, err := bottleneck.DecomposeCtx(ctx, g, bottleneck.EngineAuto)
	if err != nil {
		return nil, fmt.Errorf("core: decomposing ring: %w", err)
	}
	alloc, err := allocation.Compute(g, dec)
	if err != nil {
		return nil, fmt.Errorf("core: allocating on ring: %w", err)
	}
	ring, err := g.RingOrder(v)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		G:        g,
		V:        v,
		Dec:      dec,
		HonestU:  dec.Utility(g, v),
		interior: ring[1:],
		n1:       ring[1],
		n2:       ring[len(ring)-1],
	}
	in.W1Zero = alloc.Get(v, in.n1)
	in.W2Zero = alloc.Get(v, in.n2)
	if !in.W1Zero.Add(in.W2Zero).Equal(g.Weight(v)) {
		return nil, fmt.Errorf("core: honest allocation sends %v+%v ≠ w_v = %v",
			in.W1Zero, in.W2Zero, g.Weight(v))
	}
	n := len(in.interior) + 2
	in.interiorWs = make([]numeric.Rat, len(in.interior))
	in.origOf = make([]int, n)
	in.origOf[0], in.origOf[n-1] = -1, -1
	for i, u := range in.interior {
		in.interiorWs[i] = g.Weight(u)
		in.origOf[i+1] = u
	}
	in.label1 = fmt.Sprintf("%s^1", g.Label(v))
	in.label2 = fmt.Sprintf("%s^2", g.Label(v))
	in.solver = bottleneck.NewSplitSolver(in.interiorWs)
	in.wsPool.New = func() any {
		ws := make([]numeric.Rat, n)
		return &ws
	}
	in.evalCache = make(map[evalKey]*PathEval)
	return in, nil
}

// SetEvalCache enables or disables the per-instance evaluation cache
// (enabled by default). Disabling is a benchmarking knob: correctness never
// depends on the cache.
func (in *Instance) SetEvalCache(on bool) { in.cacheOff.Store(!on) }

// SetIncremental enables or disables the incremental split engine (enabled
// by default); when off, fresh evaluations run a stock
// bottleneck.DecomposeWith per call, reproducing the pre-cache behavior.
func (in *Instance) SetIncremental(on bool) { in.incrementalOff.Store(!on) }

// EvalStats returns a snapshot of the evaluation-cache counters.
func (in *Instance) EvalStats() EvalStats {
	return EvalStats{
		CacheHits:   in.cacheHits.Load(),
		CacheMisses: in.cacheMisses.Load(),
		Solver:      in.solver.Stats(),
	}
}

// W returns w_v, the attacker's total endowment.
func (in *Instance) W() numeric.Rat { return in.G.Weight(in.V) }

// Neighbors returns the attacker's two ring neighbors (n1, n2); identity v¹
// attaches to n1 and v² to n2.
func (in *Instance) Neighbors() (n1, n2 int) { return in.n1, in.n2 }

// PathEval is the exact outcome of one configuration P_v(w1, w2).
type PathEval struct {
	W1, W2 numeric.Rat
	// Path is the evaluated path graph; position 0 is v¹, position N-1 is
	// v², positions 1..N-2 are the ring interior in order n1..n2.
	Path *graph.Graph
	// OrigOf maps path positions 1..N-2 back to ring vertex indices.
	OrigOf []int
	// V1, V2 are the path positions of the identities (0 and N-1).
	V1, V2 int
	// Dec is the bottleneck decomposition of Path.
	Dec *bottleneck.Decomposition
	// U1, U2 are the identities' utilities; U = U1 + U2.
	U1, U2, U numeric.Rat
	// Signature is Dec's structure signature (piece identity).
	Signature string
}

// EvalPair evaluates the configuration P_v(w1, w2) for arbitrary
// non-negative leaf weights — including the off-simplex intermediate
// configurations of the proof's Stages C-1/C-2 and D-1/D-2 where
// w1 + w2 ≠ w_v. Results are memoized per exact (w1, w2), so repeated
// evaluations (bisection revisits, breakpoint re-checks, the honest-split
// seed) return the same *PathEval without re-decomposing. PathEval is
// immutable after construction, which makes the sharing sound.
func (in *Instance) EvalPair(w1, w2 numeric.Rat) (*PathEval, error) {
	return in.EvalPairCtx(context.Background(), w1, w2)
}

// EvalPairCtx is EvalPair with cancellation threaded into the underlying
// decomposition (both the incremental solver and the stock engine). A
// canceled evaluation returns ctx.Err() and writes nothing to the cache, so
// shared Instance state is never corrupted by an abandoned request.
func (in *Instance) EvalPairCtx(ctx context.Context, w1, w2 numeric.Rat) (*PathEval, error) {
	if w1.Sign() < 0 || w2.Sign() < 0 {
		return nil, fmt.Errorf("core: negative identity weight (%v, %v)", w1, w2)
	}
	useCache := !in.cacheOff.Load()
	var key evalKey
	if useCache {
		key = evalKey{w1: w1.String(), w2: w2.String()}
		in.evalMu.RLock()
		ev, ok := in.evalCache[key]
		in.evalMu.RUnlock()
		if ok {
			in.cacheHits.Add(1)
			obs.FromContext(ctx).AddInt("eval_cache_hits", 1)
			return ev, nil
		}
	}
	ev, err := in.evalPairFresh(ctx, w1, w2)
	if err != nil {
		return nil, err
	}
	if useCache {
		in.evalMu.Lock()
		if prev, ok := in.evalCache[key]; ok {
			ev = prev // concurrent compute: keep one canonical pointer
		} else {
			in.evalCache[key] = ev
		}
		in.evalMu.Unlock()
		in.cacheMisses.Add(1)
		obs.FromContext(ctx).AddInt("eval_cache_misses", 1)
	}
	return ev, nil
}

// evalPairFresh builds and decomposes the path for one configuration.
func (in *Instance) evalPairFresh(ctx context.Context, w1, w2 numeric.Rat) (*PathEval, error) {
	n := len(in.interior) + 2
	wsp := in.wsPool.Get().(*[]numeric.Rat)
	ws := *wsp
	ws[0] = w1
	copy(ws[1:n-1], in.interiorWs)
	ws[n-1] = w2
	p := graph.Path(ws) // copies ws; the scratch slice goes back to the pool
	in.wsPool.Put(wsp)
	p.SetLabel(0, in.label1)
	p.SetLabel(n-1, in.label2)
	var (
		dec *bottleneck.Decomposition
		err error
	)
	if in.incrementalOff.Load() {
		dec, err = bottleneck.DecomposeCtx(ctx, p, bottleneck.EnginePathDP)
	} else {
		dec, err = in.solver.EvalCtx(ctx, p, w1, w2)
	}
	if err != nil {
		return nil, fmt.Errorf("core: decomposing P_v(%v, %v): %w", w1, w2, err)
	}
	ev := &PathEval{
		W1: w1, W2: w2,
		Path: p, OrigOf: in.origOf,
		V1: 0, V2: n - 1,
		Dec: dec,
		U1:  dec.Utility(p, 0),
		U2:  dec.Utility(p, n-1),
	}
	ev.U = ev.U1.Add(ev.U2)
	ev.Signature = dec.StructureSignature()
	return ev, nil
}

// EvalSplit evaluates the legal Sybil split (w1, w_v − w1).
func (in *Instance) EvalSplit(w1 numeric.Rat) (*PathEval, error) {
	return in.EvalSplitCtx(context.Background(), w1)
}

// EvalSplitCtx is EvalSplit with cancellation (see EvalPairCtx).
func (in *Instance) EvalSplitCtx(ctx context.Context, w1 numeric.Rat) (*PathEval, error) {
	if w1.Sign() < 0 || in.W().Less(w1) {
		return nil, fmt.Errorf("core: split weight %v outside [0, %v]", w1, in.W())
	}
	return in.EvalPairCtx(ctx, w1, in.W().Sub(w1))
}

// EvalWithheldCtx evaluates the configuration P_v(w1, wk) reached by a
// k-identity Sybil split on the ring: identity v¹ (weight w1) attaches to
// the successor neighbor, identity v^k (weight wk) to the predecessor, and
// the k−2 middle identities carry the withheld remainder w_v − w1 − wk with
// no neighbors at all — they cannot trade, receive zero utility under any
// feasible exchange, and leave every other agent's utility unchanged, so
// the attacker's total is exactly U(v¹) + U(v^k) on the two-leaf path. The
// only legality constraint is therefore w1 + wk ≤ w_v; with equality (k = 2)
// this is EvalSplitCtx bit for bit.
func (in *Instance) EvalWithheldCtx(ctx context.Context, w1, wk numeric.Rat) (*PathEval, error) {
	if w1.Sign() < 0 || wk.Sign() < 0 || in.W().Less(w1.Add(wk)) {
		return nil, fmt.Errorf("core: withheld split (%v, %v) outside the simplex w1 + wk ≤ %v", w1, wk, in.W())
	}
	return in.EvalPairCtx(ctx, w1, wk)
}

// HonestSplitEval evaluates P_v(w1⁰, w2⁰); by Lemma 9 its total utility
// equals HonestU exactly.
func (in *Instance) HonestSplitEval() (*PathEval, error) {
	return in.EvalPair(in.W1Zero, in.W2Zero)
}

// VClass returns the attacker's class on the original ring, with the
// paper's convention that a vertex of the final self-pair (α = 1) is
// treated as C class for the case analysis.
func (in *Instance) VClass() bottleneck.Class {
	if c := in.Dec.ClassOf(in.V); c != bottleneck.ClassBoth {
		return c
	}
	return bottleneck.ClassC
}

package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Durable jobs API (/v1/jobs): submit a sweep once, poll it to completion,
// survive server restarts in between. The service must run with -data-dir;
// without it every call below fails with code jobs_disabled.

// Job states as reported in Job.State.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobTerminal reports whether a job state is final — done, failed, or
// canceled. WaitJob returns as soon as the polled job reaches one.
func JobTerminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCanceled
}

// SubmitJob enqueues a durable job of any kind — "sweep" (the default),
// "enumerate" (exhaustive small-n certification, parameterized by req.Enum),
// "tournament" (req.Tournament), or the scenario kinds "ksybil",
// "coalition", and "topology" (req.Scenario; see SubmitScenario).
// Submission is content-addressed: resubmitting an equivalent
// request returns the existing job with Deduped set instead of new work, so
// retrying a submission whose response was lost is safe.
func (c *Client) SubmitJob(ctx context.Context, req *JobSubmitRequest) (*JobSubmitResponse, error) {
	var out JobSubmitResponse
	if err := c.do(ctx, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitSweep enqueues a durable sweep job (the historical name for
// SubmitJob with the default kind).
func (c *Client) SubmitSweep(ctx context.Context, req *JobSubmitRequest) (*JobSubmitResponse, error) {
	return c.SubmitJob(ctx, req)
}

// GetJob fetches the detail view of one job, including the checkpointed
// point prefix and, once done, the final sweep result.
func (c *Client) GetJob(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.doMethod(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob requests cancellation of a queued or running job and returns its
// state after the request: a queued job is canceled immediately, a running
// one stops at the next grid point. Canceling a terminal job is a 409 with
// code job_terminal.
func (c *Client) CancelJob(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.doMethod(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobListQuery selects a page of GET /v1/jobs. The zero value lists from the
// beginning with the server's default page size.
type JobListQuery struct {
	Cursor uint64 // resume from a previous page's NextCursor
	Limit  int    // page size (server default when 0)
	State  string // filter to one state ("" = all)
	Kind   string // filter to one job kind ("" = all)
}

// ListJobs fetches one page of jobs in submission order. Walk pages by
// feeding NextCursor back as Cursor until it comes back zero.
func (c *Client) ListJobs(ctx context.Context, q JobListQuery) (*JobListResponse, error) {
	v := url.Values{}
	if q.Cursor != 0 {
		v.Set("cursor", strconv.FormatUint(q.Cursor, 10))
	}
	if q.Limit != 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.State != "" {
		v.Set("state", q.State)
	}
	if q.Kind != "" {
		v.Set("kind", q.Kind)
	}
	path := "/v1/jobs"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var out JobListResponse
	if err := c.doMethod(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal state and returns that
// final view (including failed and canceled — inspect Job.State). Polling
// backs off exponentially from the client's base delay to its max delay;
// each individual poll additionally gets the client's usual transport
// retries. The context bounds the total wait.
func (c *Client) WaitJob(ctx context.Context, id string) (*Job, error) {
	d := c.baseDelay
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("client: wait job %s: %w", id, err)
		}
		if JobTerminal(job.State) {
			return job, nil
		}
		if err := sleep(ctx, c.jitter(d)); err != nil {
			return nil, err
		}
		if d *= 2; d > c.maxDelay || d <= 0 {
			d = c.maxDelay
		}
	}
}

// jitter spreads a polling delay over [d/2, d] so a fleet of waiters does
// not synchronize against the service.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

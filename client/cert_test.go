package client

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cert"
	"repro/internal/cert/enum"
	"repro/internal/server"
)

// TestClientCertRoundTrip: the Cert flag flows through the typed client,
// and the returned certificates re-verify with the dependency-free checker
// — the client never has to trust the server's arithmetic.
func TestClientCertRoundTrip(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	ctx := context.Background()
	ring := Graph{Ring: []string{"3", "1", "2", "1", "5"}}

	ratio, err := c.Ratio(ctx, &RatioRequest{Graph: ring, V: 0, Grid: 8, Cert: true})
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Certificate == nil {
		t.Fatal("no ratio certificate")
	}
	if err := cert.Check(ratio.Certificate); err != nil {
		t.Fatalf("ratio certificate fails client-side check: %v", err)
	}
	if ratio.Certificate.Ratio != ratio.Ratio {
		t.Fatalf("certificate ratio %s vs response %s", ratio.Certificate.Ratio, ratio.Ratio)
	}

	sweep, err := c.SweepAll(ctx, &SweepRequest{Graph: ring, V: 0, Grid: 6, Cert: true})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Certificate == nil {
		t.Fatal("no sweep certificate on uninterrupted SweepAll")
	}
	if err := cert.Check(sweep.Certificate); err != nil {
		t.Fatalf("sweep certificate fails client-side check: %v", err)
	}

	// Without the flag, no certificate rides along.
	plain, err := c.Ratio(ctx, &RatioRequest{Graph: ring, V: 0, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Certificate != nil {
		t.Fatal("certificate present without opt-in")
	}
}

// TestClientEnumerateJob drives a kind "enumerate" durable job through the
// typed client: submit, wait, decode the enum.Summary result.
func TestClientEnumerateJob(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1, DataDir: t.TempDir()})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	ctx := context.Background()

	sub, err := c.SubmitJob(ctx, &JobSubmitRequest{
		Kind: "enumerate",
		Enum: &EnumJobRequest{MinN: 3, MaxN: 3, Levels: 2, Grid: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone {
		t.Fatalf("job ended %s: %s", job.State, job.Error)
	}
	var sum enum.Summary
	if err := json.Unmarshal(job.Result, &sum); err != nil {
		t.Fatalf("result is not an enum.Summary: %v", err)
	}
	if sum.Instances == 0 || sum.Certified != sum.Instances || len(sum.Failures) != 0 {
		t.Fatalf("summary: %+v", sum)
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"context"

	"repro/internal/bottleneck"
	"repro/internal/cert/enum"
	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// jobKey is the content address of one sweep job: the canonical instance
// key plus the sweep parameters. Two submissions describing the same sweep
// — whatever spelling their graphs arrived in — dedupe to one job. The
// instance key is the mechanism-scoped entry key (mechKey), so sweeps of
// the same graph under different mechanisms are distinct jobs, while bd
// submissions keep their pre-registry addresses (bd entries use the bare
// canonical key) and still dedupe against jobs persisted before mechanisms
// existed.
func jobKey(instanceKey string, v, grid int) string {
	return fmt.Sprintf("%s|v=%d|grid=%d|sweep", instanceKey, v, grid)
}

// enumJobKey is the content address of one enumerate job: the resolved
// lattice bounds and optimizer grid. Eps only tunes frontier reporting, not
// the certified work, yet it changes the final Summary — so it is part of
// the address too.
func enumJobKey(spec enumJobSpec) string {
	return fmt.Sprintf("enum|n=%d-%d|levels=%d|grid=%d|eps=%s|enumerate",
		spec.MinN, spec.MaxN, spec.Levels, spec.Grid, spec.Eps)
}

// seedPoints validates a submission checkpoint against the job's point
// count and converts it to the store's seed form. A nil checkpoint is a
// plain submission. The content of the points is deliberately not
// re-verified here — the seed's provenance is a checkpoint the source node
// already persisted, and the runner re-parses every point on execution, so
// a corrupt seed fails the job loudly instead of poisoning the result.
func seedPoints(w http.ResponseWriter, ck *JobCheckpoint, total int) ([]jobs.Point, bool) {
	if ck == nil {
		return nil, true
	}
	if ck.NextIndex != len(ck.Points) {
		writeError(w, http.StatusBadRequest, CodeBadBody,
			fmt.Sprintf("checkpoint next_index %d must equal len(points) %d", ck.NextIndex, len(ck.Points)))
		return nil, false
	}
	if len(ck.Points) > total {
		writeError(w, http.StatusBadRequest, CodeBadBody,
			fmt.Sprintf("checkpoint carries %d points but the job has only %d", len(ck.Points), total))
		return nil, false
	}
	pts := make([]jobs.Point, len(ck.Points))
	for i, p := range ck.Points {
		pts[i] = jobs.Point{W1: p.W1, U: p.U}
	}
	return pts, true
}

// handleJobSubmit is POST /v1/jobs: validate exactly like the corresponding
// inline endpoint, then hand the work to the durable scheduler instead of
// computing inline. The submission is fsync'd before the response: an
// acknowledged job survives any crash and is recovered — checkpointed
// prefix intact — on the next boot.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.jobSched == nil {
		writeError(w, http.StatusNotImplemented, CodeJobsDisabled, "durable jobs are disabled: start the server with -data-dir")
		return
	}
	var req JobSubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch req.Kind {
	case "", "sweep":
	case "enumerate":
		s.submitEnumJob(w, r, &req)
		return
	case "tournament":
		s.submitTournamentJob(w, r, &req)
		return
	case "ksybil", "coalition", "topology":
		s.submitScenarioJob(w, r, &req)
		return
	default:
		writeError(w, http.StatusBadRequest, CodeBadBody, fmt.Sprintf("unknown job kind %q (want sweep, enumerate, tournament, ksybil, coalition, or topology)", req.Kind))
		return
	}
	grid := req.Grid
	if grid == 0 {
		grid = 64
	}
	if grid < 0 || grid > 4096 {
		writeError(w, http.StatusBadRequest, CodeBadGrid, "grid outside [1, 4096]")
		return
	}
	m, ok := resolveWireMechanism(w, req.Mechanism)
	if !ok {
		return
	}
	entry, ok := s.entryForMech(w, r, &req.Graph, m)
	if !ok {
		return
	}
	if !entry.g.IsRing() {
		writeError(w, http.StatusBadRequest, CodeNotRing, "sweep jobs require a ring graph")
		return
	}
	if req.V < 0 || req.V >= entry.g.N() {
		writeError(w, http.StatusBadRequest, CodeBadAgent, fmt.Sprintf("agent %d out of range [0, %d)", req.V, entry.g.N()))
		return
	}
	// The persisted mechanism is left empty for the default so specs (and
	// replay behavior) of pre-registry submissions and bare bd submissions
	// stay byte-identical.
	mechName := ""
	if m.Name() != mechanism.Default {
		mechName = m.Name()
	}
	seed, ok := seedPoints(w, req.Checkpoint, grid+1)
	if !ok {
		return
	}
	spec, err := json.Marshal(sweepJobSpec{Graph: req.Graph, V: req.V, Grid: grid, Mechanism: mechName})
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	rec, enqueued, err := s.jobSched.Submit(r.Context(), jobs.Submission{
		Key:      jobKey(entry.key, req.V, grid),
		Kind:     "sweep",
		Spec:     spec,
		Priority: req.Priority,
		Seed:     seed,
	})
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	status := http.StatusAccepted
	if !enqueued {
		status = http.StatusOK
	}
	writeJSON(w, status, JobSubmitResponse{Job: wireJob(rec, false), Deduped: !enqueued})
}

// Submission caps of enumerate jobs, tighter than the enum package's own
// sanity bounds: a durable job is still served by the shared worker pool,
// so one submission must not demand days of certification work.
const (
	maxEnumN      = 8
	maxEnumLevels = 4
)

// submitEnumJob validates and enqueues a kind "enumerate" job. The lattice
// is walked once here — cheap at the allowed bounds — to resolve defaults,
// reject explosive requests, and pin the total instance count into the
// persisted spec.
func (s *Server) submitEnumJob(w http.ResponseWriter, r *http.Request, req *JobSubmitRequest) {
	var er EnumJobRequest
	if req.Enum != nil {
		er = *req.Enum
	}
	eps := numeric.New(1, 2)
	if er.Eps != "" {
		var err error
		if eps, err = DecodeRat(er.Eps); err != nil || eps.Sign() <= 0 {
			writeError(w, http.StatusBadRequest, CodeBadBody, fmt.Sprintf("enum.eps %q is not a positive rational", er.Eps))
			return
		}
	}
	if er.Grid < 0 || er.Grid > 4096 {
		writeError(w, http.StatusBadRequest, CodeBadGrid, "enum.grid outside [0, 4096]")
		return
	}
	opts := enum.Options{MinN: er.MinN, MaxN: er.MaxN, Levels: er.Levels, Grid: er.Grid, Eps: eps}
	specs, err := enum.Enumerate(opts)
	if err != nil {
		writeErrorDetail(w, http.StatusBadRequest, CodeBadBody, "invalid enumeration bounds", err.Error())
		return
	}
	opts = opts.Resolved()
	if opts.MaxN > maxEnumN || opts.Levels > maxEnumLevels {
		writeError(w, http.StatusBadRequest, CodeCertLimit,
			fmt.Sprintf("enumeration jobs are limited to max_n ≤ %d and levels ≤ %d", maxEnumN, maxEnumLevels))
		return
	}
	spec := enumJobSpec{
		MinN:   opts.MinN,
		MaxN:   opts.MaxN,
		Levels: opts.Levels,
		Grid:   opts.Grid,
		Eps:    EncodeRat(eps),
		Total:  len(specs),
	}
	seed, ok := seedPoints(w, req.Checkpoint, spec.Total)
	if !ok {
		return
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	rec, enqueued, err := s.jobSched.Submit(r.Context(), jobs.Submission{
		Key:      enumJobKey(spec),
		Kind:     "enumerate",
		Spec:     raw,
		Priority: req.Priority,
		Seed:     seed,
	})
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	status := http.StatusAccepted
	if !enqueued {
		status = http.StatusOK
	}
	writeJSON(w, status, JobSubmitResponse{Job: wireJob(rec, false), Deduped: !enqueued})
}

// handleJobGet is GET /v1/jobs/{id}: full job state including the
// checkpointed partial points and, once done, the final sweep result.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobSched == nil {
		writeError(w, http.StatusNotImplemented, CodeJobsDisabled, "durable jobs are disabled: start the server with -data-dir")
		return
	}
	rec, ok := s.jobStore.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	writeResult(w, r, wireJob(rec, true))
}

// handleJobList is GET /v1/jobs: jobs in submission order, paginated by an
// opaque cursor (the last job's sequence number) and optionally filtered by
// state.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if s.jobSched == nil {
		writeError(w, http.StatusNotImplemented, CodeJobsDisabled, "durable jobs are disabled: start the server with -data-dir")
		return
	}
	q := r.URL.Query()
	var opts jobs.ListOptions
	if c := q.Get("cursor"); c != "" {
		cur, err := strconv.ParseUint(c, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadBody, "cursor must be an unsigned integer")
			return
		}
		opts.AfterSeq = cur
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, CodeBadBody, "limit must be a positive integer")
			return
		}
		opts.Limit = n
	}
	if st := q.Get("state"); st != "" {
		state := jobs.State(st)
		switch state {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
			opts.State = state
		default:
			writeError(w, http.StatusBadRequest, CodeBadBody, fmt.Sprintf("unknown state %q", st))
			return
		}
	}
	if k := q.Get("kind"); k != "" {
		switch k {
		case "sweep", "enumerate", "tournament", "ksybil", "coalition", "topology":
			opts.Kind = k
		default:
			writeError(w, http.StatusBadRequest, CodeBadBody, fmt.Sprintf("unknown kind %q", k))
			return
		}
	}
	recs, next := s.jobStore.List(opts)
	resp := JobListResponse{Jobs: make([]WireJob, len(recs)), NextCursor: next}
	for i, rec := range recs {
		resp.Jobs[i] = wireJob(rec, false)
	}
	writeResult(w, r, resp)
}

// handleJobCancel is DELETE /v1/jobs/{id}: a queued job cancels
// immediately; a running one has its context canceled and transitions once
// the worker unwinds (poll GET until state settles).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobSched == nil {
		writeError(w, http.StatusNotImplemented, CodeJobsDisabled, "durable jobs are disabled: start the server with -data-dir")
		return
	}
	rec, err := s.jobSched.Cancel(r.Context(), r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, CodeJobTerminal, "job already reached a terminal state")
		return
	case err != nil:
		writeComputeError(w, r, err)
		return
	}
	writeResult(w, r, wireJob(rec, false))
}

// wireJob renders a job record for the API. detail additionally includes
// the checkpointed points (the list view stays light).
func wireJob(rec *jobs.Record, detail bool) WireJob {
	j := WireJob{
		ID:         rec.ID,
		Kind:       rec.Kind,
		State:      string(rec.State),
		Attempt:    rec.Attempt,
		Priority:   rec.Priority,
		Error:      rec.Error,
		NextIndex:  rec.NextIndex,
		Result:     json.RawMessage(rec.Result),
		CreatedAt:  rec.CreatedUnixNano,
		StartedAt:  rec.StartedUnixNano,
		FinishedAt: rec.FinishedUnixNano,
	}
	switch rec.Kind {
	case "enumerate":
		var spec enumJobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err == nil {
			j.TotalPoints = spec.Total
		}
	case "tournament":
		var spec tournamentJobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err == nil {
			j.TotalPoints = spec.Total
		}
	case "ksybil", "coalition", "topology":
		var spec scenarioJobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err == nil {
			j.TotalPoints = spec.Total
		}
	default:
		var spec sweepJobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err == nil && spec.Grid > 0 {
			j.TotalPoints = spec.Grid + 1
		}
	}
	if detail {
		j.Points = make([]WireSweepPoint, len(rec.Points))
		for i, p := range rec.Points {
			j.Points[i] = WireSweepPoint{W1: p.W1, U: p.U}
		}
	}
	return j
}

// runJob dispatches one durable job to its kind's runner.
func (s *Server) runJob(ctx context.Context, rec *jobs.Record, ckpt jobs.CheckpointFunc) ([]byte, error) {
	switch rec.Kind {
	case "enumerate":
		return s.runEnumJob(ctx, rec, ckpt)
	case "tournament":
		return s.runTournamentJob(ctx, rec, ckpt)
	case "ksybil", "coalition", "topology":
		return s.runScenarioJob(ctx, rec, ckpt)
	default:
		return s.runSweepJob(ctx, rec, ckpt)
	}
}

// runSweepJob executes one sweep job. It walks the grid point by point —
// for the native bd mechanism the same per-point arithmetic as
// sybil.SweepInstanceCtx, sharing the cached core.Instance with the inline
// endpoints; for other mechanisms one mechanism.SplitUtility evaluation per
// point, matching the generic inline sweep — checkpointing each completed
// index through ckpt, and resuming from rec.NextIndex using the
// checkpointed prefix verbatim. Because every quantity is exact and
// serialized canonically, the final Result is bit-identical to the
// /v1/sweep response of an uninterrupted run.
func (s *Server) runSweepJob(ctx context.Context, rec *jobs.Record, ckpt jobs.CheckpointFunc) ([]byte, error) {
	var spec sweepJobSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return nil, fmt.Errorf("corrupt job spec: %w", err)
	}
	m, err := mechanism.Get(spec.Mechanism)
	if err != nil {
		return nil, fmt.Errorf("job spec mechanism: %w", err)
	}
	if s.collector != nil {
		tr := s.collector.NewTrace("jobs.run")
		ctx = tr.Context(ctx)
		defer tr.Finish()
	}
	ctx, span := obs.Start(ctx, "jobs.sweep")
	defer span.End()
	if span != nil {
		span.SetAttr("job", rec.ID)
		span.SetAttr("grid", strconv.Itoa(spec.Grid))
		span.SetAttr("mechanism", m.Name())
		if rec.NextIndex > 0 {
			span.SetAttr("resume_from", strconv.Itoa(rec.NextIndex))
		}
	}
	g, err := spec.Graph.Build()
	if err != nil {
		return nil, fmt.Errorf("job spec graph: %w", err)
	}
	entry, hit := s.cache.entryFor(mechKey(g, m), g)
	s.metrics.cacheLookup("/v1/jobs#run", hit)

	// Resolve the per-point evaluator and the honest baseline. Native
	// sweepers (bd) go through the cached core.Instance — byte-identical to
	// the pre-mechanism job runner; everything else allocates the honest
	// graph once (cached on the entry) and evaluates splits generically.
	var honest, W numeric.Rat
	var eval func(context.Context, numeric.Rat) (numeric.Rat, error)
	if _, native := m.(mechanism.RingSweeper); native {
		in, err := entry.instance(ctx, spec.V)
		if err != nil {
			return nil, err
		}
		honest, W = in.HonestU, in.W()
		eval = func(ctx context.Context, w1 numeric.Rat) (numeric.Rat, error) {
			ev, err := in.EvalSplitCtx(ctx, w1)
			if err != nil {
				return numeric.Zero, err
			}
			return ev.U, nil
		}
	} else {
		if spec.V < 0 || spec.V >= g.N() {
			return nil, fmt.Errorf("agent %d out of range [0, %d)", spec.V, g.N())
		}
		a, err := entry.mechAllocation(ctx, m, bottleneck.EngineAuto)
		if err != nil {
			return nil, err
		}
		honest, W = a.Utility(spec.V), g.Weight(spec.V)
		eval = func(ctx context.Context, w1 numeric.Rat) (numeric.Rat, error) {
			return mechanism.SplitUtility(ctx, m, g, spec.V, w1)
		}
	}

	// The checkpointed prefix re-enters the final answer verbatim: parse it
	// back to exact rationals (canonical strings round-trip losslessly).
	type evaled struct{ w1, u numeric.Rat }
	pts := make([]evaled, 0, spec.Grid+1)
	for i, p := range rec.Points {
		w1, err := DecodeRat(p.W1)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %d: corrupt w1: %w", i, err)
		}
		u, err := DecodeRat(p.U)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %d: corrupt u: %w", i, err)
		}
		pts = append(pts, evaled{w1, u})
	}

	for i := rec.NextIndex; i <= spec.Grid; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := fault.Hit(ctx, fault.SiteSweepPoint); err != nil {
			return nil, err
		}
		w1 := W.MulInt(int64(i)).DivInt(int64(spec.Grid))
		u, err := eval(ctx, w1)
		if err != nil {
			return nil, err
		}
		if err := ckpt(i, []jobs.Point{{W1: EncodeRat(w1), U: EncodeRat(u)}}); err != nil {
			return nil, err
		}
		pts = append(pts, evaled{w1, u})
	}

	// Best-point selection and the ratio rule mirror sybil.SweepInstanceCtx
	// exactly, so job results agree with inline sweeps bit for bit.
	resp := &SweepResponse{Points: make([]WireSweepPoint, len(pts))}
	for i, p := range pts {
		resp.Points[i] = WireSweepPoint{W1: EncodeRat(p.w1), U: EncodeRat(p.u)}
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if best.u.Less(p.u) {
			best = p
		}
	}
	var ratio numeric.Rat
	switch {
	case honest.Sign() > 0:
		ratio = best.u.Div(honest)
	case best.u.Sign() > 0:
		return nil, fmt.Errorf("sweep job: positive attack utility %v from zero honest utility", best.u)
	default:
		ratio = numeric.One
	}
	resp.BestW1, resp.BestU = EncodeRat(best.w1), EncodeRat(best.u)
	resp.Honest = EncodeRat(honest)
	resp.Ratio = EncodeRat(ratio)
	return json.Marshal(resp)
}

// Enumerate-job checkpoints reuse the sweep Point shape: W1 carries the
// instance key ("r5:3,1,2,1,5"), U the certified ratio — or, when the
// instance failed certification, its error prefixed with "!" (keys and
// canonical ratios never start with '!', so the encoding is unambiguous).
func encodeEnumOutcome(out enum.Outcome) jobs.Point {
	u := out.Ratio
	if out.Err != "" {
		u = "!" + out.Err
	}
	return jobs.Point{W1: out.Key, U: u}
}

func decodeEnumOutcome(p jobs.Point) enum.Outcome {
	out := enum.Outcome{Key: p.W1}
	if strings.HasPrefix(p.U, "!") {
		out.Err = p.U[1:]
	} else {
		out.Ratio = p.U
	}
	return out
}

// runEnumJob executes one enumerate job: walk the deterministic instance
// list of the persisted spec, certify each instance (solve → build
// certificate → solver-free cert.Check), and checkpoint every completed
// index. The enumeration order is fixed (enum.Enumerate), so instance i
// means the same ring in every process that ever resumes this job; the
// final Result is the enum.Summary over all outcomes, bit-identical for an
// interrupted and an uninterrupted run. Per-instance certification
// failures are recorded in the summary, not turned into job failures — the
// whole point of the job is to find them.
func (s *Server) runEnumJob(ctx context.Context, rec *jobs.Record, ckpt jobs.CheckpointFunc) ([]byte, error) {
	var spec enumJobSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return nil, fmt.Errorf("corrupt job spec: %w", err)
	}
	if s.collector != nil {
		tr := s.collector.NewTrace("jobs.run")
		ctx = tr.Context(ctx)
		defer tr.Finish()
	}
	ctx, span := obs.Start(ctx, "jobs.enumerate")
	defer span.End()
	if span != nil {
		span.SetAttr("job", rec.ID)
		span.SetAttr("total", strconv.Itoa(spec.Total))
		if rec.NextIndex > 0 {
			span.SetAttr("resume_from", strconv.Itoa(rec.NextIndex))
		}
	}
	eps, err := DecodeRat(spec.Eps)
	if err != nil {
		return nil, fmt.Errorf("corrupt job spec eps: %w", err)
	}
	specs, err := enum.Enumerate(enum.Options{
		MinN: spec.MinN, MaxN: spec.MaxN, Levels: spec.Levels, Grid: spec.Grid, Eps: eps,
	})
	if err != nil {
		return nil, fmt.Errorf("job spec bounds: %w", err)
	}
	if len(specs) != spec.Total {
		return nil, fmt.Errorf("enumeration drifted: spec pinned %d instances, lattice walk produced %d", spec.Total, len(specs))
	}

	outs := make([]enum.Outcome, 0, len(specs))
	for _, p := range rec.Points {
		outs = append(outs, decodeEnumOutcome(p))
	}
	for i := rec.NextIndex; i < len(specs); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := fault.Hit(ctx, fault.SiteSweepPoint); err != nil {
			return nil, err
		}
		out := enum.Certify(ctx, specs[i], spec.Grid)
		if err := ctx.Err(); err != nil {
			// Cancellation mid-certify surfaces as an instance error; requeue
			// instead of persisting a spurious failure.
			return nil, err
		}
		if err := ckpt(i, []jobs.Point{encodeEnumOutcome(out)}); err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}

	sum, err := enum.Summarize(outs, eps)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sum)
}

// writeJobsMetrics renders the jobs subsystem series on /metrics. No-op
// when jobs are disabled, so the exposition only grows for servers that
// opted in with -data-dir.
func (s *Server) writeJobsMetrics(w io.Writer) {
	if s.jobSched == nil {
		return
	}
	ss := s.jobStore.Stats()
	js := s.jobSched.Stats()

	fmt.Fprint(w, "# HELP irshared_jobs_total Job state transitions, by state entered.\n# TYPE irshared_jobs_total counter\n")
	states := make([]string, 0, len(js.Transitions))
	for st := range js.Transitions {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "irshared_jobs_total{state=%q} %d\n", st, js.Transitions[jobs.State(st)])
	}
	fmt.Fprint(w, "# HELP irshared_jobs_queue_depth Jobs waiting for a worker slot.\n# TYPE irshared_jobs_queue_depth gauge\n")
	fmt.Fprintf(w, "irshared_jobs_queue_depth %d\n", js.QueueDepth)
	fmt.Fprint(w, "# HELP irshared_jobs_running Jobs currently executing.\n# TYPE irshared_jobs_running gauge\n")
	fmt.Fprintf(w, "irshared_jobs_running %d\n", js.Running)
	fmt.Fprint(w, "# HELP irshared_jobs_resident Job records resident in the store.\n# TYPE irshared_jobs_resident gauge\n")
	fmt.Fprintf(w, "irshared_jobs_resident %d\n", ss.Jobs)
	fmt.Fprint(w, "# HELP irshared_jobs_deduped_total Submissions answered by an existing job.\n# TYPE irshared_jobs_deduped_total counter\n")
	fmt.Fprintf(w, "irshared_jobs_deduped_total %d\n", js.Deduped)
	fmt.Fprint(w, "# HELP irshared_jobs_recovered_total Jobs requeued by startup recovery.\n# TYPE irshared_jobs_recovered_total counter\n")
	fmt.Fprintf(w, "irshared_jobs_recovered_total %d\n", js.Recovered)

	fmt.Fprint(w, "# HELP irshared_job_age_seconds Queued-to-terminal job age.\n# TYPE irshared_job_age_seconds histogram\n")
	cum := int64(0)
	for i, ub := range jobs.AgeBuckets() {
		cum += js.AgeCounts[i]
		fmt.Fprintf(w, "irshared_job_age_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	fmt.Fprintf(w, "irshared_job_age_seconds_bucket{le=\"+Inf\"} %d\n", js.AgeCount)
	fmt.Fprintf(w, "irshared_job_age_seconds_sum %g\n", js.AgeSum)
	fmt.Fprintf(w, "irshared_job_age_seconds_count %d\n", js.AgeCount)

	fmt.Fprint(w, "# HELP irshared_jobs_wal_bytes Bytes in the current WAL segment.\n# TYPE irshared_jobs_wal_bytes gauge\n")
	fmt.Fprintf(w, "irshared_jobs_wal_bytes %d\n", ss.WALBytes)
	fmt.Fprint(w, "# HELP irshared_jobs_wal_appends_total WAL frames appended.\n# TYPE irshared_jobs_wal_appends_total counter\n")
	fmt.Fprintf(w, "irshared_jobs_wal_appends_total %d\n", ss.Appends)
	fmt.Fprint(w, "# HELP irshared_jobs_wal_syncs_total Fsync'd WAL appends.\n# TYPE irshared_jobs_wal_syncs_total counter\n")
	fmt.Fprintf(w, "irshared_jobs_wal_syncs_total %d\n", ss.Syncs)
	fmt.Fprint(w, "# HELP irshared_jobs_compactions_total Snapshot compactions.\n# TYPE irshared_jobs_compactions_total counter\n")
	fmt.Fprintf(w, "irshared_jobs_compactions_total %d\n", ss.Compactions)
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// bootServer starts run() with the given extra flags on a free port and
// waits for /healthz; it returns the base URL and the run() result channel.
func bootServer(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	done := make(chan error, 1)
	args := append([]string{"-addr", addr, "-log", "json", "-drain", "10s"}, extra...)
	go func() { done <- run(args) }()
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, done
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func drain(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

// TestChaosFlagGating pins the double opt-in: -chaos without -chaos-allow is
// refused (and vice versa), as are malformed specs. All paths fail before
// binding a listener.
func TestChaosFlagGating(t *testing.T) {
	if err := run([]string{"-chaos", "server.compute=error:1"}); err == nil ||
		!strings.Contains(err.Error(), "chaos-allow") {
		t.Fatalf("-chaos without -chaos-allow: %v", err)
	}
	if err := run([]string{"-chaos-allow"}); err == nil ||
		!strings.Contains(err.Error(), "-chaos") {
		t.Fatalf("-chaos-allow without -chaos: %v", err)
	}
	if err := run([]string{"-chaos", "no.such.site=error:1", "-chaos-allow"}); err == nil {
		t.Fatal("unknown injection site accepted")
	}
	if err := run([]string{"-chaos", "server.compute=explode:1", "-chaos-allow"}); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

// TestChaosModeInjectsFaults boots with deterministic injection on every
// second compute admission and checks that requests alternate between
// injected 503s (with Retry-After) and clean 200s — and that the process
// itself stays healthy throughout.
func TestChaosModeInjectsFaults(t *testing.T) {
	base, done := bootServer(t,
		"-chaos", "server.compute=error:1/2", "-chaos-allow", "-chaos-seed", "5")
	var ok200, ok503 int
	for i := 0; i < 6; i++ {
		resp, err := http.Post(base+"/v1/decompose", "application/json",
			strings.NewReader(`{"graph":{"ring":["1","2","3"]}}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok200++
		case http.StatusServiceUnavailable:
			ok503++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("injected 503 without Retry-After")
			}
			var e struct{ Code string }
			if err := json.Unmarshal(body, &e); err != nil || e.Code != "busy" {
				t.Fatalf("injected failure body: %s", body)
			}
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, body)
		}
	}
	// every=2 fires on hits 2, 4, 6: exactly half the requests.
	if ok200 != 3 || ok503 != 3 {
		t.Fatalf("got %d OK / %d injected, want 3/3", ok200, ok503)
	}
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d under chaos", hz.StatusCode)
	}
	drain(t, done)
}

// TestSIGTERMMidBatch delivers SIGTERM while a window-held /v1/ratio batch
// has participants in flight: every participant must still receive the full
// 200 answer (graceful drain lets the shared computation finish), the
// answers must be identical, and no batcher goroutines may leak after the
// process drains.
func TestSIGTERMMidBatch(t *testing.T) {
	baseline := runtime.NumGoroutine()
	base, done := bootServer(t, "-batch-window", "400ms")

	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	const callers = 4
	type result struct {
		status int
		body   string
		err    error
	}
	results := make([]result, callers)
	var wg sync.WaitGroup
	body := `{"graph":{"ring":["1","2","3","4","5"]},"v":2,"grid":16}`
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/ratio", "application/json", strings.NewReader(body))
			if err != nil {
				results[i].err = err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = result{status: resp.StatusCode, body: string(raw)}
		}(i)
	}

	// Let the participants join the window-held batch, then pull the plug
	// while they are all still waiting on it.
	time.Sleep(150 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d failed: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("caller %d: status %d body %s", i, r.status, r.body)
		}
		if r.body != results[0].body {
			t.Fatalf("caller %d answer differs:\n%s\nvs\n%s", i, r.body, results[0].body)
		}
	}
	var rr struct {
		LeqTwo bool `json:"leq_two"`
	}
	if err := json.Unmarshal([]byte(results[0].body), &rr); err != nil || !rr.LeqTwo {
		t.Fatalf("batch answer not a ratio response: %s", results[0].body)
	}

	// The drained process must not leak the batch goroutine (or anything
	// else): after closing our idle connections the goroutine count has to
	// come back to (about) the pre-boot baseline.
	tr.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMaxQueueFlag boots with a tiny explicit shedding threshold and checks
// /readyz reports ready on an idle server, proving the flag reaches Config.
func TestMaxQueueFlag(t *testing.T) {
	base, done := bootServer(t, "-max-queue", "1")
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ready") {
		t.Fatalf("/readyz: %d %s", resp.StatusCode, raw)
	}
	drain(t, done)
}

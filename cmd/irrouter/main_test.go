package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestFlagValidation pins the refusal modes: missing -nodes, chaos without
// its double opt-in, and a bad log format all fail before listening.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no_nodes", []string{"-addr", "127.0.0.1:0"}, "-nodes is required"},
		{"chaos_without_allow", []string{"-nodes", "http://x", "-chaos", "cluster.probe=error:1"}, "-chaos requires -chaos-allow"},
		{"allow_without_chaos", []string{"-nodes", "http://x", "-chaos-allow"}, "-chaos-allow given without -chaos"},
		{"bad_log", []string{"-nodes", "http://x", "-log", "yaml"}, "unknown -log format"},
		{"bad_chaos_spec", []string{"-nodes", "http://x", "-chaos", "nonsense", "-chaos-allow"}, "bad -chaos spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRouterGracefulShutdown boots the full binary path against one real
// in-process backend, proxies a request through it, and drains on SIGTERM.
func TestRouterGracefulShutdown(t *testing.T) {
	srv, err := server.New(server.Config{NodeID: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	backend := httptest.NewServer(srv.Handler())
	defer backend.Close()

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", addr, "-nodes", backend.URL, "-log", "json",
			"-drain", "5s", "-probe-interval", "50ms",
		})
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("router did not come up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A proxied compute request must make it to the backend and back.
	resp, err := http.Post(base+"/v1/ratio", "application/json",
		strings.NewReader(`{"graph":{"ring":["1","2","3"]},"v":0,"grid":4}`))
	if err != nil {
		t.Fatalf("proxied ratio: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied ratio: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain after SIGTERM")
	}
}

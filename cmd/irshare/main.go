// Command irshare inspects resource-sharing instances: it computes the
// bottleneck decomposition, the BD allocation, the equilibrium utilities,
// (for rings) the incentive ratio of an agent, and head-to-head mechanism
// tournaments.
//
// Usage:
//
//	irshare decompose  [-engine auto|flow|path-dp|brute] [-dot] [-trace] [graph args]
//	irshare allocate   [graph args]
//	irshare utilities  [graph args]
//	irshare ratio      -v <agent> [-grid N] [graph args]
//	irshare curve      -v <agent> [graph args]
//	irshare verify     [-v <agent>] [graph args]
//	irshare mechanisms
//	irshare tournament -v <agent> [-grid N] [-mechanisms a,b] [graph args]
//	irshare scenario   -kind ksybil    -v <agent> [-k N] [-grid N] [-mechanism m] [graph args]
//	irshare scenario   -kind coalition -members i,j,... [-grid N] [-mechanism m] [graph args]
//	irshare scenario   -kind topology  [-families a,b] [-count N] [-n N] [-grid N] [-seed S] [-dist d] [-mechanism m]
//
// Graph selection (one of):
//
//	-in FILE          read the text graph format (n/w/e lines; "-" = stdin)
//	-ring w1,w2,...   build a ring with the given weights
//	-path w1,w2,...   build a path with the given weights
//	-fig1             the paper's Fig. 1 example
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/numeric"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "irshare:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: irshare <decompose|allocate|utilities|ratio|curve|verify|mechanisms|tournament|scenario> [flags]")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "mechanisms" {
		// Registry listing needs no graph; sorted order keeps output stable.
		for _, info := range mechanism.Infos() {
			def := ""
			if info.Name == mechanism.Default {
				def = " (default)"
			}
			fmt.Fprintf(w, "  %-10s cert=%-5v exact=%-5v %s%s\n",
				info.Name, info.Certifiable, info.ExactRatio, info.Description, def)
		}
		return nil
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		inFile = fs.String("in", "", "graph file in text format (\"-\" = stdin)")
		ringW  = fs.String("ring", "", "comma-separated ring weights")
		pathW  = fs.String("path", "", "comma-separated path weights")
		fig1   = fs.Bool("fig1", false, "use the paper's Fig. 1 example")
		engine = fs.String("engine", "auto", "decomposition engine: auto|flow|path-dp|brute")
		dot    = fs.Bool("dot", false, "emit Graphviz DOT colored by class")
		traceF = fs.Bool("trace", false, "print solver trace events (decompose)")
		agent  = fs.Int("v", -1, "agent index (ratio)")
		grid   = fs.Int("grid", 64, "optimizer grid (ratio)")
		mechs  = fs.String("mechanisms", "", "comma-separated mechanism names (tournament; empty = all)")
		kind   = fs.String("kind", "", "scenario kind: ksybil|coalition|topology")
		kIdent = fs.Int("k", 2, "identity count of a ksybil scan")
		membF  = fs.String("members", "", "comma-separated coalition member vertices")
		famF   = fs.String("families", "", "comma-separated topology families (empty = all)")
		countF = fs.Int("count", 4, "instances per family (topology)")
		nF     = fs.Int("n", 8, "vertices per generated instance (topology)")
		seedF  = fs.Int64("seed", 1, "instance generator seed (topology)")
		distF  = fs.String("dist", "uniform", "weight distribution: uniform|skewed|powers|unit (topology)")
		mechF  = fs.String("mechanism", "", "allocation mechanism (scenario; empty = default)")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if cmd == "scenario" {
		// Topology scans generate their own instances; the other kinds take
		// the usual graph selection.
		var g *graph.Graph
		if *kind != "topology" {
			var err error
			if g, err = loadGraph(*inFile, *ringW, *pathW, *fig1); err != nil {
				return err
			}
		}
		return runScenario(w, g, scenarioArgs{
			kind: *kind, v: *agent, k: *kIdent, grid: *grid, members: *membF,
			families: *famF, count: *countF, n: *nF, seed: *seedF, dist: *distF,
			mech: *mechF,
		})
	}
	g, err := loadGraph(*inFile, *ringW, *pathW, *fig1)
	if err != nil {
		return err
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		return err
	}

	switch cmd {
	case "decompose":
		var trace bottleneck.TraceFunc
		if *traceF {
			trace = func(e bottleneck.TraceEvent) { fmt.Fprintln(w, "  trace:", e) }
		}
		d, err := bottleneck.DecomposeTraced(g, eng, trace)
		if err != nil {
			return err
		}
		if *dot {
			fmt.Fprint(w, graph.DOT(g, func(v int) string {
				switch d.ClassOf(v) {
				case bottleneck.ClassB:
					return "lightblue"
				case bottleneck.ClassC:
					return "lightsalmon"
				case bottleneck.ClassBoth:
					return "plum"
				}
				return ""
			}))
			return nil
		}
		fmt.Fprintln(w, d)
		for v := 0; v < g.N(); v++ {
			fmt.Fprintf(w, "  %s: w=%s class=%s α=%s U=%s\n",
				g.Label(v), g.Weight(v), d.ClassOf(v), d.AlphaOf(v), d.Utility(g, v))
		}
		return d.Validate(g)

	case "allocate":
		d, err := bottleneck.DecomposeWith(g, eng)
		if err != nil {
			return err
		}
		a, err := allocation.Compute(g, d)
		if err != nil {
			return err
		}
		for _, e := range g.Edges() {
			u, v := e[0], e[1]
			if a.Get(u, v).IsZero() && a.Get(v, u).IsZero() {
				continue
			}
			fmt.Fprintf(w, "  x[%s → %s] = %s, x[%s → %s] = %s\n",
				g.Label(u), g.Label(v), a.Get(u, v), g.Label(v), g.Label(u), a.Get(v, u))
		}
		return allocation.Audit(g, d, a)

	case "utilities":
		d, err := bottleneck.DecomposeWith(g, eng)
		if err != nil {
			return err
		}
		total := numeric.Zero
		for v := 0; v < g.N(); v++ {
			u := d.Utility(g, v)
			total = total.Add(u)
			fmt.Fprintf(w, "  U(%s) = %s\n", g.Label(v), u)
		}
		fmt.Fprintf(w, "  ΣU = %s (Σw = %s)\n", total, g.TotalWeight())
		return nil

	case "curve":
		// The misreport structure theory of Section III-B: U_v(x), α_v(x),
		// the interval partition of [0, w_v], and the exact Case B-3
		// crossing x* when it exists.
		if *agent < 0 {
			return fmt.Errorf("curve requires -v <agent>")
		}
		curve, err := analysis.SampleCurve(g, *agent, 16)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "misreport curve of %s (w = %s):\n", g.Label(*agent), g.Weight(*agent))
		for _, pt := range curve {
			fmt.Fprintf(w, "  x=%-12s α=%-12s class=%-4s U=%s\n", pt.X, pt.Alpha, pt.Class, pt.U)
		}
		cse, err := analysis.ClassifyAlphaCurve(curve)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Proposition 11 classification: %s\n", cse)
		if x, c, err := analysis.AlphaStar(g, *agent, 0); err == nil && c == analysis.CaseB3 {
			fmt.Fprintf(w, "exact crossing x* = %s (α_v(x*) = 1)\n", x)
		}
		ivs, err := analysis.IntervalPartition(g, *agent, 24, 44)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d structure intervals:\n", len(ivs))
		for i, iv := range ivs {
			kind := "interval"
			if iv.Lo.Equal(iv.Hi) {
				kind = "POINT"
			}
			fmt.Fprintf(w, "  %2d %s [%.6f, %.6f] %s\n", i, kind, iv.Lo.Float64(), iv.Hi.Float64(), iv.Signature)
		}
		return nil

	case "verify":
		// The full verification battery on one instance: Proposition 3
		// invariants, allocation audit, misreport monotonicity, and (for
		// rings with -v) the complete Theorem 8 stage analysis.
		pass, fail := 0, 0
		report := func(name string, err error) {
			if err != nil {
				fail++
				fmt.Fprintf(w, "  [FAIL] %s: %v\n", name, err)
				return
			}
			pass++
			fmt.Fprintf(w, "  [ok]   %s\n", name)
		}
		d, err := bottleneck.DecomposeWith(g, eng)
		if err != nil {
			return err
		}
		report("Proposition 3 (decomposition invariants)", d.Validate(g))
		a, err := allocation.Compute(g, d)
		if err != nil {
			report("BD allocation", err)
		} else {
			report("BD allocation audit (Prop. 6, conservation, symmetry)", allocation.Audit(g, d, a))
		}
		probe := *agent
		if probe < 0 {
			probe = 0
		}
		curve, err := analysis.SampleCurve(g, probe, 24)
		if err != nil {
			report("Theorem 10 sampling", err)
		} else {
			report(fmt.Sprintf("Theorem 10 (misreport monotonicity of agent %d)", probe), analysis.VerifyTheorem10(curve))
			_, cerr := analysis.ClassifyAlphaCurve(curve)
			report("Proposition 11 (α-curve shape)", cerr)
		}
		if g.IsRing() && *agent >= 0 {
			verdict, err := core.VerifyTheorem8(g, *agent, core.OptimizeOptions{Grid: *grid})
			if err != nil {
				report("Theorem 8 analysis", err)
			} else {
				for _, c := range verdict.Stages.Checks {
					if c.Pass {
						report(c.Name, nil)
					} else {
						report(c.Name, fmt.Errorf("%s", c.Detail))
					}
				}
				if verdict.LeqTwo {
					report(fmt.Sprintf("Theorem 8 bound (ζ = %.6f ≤ 2)", verdict.Ratio.Float64()), nil)
				} else {
					report("Theorem 8 bound", fmt.Errorf("ratio %v > 2", verdict.Ratio))
				}
			}
		}
		fmt.Fprintf(w, "verified: %d checks passed, %d failed\n", pass, fail)
		if fail > 0 {
			return fmt.Errorf("%d verification checks failed", fail)
		}
		return nil

	case "ratio":
		if *agent < 0 {
			return fmt.Errorf("ratio requires -v <agent>")
		}
		verdict, err := core.VerifyTheorem8(g, *agent, core.OptimizeOptions{Grid: *grid})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "agent %s: honest U = %s\n", g.Label(*agent), verdict.Instance.HonestU)
		fmt.Fprintf(w, "best split w1* = %s (of %s), attack U = %s\n",
			verdict.Opt.BestW1, verdict.Instance.W(), verdict.Opt.BestU)
		fmt.Fprintf(w, "incentive ratio ζ_v = %s ≈ %.6f (≤ 2: %v)\n",
			verdict.Ratio, verdict.Ratio.Float64(), verdict.LeqTwo)
		fmt.Fprintf(w, "initial form: %s; stage checks pass: %v\n",
			verdict.Stages.Form, verdict.Stages.AllChecksPass())
		for _, c := range verdict.Stages.Checks {
			fmt.Fprintf(w, "  [%v] %s (%s)\n", c.Pass, c.Name, c.Detail)
		}
		return nil

	case "tournament":
		// One instance, every selected mechanism: the same head-to-head
		// evaluation as POST /v1/tournament, printed as a table.
		if *agent < 0 {
			return fmt.Errorf("tournament requires -v <agent>")
		}
		var names []string
		if *mechs != "" {
			names = strings.Split(*mechs, ",")
		}
		res, err := mechanism.Tournament(context.Background(),
			[]mechanism.TournamentInstance{{G: g, V: *agent}},
			mechanism.TournamentOptions{Mechanisms: names, Grid: *grid})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "tournament: agent %s, grid %d\n", g.Label(*agent), res.Grid)
		for _, c := range res.Cells[0] {
			fmt.Fprintf(w, "  %-10s ζ = %-12s (≈ %.6f)  honest U = %-10s best w1 = %-10s efficiency = %-10s fairness = %s\n",
				c.Mechanism, c.Ratio, c.Ratio.Float64(), c.Honest, c.BestW1, c.Efficiency, c.Fairness)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func loadGraph(inFile, ringW, pathW string, fig1 bool) (*graph.Graph, error) {
	selected := 0
	for _, on := range []bool{inFile != "", ringW != "", pathW != "", fig1} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		return nil, fmt.Errorf("select exactly one of -in, -ring, -path, -fig1")
	}
	switch {
	case fig1:
		return graph.Fig1Graph(), nil
	case ringW != "":
		ws, err := parseWeights(ringW)
		if err != nil {
			return nil, err
		}
		return graph.Ring(ws), nil
	case pathW != "":
		ws, err := parseWeights(pathW)
		if err != nil {
			return nil, err
		}
		return graph.Path(ws), nil
	default:
		r := os.Stdin
		if inFile != "-" {
			f, err := os.Open(inFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		return graph.Read(r)
	}
}

func parseWeights(s string) ([]numeric.Rat, error) {
	parts := strings.Split(s, ",")
	ws := make([]numeric.Rat, len(parts))
	for i, p := range parts {
		w, err := numeric.Parse(p)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

func parseEngine(s string) (bottleneck.Engine, error) {
	switch s {
	case "auto":
		return bottleneck.EngineAuto, nil
	case "flow":
		return bottleneck.EngineFlow, nil
	case "path-dp":
		return bottleneck.EnginePathDP, nil
	case "brute":
		return bottleneck.EngineBrute, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

package jobs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// StoreConfig tunes the durable store. Zero values select the defaults.
type StoreConfig struct {
	// CompactBytes triggers snapshot compaction when the WAL grows past
	// this size (default 4 MiB; negative disables automatic compaction).
	CompactBytes int64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.CompactBytes == 0 {
		c.CompactBytes = 4 << 20
	}
	return c
}

// Store is the crash-safe job store: an in-memory map of records backed by
// a CRC-checked write-ahead log plus a periodically compacted snapshot.
// All methods are safe for concurrent use.
type Store struct {
	dir string
	cfg StoreConfig

	mu       sync.Mutex
	wal      *os.File
	walBytes int64
	jobs     map[string]*Record // by ID; live canonical copies
	order    []*Record          // by Seq ascending (List pagination)
	nextSeq  uint64
	closed   bool

	appends, syncs, compactions atomic.Int64
	// recovery facts, fixed at Open
	recovered int  // records live after replay
	replayed  int  // WAL entries applied
	tornTail  bool // a damaged WAL tail was discarded
	resumable int  // queued/running records found at Open
}

// Open loads (or initializes) the store in dir: snapshot first, then WAL
// replay. A torn WAL tail — the signature of a crash mid-write — is
// truncated away; everything before it is applied. The recovered state is
// exactly the fsync'd history plus whatever checkpoint deltas survived.
func Open(dir string, cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create data dir: %w", err)
	}
	snap, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:     dir,
		cfg:     cfg,
		jobs:    make(map[string]*Record),
		nextSeq: snap.Seq + 1,
	}
	for _, rec := range snap.Jobs {
		if !rec.State.valid() {
			return nil, fmt.Errorf("jobs: snapshot record %s has unknown state %q", rec.ID, rec.State)
		}
		st.jobs[rec.ID] = rec
		if rec.Seq >= st.nextSeq {
			st.nextSeq = rec.Seq + 1
		}
	}

	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open wal: %w", err)
	}
	valid, torn, err := readFrames(f, func(e *walEntry) error {
		st.replayed++
		return st.applyLocked(e)
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	st.tornTail = torn
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobs: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: seek wal: %w", err)
	}
	st.wal = f
	st.walBytes = valid

	// Fix up the invariant NextIndex == len(Points): an un-synced
	// checkpoint suffix may have been lost while a later (synced) record
	// claimed more progress. Resuming earlier is always safe — points are
	// independent and exact.
	for _, rec := range st.jobs {
		if rec.NextIndex > len(rec.Points) {
			rec.NextIndex = len(rec.Points)
		} else if rec.NextIndex < len(rec.Points) {
			rec.Points = rec.Points[:rec.NextIndex]
		}
		st.order = append(st.order, rec)
		if !rec.State.Terminal() {
			st.resumable++
		}
	}
	sort.Slice(st.order, func(i, j int) bool { return st.order[i].Seq < st.order[j].Seq })
	st.recovered = len(st.jobs)
	return st, nil
}

// applyLocked replays one WAL entry into the in-memory state. Replay is
// convergent: re-applying a stale log over a newer snapshot (the crash
// window between snapshot publish and WAL truncation) ends in the same
// state, because the log holds the complete history since the previous
// compaction.
func (st *Store) applyLocked(e *walEntry) error {
	switch e.Op {
	case "job":
		if e.Job == nil {
			return fmt.Errorf("jobs: wal job entry without record")
		}
		rec := e.Job
		if !rec.State.valid() {
			return fmt.Errorf("jobs: wal record %s has unknown state %q", rec.ID, rec.State)
		}
		if prev, ok := st.jobs[rec.ID]; ok {
			// Carry resident points, truncated to the record's checkpoint
			// cursor (a resubmission resets it to zero, dropping them all).
			n := rec.NextIndex
			if n > len(prev.Points) {
				n = len(prev.Points)
			}
			rec.Points = prev.Points[:n]
		}
		st.jobs[rec.ID] = rec
		if rec.Seq >= st.nextSeq {
			st.nextSeq = rec.Seq + 1
		}
	case "points":
		rec, ok := st.jobs[e.ID]
		if !ok {
			// Points for an unknown job: the job record was in an un-synced
			// region that a later compaction dropped. Nothing to resume.
			return nil
		}
		have := len(rec.Points)
		start, pts := e.Start, e.Points
		if start > have {
			// A gap means the intervening deltas were lost; skip — the
			// fix-up in Open resumes from the contiguous prefix.
			return nil
		}
		if start+len(pts) <= have {
			return nil // fully replayed already (stale-log replay)
		}
		rec.Points = append(rec.Points, pts[have-start:]...)
		if rec.NextIndex < len(rec.Points) {
			rec.NextIndex = len(rec.Points)
		}
	default:
		return fmt.Errorf("jobs: unknown wal op %q", e.Op)
	}
	return nil
}

// Close syncs and closes the WAL. The store is unusable afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if err := st.wal.Sync(); err != nil {
		st.wal.Close()
		return fmt.Errorf("jobs: sync wal on close: %w", err)
	}
	return st.wal.Close()
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// appendLocked writes one WAL frame, optionally fsync'ing it (state
// transitions sync; checkpoint deltas do not — any later sync makes them
// durable wholesale, since fsync covers the whole file). The append is the
// jobs.wal.append fault-injection site.
func (st *Store) appendLocked(ctx context.Context, e *walEntry, sync bool) error {
	if st.closed {
		return fmt.Errorf("jobs: store is closed")
	}
	if err := fault.Hit(ctx, fault.SiteJobsWAL); err != nil {
		return err
	}
	frame, err := encodeFrame(e)
	if err != nil {
		return err
	}
	if _, err := st.wal.Write(frame); err != nil {
		return fmt.Errorf("jobs: append wal: %w", err)
	}
	st.walBytes += int64(len(frame))
	st.appends.Add(1)
	if sync {
		if err := st.wal.Sync(); err != nil {
			return fmt.Errorf("jobs: sync wal: %w", err)
		}
		st.syncs.Add(1)
	}
	return nil
}

// maybeCompactLocked compacts when the WAL has outgrown the configured
// threshold. Callers invoke it only AFTER publishing their mutation to the
// in-memory state: the snapshot is cut from memory, so compacting from
// inside the append (before the publish) would truncate the just-written
// frame without capturing its effect.
func (st *Store) maybeCompactLocked() error {
	if st.cfg.CompactBytes > 0 && st.walBytes > st.cfg.CompactBytes {
		return st.compactLocked()
	}
	return nil
}

// Submission is the input of Store.Submit.
type Submission struct {
	// Key is the canonical dedupe key; the job ID derives from it.
	Key string
	// Kind names the job type (e.g. "sweep").
	Kind string
	// Spec is the opaque specification persisted with the job.
	Spec []byte
	// Priority orders the scheduler queue (higher first).
	Priority int
	// Seed is a checkpointed prefix carried over from another process —
	// the cluster router re-places a job on a surviving node with the last
	// checkpoint it observed, so the new node resumes instead of restarting.
	// Applied only when the submission creates (or restarts) the job; a
	// dedupe to a live or done job keeps that job's own progress.
	Seed []Point
}

// Submit creates (or dedupes to) the job for sub.Key. The returned enqueue
// flag tells the scheduler whether the job needs queueing: true for a new
// job and for a failed/canceled job restarted as a fresh attempt; false
// when the submission deduped to a queued, running, or done job. The
// creating append is fsync'd before Submit returns — an acknowledged job
// survives any crash.
func (st *Store) Submit(ctx context.Context, sub Submission) (*Record, bool, error) {
	if sub.Key == "" {
		return nil, false, fmt.Errorf("jobs: submission without key")
	}
	id := IDForKey(sub.Key)
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now().UnixNano()
	if prev, ok := st.jobs[id]; ok {
		if !prev.State.Terminal() || prev.State == StateDone {
			return prev.clone(), false, nil
		}
		// Failed or canceled: restart as a fresh attempt of the same job.
		next := prev.clone()
		next.State = StateQueued
		next.Attempt++
		next.Error = ""
		next.Result = nil
		next.Points = nil
		next.NextIndex = 0
		next.StartedUnixNano = 0
		next.FinishedUnixNano = 0
		next.CancelRequested = false
		next.Priority = sub.Priority
		if err := st.submitLocked(ctx, next, sub.Seed); err != nil {
			return nil, false, err
		}
		st.replaceLocked(next)
		if err := st.maybeCompactLocked(); err != nil {
			return nil, false, err
		}
		return next.clone(), true, nil
	}
	rec := &Record{
		ID:              id,
		Key:             sub.Key,
		Kind:            sub.Kind,
		Spec:            sub.Spec,
		Priority:        sub.Priority,
		Seq:             st.nextSeq,
		Attempt:         1,
		State:           StateQueued,
		CreatedUnixNano: now,
	}
	if err := st.submitLocked(ctx, rec, sub.Seed); err != nil {
		return nil, false, err
	}
	st.nextSeq++
	st.jobs[id] = rec
	st.order = append(st.order, rec)
	if err := st.maybeCompactLocked(); err != nil {
		return nil, false, err
	}
	return rec.clone(), true, nil
}

// submitLocked persists a queued record, optionally seeded with a
// checkpointed prefix carried over from another process. The record and its
// seed delta land in the same fsync (the sync on the last frame covers the
// whole file), so an acknowledged seeded submission survives a crash with
// its prefix intact — replay applies the job record first, then the points
// delta, restoring NextIndex = len(Seed).
func (st *Store) submitLocked(ctx context.Context, rec *Record, seed []Point) error {
	if len(seed) > 0 {
		rec.Points = make([]Point, len(seed))
		copy(rec.Points, seed)
		rec.NextIndex = len(seed)
		if err := st.appendLocked(ctx, &walEntry{Op: "job", Job: rec.walForm()}, false); err != nil {
			return err
		}
		return st.appendLocked(ctx, &walEntry{Op: "points", ID: rec.ID, Start: 0, Points: rec.Points}, true)
	}
	return st.appendLocked(ctx, &walEntry{Op: "job", Job: rec.walForm()}, true)
}

// walForm returns the record as logged: everything but the points, which
// travel as their own delta entries.
func (r *Record) walForm() *Record {
	c := *r
	c.Points = nil
	return &c
}

// replaceLocked swaps the canonical copy of a record (same ID and Seq) in
// both indexes.
func (st *Store) replaceLocked(rec *Record) {
	st.jobs[rec.ID] = rec
	for i, r := range st.order {
		if r.ID == rec.ID {
			st.order[i] = rec
			return
		}
	}
	st.order = append(st.order, rec)
}

// Get returns a clone of the record, if present.
func (st *Store) Get(id string) (*Record, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// Update applies mutate to a clone of the record, persists the result with
// an fsync'd WAL append, and publishes it. The mutator must not touch
// Points or NextIndex (checkpoints go through AppendPoints); state changes,
// results, errors and timestamps belong here. On append failure the store
// state is unchanged.
func (st *Store) Update(ctx context.Context, id string, mutate func(*Record) error) (*Record, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	prev, ok := st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: update of unknown job %s", id)
	}
	next := prev.clone()
	if err := mutate(next); err != nil {
		return nil, err
	}
	next.ID, next.Seq, next.Key = prev.ID, prev.Seq, prev.Key
	if !next.State.valid() {
		return nil, fmt.Errorf("jobs: update to unknown state %q", next.State)
	}
	if err := st.appendLocked(ctx, &walEntry{Op: "job", Job: next.walForm()}, true); err != nil {
		return nil, err
	}
	st.replaceLocked(next)
	if err := st.maybeCompactLocked(); err != nil {
		return nil, err
	}
	return next.clone(), nil
}

// AppendPoints checkpoints a contiguous run of partial results starting at
// work-unit index start (which must equal the job's NextIndex). The delta
// is appended without fsync — durability piggybacks on the next state
// transition, and a lost tail only costs recomputing those points.
func (st *Store) AppendPoints(ctx context.Context, id string, start int, pts []Point) error {
	if len(pts) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: checkpoint for unknown job %s", id)
	}
	if start != rec.NextIndex {
		return fmt.Errorf("jobs: checkpoint start %d, want %d", start, rec.NextIndex)
	}
	if err := st.appendLocked(ctx, &walEntry{Op: "points", ID: id, Start: start, Points: pts}, false); err != nil {
		return err
	}
	next := rec.clone()
	next.Points = append(next.Points, pts...)
	next.NextIndex += len(pts)
	st.replaceLocked(next)
	return st.maybeCompactLocked()
}

// Pending returns clones of every non-terminal record, in submission order.
// The scheduler requeues these at startup.
func (st *Store) Pending() []*Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []*Record
	for _, rec := range st.order {
		if !rec.State.Terminal() {
			out = append(out, rec.clone())
		}
	}
	return out
}

// ListOptions selects a List page.
type ListOptions struct {
	// AfterSeq resumes after this cursor (0 = from the beginning).
	AfterSeq uint64
	// Limit caps the page (default 50).
	Limit int
	// State, when non-empty, filters to that state.
	State State
	// Kind, when non-empty, filters to that job kind.
	Kind string
}

// List returns one page of records in submission order plus the cursor for
// the next page (0 when the listing is exhausted).
func (st *Store) List(opts ListOptions) ([]*Record, uint64) {
	if opts.Limit <= 0 {
		opts.Limit = 50
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	i := sort.Search(len(st.order), func(i int) bool { return st.order[i].Seq > opts.AfterSeq })
	var out []*Record
	for ; i < len(st.order); i++ {
		rec := st.order[i]
		if opts.State != "" && rec.State != opts.State {
			continue
		}
		if opts.Kind != "" && rec.Kind != opts.Kind {
			continue
		}
		if len(out) == opts.Limit {
			return out, out[len(out)-1].Seq
		}
		out = append(out, rec.clone())
	}
	return out, 0
}

// Compact writes a snapshot of the full store state and truncates the WAL.
// Normally automatic (see StoreConfig.CompactBytes); exposed for tests and
// operational tooling.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.compactLocked()
}

func (st *Store) compactLocked() error {
	snap := &snapshot{Version: snapshotVersion, Seq: st.nextSeq - 1}
	for _, rec := range st.order {
		snap.Jobs = append(snap.Jobs, rec.clone())
	}
	if err := writeSnapshot(st.dir, snap); err != nil {
		return err
	}
	if err := st.wal.Truncate(0); err != nil {
		return fmt.Errorf("jobs: truncate wal after compaction: %w", err)
	}
	if _, err := st.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("jobs: rewind wal after compaction: %w", err)
	}
	if err := st.wal.Sync(); err != nil {
		return fmt.Errorf("jobs: sync truncated wal: %w", err)
	}
	st.walBytes = 0
	st.compactions.Add(1)
	return nil
}

// StoreStats is a point-in-time snapshot of store counters.
type StoreStats struct {
	Jobs        int   // resident records
	WALBytes    int64 // bytes in the current WAL segment
	Appends     int64 // WAL frames written since Open
	Syncs       int64 // fsync'd appends since Open
	Compactions int64 // snapshot compactions since Open
	Recovered   int   // records live after Open's replay
	Replayed    int   // WAL entries applied at Open
	Resumable   int   // non-terminal records found at Open
	TornTail    bool  // Open discarded a damaged WAL tail
}

// Stats snapshots the store counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	jobs, walBytes := len(st.jobs), st.walBytes
	st.mu.Unlock()
	return StoreStats{
		Jobs:        jobs,
		WALBytes:    walBytes,
		Appends:     st.appends.Load(),
		Syncs:       st.syncs.Load(),
		Compactions: st.compactions.Load(),
		Recovered:   st.recovered,
		Replayed:    st.replayed,
		Resumable:   st.resumable,
		TornTail:    st.tornTail,
	}
}

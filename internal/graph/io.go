package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/numeric"
)

// Text format, used by the cmd tools:
//
//	# comment
//	n <vertex count>
//	w <vertex> <weight>        (weight is an integer, fraction a/b, or decimal)
//	e <u> <v>
//
// Lines may appear in any order after the n line.

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "w %d %s\n", v, g.Weight(v))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// maxReadVertices caps the vertex count accepted by Read. The n line sizes
// the adjacency and weight slices before any other validation, so an
// adversarial "n 99999999999" would commit gigabytes on a 20-byte input —
// found by FuzzParseGraph. Every instance in this repository is orders of
// magnitude smaller.
const maxReadVertices = 1 << 20

// Read parses the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n line", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: n needs one argument", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			if n > maxReadVertices {
				return nil, fmt.Errorf("graph: line %d: vertex count %d exceeds limit %d", line, n, maxReadVertices)
			}
			g = New(n)
		case "w":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: w before n", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: w needs two arguments", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[1])
			}
			wt, err := numeric.Parse(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("graph: line %d: vertex %d out of range", line, v)
			}
			if err := g.SetWeight(v, wt); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: e before n", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: e needs two arguments", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}

// DOT renders g in Graphviz format. classOf, when non-nil, maps a vertex to
// a fill-color name (used by the tools to color B/C classes).
func DOT(g *Graph, classOf func(v int) string) string {
	var b strings.Builder
	b.WriteString("graph G {\n  node [shape=circle];\n")
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&b, "  %d [label=\"%s\\nw=%s\"", v, g.Label(v), g.Weight(v))
		if classOf != nil {
			if c := classOf(v); c != "" {
				fmt.Fprintf(&b, ", style=filled, fillcolor=%q", c)
			}
		}
		b.WriteString("];\n")
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %d -- %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

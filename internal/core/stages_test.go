package core

import (
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestStageReportChecksOnRandomRings(t *testing.T) {
	// Every lemma assertion of the proof must hold on random instances at
	// the optimizer's best split.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.Optimize(OptimizeOptions{Grid: 24})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := in.AnalyzeStages(opt.BestW1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllChecksPass() {
			for _, c := range rep.Checks {
				if !c.Pass {
					t.Errorf("trial %d (ring %v, v=%d, w1*=%v): FAILED %s: %s",
						trial, g.Weights(), v, opt.BestW1, c.Name, c.Detail)
				}
			}
			t.FailNow()
		}
		if !rep.BoundHolds {
			t.Fatalf("trial %d: bound fails", trial)
		}
	}
}

func TestStageReportFormsAreClassified(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	forms := map[InitialForm]int{}
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.Optimize(OptimizeOptions{Grid: 16})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := in.AnalyzeStages(opt.BestW1)
		if err != nil {
			t.Fatal(err)
		}
		forms[rep.Form]++
		// Lemma 14 / 20 catalog is exhaustive: no instance may fall outside.
		if rep.Form == FormUnknown {
			t.Fatalf("trial %d: unclassified initial form (ring %v, v=%d)", trial, g.Weights(), v)
		}
		// Consistency: C forms require C-class manipulator, D forms B-class.
		isC := rep.VClass.IsC()
		if (rep.Form == FormD1) == isC {
			t.Fatalf("trial %d: form %v inconsistent with class %v", trial, rep.Form, rep.VClass)
		}
	}
	if len(forms) < 2 {
		t.Errorf("expected multiple initial forms across 60 rings, got %v", forms)
	}
}

func TestStageAnalysisOfHonestSplitIsTrivial(t *testing.T) {
	in := mustInstance(t, numeric.Ints(5, 1, 7, 2), 0)
	rep, err := in.AnalyzeStages(in.W1Zero)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UStar.Equal(in.HonestU) {
		t.Fatalf("U* = %v at the honest split, want %v", rep.UStar, in.HonestU)
	}
	for s := 0; s < 2; s++ {
		for i := 0; i < 2; i++ {
			if rep.Delta[s][i].Sign() > 0 {
				t.Fatalf("positive delta at the honest split: %v", rep.Delta)
			}
		}
	}
}

func TestAnalyzeStagesRejectsOutOfRange(t *testing.T) {
	in := mustInstance(t, numeric.Ints(1, 2, 3), 0)
	if _, err := in.AnalyzeStages(numeric.FromInt(9)); err == nil {
		t.Error("w1* > w_v accepted")
	}
	if _, err := in.AnalyzeStages(numeric.FromInt(-1)); err == nil {
		t.Error("negative w1* accepted")
	}
}

func TestAdjustingTechniqueTriggersOnLowerBoundFamily(t *testing.T) {
	// On the lower-bound family the attacker sits in a symmetric C-class
	// position and the honest split puts both identities into one pair;
	// walking to the optimum crosses the same-pair plateau.
	g, v, err := LowerBoundFamily(3, numeric.FromInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(g, v)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := in.AnalyzeStages(opt.BestW1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllChecksPass() {
		for _, c := range rep.Checks {
			t.Logf("%s: pass=%v (%s)", c.Name, c.Pass, c.Detail)
		}
		t.Fatal("stage checks failed on lower-bound family")
	}
	if !rep.BoundHolds {
		t.Fatal("bound fails on lower-bound family")
	}
}

func TestAdjustingTechniqueSnapsToExactPlateauEdge(t *testing.T) {
	// Regression: ring (93, 30, 32, 22, 56, 12), v = 1. The Adjusting
	// Technique must land on the EXACT critical point (z = 1650/181 here);
	// a bisection-approximate z strictly inside the plateau leaves
	// Lemma 16's δ¹_{v¹} ε-positive (observed: +2.9e-14, exact arithmetic).
	g := graph.Ring(numeric.Ints(93, 30, 32, 22, 56, 12))
	in, err := NewInstance(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(OptimizeOptions{Grid: 64})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := in.AnalyzeStages(opt.BestW1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Adjusted {
		t.Fatal("expected the Adjusting Technique to engage")
	}
	if !rep.AdjustZ.Equal(numeric.New(1650, 181)) {
		t.Fatalf("z = %v, want the exact plateau edge 1650/181", rep.AdjustZ)
	}
	if rep.Delta[0][0].Sign() != 0 {
		t.Fatalf("δ¹_{v¹} = %v, want exactly 0", rep.Delta[0][0])
	}
	if !rep.AllChecksPass() {
		t.Fatal("stage checks failed")
	}
}

func TestFlippedOrientation(t *testing.T) {
	// Force an instance where the optimum shrinks w1 (grows w2): the stage
	// machinery must flip so the growing identity is v¹.
	rng := rand.New(rand.NewSource(53))
	flips := 0
	for trial := 0; trial < 30 && flips == 0; trial++ {
		g := graph.RandomRing(rng, rng.Intn(6)+4, graph.DistSkewed)
		v := rng.Intn(g.N())
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.Optimize(OptimizeOptions{Grid: 16})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := in.AnalyzeStages(opt.BestW1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Flipped {
			flips++
			if rep.W1Star.Less(rep.W1Init) {
				t.Fatal("flipped frame still has shrinking v¹")
			}
		}
	}
	// Flips are common on skewed rings; not seeing any would be suspicious
	// but not strictly wrong — only warn via the log.
	if flips == 0 {
		t.Log("note: no flipped instance encountered in 30 trials")
	}
}

func TestInitialFormStringAndChecks(t *testing.T) {
	if FormC1.String() != "Case C-1" || FormD1.String() != "Case D-1" || FormUnknown.String() != "unknown" {
		t.Error("InitialForm.String wrong")
	}
	var r StageReport
	r.addCheck("x", true, "d")
	r.addCheck("y", false, "d2")
	if r.AllChecksPass() {
		t.Error("AllChecksPass with a failing check")
	}
	_ = bottleneck.ClassB
}

package bottleneck

import (
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

// randComponent draws a path or cycle component with weights spanning the
// regimes the scaled plan must survive: small integers, bisection-dust
// denominators (the 2^-48-scale rationals that knock the DP off the int64
// fast path), and magnitudes beyond int64.
func randComponent(rng *rand.Rand, cycle bool) dpComponent {
	m := rng.Intn(6) + 2
	if cycle {
		m = rng.Intn(5) + 3
	}
	ws := make([]numeric.Rat, m)
	for i := range ws {
		switch rng.Intn(3) {
		case 0:
			ws[i] = numeric.New(int64(rng.Intn(50)+1), int64(rng.Intn(9)+1))
		case 1: // dust denominator
			ws[i] = numeric.New(int64(rng.Intn(1<<20)+1), 1).Div(numeric.New(1<<31, 1)).Add(numeric.One)
		default: // off the int64 fast path entirely
			ws[i] = numeric.New(1<<62, int64(rng.Intn(7)+1)).Mul(numeric.New(int64(rng.Intn(100)+1), 1<<61))
		}
	}
	return dpComponent{order: iota0(m), ws: ws, cycle: cycle}
}

func randLambda(rng *rand.Rand) numeric.Rat {
	// λ ∈ (0, 1] with an occasionally dusty denominator.
	lam := numeric.New(int64(rng.Intn(99)+1), 100)
	if rng.Intn(2) == 0 {
		lam = lam.Mul(numeric.New(int64(rng.Intn(1<<20)+1), 1<<21)).Add(numeric.New(1, 97))
	}
	return lam
}

// TestBigPlanMatchesRatReference proves the gcd-free big.Int passes compute
// exactly the fully-normalized rational reference on both shapes, for both
// the value pass and the membership sweep. Zero tolerance: the big plan is
// the live execution path (dp.go routes through it whenever the int64 plan
// overflows), the Rat passes are the reference it must reproduce.
func TestBigPlanMatchesRatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		cycle := rng.Intn(2) == 0
		c := randComponent(rng, cycle)
		lambda := randLambda(rng)
		pl := c.bigPlanFor(lambda)
		sel := c.selCosts(lambda)

		var wantVal, gotVal costW
		var wantMin, gotMin numeric.Rat
		var wantMem, gotMem []bool
		if cycle {
			wantVal, gotVal = c.cycleValue(sel), c.cycleValueBig(pl)
			wantMin, wantMem = c.cycleMembership(lambda)
			gotMin, gotMem = c.cycleMembershipBig(pl)
		} else {
			wantVal, gotVal = c.pathValue(sel), c.pathValueBig(pl)
			wantMin, wantMem = c.pathMembership(lambda)
			gotMin, gotMem = c.pathMembershipBig(pl)
		}
		if !gotVal.ok || !gotVal.cost.Equal(wantVal.cost) || !gotVal.wS.Equal(wantVal.wS) {
			t.Fatalf("trial %d (cycle=%v, λ=%v): value big (%v, %v) != ref (%v, %v)",
				trial, cycle, lambda, gotVal.cost, gotVal.wS, wantVal.cost, wantVal.wS)
		}
		if !gotMin.Equal(wantMin) {
			t.Fatalf("trial %d (cycle=%v, λ=%v): membership min %v != ref %v",
				trial, cycle, lambda, gotMin, wantMin)
		}
		for i := range wantMem {
			if gotMem[i] != wantMem[i] {
				t.Fatalf("trial %d (cycle=%v, λ=%v): member[%d] = %v != ref %v",
					trial, cycle, lambda, i, gotMem[i], wantMem[i])
			}
		}

		// When the magnitudes fit machine integers, the int64 plan must agree
		// with both.
		if ip, ok := c.intPlanFor(lambda); ok {
			var iv costW
			if cycle {
				iv = c.cycleValueInt(ip)
			} else {
				iv = c.pathValueInt(ip)
			}
			if !iv.cost.Equal(wantVal.cost) || !iv.wS.Equal(wantVal.wS) {
				t.Fatalf("trial %d: int plan value (%v, %v) != ref (%v, %v)",
					trial, iv.cost, iv.wS, wantVal.cost, wantVal.wS)
			}
		}
	}
}

// TestDPOraclePlanMemo verifies the per-λ plan memo returns correct results
// across alternating λ values (the memo must invalidate, not leak a stale
// plan into a different λ).
func TestDPOraclePlanMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		o := &dpOracle{comps: []dpComponent{
			randComponent(rng, false),
			randComponent(rng, rng.Intn(2) == 0),
		}}
		l1, l2 := randLambda(rng), randLambda(rng)
		fresh := func(lambda numeric.Rat) (numeric.Rat, numeric.Rat, []int) {
			fo := &dpOracle{comps: o.comps}
			v, w := fo.value(lambda)
			return v, w, fo.maximal(lambda)
		}
		for _, lambda := range []numeric.Rat{l1, l2, l1, l2, l1} {
			wantV, wantW, wantS := fresh(lambda)
			gotV, gotW := o.value(lambda)
			gotS := o.maximal(lambda)
			if !gotV.Equal(wantV) || !gotW.Equal(wantW) {
				t.Fatalf("trial %d λ=%v: memoized value (%v, %v) != fresh (%v, %v)",
					trial, lambda, gotV, gotW, wantV, wantW)
			}
			if len(gotS) != len(wantS) {
				t.Fatalf("trial %d λ=%v: maximal %v != fresh %v", trial, lambda, gotS, wantS)
			}
			for i := range wantS {
				if gotS[i] != wantS[i] {
					t.Fatalf("trial %d λ=%v: maximal %v != fresh %v", trial, lambda, gotS, wantS)
				}
			}
		}
	}
}

// Package jobs is the durable asynchronous job subsystem: the first piece
// of irshared state that survives the process. It turns long-running
// computations — today the Sybil split-utility sweeps, the headline
// experiment of the paper — into persistent jobs that a restart resumes
// instead of loses.
//
// The package has two halves:
//
//   - Store: a crash-safe on-disk job store. Every mutation is appended to
//     a CRC-checked write-ahead log and fsync'd on state transitions;
//     checkpoint appends ride the log without fsync (losing an un-synced
//     checkpoint suffix only means recomputing those grid points — results
//     are exact either way). The log is periodically compacted into an
//     atomically written snapshot. Jobs are content-addressed by the
//     canonical instance key, so duplicate submissions dedupe to one job.
//
//   - Scheduler: drains a priority/FIFO queue into a shared par.Limiter
//     worker pool, checkpoints partial results to the store as the runner
//     produces them, and on startup recovers queued/running jobs from their
//     last checkpoint — the recovered job completes bit-identically to an
//     uninterrupted run, because grid points are independent and exact.
//
// The package is deliberately ignorant of what a job computes: the Spec is
// opaque JSON and the computation is a Runner callback installed by the
// server, so jobs stays free of graph/solver dependencies and the server
// stays the single owner of wire formats.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"time"
)

// State is the lifecycle position of a job.
type State string

const (
	// StateQueued: accepted and waiting for a worker slot (also the state a
	// recovered in-flight job returns to on restart).
	StateQueued State = "queued"
	// StateRunning: a worker is executing the job.
	StateRunning State = "running"
	// StateDone: finished successfully; Result holds the final answer.
	StateDone State = "done"
	// StateFailed: the runner returned a non-cancellation error.
	StateFailed State = "failed"
	// StateCanceled: canceled by request before completion.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final: a terminal job never runs
// again (though a failed or canceled one may be resubmitted, which requeues
// the same job ID with a fresh attempt).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// valid reports whether s is one of the five states; replay uses it to
// reject records from a corrupt or future log.
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Point is one checkpointed unit of partial result: an exactly evaluated
// sweep point in canonical wire form. Rationals stay strings here so the
// store never depends on the numeric package — and so what is persisted is
// byte-for-byte what the API serves.
type Point struct {
	W1 string `json:"w1"`
	U  string `json:"u"`
}

// Record is the persistent form of one job. The store owns the canonical
// copy; callers receive clones (see Record.clone) so readers never race the
// scheduler's mutations.
type Record struct {
	// ID is derived from Key (see IDForKey): content-addressing makes
	// duplicate submissions converge on one job.
	ID string `json:"id"`
	// Key is the canonical dedupe key — for sweeps, the canonical instance
	// encoding plus the agent and grid.
	Key string `json:"key"`
	// Kind names the job type (currently always "sweep").
	Kind string `json:"kind"`
	// Spec is the opaque job specification, owned by the submitter (the
	// server stores its normalized wire request here and rebuilds the
	// computation from it after a restart).
	Spec []byte `json:"spec"`
	// Priority orders the queue: higher runs first; FIFO within a priority.
	Priority int `json:"priority"`
	// Seq is the submission sequence number (FIFO tiebreak and list cursor).
	Seq uint64 `json:"seq"`
	// Attempt counts submissions of this ID: 1 on first submit, +1 each
	// time a failed/canceled job is resubmitted.
	Attempt int `json:"attempt"`

	State State `json:"state"`
	// Error holds the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Result is the final answer of a done job (opaque JSON, owned by the
	// submitter like Spec).
	Result []byte `json:"result,omitempty"`

	// NextIndex is the checkpoint cursor: the first unit of work not yet
	// covered by Points. A recovered job resumes here.
	NextIndex int `json:"next_index"`
	// Points is the accumulated partial result, contiguous from the start
	// of the job. The WAL persists deltas; snapshots persist the whole set.
	Points []Point `json:"points,omitempty"`

	// CreatedUnixNano/StartedUnixNano/FinishedUnixNano timestamp the
	// lifecycle (0 = not reached). Started reflects the most recent attempt.
	CreatedUnixNano  int64 `json:"created_unix_nano"`
	StartedUnixNano  int64 `json:"started_unix_nano,omitempty"`
	FinishedUnixNano int64 `json:"finished_unix_nano,omitempty"`

	// CancelRequested marks a cancellation in flight: set when a running
	// job is asked to stop, so the worker can tell an API cancel from a
	// shutdown requeue when its context dies.
	CancelRequested bool `json:"cancel_requested,omitempty"`
}

// clone deep-copies the record (Points, Spec and Result are shared-read
// slices internally, so only the slice headers and the point slice need
// copying — Point values and the byte slices are never mutated in place).
func (r *Record) clone() *Record {
	c := *r
	if r.Points != nil {
		c.Points = make([]Point, len(r.Points))
		copy(c.Points, r.Points)
	}
	return &c
}

// Age returns the job's queued-to-finished duration (terminal jobs) or its
// age so far (live jobs), against now.
func (r *Record) Age(now time.Time) time.Duration {
	end := now.UnixNano()
	if r.FinishedUnixNano > 0 {
		end = r.FinishedUnixNano
	}
	return time.Duration(end - r.CreatedUnixNano)
}

// IDForKey derives the content-addressed job ID from the canonical dedupe
// key: "j" plus the first 16 hex digits of SHA-256(key). Stable across
// processes, so a resubmission after restart still dedupes.
func IDForKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return "j" + hex.EncodeToString(sum[:8])
}

package graph

import (
	"fmt"

	"repro/internal/numeric"
)

// SplitSpec describes a Sybil attack at the graph level (Section II-D):
// agent v splits into m = len(Parts) fictitious identities v^1..v^m. Parts
// partitions Γ(v): Parts[i] is the set of original neighbors connected to
// identity i. Weights[i] is the resource assigned to identity i; the weights
// must be non-negative and sum to w_v.
type SplitSpec struct {
	V       int
	Parts   [][]int
	Weights []numeric.Rat
}

// Validate checks sp against g.
func (sp SplitSpec) Validate(g *Graph) error {
	if sp.V < 0 || sp.V >= g.N() {
		return fmt.Errorf("graph: split vertex %d out of range", sp.V)
	}
	if len(sp.Parts) == 0 || len(sp.Parts) != len(sp.Weights) {
		return fmt.Errorf("graph: split needs matching non-empty Parts/Weights, got %d/%d",
			len(sp.Parts), len(sp.Weights))
	}
	if len(sp.Parts) > g.Degree(sp.V) {
		return fmt.Errorf("graph: cannot split degree-%d vertex into %d identities",
			g.Degree(sp.V), len(sp.Parts))
	}
	seen := make(map[int]bool)
	total := 0
	for i, part := range sp.Parts {
		if len(part) == 0 {
			return fmt.Errorf("graph: split part %d is empty", i)
		}
		for _, u := range part {
			if !g.HasEdge(sp.V, u) {
				return fmt.Errorf("graph: split part %d contains non-neighbor %d", i, u)
			}
			if seen[u] {
				return fmt.Errorf("graph: neighbor %d assigned to two identities", u)
			}
			seen[u] = true
			total++
		}
		if sp.Weights[i].Sign() < 0 {
			return fmt.Errorf("graph: negative split weight %v", sp.Weights[i])
		}
	}
	if total != g.Degree(sp.V) {
		return fmt.Errorf("graph: split covers %d of %d neighbors", total, g.Degree(sp.V))
	}
	if !numeric.Sum(sp.Weights).Equal(g.Weight(sp.V)) {
		return fmt.Errorf("graph: split weights sum to %v, want w_v = %v",
			numeric.Sum(sp.Weights), g.Weight(sp.V))
	}
	return nil
}

// Split applies sp to g and returns the resulting graph G' together with the
// indices of the fictitious identities in G'.
//
// Vertex numbering in G': the original vertices keep their indices except
// that v itself becomes identity v^1; identities v^2..v^m are appended as
// new vertices N, N+1, ....
func Split(g *Graph, sp SplitSpec) (*Graph, []int, error) {
	if err := sp.Validate(g); err != nil {
		return nil, nil, err
	}
	m := len(sp.Parts)
	out := New(g.N() + m - 1)
	ids := make([]int, m)
	ids[0] = sp.V
	for i := 1; i < m; i++ {
		ids[i] = g.N() + i - 1
	}
	for u := 0; u < g.N(); u++ {
		if u == sp.V {
			continue
		}
		out.MustSetWeight(u, g.Weight(u))
		if g.labels != nil && g.labels[u] != "" {
			out.SetLabel(u, g.labels[u])
		}
	}
	for i := 0; i < m; i++ {
		out.MustSetWeight(ids[i], sp.Weights[i])
		out.SetLabel(ids[i], fmt.Sprintf("%s^%d", g.Label(sp.V), i+1))
	}
	// Edges not incident to v survive unchanged; edges (v, u) are rewired to
	// the identity owning u.
	owner := make(map[int]int)
	for i, part := range sp.Parts {
		for _, u := range part {
			owner[u] = ids[i]
		}
	}
	for _, e := range g.Edges() {
		u, w := e[0], e[1]
		switch {
		case u == sp.V:
			out.MustAddEdge(owner[w], w)
		case w == sp.V:
			out.MustAddEdge(owner[u], u)
		default:
			out.MustAddEdge(u, w)
		}
	}
	return out, ids, nil
}

// TwoSplitOnRing is the specialization used throughout the paper: on a ring,
// agent v splits into exactly two identities, one per neighbor, turning the
// ring into the path P_v(w1, w2) with v^1 and v^2 as its two leaves.
//
// It returns the path graph, the path order from v^1 to v^2, and the indices
// of v^1 (attached to the neighbor that follows v in ring order) and v^2.
func TwoSplitOnRing(g *Graph, v int, w1, w2 numeric.Rat) (path *Graph, order []int, v1, v2 int, err error) {
	if !g.IsRing() {
		return nil, nil, 0, 0, fmt.Errorf("graph: TwoSplitOnRing requires a ring")
	}
	ring, err := g.RingOrder(v)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	// ring = [v, n1, ..., n_{k}, n_last] with n1 and n_last the neighbors.
	n1 := ring[1]
	nLast := ring[len(ring)-1]
	sp := SplitSpec{
		V:       v,
		Parts:   [][]int{{n1}, {nLast}},
		Weights: []numeric.Rat{w1, w2},
	}
	path, ids, err := Split(g, sp)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	v1, v2 = ids[0], ids[1]
	order = make([]int, 0, path.N())
	order = append(order, v1)
	order = append(order, ring[1:]...)
	order = append(order, v2)
	if !path.IsPath() {
		return nil, nil, 0, 0, fmt.Errorf("graph: split of ring did not produce a path")
	}
	return path, order, v1, v2, nil
}

package p2p

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// AsyncConfig drives RunAsync, the robustness variant of the swarm: message
// latency, loss, and peer churn — the failure modes BitTorrent's incentive
// design is praised for tolerating (Cohen [10]; Feldman et al. [12]). Peers
// keep the last offer heard from each neighbor and respond proportionally
// to that view, so the protocol degrades gracefully instead of dividing by
// silence.
type AsyncConfig struct {
	// Rounds is the number of protocol rounds (default 200).
	Rounds int
	// MaxDelay is the maximum message latency in rounds; each message is
	// delivered after a uniform delay in [1, MaxDelay] (≤ 1 = synchronous).
	MaxDelay int
	// DropRate is the iid probability that a message is lost in transit.
	DropRate float64
	// ChurnRate is the per-round probability that an online peer goes
	// offline; an offline peer stays silent for OfflineRounds rounds
	// (default 10) and then rejoins with its last state.
	ChurnRate     float64
	OfflineRounds int
	// Seed makes the latency/loss/churn draws reproducible.
	Seed int64
	// TrackAgents lists agents whose perceived utility history to record.
	TrackAgents []int
}

// AsyncResult is the outcome of an asynchronous swarm run.
type AsyncResult struct {
	// Utilities is each agent's perceived utility (sum of the freshest
	// offers heard from each neighbor) after the final round.
	Utilities []float64
	// History[i] tracks cfg.TrackAgents[i]'s perceived utility per round.
	History [][]float64
	// Delivered and Dropped count messages.
	Delivered, Dropped int64
	// OfflineEvents counts churn departures.
	OfflineEvents int
}

// RunAsync executes the proportional response protocol under message delay,
// loss, and churn. Unlike Run it is sequential — the adversarial scheduler
// is the object of study, not throughput — and fully deterministic per seed.
func RunAsync(g *graph.Graph, cfg AsyncConfig) (*AsyncResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("p2p: empty swarm")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 200
	}
	if cfg.MaxDelay < 1 {
		cfg.MaxDelay = 1
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return nil, fmt.Errorf("p2p: drop rate %v outside [0, 1)", cfg.DropRate)
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate >= 1 {
		return nil, fmt.Errorf("p2p: churn rate %v outside [0, 1)", cfg.ChurnRate)
	}
	if cfg.OfflineRounds <= 0 {
		cfg.OfflineRounds = 10
	}
	for _, v := range cfg.TrackAgents {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("p2p: tracked agent %d out of range", v)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := make([]float64, n)
	for v := 0; v < n; v++ {
		w[v] = g.Weight(v).Float64()
	}
	// lastKnown[v][j]: the freshest offer v has heard from its j-th
	// neighbor; seeded with the equal split so nobody divides by silence.
	lastKnown := make([][]float64, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		lastKnown[v] = make([]float64, len(nb))
		for j, u := range nb {
			lastKnown[v][j] = w[u] / float64(g.Degree(u))
		}
	}
	// neighborSlot[v][j]: position of v in the adjacency of its j-th
	// neighbor, so deliveries land in the right slot.
	neighborSlot := make([][]int, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		neighborSlot[v] = make([]int, len(nb))
		for j, u := range nb {
			neighborSlot[v][j] = sort.SearchInts(g.Neighbors(u), v)
		}
	}

	type delivery struct {
		to, slot int
		amount   float64
	}
	// future[r % (MaxDelay+1)] holds deliveries scheduled for round r.
	future := make([][]delivery, cfg.MaxDelay+1)
	offlineUntil := make([]int, n)

	res := &AsyncResult{
		Utilities: make([]float64, n),
		History:   make([][]float64, len(cfg.TrackAgents)),
	}
	perceived := func(v int) float64 {
		total := 0.0
		for _, amt := range lastKnown[v] {
			total += amt
		}
		return total
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Deliver everything scheduled for this round.
		slot := round % (cfg.MaxDelay + 1)
		for _, d := range future[slot] {
			lastKnown[d.to][d.slot] = d.amount
			res.Delivered++
		}
		future[slot] = future[slot][:0]

		// Churn.
		for v := 0; v < n; v++ {
			if offlineUntil[v] <= round && cfg.ChurnRate > 0 && rng.Float64() < cfg.ChurnRate {
				offlineUntil[v] = round + cfg.OfflineRounds
				res.OfflineEvents++
			}
		}

		// Online peers answer their current view proportionally.
		for v := 0; v < n; v++ {
			if offlineUntil[v] > round {
				continue
			}
			u := perceived(v)
			d := len(lastKnown[v])
			for j := range lastKnown[v] {
				var amount float64
				if u > 0 {
					amount = lastKnown[v][j] / u * w[v]
				} else {
					amount = w[v] / float64(d)
				}
				if cfg.DropRate > 0 && rng.Float64() < cfg.DropRate {
					res.Dropped++
					continue
				}
				delay := 1
				if cfg.MaxDelay > 1 {
					delay = 1 + rng.Intn(cfg.MaxDelay)
				}
				at := (round + delay) % (cfg.MaxDelay + 1)
				future[at] = append(future[at], delivery{
					to:     g.Neighbors(v)[j],
					slot:   neighborSlot[v][j],
					amount: amount,
				})
			}
		}
		for i, v := range cfg.TrackAgents {
			res.History[i] = append(res.History[i], perceived(v))
		}
	}
	for v := 0; v < n; v++ {
		res.Utilities[v] = perceived(v)
	}
	return res, nil
}

// Package cert defines machine-checkable certificates for the answers the
// resource-sharing solvers produce — bottleneck decompositions, best-split
// incentive ratios, and sweep curves — together with a small, dependency-free
// checker that verifies a certificate without re-running any solver.
//
// A certificate is self-contained: it embeds the exact instance it speaks
// about (vertex weights and edges as canonical rational strings), the
// bottleneck cover (every pair B_i, C_i with its α_i), and, per pair, a
// Hall-condition flow witness — a feasible fractional assignment routing
// α_i·w(v) out of every vertex v of the residual graph V_i into the supplies
// w(u) of its neighbors. By LP duality (König/Hall), such an assignment
// exists iff
//
//	∀ ∅ ≠ S ⊆ V_i:  w(Γ(S) ∩ V_i) ≥ α_i · w(S),
//
// i.e. iff α_i is a lower bound on the expansion ratio of every subset of
// the residual graph. Together with the arithmetic identity
// α_i = w(C_i)/w(B_i) (so B_i achieves the bound) and the strictly
// increasing α chain, the witnesses pin the recorded pairs to the canonical
// maximal bottleneck decomposition: a strictly larger bottleneck B* ⊋ B_i
// would leave a set of ratio α_i alive in V_{i+1}, contradicting pair i+1's
// witness. The inequality chain of a ratio certificate then closes the
// argument: honest utility read off the ring cover, best-split utility read
// off a path cover, ratio = best/honest compared against 2 exactly.
//
// Check verifies all of this in time linear in the certificate (plus the
// per-pair adjacency walks, which the witnesses dominate on positive-weight
// instances), using only the Go standard library — no solver package is
// imported, so a checker pass is independent evidence, not a replay.
package cert

// Schema version strings. A certificate whose Schema does not match the
// checker's expectation is rejected before any arithmetic runs.
const (
	// SchemaDecomposition tags a DecompositionCert.
	SchemaDecomposition = "bd-cert/v1"
	// SchemaRatio tags a RatioCert.
	SchemaRatio = "ratio-cert/v1"
	// SchemaSweep tags a SweepCert.
	SchemaSweep = "sweep-cert/v1"
)

// Instance is the exact instance a certificate speaks about: vertex weights
// as canonical rational strings ("n" or "n/d", lowest terms) and the sorted
// undirected edge list. It deliberately mirrors the server's canonical wire
// encoding so certificates and cache keys agree on instance identity.
type Instance struct {
	N       int      `json:"n"`
	Weights []string `json:"weights"`
	Edges   [][2]int `json:"edges"`
}

// FlowEdge is one arc of a Hall-condition flow witness: Flow units routed
// from the demand side of From to the supply side of To, where (From, To)
// must be an edge of the residual graph.
type FlowEdge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Flow string `json:"flow"`
}

// PairCert is one bottleneck pair (B_i, C_i, α_i) together with the flow
// witness proving that no subset of the residual graph V_i has expansion
// ratio below α_i. The witness may be empty when every demand is zero
// (α_i = 0, or a trailing zero-weight cluster).
type PairCert struct {
	B       []int      `json:"b"`
	C       []int      `json:"c"`
	Alpha   string     `json:"alpha"`
	Witness []FlowEdge `json:"witness,omitempty"`
}

// DecompositionCert certifies a bottleneck decomposition: the embedded
// instance, the cover (pairs in extraction order), and every agent's
// equilibrium utility (Proposition 6: w·α for B class, w/α for C class).
type DecompositionCert struct {
	Schema   string     `json:"schema"`
	Instance Instance   `json:"instance"`
	Pairs    []PairCert `json:"pairs"`
	// Utilities[v] is agent v's equilibrium utility, derivable from the
	// cover; the checker re-derives and compares.
	Utilities []string `json:"utilities"`
}

// SplitCert certifies one evaluated Sybil split P_v(w1, w2): the derived
// path instance (identity v¹ at position 0 with weight W1, the ring interior
// in order, identity v² at the far end with weight W2), its certified
// decomposition, and the two identity utilities.
type SplitCert struct {
	W1   string            `json:"w1"`
	W2   string            `json:"w2"`
	Path DecompositionCert `json:"path"`
	U1   string            `json:"u1"`
	U2   string            `json:"u2"`
	U    string            `json:"u"`
}

// PieceCert is one maximal interval of splits sharing a decomposition
// structure (the ⟨a_i, b_i⟩ intervals of the paper's Section III-B), with
// the exact closed form of the attacker's utility on the piece and the best
// split found inside it.
//
// Num and Den are the ascending coefficients of the piece's closed form
// U(w1) = Num(w1)/Den(w1), exact rationals read off the pair containing each
// identity (numerator degree ≤ 3, denominator ≤ 2). FormulaExact reports
// that evaluating the closed form at Best.W1 reproduces Best.U exactly; the
// checker enforces the equation whenever the flag is set.
type PieceCert struct {
	Lo           string    `json:"lo"`
	Hi           string    `json:"hi"`
	Signature    string    `json:"signature,omitempty"`
	SamePair     bool      `json:"same_pair,omitempty"`
	Num          []string  `json:"num,omitempty"`
	Den          []string  `json:"den,omitempty"`
	FormulaExact bool      `json:"formula_exact,omitempty"`
	Best         SplitCert `json:"best"`
}

// RatioCert certifies a /v1/ratio answer end to end:
//
//   - Ring certifies the honest side: the ring's bottleneck cover and the
//     attacker's equilibrium utility (Honest = Ring.Utilities[V]),
//   - Best certifies the reported best split exactly,
//   - Pieces and Boundary certify the optimizer's candidate set: the pieces
//     tile [0, w_v] up to breakpoint brackets whose endpoints appear in
//     Boundary, and the checker verifies that Best.U equals the maximum over
//     the honest split, every piece best, and every boundary evaluation,
//   - Ratio = Best.U / Honest and LeqTwo is the exact Theorem 8 comparison.
//
// Chain is the human-readable rendering of the inequality chain; the checker
// verifies the underlying numbers, not the prose.
type RatioCert struct {
	Schema   string            `json:"schema"`
	Ring     DecompositionCert `json:"ring"`
	V        int               `json:"v"`
	Honest   string            `json:"honest"`
	Best     SplitCert         `json:"best"`
	Ratio    string            `json:"ratio"`
	LeqTwo   bool              `json:"leq_two"`
	Pieces   []PieceCert       `json:"pieces,omitempty"`
	Boundary []SplitCert       `json:"boundary,omitempty"`
	Chain    []string          `json:"chain,omitempty"`
}

// SweepCert certifies a sweep answer: every grid point's split evaluated and
// certified, with the grid geometry (w1_i = W·i/Grid) re-derived by the
// checker, the earliest-maximum best point, and the ratio rule against the
// certified honest utility. Start is the first covered grid index (nonzero
// for a certified partial sweep); Points covers [Start, Start+len).
type SweepCert struct {
	Schema    string            `json:"schema"`
	Ring      DecompositionCert `json:"ring"`
	V         int               `json:"v"`
	Grid      int               `json:"grid"`
	Start     int               `json:"start,omitempty"`
	Points    []SplitCert       `json:"points"`
	BestIndex int               `json:"best_index"`
	Honest    string            `json:"honest"`
	Ratio     string            `json:"ratio"`
	LeqTwo    bool              `json:"leq_two"`
	Chain     []string          `json:"chain,omitempty"`
}

// Checkable is implemented by every certificate type.
type Checkable interface {
	// Check verifies the certificate without re-running any solver. A nil
	// return means every recorded quantity has been independently verified.
	Check() error
}

// Check verifies any certificate in time linear in its size, without
// invoking solver code. It is a trivial indirection kept for call-site
// clarity: cert.Check(c) reads as "verify this certificate".
func Check(c Checkable) error { return c.Check() }

// Compile-time interface conformance.
var (
	_ Checkable = (*DecompositionCert)(nil)
	_ Checkable = (*RatioCert)(nil)
	_ Checkable = (*SweepCert)(nil)
)

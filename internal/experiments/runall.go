package experiments

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/numeric"
)

// runner couples an experiment id with its driver at a given scale.
type runner struct {
	id  string
	run func(Scale) ([]*Table, error)
}

// one adapts a single-table driver.
func one(f func(Scale) (*Table, error)) func(Scale) ([]*Table, error) {
	return func(s Scale) ([]*Table, error) {
		t, err := f(s)
		if t == nil {
			return nil, err
		}
		return []*Table{t}, err
	}
}

// registry lists every experiment in order.
func registry() []runner {
	return []runner{
		{"E1", one(func(Scale) (*Table, error) { return E1Fig1() })},
		{"E2", func(Scale) ([]*Table, error) { return E2Fig2(24) }},
		{"E3", one(E3Fig3)},
		{"E4", one(E4Fig4)},
		{"E5", one(E5Theorem8UpperBound)},
		{"E6", one(func(s Scale) (*Table, error) {
			return E6LowerBoundFamily([]int{0, 1, 2, 4, 8, 16}, numeric.FromInt(1000000), s.OptGrid)
		})},
		{"E7", one(E7Lemma9)},
		{"E8", one(E8Theorem10)},
		{"E9", one(E9StageDeltas)},
		{"E10", one(func(s Scale) (*Table, error) { return E10DynamicsConvergence(s.DynRounds) })},
		{"E11", one(E11Misreport)},
		{"E12", one(func(Scale) (*Table, error) { return E12SolverAblation(nil, 3) })},
		{"E13", one(E13GeneralConjecture)},
		{"E14", one(func(s Scale) (*Table, error) { return E14SwarmAttack(s.DynRounds) })},
		{"E15", one(func(s Scale) (*Table, error) { return E15AsyncRobustness(s.DynRounds) })},
		{"E16", one(func(s Scale) (*Table, error) { return E16CoalitionAttack(s.Trials*3, 6) })},
		{"E17", one(func(s Scale) (*Table, error) { return E17FreeRiding(s.DynRounds) })},
	}
}

// IDs returns the known experiment identifiers in order.
func IDs() []string {
	rs := registry()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.id
	}
	return out
}

// RunAll executes every experiment at the given scale and writes the tables
// to w. It stops at the first failed expectation — a failed check is a
// reproduction regression, not a formatting matter.
func RunAll(w io.Writer, s Scale) error {
	return RunFiltered(w, s, nil)
}

// WriteCSV runs the selected experiments (all when ids is empty) and writes
// each produced table as a CSV file under dir, named E<id>_<k>.csv in
// execution order. It returns the files written.
func WriteCSV(dir string, s Scale, ids []string) ([]string, error) {
	want, err := normalizeIDs(ids)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, r := range registry() {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		tables, err := r.run(s)
		if err != nil {
			return files, fmt.Errorf("%s: %w", r.id, err)
		}
		for k, t := range tables {
			if t == nil {
				continue
			}
			name := fmt.Sprintf("%s_%d.csv", r.id, k)
			path := dir + "/" + name
			if err := writeFile(path, t.CSV()); err != nil {
				return files, err
			}
			files = append(files, path)
		}
	}
	return files, nil
}

// normalizeIDs validates and uppercases experiment ids.
func normalizeIDs(ids []string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, id := range ids {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	known := map[string]bool{}
	for _, r := range registry() {
		known[r.id] = true
	}
	for id := range want {
		if !known[id] {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
		}
	}
	return want, nil
}

// RunFiltered runs only the experiments whose ids appear in ids (all when
// ids is empty). Unknown ids are an error.
func RunFiltered(w io.Writer, s Scale, ids []string) error {
	want, err := normalizeIDs(ids)
	if err != nil {
		return err
	}
	ran := 0
	for _, r := range registry() {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		tables, err := r.run(s)
		for _, t := range tables {
			if t != nil {
				fmt.Fprintln(w, t.String())
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		ran++
	}
	fmt.Fprintf(w, "%d experiments completed with every expectation verified\n", ran)
	return nil
}

// writeFile writes content to path (0644).
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestAlphaStarCaseB3Exact(t *testing.T) {
	// Ring (x, 1, 1, 1, 1) at v = 0: v's pair reaches α = 1 when x equals
	// the weight of its two unit neighbors' backing — by symmetry x* = 2.
	g := graph.Ring(numeric.Ints(8, 1, 1, 1, 1))
	x, c, err := AlphaStar(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c != CaseB3 {
		t.Fatalf("case %v", c)
	}
	if !x.Equal(numeric.FromInt(2)) {
		t.Fatalf("x* = %v, want 2", x)
	}
}

func TestAlphaStarCaseB1(t *testing.T) {
	g := graph.Ring(numeric.Ints(2, 50, 50, 50))
	_, c, err := AlphaStar(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c != CaseB1 {
		t.Fatalf("case %v", c)
	}
}

func TestAlphaStarCaseB2(t *testing.T) {
	g := graph.Path(numeric.Ints(100, 1, 4, 1, 100))
	x, c, err := AlphaStar(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c != CaseB2 || !x.IsZero() {
		t.Fatalf("case %v, x* %v", c, x)
	}
}

func TestAlphaStarMatchesCurveClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomRing(rng, rng.Intn(7)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		x, c, err := AlphaStar(g, v, 0)
		if err != nil {
			t.Fatalf("trial %d (w=%v, v=%d): %v", trial, g.Weights(), v, err)
		}
		curve, err := SampleCurve(g, v, 32)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := ClassifyAlphaCurve(curve)
		if err != nil {
			t.Fatal(err)
		}
		// The sampled classification can read a B-3 with extreme x* as B-1
		// or B-2 (grid too coarse); exact equality is required only when
		// both see the same case.
		if c == cc && c == CaseB3 {
			// Left of x*: C class; right: B class (checked on the curve).
			for _, pt := range curve {
				if pt.X.Less(x) && !pt.Class.IsC() {
					t.Fatalf("trial %d: sample at %v left of x*=%v is %v", trial, pt.X, x, pt.Class)
				}
				if x.Less(pt.X) && !pt.Class.IsB() {
					t.Fatalf("trial %d: sample at %v right of x*=%v is %v", trial, pt.X, x, pt.Class)
				}
			}
		}
	}
}

func TestAlphaStarValidation(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1))
	if _, _, err := AlphaStar(g, 9, 0); err == nil {
		t.Error("bad vertex accepted")
	}
	z := graph.Path([]numeric.Rat{numeric.Zero, numeric.One})
	if _, _, err := AlphaStar(z, 0, 0); err == nil {
		t.Error("zero-weight agent accepted")
	}
}

package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// TestOdometerMatchesCompositions pins the streaming odometer against the
// materializing reference enumerator: same order, same contents, and the
// reduced stream is exactly the filtered subsequence.
func TestOdometerMatchesCompositions(t *testing.T) {
	cases := []struct{ total, k int }{
		{5, 2}, {6, 3}, {4, 4}, {0, 3}, {7, 1}, {3, 5}, {8, 2},
	}
	for _, tc := range cases {
		ref := sybil.Compositions(tc.total, tc.k)
		od, err := NewOdometer(tc.total, tc.k, false)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tc.total, tc.k, err)
		}
		var got [][]int
		for {
			c, ok := od.Next()
			if !ok {
				break
			}
			got = append(got, append([]int(nil), c...))
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("(%d,%d): odometer %v != compositions %v", tc.total, tc.k, got, ref)
		}

		// Reduced = the subsequence with non-increasing interior digits.
		var want [][]int
		for _, c := range ref {
			ok := true
			for i := 2; i < tc.k-1; i++ {
				if c[i-1] < c[i] {
					ok = false
					break
				}
			}
			if tc.k < 3 || ok {
				want = append(want, c)
			}
		}
		red, err := NewOdometer(tc.total, tc.k, true)
		if err != nil {
			t.Fatal(err)
		}
		var gotRed [][]int
		for {
			c, ok := red.Next()
			if !ok {
				break
			}
			gotRed = append(gotRed, append([]int(nil), c...))
		}
		if !reflect.DeepEqual(gotRed, want) {
			t.Fatalf("(%d,%d) reduced: odometer %v != filtered %v", tc.total, tc.k, gotRed, want)
		}
		probe, _ := NewOdometer(tc.total, tc.k, true)
		if n := probe.Count(0); n != len(want) {
			t.Fatalf("(%d,%d): Count %d != %d", tc.total, tc.k, n, len(want))
		}
		for i, w := range want {
			at, err := probe.At(i)
			if err != nil || !reflect.DeepEqual(at, w) {
				t.Fatalf("(%d,%d): At(%d) = %v, %v; want %v", tc.total, tc.k, i, at, err, w)
			}
		}
		if _, err := probe.At(len(want)); err == nil {
			t.Fatalf("(%d,%d): At past end should fail", tc.total, tc.k)
		}
	}
}

// TestKSybilK2MatchesRingSweep is the bit-identity contract: over a
// 50-instance random-ring corpus, the k = 2 scenario scan reproduces
// sybil.RingSweep point for point — same utilities, same best index, same
// honest value and ratio, and composition c ↔ w1 = W·c/Grid.
func TestKSybilK2MatchesRingSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(6) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		grid := []int{4, 8, 16}[rng.Intn(3)]

		sweep, err := sybil.RingSweep(g, v, sybil.SweepOptions{Grid: grid, Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: sweep: %v", trial, err)
		}
		scan, err := KSybil(context.Background(), g, v, KSybilOptions{K: 2, Grid: grid})
		if err != nil {
			t.Fatalf("trial %d: ksybil: %v", trial, err)
		}
		if scan.Total != grid+1 || len(scan.Points) != len(sweep.Points) {
			t.Fatalf("trial %d: %d/%d points, want %d", trial, scan.Total, len(scan.Points), len(sweep.Points))
		}
		W := g.Weight(v)
		for i, p := range scan.Points {
			if p.Comp[0] != i || p.Comp[1] != grid-i {
				t.Fatalf("trial %d point %d: comp %v", trial, i, p.Comp)
			}
			w1 := W.MulInt(int64(p.Comp[0])).DivInt(int64(grid))
			if !w1.Equal(sweep.Points[i].W1) {
				t.Fatalf("trial %d point %d: w1 %v != %v", trial, i, w1, sweep.Points[i].W1)
			}
			if !p.U.Equal(sweep.Points[i].U) {
				t.Fatalf("trial %d point %d: U %v != sweep %v", trial, i, p.U, sweep.Points[i].U)
			}
		}
		if scan.BestIndex != sweep.BestIndex || !scan.BestU.Equal(sweep.BestU) {
			t.Fatalf("trial %d: best (%d, %v) != sweep (%d, %v)",
				trial, scan.BestIndex, scan.BestU, sweep.BestIndex, sweep.BestU)
		}
		if !scan.Honest.Equal(sweep.Honest) || !scan.Ratio.Equal(sweep.Ratio) {
			t.Fatalf("trial %d: honest/ratio (%v, %v) != sweep (%v, %v)",
				trial, scan.Honest, scan.Ratio, sweep.Honest, sweep.Ratio)
		}
	}
}

// TestKSybilGenericMatchesMechanismSweep extends the k = 2 identity to the
// generic mechanism path: the scenario scan under a non-BD mechanism
// reproduces mechanism.RingSweep.
func TestKSybilGenericMatchesMechanismSweep(t *testing.T) {
	g := graph.Ring(numeric.Ints(3, 1, 4, 1, 5, 9))
	for _, name := range []string{"eqsplit", "pr"} {
		m, err := mechanism.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sweep, err := mechanism.RingSweep(context.Background(), m, g, 2, sybil.SweepOptions{Grid: 8, Workers: 1})
		if err != nil {
			t.Fatalf("%s: sweep: %v", name, err)
		}
		scan, err := KSybil(context.Background(), g, 2, KSybilOptions{K: 2, Grid: 8, Mechanism: m})
		if err != nil {
			t.Fatalf("%s: ksybil: %v", name, err)
		}
		if len(scan.Points) != len(sweep.Points) {
			t.Fatalf("%s: %d points, want %d", name, len(scan.Points), len(sweep.Points))
		}
		for i := range scan.Points {
			if !scan.Points[i].U.Equal(sweep.Points[i].U) {
				t.Fatalf("%s point %d: U %v != %v", name, i, scan.Points[i].U, sweep.Points[i].U)
			}
		}
		if scan.BestIndex != sweep.BestIndex || !scan.Ratio.Equal(sweep.Ratio) || !scan.Honest.Equal(sweep.Honest) {
			t.Fatalf("%s: best/ratio mismatch", name)
		}
	}
}

// TestKSybilReductionSound checks the interior reduction against a brute
// force over the unreduced composition grid: skipping permuted interiors
// must not lose the maximum. k = 3 has a single interior digit (no
// symmetry, no shrink); k = 4 is the first case where the reduction prunes
// points.
func TestKSybilReductionSound(t *testing.T) {
	g := graph.Ring(numeric.Ints(7, 2, 9, 1, 8))
	const grid = 6
	for _, k := range []int{3, 4} {
		scan, err := KSybil(context.Background(), g, 1, KSybilOptions{K: k, Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		in, err := core.NewInstanceCtx(context.Background(), g, 1)
		if err != nil {
			t.Fatal(err)
		}
		W := in.W()
		best := numeric.Zero
		for _, c := range sybil.Compositions(grid, k) {
			w1 := W.MulInt(int64(c[0])).DivInt(grid)
			wk := W.MulInt(int64(c[k-1])).DivInt(grid)
			ev, err := in.EvalWithheldCtx(context.Background(), w1, wk)
			if err != nil {
				t.Fatal(err)
			}
			if best.Less(ev.U) {
				best = ev.U
			}
		}
		if !scan.BestU.Equal(best) {
			t.Fatalf("k=%d: reduced best %v != unreduced best %v", k, scan.BestU, best)
		}
		unreduced := len(sybil.Compositions(grid, k))
		if k >= 4 && scan.Total >= unreduced {
			t.Fatalf("k=%d: reduction did not shrink the grid: %d vs %d", k, scan.Total, unreduced)
		}
		if k == 3 && scan.Total != unreduced {
			t.Fatalf("k=3 has no interior symmetry, yet %d != %d", scan.Total, unreduced)
		}
	}
}

// TestKSybilResume splits a k = 3 scan at every index and checks that the
// resumed halves concatenate to the uninterrupted run bit for bit — the
// property the durable job's WAL recovery rests on.
func TestKSybilResume(t *testing.T) {
	g := graph.Ring(numeric.Ints(5, 3, 11, 2, 7, 1))
	opts := KSybilOptions{K: 3, Grid: 5}
	full, err := KSybil(context.Background(), g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for split := 0; split <= full.Total; split++ {
		tailOpts := opts
		tailOpts.Start = split
		tail, err := KSybil(context.Background(), g, 0, tailOpts)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if tail.Start != split || tail.NextIndex != full.Total || tail.Partial {
			t.Fatalf("split %d: start/next %d/%d partial=%v", split, tail.Start, tail.NextIndex, tail.Partial)
		}
		if len(tail.Points) != full.Total-split {
			t.Fatalf("split %d: %d tail points", split, len(tail.Points))
		}
		for i, p := range tail.Points {
			fp := full.Points[split+i]
			if !reflect.DeepEqual(p.Comp, fp.Comp) || !p.U.Equal(fp.U) {
				t.Fatalf("split %d point %d: %v/%v != %v/%v", split, i, p.Comp, p.U, fp.Comp, fp.U)
			}
		}
	}
}

// TestKSybilCancelPartial cancels mid-scan via the Progress hook and
// expects a clean partial prefix, not an error.
func TestKSybilCancelPartial(t *testing.T) {
	g := graph.Ring(numeric.Ints(5, 3, 11, 2, 7, 1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopAfter := 4
	res, err := KSybil(ctx, g, 0, KSybilOptions{K: 3, Grid: 5, Progress: func(i int) {
		if i == stopAfter-1 {
			cancel()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.NextIndex != stopAfter || len(res.Points) != stopAfter {
		t.Fatalf("partial=%v next=%d points=%d, want stop at %d", res.Partial, res.NextIndex, len(res.Points), stopAfter)
	}
}

// TestKSybilFaultFails arms the scenario.point site and expects a hard
// error — injected faults are failures, not checkpoints.
func TestKSybilFaultFails(t *testing.T) {
	g := graph.Ring(numeric.Ints(5, 3, 11))
	inj, err := fault.New(1, fault.Rule{Site: fault.SiteScenarioPoint, Kind: fault.KindError, Every: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := fault.ContextWith(context.Background(), inj)
	if _, err := KSybil(ctx, g, 0, KSybilOptions{K: 2, Grid: 8}); err == nil {
		t.Fatal("expected injected fault to fail the scan")
	}
}

// TestCoalitionBaselineAndBruteForce: the final grid point is the
// all-truthful profile (joint = honest joint), the best is its earliest
// maximum, and both match a brute force over the product grid.
func TestCoalitionBaselineAndBruteForce(t *testing.T) {
	g := graph.Ring(numeric.Ints(128, 2, 128, 128, 512, 4, 32))
	opts := CoalitionOptions{Members: []int{5, 4}, Grid: 3}
	res, err := Coalition(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 9 || len(res.Points) != 9 {
		t.Fatalf("total %d points %d, want 9", res.Total, len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	if last.Digits[0] != 3 || last.Digits[1] != 3 {
		t.Fatalf("last digits %v, want truthful (3,3)", last.Digits)
	}
	if !last.Joint.Equal(res.HonestJoint) {
		t.Fatalf("truthful joint %v != honest %v", last.Joint, res.HonestJoint)
	}
	// Brute force.
	m, err := mechanism.Get("")
	if err != nil {
		t.Fatal(err)
	}
	best := numeric.Rat{}
	first := true
	for c0 := 1; c0 <= 3; c0++ {
		for c1 := 1; c1 <= 3; c1++ {
			gp := g.Clone()
			gp.MustSetWeight(5, g.Weight(5).MulInt(int64(c0)).DivInt(3))
			gp.MustSetWeight(4, g.Weight(4).MulInt(int64(c1)).DivInt(3))
			a, err := m.Allocate(context.Background(), gp)
			if err != nil {
				t.Fatal(err)
			}
			joint := a.Utility(5).Add(a.Utility(4))
			if first || best.Less(joint) {
				best, first = joint, false
			}
		}
	}
	if !res.BestJoint.Equal(best) {
		t.Fatalf("best joint %v != brute force %v", res.BestJoint, best)
	}
	if res.HonestJoint.Less(res.BestJoint) {
		// Per-member attribution must be populated and consistent.
		sum := numeric.Zero
		for j := range opts.Members {
			sum = sum.Add(res.BestMember[j])
			if !res.Gains[j].Equal(res.BestMember[j].Sub(res.Honest[j])) {
				t.Fatalf("gain %d inconsistent", j)
			}
		}
		if !sum.Equal(res.BestJoint) {
			t.Fatalf("member sum %v != joint %v", sum, res.BestJoint)
		}
	}
}

// TestCoalitionResume checks start/prefix bit-identity for the coalition
// odometer.
func TestCoalitionResume(t *testing.T) {
	g := graph.Ring(numeric.Ints(9, 1, 6, 2, 5))
	opts := CoalitionOptions{Members: []int{0, 2, 3}, Grid: 2}
	full, err := Coalition(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total != 8 {
		t.Fatalf("total %d, want 8", full.Total)
	}
	for _, split := range []int{0, 1, 4, 7, 8} {
		tailOpts := opts
		tailOpts.Start = split
		tail, err := Coalition(context.Background(), g, tailOpts)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if len(tail.Points) != full.Total-split {
			t.Fatalf("split %d: %d points", split, len(tail.Points))
		}
		for i, p := range tail.Points {
			fp := full.Points[split+i]
			if !reflect.DeepEqual(p.Digits, fp.Digits) || !p.Joint.Equal(fp.Joint) {
				t.Fatalf("split %d point %d mismatch", split, i)
			}
		}
	}
}

// TestTopologyDeterminismResumeAndRegen runs a five-family scan twice,
// resumes it from the middle, and regenerates the per-family worst
// instances from their indices.
func TestTopologyDeterminismResumeAndRegen(t *testing.T) {
	opts := TopologyOptions{
		Families: Families(),
		Count:    2,
		N:        6,
		Grid:     3,
		Seed:     7,
	}
	full, err := Topology(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total != 10 || len(full.Outcomes) != 10 {
		t.Fatalf("total %d outcomes %d, want 10", full.Total, len(full.Outcomes))
	}
	again, err := Topology(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(full) != fmt.Sprint(again) {
		t.Fatal("scan is not deterministic")
	}
	mid := opts
	mid.Start = 4
	tail, err := Topology(context.Background(), mid)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range tail.Outcomes {
		if fmt.Sprint(out) != fmt.Sprint(full.Outcomes[4+i]) {
			t.Fatalf("resumed outcome %d differs", i)
		}
	}
	if len(full.Summaries) != len(opts.Families) {
		t.Fatalf("%d summaries", len(full.Summaries))
	}
	for _, s := range full.Summaries {
		if s.Count != 2 || s.WorstIndex < 0 {
			t.Fatalf("summary %+v", s)
		}
		g, family, err := TopologyInstance(opts, s.WorstIndex)
		if err != nil {
			t.Fatal(err)
		}
		if family != s.Family {
			t.Fatalf("instance %d family %s != %s", s.WorstIndex, family, s.Family)
		}
		out := full.Outcomes[s.WorstIndex]
		if g.N() != out.N || g.M() != out.M {
			t.Fatalf("regenerated instance %d shape %d/%d != %d/%d", s.WorstIndex, g.N(), g.M(), out.N, out.M)
		}
		if family == FamilyRing && !g.IsRing() {
			t.Fatal("ring family instance is not a ring")
		}
	}
}

// TestTopologyValidation pins option errors.
func TestTopologyValidation(t *testing.T) {
	if _, err := Topology(context.Background(), TopologyOptions{Families: []string{"moebius"}}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := Topology(context.Background(), TopologyOptions{Families: []string{FamilyRing}, N: 4}); err == nil {
		t.Fatal("n = 4 accepted")
	}
	if _, err := Topology(context.Background(), TopologyOptions{}); err == nil {
		t.Fatal("empty families accepted")
	}
}

// BenchmarkKSybilK3 is the grid-throughput benchmark exported to
// BENCH_scenarios.json (points per second over a k = 3 scan).
func BenchmarkKSybilK3(b *testing.B) {
	g := graph.Ring(numeric.Ints(31, 4, 17, 8, 23, 2, 11, 5))
	opts := KSybilOptions{K: 3, Grid: 16}
	total, err := KSybilTotal(opts.Grid, opts.K, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	points := 0
	for i := 0; i < b.N; i++ {
		res, err := KSybil(context.Background(), g, 0, opts)
		if err != nil {
			b.Fatal(err)
		}
		points += len(res.Points)
	}
	b.StopTimer()
	if points != b.N*total {
		b.Fatalf("evaluated %d points, want %d", points, b.N*total)
	}
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
}

// Package par provides the small deterministic parallelism helpers used by
// the dynamics simulator and the experiment sweeps: bounded worker pools
// over index ranges, with panics propagated to the caller.
//
// The helpers are deliberately synchronous (fork-join): every call returns
// only after all work items completed, so callers can treat them as drop-in
// replacements for sequential loops. Work is handed out by atomic counter,
// which keeps the schedule dynamic (good for skewed item costs) while the
// results remain deterministic because items never share mutable state.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Workers returns the effective worker count for a requested value: n itself
// when n ≥ 1, otherwise GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a contained panic: the original payload plus the stack of
// the goroutine that panicked, captured at the recover site (the worker's
// own stack would otherwise be gone by the time the caller sees it).
// ForEach re-panics with a *PanicError, and Protect returns one, so every
// containment barrier up the stack sees the same structured value.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panicked: %v", e.Value)
}

// String makes the re-panicked value print like the historical plain-string
// payload in crash logs.
func (e *PanicError) String() string { return e.Error() }

// Protect runs fn, converting a panic into a *PanicError instead of
// unwinding past the caller. This is the containment barrier used by the
// server's detached batch goroutine and anything else that must never let
// one poisoned work item kill the process.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe // already contained once; keep the original stack
				return
			}
			err = &PanicError{Value: r, Stack: stack()}
		}
	}()
	return fn()
}

// stack captures the current goroutine's stack, bounded so a deep recursion
// panic cannot balloon an error value.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers ≤ 0 means GOMAXPROCS). If any invocation panics, ForEach waits
// for all workers to stop, then panics with a *PanicError carrying the
// first panic's payload and the stack of the goroutine that raised it —
// the worker's stack is gone by then, so it must be captured at the
// recover site inside the worker.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			runOne(fn, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal *PanicError
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pe, ok := r.(*PanicError)
					if !ok {
						pe = &PanicError{Value: r, Stack: stack()}
					}
					panicMu.Lock()
					if panicVal == nil {
						panicVal = pe
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// runOne executes one item on the sequential (single-worker) path, wrapping
// a panic exactly like the parallel path does, so callers see *PanicError
// regardless of worker count.
func runOne(fn func(i int), i int) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*PanicError); ok {
				panic(r)
			}
			panic(&PanicError{Value: r, Stack: stack()})
		}
	}()
	fn(i)
}

// Map applies fn to every index in [0, n) and collects the results in order.
func Map[R any](n, workers int, fn func(i int) R) []R {
	out := make([]R, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ForEachCtx is ForEach with the caller's context threaded to every
// invocation. When the context carries an obs span, the fan-out shape is
// recorded on it (par_items / par_workers counters), so traces show how a
// parallel phase spread its work; with no span installed the overhead is a
// single context lookup.
func ForEachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int)) {
	if sp := obs.FromContext(ctx); sp != nil && n > 0 {
		w := Workers(workers)
		if w > n {
			w = n
		}
		sp.AddInt("par_items", int64(n))
		sp.AddInt("par_workers", int64(w))
	}
	ForEach(n, workers, func(i int) { fn(ctx, i) })
}

// MapCtx is Map with the caller's context threaded to every invocation,
// recording the fan-out on the context's obs span as in ForEachCtx.
func MapCtx[R any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) R) []R {
	out := make([]R, n)
	ForEachCtx(ctx, n, workers, func(ctx context.Context, i int) {
		out[i] = fn(ctx, i)
	})
	return out
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CollectorConfig bounds the memory a Collector may hold. Zero values take
// the defaults noted per field.
type CollectorConfig struct {
	// Capacity is the number of finished traces retained in the ring
	// buffer (default 256). The buffer is the backing store for
	// /debug/trace?id=; older traces are evicted as new ones finish.
	Capacity int
	// Retention expires ring entries by age at lookup time (default 10m).
	// An expired trace is reported as evicted even if still buffered.
	Retention time.Duration
	// MaxSpansPerTrace caps each trace's span count (default 4096);
	// excess spans are dropped and counted on the trace.
	MaxSpansPerTrace int
	// MaxEventsPerSpan caps events per span (default 64).
	MaxEventsPerSpan int
}

const (
	DefaultCapacity  = 256
	DefaultRetention = 10 * time.Minute
)

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.Retention <= 0 {
		c.Retention = DefaultRetention
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = DefaultMaxSpans
	}
	if c.MaxEventsPerSpan <= 0 {
		c.MaxEventsPerSpan = DefaultMaxEvents
	}
	return c
}

// stageStats aggregates one stage's (span name's) durations into a
// fixed-bucket histogram plus observation count and sum — the shape the
// Prometheus text writer needs.
type stageStats struct {
	buckets []int64 // cumulative at write time; stored as per-bucket here
	count   int64
	sumSec  float64
}

// stageBuckets spans 50µs..5s in roughly 3x steps: decomposition stages on
// small rings land at the low end, full sweeps at the high end.
var stageBuckets = []float64{0.00005, 0.00015, 0.0005, 0.0015, 0.005, 0.015, 0.05, 0.15, 0.5, 1.5, 5}

// iterBuckets histograms iterations-per-solve for counters that represent
// loop trip counts (Dinkelbach iterations, oracle calls).
var iterBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// Collector is the production Recorder: it retains finished traces in a
// bounded ring buffer (for /debug/trace) and folds every span into
// per-stage duration histograms, iteration histograms, and counter sums
// (for /metrics). Safe for concurrent use.
type Collector struct {
	cfg    CollectorConfig
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []*TraceSnapshot // ring buffer, len == cfg.Capacity
	head    int              // next write position
	byID    map[uint64]*TraceSnapshot
	evicted int64 // traces pushed out of the ring or expired at Get

	stages   map[string]*stageStats // span name -> duration histogram
	iters    map[string]*stageStats // "span/counter" -> iteration histogram
	counters map[string]int64       // "span/counter" -> running sum
	finished int64
}

// NewCollector builds a collector with cfg (zero fields take defaults).
func NewCollector(cfg CollectorConfig) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:      cfg,
		ring:     make([]*TraceSnapshot, cfg.Capacity),
		byID:     make(map[uint64]*TraceSnapshot, cfg.Capacity),
		stages:   make(map[string]*stageStats),
		iters:    make(map[string]*stageStats),
		counters: make(map[string]int64),
	}
}

// Config returns the collector's effective (defaulted) configuration.
func (c *Collector) Config() CollectorConfig { return c.cfg }

// NewTrace implements Recorder. Trace ids start at 1 and are unique for
// the collector's lifetime, so an evicted id never aliases a live trace.
func (c *Collector) NewTrace(name string) *Trace {
	id := c.nextID.Add(1)
	return newTrace(id, name, c.cfg.MaxSpansPerTrace, c.cfg.MaxEventsPerSpan, c.ingest)
}

// ingest is the Trace.Finish callback: snapshot, buffer, aggregate.
func (c *Collector) ingest(t *Trace) {
	snap := t.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.ring[c.head]; old != nil {
		delete(c.byID, old.ID)
		c.evicted++
	}
	c.ring[c.head] = snap
	c.byID[snap.ID] = snap
	c.head = (c.head + 1) % len(c.ring)
	c.finished++
	snap.Root.Walk(func(sp *SpanSnapshot) {
		st := c.stages[sp.Name]
		if st == nil {
			st = &stageStats{buckets: make([]int64, len(stageBuckets))}
			c.stages[sp.Name] = st
		}
		sec := sp.Duration.Seconds()
		st.count++
		st.sumSec += sec
		for i, ub := range stageBuckets {
			if sec <= ub {
				st.buckets[i]++
				break
			}
		}
		for _, cv := range sp.Counters {
			key := sp.Name + "/" + cv.Key
			c.counters[key] += cv.Value
			ih := c.iters[key]
			if ih == nil {
				ih = &stageStats{buckets: make([]int64, len(iterBuckets))}
				c.iters[key] = ih
			}
			v := float64(cv.Value)
			ih.count++
			ih.sumSec += v
			for i, ub := range iterBuckets {
				if v <= ub {
					ih.buckets[i]++
					break
				}
			}
		}
	})
}

// Get returns the snapshot for id. ok is false when the id was never
// issued, was evicted from the ring, or has aged past the retention window
// (expired entries are dropped from the buffer on lookup).
func (c *Collector) Get(id uint64) (*TraceSnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	if time.Since(snap.Start) > c.cfg.Retention {
		delete(c.byID, id)
		for i, s := range c.ring {
			if s == snap {
				c.ring[i] = nil
				break
			}
		}
		c.evicted++
		return nil, false
	}
	return snap, true
}

// Stats reports collector-level gauges for /metrics.
type Stats struct {
	Finished int64
	Buffered int
	Evicted  int64
}

// Stats returns the collector's current gauge values.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Finished: c.finished, Buffered: len(c.byID), Evicted: c.evicted}
}

// WritePrometheus emits the collector's aggregates in Prometheus text
// exposition format, all metric names prefixed with prefix (e.g.
// "irshared_"): per-stage duration histograms, iteration histograms for
// every span counter, counter sums, and trace gauges. Output is sorted so
// scrapes are deterministic.
func (c *Collector) WritePrometheus(w io.Writer, prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()

	fmt.Fprintf(w, "# HELP %sstage_seconds Time spent per solver stage (span name).\n", prefix)
	fmt.Fprintf(w, "# TYPE %sstage_seconds histogram\n", prefix)
	for _, name := range sortedKeys(c.stages) {
		st := c.stages[name]
		cum := int64(0)
		for i, ub := range stageBuckets {
			cum += st.buckets[i]
			fmt.Fprintf(w, "%sstage_seconds_bucket{stage=%q,le=\"%g\"} %d\n", prefix, name, ub, cum)
		}
		fmt.Fprintf(w, "%sstage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", prefix, name, st.count)
		fmt.Fprintf(w, "%sstage_seconds_sum{stage=%q} %g\n", prefix, name, st.sumSec)
		fmt.Fprintf(w, "%sstage_seconds_count{stage=%q} %d\n", prefix, name, st.count)
	}

	fmt.Fprintf(w, "# HELP %sstage_iterations Per-solve distribution of span counters (e.g. Dinkelbach iterations).\n", prefix)
	fmt.Fprintf(w, "# TYPE %sstage_iterations histogram\n", prefix)
	for _, key := range sortedKeys(c.iters) {
		ih := c.iters[key]
		cum := int64(0)
		for i, ub := range iterBuckets {
			cum += ih.buckets[i]
			fmt.Fprintf(w, "%sstage_iterations_bucket{counter=%q,le=\"%g\"} %d\n", prefix, key, ub, cum)
		}
		fmt.Fprintf(w, "%sstage_iterations_bucket{counter=%q,le=\"+Inf\"} %d\n", prefix, key, ih.count)
		fmt.Fprintf(w, "%sstage_iterations_sum{counter=%q} %g\n", prefix, key, ih.sumSec)
		fmt.Fprintf(w, "%sstage_iterations_count{counter=%q} %d\n", prefix, key, ih.count)
	}

	fmt.Fprintf(w, "# HELP %sspan_counter_total Running sums of span counters across all traces.\n", prefix)
	fmt.Fprintf(w, "# TYPE %sspan_counter_total counter\n", prefix)
	for _, key := range sortedKeys2(c.counters) {
		fmt.Fprintf(w, "%sspan_counter_total{counter=%q} %d\n", prefix, key, c.counters[key])
	}

	fmt.Fprintf(w, "# HELP %straces_finished_total Traces finished and ingested.\n", prefix)
	fmt.Fprintf(w, "# TYPE %straces_finished_total counter\n", prefix)
	fmt.Fprintf(w, "%straces_finished_total %d\n", prefix, c.finished)
	fmt.Fprintf(w, "# HELP %straces_evicted_total Traces evicted from the ring buffer or expired by retention.\n", prefix)
	fmt.Fprintf(w, "# TYPE %straces_evicted_total counter\n", prefix)
	fmt.Fprintf(w, "%straces_evicted_total %d\n", prefix, c.evicted)
	fmt.Fprintf(w, "# HELP %straces_buffered Traces currently retrievable from /debug/trace.\n", prefix)
	fmt.Fprintf(w, "# TYPE %straces_buffered gauge\n", prefix)
	fmt.Fprintf(w, "%straces_buffered %d\n", prefix, len(c.byID))
}

func sortedKeys(m map[string]*stageStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// E16CoalitionAttack is an extension experiment beyond the paper: what
// happens when TWO agents run Sybil attacks simultaneously? Theorem 8
// bounds unilateral deviations at 2; this sweep shows the bound does NOT
// extend to coalitions — a sacrificial partner can push an agent's utility
// to many times its honest value, and even the coalition's combined
// utility past 2× (the certified instance reaches 335/82 ≈ 4.09×). All
// reported gains are exactly evaluated strategies, i.e. rigorous
// lower-bound certificates.
func E16CoalitionAttack(trials, grid int) (*Table, error) {
	if trials <= 0 {
		trials = 20
	}
	if grid <= 0 {
		grid = 6
	}
	t := NewTable("E16 / extension — coalitions of two Sybil attackers on rings",
		"instance", "attackers", "combined ratio", "ratio A", "ratio B", "joint > 2")
	// The certified headline instance first.
	certified := graph.Ring(numeric.Ints(128, 2, 128, 128, 512, 4, 32))
	res, err := sybil.PairAttack(certified, 5, 4, grid)
	if err != nil {
		return nil, err
	}
	t.Add("(128,2,128,128,512,4,32)", "(5,4)",
		res.CombinedRatio.String()+" ≈ "+fmtF(res.CombinedRatio.Float64()),
		fmtF(res.RatioA.Float64()), fmtF(res.RatioB.Float64()),
		numeric.Two.Less(res.CombinedRatio))
	if res.CombinedRatio.LessEq(numeric.Two) {
		return t, fmt.Errorf("E16: certified coalition instance no longer exceeds 2 (got %v)", res.CombinedRatio)
	}

	rng := rand.New(rand.NewSource(111))
	maxCombined, over2 := numeric.One, 0
	for trial := 0; trial < trials; trial++ {
		n := rng.Intn(5) + 5
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(3)))
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		r, err := sybil.PairAttack(g, a, b, grid)
		if err != nil {
			return t, fmt.Errorf("E16 trial %d: %w", trial, err)
		}
		if r.CombinedRatio.Less(numeric.One) {
			return t, fmt.Errorf("E16 trial %d: combined ratio %v < 1", trial, r.CombinedRatio)
		}
		if maxCombined.Less(r.CombinedRatio) {
			maxCombined = r.CombinedRatio
		}
		if numeric.Two.Less(r.CombinedRatio) {
			over2++
		}
	}
	t.Add(fmt.Sprintf("%d random rings (seed 111)", trials), "random",
		"max "+fmtF(maxCombined.Float64()), "-", "-", over2 > 0)
	t.Note("Theorem 8 is strictly unilateral: coalitions escape the ×2 bound (%d of %d random instances exceeded it)",
		over2, trials)
	return t, nil
}

package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
)

// The warm/cold pairs below quantify the LRU's effect end to end (HTTP
// included): cold servers have caching disabled, so every request pays the
// full decomposition/optimization; warm servers answer repeat requests from
// the resident entry — decompositions by lookup, ratio/sweep from the
// accumulated SplitSolver state. BENCH_server.json is generated from these
// via cmd/benchjson.

func benchServer(b *testing.B, cacheSize int) *httptest.Server {
	b.Helper()
	srv, err := New(Config{CacheSize: cacheSize, Logger: discardLogger()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, url, path string, body any) {
	b.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	var sink json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
		b.Fatal(err)
	}
}

func benchRing(n int) WireGraph {
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomRing(rng, n, graph.DistUniform)
	ws := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		ws[v] = EncodeRat(g.Weight(v))
	}
	return WireGraph{Ring: ws}
}

func BenchmarkServerDecomposeCold(b *testing.B) {
	ts := benchServer(b, -1)
	req := DecomposeRequest{Graph: benchRing(64)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, "/v1/decompose", req)
	}
}

func BenchmarkServerDecomposeWarm(b *testing.B) {
	ts := benchServer(b, 0)
	req := DecomposeRequest{Graph: benchRing(64)}
	benchPost(b, ts.URL, "/v1/decompose", req) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, "/v1/decompose", req)
	}
}

func BenchmarkServerRatioCold(b *testing.B) {
	ts := benchServer(b, -1)
	req := RatioRequest{Graph: benchRing(32), V: 3, Grid: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, "/v1/ratio", req)
	}
}

func BenchmarkServerRatioWarm(b *testing.B) {
	ts := benchServer(b, 0)
	req := RatioRequest{Graph: benchRing(32), V: 3, Grid: 16}
	benchPost(b, ts.URL, "/v1/ratio", req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, "/v1/ratio", req)
	}
}

func BenchmarkServerSweepCold(b *testing.B) {
	ts := benchServer(b, -1)
	req := SweepRequest{Graph: benchRing(32), V: 3, Grid: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, "/v1/sweep", req)
	}
}

func BenchmarkServerSweepWarm(b *testing.B) {
	ts := benchServer(b, 0)
	req := SweepRequest{Graph: benchRing(32), V: 3, Grid: 32}
	benchPost(b, ts.URL, "/v1/sweep", req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, "/v1/sweep", req)
	}
}

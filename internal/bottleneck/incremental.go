package bottleneck

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// SplitSolver is an incremental decomposition engine for the split paths of
// the Sybil analysis: paths whose interior weights are fixed once and whose
// two leaf weights (w1, w2) vary between evaluations. A sweep over w1 on a
// fixed ring instance evaluates hundreds of such paths that differ only at
// the endpoints; the solver exploits the fixed interior three ways.
//
//  1. Prefix DP reuse. The λ-subproblem on a path is a three-implicit-state
//     linear DP (dp.go). Its transitions over the interior do not involve
//     the endpoint weights, so for each λ the solver runs the interior pass
//     once — parametrized by the membership bits of the left boundary and
//     read out per right-boundary state — and caches the resulting 4×4
//     min-plus transfer. Every later evaluation at the same λ combines the
//     cached transfer with the O(1) endpoint terms instead of re-running
//     the O(n) sweep per Dinkelbach iteration.
//  2. Warm-started Dinkelbach. The optimal λ* is a piecewise-Möbius
//     function of w1 whose structure changes only at finitely many
//     breakpoints, so the λ* of the nearest previously evaluated w1 is an
//     excellent starting iterate: most warm starts converge in one or two
//     iterations. Warm starting cannot change the answer — any start
//     λ0 ≥ λ* reaches the same unique fixed point, and undershooting
//     starts are detected and restarted cold (see maxBottleneckWarm).
//  3. Tail caching. The stage recursion of Definition 2 is Markovian in
//     the residual vertex set: once both endpoints have been extracted,
//     the remaining pair sequence depends only on the (fixed-weight)
//     residual interior, so it is memoized per residual set and replayed
//     exactly on every later evaluation that reaches the same residual.
//
// Exactness is preserved throughout: every cached object is an exact
// rational computation that the stock engine would repeat verbatim, so
// Eval's output is Rat-identical to DecomposeWith(p, EnginePathDP) — the
// parity tests in incremental_test.go enforce this bit for bit.
//
// SplitSolver is safe for concurrent use; the optimizer's grid phase hits
// one solver from many goroutines.
type SplitSolver struct {
	interior []numeric.Rat // fixed interior weights, path positions 1..n-2
	n        int           // full path length (≥ 3 for the incremental path)
	ok       bool          // incremental machinery usable (positive interior)

	interiorComp dpComponent // interior-only component for integer planning

	mu        sync.Mutex
	transfers map[string]*interiorTransfer
	tails     map[string][]Pair
	hints     map[string][]warmHint
	stats     SplitSolverStats
}

// SplitSolverStats counts the solver's cache behavior; read via Stats.
type SplitSolverStats struct {
	// Evals is the number of Eval calls; Fallbacks of those were served by
	// the stock engine (zero endpoint or interior weights, or a too-short
	// path).
	Evals, Fallbacks int
	// Stage1Warm / Stage1Cold count first-stage Dinkelbach runs that
	// started from a warm hint vs from scratch; WarmRestarts counts warm
	// starts that undershot λ* and restarted cold.
	Stage1Warm, Stage1Cold, WarmRestarts int
	// TransferHits / TransferMisses count per-λ interior transfer lookups.
	TransferHits, TransferMisses int
	// TailHits / TailMisses count memoized residual tail lookups.
	TailHits, TailMisses int
	// LaterWarm / LaterCold count Dinkelbach runs of endpoint-bearing
	// stages after the first (induced-subgraph stages).
	LaterWarm, LaterCold int
}

type warmHint struct {
	w1     float64 // heuristic locator only; exactness never depends on it
	lambda numeric.Rat
}

// interiorTransfer is the interior prefix DP at one λ: cells[2·s0+s1][a][b]
// is the best (cost, selected weight) over interior assignments with left
// boundary (s_0, s_1) and right boundary (s_{n-3}, s_{n-2}) = (a, b),
// counting selection costs of positions 1..n-2 and Γ-charges of positions
// 1..n-3. Endpoint terms (positions 0 and n-1, and the charge of n-2,
// which needs s_{n-1}) are combined per evaluation.
type interiorTransfer struct {
	cells [4][2][2]costW
}

// fullPathKey keys the warm-hint list of the first (full-path) stage.
const fullPathKey = "*"

// NewSplitSolver prepares an incremental solver for paths of the form
// [w1, interior..., w2]. Interior weights are captured by value.
func NewSplitSolver(interior []numeric.Rat) *SplitSolver {
	s := &SplitSolver{
		interior:  append([]numeric.Rat(nil), interior...),
		n:         len(interior) + 2,
		ok:        len(interior) >= 1,
		transfers: make(map[string]*interiorTransfer),
		tails:     make(map[string][]Pair),
		hints:     make(map[string][]warmHint),
	}
	for _, w := range s.interior {
		if w.Sign() <= 0 {
			// Zero interior weights engage the zero-attachment convention
			// of DecomposeWith; keep every evaluation on the stock path.
			s.ok = false
		}
	}
	if s.ok {
		s.interiorComp = dpComponent{order: iota0(len(interior)), ws: s.interior}
	}
	return s
}

// Stats returns a snapshot of the solver's cache counters.
func (s *SplitSolver) Stats() SplitSolverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Eval decomposes the path p, which must be the path graph
// [w1, interior..., w2] over the solver's interior. The result is
// Rat-identical to DecomposeWith(p, EnginePathDP) in every α, pair set and
// derived utility; only the amount of work differs.
func (s *SplitSolver) Eval(p *graph.Graph, w1, w2 numeric.Rat) (*Decomposition, error) {
	return s.EvalCtx(context.Background(), p, w1, w2)
}

// EvalCtx is Eval with cancellation, checked at stage boundaries and inside
// every Dinkelbach run. Cancellation is safe for the shared solver: every
// cached object (interior transfer, residual tail, warm hint) is inserted
// only after it is fully built, so an abandoned evaluation leaves the caches
// exactly as a never-started one would, and concurrent evaluations are
// unaffected.
func (s *SplitSolver) EvalCtx(ctx context.Context, p *graph.Graph, w1, w2 numeric.Rat) (*Decomposition, error) {
	ctx, span := obs.Start(ctx, "splitsolver.eval")
	defer span.End()
	s.mu.Lock()
	s.stats.Evals++
	s.mu.Unlock()
	if !s.ok || w1.Sign() <= 0 || w2.Sign() <= 0 || p.N() != s.n {
		// Zero-weight endpoints trigger DecomposeWith's explicit
		// zero-attachment convention; replaying it here would duplicate
		// subtle code for the two grid-boundary splits of a sweep.
		s.mu.Lock()
		s.stats.Fallbacks++
		s.mu.Unlock()
		span.AddInt("fallback", 1)
		return DecomposeCtx(ctx, p, EnginePathDP)
	}

	residual := iota0(s.n)
	var pairs []Pair
	for len(residual) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hasLeft := residual[0] == 0
		hasRight := residual[len(residual)-1] == s.n-1
		if !hasLeft && !hasRight {
			tail, err := s.tailFor(ctx, p, residual)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, tail...)
			break
		}
		var (
			alpha numeric.Rat
			B, C  []int
			err   error
		)
		if len(residual) == s.n {
			alpha, B, err = s.stage1(ctx, w1, w2)
			if err != nil {
				return nil, err
			}
			C = p.NeighborhoodSet(B)
		} else {
			alpha, B, C, err = s.laterStage(ctx, residual, w1, w2, hasLeft, hasRight)
			if err != nil {
				return nil, err
			}
		}
		// Defensive audit, as in decomposeInner: λ must equal w(C)/w(B).
		if wb := p.WeightOf(B); !p.WeightOf(C).Div(wb).Equal(alpha) {
			return nil, fmt.Errorf("bottleneck: incremental α mismatch: λ=%v but w(C)/w(B)=%v",
				alpha, p.WeightOf(C).Div(wb))
		}
		pairs = append(pairs, Pair{B: B, C: C, Alpha: alpha})
		next := residual[:0]
		rm := make(map[int]bool, len(B)+len(C))
		for _, v := range B {
			rm[v] = true
		}
		for _, v := range C {
			rm[v] = true
		}
		for _, v := range residual {
			if !rm[v] {
				next = append(next, v)
			}
		}
		if len(next) == len(residual) {
			return nil, fmt.Errorf("bottleneck: incremental decomposition made no progress")
		}
		residual = next
	}
	span.AddInt("stages", int64(len(pairs)))
	d := &Decomposition{Pairs: pairs}
	if err := d.finish(s.n); err != nil {
		return nil, err
	}
	return d, nil
}

// stage1 finds the maximal bottleneck of the full path with warm-started
// Dinkelbach over the cached interior transfers.
func (s *SplitSolver) stage1(ctx context.Context, w1, w2 numeric.Rat) (numeric.Rat, []int, error) {
	sp := obs.FromContext(ctx)
	if warm, ok := s.nearestHint(fullPathKey, w1.Float64()); ok && warm.Sign() > 0 && warm.Less(numeric.One) {
		alpha, B, err := s.dinkelbachFull(ctx, warm, w1, w2, true)
		if err == nil {
			s.recordRun(fullPathKey, w1.Float64(), alpha, &s.stats.Stage1Warm)
			sp.AddInt("stage1_warm", 1)
			return alpha, B, nil
		}
		if err != errWarmTooLow {
			return numeric.Rat{}, nil, err
		}
		s.mu.Lock()
		s.stats.WarmRestarts++
		s.mu.Unlock()
		sp.AddInt("warm_restarts", 1)
	}
	// Cold start: α(V) = 1 on a path with ≥ 2 vertices and positive
	// weights (Γ(V) = V), matching maxBottleneck's initial iterate.
	alpha, B, err := s.dinkelbachFull(ctx, numeric.One, w1, w2, false)
	if err != nil {
		return numeric.Rat{}, nil, err
	}
	s.recordRun(fullPathKey, w1.Float64(), alpha, &s.stats.Stage1Cold)
	sp.AddInt("stage1_cold", 1)
	return alpha, B, nil
}

// dinkelbachFull is the Dinkelbach loop over the full path, with values
// from cached interior transfers and membership extracted only at λ*.
func (s *SplitSolver) dinkelbachFull(ctx context.Context, lambda, w1, w2 numeric.Rat, warm bool) (numeric.Rat, []int, error) {
	sp := obs.FromContext(ctx)
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return numeric.Rat{}, nil, err
		}
		if err := fault.Hit(ctx, fault.SiteDinkelbach); err != nil {
			return numeric.Rat{}, nil, err
		}
		if iter > s.n*s.n+64 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: incremental Dinkelbach did not converge after %d iterations", iter)
		}
		sp.AddInt("iters", 1)
		val, wS := s.valueFull(s.transferFor(ctx, lambda), lambda, w1, w2)
		if val.Sign() > 0 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: incremental subproblem returned positive minimum %v", val)
		}
		if val.Sign() == 0 {
			B := s.fullMembers(lambda, w1, w2)
			if len(B) == 0 {
				// All weights are positive here, so an empty maximal
				// minimizer means λ < λ*: only reachable from a warm start.
				if warm {
					return numeric.Rat{}, nil, errWarmTooLow
				}
				return numeric.Rat{}, nil, fmt.Errorf("bottleneck: degenerate incremental minimizer at λ=%v", lambda)
			}
			return lambda, B, nil
		}
		if wS.Sign() <= 0 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: negative incremental minimum %v with zero-weight minimizer", val)
		}
		next := lambda.Add(val.Div(wS))
		if !next.Less(lambda) {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: incremental Dinkelbach stalled at λ=%v", lambda)
		}
		lambda = next
	}
}

// laterStage extracts the maximal bottleneck of an endpoint-bearing
// residual strictly smaller than the full path, warm-started from the λ*
// recorded for the same residual at the nearest previously evaluated
// endpoint weight. The residual of a path decomposition is a union of
// subpaths — the maximal runs of consecutive positions — so the DP
// components are sliced straight out of the fixed interior instead of
// materializing an induced subgraph per stage.
func (s *SplitSolver) laterStage(ctx context.Context, residual []int, w1, w2 numeric.Rat, hasLeft, hasRight bool) (numeric.Rat, []int, []int, error) {
	wAt := func(v int) numeric.Rat {
		switch v {
		case 0:
			return w1
		case s.n - 1:
			return w2
		}
		return s.interior[v-1]
	}
	var comps []dpComponent
	total, gamma := numeric.Zero, numeric.Zero
	for i := 0; i < len(residual); {
		j := i + 1
		for j < len(residual) && residual[j] == residual[j-1]+1 {
			j++
		}
		run := residual[i:j]
		var ws []numeric.Rat
		if run[0] > 0 && run[len(run)-1] < s.n-1 {
			ws = s.interior[run[0]-1 : run[len(run)-1]]
		} else {
			ws = make([]numeric.Rat, len(run))
			for k, v := range run {
				ws[k] = wAt(v)
			}
		}
		comps = append(comps, dpComponent{order: run, ws: ws})
		runW := numeric.Zero
		for _, w := range ws {
			runW = runW.Add(w)
		}
		total = total.Add(runW)
		if len(run) > 1 {
			// Γ(V) of the residual is exactly the non-isolated vertices:
			// every vertex of a run of length ≥ 2 has a neighbor in it.
			gamma = gamma.Add(runW)
		}
		i = j
	}
	weightOf := func(S []int) numeric.Rat {
		t := numeric.Zero
		for _, v := range S {
			t = t.Add(wAt(v))
		}
		return t
	}
	key := intsKey(residual)
	locator := w1.Float64()
	if !hasLeft && hasRight {
		locator = w2.Float64()
	}
	warm, _ := s.nearestHint(key, locator)
	oracle := &dpOracle{comps: comps}
	alpha, B, usedWarm, err := maxBottleneckWarmAt(ctx, len(residual), weightOf, gamma.Div(total), oracle, warm)
	if err != nil {
		return numeric.Rat{}, nil, nil, err
	}
	counter := &s.stats.LaterCold
	if usedWarm {
		counter = &s.stats.LaterWarm
		obs.FromContext(ctx).AddInt("later_warm", 1)
	} else {
		obs.FromContext(ctx).AddInt("later_cold", 1)
	}
	s.recordRun(key, locator, alpha, counter)
	// C = Γ(B) within the residual: a residual position whose path neighbor
	// is in B (components are index runs, so adjacency is v±1 ∈ residual).
	inRes := make([]bool, s.n)
	for _, v := range residual {
		inRes[v] = true
	}
	inB := make([]bool, s.n)
	for _, v := range B {
		inB[v] = true
	}
	var C []int
	for _, v := range residual {
		if (v > 0 && inRes[v-1] && inB[v-1]) || (v < s.n-1 && inRes[v+1] && inB[v+1]) {
			C = append(C, v)
		}
	}
	return alpha, B, C, nil
}

// tailFor returns the remaining pair sequence of an endpoint-free residual,
// computing it once per residual set with the stock engine. The stage
// recursion depends only on the residual graph, whose weights are all
// fixed interior weights here, so the memoized tail is exact.
func (s *SplitSolver) tailFor(ctx context.Context, p *graph.Graph, residual []int) ([]Pair, error) {
	key := intsKey(residual)
	s.mu.Lock()
	cached, ok := s.tails[key]
	if ok {
		s.stats.TailHits++
	}
	s.mu.Unlock()
	if ok {
		obs.FromContext(ctx).AddInt("tail_hits", 1)
	}
	if !ok {
		obs.FromContext(ctx).AddInt("tail_misses", 1)
		sub, orig := p.InducedSubgraph(residual)
		dec, err := DecomposeCtx(ctx, sub, EnginePathDP)
		if err != nil {
			return nil, err
		}
		cached = make([]Pair, len(dec.Pairs))
		for i, pr := range dec.Pairs {
			cached[i] = Pair{B: mapBack(pr.B, orig), C: mapBack(pr.C, orig), Alpha: pr.Alpha}
		}
		s.mu.Lock()
		s.tails[key] = cached
		s.stats.TailMisses++
		s.mu.Unlock()
	}
	// Copy out so every Decomposition owns its pair slices.
	out := make([]Pair, len(cached))
	for i, pr := range cached {
		out[i] = Pair{
			B:     append([]int(nil), pr.B...),
			C:     append([]int(nil), pr.C...),
			Alpha: pr.Alpha,
		}
	}
	return out, nil
}

// transferFor returns the interior transfer at λ, building and caching it
// on first use. The context only carries the obs span the hit/miss is
// charged to — the prefix-DP reuse signal of the trace.
func (s *SplitSolver) transferFor(ctx context.Context, lambda numeric.Rat) *interiorTransfer {
	key := lambda.String()
	s.mu.Lock()
	t, ok := s.transfers[key]
	if ok {
		s.stats.TransferHits++
	}
	s.mu.Unlock()
	if ok {
		obs.FromContext(ctx).AddInt("transfer_hits", 1)
		return t
	}
	t = s.buildTransfer(lambda)
	s.mu.Lock()
	if prev, ok := s.transfers[key]; ok {
		t = prev // another goroutine built the identical transfer first
	} else {
		s.transfers[key] = t
	}
	s.stats.TransferMisses++
	s.mu.Unlock()
	obs.FromContext(ctx).AddInt("transfer_misses", 1)
	return t
}

// buildTransfer runs the interior prefix DP once per left-boundary
// assignment, on the machine-integer fast path when the magnitudes allow it
// and the gcd-free big.Int plan otherwise.
func (s *SplitSolver) buildTransfer(lambda numeric.Rat) *interiorTransfer {
	if pl, ok := s.interiorComp.intPlanFor(lambda); ok {
		return s.buildTransferInt(pl)
	}
	return s.buildTransferBig(s.interiorComp.bigPlanFor(lambda))
}

// buildTransferBig is buildTransfer on the big.Int plan.
func (s *SplitSolver) buildTransferBig(pl bigPlan) *interiorTransfer {
	k := len(s.interior)
	t := &interiorTransfer{}
	for st := 0; st < 4; st++ {
		s0, s1 := st>>1, st&1
		var dp [2][2]bigCell
		init := bigCellZero()
		if s1 == 1 {
			init = bigCell{cost: pl.sel[0], wS: pl.wInt[0], ok: true}
		}
		dp[s0][s1] = init
		for j := 0; j+1 < k; j++ {
			var ndp [2][2]bigCell
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !dp[a][b].ok {
						continue
					}
					for cb := 0; cb < 2; cb++ {
						cand := pl.step(dp[a][b], j, a, cb)
						if cand.better(ndp[b][cb]) {
							ndp[b][cb] = cand
						}
					}
				}
			}
			dp = ndp
		}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if dp[a][b].ok {
					t.cells[st][a][b] = pl.toCostW(dp[a][b])
				}
			}
		}
	}
	return t
}

// buildTransferInt is buildTransfer on machine integers.
func (s *SplitSolver) buildTransferInt(pl intPlan) *interiorTransfer {
	k := len(s.interior)
	t := &interiorTransfer{}
	for st := 0; st < 4; st++ {
		s0, s1 := st>>1, st&1
		var dp [2][2]intCell
		init := intCell{ok: true}
		if s1 == 1 {
			init = intCell{cost: pl.sel[0], wS: pl.wInt[0], ok: true}
		}
		dp[s0][s1] = init
		for j := 0; j+1 < k; j++ {
			var ndp [2][2]intCell
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !dp[a][b].ok {
						continue
					}
					for cb := 0; cb < 2; cb++ {
						cand := dp[a][b]
						if a == 1 || cb == 1 {
							cand.cost += pl.charge[j]
						}
						if cb == 1 {
							cand.cost += pl.sel[j+1]
							cand.wS += pl.wInt[j+1]
						}
						if cand.better(ndp[b][cb]) {
							ndp[b][cb] = cand
						}
					}
				}
			}
			dp = ndp
		}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if dp[a][b].ok {
					t.cells[st][a][b] = pl.toCostW(dp[a][b])
				}
			}
		}
	}
	return t
}

// valueFull combines the cached interior transfer with the endpoint terms
// of one (w1, w2) pair: selection costs and Γ-charges of positions 0 and
// n-1, plus the charge of position n-2 (which needs s_{n-1}). O(1) in the
// path length.
func (s *SplitSolver) valueFull(t *interiorTransfer, lambda, w1, w2 numeric.Rat) (numeric.Rat, numeric.Rat) {
	selW1 := lambda.Mul(w1).Neg()
	selW2 := lambda.Mul(w2).Neg()
	wLast := s.interior[len(s.interior)-1]
	best := costW{}
	for st := 0; st < 4; st++ {
		s0, s1 := st>>1, st&1
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				cell := t.cells[st][a][b]
				if !cell.ok {
					continue
				}
				for sN := 0; sN < 2; sN++ {
					cost, wS := cell.cost, cell.wS
					if s0 == 1 {
						cost = cost.Add(selW1)
						wS = wS.Add(w1)
					}
					if s1 == 1 {
						cost = cost.Add(w1) // charge of position 0: w1·[s_1]
					}
					if a == 1 || sN == 1 {
						cost = cost.Add(wLast) // charge of n-2: w_{n-2}·[s_{n-3} ∨ s_{n-1}]
					}
					if sN == 1 {
						cost = cost.Add(selW2)
						wS = wS.Add(w2)
					}
					if b == 1 {
						cost = cost.Add(w2) // charge of position n-1: w2·[s_{n-2}]
					}
					cand := costW{cost: cost, wS: wS, ok: true}
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
	}
	return best.cost, best.wS
}

// fullMembers extracts the maximal minimizer of the full path at λ with the
// stock membership DP (one O(n) forward/backward sweep), so the extracted
// set is byte-identical to the one dpOracle.maximal would report.
func (s *SplitSolver) fullMembers(lambda, w1, w2 numeric.Rat) []int {
	ws := make([]numeric.Rat, s.n)
	ws[0] = w1
	copy(ws[1:], s.interior)
	ws[s.n-1] = w2
	c := dpComponent{order: iota0(s.n), ws: ws}
	var members []bool
	if pl, ok := c.intPlanFor(lambda); ok {
		_, members = c.pathMembershipInt(pl)
	} else {
		_, members = c.pathMembershipBig(c.bigPlanFor(lambda))
	}
	var out []int
	for i, m := range members {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// nearestHint returns a warm λ for the locator: the larger of the λ*
// recorded at the two surrounding w1 values. Dinkelbach converges from
// above, and within a structure piece λ* is a monotone Möbius function of
// w1, so the max over a bracketing pair is ≥ λ* for every locator inside
// the bracket — undershoot restarts then happen only across piece
// boundaries. Hints are a pure heuristic either way: a bad hint costs at
// most a restarted run, never a wrong answer.
func (s *SplitSolver) nearestHint(key string, locator float64) (numeric.Rat, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := s.hints[key]
	if len(hs) == 0 {
		return numeric.Rat{}, false
	}
	i := sort.Search(len(hs), func(i int) bool { return hs[i].w1 >= locator })
	warm, found := numeric.Rat{}, false
	for _, cand := range []int{i - 1, i} {
		if cand < 0 || cand >= len(hs) {
			continue
		}
		if !found || warm.Less(hs[cand].lambda) {
			warm = hs[cand].lambda
		}
		found = true
	}
	return warm, found
}

// recordRun stores the λ* attained at locator for future warm starts and
// bumps the given stats counter.
func (s *SplitSolver) recordRun(key string, locator float64, lambda numeric.Rat, counter *int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	*counter++
	hs := s.hints[key]
	i := sort.Search(len(hs), func(i int) bool { return hs[i].w1 >= locator })
	if i < len(hs) && hs[i].w1 == locator {
		hs[i].lambda = lambda
		return
	}
	hs = append(hs, warmHint{})
	copy(hs[i+1:], hs[i:])
	hs[i] = warmHint{w1: locator, lambda: lambda}
	s.hints[key] = hs
}

func iota0(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// intsKey renders a sorted vertex set as a compact map key.
func intsKey(xs []int) string {
	var b strings.Builder
	b.Grow(len(xs) * 3)
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse compiles the -chaos flag grammar into rules:
//
//	spec    = rule *( ";" rule )
//	rule    = site "=" kind ":" rate [ ":" arg ] *( ":" option )
//	site    = registered name | "prefix.*" | "*"
//	kind    = "error" | "latency" | "panic"
//	rate    = float in (0,1]            (probabilistic, seeded)
//	        | "1/" integer              (deterministic every-Nth hit)
//	arg     = duration                  (required for latency, e.g. "5ms")
//	option  = "limit=" integer          (cap total injections from the rule)
//
// Examples:
//
//	decompose.dinkelbach=error:0.02
//	maxflow.push=panic:1/500;server.compute=latency:0.1:5ms
//	*=error:1/100:limit=3
//
// Parse only builds rules; New validates sites and ranges, so callers do
// Parse → New and report either error to the operator.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q: want site=kind:rate", part)
		}
		fields := strings.Split(rest, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q: want site=kind:rate", part)
		}
		r := Rule{Site: strings.TrimSpace(site)}
		switch fields[0] {
		case "error":
			r.Kind = KindError
		case "latency":
			r.Kind = KindLatency
		case "panic":
			r.Kind = KindPanic
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown kind %q (want error, latency, or panic)", part, fields[0])
		}
		if denom, ok := strings.CutPrefix(fields[1], "1/"); ok {
			n, err := strconv.ParseInt(denom, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault: rule %q: bad every-Nth rate %q", part, fields[1])
			}
			r.Every = n
		} else {
			rate, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad rate %q", part, fields[1])
			}
			r.Rate = rate
		}
		opts := fields[2:]
		if r.Kind == KindLatency {
			if len(opts) == 0 {
				return nil, fmt.Errorf("fault: rule %q: latency needs a duration (e.g. latency:0.1:5ms)", part)
			}
			d, err := time.ParseDuration(opts[0])
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad latency duration %q", part, opts[0])
			}
			r.Latency = d
			opts = opts[1:]
		}
		for _, opt := range opts {
			val, ok := strings.CutPrefix(opt, "limit=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: unknown option %q", part, opt)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault: rule %q: bad limit %q", part, val)
			}
			r.Limit = n
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty chaos spec")
	}
	return rules, nil
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestJobsClientLifecycle drives the whole durable-jobs surface against a
// real server: submit, wait to completion, verify the stored result is
// bit-identical to an inline sweep, dedupe on resubmission, list with
// pagination, and cancel.
func TestJobsClientLifecycle(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1, DataDir: t.TempDir()})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ring := Graph{Ring: []string{"1", "2", "3", "4", "5"}}

	sub, err := c.SubmitSweep(ctx, &JobSubmitRequest{Graph: ring, V: 2, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Deduped || sub.Job.ID == "" {
		t.Fatalf("fresh submission: %+v", sub)
	}

	job, err := c.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone || !JobTerminal(job.State) {
		t.Fatalf("job finished in state %q (error %q)", job.State, job.Error)
	}
	var fromJob SweepResponse
	if err := json.Unmarshal(job.Result, &fromJob); err != nil {
		t.Fatalf("job result: %v", err)
	}
	inline, err := c.Sweep(ctx, &SweepRequest{Graph: ring, V: 2, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fromJob.Ratio != inline.Ratio || fromJob.BestU != inline.BestU || len(fromJob.Points) != len(inline.Points) {
		t.Fatalf("job result diverged from inline sweep:\njob:    %+v\ninline: %+v", fromJob, inline)
	}
	for i := range fromJob.Points {
		if fromJob.Points[i] != inline.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, fromJob.Points[i], inline.Points[i])
		}
	}

	// Content-addressed dedupe: a different spelling of the same instance
	// ("2/1" vs "2") maps to the same job.
	again, err := c.SubmitSweep(ctx, &JobSubmitRequest{Graph: Graph{Ring: []string{"1", "2/1", "3", "4", "5"}}, V: 2, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Job.ID != sub.Job.ID {
		t.Fatalf("resubmission not deduped: %+v vs id %s", again, sub.Job.ID)
	}

	// Pagination: the done job above plus a big queued/running one.
	big, err := c.SubmitSweep(ctx, &JobSubmitRequest{Graph: ring, V: 1, Grid: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	q := JobListQuery{Limit: 1}
	for {
		page, err := c.ListJobs(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) > 1 {
			t.Fatalf("page exceeds limit: %d jobs", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			seen = append(seen, j.ID)
		}
		if page.NextCursor == 0 {
			break
		}
		q.Cursor = page.NextCursor
	}
	if len(seen) != 2 || seen[0] != sub.Job.ID || seen[1] != big.Job.ID {
		t.Fatalf("listed %v, want [%s %s]", seen, sub.Job.ID, big.Job.ID)
	}
	done, err := c.ListJobs(ctx, JobListQuery{State: JobDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Jobs) != 1 || done.Jobs[0].ID != sub.Job.ID {
		t.Fatalf("state filter: %+v", done.Jobs)
	}

	// Cancel the big job and wait for it to settle.
	if _, err := c.CancelJob(ctx, big.Job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, big.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCanceled {
		t.Fatalf("canceled job settled as %q", final.State)
	}
	// Canceling a terminal job is a 409 with a stable code.
	_, err = c.CancelJob(ctx, final.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 409 || apiErr.Code != server.CodeJobTerminal {
		t.Fatalf("want job_terminal 409, got %v", err)
	}
}

// TestJobsClientErrors pins the error mapping: unknown job IDs are 404s and
// a server without -data-dir answers every jobs call with jobs_disabled.
func TestJobsClientErrors(t *testing.T) {
	ctx := context.Background()
	withJobs := newService(t, server.Config{MaxQueueDepth: -1, DataDir: t.TempDir()})
	c := New(withJobs.URL, fastBackoff(), WithSeed(1))
	_, err := c.GetJob(ctx, "jdeadbeef")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("want 404, got %v", err)
	}

	plain := newService(t, server.Config{MaxQueueDepth: -1})
	d := New(plain.URL, fastBackoff(), WithSeed(1))
	ring := Graph{Ring: []string{"1", "2", "3"}}
	if _, err := d.SubmitSweep(ctx, &JobSubmitRequest{Graph: ring, V: 0, Grid: 4}); !errors.As(err, &apiErr) ||
		apiErr.Status != 501 || apiErr.Code != server.CodeJobsDisabled {
		t.Fatalf("submit without data dir: %v", err)
	}
	if _, err := d.ListJobs(ctx, JobListQuery{}); !errors.As(err, &apiErr) || apiErr.Code != server.CodeJobsDisabled {
		t.Fatalf("list without data dir: %v", err)
	}
}

// TestWithStallThreshold checks the configurable stall budget: against a
// server that never makes progress, SweepAll performs exactly threshold
// rounds when the option is set, and maxAttempts rounds by default.
func TestWithStallThreshold(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusOK, SweepResponse{Partial: true, ResumeToken: "t"})
	}))
	defer ts.Close()

	run := func(opts ...Option) int64 {
		calls.Store(0)
		c := New(ts.URL, append([]Option{fastBackoff(), WithSeed(1), WithMaxAttempts(3)}, opts...)...)
		_, err := c.SweepAll(context.Background(), &SweepRequest{Grid: 4})
		if err == nil || !strings.Contains(err.Error(), "stalled") {
			t.Fatalf("want stall error, got %v", err)
		}
		return calls.Load()
	}
	if got := run(); got != 3 {
		t.Fatalf("default threshold: %d rounds, want maxAttempts=3", got)
	}
	if got := run(WithStallThreshold(7)); got != 7 {
		t.Fatalf("WithStallThreshold(7): %d rounds, want 7", got)
	}
	if got := run(WithStallThreshold(0)); got != 3 {
		t.Fatalf("WithStallThreshold(0) must keep the default: %d rounds, want 3", got)
	}
}

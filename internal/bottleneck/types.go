// Package bottleneck computes the bottleneck decomposition of a weighted
// graph (Definition 2 of the paper, due to Wu & Zhang).
//
// For a vertex set S, α(S) = w(Γ(S)) / w(S) is its inclusive expansion
// ratio; a bottleneck is a set minimizing α, and the decomposition
// repeatedly removes the maximal bottleneck B_i together with its
// neighborhood C_i = Γ(B_i) ∩ V_i. The decomposition drives both the BD
// Allocation Mechanism (package allocation) and the entire incentive-ratio
// analysis (package core).
//
// Three engines are provided:
//
//   - EngineFlow: Dinkelbach's parametric method over max-flow min-cut
//     (works on every graph),
//   - EnginePathDP: Dinkelbach over a three-state linear dynamic program,
//     valid when every component of the (remaining) graph is a path or a
//     cycle — in particular for the rings and split paths of the paper —
//     and substantially faster,
//   - EngineBrute: exhaustive subset enumeration, the test oracle.
//
// All arithmetic is exact (package numeric), so decomposition signatures,
// α-ratios and class assignments are exact combinatorial facts, never
// floating-point guesses.
package bottleneck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// Class labels a vertex's role in the decomposition (Definition 4).
type Class int

const (
	// ClassNone marks a vertex not covered by any pair (cannot happen in a
	// completed decomposition; used as a zero value).
	ClassNone Class = iota
	// ClassB marks a vertex of some B_i with α_i < 1.
	ClassB
	// ClassC marks a vertex of some C_i with α_i < 1.
	ClassC
	// ClassBoth marks a vertex of the final pair when B_k = C_k, α_k = 1;
	// such vertices are simultaneously B class and C class.
	ClassBoth
)

// String returns "B", "C", "B=C" or "-".
func (c Class) String() string {
	switch c {
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	case ClassBoth:
		return "B=C"
	}
	return "-"
}

// IsB reports whether the class counts as B class.
func (c Class) IsB() bool { return c == ClassB || c == ClassBoth }

// IsC reports whether the class counts as C class.
func (c Class) IsC() bool { return c == ClassC || c == ClassBoth }

// Pair is one bottleneck pair (B_i, C_i) with its α-ratio.
type Pair struct {
	B     []int // sorted vertex indices
	C     []int // sorted vertex indices
	Alpha numeric.Rat
}

// selfPaired reports whether the pair is of the B_k = C_k, α = 1 form.
func (p Pair) selfPaired() bool { return intsEqual(p.B, p.C) }

// String renders the pair as (B{...}, C{...}, α=...).
func (p Pair) String() string {
	var b strings.Builder
	b.WriteString("(B{")
	writeInts(&b, p.B)
	b.WriteString("}, C{")
	writeInts(&b, p.C)
	fmt.Fprintf(&b, "}, α=%s)", p.Alpha)
	return b.String()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Decomposition is the bottleneck decomposition of a graph, together with
// per-vertex lookups.
type Decomposition struct {
	Pairs []Pair

	class   []Class
	alpha   []numeric.Rat
	pairIdx []int
}

// finish populates the per-vertex lookup tables; pairs must already be set.
func (d *Decomposition) finish(n int) error {
	d.class = make([]Class, n)
	d.alpha = make([]numeric.Rat, n)
	d.pairIdx = make([]int, n)
	for i := range d.pairIdx {
		d.pairIdx[i] = -1
	}
	assign := func(v int, c Class, i int) error {
		if v < 0 || v >= n {
			return fmt.Errorf("bottleneck: vertex %d out of range", v)
		}
		if d.pairIdx[v] != -1 {
			return fmt.Errorf("bottleneck: vertex %d assigned to two pairs", v)
		}
		d.class[v] = c
		d.alpha[v] = d.Pairs[i].Alpha
		d.pairIdx[v] = i
		return nil
	}
	for i, p := range d.Pairs {
		if p.selfPaired() {
			for _, v := range p.B {
				if err := assign(v, ClassBoth, i); err != nil {
					return err
				}
			}
			continue
		}
		for _, v := range p.B {
			if err := assign(v, ClassB, i); err != nil {
				return err
			}
		}
		for _, v := range p.C {
			if err := assign(v, ClassC, i); err != nil {
				return err
			}
		}
	}
	for v, idx := range d.pairIdx {
		if idx == -1 {
			return fmt.Errorf("bottleneck: vertex %d not covered by any pair", v)
		}
	}
	return nil
}

// N returns the number of vertices covered.
func (d *Decomposition) N() int { return len(d.class) }

// ClassOf returns the class of v.
func (d *Decomposition) ClassOf(v int) Class { return d.class[v] }

// AlphaOf returns α_v, the α-ratio of the pair containing v.
func (d *Decomposition) AlphaOf(v int) numeric.Rat { return d.alpha[v] }

// PairIndexOf returns the index i of the pair (B_i, C_i) containing v.
func (d *Decomposition) PairIndexOf(v int) int { return d.pairIdx[v] }

// Utility returns agent v's equilibrium utility per Proposition 6:
// w_v·α_i for v ∈ B_i and w_v/α_i for v ∈ C_i (both coincide when α = 1).
func (d *Decomposition) Utility(g *graph.Graph, v int) numeric.Rat {
	a := d.alpha[v]
	switch d.class[v] {
	case ClassB:
		return g.Weight(v).Mul(a)
	case ClassC, ClassBoth:
		if a.IsZero() {
			// α = 0 pairs (isolated positive-weight vertices) trade nothing.
			return numeric.Zero
		}
		return g.Weight(v).Div(a)
	}
	return numeric.Zero
}

// Utilities returns every agent's equilibrium utility.
func (d *Decomposition) Utilities(g *graph.Graph) []numeric.Rat {
	out := make([]numeric.Rat, d.N())
	for v := range out {
		out[v] = d.Utility(g, v)
	}
	return out
}

// StructureSignature returns a canonical string identifying the
// combinatorial shape of the decomposition — the B/C sets of every pair, in
// order, without the α values. Two weight profiles lie in the same
// "interval" of the paper's Section III-B analysis exactly when their
// structure signatures agree.
func (d *Decomposition) StructureSignature() string {
	var b strings.Builder
	for _, p := range d.Pairs {
		b.WriteString("B{")
		writeInts(&b, p.B)
		b.WriteString("}C{")
		writeInts(&b, p.C)
		b.WriteString("};")
	}
	return b.String()
}

// String renders the decomposition with α values.
func (d *Decomposition) String() string {
	var b strings.Builder
	for i, p := range d.Pairs {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "(B%d{", i+1)
		writeInts(&b, p.B)
		fmt.Fprintf(&b, "}, C%d{", i+1)
		writeInts(&b, p.C)
		fmt.Fprintf(&b, "}, α=%s)", p.Alpha)
	}
	return b.String()
}

func writeInts(b *strings.Builder, xs []int) {
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", x)
	}
}

// Alpha computes α(S) = w(Γ(S))/w(S) on g. It panics if w(S) = 0.
func Alpha(g *graph.Graph, S []int) numeric.Rat {
	ws := g.WeightOf(S)
	if ws.IsZero() {
		panic("bottleneck: α of a zero-weight set")
	}
	return g.WeightOf(g.NeighborhoodSet(S)).Div(ws)
}

// Validate checks the Proposition 3 invariants of d against g:
//
//  1. 0 < α_1 < α_2 < ... < α_k ≤ 1,
//  2. α_i = 1 only for i = k with B_k = C_k; otherwise B_i is independent
//     and B_i ∩ C_i = ∅,
//  3. no edge joins B_i and B_j for i ≠ j,
//  4. an edge between B_i and C_j implies j ≤ i,
//
// plus internal consistency: the pairs partition V, C_i = Γ(B_i) ∩ V_i and
// α_i = w(C_i)/w(B_i).
func (d *Decomposition) Validate(g *graph.Graph) error {
	if d.N() != g.N() {
		return fmt.Errorf("bottleneck: decomposition covers %d of %d vertices", d.N(), g.N())
	}
	prev := numeric.Zero
	for i, p := range d.Pairs {
		if p.Alpha.Sign() <= 0 {
			return fmt.Errorf("bottleneck: pair %d has α = %v ≤ 0", i, p.Alpha)
		}
		if i > 0 && !prev.Less(p.Alpha) {
			return fmt.Errorf("bottleneck: α not strictly increasing at pair %d (%v ≥ %v)", i, prev, p.Alpha)
		}
		prev = p.Alpha
		if p.Alpha.Cmp(numeric.One) > 0 {
			return fmt.Errorf("bottleneck: pair %d has α = %v > 1", i, p.Alpha)
		}
		if p.Alpha.Equal(numeric.One) {
			if i != len(d.Pairs)-1 {
				return fmt.Errorf("bottleneck: α = 1 at non-final pair %d", i)
			}
			if !p.selfPaired() {
				return fmt.Errorf("bottleneck: final pair has α = 1 but B ≠ C")
			}
		} else {
			if !g.IsIndependent(p.B) {
				return fmt.Errorf("bottleneck: B_%d is not independent", i)
			}
			if intersects(p.B, p.C) {
				return fmt.Errorf("bottleneck: B_%d ∩ C_%d ≠ ∅", i, i)
			}
		}
		// α_i = w(C_i)/w(B_i).
		wb := g.WeightOf(p.B)
		if wb.IsZero() {
			return fmt.Errorf("bottleneck: pair %d has zero-weight B", i)
		}
		if !g.WeightOf(p.C).Div(wb).Equal(p.Alpha) {
			return fmt.Errorf("bottleneck: pair %d α mismatch: recorded %v, computed %v",
				i, p.Alpha, g.WeightOf(p.C).Div(wb))
		}
	}
	// Pairs partition V, and C_i = Γ(B_i) within the residual graph V_i.
	removed := make([]bool, g.N())
	for i, p := range d.Pairs {
		wantC := residualNeighborhood(g, p.B, removed)
		if !intsEqual(wantC, p.C) {
			return fmt.Errorf("bottleneck: pair %d C mismatch: recorded %v, Γ(B)∩V_i = %v", i, p.C, wantC)
		}
		for _, v := range append(append([]int{}, p.B...), p.C...) {
			removed[v] = true
		}
	}
	// Prop 3-(3) and (4). ClassBoth counts as both B class and C class; edges
	// inside the final self-pair are legitimate, but an edge between pure B
	// vertices, between B vertices of different pairs (including the final
	// self-pair), or from B_i to a strictly later C_j is not.
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		cu, cv := d.class[u], d.class[v]
		iu, iv := d.pairIdx[u], d.pairIdx[v]
		if cu == ClassB && cv == ClassB {
			if iu == iv {
				return fmt.Errorf("bottleneck: edge (%d,%d) inside independent B_%d", u, v, iu)
			}
			return fmt.Errorf("bottleneck: edge (%d,%d) joins B_%d and B_%d", u, v, iu, iv)
		}
		if iu != iv && cu.IsB() && cv.IsB() {
			return fmt.Errorf("bottleneck: edge (%d,%d) joins B vertices of pairs %d and %d", u, v, iu, iv)
		}
		if cu.IsB() && cv.IsC() && iv > iu {
			return fmt.Errorf("bottleneck: edge from B_%d to later C_%d", iu, iv)
		}
		if cv.IsB() && cu.IsC() && iu > iv {
			return fmt.Errorf("bottleneck: edge from B_%d to later C_%d", iv, iu)
		}
	}
	return nil
}

// residualNeighborhood returns Γ(B) restricted to vertices not yet removed,
// in sorted order. B members themselves may appear when B has an internal
// edge (the α = 1 case).
func residualNeighborhood(g *graph.Graph, B []int, removed []bool) []int {
	seen := make(map[int]bool)
	for _, v := range B {
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				seen[u] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

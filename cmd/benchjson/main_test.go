package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := []byte(`goos: linux
goarch: amd64
pkg: repro
BenchmarkOptimizeSplit/n=009-8         	      24	  49353915 ns/op	23731176 B/op	  570899 allocs/op
BenchmarkOptimizeSplitCold/n=129-8    	       2	 825839144 ns/op	349139344 B/op	 8133887 allocs/op
BenchmarkRatAddFastPath-8             	95821337	        12.53 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	42.000s
`)
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkOptimizeSplit/n=009-8" || first.Iterations != 24 ||
		first.NsPerOp != 49353915 || first.BytesPerOp != 23731176 || first.AllocsPerOp != 570899 {
		t.Fatalf("first result: %+v", first)
	}
	if results[2].NsPerOp != 12.53 || results[2].BytesPerOp != 0 {
		t.Fatalf("fractional ns/op: %+v", results[2])
	}
}

func TestCarryBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	prev := `{"results": [], "seed_note": "measured at the seed",
	  "seed_baseline": [{"name": "BenchmarkOptimizeSplit/n=129", "ns_per_op": 825839144}]}`
	if err := os.WriteFile(path, []byte(prev), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := &Report{Results: []Result{{Name: "BenchmarkOptimizeSplit/n=129", NsPerOp: 1}}}
	carryBaseline(rep, path)
	if rep.SeedNote != "measured at the seed" || len(rep.SeedBaseline) != 1 ||
		rep.SeedBaseline[0].NsPerOp != 825839144 {
		t.Fatalf("baseline not carried: %+v", rep)
	}
	// A missing or corrupt previous file leaves the report untouched.
	carryBaseline(rep, filepath.Join(t.TempDir(), "absent.json"))
	if len(rep.SeedBaseline) != 1 {
		t.Fatalf("baseline dropped on missing file: %+v", rep)
	}
}

func TestParseBenchRPSMetric(t *testing.T) {
	out := []byte("BenchmarkServerSustainedRatioRPS-8  14510  86029 ns/op  11624.5 rps  21138 B/op  358 allocs/op\n")
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results: %+v", len(results), results)
	}
	r := results[0]
	if r.RPS != 11624.5 || r.NsPerOp != 86029 || r.BytesPerOp != 21138 || r.AllocsPerOp != 358 {
		t.Fatalf("rps line parsed wrong: %+v", r)
	}
}

func TestParseBenchPointsPerSecMetric(t *testing.T) {
	out := []byte("BenchmarkKSybilK3-8  26  45110273 ns/op  18054.2 points/s  10178245 B/op  271832 allocs/op\n")
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results: %+v", len(results), results)
	}
	r := results[0]
	if r.PointsPerSec != 18054.2 || r.RPS != 0 || r.NsPerOp != 45110273 || r.BytesPerOp != 10178245 || r.AllocsPerOp != 271832 {
		t.Fatalf("points/s line parsed wrong: %+v", r)
	}
}

func TestParseBenchNoMem(t *testing.T) {
	results, err := parseBench([]byte("BenchmarkX-4   100   12345 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].NsPerOp != 12345 || results[0].AllocsPerOp != 0 {
		t.Fatalf("results: %+v", results)
	}
}

package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro"
)

// randomInstance draws a random ring, path, or tree with small random
// rational weights. Shapes rotate so 50 draws cover all three evenly.
func randomInstance(rng *rand.Rand, i int) *repro.Graph {
	n := 3 + rng.Intn(6)
	ws := make([]repro.Rat, n)
	for v := range ws {
		ws[v] = repro.NewRat(int64(1+rng.Intn(24)), int64(1+rng.Intn(6)))
	}
	switch i % 3 {
	case 0:
		return repro.Ring(ws)
	case 1:
		return repro.Path(ws)
	default:
		g := repro.NewGraph(n)
		if err := g.SetWeights(ws); err != nil {
			panic(err)
		}
		for v := 1; v < n; v++ {
			if err := g.AddEdge(rng.Intn(v), v); err != nil {
				panic(err)
			}
		}
		return g
	}
}

func sameDecomposition(t *testing.T, g *repro.Graph, a, b *repro.Decomposition, label string) {
	t.Helper()
	if a.StructureSignature() != b.StructureSignature() {
		t.Fatalf("%s: structure signatures differ:\n%s\n%s", label, a, b)
	}
	for v := 0; v < g.N(); v++ {
		if !a.AlphaOf(v).Equal(b.AlphaOf(v)) || !a.Utility(g, v).Equal(b.Utility(g, v)) {
			t.Fatalf("%s: vertex %d differs: α %v vs %v, U %v vs %v",
				label, v, a.AlphaOf(v), b.AlphaOf(v), a.Utility(g, v), b.Utility(g, v))
		}
	}
}

// TestFacadeEquivalence pins the redesigned options API to the deprecated
// wrappers: on 50 random ring/path/tree instances, every wrapper and its
// options form — with and without a recorder installed — return
// bit-identical results.
func TestFacadeEquivalence(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		g := randomInstance(rng, i)

		base, err := repro.Decompose(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		rec := &repro.TraceCapture{}
		for label, alt := range map[string]func() (*repro.Decomposition, error){
			"DecomposeWith": func() (*repro.Decomposition, error) { return repro.DecomposeWith(g, repro.EngineAuto) },
			"WithEngine": func() (*repro.Decomposition, error) {
				return repro.Decompose(ctx, g, repro.WithEngine(repro.EngineAuto))
			},
			"DecomposeParallel": func() (*repro.Decomposition, error) { return repro.DecomposeParallel(g, 3) },
			"WithWorkers":       func() (*repro.Decomposition, error) { return repro.Decompose(ctx, g, repro.WithWorkers(3)) },
			"WithRecorder":      func() (*repro.Decomposition, error) { return repro.Decompose(ctx, g, repro.WithRecorder(rec)) },
		} {
			d, err := alt()
			if err != nil {
				t.Fatalf("instance %d %s: %v", i, label, err)
			}
			sameDecomposition(t, g, base, d, label)
		}
		if snap := rec.Last(); snap == nil || snap.Root.Find("bottleneck.decompose") == nil {
			t.Fatalf("instance %d: recorder captured no decomposition span tree", i)
		}

		// Allocation: precomputed decomposition vs internal decompose vs
		// the deprecated two-argument wrapper.
		viaOpt, err := repro.Allocate(ctx, g, repro.WithDecomposition(base))
		if err != nil {
			t.Fatal(err)
		}
		viaSelf, err := repro.Allocate(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		viaOld, err := repro.AllocateDecomposed(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if !viaOpt.Utility(v).Equal(viaOld.Utility(v)) || !viaOpt.Utility(v).Equal(viaSelf.Utility(v)) {
				t.Fatalf("instance %d: allocation utility differs at %d", i, v)
			}
		}

		// Incentive ratio (rings only): wrapper, options form, and a
		// recorded run must agree exactly.
		if i%3 == 0 {
			old, err := repro.RingRatio(g, i%g.N())
			if err != nil {
				t.Fatal(err)
			}
			now, err := repro.IncentiveRatio(ctx, g, i%g.N(), repro.WithRecorder(&repro.TraceCapture{}))
			if err != nil {
				t.Fatal(err)
			}
			if !old.Equal(now) {
				t.Fatalf("instance %d: ratio differs: %v vs %v", i, old, now)
			}
		}
	}
}

// TestFacadeRingSweep exercises the RingSweep facade: grid control, the
// recorder, and agreement with the optimizer's certified best.
func TestFacadeRingSweep(t *testing.T) {
	ctx := context.Background()
	g := repro.Ring(repro.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1))
	rec := &repro.TraceCapture{}
	res, err := repro.RingSweep(ctx, g, 3, repro.WithGrid(16), repro.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 17 {
		t.Fatalf("sweep points = %d, want 17", len(res.Points))
	}
	ratio, err := repro.IncentiveRatio(ctx, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Less(res.Ratio) {
		t.Fatalf("sampled sweep ratio %v exceeds certified optimum %v", res.Ratio, ratio)
	}
	snap := rec.Last()
	if snap == nil || snap.Root.Find("sybil.ring_sweep") == nil {
		t.Fatal("recorder captured no sweep span")
	}
	if sp := snap.Root.Find("splitsolver.eval"); sp == nil {
		t.Fatal("sweep trace lacks split-solver spans")
	}
}

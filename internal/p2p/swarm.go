// Package p2p simulates the motivating system of the paper's introduction:
// a BitTorrent-style peer-to-peer swarm in which every agent runs the
// proportional response protocol over real message passing.
//
// Unlike package dynamics (which iterates eq. (1) as a numeric recurrence),
// this package executes the protocol the way a deployed network would: one
// mailbox per peer, one offer message per edge per round, concurrent sends
// from every peer's goroutine, and per-round aggregation of whatever
// arrived. A Sybil attack is executed by actually splitting the attacker
// into identities at the network level (graph.Split) and letting the swarm
// run — the defense-relevant quantity is how much the combined identities
// harvest compared to the honest run (experiment E14).
//
// Determinism: received offers are aggregated by sender id in sorted order,
// so results are bit-identical across runs and match package dynamics
// exactly despite the concurrent delivery.
package p2p

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// offer is one protocol message: From shares Amount with the receiver this
// round.
type offer struct {
	From   int
	Amount float64
}

// Config tunes a swarm run.
type Config struct {
	// Rounds is the number of protocol rounds to execute (default 200).
	Rounds int
	// TrackAgents lists agents whose utility history should be recorded.
	TrackAgents []int
	// Workers bounds the goroutines per phase (≤ 0 = GOMAXPROCS).
	Workers int
	// FreeRiders lists agents that deviate by never contributing: they
	// post zero offers every round while still collecting whatever arrives.
	// Tit-for-tat starves them — their income decays geometrically and the
	// rest of the swarm re-converges to the equilibrium of the network in
	// which their weight is zero (Cohen [10]; Jun & Ahamad [13]).
	FreeRiders []int
}

// Result is the outcome of a swarm run.
type Result struct {
	// Utilities is each agent's utility in the final round.
	Utilities []float64
	// History[i] is the tracked agent i's utility per round (aligned with
	// Config.TrackAgents).
	History [][]float64
	// Messages is the total number of protocol messages delivered.
	Messages int64
	// Rounds is the number of executed rounds.
	Rounds int
}

// Run executes the proportional response protocol on g as a message-passing
// swarm.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("p2p: empty swarm")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 200
	}
	for _, v := range cfg.TrackAgents {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("p2p: tracked agent %d out of range", v)
		}
	}
	freeRider := make([]bool, n)
	for _, v := range cfg.FreeRiders {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("p2p: free rider %d out of range", v)
		}
		freeRider[v] = true
	}

	w := make([]float64, n)
	for v := 0; v < n; v++ {
		w[v] = g.Weight(v).Float64()
	}
	// Mailboxes sized for one round of traffic.
	inbox := make([]chan offer, n)
	for v := 0; v < n; v++ {
		inbox[v] = make(chan offer, g.Degree(v))
	}
	// x[v][j]: current offer of v to its j-th neighbor.
	x := make([][]float64, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		x[v] = make([]float64, d)
		for j := range x[v] {
			x[v][j] = w[v] / float64(d)
		}
	}

	res := &Result{
		Utilities: make([]float64, n),
		History:   make([][]float64, len(cfg.TrackAgents)),
		Rounds:    cfg.Rounds,
	}
	var messages atomic.Int64

	for round := 0; round < cfg.Rounds; round++ {
		// Send phase: every peer posts this round's offers concurrently;
		// free riders post zeros (they stay protocol-compliant on the wire,
		// just contribute nothing).
		par.ForEach(n, cfg.Workers, func(v int) {
			for j, u := range g.Neighbors(v) {
				amount := x[v][j]
				if freeRider[v] {
					amount = 0
				}
				inbox[u] <- offer{From: v, Amount: amount}
				messages.Add(1)
			}
		})
		// Receive phase: every peer drains its mailbox, aggregates
		// deterministically, and prepares the proportional response.
		par.ForEach(n, cfg.Workers, func(v int) {
			d := g.Degree(v)
			received := make([]offer, d)
			for k := 0; k < d; k++ {
				received[k] = <-inbox[v]
			}
			sort.Slice(received, func(i, j int) bool { return received[i].From < received[j].From })
			utility := 0.0
			for _, o := range received {
				utility += o.Amount
			}
			res.Utilities[v] = utility
			// Neighbors(v) is sorted, and so is received — align them.
			for j := range received {
				if received[j].From != g.Neighbors(v)[j] {
					panic("p2p: mailbox received an offer from a non-neighbor")
				}
				if utility > 0 {
					x[v][j] = received[j].Amount / utility * w[v]
				} else {
					x[v][j] = w[v] / float64(d)
				}
			}
		})
		for i, v := range cfg.TrackAgents {
			res.History[i] = append(res.History[i], res.Utilities[v])
		}
	}
	res.Messages = messages.Load()
	return res, nil
}

// AttackComparison contrasts an honest run with a Sybil run on the same
// swarm.
type AttackComparison struct {
	Honest *Result
	Sybil  *Result
	// HonestUtility is the attacker's utility in the honest run;
	// SybilUtility is the combined utility of its identities.
	HonestUtility, SybilUtility float64
	// Gain = SybilUtility / HonestUtility.
	Gain float64
	// Identities are the attacker's node ids in the Sybil swarm.
	Identities []int
}

// CompareAttack runs the swarm honestly and under the given Sybil split and
// reports the attacker's empirical gain.
func CompareAttack(g *graph.Graph, spec graph.SplitSpec, cfg Config) (*AttackComparison, error) {
	honest, err := Run(g, cfg)
	if err != nil {
		return nil, err
	}
	gp, ids, err := graph.Split(g, spec)
	if err != nil {
		return nil, err
	}
	sybilCfg := cfg
	sybilCfg.TrackAgents = append([]int(nil), ids...)
	sybil, err := Run(gp, sybilCfg)
	if err != nil {
		return nil, err
	}
	cmp := &AttackComparison{
		Honest:        honest,
		Sybil:         sybil,
		HonestUtility: honest.Utilities[spec.V],
		Identities:    ids,
	}
	for _, id := range ids {
		cmp.SybilUtility += sybil.Utilities[id]
	}
	if cmp.HonestUtility > 0 {
		cmp.Gain = cmp.SybilUtility / cmp.HonestUtility
	} else if cmp.SybilUtility == 0 {
		cmp.Gain = 1
	}
	return cmp, nil
}

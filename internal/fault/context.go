package fault

import "context"

type ctxKey struct{}

// ContextWith returns a context carrying the injector. A nil injector
// returns ctx unchanged, keeping the disabled path allocation-free.
func ContextWith(ctx context.Context, inj *Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, inj)
}

// FromContext returns the injector installed by ContextWith, or nil. Hot
// paths call this once per operation and cache the (possibly nil) result.
func FromContext(ctx context.Context) *Injector {
	inj, _ := ctx.Value(ctxKey{}).(*Injector)
	return inj
}

// Hit is the one-line form solvers thread through loops: one context
// lookup, then Strike. With no injector installed it costs the Value
// lookup and returns nil.
func Hit(ctx context.Context, site string) error {
	return FromContext(ctx).Strike(site)
}

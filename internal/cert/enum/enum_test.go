package enum_test

import (
	"context"
	"math/big"
	"testing"
	"time"

	"repro/internal/cert/enum"
	"repro/internal/numeric"
)

func TestEnumerateCanonical(t *testing.T) {
	specs, err := enum.Enumerate(enum.Options{MinN: 3, MaxN: 4, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		k := sp.Key()
		if seen[k] {
			t.Fatalf("duplicate spec %s", k)
		}
		seen[k] = true
		// Reflection through vertex 0 must not produce a lexicographically
		// smaller tuple, and the gcd must be 1.
		w := sp.Weights
		n := len(w)
		for i := 1; i < n; i++ {
			if w[i] < w[n-i] {
				break
			}
			if w[i] > w[n-i] {
				t.Fatalf("%s is not the canonical representative of its reflection class", k)
			}
		}
	}
	// n=3, L=2: tuples (w0,w1,w2) with w1 ≤ w2 and gcd 1: enumerable by
	// hand — w0∈{1,2} × {(1,1),(1,2),(2,2)} minus gcd-2 tuple (2,2,2) = 5;
	// plus (1,2,2),(2,1,1),(2,1,2) → recount: the test pins the count to
	// guard against silent enumeration changes.
	three, err := enum.Enumerate(enum.Options{MinN: 3, MaxN: 3, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(three) != 5 {
		for _, sp := range three {
			t.Logf("  %s", sp.Key())
		}
		t.Fatalf("n=3 L=2 canonical count = %d, want 5", len(three))
	}
}

func TestEnumerateRejectsExplosiveOptions(t *testing.T) {
	if _, err := enum.Enumerate(enum.Options{MaxN: 11}); err == nil {
		t.Fatal("MaxN 11 accepted")
	}
	if _, err := enum.Enumerate(enum.Options{Levels: 7}); err == nil {
		t.Fatal("Levels 7 accepted")
	}
}

func TestRunSmall(t *testing.T) {
	start := time.Now()
	sum, err := enum.Run(context.Background(), enum.Options{MinN: 3, MaxN: 5, Levels: 3, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n≤5 L=3: %d instances in %v, max ratio %s at %s, %d frontier",
		sum.Instances, time.Since(start), sum.MaxRatio, sum.MaxKey, len(sum.Frontier))
	if sum.Instances == 0 {
		t.Fatal("no instances enumerated")
	}
	if len(sum.Failures) != 0 {
		t.Fatalf("certificate failures: %+v", sum.Failures[0])
	}
	if sum.Certified != sum.Instances {
		t.Fatalf("certified %d of %d", sum.Certified, sum.Instances)
	}
	// The headline theorem, checked exhaustively: no enumerated ratio
	// exceeds 2.
	br, ok := new(big.Rat).SetString(sum.MaxRatio)
	if !ok {
		t.Fatalf("unparsable max ratio %q", sum.MaxRatio)
	}
	if numeric.Two.Less(numeric.FromBig(br)) {
		t.Fatalf("max ratio %s exceeds 2", sum.MaxRatio)
	}
}

package numeric

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// maxParseExponent bounds the decimal/binary exponent accepted by Parse.
// big.Rat.SetString expands exponents eagerly ("1e999999999" materializes a
// billion-digit integer), so an unbounded exponent turns a 12-byte input
// into gigabytes of allocation — found by FuzzRatDecode. No weight or ratio
// in this repository comes anywhere near 10^512.
const maxParseExponent = 512

// Parse reads a rational from a string. Accepted forms are an integer
// ("42", "-7"), a fraction ("3/4", "-22/7"), and a decimal ("0.25",
// "-1.5", "2e3"); exponents are limited to ±512.
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Rat{}, fmt.Errorf("numeric: empty string")
	}
	if err := checkExponent(s); err != nil {
		return Rat{}, err
	}
	br, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("numeric: cannot parse %q as a rational", s)
	}
	return demote(br), nil
}

// checkExponent rejects inputs whose exponent part would make SetString
// allocate disproportionately to the input size. Malformed exponents pass
// through: SetString rejects them with its usual error.
func checkExponent(s string) error {
	// 'e'/'E' marks a decimal exponent except inside a hex mantissa (where
	// it is a digit and the exponent marker is 'p'/'P' instead).
	hex := strings.Contains(s, "0x") || strings.Contains(s, "0X")
	cut := -1
	for i := len(s) - 1; i >= 0; i-- {
		c := s[i]
		if c == 'p' || c == 'P' || (!hex && (c == 'e' || c == 'E')) {
			cut = i
			break
		}
	}
	if cut < 0 {
		return nil
	}
	exp := s[cut+1:]
	if len(exp) > 0 && (exp[0] == '+' || exp[0] == '-') {
		exp = exp[1:]
	}
	if len(exp) == 0 {
		return nil // malformed; SetString reports it
	}
	for _, c := range exp {
		if c < '0' || c > '9' {
			return nil // malformed; SetString reports it
		}
	}
	// len("512") digits always fit; longer digit strings may still be small
	// numbers ("0000512") so parse the value, capping the length first.
	if len(exp) > 9 {
		return fmt.Errorf("numeric: exponent in %q exceeds ±%d", s, maxParseExponent)
	}
	v := 0
	for _, c := range exp {
		v = v*10 + int(c-'0')
	}
	if v > maxParseExponent {
		return fmt.Errorf("numeric: exponent in %q exceeds ±%d", s, maxParseExponent)
	}
	return nil
}

// MustParse is Parse that panics on error; intended for constants in tests
// and examples.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// MarshalText implements encoding.TextMarshaler.
func (r Rat) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (r *Rat) UnmarshalText(text []byte) error {
	v, err := Parse(string(text))
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// Approximate returns the best rational approximation of x with denominator
// at most maxDen, computed by the continued fraction expansion of x. It is
// used to snap floating-point candidate points (e.g. per-piece critical
// points of the Sybil split optimizer) back onto exact rationals.
//
// It panics if x is NaN or infinite, or if maxDen < 1.
func Approximate(x float64, maxDen int64) Rat {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("numeric: cannot approximate a non-finite float")
	}
	if maxDen < 1 {
		panic("numeric: maxDen must be at least 1")
	}
	neg := x < 0
	if neg {
		x = -x
	}
	// Continued fraction convergents h/k.
	var (
		h0, k0 int64 = 0, 1
		h1, k1 int64 = 1, 0
		v            = x
	)
	for i := 0; i < 64; i++ {
		a := int64(math.Floor(v))
		h2, okh := addMul(h0, a, h1)
		k2, okk := addMul(k0, a, k1)
		if !okh || !okk || k2 > maxDen {
			// Try the best semiconvergent that still fits.
			if k1 > 0 {
				amax := (maxDen - k0) / k1
				if amax > 0 {
					h2, okh = addMul(h0, amax, h1)
					k2, okk = addMul(k0, amax, k1)
					if okh && okk && better(x, h2, k2, h1, k1) {
						h1, k1 = h2, k2
					}
				}
			}
			break
		}
		h0, k0, h1, k1 = h1, k1, h2, k2
		frac := v - math.Floor(v)
		if frac < 1e-15 {
			break
		}
		v = 1 / frac
	}
	if k1 == 0 {
		return Rat{}
	}
	r := makeRat(h1, k1)
	if neg {
		r = r.Neg()
	}
	return r
}

// addMul returns a + q*b with overflow reporting.
func addMul(a, q, b int64) (int64, bool) {
	p, ok := mul64(q, b)
	if !ok {
		return 0, false
	}
	return add64(a, p)
}

// better reports whether h2/k2 is at least as close to x as h1/k1.
func better(x float64, h2, k2, h1, k1 int64) bool {
	if k1 == 0 {
		return true
	}
	return math.Abs(x-float64(h2)/float64(k2)) <= math.Abs(x-float64(h1)/float64(k1))
}

package client

import (
	"context"
	"fmt"
	"time"

	"repro/internal/numeric"
	"repro/internal/server"
)

// SweepAll runs /v1/sweep to completion, automatically resuming partial
// results: whenever the server's request timeout truncates the sweep, the
// returned resume token is fed back until grid index Grid is covered. The
// merged response is bit-identical to a single uninterrupted sweep — the
// segments are concatenated, and Best/Ratio are recomputed exactly over the
// full point set.
//
// Each round must advance NextIndex; a server too overloaded to finish even
// one grid point per request gets a bounded number of zero-progress rounds
// (with the usual backoff between them) before SweepAll gives up — the
// client's max attempts by default, WithStallThreshold to change it. req is
// not mutated. A caller-supplied Resume token is honored as the starting
// point.
//
// With req.Cert set, an uninterrupted sweep's certificate passes through
// unchanged; a resumed (multi-segment) sweep's merged response carries no
// certificate, because the server only certifies the final segment's
// indices — re-request without interruption to certify the full range.
func (c *Client) SweepAll(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	r := *req
	grid := r.Grid
	if grid == 0 {
		grid = 64 // server default; needed to recognize completion
	}
	var segments []*SweepResponse
	next, stalls := 0, 0
	for {
		resp, err := c.Sweep(ctx, &r)
		if err != nil {
			return nil, err
		}
		if len(resp.Points) > 0 || !resp.Partial {
			segments = append(segments, resp)
		}
		if !resp.Partial {
			return mergeSweep(segments, grid)
		}
		if resp.ResumeToken == "" {
			return nil, fmt.Errorf("client: partial sweep without resume token")
		}
		if resp.NextIndex <= next && len(resp.Points) == 0 {
			stalls++
			threshold := c.stallThreshold
			if threshold < 1 {
				threshold = c.maxAttempts
			}
			if stalls >= threshold {
				return nil, fmt.Errorf("client: sweep stalled at grid index %d after %d zero-progress rounds", next, stalls)
			}
			// Back off as if the round had failed: zero progress means the
			// server is saturated or its timeout is tighter than one point.
			stallErr := &APIError{Status: 503, Code: server.CodeBusy, Message: "sweep made no progress"}
			delay := c.delay(stalls, stallErr)
			if c.onRetry != nil {
				c.onRetry(stalls, stallErr, delay)
			}
			if err := sleep(ctx, delay); err != nil {
				return nil, err
			}
		} else {
			stalls = 0
			next = resp.NextIndex
		}
		r.Resume = resp.ResumeToken
	}
}

// sleep waits d or until ctx dies.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// mergeSweep concatenates the segments of a resumed sweep into the response
// a single uninterrupted run would have produced: points in grid order,
// Best over all of them, Ratio recomputed exactly. Honest is invariant
// across segments, so it comes from the last one.
func mergeSweep(segments []*SweepResponse, grid int) (*SweepResponse, error) {
	if len(segments) == 1 && !segments[0].Partial && segments[0].StartIndex == 0 {
		return segments[0], nil
	}
	merged := &SweepResponse{}
	want := 0
	for _, seg := range segments {
		if seg.StartIndex != want {
			return nil, fmt.Errorf("client: sweep segment starts at %d, want %d", seg.StartIndex, want)
		}
		merged.Points = append(merged.Points, seg.Points...)
		want = seg.StartIndex + len(seg.Points)
	}
	if want != grid+1 {
		return nil, fmt.Errorf("client: merged sweep covers %d points, want %d", want, grid+1)
	}
	last := segments[len(segments)-1]
	merged.Honest = last.Honest
	honest, err := numeric.Parse(merged.Honest)
	if err != nil {
		return nil, fmt.Errorf("client: bad honest utility %q: %v", merged.Honest, err)
	}
	var bestW1, bestU numeric.Rat
	for i, p := range merged.Points {
		u, err := numeric.Parse(p.U)
		if err != nil {
			return nil, fmt.Errorf("client: bad point utility %q: %v", p.U, err)
		}
		w1, err := numeric.Parse(p.W1)
		if err != nil {
			return nil, fmt.Errorf("client: bad point w1 %q: %v", p.W1, err)
		}
		if i == 0 || bestU.Less(u) {
			bestW1, bestU = w1, u
		}
	}
	merged.BestW1, merged.BestU = bestW1.String(), bestU.String()
	// Same ratio rule as the sweep itself: BestU/Honest when the honest
	// utility is positive, the neutral 1 otherwise. (A positive BestU with
	// zero honest utility cannot reach here — the server rejects it.)
	if honest.Sign() > 0 {
		merged.Ratio = bestU.Div(honest).String()
	} else {
		merged.Ratio = numeric.One.String()
	}
	return merged, nil
}

#!/bin/sh
# Repository gate: build, vet, and the full test suite under the race
# detector (the incremental split engine and the parallel decomposition are
# exercised concurrently by their tests). Run from the repo root:
#
#	./ci.sh
set -eux

go build ./...

# go vet must be SILENT: fail on any finding, including diagnostics a vet
# tool might print while still exiting zero.
vet_out="$(go vet ./... 2>&1)" || { printf '%s\n' "$vet_out"; exit 1; }
if [ -n "$vet_out" ]; then
	printf 'go vet findings:\n%s\n' "$vet_out"
	exit 1
fi

# Full suite under the race detector, with statement coverage recorded for
# the per-package floor check below.
cover_log="$(mktemp)"
go test -race -count=1 -cover ./... >"$cover_log" 2>&1 || { cat "$cover_log"; exit 1; }
cat "$cover_log"

# Per-package coverage floors (coverage_floors.txt): no package may regress
# below the floor recorded when it was last measured. The floors carry two
# points of slack for run-to-run jitter; see the file header for the
# raise-don't-lower policy.
awk '
	NR == FNR { if ($1 !~ /^#/ && NF >= 2) floor[$1] = $2; next }
	/coverage:/ {
		pkg = ($1 == "ok") ? $2 : $1
		pct = ""
		for (i = 1; i <= NF; i++)
			if ($i ~ /%/) { pct = $i; sub(/%.*/, "", pct); break }
		if (pkg in floor) {
			seen[pkg] = 1
			if (pct + 0 < floor[pkg] + 0) {
				printf "coverage regression: %s at %s%% is below floor %s%%\n", pkg, pct, floor[pkg]
				bad = 1
			}
		}
	}
	END {
		for (p in floor) if (!(p in seen)) { printf "coverage floor for %s but no coverage line in test output\n", p; bad = 1 }
		exit bad
	}
' coverage_floors.txt "$cover_log"
rm -f "$cover_log"

# Focused race pass on the observability layer and the server: the span
# recorder is mutated from every solver goroutine and the trace collector
# is shared across requests, so these two packages get a dedicated -count=2
# run to shake out interleavings the full-suite pass may not hit.
go test -race -count=2 ./internal/obs ./internal/server

# Resilience: a dedicated -count=2 race pass over the fault-injection
# registry and the retrying client (deterministic injection counters, the
# backoff jitter RNG, and SweepAll's resume loop are all concurrency-facing),
# then a chaos smoke — the binary's -chaos/-chaos-allow gating and a live
# fault-injected boot via the cmd tests. The full chaos replay (100-instance
# corpus under faults at every site, client retries converging bit-identically)
# runs as part of the full-suite pass above.
go test -race -count=2 ./internal/fault ./client
go test ./cmd/irshared -run 'TestChaos' -count=1

# Durable jobs: a dedicated -count=2 race pass (the store serializes WAL
# appends against compaction and the scheduler races submit/cancel/shutdown
# against its workers), then the crash-recovery smoke — a real child
# process SIGKILLed mid-grid must recover from its -data-dir and finish
# bit-identically.
go test -race -count=2 ./internal/jobs
go test ./cmd/irshared -run 'TestKillAndRecover' -count=1

# Strategic-manipulation scenarios: a dedicated -count=2 race pass over the
# scenario engines (the odometer enumerator, the coalition fold, and the
# topology generators are driven concurrently by the job scheduler in the
# full-suite pass), the scenario crash-recovery smoke (a ksybil job
# SIGKILLed mid-grid must recover from its WAL checkpoint bit-identically),
# then a small-scan smoke through the CLI. The k=3 Sybil scan on the
# tournament ring must keep reproducing the pinned exact ratio — its best
# split carries a zero digit, so it degenerates to the k=2 optimum and the
# value matches the tournament smoke's bd line.
go test -race -count=2 ./internal/scenario
go test ./cmd/irshared -run 'TestScenarioKillAndRecover' -count=1
scen_out="$(go run ./cmd/irshare scenario -kind ksybil -ring 3,1,2,1,5 -v 0 -k 3 -grid 12)"
printf '%s\n' "$scen_out"
printf '%s\n' "$scen_out" | grep -q 'ζ = 3965/3689' || { echo "scenario smoke: k=3 sybil ratio drifted"; exit 1; }
go run ./cmd/irshare scenario -kind topology -families ring,tree,er -count 1 -n 5 -grid 3 -seed 7 \
	| grep -q 'topology scan: 3 instances' || { echo "scenario smoke: topology scan failed"; exit 1; }

# Refresh the scenario engine throughput numbers (points/s is the custom
# metric reported by the grid-scan benchmarks).
go run ./cmd/benchjson -bench 'KSybil' -pkg ./internal/scenario -out BENCH_scenarios.json \
	-note "scenario engine throughput: BenchmarkKSybilK3 — k=3 identity Sybil grid scan on an 8-ring (grid 16, 153 admissible points per scan), exact rational BD per point; points/s is grid points evaluated per second"

# Refresh the recorded disabled-vs-enabled tracing overhead numbers.
go run ./cmd/benchjson -bench 'Obs' -pkg ./internal/obs -out BENCH_obs.json \
	-note "disabled-vs-enabled recorder overhead: primitives (Start/AddInt/End) and end-to-end DecomposeCtx on a 64-ring"

# Refresh the disabled-injection overhead numbers (fault.Hit in the hot
# loops with no injector installed must stay within noise of the baseline).
go run ./cmd/benchjson -bench 'OptimizeSplit$/n=129' -out BENCH_fault.json \
	-note "disabled-injection overhead check: BenchmarkOptimizeSplit n=129 with fault sites live but no injector installed; compare seed_baseline"

# Refresh the job-store durability numbers: un-synced WAL append throughput
# (the per-point checkpoint hot path), fsync'd state transitions, and full
# recovery (replay + requeue) of a 10k-record store.
go run ./cmd/benchjson -bench 'WAL|Recover' -pkg ./internal/jobs -out BENCH_jobs.json \
	-note "durable job store: WAL append (unsynced checkpoint path vs fsync'd state transition) and 10k-record recovery replay"

# Fuzz smoke: run each native fuzz target briefly against its seed corpus
# plus fresh mutations. Parser/codec regressions (panics, unbounded
# allocation) surface here long before a full fuzzing campaign. The
# FuzzParseGraph corpus includes the near-tight frontier rings surfaced by
# the certificate enumerator; FuzzCertRoundTrip probes the solver-free
# certificate checker's parsing hardening and canonical round-trip.
go test ./internal/graph -run '^$' -fuzz '^FuzzParseGraph$' -fuzztime 10s
go test ./internal/server -run '^$' -fuzz '^FuzzRatDecode$' -fuzztime 10s
go test ./internal/server -run '^$' -fuzz '^FuzzMechanismField$' -fuzztime 10s
go test ./internal/cert -run '^$' -fuzz '^FuzzCertRoundTrip$' -fuzztime 10s
go test ./internal/server -run '^$' -fuzz '^FuzzScenarioRequest$' -fuzztime 10s

# Cross-mechanism tournament smoke: every registered mechanism evaluated
# on a fixed ring through the same path the /v1/tournament endpoint uses.
# Exact rational arithmetic end to end, so the output is deterministic;
# any registry or generic-sweep regression changes a printed ζ and the
# grep below fails. bd must beat eqsplit on this instance (ζ > 1 vs = 1).
tourn_out="$(go run ./cmd/irshare tournament -ring 3,1,2,1,5 -v 0 -grid 16)"
printf '%s\n' "$tourn_out"
printf '%s\n' "$tourn_out" | grep -q 'bd *ζ = 3965/3689' || { echo "tournament smoke: bd ratio drifted"; exit 1; }
printf '%s\n' "$tourn_out" | grep -q 'eqsplit *ζ = 1 ' || { echo "tournament smoke: eqsplit ratio drifted"; exit 1; }

# Exhaustive small-n certification smoke: every canonical ring with n ≤ 6
# vertices and integer weights in {1..3} — 604 instances up to symmetry —
# is solved, certified (internal/cert/build), and independently re-verified
# by the solver-free checker. The binary exits nonzero on any certification
# failure or any certified ratio above the Theorem 8 bound 2; -eps 3/5
# keeps the near-tight frontier (ratio ≥ 7/5) non-empty. ~12s.
go run ./cmd/certenum -min-n 3 -max-n 6 -levels 3 -grid 8 -eps 3/5 -timeout 25s

# Cluster: a dedicated race pass over the router's data structures (hash
# ring, lease WAL, membership) and the certificate-verified routing path,
# then the two cluster smokes — the 3-node kill/recover acceptance test (a
# job's owning node hard-stopped mid-sweep, the job re-placed on a survivor
# from the router's lease checkpoint, final result bit-identical to a
# single-node run) and the router chaos replay (the 100-instance corpus
# routed under fault injection at cluster.probe and cluster.lease) — plus
# the irrouter binary's flag gating and graceful drain.
go test -race -count=2 ./internal/cluster -run 'TestRing|TestLease|TestRouterReadyz|TestCertRejection'
go test ./internal/cluster -run 'TestClusterKillRecoverBitIdentical|TestClusterChaosReplay' -count=1
go test ./cmd/irrouter -count=1

# Record the router's proxy overhead: the same sustained /v1/ratio load
# driven directly against one backend and through a single-node router.
go run ./cmd/benchjson -bench 'RatioRPS' -pkg ./internal/cluster -out BENCH_cluster.json \
	-note "router overhead: sustained /v1/ratio RPS direct vs proxied through a single-node irrouter"

package mechanism

import (
	"context"
	"fmt"

	"repro/internal/allocation"
	"repro/internal/graph"
)

// EqSplit is the degenerate no-reciprocity baseline: every agent splits its
// endowment equally among its neighbors, x_vu = w_v/deg(v), regardless of
// what it receives back. It is the t=0 state of the proportional-response
// dynamics and the natural control in tournaments — any mechanism that
// claims to reward contribution should separate from it on fairness and
// incentive-ratio columns.
type EqSplit struct{}

// Name implements Mechanism.
func (EqSplit) Name() string { return "eqsplit" }

// Description implements Describer.
func (EqSplit) Description() string {
	return "equal-split baseline: x_vu = w_v/deg(v), no reciprocity (round-0 proportional response)"
}

// Certifiable implements Certifier.
func (EqSplit) Certifiable() bool { return false }

// Allocate implements Mechanism.
func (EqSplit) Allocate(_ context.Context, g *graph.Graph) (*allocation.Allocation, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("mechanism/eqsplit: empty graph")
	}
	a := allocation.New(n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		if len(nb) == 0 || g.Weight(v).IsZero() {
			continue
		}
		share := g.Weight(v).DivInt(int64(len(nb)))
		for _, u := range nb {
			a.Add(v, u, share)
		}
	}
	return a, nil
}

func init() { Register(EqSplit{}) }

package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		seen := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) {
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachPanicsPropagate(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("panic payload is %T, want *PanicError", r)
		}
		if pe.Value != "boom" {
			t.Fatalf("contained value = %v, want boom", pe.Value)
		}
		if !strings.Contains(fmt.Sprint(r), "par: worker panicked: boom") {
			t.Fatalf("payload prints as %q", fmt.Sprint(r))
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "par_test.go") {
			t.Fatalf("stack not captured at panic site:\n%s", pe.Stack)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachSequentialPanicMatchesParallel(t *testing.T) {
	// The single-worker fast path must contain panics identically to the
	// pooled path so callers never branch on worker count.
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok || pe.Value != "solo" {
			t.Fatalf("sequential path payload = %#v", pe)
		}
	}()
	ForEach(3, 1, func(i int) {
		if i == 1 {
			panic("solo")
		}
	})
}

func TestForEachWorkersExceedN(t *testing.T) {
	// More workers than items must still visit every index exactly once and
	// not deadlock waiting on the surplus goroutines.
	n := 5
	seen := make([]atomic.Int32, n)
	ForEach(n, 64, func(i int) {
		seen[i].Add(1)
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestMapWorkersExceedN(t *testing.T) {
	got := Map(3, 100, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map(0) returned %v", got)
	}
}

func TestMapPanicMidSweep(t *testing.T) {
	// A panic from one worker partway through the sweep must surface to the
	// caller after the pool drains, not hang or get swallowed.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(fmt.Sprint(r), "mid-sweep") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Map(200, 8, func(i int) int {
		if i == 123 {
			panic("mid-sweep")
		}
		return i
	})
}

func TestMapOrdering(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("Workers(3)")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("Workers default")
	}
}

func TestProtect(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
	sentinel := errors.New("plain failure")
	if err := Protect(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error passthrough = %v", err)
	}

	err := Protect(func() error { panic("contained") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic became %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "contained" || len(pe.Stack) == 0 {
		t.Fatalf("contained panic = %+v", pe)
	}

	// A panic already contained by an inner ForEach must pass through
	// unchanged, keeping the original worker stack.
	inner := Protect(func() error {
		ForEach(10, 4, func(i int) {
			if i == 5 {
				panic("nested")
			}
		})
		return nil
	})
	if !errors.As(inner, &pe) || pe.Value != "nested" {
		t.Fatalf("nested containment = %#v", inner)
	}
}

func TestForEachActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	// Two workers must be able to run concurrently: worker A waits until
	// worker B has started; with real parallelism this finishes quickly.
	started := make(chan struct{})
	release := make(chan struct{})
	ForEach(2, 2, func(i int) {
		if i == 0 {
			<-started
			close(release)
		} else {
			close(started)
			<-release
		}
	})
}

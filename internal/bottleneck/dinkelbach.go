package bottleneck

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// minimizeOracle is the parametric subproblem behind the maximal-bottleneck
// search: for a fixed λ ≥ 0, minimize f_λ(S) = w(Γ(S)) − λ·w(S) over all
// vertex sets S (the empty set, of value 0, included).
//
// f_λ is submodular (w(Γ(·)) is submodular, λ·w(·) is modular), so its
// minimizers form a lattice closed under union; the maximal minimizer is the
// union of all minimizers, and at the optimal λ it is exactly the maximal
// bottleneck of Definition 2.
//
// The two methods split the work so Dinkelbach's intermediate iterations
// stay cheap: value reports the minimum together with the weight w(S) of a
// minimizer (enough to update λ, since α(S) = λ + val/w(S)), while maximal
// extracts the full maximal minimizer — needed only once, at the optimum.
type minimizeOracle interface {
	value(lambda numeric.Rat) (val, wS numeric.Rat)
	maximal(lambda numeric.Rat) []int
}

// errWarmTooLow reports that a warm-started Dinkelbach run began below the
// optimum λ*: the subproblem minimum is 0 but only zero-weight sets attain
// it, so the run cannot certify a bottleneck. Callers restart cold.
var errWarmTooLow = errors.New("bottleneck: warm start below λ*")

// maxBottleneck runs Dinkelbach's parametric method: starting from
// λ = α(V) ≤ 1 it alternates between solving the λ-subproblem and updating
// λ ← α(S) for the returned minimizer S. Every iterate is an attained
// α-value and strictly decreases, so with exact arithmetic the loop
// terminates at λ* = min_S α(S) with the maximal bottleneck in hand.
//
// The graph must have positive total weight.
func maxBottleneck(ctx context.Context, g *graph.Graph, o minimizeOracle, iterTrace func(lambda, value numeric.Rat)) (numeric.Rat, []int, error) {
	wV := g.TotalWeight()
	if wV.Sign() <= 0 {
		return numeric.Rat{}, nil, fmt.Errorf("bottleneck: graph has zero total weight")
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	lambda := g.WeightOf(g.NeighborhoodSet(all)).Div(wV) // α(V) ≤ 1
	return maxBottleneckFrom(ctx, g, o, lambda, false, iterTrace)
}

// maxBottleneckWarm runs maxBottleneck but first tries the supplied warm
// start λ0 (typically the λ* of a structurally nearby instance). Any
// λ0 ≥ λ* converges to the identical (λ*, maximal bottleneck) fixed point —
// the optimum is unique, so warm starting can change only the iterate path,
// never the answer. A λ0 that undershoots λ* is detected (the subproblem
// minimum is 0 yet no positive-weight set attains it) and the search
// restarts from the cold λ = α(V).
func maxBottleneckWarm(ctx context.Context, g *graph.Graph, o minimizeOracle, warm numeric.Rat) (numeric.Rat, []int, bool, error) {
	if warm.Sign() > 0 && warm.Cmp(numeric.One) <= 0 {
		alpha, S, err := maxBottleneckFrom(ctx, g, o, warm, true, nil)
		if err == nil {
			return alpha, S, true, nil
		}
		if !errors.Is(err, errWarmTooLow) {
			return numeric.Rat{}, nil, false, err
		}
	}
	alpha, S, err := maxBottleneck(ctx, g, o, nil)
	return alpha, S, false, err
}

// maxBottleneckWarmAt is maxBottleneckWarm for callers that have no
// materialized graph: the vertex count, the weight function and the cold
// starting iterate α(V) are supplied directly. The loop is byte-identical
// to the graph-backed path.
func maxBottleneckWarmAt(ctx context.Context, n int, weightOf func([]int) numeric.Rat, alphaV numeric.Rat, o minimizeOracle, warm numeric.Rat) (numeric.Rat, []int, bool, error) {
	if warm.Sign() > 0 && warm.Cmp(numeric.One) <= 0 {
		alpha, S, err := dinkelbachLoop(ctx, n, weightOf, o, warm, true, nil)
		if err == nil {
			return alpha, S, true, nil
		}
		if !errors.Is(err, errWarmTooLow) {
			return numeric.Rat{}, nil, false, err
		}
	}
	alpha, S, err := dinkelbachLoop(ctx, n, weightOf, o, alphaV, false, nil)
	return alpha, S, false, err
}

// maxBottleneckFrom is the Dinkelbach loop body with an explicit starting
// λ. With warm set, an undershooting start is reported as errWarmTooLow
// instead of a hard failure.
func maxBottleneckFrom(ctx context.Context, g *graph.Graph, o minimizeOracle, lambda numeric.Rat, warm bool, iterTrace func(lambda, value numeric.Rat)) (numeric.Rat, []int, error) {
	return dinkelbachLoop(ctx, g.N(), g.WeightOf, o, lambda, warm, iterTrace)
}

// dinkelbachLoop is the graph-agnostic Dinkelbach iteration: only the vertex
// count (for the safety bound) and a weight function (for the degeneracy
// check at λ*) are needed beyond the oracle. The context is checked before
// every subproblem solve, so cancellation lands between iterations — never
// inside one — and the caller observes ctx.Err() with no partial state.
func dinkelbachLoop(ctx context.Context, n int, weightOf func([]int) numeric.Rat, o minimizeOracle, lambda numeric.Rat, warm bool, iterTrace func(lambda, value numeric.Rat)) (numeric.Rat, []int, error) {
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return numeric.Rat{}, nil, err
		}
		if err := fault.Hit(ctx, fault.SiteDinkelbach); err != nil {
			return numeric.Rat{}, nil, err
		}
		if iter > n*n+64 {
			// Dinkelbach over exact rationals converges in far fewer steps;
			// exceeding this bound means a solver bug, not a hard instance.
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: Dinkelbach did not converge after %d iterations", iter)
		}
		val, wS := o.value(lambda)
		if iterTrace != nil {
			iterTrace(lambda, val)
		}
		if val.Sign() > 0 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: subproblem returned positive minimum %v (∅ has value 0)", val)
		}
		if val.Sign() == 0 {
			S := o.maximal(lambda)
			if weightOf(S).Sign() <= 0 {
				if warm {
					return numeric.Rat{}, nil, errWarmTooLow
				}
				return numeric.Rat{}, nil, fmt.Errorf("bottleneck: degenerate maximal minimizer at λ=%v", lambda)
			}
			return lambda, S, nil
		}
		// val < 0 forces w(S) > 0 (f(S) < 0 needs λ·w(S) > w(Γ(S)) ≥ 0).
		if wS.Sign() <= 0 {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: negative minimum %v with zero-weight minimizer", val)
		}
		next := lambda.Add(val.Div(wS)) // = (λ·w(S) + f(S)) / w(S) = α(S)
		if !next.Less(lambda) {
			return numeric.Rat{}, nil, fmt.Errorf("bottleneck: Dinkelbach stalled at λ=%v (next=%v)", lambda, next)
		}
		lambda = next
	}
}

// Command benchjson runs a Go benchmark selection and records the results
// as machine-readable JSON, so before/after performance comparisons live in
// the repository instead of in shell history.
//
// Usage:
//
//	benchjson [-bench REGEX] [-pkg PKG] [-benchtime T] [-out FILE] [-note S]
//
// The default selection is the split-optimizer suite (BenchmarkOptimizeSplit,
// BenchmarkOptimizeSplitCold, BenchmarkEvalSplitIncremental,
// BenchmarkEvalSplitStock); the checked-in BENCH_optimize.json was produced
// with:
//
//	go run ./cmd/benchjson -out BENCH_optimize.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// Result is one parsed benchmark line. RPS and PointsPerSec capture the
// custom metrics emitted via b.ReportMetric by the sustained-throughput
// benchmarks ("rps") and the scenario grid scans ("points/s"); zero for
// benchmarks that do not report one.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations,omitempty"`
	NsPerOp      float64 `json:"ns_per_op"`
	RPS          float64 `json:"rps,omitempty"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp  int64   `json:"allocs_per_op,omitempty"`
}

// Report is the file layout of BENCH_optimize.json. The seed_baseline
// section is never produced by this tool; it records measurements taken at
// an earlier commit, and regeneration preserves it (see carryBaseline) so
// the before/after comparison survives refreshes of the current numbers.
type Report struct {
	Generated    string   `json:"generated"`
	GoVersion    string   `json:"go_version"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	Bench        string   `json:"bench"`
	Package      string   `json:"package"`
	Note         string   `json:"note,omitempty"`
	SeedNote     string   `json:"seed_note,omitempty"`
	SeedBaseline []Result `json:"seed_baseline,omitempty"`
	Results      []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", "OptimizeSplit|EvalSplit", "benchmark regex passed to go test -bench")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (empty = default)")
		out       = flag.String("out", "", "output file (default stdout)")
		note      = flag.String("note", "", "free-form note stored in the report")
	)
	flag.Parse()

	rep, err := collect(*bench, *pkg, *benchtime, *note)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		carryBaseline(rep, *out)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), *out)
}

func collect(bench, pkg, benchtime, note string) (*Report, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", pkg}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %w", args, err)
	}
	results, err := parseBench(buf.Bytes())
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q in %s", bench, pkg)
	}
	return &Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		Package:   pkg,
		Note:      note,
		Results:   results,
	}, nil
}

// carryBaseline copies the seed_baseline section (historical measurements
// from a pre-change commit, not reproducible at HEAD) from an existing
// report at path into rep.
func carryBaseline(rep *Report, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return
	}
	rep.SeedNote = old.SeedNote
	rep.SeedBaseline = old.SeedBaseline
}

// benchLine matches go test -bench -benchmem output, e.g.
//
//	BenchmarkOptimizeSplit/n=065-8  3  392216994 ns/op  174999248 B/op  4072928 allocs/op
//	BenchmarkServerSustainedRatioRPS-8  14510  86029 ns/op  11624 rps  21138 B/op  358 allocs/op
//	BenchmarkKSybilK3-8  26  45110273 ns/op  18054 points/s  10178245 B/op  271832 allocs/op
//
// (custom metrics like rps and points/s print between ns/op and the
// -benchmem columns).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) (rps|points/s))?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBench(out []byte) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			val, _ := strconv.ParseFloat(m[4], 64)
			switch m[5] {
			case "rps":
				r.RPS = val
			case "points/s":
				r.PointsPerSec = val
			}
		}
		if m[6] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		if m[7] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[7], 10, 64)
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, seed uint64, rules ...Rule) *Injector {
	t.Helper()
	inj, err := New(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestDisabledPathIsNil(t *testing.T) {
	var inj *Injector
	if err := inj.Strike(SiteDinkelbach); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	inj.StrikePanic(SiteMaxflowPush) // must not panic
	if inj.Stats() != nil {
		t.Fatal("nil injector has stats")
	}
	if got := inj.String(); got != "<disabled>" {
		t.Fatalf("nil injector String() = %q", got)
	}

	ctx := context.Background()
	if ContextWith(ctx, nil) != ctx {
		t.Fatal("ContextWith(nil) allocated a new context")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context not nil")
	}
	if err := Hit(ctx, SiteServerCompute); err != nil {
		t.Fatalf("Hit on bare context injected: %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	inj := mustNew(t, 1, Rule{Site: SiteServerCompute, Kind: KindError, Every: 1})
	ctx := ContextWith(context.Background(), inj)
	if FromContext(ctx) != inj {
		t.Fatal("FromContext did not return the installed injector")
	}
	err := Hit(ctx, SiteServerCompute)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteServerCompute || fe.N != 1 {
		t.Fatalf("Hit error = %#v", err)
	}
	// Unarmed site on an armed injector is still clean.
	if err := Hit(ctx, SiteCacheGet); err != nil {
		t.Fatalf("unarmed site injected: %v", err)
	}
}

func TestEveryNth(t *testing.T) {
	inj := mustNew(t, 7, Rule{Site: SiteSweepPoint, Kind: KindError, Every: 3})
	var injected []int
	for i := 1; i <= 12; i++ {
		if err := inj.Strike(SiteSweepPoint); err != nil {
			injected = append(injected, i)
		}
	}
	want := []int{3, 6, 9, 12}
	if fmt.Sprint(injected) != fmt.Sprint(want) {
		t.Fatalf("every-3rd injected at %v, want %v", injected, want)
	}
	st := inj.Stats()[SiteSweepPoint]
	if st.Hits != 12 || st.Injected != 4 {
		t.Fatalf("stats = %+v, want 12 hits / 4 injected", st)
	}
}

func TestRateDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		inj := mustNew(t, seed, Rule{Site: SiteDinkelbach, Kind: KindError, Rate: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.Strike(SiteDinkelbach) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate 0.3 over 200 hits injected %d times — not probabilistic", hits)
	}
	// A different seed should give a different pattern (overwhelmingly).
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical injection patterns")
	}
}

func TestPanicKind(t *testing.T) {
	inj := mustNew(t, 1, Rule{Site: SiteMaxflowPush, Kind: KindPanic, Every: 2})
	if err := inj.Strike(SiteMaxflowPush); err != nil {
		t.Fatalf("hit 1 injected: %v", err)
	}
	func() {
		defer func() {
			r := recover()
			pv, ok := r.(*PanicValue)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicValue", r, r)
			}
			if pv.Site != SiteMaxflowPush || pv.N != 2 {
				t.Fatalf("panic value = %+v", pv)
			}
		}()
		inj.Strike(SiteMaxflowPush)
		t.Fatal("hit 2 did not panic")
	}()
}

func TestStrikePanicEscalatesErrors(t *testing.T) {
	inj := mustNew(t, 1, Rule{Site: SiteMaxflowPush, Kind: KindError, Every: 1})
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok || pv.Site != SiteMaxflowPush {
			t.Fatalf("recovered %T (%v), want *PanicValue at maxflow.push", r, r)
		}
	}()
	inj.StrikePanic(SiteMaxflowPush)
	t.Fatal("StrikePanic did not panic on an error rule")
}

func TestLatencyKind(t *testing.T) {
	const d = 20 * time.Millisecond
	inj := mustNew(t, 1, Rule{Site: SiteServerCompute, Kind: KindLatency, Every: 1, Latency: d})
	start := time.Now()
	if err := inj.Strike(SiteServerCompute); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if took := time.Since(start); took < d {
		t.Fatalf("latency injection slept %v, want >= %v", took, d)
	}
}

func TestLimit(t *testing.T) {
	inj := mustNew(t, 1, Rule{Site: SiteCacheGet, Kind: KindError, Every: 1, Limit: 2})
	injected := 0
	for i := 0; i < 10; i++ {
		if inj.Strike(SiteCacheGet) != nil {
			injected++
		}
	}
	if injected != 2 {
		t.Fatalf("limit=2 rule injected %d times", injected)
	}
	st := inj.Stats()[SiteCacheGet]
	if st.Hits != 10 || st.Injected != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLimitConcurrent(t *testing.T) {
	inj := mustNew(t, 1, Rule{Site: SiteCacheGet, Kind: KindError, Every: 1, Limit: 5})
	var mu sync.Mutex
	injected := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if inj.Strike(SiteCacheGet) != nil {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected != 5 {
		t.Fatalf("limit=5 under concurrency injected %d times", injected)
	}
}

func TestWildcards(t *testing.T) {
	inj := mustNew(t, 1, Rule{Site: "*", Kind: KindError, Every: 1})
	for _, site := range Sites() {
		if err := inj.Strike(site); !errors.Is(err, ErrInjected) {
			t.Fatalf("wildcard rule missed site %s: %v", site, err)
		}
	}

	inj = mustNew(t, 1, Rule{Site: "server.*", Kind: KindError, Every: 1})
	if err := inj.Strike(SiteServerCompute); !errors.Is(err, ErrInjected) {
		t.Fatal("server.* missed server.compute")
	}
	if err := inj.Strike(SiteServerBatch); !errors.Is(err, ErrInjected) {
		t.Fatal("server.* missed server.batch")
	}
	if err := inj.Strike(SiteDinkelbach); err != nil {
		t.Fatalf("server.* armed decompose.dinkelbach: %v", err)
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
	}{
		{"unknown site", Rule{Site: "no.such.site", Kind: KindError, Every: 1}},
		{"dead wildcard", Rule{Site: "nothing.*", Kind: KindError, Every: 1}},
		{"zero rate", Rule{Site: SiteDinkelbach, Kind: KindError}},
		{"rate above one", Rule{Site: SiteDinkelbach, Kind: KindError, Rate: 1.5}},
		{"negative every", Rule{Site: SiteDinkelbach, Kind: KindError, Every: -2}},
		{"latency without duration", Rule{Site: SiteDinkelbach, Kind: KindLatency, Every: 1}},
	}
	for _, tc := range cases {
		if _, err := New(1, tc.rule); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.rule)
		}
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("decompose.dinkelbach=error:0.02; maxflow.push=panic:1/500 ;server.compute=latency:0.1:5ms:limit=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if r := rules[0]; r.Site != SiteDinkelbach || r.Kind != KindError || r.Rate != 0.02 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := rules[1]; r.Site != SiteMaxflowPush || r.Kind != KindPanic || r.Every != 500 {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r := rules[2]; r.Site != SiteServerCompute || r.Kind != KindLatency ||
		r.Rate != 0.1 || r.Latency != 5*time.Millisecond || r.Limit != 3 {
		t.Fatalf("rule 2 = %+v", r)
	}
	if _, err := New(20260805, rules...); err != nil {
		t.Fatalf("parsed rules rejected by New: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ;  ",
		"nosite",
		"decompose.dinkelbach=explode:0.5",
		"decompose.dinkelbach=error",
		"decompose.dinkelbach=error:zero",
		"decompose.dinkelbach=error:1/0",
		"decompose.dinkelbach=error:1/x",
		"server.compute=latency:0.5",
		"server.compute=latency:0.5:fast",
		"decompose.dinkelbach=error:0.5:limit=0",
		"decompose.dinkelbach=error:0.5:bogus=1",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestRuleString(t *testing.T) {
	rules, err := Parse("sweep.point=latency:1/4:2ms:limit=7")
	if err != nil {
		t.Fatal(err)
	}
	got := rules[0].String()
	want := "sweep.point=latency:1/4:2ms:limit=7"
	if got != want {
		t.Fatalf("Rule.String() = %q, want %q", got, want)
	}
	// String must round-trip through Parse.
	again, err := Parse(got)
	if err != nil {
		t.Fatalf("Rule.String() does not re-parse: %v", err)
	}
	if again[0] != rules[0] {
		t.Fatalf("round trip changed rule: %+v vs %+v", again[0], rules[0])
	}
}

func BenchmarkHitDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(ctx, SiteDinkelbach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrikeNil(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := inj.Strike(SiteMaxflowPush); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrikeArmedMiss(b *testing.B) {
	inj, err := New(1, Rule{Site: SiteDinkelbach, Kind: KindError, Rate: 1e-9})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := inj.Strike(SiteDinkelbach); err != nil {
			b.Fatal(err)
		}
	}
}

package allocation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func computeChecked(t *testing.T, g *graph.Graph) (*bottleneck.Decomposition, *Allocation) {
	t.Helper()
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	a, err := Compute(g, d)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if err := Audit(g, d, a); err != nil {
		t.Fatalf("Audit: %v", err)
	}
	return d, a
}

func TestFig1Allocation(t *testing.T) {
	g := graph.Fig1Graph()
	d, a := computeChecked(t, g)
	// Pair 1: B = {v1, v2} (w = 3 each), C = {v3} (w = 2), α = 1/3.
	// v1 and v2 each send all 3 units to v3; v3 returns α·3 = 1 to each.
	if !a.Get(0, 2).Equal(numeric.FromInt(3)) || !a.Get(1, 2).Equal(numeric.FromInt(3)) {
		t.Errorf("B→C transfers: %v, %v", a.Get(0, 2), a.Get(1, 2))
	}
	if !a.Get(2, 0).Equal(numeric.One) || !a.Get(2, 1).Equal(numeric.One) {
		t.Errorf("C→B transfers: %v, %v", a.Get(2, 0), a.Get(2, 1))
	}
	// No transfer across pairs: v3 - v4 is not inside any pair.
	if !a.Get(2, 3).IsZero() || !a.Get(3, 2).IsZero() {
		t.Errorf("cross-pair transfer: %v, %v", a.Get(2, 3), a.Get(3, 2))
	}
	// Utilities per Proposition 6.
	wantU := []numeric.Rat{
		numeric.One, numeric.One, numeric.FromInt(6),
		numeric.One, numeric.One, numeric.One,
	}
	for v, want := range wantU {
		if got := a.Utility(v); !got.Equal(want) {
			t.Errorf("U_%d = %v, want %v", v, got, want)
		}
	}
	_ = d
}

func TestCrossPairReciprocity(t *testing.T) {
	// For α < 1 pairs, x_vu = α·x_uv on every B-C edge.
	g := graph.Path(numeric.Ints(1, 100, 1))
	d, a := computeChecked(t, g)
	alpha := d.Pairs[0].Alpha
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if d.ClassOf(u) == bottleneck.ClassC {
			u, v = v, u
		}
		if d.ClassOf(u) == bottleneck.ClassB && d.ClassOf(v) == bottleneck.ClassC {
			if !a.Get(v, u).Equal(alpha.Mul(a.Get(u, v))) {
				t.Errorf("edge (%d,%d): x_vu = %v, α·x_uv = %v", u, v, a.Get(v, u), alpha.Mul(a.Get(u, v)))
			}
		}
	}
}

func TestSelfPairTriangle(t *testing.T) {
	g := graph.Complete(numeric.Ints(1, 1, 1))
	_, a := computeChecked(t, g)
	for v := 0; v < 3; v++ {
		if !a.Utility(v).Equal(numeric.One) {
			t.Errorf("U_%d = %v", v, a.Utility(v))
		}
		if !a.SentBy(v).Equal(numeric.One) {
			t.Errorf("sent by %d = %v", v, a.SentBy(v))
		}
	}
}

func TestSelfPairUnevenEdge(t *testing.T) {
	// Single edge with equal weights 2-2: α = 1, everything flows across.
	g := graph.Path(numeric.Ints(2, 2))
	_, a := computeChecked(t, g)
	if !a.Get(0, 1).Equal(numeric.FromInt(2)) || !a.Get(1, 0).Equal(numeric.FromInt(2)) {
		t.Errorf("transfers: %v, %v", a.Get(0, 1), a.Get(1, 0))
	}
}

func TestRandomGraphsAuditAndConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.RandomRing(rng, rng.Intn(10)+3, graph.WeightDist(rng.Intn(4)))
		case 1:
			g = graph.Path(graph.RandomWeights(rng, rng.Intn(10)+2, graph.WeightDist(rng.Intn(4))))
		default:
			g = graph.RandomConnected(rng, rng.Intn(8)+2, 0.5, graph.WeightDist(rng.Intn(4)))
		}
		_, a := computeChecked(t, g)
		if got := numeric.Sum(a.Utilities()); !got.Equal(g.TotalWeight()) {
			t.Fatalf("trial %d: ΣU = %v ≠ Σw = %v", trial, got, g.TotalWeight())
		}
	}
}

func TestMismatchedDecompositionRejected(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 2, 3, 4))
	other := graph.Path(numeric.Ints(1, 2))
	d, err := bottleneck.Decompose(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(g, d); err == nil {
		t.Fatal("mismatched decomposition accepted")
	}
}

func TestZeroWeightLeafAllocation(t *testing.T) {
	// v1(0) - a(1) - b(3): zero-weight leaf trades nothing; a and b trade.
	g := graph.Path([]numeric.Rat{numeric.Zero, numeric.One, numeric.FromInt(3)})
	_, a := computeChecked(t, g)
	if !a.Utility(0).IsZero() || !a.SentBy(0).IsZero() {
		t.Errorf("zero-weight leaf trades: U=%v sent=%v", a.Utility(0), a.SentBy(0))
	}
	if !a.Get(2, 1).Equal(numeric.FromInt(3)) {
		t.Errorf("b→a = %v", a.Get(2, 1))
	}
}

func TestAllocationAccessors(t *testing.T) {
	a := newAllocation(3)
	a.Add(0, 1, numeric.One)
	a.Add(0, 1, numeric.One)
	if !a.Get(0, 1).Equal(numeric.Two) {
		t.Errorf("Add: %v", a.Get(0, 1))
	}
	if a.Support() != 1 {
		t.Errorf("Support = %d", a.Support())
	}
	a.set(0, 1, numeric.Zero)
	if a.Support() != 0 {
		t.Error("explicit zero kept in support")
	}
	if a.N() != 3 {
		t.Errorf("N = %d", a.N())
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	a := newAllocation(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer accepted")
		}
	}()
	a.Add(0, 1, numeric.FromInt(-1))
}

func TestQuickAllocationScaleEquivariance(t *testing.T) {
	// Scaling every weight by c > 0 scales every transfer by c (the
	// decomposition structure is scale-invariant and the flows are linear
	// in the capacities — with our deterministic solver, exactly so).
	f := func(seed int64, nRaw uint8, cNum, cDen uint8) bool {
		n := int(nRaw)%6 + 3
		c := numeric.New(int64(cNum)+1, int64(cDen)+1)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRing(rng, n, graph.DistUniform)
		scaled := g.Clone()
		for v := 0; v < n; v++ {
			scaled.MustSetWeight(v, g.Weight(v).Mul(c))
		}
		d1, err := bottleneck.Decompose(g)
		if err != nil {
			return false
		}
		d2, err := bottleneck.Decompose(scaled)
		if err != nil {
			return false
		}
		a1, err := Compute(g, d1)
		if err != nil {
			return false
		}
		a2, err := Compute(scaled, d2)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			u, v := e[0], e[1]
			if !a2.Get(u, v).Equal(a1.Get(u, v).Mul(c)) || !a2.Get(v, u).Equal(a1.Get(v, u).Mul(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvenUnitRingAllocation(t *testing.T) {
	// Unit ring of even length: α = 1, self-paired; every vertex must give
	// away exactly 1 and receive exactly 1.
	g := graph.Ring(numeric.Ints(1, 1, 1, 1, 1, 1))
	_, a := computeChecked(t, g)
	for v := 0; v < 6; v++ {
		if !a.Utility(v).Equal(numeric.One) {
			t.Errorf("U_%d = %v", v, a.Utility(v))
		}
	}
}

func TestOddUnitRingAllocation(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1, 1, 1))
	_, a := computeChecked(t, g)
	for v := 0; v < 5; v++ {
		if !a.Utility(v).Equal(numeric.One) {
			t.Errorf("U_%d = %v", v, a.Utility(v))
		}
	}
}

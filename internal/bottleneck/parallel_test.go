package bottleneck

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// randomDisconnected builds a graph of several independent components.
func randomDisconnected(rng *rand.Rand) *graph.Graph {
	parts := rng.Intn(3) + 2
	var sizes []int
	total := 0
	for i := 0; i < parts; i++ {
		s := rng.Intn(5) + 2
		sizes = append(sizes, s)
		total += s
	}
	g := graph.New(total)
	base := 0
	for _, s := range sizes {
		ws := graph.RandomWeights(rng, s, graph.WeightDist(rng.Intn(4)))
		for i, w := range ws {
			g.MustSetWeight(base+i, w)
		}
		switch rng.Intn(3) {
		case 0: // path
			for i := 0; i+1 < s; i++ {
				g.MustAddEdge(base+i, base+i+1)
			}
		case 1: // ring (needs ≥ 3)
			for i := 0; i+1 < s; i++ {
				g.MustAddEdge(base+i, base+i+1)
			}
			if s >= 3 {
				g.MustAddEdge(base, base+s-1)
			}
		default: // star
			for i := 1; i < s; i++ {
				g.MustAddEdge(base, base+i)
			}
		}
		base += s
	}
	return g
}

func TestDecomposeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 60; trial++ {
		g := randomDisconnected(rng)
		seq, err := DecomposeWith(g, EngineAuto)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		parl, err := DecomposeParallel(g, EngineAuto, 4)
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if !decompositionsEqual(seq, parl) {
			t.Fatalf("trial %d: parallel %v != sequential %v (weights %v, edges %v)",
				trial, parl, seq, g.Weights(), g.Edges())
		}
	}
}

func TestDecomposeParallelRandomForests(t *testing.T) {
	// Forests of disjoint paths: small integer weights make equal-α ties
	// across components common (exercising the pair-merging path), sprinkled
	// zero weights engage the zero-attachment convention, and a duplicated
	// block forces exact ties half the time.
	rng := rand.New(rand.NewSource(787))
	for trial := 0; trial < 80; trial++ {
		paths := rng.Intn(4) + 2
		var blocks [][]numeric.Rat
		for p := 0; p < paths; p++ {
			s := rng.Intn(5) + 1
			ws := make([]numeric.Rat, s)
			for i := range ws {
				if rng.Intn(8) == 0 {
					ws[i] = numeric.Zero
				} else {
					ws[i] = numeric.FromInt(int64(rng.Intn(4) + 1))
				}
			}
			blocks = append(blocks, ws)
		}
		if rng.Intn(2) == 0 {
			blocks = append(blocks, append([]numeric.Rat(nil), blocks[0]...))
		}
		total := 0
		for _, ws := range blocks {
			total += len(ws)
		}
		g := graph.New(total)
		base := 0
		positive := false
		for _, ws := range blocks {
			for i, w := range ws {
				g.MustSetWeight(base+i, w)
				positive = positive || w.Sign() > 0
				if i > 0 {
					g.MustAddEdge(base+i-1, base+i)
				}
			}
			base += len(ws)
		}
		if !positive {
			g.MustSetWeight(0, numeric.One)
		}
		seq, err := DecomposeWith(g, EngineAuto)
		if err != nil {
			t.Fatalf("trial %d sequential: %v (weights %v)", trial, err, g.Weights())
		}
		parl, err := DecomposeParallel(g, EnginePathDP, 3)
		if err != nil {
			t.Fatalf("trial %d parallel: %v (weights %v)", trial, err, g.Weights())
		}
		if !decompositionsEqual(seq, parl) {
			t.Fatalf("trial %d: parallel %v != sequential %v (weights %v)",
				trial, parl, seq, g.Weights())
		}
	}
}

func TestDecomposeParallelConnectedDelegates(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 100, 1, 5, 5))
	seq, err := DecomposeWith(g, EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := DecomposeParallel(g, EngineAuto, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !decompositionsEqual(seq, parl) {
		t.Fatal("connected graph decomposition differs")
	}
}

func TestDecomposeParallelMergesEqualAlphaTies(t *testing.T) {
	// Two identical heavy-middle paths in one graph: their bottlenecks tie
	// at α = 1/50 and must merge into a single pair, exactly as the global
	// sequential extraction does.
	g := graph.New(6)
	for _, base := range []int{0, 3} {
		g.MustSetWeight(base, numeric.One)
		g.MustSetWeight(base+1, numeric.FromInt(100))
		g.MustSetWeight(base+2, numeric.One)
		g.MustAddEdge(base, base+1)
		g.MustAddEdge(base+1, base+2)
	}
	parl, err := DecomposeParallel(g, EngineAuto, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parl.Pairs) != 1 {
		t.Fatalf("expected one merged pair, got %v", parl)
	}
	if len(parl.Pairs[0].B) != 2 || len(parl.Pairs[0].C) != 4 {
		t.Fatalf("merged pair wrong: %v", parl.Pairs[0])
	}
	seq, err := DecomposeWith(g, EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !decompositionsEqual(seq, parl) {
		t.Fatalf("tie merge differs from sequential: %v vs %v", parl, seq)
	}
}

func TestDecomposeParallelEmptyGraph(t *testing.T) {
	if _, err := DecomposeParallel(graph.New(0), EngineAuto, 2); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestDecompositionIsRelabelingEquivariant(t *testing.T) {
	// Relabeling the vertices by a permutation π must permute the
	// decomposition: pairs map setwise through π with identical α's.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(3)))
		perm := rng.Perm(n)
		h := graph.New(n)
		for v := 0; v < n; v++ {
			h.MustSetWeight(perm[v], g.Weight(v))
		}
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e[0]], perm[e[1]])
		}
		dg, err := Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		dh, err := Decompose(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(dg.Pairs) != len(dh.Pairs) {
			t.Fatalf("trial %d: pair counts differ", trial)
		}
		mapSet := func(xs []int) map[int]bool {
			out := map[int]bool{}
			for _, x := range xs {
				out[perm[x]] = true
			}
			return out
		}
		for i := range dg.Pairs {
			if !dg.Pairs[i].Alpha.Equal(dh.Pairs[i].Alpha) {
				t.Fatalf("trial %d pair %d: α differs", trial, i)
			}
			wantB, wantC := mapSet(dg.Pairs[i].B), mapSet(dg.Pairs[i].C)
			if len(wantB) != len(dh.Pairs[i].B) || len(wantC) != len(dh.Pairs[i].C) {
				t.Fatalf("trial %d pair %d: sizes differ", trial, i)
			}
			for _, v := range dh.Pairs[i].B {
				if !wantB[v] {
					t.Fatalf("trial %d pair %d: B not equivariant", trial, i)
				}
			}
			for _, v := range dh.Pairs[i].C {
				if !wantC[v] {
					t.Fatalf("trial %d pair %d: C not equivariant", trial, i)
				}
			}
		}
	}
}

func TestUnionSortedInts(t *testing.T) {
	got := unionSortedInts([]int{1, 4, 9}, []int{2, 3, 10})
	want := []int{1, 2, 3, 4, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if len(unionSortedInts(nil, nil)) != 0 {
		t.Fatal("empty union wrong")
	}
}

// Package par provides the small deterministic parallelism helpers used by
// the dynamics simulator and the experiment sweeps: bounded worker pools
// over index ranges, with panics propagated to the caller.
//
// The helpers are deliberately synchronous (fork-join): every call returns
// only after all work items completed, so callers can treat them as drop-in
// replacements for sequential loops. Work is handed out by atomic counter,
// which keeps the schedule dynamic (good for skewed item costs) while the
// results remain deterministic because items never share mutable state.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Workers returns the effective worker count for a requested value: n itself
// when n ≥ 1, otherwise GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers ≤ 0 means GOMAXPROCS). It panics with the first worker panic, if
// any, after all workers have stopped.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("par: worker panicked: %v", panicVal))
	}
}

// Map applies fn to every index in [0, n) and collects the results in order.
func Map[R any](n, workers int, fn func(i int) R) []R {
	out := make([]R, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ForEachCtx is ForEach with the caller's context threaded to every
// invocation. When the context carries an obs span, the fan-out shape is
// recorded on it (par_items / par_workers counters), so traces show how a
// parallel phase spread its work; with no span installed the overhead is a
// single context lookup.
func ForEachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int)) {
	if sp := obs.FromContext(ctx); sp != nil && n > 0 {
		w := Workers(workers)
		if w > n {
			w = n
		}
		sp.AddInt("par_items", int64(n))
		sp.AddInt("par_workers", int64(w))
	}
	ForEach(n, workers, func(i int) { fn(ctx, i) })
}

// MapCtx is Map with the caller's context threaded to every invocation,
// recording the fan-out on the context's obs span as in ForEachCtx.
func MapCtx[R any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) R) []R {
	out := make([]R, n)
	ForEachCtx(ctx, n, workers, func(ctx context.Context, i int) {
		out[i] = fn(ctx, i)
	})
	return out
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Durable job placement: POST /v1/jobs is routed like any compute request,
// but the router additionally records a TTL lease binding the accepted job
// to its owning node. The supervision loop renews leases by polling the
// owner's job detail — capturing every new checkpoint point into the lease
// — and re-places the job on a survivor, seeded with that checkpoint, when
// the owner dies or the lease expires. Content-addressed job IDs make the
// re-placement idempotent, and exact arithmetic makes the final result
// bit-identical to an uninterrupted single-node run.

// jobPlacementKey derives the ring key of a job submission. Sweep jobs use
// the mechanism-scoped instance key — the same placement as the inline
// endpoints, so a job lands where its instance cache is warm. Other kinds
// hash their canonical (re-marshaled) submission body.
func jobPlacementKey(req *server.JobSubmitRequest) (string, bool) {
	switch req.Kind {
	case "", "sweep":
		key, err := server.PlacementKey(&req.Graph, req.Mechanism)
		if err != nil {
			return "", false
		}
		return key, true
	default:
		canon, err := json.Marshal(req)
		if err != nil {
			return "", false
		}
		return "jobs|" + req.Kind + "|" + string(canon), true
	}
}

// handleJobSubmit places one durable job under a lease.
func (r *Router) handleJobSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "unreadable request body")
		return
	}
	var sub server.JobSubmitRequest
	if err := json.Unmarshal(body, &sub); err != nil {
		// Forward anyway: the backend produces the catalogue 400.
		r.forward(req.Context(), w, req, "/v1/jobs", body, r.aliveSequence("/v1/jobs"), nil)
		return
	}
	key, keyed := jobPlacementKey(&sub)
	if !keyed {
		key = "/v1/jobs"
	}
	ctx := req.Context()
	seq := r.aliveSequence(key)
	if len(seq) == 0 {
		writeError(w, http.StatusServiceUnavailable, CodeNoBackends, "no live backend nodes")
		return
	}
	if len(seq) > 2 {
		seq = seq[:2] // single-retry hedging, like every proxied request
	}
	var lastErr error
	for i, node := range seq {
		if i > 0 {
			r.failovers.Add(1)
		}
		status, hdr, respBody, err := r.exchange(ctx, node, req, "/v1/jobs", body)
		if err != nil || status == http.StatusBadGateway || status == http.StatusGatewayTimeout {
			if err == nil {
				err = fmt.Errorf("cluster: node %s answered %d", node, status)
			}
			lastErr = err
			continue
		}
		if status == http.StatusAccepted || status == http.StatusOK {
			var jr server.JobSubmitResponse
			if err := json.Unmarshal(respBody, &jr); err == nil && jr.Job.ID != "" && !terminalState(jr.Job.State) {
				ls := &Lease{
					JobID:  jr.Job.ID,
					Node:   node,
					Kind:   jr.Job.Kind,
					Key:    key,
					Expiry: time.Now().Add(r.cfg.LeaseTTL).UnixNano(),
					Body:   json.RawMessage(body),
				}
				if err := r.leases.grant(ctx, ls); err != nil {
					// The backend accepted the job but the placement is
					// unrecorded — an unsupervised job would never fail over.
					// Fail the request instead: resubmission dedupes to the
					// same job ID and only the grant is retried.
					r.log.Warn("lease grant failed", "job", jr.Job.ID, "err", err)
					writeErrorDetail(w, http.StatusServiceUnavailable, CodeLeaseUnavailable,
						"job accepted but lease not persisted; retry the submission", err.Error())
					return
				}
				r.leaseGrants.Add(1)
			}
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway,
		"backend placement and failover replica both failed", fmt.Sprint(lastErr))
}

// handleJobGet proxies a job lookup to its lease owner; jobs the router
// never placed (or whose lease is retired) are searched across the live
// membership.
func (r *Router) handleJobGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if ls, ok := r.leases.get(id); ok {
		if r.members.alive(ls.Node) {
			r.forward(req.Context(), w, req, "/v1/jobs/"+id, nil, []string{ls.Node}, nil)
			return
		}
		// The owner is down and re-placement is pending: answer from the
		// lease's observed checkpoint so pollers see a queued job making its
		// way to a survivor instead of a spurious 404.
		writeJSON(w, http.StatusOK, server.WireJob{
			ID: ls.JobID, Kind: ls.Kind, State: "queued",
			NextIndex: len(ls.Points), Points: ls.Points,
		})
		return
	}
	r.fanFind(w, req, id)
}

// handleJobCancel proxies a cancellation and retires the lease once the
// backend confirms: a canceled job must not be resurrected by re-placement.
func (r *Router) handleJobCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	nodes := r.aliveSequence(id)
	if ls, ok := r.leases.get(id); ok && r.members.alive(ls.Node) {
		nodes = []string{ls.Node}
	}
	var lastErr error
	for _, node := range nodes {
		status, hdr, respBody, err := r.exchange(req.Context(), node, req, "/v1/jobs/"+id, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if status == http.StatusNotFound && len(nodes) > 1 {
			continue
		}
		if status < http.StatusMultipleChoices || status == http.StatusConflict {
			if err := r.leases.retire(req.Context(), id); err != nil {
				r.log.Warn("lease retire failed", "job", id, "err", err)
			} else {
				r.leaseRetired.Add(1)
			}
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	if lastErr != nil {
		writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway, "no backend could cancel the job", lastErr.Error())
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "no such job on any live node")
}

// fanFind asks every live node for the job and forwards the first non-404.
func (r *Router) fanFind(w http.ResponseWriter, req *http.Request, id string) {
	var lastErr error
	for _, node := range r.aliveSequence(id) {
		status, hdr, respBody, err := r.exchange(req.Context(), node, req, "/v1/jobs/"+id, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if status == http.StatusNotFound {
			continue
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	if lastErr != nil {
		writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway, "job lookup failed on every live node", lastErr.Error())
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "no such job on any live node")
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// superviseLeases is one pass of the lease loop: poll every leased job's
// owner, renew with the freshly observed checkpoint, retire finished jobs,
// and re-place jobs whose owner is dead, gone, or silent past the TTL.
func (r *Router) superviseLeases(ctx context.Context) {
	for _, ls := range r.leases.all() {
		now := time.Now()
		job, status, err := r.pollJob(ctx, ls.Node, ls.JobID)
		switch {
		case err == nil && status == http.StatusOK && terminalState(job.State):
			if rerr := r.leases.retire(ctx, ls.JobID); rerr != nil {
				r.log.Warn("lease retire failed", "job", ls.JobID, "err", rerr)
			} else {
				r.leaseRetired.Add(1)
			}
		case err == nil && status == http.StatusOK:
			start := len(ls.Points)
			var delta []server.WireSweepPoint
			if len(job.Points) > start {
				delta = job.Points[start:]
			}
			if rerr := r.leases.renew(ctx, ls.JobID, now.Add(r.cfg.LeaseTTL), start, delta, job.NextIndex); rerr != nil {
				// A failed renewal (lease fault site, write error) is only a
				// missed heartbeat: the lease keeps its old expiry and the
				// next pass retries. Degradation, not corruption.
				r.log.Warn("lease renew failed", "job", ls.JobID, "err", rerr)
			} else {
				r.leaseRenewals.Add(1)
			}
		case err == nil && status == http.StatusNotFound:
			// The owner lost the job (wiped store): re-place now.
			r.replaceLease(ctx, ls)
		default:
			// Owner unreachable or answering garbage. Re-place once it is
			// declared dead or the lease has expired — not before, so a
			// single slow poll doesn't double-run a healthy job.
			if !r.members.alive(ls.Node) || now.UnixNano() > ls.Expiry {
				r.replaceLease(ctx, ls)
			}
		}
	}
}

// pollJob fetches one job's detail view from a node.
func (r *Router) pollJob(ctx context.Context, node, id string) (*server.WireJob, int, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	ctx, sp := obs.Start(ctx, "router.lease_poll")
	sp.SetAttr("node", node)
	defer sp.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, nil
	}
	var job server.WireJob
	if err := json.Unmarshal(raw, &job); err != nil {
		return nil, 0, fmt.Errorf("cluster: job detail from %s: %w", node, err)
	}
	return &job, resp.StatusCode, nil
}

// replaceLease re-places a lost job on a survivor, seeding the submission
// with the lease's observed checkpoint so the new owner resumes instead of
// restarting. The original body is replayed — content addressing gives the
// identical job ID — with only the Checkpoint field added.
func (r *Router) replaceLease(ctx context.Context, ls Lease) {
	var survivors []string
	for _, n := range r.aliveSequence(ls.Key) {
		if n != ls.Node {
			survivors = append(survivors, n)
		}
	}
	if len(survivors) == 0 {
		// The old owner may be the only live node (e.g. its store was wiped
		// but the process lives): resubmitting there is still correct.
		if r.members.alive(ls.Node) {
			survivors = []string{ls.Node}
		} else {
			r.log.Warn("no survivor for lease; will retry", "job", ls.JobID)
			return
		}
	}
	var sub server.JobSubmitRequest
	if err := json.Unmarshal(ls.Body, &sub); err != nil {
		r.log.Error("lease body undecodable; dropping lease", "job", ls.JobID, "err", err)
		if rerr := r.leases.retire(ctx, ls.JobID); rerr != nil {
			r.log.Warn("lease retire failed", "job", ls.JobID, "err", rerr)
		}
		return
	}
	sub.Checkpoint = &server.JobCheckpoint{NextIndex: len(ls.Points), Points: ls.Points}
	body, err := json.Marshal(&sub)
	if err != nil {
		r.log.Error("lease re-placement encode failed", "job", ls.JobID, "err", err)
		return
	}
	node := survivors[0]
	status, _, respBody, err := r.postJSON(ctx, node, "/v1/jobs", body)
	if err != nil || (status != http.StatusAccepted && status != http.StatusOK) {
		r.log.Warn("lease re-placement failed; will retry", "job", ls.JobID, "node", node,
			"status", status, "err", err)
		return
	}
	var jr server.JobSubmitResponse
	if err := json.Unmarshal(respBody, &jr); err != nil || jr.Job.ID == "" {
		r.log.Warn("lease re-placement answer undecodable; will retry", "job", ls.JobID, "node", node)
		return
	}
	if terminalState(jr.Job.State) {
		// The survivor already has the finished job (it ran there before).
		if rerr := r.leases.retire(ctx, ls.JobID); rerr == nil {
			r.leaseRetired.Add(1)
		}
		return
	}
	nls := &Lease{
		JobID:     jr.Job.ID,
		Node:      node,
		Kind:      ls.Kind,
		Key:       ls.Key,
		Expiry:    time.Now().Add(r.cfg.LeaseTTL).UnixNano(),
		Body:      ls.Body,
		NextIndex: len(ls.Points),
		Points:    ls.Points,
	}
	if err := r.leases.grant(ctx, nls); err != nil {
		r.log.Warn("re-placement lease grant failed; will retry", "job", ls.JobID, "err", err)
		return
	}
	r.leaseReplaced.Add(1)
	r.log.Info("job re-placed", "job", ls.JobID, "from", ls.Node, "to", node,
		"resume_from", len(ls.Points))
}

// postJSON performs one bare POST (no statusWriter plumbing) for the lease
// loop.
func (r *Router) postJSON(ctx context.Context, node, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, raw, nil
}

// Command certenum runs the exhaustive small-n certificate enumeration:
// every canonical ring over the integer weight lattice is solved, certified
// and re-verified by the solver-free checker (internal/cert), and the run
// fails loudly — nonzero exit — if any instance fails certification or any
// certified ratio exceeds the paper's bound 2.
//
// Usage:
//
//	certenum [-min-n 3] [-max-n 6] [-levels 3] [-grid 8] [-eps 1/2]
//	         [-workers N] [-frontier FILE] [-timeout 25s]
//
// The summary is printed as JSON on stdout. With -frontier, the near-tight
// instances (ratio ≥ 2 − eps) are archived to FILE as JSON, ready to feed
// fuzz corpora or regression suites. ci.sh runs this as its enumeration
// smoke with a hard timeout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"os"
	"time"

	"repro/internal/cert/enum"
	"repro/internal/numeric"
)

func main() {
	minN := flag.Int("min-n", 3, "smallest ring size")
	maxN := flag.Int("max-n", 6, "largest ring size (≤ 10)")
	levels := flag.Int("levels", 3, "integer weight levels 1..L (≤ 6)")
	grid := flag.Int("grid", 8, "split-optimizer grid per instance")
	epsStr := flag.String("eps", "1/2", "frontier threshold: archive ratio ≥ 2−eps")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	frontier := flag.String("frontier", "", "write frontier instances to this JSON file")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = none)")
	flag.Parse()

	eps, ok := new(big.Rat).SetString(*epsStr)
	if !ok || eps.Sign() <= 0 {
		fail("bad -eps %q", *epsStr)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	sum, err := enum.Run(ctx, enum.Options{
		MinN:    *minN,
		MaxN:    *maxN,
		Levels:  *levels,
		Grid:    *grid,
		Eps:     numeric.FromBig(eps),
		Workers: *workers,
	})
	if err != nil {
		fail("enumeration: %v", err)
	}

	out := struct {
		*enum.Summary
		Elapsed string `json:"elapsed"`
	}{sum, time.Since(start).Round(time.Millisecond).String()}
	encodeTo(os.Stdout, out)

	if *frontier != "" {
		f, err := os.Create(*frontier)
		if err != nil {
			fail("frontier archive: %v", err)
		}
		encodeTo(f, sum.Frontier)
		if err := f.Close(); err != nil {
			fail("frontier archive: %v", err)
		}
	}

	if n := len(sum.Failures); n > 0 {
		fail("%d of %d instances failed certification (first: %s: %s)",
			n, sum.Instances, sum.Failures[0].Key, sum.Failures[0].Err)
	}
	maxR, ok := new(big.Rat).SetString(sum.MaxRatio)
	if !ok {
		fail("unparsable max ratio %q", sum.MaxRatio)
	}
	if numeric.Two.Less(numeric.FromBig(maxR)) {
		fail("max certified ratio %s at %s exceeds the Theorem 8 bound 2", sum.MaxRatio, sum.MaxKey)
	}
}

func encodeTo(f *os.File, v any) {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail("encode: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "certenum: "+format+"\n", args...)
	os.Exit(1)
}

package repro

import "context"

// Legacy API
//
// The wrappers in this file preserve the pre-options call shapes from
// before the context-first facade (PR 3) and the mechanism registry (PR 8).
// Each is a thin delegation into the modern facade — and therefore now
// routes through the mechanism registry's "bd" backend — returning
// bit-identical results to both its original implementation and the
// equivalent facade call (the 50-instance equivalence corpus in
// facade_test.go pins this). They take no Option and always run the
// default BD mechanism; new code should call the facade directly.

// DecomposeWith decomposes g under an explicit engine.
//
// Deprecated: use Decompose(ctx, g, WithEngine(engine)).
func DecomposeWith(g *Graph, engine Engine) (*Decomposition, error) {
	return Decompose(context.Background(), g, WithEngine(engine))
}

// DecomposeParallel decomposes each connected component concurrently and
// merges the pair sequences by α (exact; see internal/bottleneck).
//
// Deprecated: use Decompose(ctx, g, WithWorkers(workers)).
func DecomposeParallel(g *Graph, workers int) (*Decomposition, error) {
	return Decompose(context.Background(), g, WithWorkers(workers))
}

// AllocateDecomposed runs the BD Allocation Mechanism over a precomputed
// decomposition.
//
// Deprecated: use Allocate(ctx, g, WithDecomposition(d)).
func AllocateDecomposed(g *Graph, d *Decomposition) (*Allocation, error) {
	return Allocate(context.Background(), g, WithDecomposition(d))
}

// RingRatio returns ζ_v under the optimizer's default settings.
//
// Deprecated: use IncentiveRatio(ctx, g, v).
func RingRatio(g *Graph, v int) (Rat, error) {
	return IncentiveRatio(context.Background(), g, v)
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestOptimizeNeverExceedsTwo(t *testing.T) {
	// Theorem 8, upper bound: every exactly-evaluated split is ≤ 2·U_v.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.Optimize(OptimizeOptions{Grid: 24})
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Two.Less(opt.Ratio) {
			t.Fatalf("trial %d: ratio %v > 2 on ring %v (v=%d, w1*=%v)",
				trial, opt.Ratio, g.Weights(), v, opt.BestW1)
		}
		if opt.Ratio.Less(numeric.One) {
			t.Fatalf("trial %d: ratio %v < 1 — optimizer worse than honest split", trial, opt.Ratio)
		}
	}
}

func TestOptimizeBeatsDenseGrid(t *testing.T) {
	// The piece-aware optimizer must be at least as good as a much denser
	// naive grid.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(5) + 4
		g := graph.RandomRing(rng, n, graph.DistUniform)
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.Optimize(OptimizeOptions{Grid: 16})
		if err != nil {
			t.Fatal(err)
		}
		const dense = 400
		for i := 0; i <= dense; i++ {
			w1 := in.W().MulInt(int64(i)).DivInt(dense)
			ev, err := in.EvalSplit(w1)
			if err != nil {
				t.Fatal(err)
			}
			if opt.BestU.Less(ev.U) {
				t.Fatalf("trial %d: dense grid found %v at w1=%v, optimizer only %v at %v",
					trial, ev.U, w1, opt.BestU, opt.BestW1)
			}
		}
	}
}

func TestOptimizeKnownGain(t *testing.T) {
	// n=9 unit ring with heavy vertex: ratio converges to 5/3 (k=2 member
	// of the lower-bound family); with H = 100 it is already > 1.65.
	g, v, err := LowerBoundFamily(2, numeric.FromInt(100))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(g, v)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Ratio.Float64() < 1.65 {
		t.Fatalf("ratio = %v, expected > 1.65", opt.Ratio)
	}
	if numeric.Two.Less(opt.Ratio) {
		t.Fatalf("ratio = %v > 2", opt.Ratio)
	}
	if len(opt.Pieces) == 0 {
		t.Fatal("no piece certificate recorded")
	}
	// Pieces must tile [0, W] in order.
	if !opt.Pieces[0].Lo.IsZero() || !opt.Pieces[len(opt.Pieces)-1].Hi.Equal(in.W()) {
		t.Fatalf("pieces do not span [0, w_v]: %v..%v",
			opt.Pieces[0].Lo, opt.Pieces[len(opt.Pieces)-1].Hi)
	}
	for i := 0; i+1 < len(opt.Pieces); i++ {
		if opt.Pieces[i+1].Lo.Less(opt.Pieces[i].Hi) {
			t.Fatalf("pieces overlap at %d", i)
		}
	}
}

func TestLowerBoundFamilyApproachesTwo(t *testing.T) {
	heavy := numeric.FromInt(1000000)
	prev := numeric.Zero
	for _, k := range []int{1, 2, 4, 8} {
		g, v, err := LowerBoundFamily(k, heavy)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RingRatio(g, v, OptimizeOptions{Grid: 96})
		if err != nil {
			t.Fatal(err)
		}
		limit := LowerBoundLimitRatio(k)
		if r.Float64() < limit.Float64()-1e-3 {
			t.Fatalf("k=%d: measured %v well below limit %v", k, r.Float64(), limit)
		}
		if numeric.Two.Less(r) {
			t.Fatalf("k=%d: ratio %v > 2", k, r)
		}
		if r.LessEq(prev) {
			t.Fatalf("k=%d: family ratio not increasing: %v after %v", k, r, prev)
		}
		prev = r
	}
	// The limit sequence itself tends to 2.
	if LowerBoundLimitRatio(1000).Float64() < 1.99 {
		t.Fatal("limit ratio formula wrong")
	}
}

func TestOptimizerSnapsBreakpointsToSimpleRationals(t *testing.T) {
	// On ring (93, 30, 32, 22, 56, 12) with v = 1 the structure boundaries
	// are ratios of weight sums; after Stern–Brocot snapping at least one
	// recorded piece edge must be exactly such a small rational (denominator
	// well below the 2^48 bisection dust).
	g := graph.Ring(numeric.Ints(93, 30, 32, 22, 56, 12))
	in, err := NewInstance(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(OptimizeOptions{Grid: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Pieces) < 2 {
		t.Fatalf("expected multiple pieces, got %d", len(opt.Pieces))
	}
	smallDen := 0
	for _, p := range opt.Pieces[1:] {
		if _, den, ok := p.Lo.Int64Parts(); ok && den < 1_000_000 {
			smallDen++
		}
	}
	if smallDen == 0 {
		for _, p := range opt.Pieces {
			t.Logf("piece [%v, %v]", p.Lo, p.Hi)
		}
		t.Fatal("no snapped (small-denominator) piece boundary found")
	}
}

func TestLowerBoundFamilyValidation(t *testing.T) {
	if _, _, err := LowerBoundFamily(-1, numeric.One); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := LowerBoundFamily(1, numeric.Zero); err == nil {
		t.Error("zero heavy weight accepted")
	}
}

func TestOptimizerTieBreaksTowardHonestSplit(t *testing.T) {
	// Regression: on ring (34,41,28,35,53,29,38,48) with v = 1 the whole
	// ring is one α = 1 pair and no split gains (ratio 1); many splits tie
	// at the optimum. The optimizer must return the honest split itself —
	// an arbitrary co-optimal split sends the stage analysis on a walk
	// between two optima where Lemma 16's sign genuinely fails.
	g := graph.Ring(numeric.Ints(34, 41, 28, 35, 53, 29, 38, 48))
	in, err := NewInstance(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(OptimizeOptions{Grid: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Ratio.Equal(numeric.One) {
		t.Fatalf("ratio = %v, want 1", opt.Ratio)
	}
	if !opt.BestW1.Equal(in.W1Zero) {
		t.Fatalf("tie not broken toward honest split: w1* = %v, w1⁰ = %v", opt.BestW1, in.W1Zero)
	}
	rep, err := in.AnalyzeStages(opt.BestW1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllChecksPass() {
		t.Fatal("stage checks failed at the honest optimum")
	}
}

func TestOptimizeUnitRingNoGain(t *testing.T) {
	// Perfect symmetry: no Sybil gain on unit rings.
	for _, n := range []int{3, 4, 5, 6} {
		ws := make([]numeric.Rat, n)
		for i := range ws {
			ws[i] = numeric.One
		}
		in, err := NewInstance(graph.Ring(ws), 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.Optimize(OptimizeOptions{Grid: 16})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Ratio.Equal(numeric.One) {
			t.Errorf("n=%d: unit ring ratio = %v, want 1", n, opt.Ratio)
		}
	}
}

func TestVerifyTheorem8EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(6) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(n)
		verdict, err := VerifyTheorem8(g, v, OptimizeOptions{Grid: 16})
		if err != nil {
			t.Fatal(err)
		}
		if !verdict.LeqTwo {
			t.Fatalf("trial %d: Theorem 8 violated: ratio %v on %v", trial, verdict.Ratio, g.Weights())
		}
		if verdict.Stages == nil || len(verdict.Stages.Checks) == 0 {
			t.Fatal("missing stage report")
		}
	}
}

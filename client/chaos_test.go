package client

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/server"
)

// chaosRules arms every registered injection site with a finite fault
// budget: deterministic 1/N triggers (plus one latency rule) whose limits
// guarantee the budget drains, so retries must converge. Panic rules cover
// both containment barriers — the handler barrier (server.compute) and the
// worker/batch barriers (sweep.point, maxflow.push escalation).
func chaosRules() []fault.Rule {
	return []fault.Rule{
		{Site: fault.SiteCacheGet, Kind: fault.KindError, Every: 7, Limit: 25},
		{Site: fault.SiteServerCompute, Kind: fault.KindError, Every: 9, Limit: 20},
		{Site: fault.SiteServerCompute, Kind: fault.KindPanic, Every: 23, Limit: 6},
		{Site: fault.SiteServerBatch, Kind: fault.KindError, Every: 2, Limit: 6},
		{Site: fault.SiteDinkelbach, Kind: fault.KindError, Every: 50, Limit: 15},
		{Site: fault.SiteMaxflowPush, Kind: fault.KindError, Every: 400, Limit: 10},
		{Site: fault.SiteSweepPoint, Kind: fault.KindError, Every: 11, Limit: 15},
		{Site: fault.SiteSweepPoint, Kind: fault.KindPanic, Every: 131, Limit: 4},
		{Site: fault.SiteScenarioPoint, Kind: fault.KindError, Every: 13, Limit: 10},
		{Site: fault.SiteJobsWAL, Kind: fault.KindError, Every: 4, Limit: 6},
		{Site: fault.SiteJobsRecover, Kind: fault.KindError, Every: 1, Limit: 2},
		{Site: "*", Kind: fault.KindLatency, Every: 100, Latency: 100 * time.Microsecond, Limit: 100},
	}
}

// chaosJobsPhase runs the durable-jobs leg of the chaos replay: a sweep job
// driven to completion against WAL-append faults (bit-identical to the
// clean inline sweep), then a re-boot over the populated store that must
// survive injected recovery faults by retrying.
func chaosJobsPhase(t *testing.T, ctx context.Context, clean *Client, injector *fault.Injector) {
	t.Helper()
	dataDir := t.TempDir()
	cfg := server.Config{MaxQueueDepth: -1, Chaos: injector, DataDir: dataDir}

	// boot retries server.New until the recover-fault budget lets a boot
	// through; over a populated store each pending job is a jobs.recover hit.
	boot := func() (*server.Server, *httptest.Server) {
		for attempt := 1; ; attempt++ {
			srv, err := server.New(withDiscardLogger(cfg))
			if err == nil {
				return srv, httptest.NewServer(srv.Handler())
			}
			if attempt >= 20 {
				t.Fatalf("server boot did not converge under recovery faults: %v", err)
			}
		}
	}
	srv, ts := boot()
	jc := New(ts.URL, WithSeed(5), WithMaxAttempts(30), WithBackoff(time.Millisecond, 4*time.Millisecond))
	ring := Graph{Ring: []string{"1", "3/2", "2", "5", "7/3"}}

	// Drive one job to done: submissions retry through injected 503s, and a
	// job failed by a checkpoint-write fault restarts (from its checkpoint)
	// on resubmission.
	var job *Job
	for attempt := 1; ; attempt++ {
		sub, err := jc.SubmitSweep(ctx, &JobSubmitRequest{Graph: ring, V: 2, Grid: 16})
		if err != nil {
			t.Fatalf("chaos job submit: %v", err)
		}
		job, err = jc.WaitJob(ctx, sub.Job.ID)
		if err != nil {
			t.Fatalf("chaos job wait: %v", err)
		}
		if job.State == JobDone {
			break
		}
		if job.State != JobFailed {
			t.Fatalf("chaos job settled as %q (error %q)", job.State, job.Error)
		}
		if attempt >= 20 {
			t.Fatalf("chaos job did not converge: still failing with %q", job.Error)
		}
	}
	var got SweepResponse
	if err := json.Unmarshal(job.Result, &got); err != nil {
		t.Fatalf("chaos job result: %v", err)
	}
	want, err := clean.Sweep(ctx, &SweepRequest{Graph: ring, V: 2, Grid: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("job result diverged under chaos:\ngot:  %+v\nwant: %+v", got, want)
	}

	// Leave pending work behind so the re-boot's recovery has jobs to walk
	// (and faults to absorb), then boot again over the same store.
	if _, err := jc.SubmitSweep(ctx, &JobSubmitRequest{Graph: ring, V: 0, Grid: 2048}); err != nil {
		t.Fatalf("chaos big job submit: %v", err)
	}
	if _, err := jc.SubmitSweep(ctx, &JobSubmitRequest{Graph: ring, V: 1, Grid: 2048}); err != nil {
		t.Fatalf("chaos big job submit: %v", err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close chaos jobs server: %v", err)
	}
	srv2, ts2 := boot()
	t.Cleanup(func() { ts2.Close(); srv2.Close() })

	// The done job survived both the crash-free shutdown and the faulted
	// recovery bit-identically.
	after, err := New(ts2.URL, WithSeed(6), WithMaxAttempts(30),
		WithBackoff(time.Millisecond, 4*time.Millisecond)).GetJob(ctx, job.ID)
	if err != nil {
		t.Fatalf("get job after reboot: %v", err)
	}
	if after.State != JobDone || string(after.Result) != string(job.Result) {
		t.Fatalf("job changed across reboot: state %q", after.State)
	}
}

// withDiscardLogger fills in a quiet logger without mutating the shared cfg.
func withDiscardLogger(cfg server.Config) server.Config {
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return cfg
}

// wireOf renders a graph in explicit wire form.
func wireOf(g *graph.Graph) Graph {
	ws := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		ws[v] = g.Weight(v).String()
	}
	return Graph{N: g.N(), Weights: ws, Edges: g.Edges()}
}

// TestChaosReplayConvergesBitIdentical replays the 100-instance differential
// corpus against a server with seeded fault injection armed at every site,
// through the retrying client. The assertions are the resilience contract:
//
//   - the server process never dies (an escaped panic would kill this test
//     binary — both servers run in-process),
//   - every request eventually succeeds (the fault budget is finite and
//     retries advance the hit counters), and
//   - every answer is bit-identical to the same request against a fault-free
//     server: injection may delay an answer, never change it.
func TestChaosReplayConvergesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	injector, err := fault.New(20260805, chaosRules()...)
	if err != nil {
		t.Fatal(err)
	}
	clean := newService(t, server.Config{MaxQueueDepth: -1})
	chaotic := newService(t, server.Config{MaxQueueDepth: -1, Chaos: injector})

	ctx := context.Background()
	cc := New(clean.URL, WithSeed(1))
	fc := New(chaotic.URL, WithSeed(99), WithMaxAttempts(30), WithBackoff(time.Millisecond, 4*time.Millisecond))

	// Same corpus as the server's differential suite: seed, sizes, shapes.
	rng := rand.New(rand.NewSource(20260805))
	dists := []graph.WeightDist{graph.DistUniform, graph.DistSkewed, graph.DistPowers, graph.DistUnit}
	const instances = 100
	for i := 0; i < instances; i++ {
		n := 3 + rng.Intn(6)
		dist := dists[i%len(dists)]
		var g *graph.Graph
		isRing := false
		switch i % 3 {
		case 0:
			g = graph.RandomRing(rng, n, dist)
			isRing = true
		case 1:
			g = graph.Path(graph.RandomWeights(rng, n, dist))
		default:
			g = graph.RandomTree(rng, n, dist)
		}
		wg := wireOf(g)

		// Engine flow keeps the max-flow kernels (and their escalated panic
		// containment) in the replay on every instance.
		wantDec, err := cc.Decompose(ctx, &DecomposeRequest{Graph: wg, Engine: "flow"})
		if err != nil {
			t.Fatalf("instance %d: clean decompose: %v", i, err)
		}
		gotDec, err := fc.Decompose(ctx, &DecomposeRequest{Graph: wg, Engine: "flow"})
		if err != nil {
			t.Fatalf("instance %d: chaos decompose did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotDec, wantDec) {
			t.Fatalf("instance %d: decompose diverged under chaos:\ngot:  %+v\nwant: %+v", i, gotDec, wantDec)
		}

		wantU, err := cc.Utilities(ctx, &UtilitiesRequest{Graph: wg})
		if err != nil {
			t.Fatalf("instance %d: clean utilities: %v", i, err)
		}
		gotU, err := fc.Utilities(ctx, &UtilitiesRequest{Graph: wg})
		if err != nil {
			t.Fatalf("instance %d: chaos utilities did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotU, wantU) {
			t.Fatalf("instance %d: utilities diverged under chaos:\ngot:  %+v\nwant: %+v", i, gotU, wantU)
		}

		if !isRing {
			continue
		}
		v := rng.Intn(n)
		const grid = 8
		wantR, err := cc.Ratio(ctx, &RatioRequest{Graph: wg, V: v, Grid: grid})
		if err != nil {
			t.Fatalf("instance %d: clean ratio: %v", i, err)
		}
		gotR, err := fc.Ratio(ctx, &RatioRequest{Graph: wg, V: v, Grid: grid})
		if err != nil {
			t.Fatalf("instance %d: chaos ratio did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotR, wantR) {
			t.Fatalf("instance %d: ratio diverged under chaos:\ngot:  %+v\nwant: %+v", i, gotR, wantR)
		}

		wantS, err := cc.Sweep(ctx, &SweepRequest{Graph: wg, V: v, Grid: grid})
		if err != nil {
			t.Fatalf("instance %d: clean sweep: %v", i, err)
		}
		gotS, err := fc.SweepAll(ctx, &SweepRequest{Graph: wg, V: v, Grid: grid})
		if err != nil {
			t.Fatalf("instance %d: chaos sweep did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotS, wantS) {
			t.Fatalf("instance %d: sweep diverged under chaos:\ngot:  %+v\nwant: %+v", i, gotS, wantS)
		}

		// A k-identity scenario scan keeps the scenario.point site in the
		// replay on every ring instance.
		screq := &ScenarioRequest{Kind: "ksybil", Graph: wg, V: v, K: 3, Grid: 4}
		wantSc, err := cc.Scenario(ctx, screq)
		if err != nil {
			t.Fatalf("instance %d: clean scenario: %v", i, err)
		}
		gotSc, err := fc.Scenario(ctx, screq)
		if err != nil {
			t.Fatalf("instance %d: chaos scenario did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotSc, wantSc) {
			t.Fatalf("instance %d: scenario diverged under chaos:\ngot:  %+v\nwant: %+v", i, gotSc, wantSc)
		}
	}

	// Durable jobs under the same fault budget. WAL-append faults fail
	// submissions (retried by the client) and checkpoint writes (failing the
	// job; resubmission restarts it from its checkpoint), and recover faults
	// abort boots over a populated store — all of which must converge once
	// the budget drains, with the final result still bit-identical.
	chaosJobsPhase(t, ctx, cc, injector)

	// The replay must actually have exercised every site: a silent dead rule
	// would make the whole suite vacuous. The cluster.* sites live in the
	// router, not the server, so they cannot fire here — their chaos leg is
	// TestClusterChaosReplay in internal/cluster.
	stats := injector.Stats()
	for _, site := range fault.Sites() {
		if strings.HasPrefix(site, "cluster.") {
			continue
		}
		st, ok := stats[site]
		if !ok || st.Hits == 0 {
			t.Errorf("site %s was never hit", site)
		} else if st.Injected == 0 {
			t.Errorf("site %s was hit %d times but never injected", site, st.Hits)
		}
	}

	// And the contained panics must show up in the server's own accounting.
	resp, err := http.Get(chaotic.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := regexp.MustCompile(`(?m)^irshared_panics_total (\d+)$`).FindSubmatch(raw)
	if m == nil {
		t.Fatal("no irshared_panics_total in /metrics")
	}
	if n, _ := strconv.Atoi(string(m[1])); n == 0 {
		t.Error("panic rules fired but irshared_panics_total is 0")
	}
}

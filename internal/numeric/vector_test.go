package numeric

import (
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	if got := Sum(nil); !got.IsZero() {
		t.Errorf("Sum(nil) = %v", got)
	}
	xs := []Rat{New(1, 2), New(1, 3), New(1, 6)}
	if got := Sum(xs); !got.Equal(One) {
		t.Errorf("Sum = %v, want 1", got)
	}
}

func TestSumIndexed(t *testing.T) {
	w := Ints(10, 20, 30, 40)
	if got := SumIndexed(w, []int{0, 2}); !got.Equal(FromInt(40)) {
		t.Errorf("SumIndexed = %v, want 40", got)
	}
	if got := SumIndexed(w, nil); !got.IsZero() {
		t.Errorf("SumIndexed(empty) = %v", got)
	}
}

func TestDot(t *testing.T) {
	a := Ints(1, 2, 3)
	b := []Rat{New(1, 2), New(1, 2), New(1, 3)}
	if got := Dot(a, b); !got.Equal(New(5, 2)) {
		t.Errorf("Dot = %v, want 5/2", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot(Ints(1), Ints(1, 2))
}

func TestMinOfMaxOf(t *testing.T) {
	xs := []Rat{New(1, 2), New(-3, 4), Two}
	if got := MinOf(xs); !got.Equal(New(-3, 4)) {
		t.Errorf("MinOf = %v", got)
	}
	if got := MaxOf(xs); !got.Equal(Two) {
		t.Errorf("MaxOf = %v", got)
	}
}

func TestMinOfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinOf(empty) did not panic")
		}
	}()
	MinOf(nil)
}

func TestEqualSlices(t *testing.T) {
	a := Ints(1, 2, 3)
	b := Ints(1, 2, 3)
	c := Ints(1, 2)
	d := Ints(1, 2, 4)
	if !EqualSlices(a, b) {
		t.Error("equal slices reported unequal")
	}
	if EqualSlices(a, c) || EqualSlices(a, d) {
		t.Error("unequal slices reported equal")
	}
	if !EqualSlices(nil, nil) || !EqualSlices(nil, []Rat{}) {
		t.Error("empty slices should be equal")
	}
}

func TestClone(t *testing.T) {
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
	a := Ints(1, 2)
	b := Clone(a)
	b[0] = FromInt(99)
	if !a[0].Equal(One) {
		t.Error("Clone shares backing array")
	}
}

func TestQuickSumPermutationInvariant(t *testing.T) {
	f := func(xs []int32, seed uint8) bool {
		rs := make([]Rat, len(xs))
		for i, x := range xs {
			rs[i] = New(int64(x), int64(i%7)+1)
		}
		total := Sum(rs)
		// Rotate by seed and re-sum.
		if len(rs) > 0 {
			k := int(seed) % len(rs)
			rot := append(append([]Rat{}, rs[k:]...), rs[:k]...)
			return Sum(rot).Equal(total)
		}
		return total.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

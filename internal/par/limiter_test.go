package par

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	const cap = 3
	l := NewLimiter(cap)
	if l.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", l.Cap(), cap)
	}
	var (
		mu      sync.Mutex
		cur, mx int
	)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cur++
			if cur > mx {
				mx = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			l.Release()
		}()
	}
	wg.Wait()
	if mx > cap {
		t.Fatalf("observed %d concurrent holders, cap %d", mx, cap)
	}
	if l.InUse() != 0 || l.Waiting() != 0 {
		t.Fatalf("limiter not drained: in_use=%d waiting=%d", l.InUse(), l.Waiting())
	}
}

func TestLimiterAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full limiter = %v, want DeadlineExceeded", err)
	}
	l.Release()
	// The slot is free again; a fresh acquire must succeed immediately.
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Release()
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewLimiter(2).Release()
}

func TestLimiterDefaultSize(t *testing.T) {
	if c := NewLimiter(0).Cap(); c < 1 {
		t.Fatalf("default capacity %d", c)
	}
}

package numeric

// Vector helpers over slices of Rat. These are small conveniences used by
// the decomposition and allocation code; all of them treat a nil slice as
// empty.

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []Rat) Rat {
	s := Rat{}
	for _, x := range xs {
		s = s.Add(x)
	}
	return s
}

// SumIndexed returns the sum of w[i] over the given indices.
func SumIndexed(w []Rat, idx []int) Rat {
	s := Rat{}
	for _, i := range idx {
		s = s.Add(w[i])
	}
	return s
}

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []Rat) Rat {
	if len(a) != len(b) {
		panic("numeric: Dot length mismatch")
	}
	s := Rat{}
	for i := range a {
		s = s.Add(a[i].Mul(b[i]))
	}
	return s
}

// MinOf returns the minimum of xs. It panics on an empty slice.
func MinOf(xs []Rat) Rat {
	if len(xs) == 0 {
		panic("numeric: MinOf of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = m.Min(x)
	}
	return m
}

// MaxOf returns the maximum of xs. It panics on an empty slice.
func MaxOf(xs []Rat) Rat {
	if len(xs) == 0 {
		panic("numeric: MaxOf of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = m.Max(x)
	}
	return m
}

// EqualSlices reports whether a and b have equal length and elements.
func EqualSlices(a, b []Rat) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Ints converts a slice of int64 into a slice of Rat.
func Ints(xs ...int64) []Rat {
	out := make([]Rat, len(xs))
	for i, x := range xs {
		out[i] = FromInt(x)
	}
	return out
}

// Clone returns a copy of xs.
func Clone(xs []Rat) []Rat {
	if xs == nil {
		return nil
	}
	out := make([]Rat, len(xs))
	copy(out, xs)
	return out
}

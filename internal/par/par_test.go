package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		seen := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) {
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachPanicsPropagate(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachWorkersExceedN(t *testing.T) {
	// More workers than items must still visit every index exactly once and
	// not deadlock waiting on the surplus goroutines.
	n := 5
	seen := make([]atomic.Int32, n)
	ForEach(n, 64, func(i int) {
		seen[i].Add(1)
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestMapWorkersExceedN(t *testing.T) {
	got := Map(3, 100, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map(0) returned %v", got)
	}
}

func TestMapPanicMidSweep(t *testing.T) {
	// A panic from one worker partway through the sweep must surface to the
	// caller after the pool drains, not hang or get swallowed.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "mid-sweep") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Map(200, 8, func(i int) int {
		if i == 123 {
			panic("mid-sweep")
		}
		return i
	})
}

func TestMapOrdering(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("Workers(3)")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("Workers default")
	}
}

func TestForEachActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	// Two workers must be able to run concurrently: worker A waits until
	// worker B has started; with real parallelism this finishes quickly.
	started := make(chan struct{})
	release := make(chan struct{})
	ForEach(2, 2, func(i int) {
		if i == 0 {
			<-started
			close(release)
		} else {
			close(started)
			<-release
		}
	})
}

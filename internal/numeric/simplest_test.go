package numeric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplestBetweenKnown(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"0", "1", "1/2"},
		{"1/3", "1/2", "2/5"},
		{"0", "1/10", "1/11"},
		{"2", "3", "5/2"},
		{"1/2", "5", "1"},
		{"7/10", "9/10", "3/4"},
		{"-1", "1", "0"},
		{"-1/2", "-1/3", "-2/5"},
		{"3", "27/8", "10/3"},
		{"41/29", "58/41", "99/70"},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		got := SimplestBetween(a, b)
		if got.String() != c.want {
			t.Errorf("SimplestBetween(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestSimplestBetweenPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a >= b")
		}
	}()
	SimplestBetween(One, One)
}

func TestSimplestBetweenRecoversBreakpoint(t *testing.T) {
	// Simulate bisection around a target: the simplest rational in a tight
	// bracket around p/q (with no simpler fraction nearby) is p/q itself.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := int64(rng.Intn(200) + 1)
		q := int64(rng.Intn(200) + 1)
		target := New(p, q)
		eps := New(1, 1<<40)
		got := SimplestBetween(target.Sub(eps), target.Add(eps))
		if !got.Equal(target) {
			t.Fatalf("trial %d: bracket around %v recovered %v", trial, target, got)
		}
	}
}

func TestSimplestBetweenQuickProperties(t *testing.T) {
	f := func(an, bn int32, adRaw, bdRaw uint16) bool {
		ad, bd := int64(adRaw)+1, int64(bdRaw)+1
		a := New(int64(an), ad)
		b := New(int64(bn), bd)
		if b.Cmp(a) <= 0 {
			a, b = b, a
		}
		if b.Cmp(a) <= 0 { // equal
			return true
		}
		s := SimplestBetween(a, b)
		// Strictly inside.
		if !(a.Less(s) && s.Less(b)) {
			return false
		}
		// No rational with a smaller denominator lies strictly inside:
		// check all with denominator < s's.
		_, sd, ok := s.Int64Parts()
		if !ok || sd > 500 {
			return true // skip the exhaustive part for large denominators
		}
		for d := int64(1); d < sd; d++ {
			// Numerators to check: floor(a*d) .. ceil(b*d).
			loN := a.MulInt(d)
			hiN := b.MulInt(d)
			for n := loN.Float64() - 2; n <= hiN.Float64()+2; n++ {
				cand := New(int64(n), d)
				if a.Less(cand) && cand.Less(b) {
					return false // simpler fraction existed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

package repro

// Cross-module invariants: properties that tie several subsystems together
// and would not be caught by any single package's suite.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// TestExhaustiveSearchNeverBeatsExactOptimizer: on rings, the generic
// grid-based Sybil search explores a subset of the exact optimizer's
// strategy space (two identities, discretized weights), so its best ratio
// can never exceed the optimizer's.
func TestExhaustiveSearchNeverBeatsExactOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomRing(rng, rng.Intn(5)+4, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		exact, err := core.RingRatio(g, v, core.OptimizeOptions{Grid: 64})
		if err != nil {
			t.Fatal(err)
		}
		search, err := sybil.Search(g, v, sybil.SearchOptions{GridResolution: 12})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Less(search.Ratio) {
			t.Fatalf("trial %d: grid search ratio %v beats exact optimizer %v on %v (v=%d)",
				trial, search.Ratio, exact, g.Weights(), v)
		}
	}
}

// TestDecompositionIsScaleInvariant: multiplying every weight by a positive
// constant leaves the decomposition structure and every α unchanged
// (α(S) = w(Γ(S))/w(S) is homogeneous of degree 0).
func TestDecompositionIsScaleInvariant(t *testing.T) {
	f := func(seed int64, nRaw, cNum, cDen uint8) bool {
		n := int(nRaw)%8 + 3
		c := numeric.New(int64(cNum)+1, int64(cDen)+1)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRing(rng, n, graph.DistUniform)
		scaled := g.Clone()
		for v := 0; v < n; v++ {
			scaled.MustSetWeight(v, g.Weight(v).Mul(c))
		}
		d1, err := bottleneck.Decompose(g)
		if err != nil {
			return false
		}
		d2, err := bottleneck.Decompose(scaled)
		if err != nil {
			return false
		}
		if d1.StructureSignature() != d2.StructureSignature() {
			return false
		}
		for i := range d1.Pairs {
			if !d1.Pairs[i].Alpha.Equal(d2.Pairs[i].Alpha) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIncentiveRatioIsScaleInvariant: ζ_v is also homogeneous of degree 0.
func TestIncentiveRatioIsScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomRing(rng, rng.Intn(4)+4, graph.DistUniform)
		v := rng.Intn(g.N())
		scaled := g.Clone()
		c := numeric.New(7, 3)
		for u := 0; u < g.N(); u++ {
			scaled.MustSetWeight(u, g.Weight(u).Mul(c))
		}
		r1, err := core.RingRatio(g, v, core.OptimizeOptions{Grid: 24})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := core.RingRatio(scaled, v, core.OptimizeOptions{Grid: 24})
		if err != nil {
			t.Fatal(err)
		}
		// The optimizer's numeric refinement may land on slightly different
		// candidates; the certified ratios must agree to high precision.
		if diff := r1.Sub(r2).Abs(); numeric.New(1, 1_000_000).Less(diff) {
			t.Fatalf("trial %d: ζ changed under scaling: %v vs %v", trial, r1, r2)
		}
	}
}

// TestUtilityIsWeightMonotoneAcrossAgents: within one C class pair, a
// heavier agent never ends up with less utility (U = w/α with the same α).
func TestUtilityMonotoneWithinPair(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(rng, rng.Intn(7)+3, 0.5, graph.DistUniform)
		d, err := bottleneck.Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range d.Pairs {
			for _, side := range [][]int{p.B, p.C} {
				for i := 0; i < len(side); i++ {
					for j := i + 1; j < len(side); j++ {
						u, v := side[i], side[j]
						wu, wv := g.Weight(u), g.Weight(v)
						uu, uv := d.Utility(g, u), d.Utility(g, v)
						if wu.Less(wv) && uv.Less(uu) {
							t.Fatalf("trial %d: heavier agent %d earns less: w(%d)=%v U=%v, w(%d)=%v U=%v",
								trial, v, u, wu, uu, v, wv, uv)
						}
					}
				}
			}
		}
	}
}

// TestCoalitionCertificateCrossEngine re-derives the E16 headline number
// (combined ratio 335/82) through an independent path: manual double split,
// flow-engine decomposition, utilities by allocation audit.
func TestCoalitionCertificateCrossEngine(t *testing.T) {
	g := graph.Ring(numeric.Ints(128, 2, 128, 128, 512, 4, 32))
	// Honest utilities of agents 4 and 5 under the flow engine.
	dec, err := bottleneck.DecomposeWith(g, bottleneck.EngineFlow)
	if err != nil {
		t.Fatal(err)
	}
	honest := dec.Utility(g, 4).Add(dec.Utility(g, 5))
	// The certified strategy: agent 5 splits (4, 0) toward its neighbors
	// (4, 6); agent 4 splits (0, 512) toward (3, 5) — found by PairAttack.
	// Re-run the grid search to recover the exact strategy, then rebuild it
	// manually and evaluate under the flow engine.
	res, err := sybil.PairAttack(g, 5, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := numeric.New(335, 82)
	if !res.CombinedRatio.Equal(want) {
		t.Fatalf("PairAttack ratio %v, want %v", res.CombinedRatio, want)
	}
	if !res.BestCombined.Div(honest).Equal(want) {
		t.Fatalf("cross-engine honest baseline disagrees: %v vs %v",
			res.BestCombined.Div(honest), want)
	}
}

// TestEvalSplitMonotoneInOwnWeight: for a fixed far-side weight, the leaf
// identity's utility is non-decreasing in its own weight — Theorem 10
// applied to the path leaf (whose weight IS its report).
func TestEvalSplitMonotoneInOwnWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomRing(rng, rng.Intn(6)+4, graph.DistUniform)
		v := rng.Intn(g.N())
		in, err := core.NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		w2 := in.W().DivInt(3)
		prev := numeric.Zero
		for k := 0; k <= 12; k++ {
			w1 := in.W().MulInt(int64(k)).DivInt(12)
			ev, err := in.EvalPair(w1, w2)
			if err != nil {
				t.Fatal(err)
			}
			if ev.U1.Less(prev) {
				t.Fatalf("trial %d: U1 decreased at w1=%v: %v < %v (ring %v)",
					trial, w1, ev.U1, prev, g.Weights())
			}
			prev = ev.U1
		}
	}
}

// TestTreesObeyConjecture: random trees under exhaustive Sybil search.
func TestTreesObeyConjecture(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomTree(rng, rng.Intn(5)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		if g.Degree(v) == 0 {
			continue
		}
		res, err := sybil.Search(g, v, sybil.SearchOptions{GridResolution: 6})
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Two.Less(res.Ratio) {
			t.Fatalf("trial %d: tree ratio %v > 2 on %v (v=%d)", trial, res.Ratio, g.Weights(), v)
		}
	}
}

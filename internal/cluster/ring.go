// Package cluster turns N independent irshared nodes into one fault-
// tolerant service. A Router consistent-hashes the mechanism-scoped
// canonical instance key of each request (server.PlacementKey — the same
// derivation the backends use for caches, batches, and job addresses)
// across the member nodes, so a given instance always lands where its cache
// is warm and its durable jobs live. Health probes drive membership, failed
// requests fail over to the next ring replica, durable jobs are placed
// under WAL-persisted TTL leases that survive router restarts and re-place
// work from a dead node's last observed checkpoint, and certificate-bearing
// answers are re-checked (solver-free) before being forwarded — a backend
// caught lying is quarantined on the spot.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the static seed node set. Every node
// is always on the ring — aliveness filters selection, not placement — so a
// node bouncing dead and alive never reshuffles keys between the survivors:
// its keys spill to the next replica while it is down and come straight
// back when it recovers.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 is FNV-64a with a murmur-style avalanche finalizer. Raw FNV of
// strings that differ only in trailing digits ("node#0".."node#63", or
// canonical keys with a numeric tail) lands in a narrow band — the last
// absorption steps spread a one-character difference across far fewer than
// 64 bits — which would collapse a node's vnodes into one tight cluster and
// defeat the ring's load spreading. The finalizer makes nearby inputs
// uncorrelated.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing places every node at vnodes positions. Node order in the input
// does not matter: positions depend only on (node, index), so every router
// over the same seed list agrees on placement.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{vnodes: vnodes, nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// sequence returns all distinct nodes in ring order starting at key's
// successor: sequence(key)[0] is the primary placement, [1] the first
// failover replica, and so on through every member exactly once.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	seq := make([]string, 0, len(r.nodes))
	for k := 0; k < len(r.points) && len(seq) < len(r.nodes); k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			seq = append(seq, p.node)
		}
	}
	return seq
}

// General-network conjecture: the paper conjectures that the incentive
// ratio of the BD Allocation Mechanism against Sybil attacks is 2 on every
// network, not just rings. This example probes small general graphs with
// an exhaustive attack search (all neighbor partitions × a weight grid) and
// reports the worst gains found.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	families := []struct {
		name string
		gen  func() *repro.Graph
	}{
		{"stars (center attacks)", func() *repro.Graph {
			return repro.Star(graph.RandomWeights(rng, rng.Intn(4)+4, graph.DistUniform))
		}},
		{"complete graphs", func() *repro.Graph {
			return repro.Complete(graph.RandomWeights(rng, rng.Intn(3)+3, graph.DistUniform))
		}},
		{"random connected", func() *repro.Graph {
			return graph.RandomConnected(rng, rng.Intn(4)+4, 0.5, graph.DistSkewed)
		}},
	}

	fmt.Println("exhaustive Sybil search on general networks (conjecture: ratio ≤ 2)")
	for _, fam := range families {
		worstRatio := 1.0
		var worstDetail string
		trials := 12
		for trial := 0; trial < trials; trial++ {
			g := fam.gen()
			v := rng.Intn(g.N())
			if g.Degree(v) == 0 {
				continue
			}
			res, err := repro.SybilSearch(g, v, repro.SybilSearchOptions{GridResolution: 8})
			if err != nil {
				log.Fatal(err)
			}
			if r := res.Ratio.Float64(); r > worstRatio {
				worstRatio = r
				worstDetail = fmt.Sprintf("v=%d splits into %d identities on w=%v",
					v, len(res.Spec.Parts), g.Weights())
			}
			if repro.RatFromInt(2).Less(res.Ratio) {
				log.Fatalf("CONJECTURE VIOLATED: ratio %v", res.Ratio)
			}
		}
		fmt.Printf("  %-24s %d instances, worst ratio %.6f ≤ 2\n", fam.name, trials, worstRatio)
		if worstDetail != "" {
			fmt.Printf("      argmax: %s\n", worstDetail)
		}
	}
	fmt.Println("no violation found — consistent with the paper's concluding conjecture")
}

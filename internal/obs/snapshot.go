package obs

import "time"

// TraceSnapshot is the immutable, JSON-serializable form of a finished
// trace — what /debug/trace returns and what Capture.Last hands to tests.
type TraceSnapshot struct {
	ID            uint64        `json:"id"`
	Name          string        `json:"name"`
	Start         time.Time     `json:"start"`
	Duration      time.Duration `json:"duration_ns"`
	DroppedSpans  int64         `json:"dropped_spans,omitempty"`
	DroppedEvents int64         `json:"dropped_events,omitempty"`
	Root          *SpanSnapshot `json:"root"`
}

// SpanSnapshot is one node of a snapshot's span tree.
type SpanSnapshot struct {
	Name     string          `json:"name"`
	Start    time.Time       `json:"start"`
	Duration time.Duration   `json:"duration_ns"`
	Attrs    []Attr          `json:"attrs,omitempty"`
	Counters []CounterValue  `json:"counters,omitempty"`
	Events   []EventSnapshot `json:"events,omitempty"`
	Children []*SpanSnapshot `json:"children,omitempty"`
}

// CounterValue is one integer counter on a span snapshot.
type CounterValue struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// EventSnapshot is one recorded event.
type EventSnapshot struct {
	Name  string    `json:"name"`
	At    time.Time `json:"at"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Snapshot freezes the trace's current state into an immutable tree. It is
// normally taken by the recorder at Finish; calling it on a live trace is
// safe and sees the spans recorded so far. Spans still open get the
// duration they have accumulated up to now.
func (t *Trace) Snapshot() *TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &TraceSnapshot{
		ID:            t.id,
		Name:          t.name,
		Start:         t.start,
		DroppedSpans:  t.droppedSpans,
		DroppedEvents: t.droppedEvents,
		Root:          snapshotSpan(t.root),
	}
	snap.Duration = snap.Root.Duration
	return snap
}

func snapshotSpan(s *Span) *SpanSnapshot {
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	out := &SpanSnapshot{Name: s.name, Start: s.start, Duration: dur}
	if len(s.attrs) > 0 {
		out.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.counters {
		out.Counters = append(out.Counters, CounterValue{Key: c.key, Value: c.val})
	}
	for _, ev := range s.events {
		es := EventSnapshot{Name: ev.Name, At: ev.At}
		if len(ev.Attrs) > 0 {
			es.Attrs = append([]Attr(nil), ev.Attrs...)
		}
		out.Events = append(out.Events, es)
	}
	for _, ch := range s.children {
		out.Children = append(out.Children, snapshotSpan(ch))
	}
	return out
}

// Walk visits every span of the tree in depth-first pre-order.
func (s *SpanSnapshot) Walk(fn func(*SpanSnapshot)) {
	if s == nil {
		return
	}
	fn(s)
	for _, ch := range s.Children {
		ch.Walk(fn)
	}
}

// Find returns the first span named name in pre-order, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	var hit *SpanSnapshot
	s.Walk(func(n *SpanSnapshot) {
		if hit == nil && n.Name == name {
			hit = n
		}
	})
	return hit
}

// Attr returns the value of the named attribute ("" if absent).
func (s *SpanSnapshot) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Counter returns the value of the named counter (0 if absent).
func (s *SpanSnapshot) Counter(key string) int64 {
	for _, c := range s.Counters {
		if c.Key == key {
			return c.Value
		}
	}
	return 0
}

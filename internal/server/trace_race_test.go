package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

// postJSONHeaders is postJSON returning the response headers too. It is
// goroutine-safe (no Fatalf): failures surface as status 0 plus a t.Errorf.
func postJSONHeaders(t *testing.T, base, path string, body any) (int, []byte, http.Header) {
	blob, err := json.Marshal(body)
	if err != nil {
		t.Errorf("marshal request: %v", err)
		return 0, nil, nil
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Errorf("POST %s: %v", path, err)
		return 0, nil, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read response: %v", err)
		return 0, nil, nil
	}
	return resp.StatusCode, raw, resp.Header
}

// TestTraceEvictionUnderConcurrentReads churns a tiny trace buffer (every
// new request evicts an old trace) while reader goroutines hammer
// /debug/trace with recently issued ids. Run under -race this pins the
// Collector's eviction path against concurrent snapshot reads; functionally
// a reader must only ever see a complete snapshot (200) or a clean miss
// (404) — never a torn trace or a non-JSON body.
func TestTraceEvictionUnderConcurrentReads(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBuffer: 4, MaxQueueDepth: -1})

	var (
		mu  sync.Mutex
		ids []string
	)
	addID := func(id string) {
		mu.Lock()
		if len(ids) < 256 {
			ids = append(ids, id)
		}
		mu.Unlock()
	}
	pickID := func(rng *rand.Rand) string {
		mu.Lock()
		defer mu.Unlock()
		if len(ids) == 0 {
			return ""
		}
		return ids[rng.Intn(len(ids))]
	}

	const writers, readers, perWriter = 4, 4, 25
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				status, _, hdr := postJSONHeaders(t, ts.URL, "/v1/utilities",
					UtilitiesRequest{Graph: WireGraph{Path: []string{"1", "2"}}})
				if status != http.StatusOK {
					t.Errorf("utilities status %d", status)
					return
				}
				if id := hdr.Get("X-Trace-Id"); id != "" {
					addID(id)
				}
			}
		}()
	}
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(seed int64) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := pickID(rng)
				if id == "" {
					continue
				}
				resp, err := http.Get(ts.URL + "/debug/trace?id=" + id)
				if err != nil {
					t.Errorf("trace read: %v", err)
					return
				}
				var body json.RawMessage
				decodeErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if decodeErr != nil {
					t.Errorf("trace %s: non-JSON body (status %d): %v", id, resp.StatusCode, decodeErr)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("trace %s: status %d", id, resp.StatusCode)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(stop)
	rg.Wait()
}

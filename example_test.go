package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// The bottleneck decomposition of the paper's Fig. 1 example.
func ExampleDecompose() {
	g := repro.Fig1Graph()
	dec, err := repro.Decompose(context.Background(), g)
	if err != nil {
		panic(err)
	}
	fmt.Println(dec)
	// Output:
	// (B1{0,1}, C1{2}, α=1/3) (B2{3,4,5}, C2{3,4,5}, α=1)
}

// Equilibrium utilities follow Proposition 6: w·α for B class, w/α for C.
func ExampleAllocate() {
	ctx := context.Background()
	g := repro.Path(repro.Ints(1, 100, 1))
	dec, _ := repro.Decompose(ctx, g)
	alloc, _ := repro.Allocate(ctx, g, repro.WithDecomposition(dec))
	fmt.Println("middle:", alloc.Utility(1))
	fmt.Println("leaf:  ", alloc.Utility(0))
	// Output:
	// middle: 2
	// leaf:   50
}

// The incentive ratio of a Sybil attack on a ring never exceeds 2
// (Theorem 8); on symmetric instances it is exactly 1.
func ExampleIncentiveRatio() {
	g := repro.Ring(repro.Ints(1, 1, 1, 1, 1))
	ratio, _ := repro.IncentiveRatio(context.Background(), g, 0)
	fmt.Println(ratio)
	// Output:
	// 1
}

// LowerBoundLimitRatio gives the H → ∞ ratio of the tight family member k:
// (2k+1)/(k+1), increasing to 2.
func ExampleLowerBoundLimitRatio() {
	for _, k := range []int{1, 4, 19} {
		fmt.Println(repro.LowerBoundLimitRatio(k))
	}
	// Output:
	// 3/2
	// 9/5
	// 39/20
}

// Exact rational arithmetic keeps decomposition structure decisions exact.
func ExampleParseRat() {
	a, _ := repro.ParseRat("1/3")
	b, _ := repro.ParseRat("0.25")
	fmt.Println(a.Add(b), a.Mul(b), a.Less(b))
	// Output:
	// 7/12 1/12 false
}

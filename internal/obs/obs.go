// Package obs is the zero-dependency observability layer shared by every
// solver: a span-tree recorder threaded through context.Context, plus a
// ring-buffered Collector (collector.go) that retains recent traces for the
// /debug/trace endpoint and aggregates per-stage Prometheus histograms for
// /metrics.
//
// The design goal is a near-zero disabled path. The current span travels as
// a single context value, every Span method is safe on a nil receiver, and
// Start on a context without a span is one Value lookup returning
// (ctx, nil). Library callers therefore pay essentially nothing unless a
// recorder is installed — via repro.WithRecorder, the server's per-request
// tracing, or Trace.Context directly.
//
// Recording model:
//
//   - A Trace is one recording session (one facade call, one HTTP request,
//     one batched computation). It owns the span tree, the span/event caps
//     that bound its memory, and the mutex that makes concurrent span
//     operations safe — solver code fans out across goroutines (par.Map)
//     while sharing one trace.
//   - A Span is one timed tree node with string attributes, integer
//     counters (cheap enough for per-iteration hot loops), and point-in-time
//     events (the generalization of bottleneck.TraceFunc's Dinkelbach
//     iteration hooks).
//   - A Recorder mints traces. Collector (ring buffer + metrics) and
//     Capture (keep the last trace, for library use and tests) implement it.
package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one string key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a point-in-time observation inside a span — e.g. one Dinkelbach
// iteration with its current λ. Events are capped per span by the owning
// trace; excess events are counted as dropped rather than retained.
type Event struct {
	Name  string
	At    time.Time
	Attrs []Attr
}

// Span is one timed node of a trace's span tree. All methods are safe on a
// nil receiver (the disabled path) and safe for concurrent use: mutation is
// serialized by the owning trace's mutex.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	counters []counter
	events   []Event
	children []*Span
}

type counter struct {
	key string
	val int64
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx with sp installed as the current span.
// Installing a nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span, or nil when the context carries
// none (recording disabled).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child span of the context's current span and returns a
// context carrying the child. When the context carries no span — the
// disabled default — it returns (ctx, nil) after a single Value lookup, and
// the nil span absorbs every later method call for free.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.tr.startSpan(parent, name)
	if child == nil {
		// Span cap reached: leave the parent installed so descendants
		// still aggregate into the retained part of the tree.
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, child), child
}

// End closes the span, fixing its duration. Multiple End calls (or an End
// after the trace finished) keep the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// SetAttr sets a string attribute, overwriting an existing key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.tr.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// AddInt adds delta to an integer counter on the span. Counters are the
// cheap hot-loop primitive: no strings are built, so a per-iteration AddInt
// costs one mutex round trip.
func (s *Span) AddInt(key string, delta int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.counters {
		if s.counters[i].key == key {
			s.counters[i].val += delta
			s.tr.mu.Unlock()
			return
		}
	}
	s.counters = append(s.counters, counter{key: key, val: delta})
	s.tr.mu.Unlock()
}

// AddEvent records a point-in-time event with alternating key/value
// attribute pairs (a trailing key without a value is dropped). Events
// beyond the trace's per-span cap are counted as dropped.
func (s *Span) AddEvent(name string, kv ...string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if len(s.events) >= s.tr.maxEvents {
		s.tr.droppedEvents++
		s.tr.mu.Unlock()
		return
	}
	ev := Event{Name: name, At: time.Now()}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	s.events = append(s.events, ev)
	s.tr.mu.Unlock()
}

// Trace is one recording session: the root of a span tree plus the caps
// bounding its memory. A Trace is safe for concurrent use by every
// goroutine of the traced computation.
type Trace struct {
	id    uint64
	name  string
	start time.Time

	mu            sync.Mutex
	root          *Span
	nspans        int
	maxSpans      int
	maxEvents     int
	droppedSpans  int64
	droppedEvents int64
	finished      bool
	onFinish      func(*Trace)
}

// Default caps for traces minted without explicit limits.
const (
	DefaultMaxSpans  = 4096
	DefaultMaxEvents = 64
)

// NewTrace starts a standalone recording session (no recorder): the root
// span is open, default caps apply. Use a Collector or Capture to mint
// traces that publish somewhere on Finish.
func NewTrace(name string) *Trace {
	return newTrace(0, name, DefaultMaxSpans, DefaultMaxEvents, nil)
}

func newTrace(id uint64, name string, maxSpans, maxEvents int, onFinish func(*Trace)) *Trace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	t := &Trace{
		id:        id,
		name:      name,
		start:     time.Now(),
		maxSpans:  maxSpans,
		maxEvents: maxEvents,
		onFinish:  onFinish,
	}
	t.root = &Span{tr: t, name: name, start: t.start}
	t.nspans = 1
	return t
}

// ID returns the trace id (0 for standalone traces; Collector-minted traces
// get unique ids, the handle used by /debug/trace).
func (t *Trace) ID() uint64 { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Context returns ctx with the trace's root installed as the current span —
// the handoff point between a recorder and the solvers.
func (t *Trace) Context(ctx context.Context) context.Context {
	return ContextWithSpan(ctx, t.root)
}

// startSpan appends a child under parent, honoring the span cap.
func (t *Trace) startSpan(parent *Span, name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished || t.nspans >= t.maxSpans {
		t.droppedSpans++
		return nil
	}
	child := &Span{tr: t, name: name, start: time.Now()}
	parent.children = append(parent.children, child)
	t.nspans++
	return child
}

// Finish ends the root span and publishes the trace to its recorder (ring
// buffer insertion, stage-metric aggregation). Finish is idempotent; spans
// started after Finish are dropped.
func (t *Trace) Finish() {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	if !t.root.ended {
		t.root.ended = true
		t.root.dur = time.Since(t.root.start)
	}
	t.finished = true
	cb := t.onFinish
	t.mu.Unlock()
	if cb != nil {
		cb(t)
	}
}

// Recorder mints traces: the type the facade's WithRecorder option accepts.
// Collector (production: ring buffer + /metrics aggregates) and Capture
// (library/tests: keep the last trace) both implement it.
type Recorder interface {
	// NewTrace opens a recording session; the caller must Finish it.
	NewTrace(name string) *Trace
}

// Capture is the minimal Recorder: it retains the most recently finished
// trace for inspection. Useful for library callers who want one solve's
// span tree without running a collector.
type Capture struct {
	// MaxSpans / MaxEvents bound each trace (0 = package defaults).
	MaxSpans, MaxEvents int

	mu   sync.Mutex
	last *TraceSnapshot
}

// NewTrace implements Recorder.
func (c *Capture) NewTrace(name string) *Trace {
	return newTrace(0, name, c.MaxSpans, c.MaxEvents, func(t *Trace) {
		snap := t.Snapshot()
		c.mu.Lock()
		c.last = snap
		c.mu.Unlock()
	})
}

// Last returns the most recently finished trace's snapshot (nil if none).
func (c *Capture) Last() *TraceSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

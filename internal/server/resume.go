package server

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
)

// resumeToken identifies where a partial sweep stopped: the canonical
// instance key plus the request's (v, grid) and the next grid index. The
// token is stateless — the server keeps nothing between the partial
// response and the resumed request — so validation happens by re-deriving
// the canonical key from the resumed request's graph and comparing.
type resumeToken struct {
	Key  string // CanonicalKey of the instance graph
	V    int
	Grid int
	Next int // first grid index not yet covered
}

// resumeTokenVersion tags the encoding so a future layout change can
// reject (rather than misparse) old tokens.
const resumeTokenVersion = "rs1"

// encodeResumeToken renders the token as URL-safe base64 of
// "rs1|v|grid|next|canonicalKey". The canonical key goes last because it is
// the only field that may contain arbitrary separator bytes.
func encodeResumeToken(t resumeToken) string {
	raw := fmt.Sprintf("%s|%d|%d|%d|%s", resumeTokenVersion, t.V, t.Grid, t.Next, t.Key)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeResumeToken parses and structurally validates a wire token. Bounds
// against the actual request (key/v/grid match, next in range) are the
// caller's job — they need the request context.
func decodeResumeToken(s string) (resumeToken, error) {
	// The request body limit already bounds the token; this cap only guards
	// direct callers of the codec.
	if len(s) > 2<<20 {
		return resumeToken{}, fmt.Errorf("token too long")
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return resumeToken{}, fmt.Errorf("not base64url: %v", err)
	}
	parts := strings.SplitN(string(raw), "|", 5)
	if len(parts) != 5 {
		return resumeToken{}, fmt.Errorf("wrong field count")
	}
	if parts[0] != resumeTokenVersion {
		return resumeToken{}, fmt.Errorf("unknown token version %q", parts[0])
	}
	var t resumeToken
	if t.V, err = strconv.Atoi(parts[1]); err != nil {
		return resumeToken{}, fmt.Errorf("bad agent field: %v", err)
	}
	if t.Grid, err = strconv.Atoi(parts[2]); err != nil {
		return resumeToken{}, fmt.Errorf("bad grid field: %v", err)
	}
	if t.Next, err = strconv.Atoi(parts[3]); err != nil {
		return resumeToken{}, fmt.Errorf("bad index field: %v", err)
	}
	t.Key = parts[4]
	return t, nil
}

// Package graph provides the undirected, vertex-weighted graphs on which the
// resource sharing model is defined (Section II of the paper).
//
// Vertices are dense integers 0..N-1. Each vertex v carries a resource
// amount w_v ≥ 0. Edges are undirected and simple (no self-loops, no
// multi-edges). The package also provides the neighborhood operator Γ(S)
// used by the bottleneck decomposition and the vertex-splitting transform
// that models a Sybil attack.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
)

// Graph is an undirected vertex-weighted graph. The zero value is an empty
// graph; use New to create one with vertices.
type Graph struct {
	adj    [][]int       // sorted adjacency lists
	w      []numeric.Rat // vertex weights
	labels []string      // optional display names; may be nil
	edges  int
}

// New returns a graph with n isolated vertices of weight zero.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		adj: make([][]int, n),
		w:   make([]numeric.Rat, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// check panics if v is out of range.
func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0, %d)", v, len(g.adj)))
	}
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate edges
// are rejected with an error.
func (g *Graph) AddEdge(u, v int) error {
	g.check(u)
	g.check(v)
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d, %d)", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error; for literals in tests and
// generators.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	i := sort.SearchInts(g.adj[u], v)
	return i < len(g.adj[u]) && g.adj[u][i] == v
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// SetWeight assigns w_v. Negative weights are rejected.
func (g *Graph) SetWeight(v int, w numeric.Rat) error {
	g.check(v)
	if w.Sign() < 0 {
		return fmt.Errorf("graph: negative weight %v for vertex %d", w, v)
	}
	g.w[v] = w
	return nil
}

// MustSetWeight is SetWeight that panics on error.
func (g *Graph) MustSetWeight(v int, w numeric.Rat) {
	if err := g.SetWeight(v, w); err != nil {
		panic(err)
	}
}

// SetWeights assigns all vertex weights at once.
func (g *Graph) SetWeights(ws []numeric.Rat) error {
	if len(ws) != g.N() {
		return fmt.Errorf("graph: SetWeights got %d weights for %d vertices", len(ws), g.N())
	}
	for v, w := range ws {
		if err := g.SetWeight(v, w); err != nil {
			return err
		}
	}
	return nil
}

// Weight returns w_v.
func (g *Graph) Weight(v int) numeric.Rat {
	g.check(v)
	return g.w[v]
}

// Weights returns a copy of the weight vector.
func (g *Graph) Weights() []numeric.Rat { return numeric.Clone(g.w) }

// SetLabel attaches a display name to v (used by DOT export and tools).
func (g *Graph) SetLabel(v int, label string) {
	g.check(v)
	if g.labels == nil {
		g.labels = make([]string, g.N())
	}
	g.labels[v] = label
}

// Label returns the display name of v, defaulting to "v<index>".
func (g *Graph) Label(v int) string {
	g.check(v)
	if g.labels != nil && g.labels[v] != "" {
		return g.labels[v]
	}
	return fmt.Sprintf("v%d", v)
}

// TotalWeight returns w(V).
func (g *Graph) TotalWeight() numeric.Rat { return numeric.Sum(g.w) }

// WeightOf returns w(S) = Σ_{v∈S} w_v.
func (g *Graph) WeightOf(S []int) numeric.Rat {
	for _, v := range S {
		g.check(v)
	}
	return numeric.SumIndexed(g.w, S)
}

// NeighborhoodSet returns Γ(S) = ∪_{v∈S} Γ(v) as a sorted slice. Note that
// Γ(S) may intersect S (the "inclusive" neighborhood of the paper).
func (g *Graph) NeighborhoodSet(S []int) []int {
	seen := make(map[int]bool)
	for _, v := range S {
		g.check(v)
		for _, u := range g.adj[v] {
			seen[u] = true
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// IsIndependent reports whether S contains no internal edge.
func (g *Graph) IsIndependent(S []int) bool {
	in := make(map[int]bool, len(S))
	for _, v := range S {
		g.check(v)
		in[v] = true
	}
	for _, v := range S {
		for _, u := range g.adj[v] {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	for v := range g.adj {
		c.adj[v] = append([]int(nil), g.adj[v]...)
	}
	copy(c.w, g.w)
	if g.labels != nil {
		c.labels = append([]string(nil), g.labels...)
	}
	c.edges = g.edges
	return c
}

// InducedSubgraph returns the subgraph induced by keep (sorted, distinct
// vertex indices) together with the mapping orig[i] = original index of new
// vertex i.
func (g *Graph) InducedSubgraph(keep []int) (sub *Graph, orig []int) {
	idx := make(map[int]int, len(keep))
	orig = append([]int(nil), keep...)
	sort.Ints(orig)
	for i, v := range orig {
		g.check(v)
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", v))
		}
		idx[v] = i
	}
	sub = New(len(orig))
	for i, v := range orig {
		sub.w[i] = g.w[v]
		if g.labels != nil && g.labels[v] != "" {
			sub.SetLabel(i, g.labels[v])
		}
		for _, u := range g.adj[v] {
			if j, ok := idx[u]; ok && i < j {
				sub.MustAddEdge(i, j)
			}
		}
	}
	return sub, orig
}

// Components returns the connected components as sorted vertex slices,
// ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected (the empty graph is connected).
func (g *Graph) IsConnected() bool {
	return g.N() == 0 || len(g.Components()) == 1
}

// IsRing reports whether g is a single cycle covering all vertices
// (n ≥ 3 and every vertex has degree 2 and the graph is connected).
func (g *Graph) IsRing() bool {
	if g.N() < 3 {
		return false
	}
	for v := range g.adj {
		if len(g.adj[v]) != 2 {
			return false
		}
	}
	return g.IsConnected()
}

// IsPath reports whether g is a simple path covering all vertices.
func (g *Graph) IsPath() bool {
	if g.N() == 0 {
		return false
	}
	if g.N() == 1 {
		return true
	}
	deg1 := 0
	for v := range g.adj {
		switch len(g.adj[v]) {
		case 1:
			deg1++
		case 2:
		default:
			return false
		}
	}
	return deg1 == 2 && g.IsConnected()
}

// PathOrder returns the vertices of a path graph in path order (starting
// from the lower-indexed endpoint). It returns an error if g is not a path.
func (g *Graph) PathOrder() ([]int, error) {
	if !g.IsPath() {
		return nil, fmt.Errorf("graph: not a path")
	}
	if g.N() == 1 {
		return []int{0}, nil
	}
	start := -1
	for v := range g.adj {
		if len(g.adj[v]) == 1 {
			start = v
			break
		}
	}
	order := make([]int, 0, g.N())
	prev, cur := -1, start
	for {
		order = append(order, cur)
		next := -1
		for _, u := range g.adj[cur] {
			if u != prev {
				next = u
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	return order, nil
}

// RingOrder returns the vertices of a ring graph in cyclic order starting at
// start, moving toward its lower-indexed neighbor. It returns an error if g
// is not a ring.
func (g *Graph) RingOrder(start int) ([]int, error) {
	if !g.IsRing() {
		return nil, fmt.Errorf("graph: not a ring")
	}
	g.check(start)
	order := make([]int, 0, g.N())
	prev, cur := -1, start
	for len(order) < g.N() {
		order = append(order, cur)
		next := -1
		for _, u := range g.adj[cur] {
			if u != prev {
				next = u
				break
			}
		}
		prev, cur = cur, next
	}
	return order, nil
}

// Validate checks internal invariants (sorted adjacency, symmetry, weight
// non-negativity) and returns an error describing the first violation.
func (g *Graph) Validate() error {
	count := 0
	for v := range g.adj {
		if !sort.IntsAreSorted(g.adj[v]) {
			return fmt.Errorf("graph: adjacency of %d not sorted", v)
		}
		for i, u := range g.adj[v] {
			if i > 0 && g.adj[v][i-1] == u {
				return fmt.Errorf("graph: duplicate neighbor %d of %d", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if u < 0 || u >= g.N() {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: asymmetric edge (%d, %d)", v, u)
			}
			count++
		}
		if g.w[v].Sign() < 0 {
			return fmt.Errorf("graph: negative weight at %d", v)
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency (%d half-edges)", g.edges, count)
	}
	return nil
}

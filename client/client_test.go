package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// fastBackoff keeps retry sleeps out of test wall-clock.
func fastBackoff() Option { return WithBackoff(time.Millisecond, 4*time.Millisecond) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Code: server.CodeBusy, Message: "busy"})
			return
		}
		writeJSON(w, http.StatusOK, UtilitiesResponse{Utilities: []string{"1"}, Total: "1", TotalWeight: "2"})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	resp, err := c.Utilities(context.Background(), &UtilitiesRequest{Graph: Graph{Path: []string{"2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != "1" || calls.Load() != 3 {
		t.Fatalf("total=%q calls=%d", resp.Total, calls.Load())
	}
}

func TestRetryOnContainedPanic(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Code: server.CodeInternalPanic, Message: "contained"})
			return
		}
		writeJSON(w, http.StatusOK, RatioResponse{Ratio: "1", LeqTwo: true})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	resp, err := c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.LeqTwo || calls.Load() != 2 {
		t.Fatalf("resp=%+v calls=%d", resp, calls.Load())
	}
}

func TestNoRetryOnBadRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Code: server.CodeBadGraph, Message: "nope", Detail: "why"})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	_, err := c.Decompose(context.Background(), &DecomposeRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Code != server.CodeBadGraph || apiErr.Status != 400 || apiErr.Retryable() {
		t.Fatalf("unexpected error %+v", apiErr)
	}
	if calls.Load() != 1 {
		t.Fatalf("retried a 400: %d calls", calls.Load())
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Code: server.CodeOverloaded, Message: "shed"})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1), WithMaxAttempts(3))
	_, err := c.Allocate(context.Background(), &AllocateRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeOverloaded {
		t.Fatalf("want overloaded APIError, got %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("want 3 attempts, got %d", calls.Load())
	}
}

func TestTransportErrorsRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Slam the connection so the client sees a transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		writeJSON(w, http.StatusOK, UtilitiesResponse{Total: "0"})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	if _, err := c.Utilities(context.Background(), &UtilitiesRequest{}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("want 2 attempts, got %d", calls.Load())
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Code: server.CodeBusy, Message: "busy"})
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, WithBackoff(time.Hour, time.Hour), WithSeed(1),
		WithRetryHook(func(int, error, time.Duration) { cancel() }))
	_, err := c.Sweep(ctx, &SweepRequest{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDelayHonorsRetryAfterFloor(t *testing.T) {
	c := New("http://unused", fastBackoff(), WithSeed(1))
	apiErr := &APIError{Status: 429, Code: server.CodeOverloaded, RetryAfter: 2 * time.Second}
	for attempt := 1; attempt <= 4; attempt++ {
		if d := c.delay(attempt, apiErr); d < 2*time.Second {
			t.Fatalf("attempt %d: delay %v below Retry-After floor", attempt, d)
		}
	}
	// Without the header the backoff stays within its cap plus jitter.
	plain := &APIError{Status: 503, Code: server.CodeBusy}
	if d := c.delay(10, plain); d > 4*time.Millisecond {
		t.Fatalf("capped delay %v exceeds max", d)
	}
}

func TestJitterDeterministicWithSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		c := New("http://unused", WithBackoff(100*time.Millisecond, 5*time.Second), WithSeed(seed))
		var out []time.Duration
		err := &APIError{Status: 503, Code: server.CodeBusy}
		for a := 1; a <= 6; a++ {
			out = append(out, c.delay(a, err))
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	diff := false
	for i, d := range seq(43) {
		if d != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestParseRetryAfter(t *testing.T) {
	// Exact cases: delta-seconds, garbage, and dates that must clamp to 0.
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"1", time.Second}, {"30", 30 * time.Second}, {"-5", 0}, {"soon", 0},
		{"Fri, 31 Dec 1999 23:59:59 GMT", 0}, // HTTP-date in the past
		{"31 Dec 1999", 0},                   // not a legal HTTP-date layout
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// HTTP-date cases resolve via time.Until, so check a window rather than
	// an exact value: a date ~90s out must land in (85s, 90s]. All three
	// layouts RFC 9110 grandfathers are accepted (IMF-fixdate, RFC 850,
	// asctime).
	future := time.Now().Add(90 * time.Second)
	for _, in := range []string{
		future.UTC().Format(http.TimeFormat),
		future.UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"),
		future.UTC().Format(time.ANSIC),
	} {
		got := parseRetryAfter(in)
		if got <= 85*time.Second || got > 90*time.Second {
			t.Fatalf("parseRetryAfter(%q) = %v, want ~90s", in, got)
		}
	}
}

func TestAPIErrorStringAndNonJSONBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text gateway error", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1), WithMaxAttempts(1))
	_, err := c.Ratio(context.Background(), &RatioRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Code != "http_502" || apiErr.Message != "plain text gateway error" {
		t.Fatalf("unexpected mapping: %+v", apiErr)
	}
	if apiErr.Error() == "" {
		t.Fatal("empty error string")
	}
}

package sybil

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
)

// SweepOptions tunes RingSweep. Zero values select defaults.
type SweepOptions struct {
	// Grid is the number of uniform w1 intervals over [0, w_v] (default 64;
	// the sweep evaluates Grid+1 points including both endpoints).
	Grid int
	// Workers bounds the parallel evaluation workers (≤ 0 = GOMAXPROCS).
	Workers int
	// Cold disables the instance's evaluation cache and incremental split
	// engine, so every point costs a from-scratch decomposition — the
	// pre-optimization baseline, kept for benchmarking. Results are
	// identical either way.
	Cold bool
}

// SweepPoint is one exactly evaluated split of the sweep.
type SweepPoint struct {
	W1 numeric.Rat
	// U is the attacker's combined utility U_{v¹} + U_{v²} at this split.
	U numeric.Rat
}

// SweepResult is the outcome of RingSweep.
type SweepResult struct {
	Points []SweepPoint
	// BestW1/BestU is the best sampled split (a lower bound on the optimum;
	// use core.Instance.Optimize for the certified piecewise search).
	BestW1, BestU numeric.Rat
	// Honest is U_v(G; w), and Ratio = BestU / Honest (1 when both zero).
	Honest, Ratio numeric.Rat
	// Stats exposes the evaluation-cache and incremental-solver counters
	// accumulated by the sweep.
	Stats core.EvalStats
}

// RingSweep evaluates the two-identity split utility curve of agent v on
// ring g at Grid+1 evenly spaced w1 values, sharing one core.Instance so
// the incremental split engine — cached interior transfers, warm-started
// Dinkelbach, memoized residual tails — is reused across the whole sweep
// instead of paying a fresh decomposition per point.
func RingSweep(g *graph.Graph, v int, opts SweepOptions) (*SweepResult, error) {
	return RingSweepCtx(context.Background(), g, v, opts)
}

// RingSweepCtx is RingSweep with cancellation and tracing: the context is
// threaded into every split evaluation, and when it carries an obs span the
// sweep is recorded as one "sybil.ring_sweep" span with the grid fan-out
// and per-point evaluations as children.
func RingSweepCtx(ctx context.Context, g *graph.Graph, v int, opts SweepOptions) (*SweepResult, error) {
	if opts.Grid <= 0 {
		opts.Grid = 64
	}
	ctx, span := obs.Start(ctx, "sybil.ring_sweep")
	defer span.End()
	if span != nil {
		span.SetAttr("grid", strconv.Itoa(opts.Grid))
	}
	in, err := core.NewInstanceCtx(ctx, g, v)
	if err != nil {
		return nil, err
	}
	in.SetEvalCache(!opts.Cold)
	in.SetIncremental(!opts.Cold)
	W := in.W()
	pts := make([]SweepPoint, opts.Grid+1)
	errs := par.MapCtx(ctx, len(pts), opts.Workers, func(ctx context.Context, i int) error {
		w1 := W.MulInt(int64(i)).DivInt(int64(opts.Grid))
		ev, err := in.EvalSplitCtx(ctx, w1)
		if err != nil {
			return err
		}
		pts[i] = SweepPoint{W1: w1, U: ev.U}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sybil: sweep point %d: %w", i, err)
		}
	}
	res := &SweepResult{Points: pts, Honest: in.HonestU, BestW1: pts[0].W1, BestU: pts[0].U}
	for _, p := range pts[1:] {
		if res.BestU.Less(p.U) {
			res.BestW1, res.BestU = p.W1, p.U
		}
	}
	switch {
	case res.Honest.Sign() > 0:
		res.Ratio = res.BestU.Div(res.Honest)
	case res.BestU.Sign() > 0:
		return nil, fmt.Errorf("sybil: positive attack utility %v from zero honest utility", res.BestU)
	default:
		res.Ratio = numeric.One
	}
	res.Stats = in.EvalStats()
	return res, nil
}

package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the router's Prometheus text exposition: request
// counts, failovers, certificate checks and rejections, lease lifecycle
// counters, membership state, probe totals, and the trace collector's
// aggregated span stats under the irrouter_ prefix.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprint(w, "# HELP irrouter_requests_total Proxied requests by endpoint and status.\n# TYPE irrouter_requests_total counter\n")
	r.requestsMu.Lock()
	keys := make([]string, 0, len(r.requests))
	for k := range r.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ep, status, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "irrouter_requests_total{endpoint=%q,status=%q} %d\n", ep, status, r.requests[k])
	}
	r.requestsMu.Unlock()

	fmt.Fprint(w, "# HELP irrouter_failovers_total Requests retried on the next ring replica.\n# TYPE irrouter_failovers_total counter\n")
	fmt.Fprintf(w, "irrouter_failovers_total %d\n", r.failovers.Load())
	fmt.Fprint(w, "# HELP irrouter_cert_checks_total Backend certificates re-checked by the router.\n# TYPE irrouter_cert_checks_total counter\n")
	fmt.Fprintf(w, "irrouter_cert_checks_total %d\n", r.certChecks.Load())
	fmt.Fprint(w, "# HELP irrouter_cert_rejections_total Backend answers rejected by the solver-free certificate check.\n# TYPE irrouter_cert_rejections_total counter\n")
	fmt.Fprintf(w, "irrouter_cert_rejections_total %d\n", r.certRejections.Load())

	fmt.Fprint(w, "# HELP irrouter_lease_grants_total Job placement leases granted.\n# TYPE irrouter_lease_grants_total counter\n")
	fmt.Fprintf(w, "irrouter_lease_grants_total %d\n", r.leaseGrants.Load())
	fmt.Fprint(w, "# HELP irrouter_lease_renewals_total Lease renewals (checkpoint observations).\n# TYPE irrouter_lease_renewals_total counter\n")
	fmt.Fprintf(w, "irrouter_lease_renewals_total %d\n", r.leaseRenewals.Load())
	fmt.Fprint(w, "# HELP irrouter_lease_replacements_total Jobs re-placed on a survivor after owner death or lease expiry.\n# TYPE irrouter_lease_replacements_total counter\n")
	fmt.Fprintf(w, "irrouter_lease_replacements_total %d\n", r.leaseReplaced.Load())
	fmt.Fprint(w, "# HELP irrouter_lease_retirements_total Leases retired after their job reached a terminal state.\n# TYPE irrouter_lease_retirements_total counter\n")
	fmt.Fprintf(w, "irrouter_lease_retirements_total %d\n", r.leaseRetired.Load())

	count, appends, syncs := r.leases.stats()
	fmt.Fprint(w, "# HELP irrouter_leases_active Live placement leases.\n# TYPE irrouter_leases_active gauge\n")
	fmt.Fprintf(w, "irrouter_leases_active %d\n", count)
	fmt.Fprint(w, "# HELP irrouter_lease_wal_appends_total Lease WAL frames appended.\n# TYPE irrouter_lease_wal_appends_total counter\n")
	fmt.Fprintf(w, "irrouter_lease_wal_appends_total %d\n", appends)
	fmt.Fprint(w, "# HELP irrouter_lease_wal_syncs_total Fsync'd lease WAL appends.\n# TYPE irrouter_lease_wal_syncs_total counter\n")
	fmt.Fprintf(w, "irrouter_lease_wal_syncs_total %d\n", syncs)

	okProbes, failProbes := r.members.probeCounts()
	fmt.Fprint(w, "# HELP irrouter_probes_total Health probes by result.\n# TYPE irrouter_probes_total counter\n")
	fmt.Fprintf(w, "irrouter_probes_total{result=\"ok\"} %d\nirrouter_probes_total{result=\"fail\"} %d\n", okProbes, failProbes)

	fmt.Fprint(w, "# HELP irrouter_node_state Backend state (1 = the node is in this state).\n# TYPE irrouter_node_state gauge\n")
	members := r.members.snapshot()
	sort.Slice(members, func(i, j int) bool { return members[i].URL < members[j].URL })
	for _, m := range members {
		for _, st := range []NodeState{StateAlive, StateDead, StateQuarantined} {
			v := 0
			if m.State == st {
				v = 1
			}
			fmt.Fprintf(w, "irrouter_node_state{node=%q,state=%q} %d\n", m.URL, st, v)
		}
	}

	if r.col != nil {
		r.col.WritePrometheus(w, "irrouter_")
	}
}

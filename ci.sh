#!/bin/sh
# Repository gate: build, vet, and the full test suite under the race
# detector (the incremental split engine and the parallel decomposition are
# exercised concurrently by their tests). Run from the repo root:
#
#	./ci.sh
set -eux

go build ./...
go vet ./...
go test -race ./...

# Focused race pass on the observability layer and the server: the span
# recorder is mutated from every solver goroutine and the trace collector
# is shared across requests, so these two packages get a dedicated -count=2
# run to shake out interleavings the full-suite pass may not hit.
go test -race -count=2 ./internal/obs ./internal/server

# Refresh the recorded disabled-vs-enabled tracing overhead numbers.
go run ./cmd/benchjson -bench 'Obs' -pkg ./internal/obs -out BENCH_obs.json \
	-note "disabled-vs-enabled recorder overhead: primitives (Start/AddInt/End) and end-to-end DecomposeCtx on a 64-ring"

# Fuzz smoke: run each native fuzz target briefly against its seed corpus
# plus fresh mutations. Parser/codec regressions (panics, unbounded
# allocation) surface here long before a full fuzzing campaign.
go test ./internal/graph -run '^$' -fuzz '^FuzzParseGraph$' -fuzztime 10s
go test ./internal/server -run '^$' -fuzz '^FuzzRatDecode$' -fuzztime 10s

package experiments

import (
	"fmt"
	"math"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/p2p"
)

// E17FreeRiding is an extension experiment for the other classic deviation
// the introduction cites (Jun & Ahamad [13]; Cohen [10]): free riding.
// A peer that contributes nothing is starved by tit-for-tat — its income
// decays to zero — and the remaining swarm converges exactly to the BD
// equilibrium of the network in which the deviant's weight is zero, i.e.
// free riding is equivalent to not owning anything. (Contrast with the
// Sybil attack, which DOES pay, up to the factor 2 of Theorem 8.)
//
// Measured boundary: starvation requires the rider's neighbors to have
// alternative partners. Against captive leaves the protocol's bootstrap
// re-offer (a zero-income peer restarts from the equal split, the analogue
// of BitTorrent's optimistic unchoke) keeps paying the rider forever.
func E17FreeRiding(rounds int) (*Table, error) {
	if rounds <= 0 {
		rounds = 8000
	}
	t := NewTable("E17 / extension — free riding is starved by the protocol (unless neighbors are captive)",
		"instance", "rider", "honest-run U", "final income", "starved (expected)", "others' max err vs zero-weight equilibrium")
	instances := []struct {
		name    string
		g       *graph.Graph
		rider   int
		starved bool
	}{
		// On rings every neighbor has an alternative partner, so tit-for-tat
		// starves the rider.
		{"ring 5-7-3-9-4", graph.Ring(numeric.Ints(5, 7, 3, 9, 4)), 2, true},
		{"heavy-neighbor ring", graph.Ring(numeric.Ints(100, 1, 1, 1, 1, 1)), 1, true},
		// Boundary regime: the rider's neighbors are LEAVES whose only
		// partner is the rider. A leaf receiving nothing has no proportional
		// response to give, so the protocol's bootstrap (the equal-split
		// re-offer — BitTorrent's optimistic unchoke) keeps feeding the
		// rider forever: free riding pays against captive neighbors.
		{"path 1-100-2 (captive leaves)", graph.Path(numeric.Ints(1, 100, 2)), 1, false},
	}
	for _, it := range instances {
		honest, err := p2p.Run(it.g, p2p.Config{Rounds: rounds})
		if err != nil {
			return t, fmt.Errorf("E17 %s: %w", it.name, err)
		}
		res, err := p2p.Run(it.g, p2p.Config{
			Rounds:      rounds,
			FreeRiders:  []int{it.rider},
			TrackAgents: []int{it.rider},
		})
		if err != nil {
			return t, fmt.Errorf("E17 %s: %w", it.name, err)
		}
		gz := it.g.Clone()
		gz.MustSetWeight(it.rider, numeric.Zero)
		dz, err := bottleneck.Decompose(gz)
		if err != nil {
			return t, fmt.Errorf("E17 %s: %w", it.name, err)
		}
		worst := 0.0
		for v := 0; v < it.g.N(); v++ {
			if v == it.rider {
				continue
			}
			if e := math.Abs(res.Utilities[v] - dz.Utility(gz, v).Float64()); e > worst {
				worst = e
			}
		}
		h := res.History[0]
		starved := h[len(h)-1] < 1e-6
		t.Add(it.name, it.rider, fmtF(honest.Utilities[it.rider]),
			fmt.Sprintf("%.3e", h[len(h)-1]),
			fmt.Sprintf("%v (%v)", starved, it.starved),
			fmt.Sprintf("%.3e", worst))
		if starved != it.starved {
			return t, fmt.Errorf("E17 %s: starvation = %v, expected %v (final income %v)",
				it.name, starved, it.starved, h[len(h)-1])
		}
		if worst > 1e-4 {
			return t, fmt.Errorf("E17 %s: honest agents off the zero-weight equilibrium by %v", it.name, worst)
		}
	}
	t.Note("on rings free riding earns nothing (income → 0) and the swarm re-converges to the rider's-weight-zero equilibrium;")
	t.Note("against captive leaf neighbors the bootstrap re-offer keeps paying the rider — starvation needs alternative partners")
	return t, nil
}

package maxflow

import (
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

func r(n, d int64) numeric.Rat { return numeric.New(n, d) }

func TestCap(t *testing.T) {
	c := Finite(r(3, 2))
	if c.IsInf() || !c.Value().Equal(r(3, 2)) || c.String() != "3/2" {
		t.Fatalf("Finite cap wrong: %v", c)
	}
	if !Inf.IsInf() || Inf.String() != "inf" {
		t.Fatal("Inf cap wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Value of Inf did not panic")
		}
	}()
	Inf.Value()
}

func TestFiniteNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity accepted")
		}
	}()
	Finite(numeric.FromInt(-1))
}

// buildDiamond returns the classic 4-node diamond with known max flow.
//
//	s → a (3), s → b (2), a → b (1), a → t (2), b → t (3); max flow = 5
func buildDiamond() (*Network, []int) {
	nw := NewNetwork(4, 0, 3)
	ids := []int{
		nw.AddEdge(0, 1, Finite(numeric.FromInt(3))),
		nw.AddEdge(0, 2, Finite(numeric.FromInt(2))),
		nw.AddEdge(1, 2, Finite(numeric.FromInt(1))),
		nw.AddEdge(1, 3, Finite(numeric.FromInt(2))),
		nw.AddEdge(2, 3, Finite(numeric.FromInt(3))),
	}
	return nw, ids
}

func TestDiamondBothAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{Dinic, PushRelabel, EdmondsKarp} {
		nw, _ := buildDiamond()
		got := nw.Solve(algo)
		if !got.Equal(numeric.FromInt(5)) {
			t.Errorf("%v: flow = %v, want 5", algo, got)
		}
		if err := nw.CheckConservation(); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
}

func TestRationalCapacities(t *testing.T) {
	// s → a (1/3), a → t (1/2): max flow 1/3 exactly.
	nw := NewNetwork(3, 0, 2)
	nw.AddEdge(0, 1, Finite(r(1, 3)))
	nw.AddEdge(1, 2, Finite(r(1, 2)))
	if got := nw.Solve(Dinic); !got.Equal(r(1, 3)) {
		t.Errorf("flow = %v, want 1/3", got)
	}
}

func TestInfiniteCapacityMiddle(t *testing.T) {
	// s → a (5), a → b (inf), b → t (7/2): flow = 7/2.
	for _, algo := range []Algorithm{Dinic, PushRelabel, EdmondsKarp} {
		nw := NewNetwork(4, 0, 3)
		nw.AddEdge(0, 1, Finite(numeric.FromInt(5)))
		mid := nw.AddEdge(1, 2, Inf)
		nw.AddEdge(2, 3, Finite(r(7, 2)))
		if got := nw.Solve(algo); !got.Equal(r(7, 2)) {
			t.Errorf("%v: flow = %v, want 7/2", algo, got)
		}
		if !nw.Flow(mid).Equal(r(7, 2)) {
			t.Errorf("%v: middle arc flow = %v", algo, nw.Flow(mid))
		}
	}
}

func TestDisconnectedSinkZeroFlow(t *testing.T) {
	nw := NewNetwork(4, 0, 3)
	nw.AddEdge(0, 1, Finite(numeric.FromInt(4)))
	nw.AddEdge(2, 3, Finite(numeric.FromInt(4)))
	if got := nw.Solve(Dinic); !got.IsZero() {
		t.Errorf("flow = %v, want 0", got)
	}
}

func TestZeroCapacityEdges(t *testing.T) {
	nw := NewNetwork(3, 0, 2)
	nw.AddEdge(0, 1, Finite(numeric.Zero))
	nw.AddEdge(1, 2, Finite(numeric.FromInt(3)))
	if got := nw.Solve(PushRelabel); !got.IsZero() {
		t.Errorf("flow = %v, want 0", got)
	}
}

func TestFlowPerEdge(t *testing.T) {
	nw, ids := buildDiamond()
	nw.Solve(Dinic)
	// Into the sink: flows on a→t and b→t must sum to 5.
	total := nw.Flow(ids[3]).Add(nw.Flow(ids[4]))
	if !total.Equal(numeric.FromInt(5)) {
		t.Errorf("sink inflow = %v", total)
	}
}

func TestMinCutDiamond(t *testing.T) {
	nw, _ := buildDiamond()
	nw.Solve(Dinic)
	minSide := nw.MinCutSourceSide(false)
	maxSide := nw.MinCutSourceSide(true)
	if !minSide[0] || minSide[3] {
		t.Errorf("minimal side wrong: %v", minSide)
	}
	if !maxSide[0] || maxSide[3] {
		t.Errorf("maximal side wrong: %v", maxSide)
	}
	// Minimal side ⊆ maximal side.
	for v := range minSide {
		if minSide[v] && !maxSide[v] {
			t.Errorf("minimal side not contained in maximal side at %v", v)
		}
	}
	// Both sides must induce cuts of value 5.
	for _, side := range [][]bool{minSide, maxSide} {
		if got := cutValue(nw, side); !got.Equal(numeric.FromInt(5)) {
			t.Errorf("cut value = %v, want 5 (side %v)", got, side)
		}
	}
}

// cutValue computes the capacity of the cut induced by side.
func cutValue(nw *Network, side []bool) numeric.Rat {
	total := numeric.Zero
	for u := 0; u < nw.n; u++ {
		if !side[u] {
			continue
		}
		for _, id := range nw.adj[u] {
			if id%2 != 0 {
				continue
			}
			if !side[nw.arcs[id].to] {
				total = total.Add(nw.arcs[id].cap)
			}
		}
	}
	return total
}

// randomNetwork builds a random DAG-ish network with integer capacities.
func randomNetwork(rng *rand.Rand, n int) *Network {
	nw := NewNetwork(n, 0, n-1)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (v == 0) || (u == n-1) {
				continue
			}
			if rng.Float64() < 0.45 {
				nw.AddEdge(u, v, Finite(numeric.FromInt(int64(rng.Intn(10)))))
			}
		}
	}
	return nw
}

// bruteMinCut enumerates all s-t cuts of a small network.
func bruteMinCut(nw *Network) numeric.Rat {
	inner := []int{}
	for v := 0; v < nw.n; v++ {
		if v != nw.s && v != nw.t {
			inner = append(inner, v)
		}
	}
	best := numeric.Rat{}
	first := true
	for mask := 0; mask < 1<<len(inner); mask++ {
		side := make([]bool, nw.n)
		side[nw.s] = true
		for i, v := range inner {
			side[v] = mask&(1<<i) != 0
		}
		val := cutValue(nw, side)
		if first || val.Less(best) {
			best = val
			first = false
		}
	}
	return best
}

func TestRandomNetworksAgainstBruteForceAndEachOther(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(6) + 3 // 3..8 nodes: brute force is 2^(n-2) ≤ 64 cuts
		proto := randomNetwork(rng, n)
		want := bruteMinCut(proto)

		gotD := proto.Solve(Dinic)
		if err := proto.CheckConservation(); err != nil {
			t.Fatalf("trial %d dinic conservation: %v", trial, err)
		}
		if !gotD.Equal(want) {
			t.Fatalf("trial %d: dinic flow %v != brute min cut %v", trial, gotD, want)
		}

		gotP := proto.Solve(PushRelabel)
		if err := proto.CheckConservation(); err != nil {
			t.Fatalf("trial %d push-relabel conservation: %v", trial, err)
		}
		if !gotP.Equal(want) {
			t.Fatalf("trial %d: push-relabel flow %v != brute min cut %v", trial, gotP, want)
		}

		gotE := proto.Solve(EdmondsKarp)
		if err := proto.CheckConservation(); err != nil {
			t.Fatalf("trial %d edmonds-karp conservation: %v", trial, err)
		}
		if !gotE.Equal(want) {
			t.Fatalf("trial %d: edmonds-karp flow %v != brute min cut %v", trial, gotE, want)
		}

		// Min-cut sides must both achieve the optimum.
		proto.Solve(Dinic)
		for _, maximal := range []bool{false, true} {
			side := proto.MinCutSourceSide(maximal)
			if !side[proto.s] || side[proto.t] {
				t.Fatalf("trial %d: invalid cut side", trial)
			}
			if got := cutValue(proto, side); !got.Equal(want) {
				t.Fatalf("trial %d: cut side value %v != %v (maximal=%v)", trial, got, want, maximal)
			}
		}
	}
}

func TestMaximalSideContainsMinimalSide(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		nw := randomNetwork(rng, rng.Intn(8)+3)
		nw.Solve(Dinic)
		minSide := nw.MinCutSourceSide(false)
		maxSide := nw.MinCutSourceSide(true)
		for v := range minSide {
			if minSide[v] && !maxSide[v] {
				t.Fatalf("trial %d: lattice violated at node %d", trial, v)
			}
		}
	}
}

func TestResolveResetsFlows(t *testing.T) {
	nw, _ := buildDiamond()
	a := nw.Solve(Dinic)
	b := nw.Solve(Dinic)
	if !a.Equal(b) {
		t.Fatalf("re-solve changed value: %v vs %v", a, b)
	}
}

func TestAddEdgeAfterSolvePanics(t *testing.T) {
	nw, _ := buildDiamond()
	nw.Solve(Dinic)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge after solve did not panic")
		}
	}()
	nw.AddEdge(0, 1, Inf)
}

func TestBadNetworkParamsPanic(t *testing.T) {
	for _, c := range []struct{ n, s, t int }{{1, 0, 0}, {3, -1, 2}, {3, 0, 3}, {3, 1, 1}} {
		func() {
			defer func() { recover() }()
			NewNetwork(c.n, c.s, c.t)
			t.Errorf("NewNetwork(%v) did not panic", c)
		}()
	}
}

package maxflow

// Minimum-cut extraction. After a max flow has been computed the min cuts
// form a lattice; the two extreme elements matter to the bottleneck solver:
//
//   - the minimal source side (reachable from s in the residual graph), and
//   - the maximal source side (complement of the nodes that can still reach
//     t in the residual graph), whose left-vertex restriction is the union
//     of all minimizers — exactly the maximal bottleneck of Definition 2.

// MinCutSourceSide returns, after solving, the indicator of the source side
// of a minimum cut. With maximal == false it returns the minimal source
// side; with maximal == true, the maximal one.
func (nw *Network) MinCutSourceSide(maximal bool) []bool {
	if !nw.solved {
		panic("maxflow: MinCutSourceSide before solving")
	}
	if !maximal {
		// Forward reachability from s over positive residual arcs.
		side := make([]bool, nw.n)
		side[nw.s] = true
		stack := []int{nw.s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, id := range nw.adj[u] {
				if v := nw.arcs[id].to; !side[v] && nw.residual(id).Sign() > 0 {
					side[v] = true
					stack = append(stack, v)
				}
			}
		}
		return side
	}
	// Backward reachability to t: v can reach t iff some residual arc
	// v → x exists with x already known to reach t. Walk the reverse
	// residual graph from t: arc id = (u → x) with residual > 0 gives the
	// reverse step x → u, discovered by scanning x's adjacency, where the
	// paired arc id^1 = (x → u) lets us recover u and residual(id).
	reachT := make([]bool, nw.n)
	reachT[nw.t] = true
	stack := []int{nw.t}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range nw.adj[x] {
			u := nw.arcs[id].to // arc id is x → u, so id^1 is u → x
			if !reachT[u] && nw.residual(id^1).Sign() > 0 {
				reachT[u] = true
				stack = append(stack, u)
			}
		}
	}
	side := make([]bool, nw.n)
	for v := range side {
		side[v] = !reachT[v]
	}
	return side
}

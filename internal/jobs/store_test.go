package jobs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
)

func openStore(t *testing.T, dir string, cfg StoreConfig) *Store {
	t.Helper()
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func submitN(t *testing.T, st *Store, n int) []*Record {
	t.Helper()
	out := make([]*Record, n)
	for i := range out {
		rec, created, err := st.Submit(context.Background(), Submission{
			Key:  fmt.Sprintf("key-%d", i),
			Kind: "sweep",
			Spec: []byte(fmt.Sprintf(`{"i":%d}`, i)),
		})
		if err != nil || !created {
			t.Fatalf("Submit %d: created=%v err=%v", i, created, err)
		}
		out[i] = rec
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openStore(t, dir, StoreConfig{})
	recs := submitN(t, st, 3)

	// Drive job 0 through a full lifecycle with checkpoints.
	if _, err := st.Update(ctx, recs[0].ID, func(r *Record) error {
		r.State = StateRunning
		r.StartedUnixNano = 42
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPoints(ctx, recs[0].ID, 0, []Point{{W1: "0", U: "1"}, {W1: "1/2", U: "3/2"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPoints(ctx, recs[0].ID, 2, []Point{{W1: "1", U: "2"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(ctx, recs[0].ID, func(r *Record) error {
		r.State = StateDone
		r.Result = []byte(`{"ok":true}`)
		r.FinishedUnixNano = 43
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, StoreConfig{})
	got, ok := re.Get(recs[0].ID)
	if !ok {
		t.Fatal("job 0 lost across reopen")
	}
	if got.State != StateDone || string(got.Result) != `{"ok":true}` {
		t.Fatalf("job 0 state %q result %q", got.State, got.Result)
	}
	if got.NextIndex != 3 || len(got.Points) != 3 || got.Points[1] != (Point{W1: "1/2", U: "3/2"}) {
		t.Fatalf("job 0 checkpoint: next=%d points=%v", got.NextIndex, got.Points)
	}
	if got.StartedUnixNano != 42 || got.FinishedUnixNano != 43 {
		t.Fatalf("timestamps lost: %+v", got)
	}
	for _, want := range recs[1:] {
		r, ok := re.Get(want.ID)
		if !ok || r.State != StateQueued || string(r.Spec) != string(want.Spec) {
			t.Fatalf("job %s not recovered as queued: %+v", want.ID, r)
		}
	}
	if s := re.Stats(); s.Recovered != 3 || s.Resumable != 2 {
		t.Fatalf("stats after reopen: %+v", s)
	}
}

func TestStoreDedupe(t *testing.T) {
	ctx := context.Background()
	st := openStore(t, t.TempDir(), StoreConfig{})
	sub := Submission{Key: "same", Kind: "sweep", Spec: []byte(`{}`)}
	a, created, err := st.Submit(ctx, sub)
	if err != nil || !created {
		t.Fatalf("first submit: %v %v", created, err)
	}
	b, created, err := st.Submit(ctx, sub)
	if err != nil || created {
		t.Fatalf("duplicate submit created a job: %v", err)
	}
	if a.ID != b.ID || b.Attempt != 1 {
		t.Fatalf("dedupe mismatch: %s vs %s (attempt %d)", a.ID, b.ID, b.Attempt)
	}
	if a.ID != IDForKey("same") {
		t.Fatalf("ID %s not content-addressed", a.ID)
	}

	// A done job still dedupes; a failed one restarts as a new attempt.
	if _, err := st.Update(ctx, a.ID, func(r *Record) error {
		r.State = StateFailed
		r.Error = "boom"
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c, created, err := st.Submit(ctx, sub)
	if err != nil || !created {
		t.Fatalf("resubmit after failure: created=%v err=%v", created, err)
	}
	if c.ID != a.ID || c.Attempt != 2 || c.State != StateQueued || c.Error != "" || c.NextIndex != 0 {
		t.Fatalf("restart record: %+v", c)
	}
}

func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openStore(t, dir, StoreConfig{})
	recs := submitN(t, st, 2)
	if err := st.AppendPoints(ctx, recs[0].ID, 0, []Point{{W1: "0", U: "0"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: append half a frame of garbage.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(walPath)

	re := openStore(t, dir, StoreConfig{})
	if s := re.Stats(); !s.TornTail || s.Recovered != 2 {
		t.Fatalf("stats: %+v, want torn tail with 2 recovered", s)
	}
	got, _ := re.Get(recs[0].ID)
	if got.NextIndex != 1 || len(got.Points) != 1 {
		t.Fatalf("checkpoint lost with the torn tail: %+v", got)
	}
	after, _ := os.Stat(walPath)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestStoreCorruptFrameDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openStore(t, dir, StoreConfig{})
	rec := submitN(t, st, 1)[0]
	if err := st.AppendPoints(ctx, rec.ID, 0, []Point{{W1: "0", U: "0"}}); err != nil {
		t.Fatal(err)
	}
	mark, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPoints(ctx, rec.ID, 1, []Point{{W1: "1/2", U: "1"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the last frame: its CRC must reject it, and
	// replay must stop there rather than trust the rest of the file.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[mark.Size()+9] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, StoreConfig{})
	got, _ := re.Get(rec.ID)
	if got.NextIndex != 1 || len(got.Points) != 1 {
		t.Fatalf("want resume at 1 after corrupt second checkpoint, got %+v", got)
	}
	if s := re.Stats(); !s.TornTail {
		t.Fatalf("corruption not reported as torn tail: %+v", s)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// Tiny threshold: every append triggers compaction.
	st := openStore(t, dir, StoreConfig{CompactBytes: 1})
	rec := submitN(t, st, 1)[0]
	for i := 0; i < 5; i++ {
		if err := st.AppendPoints(ctx, rec.ID, i, []Point{{W1: fmt.Sprintf("%d", i), U: "1"}}); err != nil {
			t.Fatal(err)
		}
	}
	if s := st.Stats(); s.Compactions == 0 {
		t.Fatalf("no compaction at CompactBytes=1: %+v", s)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir, StoreConfig{})
	got, _ := re.Get(rec.ID)
	if got.NextIndex != 5 || len(got.Points) != 5 {
		t.Fatalf("state lost across compaction: %+v", got)
	}
}

// TestStoreStaleWALReplay covers the crash window between snapshot publish
// and WAL truncation: replaying the full stale log over the new snapshot
// must converge to the same state, not corrupt it.
func TestStoreStaleWALReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openStore(t, dir, StoreConfig{CompactBytes: -1})
	rec := submitN(t, st, 1)[0]
	for i := 0; i < 4; i++ {
		if err := st.AppendPoints(ctx, rec.ID, i, []Point{{W1: fmt.Sprintf("%d/4", i), U: "1"}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Update(ctx, rec.ID, func(r *Record) error {
		r.State = StateRunning
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand but "crash" before truncating the WAL.
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, StoreConfig{})
	got, _ := re.Get(rec.ID)
	if got.State != StateRunning || got.NextIndex != 4 || len(got.Points) != 4 {
		t.Fatalf("stale-WAL replay diverged: %+v", got)
	}
	if got.Points[3] != (Point{W1: "3/4", U: "1"}) {
		t.Fatalf("points corrupted: %v", got.Points)
	}
}

func TestStoreList(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	recs := submitN(t, st, 5)
	if _, err := st.Update(context.Background(), recs[2].ID, func(r *Record) error {
		r.State = StateDone
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	page1, next := st.List(ListOptions{Limit: 2})
	if len(page1) != 2 || next == 0 {
		t.Fatalf("page1: %d items, cursor %d", len(page1), next)
	}
	page2, next := st.List(ListOptions{Limit: 2, AfterSeq: next})
	if len(page2) != 2 || next == 0 {
		t.Fatalf("page2: %d items, cursor %d", len(page2), next)
	}
	page3, next := st.List(ListOptions{Limit: 2, AfterSeq: next})
	if len(page3) != 1 || next != 0 {
		t.Fatalf("page3: %d items, cursor %d", len(page3), next)
	}
	var ids []string
	for _, r := range append(append(page1, page2...), page3...) {
		ids = append(ids, r.ID)
	}
	want := []string{recs[0].ID, recs[1].ID, recs[2].ID, recs[3].ID, recs[4].ID}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("pagination order %v, want %v", ids, want)
	}

	done, _ := st.List(ListOptions{State: StateDone})
	if len(done) != 1 || done[0].ID != recs[2].ID {
		t.Fatalf("state filter: %+v", done)
	}
}

func TestStoreWALFaultInjection(t *testing.T) {
	st := openStore(t, t.TempDir(), StoreConfig{})
	inj, err := fault.New(1, fault.Rule{Site: fault.SiteJobsWAL, Kind: fault.KindError, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := fault.ContextWith(context.Background(), inj)
	if _, _, err := st.Submit(ctx, Submission{Key: "k", Kind: "sweep"}); err == nil {
		t.Fatal("injected WAL fault did not fail the submit")
	}
	// The failed submit must leave no trace: a clean retry succeeds.
	rec, created, err := st.Submit(context.Background(), Submission{Key: "k", Kind: "sweep"})
	if err != nil || !created {
		t.Fatalf("clean submit after injected failure: created=%v err=%v", created, err)
	}
	if _, ok := st.Get(rec.ID); !ok {
		t.Fatal("record missing after clean submit")
	}
}

func TestStoreCheckpointValidation(t *testing.T) {
	ctx := context.Background()
	st := openStore(t, t.TempDir(), StoreConfig{})
	rec := submitN(t, st, 1)[0]
	if err := st.AppendPoints(ctx, rec.ID, 3, []Point{{W1: "1", U: "1"}}); err == nil {
		t.Fatal("gap checkpoint accepted")
	}
	if err := st.AppendPoints(ctx, "no-such-job", 0, []Point{{W1: "1", U: "1"}}); err == nil {
		t.Fatal("checkpoint for unknown job accepted")
	}
	if _, err := st.Update(ctx, rec.ID, func(r *Record) error {
		r.State = "exploded"
		return nil
	}); err == nil {
		t.Fatal("unknown state accepted")
	}
}

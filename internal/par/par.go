// Package par provides the small deterministic parallelism helpers used by
// the dynamics simulator and the experiment sweeps: bounded worker pools
// over index ranges, with panics propagated to the caller.
//
// The helpers are deliberately synchronous (fork-join): every call returns
// only after all work items completed, so callers can treat them as drop-in
// replacements for sequential loops. Work is handed out by atomic counter,
// which keeps the schedule dynamic (good for skewed item costs) while the
// results remain deterministic because items never share mutable state.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the effective worker count for a requested value: n itself
// when n ≥ 1, otherwise GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers ≤ 0 means GOMAXPROCS). It panics with the first worker panic, if
// any, after all workers have stopped.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("par: worker panicked: %v", panicVal))
	}
}

// Map applies fn to every index in [0, n) and collects the results in order.
func Map[R any](n, workers int, fn func(i int) R) []R {
	out := make([]R, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

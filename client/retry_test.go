package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// transportErr dials a scripted server to produce a REAL error of the named
// class — the table test below must classify what the net stack actually
// returns, not hand-built sentinels.
func transportErr(t *testing.T, class string) error {
	t.Helper()
	switch class {
	case "connection_refused":
		// Bind a port, release it, dial it: nobody is listening.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		c := New("http://"+addr, WithMaxAttempts(1))
		_, err = c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}})
		return err
	case "connection_reset":
		// Accept, then close with a pending RST (SetLinger 0) before reading.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.(*net.TCPConn).SetLinger(0)
			conn.Close()
		}()
		c := New("http://"+ln.Addr().String(), WithMaxAttempts(1))
		_, err = c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}})
		return err
	case "truncated_response":
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Length", "1000")
			w.Write([]byte(`{"partial`)) // then the handler returns: body is cut short
		}))
		defer ts.Close()
		c := New(ts.URL, WithMaxAttempts(1))
		_, err := c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}})
		return err
	case "context_canceled":
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		defer ts.Close()
		c := New(ts.URL, WithMaxAttempts(1))
		_, err := c.Ratio(ctx, &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}})
		return err
	default:
		t.Fatalf("unknown class %q", class)
		return nil
	}
}

// statusErr produces the APIError a server answering with the given status
// generates.
func statusErr(t *testing.T, status int, retryAfter string) error {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"code":"test_code","message":"scripted"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithMaxAttempts(1))
	_, err := c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}})
	return err
}

// TestRetryPredicateByErrorClass pins the retry/failover classification of
// every transport-error and gateway-status class the cluster router can
// surface: connection refused and 502/504 must be retryable AND rotate the
// base list; per-node backpressure (429/503) retries without rotating; the
// caller's own dead context and input errors do neither.
func TestRetryPredicateByErrorClass(t *testing.T) {
	cases := []struct {
		name       string
		err        func(t *testing.T) error
		wantRetry  bool
		wantRotate bool
		wantAPIErr bool
	}{
		{"connection_refused", func(t *testing.T) error { return transportErr(t, "connection_refused") }, true, true, false},
		{"connection_reset", func(t *testing.T) error { return transportErr(t, "connection_reset") }, true, true, false},
		{"truncated_response", func(t *testing.T) error { return transportErr(t, "truncated_response") }, true, true, false},
		{"context_canceled", func(t *testing.T) error { return transportErr(t, "context_canceled") }, false, false, false},
		{"bad_gateway_502", func(t *testing.T) error { return statusErr(t, http.StatusBadGateway, "") }, true, true, true},
		{"gateway_timeout_504", func(t *testing.T) error { return statusErr(t, http.StatusGatewayTimeout, "") }, true, true, true},
		{"overloaded_429", func(t *testing.T) error { return statusErr(t, http.StatusTooManyRequests, "1") }, true, false, true},
		{"busy_503", func(t *testing.T) error { return statusErr(t, http.StatusServiceUnavailable, "") }, true, false, true},
		{"bad_request_400", func(t *testing.T) error { return statusErr(t, http.StatusBadRequest, "") }, false, false, true},
		{"internal_500", func(t *testing.T) error { return statusErr(t, http.StatusInternalServerError, "") }, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err(t)
			if err == nil {
				t.Fatal("scripted failure produced no error")
			}
			if got := retryable(err); got != tc.wantRetry {
				t.Errorf("retryable(%v) = %v, want %v", err, got, tc.wantRetry)
			}
			if got := nodeFailure(err); got != tc.wantRotate {
				t.Errorf("nodeFailure(%v) = %v, want %v", err, got, tc.wantRotate)
			}
			var apiErr *APIError
			if got := errors.As(err, &apiErr); got != tc.wantAPIErr {
				t.Errorf("errors.As APIError = %v, want %v (err: %v)", got, tc.wantAPIErr, err)
			}
		})
	}
}

// TestFailoverToFallbackBase proves the base-list rotation end to end: the
// primary endpoint is dead (connection refused), the fallback answers, and
// one call succeeds within the retry budget instead of burning every
// attempt on the corpse.
func TestFailoverToFallbackBase(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	var hits atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, `{"ratio":"1","honest":"1","sybil_best":"1","w1":"0","w2":"0"}`)
	}))
	defer live.Close()

	c := New(dead, WithFallbacks(live.URL), WithSeed(1),
		WithBackoff(time.Millisecond, 2*time.Millisecond))
	if _, err := c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}}); err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if hits.Load() == 0 {
		t.Fatal("fallback base never received the request")
	}
	// The rotation is sticky: the next call goes straight to the live base.
	before := hits.Load()
	if _, err := c.Ratio(context.Background(), &RatioRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}}); err != nil {
		t.Fatalf("second call: %v", err)
	}
	if hits.Load() != before+1 {
		t.Fatalf("second call did not stick to the live base (hits %d → %d)", before, hits.Load())
	}
}

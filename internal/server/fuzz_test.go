package server

import (
	"encoding/json"
	"net/http/httptest"
	"slices"
	"testing"

	"repro/internal/mechanism"
)

// FuzzRatDecode throws arbitrary strings at the wire-format rational
// decoder. Accepted values must encode back to a canonical fixed point
// (decode∘encode = identity on the encoded form) and survive a JSON round
// trip. This target surfaced the big.Rat exponent expansion ("1e999999999"
// materializing a billion-digit integer), now rejected by numeric.Parse.
func FuzzRatDecode(f *testing.F) {
	f.Add("0")
	f.Add("1")
	f.Add("-7")
	f.Add("22/7")
	f.Add("-3/9")
	f.Add("0.125")
	f.Add("1e3")
	f.Add("1e999999999")
	f.Add("1/0")
	f.Add("9223372036854775807")
	f.Add("170141183460469231731687303715884105727/3")
	f.Add(" 1")
	f.Add("+2/4")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := DecodeRat(input)
		if err != nil {
			return
		}
		enc := EncodeRat(r)
		r2, err := DecodeRat(enc)
		if err != nil {
			t.Fatalf("decode of own encoding %q: %v", enc, err)
		}
		if !r.Equal(r2) {
			t.Fatalf("decode(encode(%q)) = %v, want %v", input, r2, r)
		}
		if EncodeRat(r2) != enc {
			t.Fatalf("encoding not a fixed point: %q -> %q", enc, EncodeRat(r2))
		}
		// The wire format carries rationals as JSON strings; a full JSON
		// round trip must preserve the canonical form.
		blob, err := json.Marshal(enc)
		if err != nil {
			t.Fatalf("marshal %q: %v", enc, err)
		}
		var back string
		if err := json.Unmarshal(blob, &back); err != nil || back != enc {
			t.Fatalf("JSON round trip %q -> %q (err %v)", enc, back, err)
		}
	})
}

// FuzzScenarioRequest throws arbitrary JSON at the /v1/scenario request
// validator (k bounds, grid bounds, member sets, topology family specs).
// The target exercises validateScenario directly against a recorder rather
// than the live endpoint, so fuzzer-synthesized scans are sized but never
// executed. The contract: no panic; an accepted request has a resolved kind
// and a point total within the admission cap; a rejected one answers a 4xx
// with one of the documented stable codes.
func FuzzScenarioRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"kind":"ksybil","graph":{"ring":["1","2","3"]},"v":0,"k":3,"grid":4}`,
		`{"kind":"ksybil","graph":{"ring":["1","2","3"]},"v":0,"k":9}`,
		`{"kind":"ksybil","graph":{"ring":["1","2","3"]},"v":0,"k":8,"grid":512}`,
		`{"kind":"ksybil","graph":{"path":["1","2","3"]},"v":0}`,
		`{"kind":"ksybil","graph":{"ring":["1","2","3"]},"v":-1}`,
		`{"kind":"coalition","graph":{"ring":["1","2","3","4","5"]},"members":[0,2],"grid":3}`,
		`{"kind":"coalition","graph":{"ring":["1","2","3","4","5"]},"members":[1,1]}`,
		`{"kind":"coalition","graph":{"ring":["1","2","3","4","5"]},"members":[0,1,2,3,4]}`,
		`{"kind":"coalition","graph":{"ring":["1","2","3","4","5"]},"members":[0,1,2,3],"grid":9}`,
		`{"kind":"topology","families":["ring","tree"],"count":1,"n":5,"grid":3}`,
		`{"kind":"topology","families":["torus"]}`,
		`{"kind":"topology","families":["ring","ring"]}`,
		`{"kind":"topology","n":1000000}`,
		`{"kind":"topology","grid":-3}`,
		`{"kind":"topology","dist":"zipf"}`,
		`{"kind":"topology","families":["ring"],"cert":true,"mechanism":"eqsplit"}`,
		`{"kind":"quantum"}`,
		`{"kind":"ksybil","graph":{"ring":["1","1e999999999","3"]},"v":0}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	srv, err := New(Config{Logger: discardLogger()})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	knownCodes := map[string]bool{
		CodeBadBody: true, CodeBadGraph: true, CodeNotRing: true,
		CodeBadAgent: true, CodeBadGrid: true, CodeScenarioLimit: true,
		CodeUnknownTopology: true, CodeUnknownMechanism: true,
		CodeCertLimit: true,
	}

	f.Fuzz(func(t *testing.T, body string) {
		var req ScenarioRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			return
		}
		rec := httptest.NewRecorder()
		spec, _, _, ok := srv.validateScenario(rec, &req)
		if ok {
			if spec.Kind == "" || spec.Total < 1 || spec.Total > maxScenarioPoints {
				t.Fatalf("accepted spec out of bounds: %+v (body %q)", spec, body)
			}
			return
		}
		if rec.Code < 400 || rec.Code >= 500 {
			t.Fatalf("rejection with status %d (body %q): %s", rec.Code, body, rec.Body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !knownCodes[er.Code] {
			t.Fatalf("unstable error code %q (err %v) for body %q: %s", er.Code, err, body, rec.Body)
		}
	})
}

// FuzzMechanismField throws arbitrary strings at the "mechanism" wire field
// of /v1/allocate. The contract under fuzz: the server never crashes, and
// the answer is exactly 200 for a registered name (or the empty default)
// and 400 unknown_mechanism for everything else — no third outcome, no
// case folding, no trimming.
func FuzzMechanismField(f *testing.F) {
	f.Add("")
	f.Add("bd")
	f.Add("pr")
	f.Add("eqsplit")
	f.Add("quantum")
	f.Add("BD")
	f.Add("bd ")
	f.Add(" bd")
	f.Add("bd\x00")
	f.Add("bd;m=pr")
	f.Add("механизм")

	srv, err := New(Config{Logger: discardLogger()})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)
	f.Cleanup(func() { srv.Close() })
	known := mechanism.Names()

	f.Fuzz(func(t *testing.T, name string) {
		status, raw := postJSON(t, ts.URL, "/v1/allocate",
			AllocateRequest{Graph: WireGraph{Ring: []string{"1", "2", "3"}}, Mechanism: name})
		if name == "" || slices.Contains(known, name) {
			if status != 200 {
				t.Fatalf("registered mechanism %q rejected: %d %s", name, status, raw)
			}
			return
		}
		if status != 400 {
			t.Fatalf("unknown mechanism %q: status %d %s", name, status, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Code != CodeUnknownMechanism {
			t.Fatalf("unknown mechanism %q: body %s (err %v)", name, raw, err)
		}
	})
}

// Package server implements irshared, a long-running HTTP/JSON service over
// the resource-sharing library: bottleneck decompositions, BD allocations,
// equilibrium utilities, and the Sybil incentive-ratio analysis of rings,
// exposed as five /v1 endpoints.
//
// The service layers three pieces of machinery over the exact solvers:
//
//   - a bounded worker pool (par.Limiter) admitting requests to the heavy
//     computations, with per-request timeouts and cancellation threaded all
//     the way into the Dinkelbach/DP loops,
//   - a size-bounded LRU cache keyed by the canonical exact-rational
//     instance encoding, so repeated graphs reuse decompositions, BD
//     allocations and core.Instance solver state across requests,
//   - micro-batching of /v1/ratio requests: concurrent requests for the
//     same (instance, agent, grid) join one shared optimizer run.
//
// Everything on the wire is exact: rationals are serialized as canonical
// "p/q" strings (decoded by DecodeRat, the codec fuzzed by FuzzRatDecode),
// so API answers are bit-identical to in-process results — the differential
// tests enforce this.
package server

import (
	"fmt"
	"strings"

	"repro/internal/bottleneck"
	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// maxRatLen bounds one rational on the wire. Canonical forms of every
// quantity the service produces are far shorter; the limit exists so a
// hostile weight string cannot turn into an outsized big.Int parse.
const maxRatLen = 4096

// DecodeRat parses the wire form of an exact rational: an integer "42", a
// fraction "3/4", or a decimal "0.25" (numeric.Parse's grammar), at most
// maxRatLen bytes. This is the single entry point for rationals crossing
// the API boundary, and the target of FuzzRatDecode.
func DecodeRat(s string) (numeric.Rat, error) {
	if len(s) > maxRatLen {
		return numeric.Rat{}, fmt.Errorf("server: rational literal of %d bytes exceeds limit %d", len(s), maxRatLen)
	}
	return numeric.Parse(s)
}

// EncodeRat renders r in the canonical wire form ("n" or "n/d"). It is the
// inverse of DecodeRat on canonical strings: DecodeRat(EncodeRat(r)) == r
// and EncodeRat is a fixed point of the round trip.
func EncodeRat(r numeric.Rat) string { return r.String() }

// decodeRats decodes a weight vector, labeling errors with the field name.
func decodeRats(field string, ss []string) ([]numeric.Rat, error) {
	out := make([]numeric.Rat, len(ss))
	for i, s := range ss {
		r, err := DecodeRat(s)
		if err != nil {
			return nil, fmt.Errorf("%s[%d]: %w", field, i, err)
		}
		if r.Sign() < 0 {
			return nil, fmt.Errorf("%s[%d]: negative weight %s", field, i, s)
		}
		out[i] = r
	}
	return out, nil
}

// encodeRats renders a rational vector in wire form.
func encodeRats(rs []numeric.Rat) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = EncodeRat(r)
	}
	return out
}

// maxWireVertices caps request graphs. The solvers are exact and
// polynomial, but a service must bound the work one request can demand.
const maxWireVertices = 4096

// WireGraph is the JSON form of an instance. Exactly one of the three
// shapes must be used: Ring and Path are conveniences expanding to the
// obvious cycle/path over their weights; the general form gives N, Weights
// and Edges explicitly.
type WireGraph struct {
	N       int      `json:"n,omitempty"`
	Weights []string `json:"weights,omitempty"`
	Edges   [][2]int `json:"edges,omitempty"`
	Ring    []string `json:"ring,omitempty"`
	Path    []string `json:"path,omitempty"`
}

// Build validates the wire graph and constructs the in-memory instance.
func (wg *WireGraph) Build() (*graph.Graph, error) {
	shapes := 0
	for _, on := range []bool{len(wg.Ring) > 0, len(wg.Path) > 0, wg.N > 0 || len(wg.Weights) > 0 || len(wg.Edges) > 0} {
		if on {
			shapes++
		}
	}
	if shapes != 1 {
		return nil, fmt.Errorf("graph: give exactly one of ring, path, or n/weights/edges")
	}
	switch {
	case len(wg.Ring) > 0:
		if len(wg.Ring) < 3 {
			return nil, fmt.Errorf("graph: ring needs at least 3 vertices, got %d", len(wg.Ring))
		}
		if len(wg.Ring) > maxWireVertices {
			return nil, fmt.Errorf("graph: %d vertices exceed limit %d", len(wg.Ring), maxWireVertices)
		}
		ws, err := decodeRats("ring", wg.Ring)
		if err != nil {
			return nil, err
		}
		return graph.Ring(ws), nil
	case len(wg.Path) > 0:
		if len(wg.Path) > maxWireVertices {
			return nil, fmt.Errorf("graph: %d vertices exceed limit %d", len(wg.Path), maxWireVertices)
		}
		ws, err := decodeRats("path", wg.Path)
		if err != nil {
			return nil, err
		}
		return graph.Path(ws), nil
	}
	if wg.N <= 0 || wg.N > maxWireVertices {
		return nil, fmt.Errorf("graph: vertex count %d outside [1, %d]", wg.N, maxWireVertices)
	}
	if len(wg.Weights) != wg.N {
		return nil, fmt.Errorf("graph: %d weights for %d vertices", len(wg.Weights), wg.N)
	}
	ws, err := decodeRats("weights", wg.Weights)
	if err != nil {
		return nil, err
	}
	g := graph.New(wg.N)
	if err := g.SetWeights(ws); err != nil {
		return nil, err
	}
	for i, e := range wg.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= wg.N || v < 0 || v >= wg.N {
			return nil, fmt.Errorf("edges[%d]: (%d,%d) out of range", i, u, v)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("edges[%d]: %v", i, err)
		}
	}
	return g, nil
}

// CanonicalKey renders g as the canonical exact-rational instance encoding
// used as the cache key: vertex count, canonical weight strings in index
// order, and the sorted edge list. Two requests describing the same
// instance — whether via ring/path shorthand or explicit edges, and
// whatever representation their rationals arrived in ("2/6" vs "1/3") —
// produce the same key.
func CanonicalKey(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d;w", g.N())
	for v := 0; v < g.N(); v++ {
		if v > 0 {
			b.WriteByte(',')
		}
		b.WriteString(g.Weight(v).String())
	}
	b.WriteString(";e")
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
	}
	return b.String()
}

// parseEngine maps the wire engine name (empty = auto) to the solver enum.
func parseEngine(s string) (bottleneck.Engine, error) {
	switch s {
	case "", "auto":
		return bottleneck.EngineAuto, nil
	case "flow":
		return bottleneck.EngineFlow, nil
	case "path-dp":
		return bottleneck.EnginePathDP, nil
	case "brute":
		return bottleneck.EngineBrute, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

// Request and response bodies of the five endpoints. All rationals are
// canonical "p/q" strings; the golden tests pin these shapes.

// DecomposeRequest is the body of POST /v1/decompose.
type DecomposeRequest struct {
	Graph  WireGraph `json:"graph"`
	Engine string    `json:"engine,omitempty"`
}

// WirePair is one bottleneck pair (B_i, C_i, α_i).
type WirePair struct {
	B     []int  `json:"b"`
	C     []int  `json:"c"`
	Alpha string `json:"alpha"`
}

// WireVertex is the per-vertex view of a decomposition.
type WireVertex struct {
	Index   int    `json:"index"`
	Label   string `json:"label"`
	Weight  string `json:"weight"`
	Class   string `json:"class"`
	Alpha   string `json:"alpha"`
	Utility string `json:"utility"`
}

// DecomposeResponse is the body of a /v1/decompose answer.
type DecomposeResponse struct {
	Pairs     []WirePair   `json:"pairs"`
	Vertices  []WireVertex `json:"vertices"`
	Signature string       `json:"signature"`
}

// AllocateRequest is the body of POST /v1/allocate. Mechanism selects the
// allocation backend by registry name ("" = "bd", bit-identical to before
// the field existed; see GET /v1/mechanisms); an unknown name answers 400
// unknown_mechanism. Engine tunes the bottleneck solver and therefore only
// applies to decomposition-based mechanisms.
type AllocateRequest struct {
	Graph     WireGraph `json:"graph"`
	Engine    string    `json:"engine,omitempty"`
	Mechanism string    `json:"mechanism,omitempty"`
}

// WireTransfer is one directed allocation x[from → to] > 0.
type WireTransfer struct {
	From   int    `json:"from"`
	To     int    `json:"to"`
	Amount string `json:"amount"`
}

// AllocateResponse is the body of a /v1/allocate answer. Transfers list
// every nonzero x[u → v] in lexicographic (from, to) order.
type AllocateResponse struct {
	Transfers []WireTransfer `json:"transfers"`
	Utilities []string       `json:"utilities"`
}

// UtilitiesRequest is the body of POST /v1/utilities.
type UtilitiesRequest struct {
	Graph  WireGraph `json:"graph"`
	Engine string    `json:"engine,omitempty"`
}

// UtilitiesResponse is the body of a /v1/utilities answer.
type UtilitiesResponse struct {
	Utilities   []string `json:"utilities"`
	Total       string   `json:"total"`
	TotalWeight string   `json:"total_weight"`
}

// RatioRequest is the body of POST /v1/ratio. V is the manipulative agent;
// Grid tunes the optimizer (0 = default 64). The graph must be a ring.
// Cert (equivalently the ?cert=1 query parameter) additionally requests an
// exact-rational certificate of the answer.
type RatioRequest struct {
	Graph WireGraph `json:"graph"`
	V     int       `json:"v"`
	Grid  int       `json:"grid,omitempty"`
	Cert  bool      `json:"cert,omitempty"`
	// Mechanism selects the allocation backend ("" = "bd"). Backends without
	// an exact ring optimizer answer the empirical best over the sweep grid
	// (evals = grid+1 points, pieces = 0); certificates stay bd-only, so
	// cert with any other mechanism answers 400 cert_limit.
	Mechanism string `json:"mechanism,omitempty"`
}

// RatioResponse is the body of a /v1/ratio answer: the attacker's honest
// utility, the optimizer's certified best split and the incentive ratio,
// with the exact Theorem 8 check ratio ≤ 2.
//
// Certificate, present only when the request opted in with cert, is the full
// ratio-cert/v1 certificate: bottleneck covers with Hall-condition flow
// witnesses, per-piece closed forms and the inequality chain. The server
// re-verifies it with the solver-free checker (cert.Check) before answering
// — a self-check failure is a 500 with code cert_invalid, never a silently
// wrong certificate — and clients can re-run cert.Check themselves without
// trusting the server.
type RatioResponse struct {
	Honest      string          `json:"honest"`
	BestW1      string          `json:"best_w1"`
	BestU       string          `json:"best_u"`
	Ratio       string          `json:"ratio"`
	LeqTwo      bool            `json:"leq_two"`
	Evals       int             `json:"evals"`
	Pieces      int             `json:"pieces"`
	Certificate *cert.RatioCert `json:"certificate,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: evaluate the split-utility
// curve of agent V at Grid+1 evenly spaced w1 values (0 = default 64).
// Resume, when set, is the resume_token of an earlier partial response for
// the SAME graph, agent and grid; the sweep continues from the token's next
// index instead of index 0. A token minted for a different request is
// rejected with code partial_result.
type SweepRequest struct {
	Graph  WireGraph `json:"graph"`
	V      int       `json:"v"`
	Grid   int       `json:"grid,omitempty"`
	Resume string    `json:"resume,omitempty"`
	// Cert (equivalently ?cert=1) requests a sweep-cert/v1 certificate of
	// the completed sweep segment.
	Cert bool `json:"cert,omitempty"`
	// Mechanism selects the allocation backend ("" = "bd"). Sweep state —
	// cache entries, resume tokens, durable job dedup — is mechanism-scoped:
	// a resume token minted under one mechanism is rejected under another
	// with code partial_result. Certificates stay bd-only (cert_limit).
	Mechanism string `json:"mechanism,omitempty"`
}

// WireSweepPoint is one exactly evaluated split.
type WireSweepPoint struct {
	W1 string `json:"w1"`
	U  string `json:"u"`
}

// SweepResponse is the body of a /v1/sweep answer. A complete sweep covers
// grid indices [0, grid] and omits the partial fields. When the server's
// request timeout (or the client's cancellation) cuts the sweep short, the
// response instead carries the contiguous completed prefix: Partial is
// true, Points covers indices [StartIndex, NextIndex), Best*/Ratio cover
// only those points, and ResumeToken can be sent back in SweepRequest.Resume
// to continue from NextIndex. Prefix points are bit-identical to the same
// points of an uninterrupted run.
//
// Certificate, present only when the request opted in with cert and the
// segment completed (a partial response never carries one — resume first,
// then the final segment is certified), is the sweep-cert/v1 certificate of
// the covered grid indices, self-checked by the server and re-checkable by
// the client via cert.Check.
type SweepResponse struct {
	Points      []WireSweepPoint `json:"points"`
	BestW1      string           `json:"best_w1"`
	BestU       string           `json:"best_u"`
	Honest      string           `json:"honest"`
	Ratio       string           `json:"ratio"`
	Partial     bool             `json:"partial,omitempty"`
	StartIndex  int              `json:"start_index,omitempty"`
	NextIndex   int              `json:"next_index,omitempty"`
	ResumeToken string           `json:"resume_token,omitempty"`
	Certificate *cert.SweepCert  `json:"certificate,omitempty"`
}

// Stable machine-readable error codes. Clients should branch on Code;
// Message and Detail are human-oriented and may be reworded.
const (
	// CodeBadBody: the request body is not valid JSON for the endpoint's
	// schema (syntax error, unknown field, trailing data).
	CodeBadBody = "bad_body"
	// CodeBadEngine: the engine name is not one of auto/flow/path-dp/brute.
	CodeBadEngine = "bad_engine"
	// CodeBadGraph: the wire graph fails validation (wrong shape count,
	// size limits, negative weights, out-of-range edges).
	CodeBadGraph = "bad_graph"
	// CodeNotRing: the endpoint requires a ring graph and got something else.
	CodeNotRing = "not_ring"
	// CodeBadAgent: the manipulative agent index is out of range.
	CodeBadAgent = "bad_agent"
	// CodeBadGrid: the optimizer/sweep grid is outside its allowed range.
	CodeBadGrid = "bad_grid"
	// CodeBusy: no worker slot became free within the queue timeout (503).
	CodeBusy = "busy"
	// CodeClientClosed: the client went away before the answer (499).
	CodeClientClosed = "client_closed"
	// CodeTimeout: the computation exceeded the server-side request timeout.
	CodeTimeout = "timeout"
	// CodeInternal: an unexpected computation failure (500).
	CodeInternal = "internal"
	// CodeNotFound: the referenced resource (e.g. a trace id) does not
	// exist, was evicted, or has expired.
	CodeNotFound = "not_found"
	// CodeInternalPanic: a computation panicked and was contained by the
	// server's recovery barrier (500). The process survives; the request is
	// safe to retry — under chaos testing, retrying converges to the
	// fault-free answer.
	CodeInternalPanic = "internal_panic"
	// CodeOverloaded: the request was shed before queueing because the pool
	// wait queue is saturated (429, with Retry-After). Distinguishes
	// overload (back off and retry) from hard failure.
	CodeOverloaded = "overloaded"
	// CodePartialResult: a sweep resume token is malformed or was minted for
	// a different (graph, agent, grid) than this request (400).
	CodePartialResult = "partial_result"
	// CodeCertLimit: the request asked for a certificate (or an enumeration
	// job) whose size exceeds the server's certification limits (400).
	// Certificates carry per-pair flow witnesses for every evaluated split,
	// so they are capped tighter than the plain endpoints.
	CodeCertLimit = "cert_limit"
	// CodeCertInvalid: the server built a certificate but its own solver-free
	// self-check (cert.Check) rejected it (500). This never ships a wrong
	// certificate: either the response carries a checked certificate or it
	// fails loudly with this code.
	CodeCertInvalid = "cert_invalid"
	// CodeUnknownMechanism: the request's mechanism name is not in the
	// registry (400). GET /v1/mechanisms lists the valid names.
	CodeUnknownMechanism = "unknown_mechanism"
)

// ErrorResponse is the body of every non-2xx answer: a stable
// machine-readable Code, a human-readable Message, and an optional Detail
// carrying underlying error text.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

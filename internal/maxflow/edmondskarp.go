package maxflow

import "repro/internal/numeric"

// edmondsKarp computes a maximum flow by shortest augmenting paths — the
// textbook baseline the ablation compares the structured solvers against.
// O(VE²) in general; on the shallow networks of the bottleneck reduction it
// is competitive for small instances and falls behind Dinic as paths
// multiply.
func (nw *Network) edmondsKarp() numeric.Rat {
	total := numeric.Zero
	parent := make([]int, nw.n) // arc id used to reach each node
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[nw.s] = -2
		queue := []int{nw.s}
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range nw.adj[u] {
				v := nw.arcs[id].to
				if parent[v] != -1 || nw.residual(id).Sign() <= 0 {
					continue
				}
				parent[v] = id
				if v == nw.t {
					found = true
					break bfs
				}
				queue = append(queue, v)
			}
		}
		if !found {
			return total
		}
		// Bottleneck along the path, then augment.
		aug := numeric.Rat{}
		first := true
		for v := nw.t; v != nw.s; {
			id := parent[v]
			res := nw.residual(id)
			if first || res.Less(aug) {
				aug = res
				first = false
			}
			v = nw.arcs[id^1].to
		}
		for v := nw.t; v != nw.s; {
			id := parent[v]
			nw.push(id, aug)
			v = nw.arcs[id^1].to
		}
		total = total.Add(aug)
	}
}

// Package sybil models the strategic behaviors studied by the paper and its
// predecessors against the BD Allocation Mechanism:
//
//   - the Sybil attack of Section II-D: an agent v splits into m ≤ d_v
//     fictitious identities, partitions its neighbors among them and divides
//     its endowment, collecting the identities' combined utility in the
//     resulting network G′;
//   - the misreporting strategy of Cheng et al. [7]: v reports a resource
//     amount x ∈ [0, w_v] instead of w_v (the single-parameter deviation
//     whose structural theory — Theorem 10, Propositions 11/12, Lemma 13 —
//     powers the paper's proof).
//
// The ring-specific two-identity optimizer lives in package core; this
// package provides the general-graph machinery and the exhaustive attack
// search used for the conclusion's general-network conjecture (E13).
package sybil

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// HonestUtility returns U_v(G; w) under the BD Allocation Mechanism.
func HonestUtility(g *graph.Graph, v int) (numeric.Rat, error) {
	d, err := bottleneck.Decompose(g)
	if err != nil {
		return numeric.Rat{}, err
	}
	return d.Utility(g, v), nil
}

// AttackUtility returns the attacker's total utility Σ_i U_{v^i}(G′) after
// applying the split sp to g.
func AttackUtility(g *graph.Graph, sp graph.SplitSpec) (numeric.Rat, error) {
	gp, ids, err := graph.Split(g, sp)
	if err != nil {
		return numeric.Rat{}, err
	}
	d, err := bottleneck.Decompose(gp)
	if err != nil {
		return numeric.Rat{}, err
	}
	total := numeric.Zero
	for _, id := range ids {
		total = total.Add(d.Utility(gp, id))
	}
	return total, nil
}

// MisreportUtility returns U_v when v reports x in place of w_v (all other
// weights fixed). The report must satisfy 0 ≤ x ≤ w_v.
func MisreportUtility(g *graph.Graph, v int, x numeric.Rat) (numeric.Rat, error) {
	if x.Sign() < 0 || g.Weight(v).Less(x) {
		return numeric.Rat{}, fmt.Errorf("sybil: report %v outside [0, %v]", x, g.Weight(v))
	}
	gp := g.Clone()
	gp.MustSetWeight(v, x)
	d, err := bottleneck.Decompose(gp)
	if err != nil {
		return numeric.Rat{}, err
	}
	return d.Utility(gp, v), nil
}

// Partitions enumerates all partitions of items into at most maxParts
// non-empty blocks (order of blocks and within blocks is canonical). The
// number of results is a Bell-ish number; callers keep len(items) small.
func Partitions(items []int, maxParts int) [][][]int {
	if len(items) == 0 || maxParts < 1 {
		return nil
	}
	var out [][][]int
	var rec func(i int, blocks [][]int)
	rec = func(i int, blocks [][]int) {
		if i == len(items) {
			cp := make([][]int, len(blocks))
			for b := range blocks {
				cp[b] = append([]int(nil), blocks[b]...)
			}
			out = append(out, cp)
			return
		}
		for b := range blocks {
			blocks[b] = append(blocks[b], items[i])
			rec(i+1, blocks)
			blocks[b] = blocks[b][:len(blocks[b])-1]
		}
		if len(blocks) < maxParts {
			blocks = append(blocks, []int{items[i]})
			rec(i+1, blocks)
		}
	}
	rec(0, nil)
	return out
}

// Compositions enumerates all ways to write total as an ordered sum of
// parts non-negative integers, in lexicographic order of the digit vector.
// It materializes the whole list — callers keep total/parts small; the
// scenario engine's streaming odometer (internal/scenario) enumerates the
// same order without materializing, and is pinned against this function.
func Compositions(total, parts int) [][]int {
	if parts == 1 {
		return [][]int{{total}}
	}
	var out [][]int
	for first := 0; first <= total; first++ {
		for _, rest := range Compositions(total-first, parts-1) {
			out = append(out, append([]int{first}, rest...))
		}
	}
	return out
}

// SearchOptions tunes the exhaustive attack search.
type SearchOptions struct {
	// MaxParts bounds the number of identities (default: the degree of v).
	MaxParts int
	// GridResolution discretizes the weight simplex: each identity receives
	// w_v·(k_i/GridResolution) with Σk_i = GridResolution (default 8).
	GridResolution int
}

// SearchResult reports the best attack found.
type SearchResult struct {
	// Honest is U_v(G; w).
	Honest numeric.Rat
	// Best is the highest attacker utility over the searched strategy space.
	Best numeric.Rat
	// Ratio = Best / Honest (1 when Honest = Best = 0).
	Ratio numeric.Rat
	// Spec is a maximizing strategy.
	Spec graph.SplitSpec
	// Tried counts evaluated strategies.
	Tried int
}

// Search exhaustively evaluates Sybil strategies for vertex v over all
// neighbor partitions and a weight grid, returning the best found. It is a
// lower-bound probe of ζ_v, not an exact optimum (the grid discretizes the
// simplex); the paper's exact ring machinery lives in package core.
func Search(g *graph.Graph, v int, opts SearchOptions) (*SearchResult, error) {
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("sybil: vertex %d out of range", v)
	}
	if g.Degree(v) == 0 {
		return nil, fmt.Errorf("sybil: vertex %d has no neighbors to split over", v)
	}
	if opts.MaxParts <= 0 || opts.MaxParts > g.Degree(v) {
		opts.MaxParts = g.Degree(v)
	}
	if opts.GridResolution <= 0 {
		opts.GridResolution = 8
	}
	honest, err := HonestUtility(g, v)
	if err != nil {
		return nil, err
	}
	res := &SearchResult{Honest: honest, Best: honest, Ratio: numeric.One}
	res.Spec = graph.SplitSpec{
		V:       v,
		Parts:   [][]int{append([]int(nil), g.Neighbors(v)...)},
		Weights: []numeric.Rat{g.Weight(v)},
	}
	for _, parts := range Partitions(g.Neighbors(v), opts.MaxParts) {
		m := len(parts)
		for _, comp := range Compositions(opts.GridResolution, m) {
			ws := make([]numeric.Rat, m)
			for i, k := range comp {
				ws[i] = g.Weight(v).MulInt(int64(k)).DivInt(int64(opts.GridResolution))
			}
			sp := graph.SplitSpec{V: v, Parts: parts, Weights: ws}
			u, err := AttackUtility(g, sp)
			if err != nil {
				return nil, fmt.Errorf("sybil: evaluating %v: %w", sp, err)
			}
			res.Tried++
			if res.Best.Less(u) {
				res.Best = u
				res.Spec = sp
			}
		}
	}
	if honest.Sign() > 0 {
		res.Ratio = res.Best.Div(honest)
	} else if res.Best.Sign() > 0 {
		return nil, fmt.Errorf("sybil: attacker gains %v from zero honest utility (unbounded ratio)", res.Best)
	}
	return res, nil
}

package sybil

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestHonestUtility(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 100, 1))
	u, err := HonestUtility(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(numeric.FromInt(2)) {
		t.Fatalf("U = %v, want 2", u)
	}
}

func TestAttackUtilityMatchesManualSplit(t *testing.T) {
	// Ring of 4, attacker 0 splits into two leaves.
	g := graph.Ring(numeric.Ints(4, 1, 2, 3))
	sp := graph.SplitSpec{
		V:       0,
		Parts:   [][]int{{1}, {3}},
		Weights: numeric.Ints(2, 2),
	}
	got, err := AttackUtility(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Manual check: the same value computed through graph.Split directly.
	gp, ids, err := graph.Split(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	want := numeric.Zero
	for _, id := range ids {
		u, err := HonestUtility(gp, id)
		if err != nil {
			t.Fatal(err)
		}
		want = want.Add(u)
	}
	if !got.Equal(want) {
		t.Fatalf("AttackUtility = %v, manual = %v", got, want)
	}
}

func TestMisreportBounds(t *testing.T) {
	g := graph.Ring(numeric.Ints(4, 1, 2, 3))
	if _, err := MisreportUtility(g, 0, numeric.FromInt(-1)); err == nil {
		t.Error("negative report accepted")
	}
	if _, err := MisreportUtility(g, 0, numeric.FromInt(5)); err == nil {
		t.Error("over-report accepted")
	}
	u, err := MisreportUtility(g, 0, numeric.FromInt(4))
	if err != nil {
		t.Fatal(err)
	}
	honest, err := HonestUtility(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(honest) {
		t.Errorf("truthful report utility %v != honest %v", u, honest)
	}
}

func TestMisreportNeverGains(t *testing.T) {
	// Theorem 10 (monotonicity) implies truthfulness of reporting: utility
	// at any x ≤ w_v never exceeds the truthful utility.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomRing(rng, rng.Intn(8)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		honest, err := HonestUtility(g, v)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 10; k++ {
			x := g.Weight(v).MulInt(int64(k)).DivInt(10)
			u, err := MisreportUtility(g, v, x)
			if err != nil {
				t.Fatal(err)
			}
			if honest.Less(u) {
				t.Fatalf("trial %d: misreport %v of %v gains: %v > %v (w=%v)",
					trial, x, g.Weight(v), u, honest, g.Weights())
			}
		}
	}
}

func TestPartitions(t *testing.T) {
	// Bell numbers: |partitions({1,2,3})| = 5 with maxParts ≥ 3.
	p3 := Partitions([]int{1, 2, 3}, 3)
	if len(p3) != 5 {
		t.Fatalf("partitions of 3 items = %d, want 5", len(p3))
	}
	// Limited to 1 part: single block.
	p1 := Partitions([]int{1, 2, 3}, 1)
	if len(p1) != 1 || len(p1[0]) != 1 || len(p1[0][0]) != 3 {
		t.Fatalf("maxParts=1: %v", p1)
	}
	// Two items, two parts: {{1,2}} and {{1},{2}}.
	p2 := Partitions([]int{7, 9}, 2)
	if len(p2) != 2 {
		t.Fatalf("partitions of 2 items = %d, want 2", len(p2))
	}
	if Partitions(nil, 2) != nil {
		t.Error("partitions of empty set should be nil")
	}
}

func TestCompositions(t *testing.T) {
	got := Compositions(3, 2)
	if len(got) != 4 { // (0,3) (1,2) (2,1) (3,0)
		t.Fatalf("compositions(3,2) = %v", got)
	}
	for _, c := range got {
		if c[0]+c[1] != 3 {
			t.Fatalf("bad composition %v", c)
		}
	}
	if got := Compositions(5, 1); len(got) != 1 || got[0][0] != 5 {
		t.Fatalf("compositions(5,1) = %v", got)
	}
}

func TestSearchFindsRingGain(t *testing.T) {
	// A ring where the Sybil attack strictly gains; Search must find a
	// ratio > 1 and ≤ 2 (Theorem 8).
	g := graph.Ring(numeric.Ints(8, 1, 8, 8, 1))
	res, err := Search(g, 0, SearchOptions{GridResolution: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio.Cmp(numeric.One) < 0 {
		t.Fatalf("ratio %v < 1", res.Ratio)
	}
	if numeric.Two.Less(res.Ratio) {
		t.Fatalf("ratio %v > 2 violates Theorem 8", res.Ratio)
	}
	if res.Tried == 0 {
		t.Fatal("no strategies tried")
	}
	if err := res.Spec.Validate(g); err != nil {
		t.Fatalf("reported best spec invalid: %v", err)
	}
}

func TestSearchRespectsTheorem8OnRandomRings(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomRing(rng, rng.Intn(6)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		res, err := Search(g, v, SearchOptions{GridResolution: 6})
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Two.Less(res.Ratio) {
			t.Fatalf("trial %d: ratio %v > 2 on ring %v (v=%d)", trial, res.Ratio, g.Weights(), v)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1))
	if _, err := Search(g, 9, SearchOptions{}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	lonely := graph.New(2)
	lonely.MustSetWeight(0, numeric.One)
	if _, err := Search(lonely, 0, SearchOptions{}); err == nil {
		t.Error("degree-0 vertex accepted")
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/client"
)

// TestMain lets this test binary double as the irshared process: re-exec'd
// with IRSHARED_TEST_CHILD=1 it runs the real main loop on the given flags
// instead of the tests. That is what makes a genuine SIGKILL test possible —
// the server must be a separate process, and re-exec'ing the test binary
// avoids a build step.
func TestMain(m *testing.M) {
	if os.Getenv("IRSHARED_TEST_CHILD") == "1" {
		if err := run(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "irshared:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChild boots a child irshared process on addr and waits for /healthz.
func startChild(t *testing.T, addr string, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{"-addr", addr, "-log", "json"}, args...)...)
	cmd.Env = append(os.Environ(), "IRSHARED_TEST_CHILD=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("child server did not come up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillAndRecoverBitIdentical is the crash-recovery acceptance test of
// the durable job subsystem: a sweep job is started in a real child process,
// the process is SIGKILLed mid-grid (no drain, no checkpoint flush beyond
// what already hit disk), and a fresh process over the same -data-dir must
// recover the job and complete it bit-identically to an uninterrupted run.
// A latency fault on jobs.wal.append slows checkpointing enough that the
// kill reliably lands mid-grid.
func TestKillAndRecoverBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	ring := client.Graph{Ring: []string{"1", "3/2", "2", "5", "7/3", "4"}}
	const grid = 192
	req := client.JobSubmitRequest{Graph: ring, V: 1, Grid: grid}

	addr1 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	child1 := startChild(t, addr1, "-data-dir", dir,
		"-chaos", "jobs.wal.append=latency:1:10ms", "-chaos-allow")
	c1 := client.New("http://"+addr1, client.WithSeed(1))
	sub, err := c1.SubmitSweep(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}

	// Let the job checkpoint a few grid points, then kill without ceremony.
	for {
		job, err := c1.GetJob(ctx, sub.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if client.JobTerminal(job.State) {
			t.Fatalf("job reached %q before the kill; grid too small", job.State)
		}
		if job.NextIndex >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := child1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child1.Wait() // "signal: killed" — the point of the test

	// A fresh process over the same data dir recovers and finishes the job.
	addr2 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	child2 := startChild(t, addr2, "-data-dir", dir)
	c2 := client.New("http://"+addr2, client.WithSeed(2))
	final, err := c2.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobDone {
		t.Fatalf("recovered job settled as %q (error %q)", final.State, final.Error)
	}
	if final.NextIndex != grid+1 || len(final.Points) != grid+1 {
		t.Fatalf("recovered job covered %d/%d points, want %d", final.NextIndex, len(final.Points), grid+1)
	}

	// Bit-identical to the uninterrupted computation of the same request.
	var got client.SweepResponse
	if err := json.Unmarshal(final.Result, &got); err != nil {
		t.Fatal(err)
	}
	want, err := c2.Sweep(ctx, &client.SweepRequest{Graph: ring, V: 1, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("recovered result diverged from uninterrupted sweep:\ngot:  %+v\nwant: %+v", got, want)
	}

	// Duplicate submission dedupes onto the finished job.
	dup, err := c2.SubmitSweep(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped || dup.Job.ID != sub.Job.ID {
		t.Fatalf("duplicate submission: %+v, want dedupe onto %s", dup, sub.Job.ID)
	}

	// And the second process still drains gracefully.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Fatalf("graceful drain after recovery: %v", err)
	}
}

package analysis_test

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Classify the α-curve of a heavy vertex on a light ring (Fig. 2, Case B-3)
// and locate its exact α = 1 crossing.
func ExampleAlphaStar() {
	g := graph.Ring(numeric.Ints(8, 1, 1, 1, 1))
	x, c, err := analysis.AlphaStar(g, 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(c, "x* =", x)
	// Output:
	// Case B-3 x* = 2
}

// Partition the report range of an agent into intervals of constant
// decomposition structure (Section III-B).
func ExampleIntervalPartition() {
	g := graph.Ring(numeric.Ints(8, 1, 1, 1, 1))
	ivs, err := analysis.IntervalPartition(g, 0, 16, 40)
	if err != nil {
		panic(err)
	}
	for _, iv := range ivs {
		kind := "interval"
		if iv.Lo.Equal(iv.Hi) {
			kind = "point"
		}
		fmt.Printf("%s [%0.3f, %0.3f]\n", kind, iv.Lo.Float64(), iv.Hi.Float64())
	}
	// Output:
	// interval [0.000, 2.000]
	// interval [2.000, 8.000]
}

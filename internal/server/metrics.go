package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds (Prometheus
// convention: cumulative, +Inf implicit).
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metrics aggregates the service counters exposed at /metrics in the
// Prometheus text exposition format. It is deliberately dependency-free: a
// mutex-guarded map of per-endpoint series is more than enough at the
// request rates one exact-arithmetic solver process can sustain.
type metrics struct {
	mu        sync.Mutex
	requests  map[statusKey]int64          // requests_total{endpoint,code}
	histogram map[string]*latencyHistogram // request_seconds{endpoint}
	cacheReqs map[cacheKey]int64           // cache_requests_total{endpoint,result}

	// panics counts contained panics (handler barrier + batch containment);
	// shed counts requests rejected by queue-saturation load shedding.
	// Atomics, not map entries: they are bumped from recovery paths that
	// should stay as simple as possible.
	panics atomic.Int64
	shed   atomic.Int64
}

type statusKey struct {
	endpoint string
	code     int
}

type cacheKey struct {
	endpoint string
	hit      bool
}

type latencyHistogram struct {
	counts []int64 // len(latencyBuckets)+1; last bucket = +Inf
	sum    float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[statusKey]int64),
		histogram: make(map[string]*latencyHistogram),
		cacheReqs: make(map[cacheKey]int64),
	}
}

// cacheLookup records one instance-cache lookup attributed to an endpoint,
// feeding the per-endpoint hit-ratio series.
func (m *metrics) cacheLookup(endpoint string, hit bool) {
	m.mu.Lock()
	m.cacheReqs[cacheKey{endpoint, hit}]++
	m.mu.Unlock()
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[statusKey{endpoint, code}]++
	h := m.histogram[endpoint]
	if h == nil {
		h = &latencyHistogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.histogram[endpoint] = h
	}
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.total++
}

// gauges is the snapshot of instantaneous values rendered alongside the
// cumulative series; the server fills it from the pool, cache and batcher.
type gauges struct {
	poolCap, poolInUse, poolWaiting int
	cacheEntries                    int
	cacheHits, cacheMisses          int64
	cacheEvictions                  int64
	batchRuns, batchJoins           int64
}

// write renders everything in the Prometheus text format.
func (m *metrics) write(w io.Writer, g gauges) {
	m.mu.Lock()
	reqs := make([]statusKey, 0, len(m.requests))
	for k := range m.requests {
		reqs = append(reqs, k)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].endpoint != reqs[j].endpoint {
			return reqs[i].endpoint < reqs[j].endpoint
		}
		return reqs[i].code < reqs[j].code
	})
	eps := make([]string, 0, len(m.histogram))
	for ep := range m.histogram {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	cacheKeys := make([]cacheKey, 0, len(m.cacheReqs))
	for k := range m.cacheReqs {
		cacheKeys = append(cacheKeys, k)
	}
	sort.Slice(cacheKeys, func(i, j int) bool {
		if cacheKeys[i].endpoint != cacheKeys[j].endpoint {
			return cacheKeys[i].endpoint < cacheKeys[j].endpoint
		}
		return cacheKeys[i].hit && !cacheKeys[j].hit // hit before miss
	})

	fmt.Fprint(w, "# HELP irshared_requests_total Requests served, by endpoint and status code.\n# TYPE irshared_requests_total counter\n")
	for _, k := range reqs {
		fmt.Fprintf(w, "irshared_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	fmt.Fprint(w, "# HELP irshared_request_seconds Request latency, by endpoint.\n# TYPE irshared_request_seconds histogram\n")
	for _, ep := range eps {
		h := m.histogram[ep]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "irshared_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		fmt.Fprintf(w, "irshared_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.total)
		fmt.Fprintf(w, "irshared_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "irshared_request_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}
	fmt.Fprint(w, "# HELP irshared_cache_requests_total Instance-cache lookups, by endpoint and result.\n# TYPE irshared_cache_requests_total counter\n")
	for _, k := range cacheKeys {
		result := "miss"
		if k.hit {
			result = "hit"
		}
		fmt.Fprintf(w, "irshared_cache_requests_total{endpoint=%q,result=%q} %d\n", k.endpoint, result, m.cacheReqs[k])
	}
	m.mu.Unlock()

	fmt.Fprint(w, "# HELP irshared_cache_hits_total Instance-cache hits.\n# TYPE irshared_cache_hits_total counter\n")
	fmt.Fprintf(w, "irshared_cache_hits_total %d\n", g.cacheHits)
	fmt.Fprint(w, "# HELP irshared_cache_misses_total Instance-cache misses.\n# TYPE irshared_cache_misses_total counter\n")
	fmt.Fprintf(w, "irshared_cache_misses_total %d\n", g.cacheMisses)
	fmt.Fprint(w, "# HELP irshared_cache_evictions_total Instance-cache LRU evictions.\n# TYPE irshared_cache_evictions_total counter\n")
	fmt.Fprintf(w, "irshared_cache_evictions_total %d\n", g.cacheEvictions)
	fmt.Fprint(w, "# HELP irshared_cache_entries Resident instance-cache entries.\n# TYPE irshared_cache_entries gauge\n")
	fmt.Fprintf(w, "irshared_cache_entries %d\n", g.cacheEntries)
	fmt.Fprint(w, "# HELP irshared_pool_capacity Worker-pool slot capacity.\n# TYPE irshared_pool_capacity gauge\n")
	fmt.Fprintf(w, "irshared_pool_capacity %d\n", g.poolCap)
	fmt.Fprint(w, "# HELP irshared_pool_in_use Worker-pool slots currently held.\n# TYPE irshared_pool_in_use gauge\n")
	fmt.Fprintf(w, "irshared_pool_in_use %d\n", g.poolInUse)
	fmt.Fprint(w, "# HELP irshared_pool_waiting Requests queued for a pool slot.\n# TYPE irshared_pool_waiting gauge\n")
	fmt.Fprintf(w, "irshared_pool_waiting %d\n", g.poolWaiting)
	fmt.Fprint(w, "# HELP irshared_batch_runs_total Ratio computations executed.\n# TYPE irshared_batch_runs_total counter\n")
	fmt.Fprintf(w, "irshared_batch_runs_total %d\n", g.batchRuns)
	fmt.Fprint(w, "# HELP irshared_batch_joins_total Ratio requests that joined an in-flight batch.\n# TYPE irshared_batch_joins_total counter\n")
	fmt.Fprintf(w, "irshared_batch_joins_total %d\n", g.batchJoins)
	fmt.Fprint(w, "# HELP irshared_panics_total Panics contained by the recovery barriers.\n# TYPE irshared_panics_total counter\n")
	fmt.Fprintf(w, "irshared_panics_total %d\n", m.panics.Load())
	fmt.Fprint(w, "# HELP irshared_shed_total Requests shed by queue-saturation load shedding.\n# TYPE irshared_shed_total counter\n")
	fmt.Fprintf(w, "irshared_shed_total %d\n", m.shed.Load())
}

package bottleneck

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Engine selects the λ-subproblem solver used inside the decomposition.
type Engine int

const (
	// EngineAuto uses the path/cycle DP whenever the residual graph allows
	// it and falls back to the flow engine otherwise.
	EngineAuto Engine = iota
	// EngineFlow always uses the parametric max-flow solver.
	EngineFlow
	// EnginePathDP always uses the path/cycle DP; decomposition fails if a
	// residual component is neither a path nor a cycle.
	EnginePathDP
	// EngineBrute enumerates subsets exhaustively (test oracle, n ≤ 16).
	EngineBrute
)

// String names the engine for benchmark tables.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineFlow:
		return "flow"
	case EnginePathDP:
		return "path-dp"
	case EngineBrute:
		return "brute"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Decompose computes the bottleneck decomposition of g with the automatic
// engine.
func Decompose(g *graph.Graph) (*Decomposition, error) {
	return DecomposeWith(g, EngineAuto)
}

// DecomposeWith computes the bottleneck decomposition of g (Definition 2):
// repeatedly extract the maximal bottleneck B_i of the residual graph G_i
// and remove B_i ∪ C_i, C_i = Γ(B_i) ∩ V_i.
//
// Zero-weight agents own nothing, trade nothing, and earn nothing, but the
// Sybil analysis produces them (a split with w1 = 0), so they are supported
// by an explicit convention that matches the paper's Case C-2 and the
// maximal-minimizer semantics on leaves: the positive-weight subgraph is
// decomposed for real, and then, pair by pair in α order, a zero-weight
// agent joins C_i when it has a neighbor in B_i, or joins B_i when every
// still-active neighbor lies in C_i. Zeros never reached this way (isolated
// zeros, clusters of mutually-adjacent zeros) form a trailing self-pair
// with α = 1 by convention. (Running the parametric solver on the raw graph
// instead would be wrong: f_λ is blind to zero weights, so the "maximal
// minimizer" could absorb an adjacent zero-zero pair and violate B's
// independence.)
func DecomposeWith(g *graph.Graph, engine Engine) (*Decomposition, error) {
	return decomposeInner(context.Background(), g, engine, nil)
}

// DecomposeCtx is DecomposeWith with cancellation: the context is checked at
// every stage boundary and every Dinkelbach iteration, so a canceled or
// timed-out decomposition returns ctx.Err() promptly instead of completing.
// No partial result is ever returned.
func DecomposeCtx(ctx context.Context, g *graph.Graph, engine Engine) (*Decomposition, error) {
	return decomposeInner(ctx, g, engine, nil)
}

func decomposeInner(ctx context.Context, g *graph.Graph, engine Engine, trace TraceFunc) (*Decomposition, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("bottleneck: empty graph")
	}
	ctx, dspan := obs.Start(ctx, "bottleneck.decompose")
	defer dspan.End()
	if dspan != nil {
		dspan.SetAttr("engine", engine.String())
		dspan.SetAttr("n", strconv.Itoa(g.N()))
	}
	var positive, zeros []int
	for v := 0; v < g.N(); v++ {
		if g.Weight(v).Sign() > 0 {
			positive = append(positive, v)
		} else {
			zeros = append(zeros, v)
		}
	}
	d := &Decomposition{}
	if len(positive) > 0 {
		posSub, posOrig := g.InducedSubgraph(positive)
		remaining := make([]int, posSub.N())
		for i := range remaining {
			remaining[i] = i
		}
		for len(remaining) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			stage := len(d.Pairs) + 1
			if trace != nil {
				trace(TraceEvent{Kind: TraceStageStart, Stage: stage, Remaining: len(remaining)})
			}
			sctx, sspan := obs.Start(ctx, "bottleneck.stage")
			if sspan != nil {
				sspan.SetAttr("stage", strconv.Itoa(stage))
				sspan.AddInt("remaining", int64(len(remaining)))
			}
			sub, orig := posSub.InducedSubgraph(remaining)
			oracle, err := oracleFor(sctx, sub, engine)
			if err != nil {
				return nil, err
			}
			var iterTrace func(lambda, value numeric.Rat)
			if trace != nil || sspan != nil {
				iterTrace = func(lambda, value numeric.Rat) {
					if trace != nil {
						trace(TraceEvent{Kind: TraceDinkelbachIter, Stage: stage, Remaining: len(remaining), Lambda: lambda, Value: value})
					}
					if sspan != nil {
						sspan.AddInt("iters", 1)
						sspan.AddEvent("dinkelbach_iter", "lambda", lambda.String(), "value", value.String())
					}
				}
			}
			alpha, bLocal, err := maxBottleneck(sctx, sub, oracle, iterTrace)
			if err != nil {
				sspan.End()
				return nil, err
			}
			cLocal := sub.NeighborhoodSet(bLocal)
			// Defensive audit: the Dinkelbach λ must equal w(C)/w(B) exactly.
			if wb := sub.WeightOf(bLocal); !sub.WeightOf(cLocal).Div(wb).Equal(alpha) {
				return nil, fmt.Errorf("bottleneck: internal α mismatch: λ=%v but w(C)/w(B)=%v",
					alpha, sub.WeightOf(cLocal).Div(wb))
			}
			pair := Pair{
				B:     mapBack(mapBack(bLocal, orig), posOrig),
				C:     mapBack(mapBack(cLocal, orig), posOrig),
				Alpha: alpha,
			}
			d.Pairs = append(d.Pairs, pair)
			if sspan != nil {
				sspan.SetAttr("alpha", alpha.String())
				sspan.AddInt("pair_size", int64(len(pair.B)+len(pair.C)))
			}
			sspan.End()
			if trace != nil {
				trace(TraceEvent{Kind: TraceStageExtracted, Stage: stage, Remaining: len(remaining), Pair: &pair})
			}
			remove := make(map[int]bool, len(bLocal)+len(cLocal))
			for _, v := range bLocal {
				remove[orig[v]] = true
			}
			for _, v := range cLocal {
				remove[orig[v]] = true
			}
			next := remaining[:0]
			for _, v := range remaining {
				if !remove[v] {
					next = append(next, v)
				}
			}
			if len(next) == len(remaining) {
				return nil, fmt.Errorf("bottleneck: decomposition made no progress (empty pair)")
			}
			remaining = next
		}
	}
	if len(zeros) > 0 {
		d.attachZeros(g, zeros)
	}
	if err := d.finish(g.N()); err != nil {
		return nil, err
	}
	return d, nil
}

// attachZeros places zero-weight vertices into the positive pairs per the
// convention documented on DecomposeWith, leaving unreachable zeros in a
// trailing α = 1 self-pair.
func (d *Decomposition) attachZeros(g *graph.Graph, zeros []int) {
	assignedPair := make(map[int]int) // vertex → pair index (B or C member)
	inB := make(map[int]bool)
	inC := make(map[int]bool)
	for i, p := range d.Pairs {
		for _, v := range p.B {
			assignedPair[v], inB[v] = i, true
		}
		for _, v := range p.C {
			assignedPair[v], inC[v] = i, true
		}
	}
	unassigned := make(map[int]bool, len(zeros))
	for _, z := range zeros {
		unassigned[z] = true
	}
	selfP := make([]bool, len(d.Pairs))
	for i, p := range d.Pairs {
		selfP[i] = p.selfPaired()
	}
	for i := range d.Pairs {
		for changed := true; changed; {
			changed = false
			// C-join: a neighbor in B_i puts z into Γ(B_i) = C_i. A zero
			// joining a self-pair (B_k = C_k) joins both sides — its class
			// is Both, like the rest of the pair.
			for z := range unassigned {
				for _, u := range g.Neighbors(z) {
					if inB[u] && assignedPair[u] == i {
						d.Pairs[i].C = insertSortedInt(d.Pairs[i].C, z)
						inC[z] = true
						if selfP[i] {
							d.Pairs[i].B = insertSortedInt(d.Pairs[i].B, z)
							inB[z] = true
						}
						assignedPair[z] = i
						delete(unassigned, z)
						changed = true
						break
					}
				}
			}
			// B-join: every still-active neighbor (not consumed by an
			// earlier pair) lies in C_i — the free absorption of the
			// maximal minimizer.
			for z := range unassigned {
				ok := false
				for _, u := range g.Neighbors(z) {
					if j, done := assignedPair[u]; done && j < i {
						continue // consumed before this stage
					}
					if inC[u] && assignedPair[u] == i {
						ok = true
						continue
					}
					ok = false
					break
				}
				if ok {
					d.Pairs[i].B = insertSortedInt(d.Pairs[i].B, z)
					assignedPair[z], inB[z] = i, true
					delete(unassigned, z)
					changed = true
				}
			}
		}
	}
	if len(unassigned) > 0 {
		rest := make([]int, 0, len(unassigned))
		for z := range unassigned {
			rest = append(rest, z)
		}
		sort.Ints(rest)
		d.Pairs = append(d.Pairs, Pair{B: rest, C: rest, Alpha: numeric.One})
	}
}

func insertSortedInt(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// MaxBottleneck computes the maximal bottleneck of g directly — the unique
// inclusion-maximal set B minimizing α(S) = w(Γ(S))/w(S) — together with
// its ratio, without running the full decomposition. The graph must have
// positive total weight.
func MaxBottleneck(g *graph.Graph, engine Engine) (B []int, alpha numeric.Rat, err error) {
	oracle, err := oracleFor(context.Background(), g, engine)
	if err != nil {
		return nil, numeric.Rat{}, err
	}
	alpha, B, err = maxBottleneck(context.Background(), g, oracle, nil)
	return B, alpha, err
}

func mapBack(local []int, orig []int) []int {
	out := make([]int, len(local))
	for i, v := range local {
		out[i] = orig[v]
	}
	sort.Ints(out)
	return out
}

// oracleFor selects the λ-subproblem solver. The context only carries the
// current obs span (for the flow oracle's per-solve child spans); it is not
// consulted for cancellation here.
func oracleFor(ctx context.Context, sub *graph.Graph, engine Engine) (minimizeOracle, error) {
	switch engine {
	case EngineAuto:
		if o, err := newDPOracle(sub); err == nil {
			return o, nil
		}
		return flowOracle{g: sub, ctx: ctx}, nil
	case EngineFlow:
		return flowOracle{g: sub, ctx: ctx}, nil
	case EnginePathDP:
		return newDPOracle(sub)
	case EngineBrute:
		return newBruteOracle(sub)
	default:
		return nil, fmt.Errorf("bottleneck: unknown engine %d", int(engine))
	}
}

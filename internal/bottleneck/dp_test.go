package bottleneck

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// buildComponent wraps a graph that is one path or cycle into a dpComponent.
func buildComponent(t *testing.T, g *graph.Graph) dpComponent {
	t.Helper()
	o, err := newDPOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.comps) != 1 {
		t.Fatalf("expected one component, got %d", len(o.comps))
	}
	return o.comps[0]
}

func TestPathMembershipMatchesProbes(t *testing.T) {
	// The O(m) forward-backward membership must agree with the O(m²)
	// per-vertex forced-DP probes on random paths and λ values.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 120; trial++ {
		m := rng.Intn(10) + 1
		g := graph.Path(graph.RandomWeights(rng, m, graph.WeightDist(rng.Intn(4))))
		c := buildComponent(t, g)
		lambda := numeric.New(int64(rng.Intn(20)+1), int64(rng.Intn(20)+1))
		gotMin, gotMembers := c.pathMembership(lambda)
		wantMin := c.minPath(lambda, -1)
		if !gotMin.Equal(wantMin) {
			t.Fatalf("trial %d: free min %v != probe %v (λ=%v, w=%v)",
				trial, gotMin, wantMin, lambda, g.Weights())
		}
		for i := range c.order {
			want := c.minPath(lambda, i).Equal(wantMin)
			if gotMembers[i] != want {
				t.Fatalf("trial %d: membership of %d = %v, probe %v (λ=%v, w=%v)",
					trial, i, gotMembers[i], want, lambda, g.Weights())
			}
		}
	}
}

func TestCycleMembershipMatchesProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 120; trial++ {
		m := rng.Intn(9) + 3
		g := graph.Ring(graph.RandomWeights(rng, m, graph.WeightDist(rng.Intn(4))))
		c := buildComponent(t, g)
		lambda := numeric.New(int64(rng.Intn(20)+1), int64(rng.Intn(20)+1))
		gotMin, gotMembers := c.cycleMembership(lambda)
		wantMin := c.minCycle(lambda, -1)
		if !gotMin.Equal(wantMin) {
			t.Fatalf("trial %d: free min %v != probe %v (λ=%v, w=%v)",
				trial, gotMin, wantMin, lambda, g.Weights())
		}
		for i := range c.order {
			want := c.minCycle(lambda, i).Equal(wantMin)
			if gotMembers[i] != want {
				t.Fatalf("trial %d: membership of %d = %v, probe %v (λ=%v, w=%v)",
					trial, i, gotMembers[i], want, lambda, g.Weights())
			}
		}
	}
}

func TestIntValuePassMatchesRationalPass(t *testing.T) {
	// The int64 fast path and the exact rational pass must agree bit-for-bit
	// on both value and minimizer weight, for paths and cycles.
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 200; trial++ {
		m := rng.Intn(10) + 3
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.Ring(graph.RandomWeights(rng, m, graph.WeightDist(rng.Intn(4))))
		} else {
			g = graph.Path(graph.RandomWeights(rng, m, graph.WeightDist(rng.Intn(4))))
		}
		c := buildComponent(t, g)
		lambda := numeric.New(int64(rng.Intn(50)+1), int64(rng.Intn(50)+1))
		pl, ok := c.intPlanFor(lambda)
		if !ok {
			t.Fatalf("trial %d: integer plan should fit for small weights", trial)
		}
		var gotInt, gotRat costW
		sel := c.selCosts(lambda)
		if c.cycle {
			gotInt, gotRat = c.cycleValueInt(pl), c.cycleValue(sel)
		} else {
			gotInt, gotRat = c.pathValueInt(pl), c.pathValue(sel)
		}
		if !gotInt.cost.Equal(gotRat.cost) || !gotInt.wS.Equal(gotRat.wS) {
			t.Fatalf("trial %d: int (%v, %v) != rat (%v, %v) (λ=%v, w=%v, cycle=%v)",
				trial, gotInt.cost, gotInt.wS, gotRat.cost, gotRat.wS, lambda, g.Weights(), c.cycle)
		}
	}
}

func TestIntMembershipMatchesRationalMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 200; trial++ {
		m := rng.Intn(10) + 3
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.Ring(graph.RandomWeights(rng, m, graph.WeightDist(rng.Intn(4))))
		} else {
			g = graph.Path(graph.RandomWeights(rng, m, graph.WeightDist(rng.Intn(4))))
		}
		c := buildComponent(t, g)
		lambda := numeric.New(int64(rng.Intn(50)+1), int64(rng.Intn(50)+1))
		pl, ok := c.intPlanFor(lambda)
		if !ok {
			t.Fatalf("trial %d: integer plan should fit", trial)
		}
		var iMin, rMin numeric.Rat
		var iMem, rMem []bool
		if c.cycle {
			iMin, iMem = c.cycleMembershipInt(pl)
			rMin, rMem = c.cycleMembership(lambda)
		} else {
			iMin, iMem = c.pathMembershipInt(pl)
			rMin, rMem = c.pathMembership(lambda)
		}
		if !iMin.Equal(rMin) {
			t.Fatalf("trial %d: min %v != %v (λ=%v, w=%v)", trial, iMin, rMin, lambda, g.Weights())
		}
		for i := range iMem {
			if iMem[i] != rMem[i] {
				t.Fatalf("trial %d: membership of %d differs (λ=%v, w=%v)", trial, i, lambda, g.Weights())
			}
		}
	}
}

func TestIntPlanRejectsHugeDenominators(t *testing.T) {
	g := graph.Path([]numeric.Rat{numeric.New(1, 1<<40), numeric.New(1, (1<<40)+1), numeric.One})
	c := buildComponent(t, g)
	if _, ok := c.intPlanFor(numeric.New(1, 3)); ok {
		t.Fatal("expected fallback for huge common denominators")
	}
	// The rational path must still serve it.
	v := c.valuePass(numeric.New(1, 3))
	if !v.ok {
		t.Fatal("value pass failed")
	}
}

func TestDPOracleRejectsNonPathCycle(t *testing.T) {
	if _, err := newDPOracle(graph.Star(numeric.Ints(1, 1, 1, 1))); err == nil {
		t.Fatal("star accepted by DP oracle")
	}
}

func TestDPOracleMatchesBruteOracleOnMixedComponents(t *testing.T) {
	// A graph with one cycle component and two path components.
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 50; trial++ {
		g := graph.New(9)
		ws := graph.RandomWeights(rng, 9, graph.DistUniform)
		for v, w := range ws {
			g.MustSetWeight(v, w)
		}
		// cycle 0-1-2, path 3-4-5, path 6-7, isolated 8
		g.MustAddEdge(0, 1)
		g.MustAddEdge(1, 2)
		g.MustAddEdge(2, 0)
		g.MustAddEdge(3, 4)
		g.MustAddEdge(4, 5)
		g.MustAddEdge(6, 7)
		dp, err := newDPOracle(g)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := newBruteOracle(g)
		if err != nil {
			t.Fatal(err)
		}
		lambda := numeric.New(int64(rng.Intn(30)+1), int64(rng.Intn(10)+1))
		gotVal, gotWS := dp.value(lambda)
		wantVal, wantWS := brute.value(lambda)
		gotSet := dp.maximal(lambda)
		wantSet := brute.maximal(lambda)
		if !gotVal.Equal(wantVal) {
			t.Fatalf("trial %d: value %v != %v (λ=%v, w=%v)", trial, gotVal, wantVal, lambda, ws)
		}
		if !gotWS.Equal(wantWS) {
			t.Fatalf("trial %d: minimizer weight %v != %v (λ=%v, w=%v)", trial, gotWS, wantWS, lambda, ws)
		}
		if len(gotSet) != len(wantSet) {
			t.Fatalf("trial %d: maximal minimizer %v != %v (λ=%v)", trial, gotSet, wantSet, lambda)
		}
		for i := range gotSet {
			if gotSet[i] != wantSet[i] {
				t.Fatalf("trial %d: maximal minimizer %v != %v (λ=%v)", trial, gotSet, wantSet, lambda)
			}
		}
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sybil"
)

// newTestServer starts an httptest server over a fresh Server. Request
// logs are discarded: the tests assert on responses and metrics.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// postJSON posts body to path and returns the status and raw response body.
func postJSON(t *testing.T, base, path string, body any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, raw
}

// mustPost posts and decodes a 200 response into out, returning the raw body.
func mustPost(t *testing.T, base, path string, body, out any) []byte {
	t.Helper()
	status, raw := postJSON(t, base, path, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, status, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("decode %s response: %v\n%s", path, err, raw)
	}
	return raw
}

// wireOf converts a graph to its explicit wire form.
func wireOf(g *graph.Graph) WireGraph {
	ws := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		ws[v] = EncodeRat(g.Weight(v))
	}
	return WireGraph{N: g.N(), Weights: ws, Edges: g.Edges()}
}

// TestDifferentialHTTP replays random ring/path/tree instances through the
// HTTP API — with the cache enabled and disabled — and asserts the answers
// are bit-identical to the in-process bottleneck.Decompose / core.Optimize
// results, across every applicable engine. The exact-rational wire format
// makes "bit-identical" literal: the strings must match byte for byte.
func TestDifferentialHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay is slow")
	}
	rng := rand.New(rand.NewSource(20260805))
	_, warm := newTestServer(t, Config{})              // default LRU
	_, cold := newTestServer(t, Config{CacheSize: -1}) // cache disabled
	bases := []struct {
		name string
		url  string
	}{{"cache", ""}, {"nocache", ""}}

	warmURL, coldURL := warm.URL, cold.URL
	bases[0].url, bases[1].url = warmURL, coldURL

	dists := []graph.WeightDist{graph.DistUniform, graph.DistSkewed, graph.DistPowers, graph.DistUnit}
	const instances = 100
	for i := 0; i < instances; i++ {
		n := 3 + rng.Intn(6)
		dist := dists[i%len(dists)]
		var g *graph.Graph
		var kind string
		engines := []string{"auto", "flow", "brute"}
		switch i % 3 {
		case 0:
			kind = "ring"
			g = graph.RandomRing(rng, n, dist)
			engines = append(engines, "path-dp")
		case 1:
			kind = "path"
			g = graph.Path(graph.RandomWeights(rng, n, dist))
			engines = append(engines, "path-dp")
		default:
			kind = "tree"
			g = graph.RandomTree(rng, n, dist)
		}
		t.Run(fmt.Sprintf("%03d_%s_n%d", i, kind, n), func(t *testing.T) {
			wg := wireOf(g)
			for _, engine := range engines {
				want, err := bottleneck.DecomposeWith(g, mustEngine(t, engine))
				if err != nil {
					t.Fatalf("in-process decompose (%s): %v", engine, err)
				}
				var prevRaw []byte
				for _, b := range bases {
					var got DecomposeResponse
					raw := mustPost(t, b.url, "/v1/decompose", DecomposeRequest{Graph: wg, Engine: engine}, &got)
					if prevRaw != nil && !bytes.Equal(raw, prevRaw) {
						t.Fatalf("engine %s: cache on/off bodies differ:\n%s\n%s", engine, prevRaw, raw)
					}
					prevRaw = raw
					checkDecompose(t, engine+"/"+b.name, g, want, &got)
				}
			}

			// Utilities and allocation under the default engine.
			d, err := bottleneck.Decompose(g)
			if err != nil {
				t.Fatalf("in-process decompose: %v", err)
			}
			a, err := allocation.Compute(g, d)
			if err != nil {
				t.Fatalf("in-process allocation: %v", err)
			}
			for _, b := range bases {
				var ur UtilitiesResponse
				mustPost(t, b.url, "/v1/utilities", UtilitiesRequest{Graph: wg}, &ur)
				for v, u := range d.Utilities(g) {
					if ur.Utilities[v] != EncodeRat(u) {
						t.Fatalf("%s: utilities[%d] = %s, want %s", b.name, v, ur.Utilities[v], EncodeRat(u))
					}
				}
				var ar AllocateResponse
				mustPost(t, b.url, "/v1/allocate", AllocateRequest{Graph: wg}, &ar)
				for v := 0; v < g.N(); v++ {
					if ar.Utilities[v] != EncodeRat(a.Utility(v)) {
						t.Fatalf("%s: alloc utilities[%d] = %s, want %s", b.name, v, ar.Utilities[v], EncodeRat(a.Utility(v)))
					}
				}
				for _, tr := range ar.Transfers {
					if got, want := tr.Amount, EncodeRat(a.Get(tr.From, tr.To)); got != want {
						t.Fatalf("%s: transfer %d->%d = %s, want %s", b.name, tr.From, tr.To, got, want)
					}
				}
			}

			if kind != "ring" {
				return
			}
			// Ratio and sweep for one agent on ring instances.
			v := rng.Intn(n)
			const grid = 8
			in, err := core.NewInstance(g, v)
			if err != nil {
				t.Fatalf("in-process NewInstance: %v", err)
			}
			opt, err := in.Optimize(core.OptimizeOptions{Grid: grid})
			if err != nil {
				t.Fatalf("in-process Optimize: %v", err)
			}
			sw, err := sybil.RingSweep(g, v, sybil.SweepOptions{Grid: grid})
			if err != nil {
				t.Fatalf("in-process RingSweep: %v", err)
			}
			for _, b := range bases {
				var rr RatioResponse
				mustPost(t, b.url, "/v1/ratio", RatioRequest{Graph: wg, V: v, Grid: grid}, &rr)
				if rr.Honest != EncodeRat(in.HonestU) {
					t.Fatalf("%s: honest = %s, want %s", b.name, rr.Honest, EncodeRat(in.HonestU))
				}
				if rr.BestU != EncodeRat(opt.BestU) || rr.BestW1 != EncodeRat(opt.BestW1) {
					t.Fatalf("%s: best (%s at %s), want (%s at %s)", b.name, rr.BestU, rr.BestW1, EncodeRat(opt.BestU), EncodeRat(opt.BestW1))
				}
				if rr.Ratio != EncodeRat(opt.Ratio) {
					t.Fatalf("%s: ratio = %s, want %s", b.name, rr.Ratio, EncodeRat(opt.Ratio))
				}
				if !rr.LeqTwo {
					t.Fatalf("%s: ratio %s reported > 2 (Theorem 8 violation)", b.name, rr.Ratio)
				}

				var sr SweepResponse
				mustPost(t, b.url, "/v1/sweep", SweepRequest{Graph: wg, V: v, Grid: grid}, &sr)
				if len(sr.Points) != len(sw.Points) {
					t.Fatalf("%s: %d sweep points, want %d", b.name, len(sr.Points), len(sw.Points))
				}
				for j, p := range sw.Points {
					if sr.Points[j].W1 != EncodeRat(p.W1) || sr.Points[j].U != EncodeRat(p.U) {
						t.Fatalf("%s: sweep point %d = (%s, %s), want (%s, %s)",
							b.name, j, sr.Points[j].W1, sr.Points[j].U, EncodeRat(p.W1), EncodeRat(p.U))
					}
				}
				if sr.BestW1 != EncodeRat(sw.BestW1) || sr.BestU != EncodeRat(sw.BestU) || sr.Ratio != EncodeRat(sw.Ratio) {
					t.Fatalf("%s: sweep summary (%s, %s, %s), want (%s, %s, %s)",
						b.name, sr.BestW1, sr.BestU, sr.Ratio, EncodeRat(sw.BestW1), EncodeRat(sw.BestU), EncodeRat(sw.Ratio))
				}
			}
		})
	}
}

func mustEngine(t *testing.T, s string) bottleneck.Engine {
	t.Helper()
	e, err := parseEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkDecompose compares an API decomposition against the in-process one.
func checkDecompose(t *testing.T, label string, g *graph.Graph, want *bottleneck.Decomposition, got *DecomposeResponse) {
	t.Helper()
	if got.Signature != want.StructureSignature() {
		t.Fatalf("%s: signature %q, want %q", label, got.Signature, want.StructureSignature())
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i, p := range want.Pairs {
		gp := got.Pairs[i]
		if gp.Alpha != EncodeRat(p.Alpha) {
			t.Fatalf("%s: pair %d alpha %s, want %s", label, i, gp.Alpha, EncodeRat(p.Alpha))
		}
		if !equalInts(gp.B, p.B) || !equalInts(gp.C, p.C) {
			t.Fatalf("%s: pair %d sets B=%v C=%v, want B=%v C=%v", label, i, gp.B, gp.C, p.B, p.C)
		}
	}
	for v := 0; v < g.N(); v++ {
		wv := got.Vertices[v]
		if wv.Class != want.ClassOf(v).String() {
			t.Fatalf("%s: vertex %d class %s, want %s", label, v, wv.Class, want.ClassOf(v))
		}
		if wv.Alpha != EncodeRat(want.AlphaOf(v)) {
			t.Fatalf("%s: vertex %d alpha %s, want %s", label, v, wv.Alpha, EncodeRat(want.AlphaOf(v)))
		}
		if wv.Utility != EncodeRat(want.Utility(g, v)) {
			t.Fatalf("%s: vertex %d utility %s, want %s", label, v, wv.Utility, EncodeRat(want.Utility(g, v)))
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

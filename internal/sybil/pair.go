package sybil

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// PairAttackResult reports the outcome of a simultaneous two-agent Sybil
// attack search.
type PairAttackResult struct {
	// HonestA, HonestB are the attackers' honest utilities.
	HonestA, HonestB numeric.Rat
	// BestA, BestB are each attacker's highest utility across the searched
	// joint strategies (possibly from different joint strategies).
	BestA, BestB numeric.Rat
	// BestCombined is the highest A+B total, with the corresponding
	// per-attacker utilities.
	BestCombined         numeric.Rat
	CombinedA, CombinedB numeric.Rat
	RatioA, RatioB       numeric.Rat
	CombinedRatio        numeric.Rat
	Tried                int
}

// PairAttack exhaustively searches simultaneous Sybil attacks by two agents
// on a ring: each attacker either stays whole or splits into two identities
// (one per ring neighbor) with weights from a uniform grid. This extends
// the paper's single-attacker analysis toward coalition deviations (cf. the
// collective behaviors of [13], [14]).
//
// Per-attacker ratios are measured against the all-honest baseline; the
// combined ratio is (U_A + U_B) under joint deviation over (U_A + U_B)
// honest. NOTE these are NOT governed by Theorem 8, which bounds unilateral
// deviations only — and indeed they escape it (experiment E16): a partner's
// sacrificial split can lift an agent far beyond 2× its honest utility
// (observed 65×), and even the coalition's combined utility can exceed
// 2× (observed 335/82 ≈ 4.09× on the ring (128,2,128,128,512,4,32) with
// attackers 4 and 5). Every such number is an exactly-evaluated strategy,
// i.e. a rigorous lower-bound certificate.
func PairAttack(g *graph.Graph, a, b int, grid int) (*PairAttackResult, error) {
	if !g.IsRing() {
		return nil, fmt.Errorf("sybil: PairAttack requires a ring")
	}
	if a == b || a < 0 || b < 0 || a >= g.N() || b >= g.N() {
		return nil, fmt.Errorf("sybil: invalid attacker pair (%d, %d)", a, b)
	}
	if grid <= 0 {
		grid = 8
	}
	dec, err := bottleneck.Decompose(g)
	if err != nil {
		return nil, err
	}
	res := &PairAttackResult{
		HonestA: dec.Utility(g, a),
		HonestB: dec.Utility(g, b),
	}
	res.BestA, res.BestB = res.HonestA, res.HonestB
	res.BestCombined = res.HonestA.Add(res.HonestB)
	res.CombinedA, res.CombinedB = res.HonestA, res.HonestB

	// strategies for one attacker: nil = stay whole; otherwise the split
	// weight fraction k/grid toward the successor neighbor.
	type strategy struct {
		split bool
		k     int
	}
	var strategies []strategy
	strategies = append(strategies, strategy{})
	for k := 0; k <= grid; k++ {
		strategies = append(strategies, strategy{split: true, k: k})
	}

	apply := func(gcur *graph.Graph, v int, st strategy) (*graph.Graph, []int, error) {
		if !st.split {
			return gcur, []int{v}, nil
		}
		nbs := gcur.Neighbors(v)
		if len(nbs) != 2 {
			return nil, nil, fmt.Errorf("sybil: attacker %d no longer has degree 2", v)
		}
		wv := gcur.Weight(v)
		w1 := wv.MulInt(int64(st.k)).DivInt(int64(grid))
		sp := graph.SplitSpec{
			V:       v,
			Parts:   [][]int{{nbs[0]}, {nbs[1]}},
			Weights: []numeric.Rat{w1, wv.Sub(w1)},
		}
		gNew, ids, err := graph.Split(gcur, sp)
		if err != nil {
			return nil, nil, err
		}
		return gNew, ids, nil
	}

	for _, stA := range strategies {
		// Apply A's strategy first; B's vertex index is unchanged because
		// Split keeps existing indices and appends new ones.
		g1, idsA, err := apply(g, a, stA)
		if err != nil {
			return nil, err
		}
		for _, stB := range strategies {
			g2, idsB, err := apply(g1, b, stB)
			if err != nil {
				return nil, err
			}
			d, err := bottleneck.Decompose(g2)
			if err != nil {
				return nil, fmt.Errorf("sybil: decomposing joint attack: %w", err)
			}
			uA, uB := numeric.Zero, numeric.Zero
			for _, id := range idsA {
				uA = uA.Add(d.Utility(g2, id))
			}
			for _, id := range idsB {
				uB = uB.Add(d.Utility(g2, id))
			}
			res.Tried++
			if res.BestA.Less(uA) {
				res.BestA = uA
			}
			if res.BestB.Less(uB) {
				res.BestB = uB
			}
			if res.BestCombined.Less(uA.Add(uB)) {
				res.BestCombined = uA.Add(uB)
				res.CombinedA, res.CombinedB = uA, uB
			}
		}
	}
	div := func(num, den numeric.Rat) numeric.Rat {
		if den.Sign() > 0 {
			return num.Div(den)
		}
		return numeric.One
	}
	res.RatioA = div(res.BestA, res.HonestA)
	res.RatioB = div(res.BestB, res.HonestB)
	res.CombinedRatio = div(res.BestCombined, res.HonestA.Add(res.HonestB))
	return res, nil
}

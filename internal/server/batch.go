package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
)

// batcher micro-batches /v1/ratio work: concurrent requests for the same
// key (canonical instance + agent + grid) join one shared computation
// instead of redundantly driving the same optimizer over the same shared
// solver. The first arrival opens a batch and, when window > 0, holds it
// open for the window before starting, so near-simultaneous requests
// coalesce even when they do not overlap the (short, warm) computation.
//
// The computation runs in its own goroutine under a context that is
// canceled only when every participant has abandoned the batch — one
// impatient client cannot kill the answer for the others, while a batch
// nobody is waiting for stops mid-Dinkelbach instead of burning the pool.
type batcher struct {
	window time.Duration

	mu    sync.Mutex
	calls map[string]*batchCall

	runs, joins atomic.Int64

	// onPanic, when set, is called once per panic contained inside a batch
	// computation (the server wires it to panics_total). The panic itself is
	// delivered to every participant as a *par.PanicError.
	onPanic func()
}

// batchCall is one in-flight shared computation.
type batchCall struct {
	done   chan struct{} // closed when val/err are set
	val    any
	err    error
	refs   int // participants still waiting
	cancel context.CancelFunc
}

func newBatcher(window time.Duration) *batcher {
	return &batcher{window: window, calls: make(map[string]*batchCall)}
}

// do returns the shared result for key, starting the computation if this
// caller opens the batch. compute receives the batch's own context —
// produced by newBase (typically carrying the server-side timeout) and
// owned by the batch — NOT the caller's request context: the caller's ctx
// only governs how long this caller waits. joined reports whether the
// caller rode an existing batch.
func (b *batcher) do(ctx context.Context, key string, newBase func() (context.Context, context.CancelFunc), compute func(context.Context) (any, error)) (val any, joined bool, err error) {
	b.mu.Lock()
	call, ok := b.calls[key]
	if ok {
		call.refs++
		b.mu.Unlock()
		b.joins.Add(1)
		return b.wait(ctx, key, call, true)
	}
	runCtx, cancel := newBase()
	call = &batchCall{done: make(chan struct{}), refs: 1, cancel: cancel}
	b.calls[key] = call
	b.mu.Unlock()
	b.runs.Add(1)
	go b.run(key, call, runCtx, compute)
	return b.wait(ctx, key, call, false)
}

// run executes one batch: optional collection window, then the computation.
func (b *batcher) run(key string, call *batchCall, runCtx context.Context, compute func(context.Context) (any, error)) {
	defer call.cancel()
	if b.window > 0 {
		t := time.NewTimer(b.window)
		select {
		case <-t.C:
		case <-runCtx.Done():
			t.Stop()
		}
	}
	var (
		val any
		err error
	)
	if err = runCtx.Err(); err == nil {
		// The computation runs on this detached goroutine: an unrecovered
		// panic here would kill the process AND leave every participant
		// blocked on call.done forever. Protect converts it into an error
		// that flows through the normal completion path below.
		err = par.Protect(func() error {
			var cerr error
			val, cerr = compute(runCtx)
			return cerr
		})
		var pe *par.PanicError
		if errors.As(err, &pe) && b.onPanic != nil {
			b.onPanic()
		}
	}
	b.mu.Lock()
	call.val, call.err = val, err
	close(call.done)
	// The batch is complete; later arrivals for the same key start fresh
	// (their answer comes from the instance cache in O(lookup) anyway).
	if b.calls[key] == call {
		delete(b.calls, key)
	}
	b.mu.Unlock()
}

// wait blocks until the batch completes or the caller gives up. A departing
// caller decrements the refcount and cancels the computation when it was
// the last one waiting.
func (b *batcher) wait(ctx context.Context, key string, call *batchCall, joined bool) (any, bool, error) {
	select {
	case <-call.done:
		return call.val, joined, call.err
	case <-ctx.Done():
	}
	b.mu.Lock()
	select {
	case <-call.done:
		// Completion raced the caller's cancellation; prefer the answer.
		b.mu.Unlock()
		return call.val, joined, call.err
	default:
	}
	call.refs--
	abandon := call.refs == 0
	if abandon && b.calls[key] == call {
		delete(b.calls, key)
	}
	b.mu.Unlock()
	if abandon {
		call.cancel()
	}
	return nil, joined, ctx.Err()
}

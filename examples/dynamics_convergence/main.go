// Dynamics convergence: measure how fast the proportional response
// dynamics reaches the exact BD allocation (Proposition 6) on three
// instance shapes — and expose the Θ(1/t) tail at a degenerate α = 1
// equilibrium, where a transfer must decay to exactly zero.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	instances := []struct {
		name string
		g    *repro.Graph
	}{
		{"asymmetric ring  ", repro.Ring(repro.Ints(1, 7, 2, 9, 3))},
		{"heavy-middle path", repro.Path(repro.Ints(1, 100, 2))},
		{"degenerate ring  ", repro.Ring(repro.Ints(512, 512, 1024))},
	}
	const rounds = 1 << 14

	fmt.Println("L∞ utility error vs exact equilibrium (Proposition 6):")
	fmt.Printf("%-18s", "rounds")
	for _, it := range instances {
		fmt.Printf("  %-18s", it.name)
	}
	fmt.Println()

	series := make([][]float64, len(instances))
	for i, it := range instances {
		dec, err := repro.Decompose(context.Background(), it.g)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.RunDynamics(it.g, repro.DynamicsOptions{
			MaxRounds:       rounds,
			Tol:             1e-300,
			TargetUtilities: dec.Utilities(it.g),
		})
		if err != nil {
			log.Fatal(err)
		}
		series[i] = res.UtilityError
	}
	for r := 1; r <= rounds; r *= 4 {
		fmt.Printf("%-18d", r)
		for i := range instances {
			idx := r
			if idx >= len(series[i]) {
				idx = len(series[i]) - 1
			}
			fmt.Printf("  %-18.3e", series[i][idx])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("the first two instances decay geometrically; the degenerate ring")
	fmt.Println("(equilibrium transfer exactly 0 between the two 512-peers) decays as Θ(1/t):")
	deg := series[2]
	for r := 1024; r <= rounds; r *= 4 {
		fmt.Printf("  rounds ×4 → error ratio %.3f (≈ 4 for 1/t)\n", deg[r/4]/deg[r])
	}
}

package par

import (
	"context"
	"sync/atomic"
)

// Limiter is a context-aware bounded semaphore: the admission-control
// counterpart of ForEach's fork-join pools. Long-running callers (the
// irshared request handlers) acquire a slot before starting a decomposition
// and release it when done, so at most Cap heavy computations run at once
// while the callers' contexts keep queueing bounded in time.
//
// The zero value is not usable; construct with NewLimiter.
type Limiter struct {
	slots   chan struct{}
	waiting atomic.Int64
}

// NewLimiter returns a Limiter admitting up to size concurrent holders
// (size ≤ 0 means GOMAXPROCS, as in Workers).
func NewLimiter(size int) *Limiter {
	return &Limiter{slots: make(chan struct{}, Workers(size))}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case. A free slot is taken without consulting the context's
// done channel, so acquiring from an already-canceled context still
// succeeds when capacity is available — callers that care check ctx first.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by a successful Acquire. Releasing without a
// matching Acquire panics (the channel receive would block forever
// otherwise, so the misuse is made loud instead).
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("par: Limiter.Release without Acquire")
	}
}

// Cap returns the slot capacity.
func (l *Limiter) Cap() int { return cap(l.slots) }

// InUse returns the number of currently held slots.
func (l *Limiter) InUse() int { return len(l.slots) }

// Waiting returns the number of goroutines blocked in Acquire.
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// Command irrouter fronts a sharded irshared cluster: it consistent-hashes
// each request's canonical instance key across the backend nodes, probes
// /readyz for membership, fails requests over to the next ring replica,
// supervises durable jobs under WAL-persisted TTL leases (re-placing them
// from their last checkpoint when a node dies), and re-checks backend
// certificates before forwarding them.
//
// Endpoints (see internal/cluster):
//
//	POST /v1/*          the full irshared compute surface, proxied
//	POST /v1/jobs       durable job placement under a lease
//	GET  /v1/jobs/{id}  job lookup (lease owner, else every live node)
//	DELETE /v1/jobs/{id} cancel + lease retirement
//	GET  /healthz       router liveness
//	GET  /readyz        ready while at least one backend is alive
//	GET  /cluster/nodes membership view (state, node IDs, queue depths)
//	GET  /metrics       Prometheus text metrics (irrouter_*)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "irrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("irrouter", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8090", "listen address")
		nodes         = fs.String("nodes", "", "comma-separated backend base URLs (required)")
		vnodes        = fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		probeInterval = fs.Duration("probe-interval", time.Second, "/readyz probe period")
		probeTimeout  = fs.Duration("probe-timeout", 2*time.Second, "single probe timeout")
		deadAfter     = fs.Int("dead-after", 3, "consecutive failed probes before a node is dead")
		leaseTTL      = fs.Duration("lease-ttl", 15*time.Second, "job placement lease duration")
		renewEvery    = fs.Duration("renew-interval", 0, "lease renewal period (0 = lease-ttl/3)")
		quarantine    = fs.Duration("quarantine", 30*time.Second, "certificate-rejection quarantine period")
		dataDir       = fs.String("data-dir", "", "lease WAL directory; empty keeps leases in memory only")
		drain         = fs.Duration("drain", 30*time.Second, "max graceful shutdown wait")
		logFormat     = fs.String("log", "text", "log format: text|json")
		chaosSpec     = fs.String("chaos", "", "fault-injection spec for cluster.* sites (requires -chaos-allow)")
		chaosAllow    = fs.Bool("chaos-allow", false, "acknowledge that -chaos deliberately breaks requests; refused otherwise")
		chaosSeed     = fs.Uint64("chaos-seed", 1, "deterministic seed for -chaos injection decisions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes == "" {
		return errors.New("-nodes is required (comma-separated backend base URLs)")
	}
	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		n = strings.TrimRight(strings.TrimSpace(n), "/")
		if n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		return errors.New("-nodes contained no usable URLs")
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	// Chaos is strictly opt-in twice over, exactly like irshared.
	var injector *fault.Injector
	if *chaosSpec != "" {
		if !*chaosAllow {
			return fmt.Errorf("-chaos requires -chaos-allow (fault injection deliberately fails requests)")
		}
		rules, err := fault.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("bad -chaos spec: %w", err)
		}
		injector, err = fault.New(*chaosSeed, rules...)
		if err != nil {
			return fmt.Errorf("bad -chaos spec: %w", err)
		}
		logger.Warn("chaos mode: fault injection armed", "spec", *chaosSpec, "seed", *chaosSeed)
	} else if *chaosAllow {
		return fmt.Errorf("-chaos-allow given without -chaos")
	}

	router, err := cluster.New(cluster.Config{
		Nodes:         nodeList,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		DeadAfter:     *deadAfter,
		LeaseTTL:      *leaseTTL,
		RenewInterval: *renewEvery,
		QuarantineFor: *quarantine,
		DataDir:       *dataDir,
		Logger:        logger,
		Chaos:         injector,
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", *addr, "nodes", nodeList)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "max_wait", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Stop the lease loops and sync the lease WAL after the listener drains:
	// the next boot replays every live placement and resumes supervision.
	if err := router.Close(); err != nil {
		return fmt.Errorf("close lease log: %w", err)
	}
	logger.Info("drained")
	return nil
}

package cert

import (
	"fmt"
	"math/big"
	"strings"
)

// maxRatLen bounds one rational literal inside a certificate. Canonical
// forms of every quantity the solvers produce are far shorter; the limit
// exists so a hostile certificate cannot smuggle an outsized big.Int parse
// (or big.Rat's scientific notation, which this parser rejects outright)
// into the checker.
const maxRatLen = 4096

// parseRat parses a canonical rational literal: an optional leading '-',
// then decimal digits, then optionally '/' and a positive decimal
// denominator. Unlike big.Rat.SetString it accepts no exponents, no decimal
// points and no whitespace, and it additionally requires the literal to be
// canonical — re-rendering the parsed value must reproduce the input byte
// for byte (lowest terms, no leading zeros, no "-0", denominator omitted
// when 1). Canonicality is what makes certificate identity textual: two
// certificates describe the same numbers iff their bytes agree.
func parseRat(s string) (*big.Rat, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("cert: empty rational literal")
	}
	if len(s) > maxRatLen {
		return nil, fmt.Errorf("cert: rational literal of %d bytes exceeds limit %d", len(s), maxRatLen)
	}
	num, den := s, ""
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den = s[:i], s[i+1:]
	}
	if !validInt(num, true) || (den != "" && !validInt(den, false)) {
		return nil, fmt.Errorf("cert: malformed rational literal %q", s)
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("cert: malformed rational literal %q", s)
	}
	if r.RatString() != s {
		return nil, fmt.Errorf("cert: non-canonical rational literal %q (canonical form %q)", s, r.RatString())
	}
	return r, nil
}

// validInt reports whether s is a plain decimal integer (optionally signed
// when neg is true). It intentionally over-accepts non-canonical forms like
// leading zeros — the canonical re-render check in parseRat rejects those —
// and exists only to keep exponents and decimals away from big.Rat.
func validInt(s string, neg bool) bool {
	if neg && strings.HasPrefix(s, "-") {
		s = s[1:]
	}
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// parseNonNeg is parseRat restricted to values ≥ 0.
func parseNonNeg(s string) (*big.Rat, error) {
	r, err := parseRat(s)
	if err != nil {
		return nil, err
	}
	if r.Sign() < 0 {
		return nil, fmt.Errorf("cert: negative value %q where a non-negative one is required", s)
	}
	return r, nil
}

// ratStr renders r canonically ("n" or "n/d"), the inverse of parseRat.
func ratStr(r *big.Rat) string { return r.RatString() }

// Common constants for the checker's comparisons.
var (
	ratZero = new(big.Rat)
	ratOne  = big.NewRat(1, 1)
	ratTwo  = big.NewRat(2, 1)
)

// Package core implements the paper's primary contribution: the analysis of
// a Sybil attack against the BD Allocation Mechanism on ring networks, whose
// incentive ratio Theorem 8 pins to exactly 2.
//
// An Instance fixes a ring G and a manipulative agent v. Splitting v into
// two identities v¹, v² (one per ring neighbor) turns the ring into the
// path P_v(w1, w2) with the identities as leaves. The package provides:
//
//   - exact evaluation of any split (and of the paper's off-simplex
//     intermediate configurations P_v(w1, w2) with w1 + w2 ≠ w_v used by the
//     two-stage proof),
//   - the honest split (w1⁰, w2⁰) of Lemma 9, read off the exact BD
//     allocation of the ring,
//   - a piece-aware optimizer for the attacker's best split (optimize.go),
//   - the two-stage decomposition of the proof with per-stage utility
//     deltas, the initial-form classification of Lemmas 14/20, and the
//     Adjusting Technique (stages.go),
//   - a Theorem 8 verdict for whole instances (theorem.go).
package core

import (
	"fmt"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Instance is a ring resource-sharing game with a designated manipulative
// agent.
type Instance struct {
	G *graph.Graph // the ring
	V int          // the manipulative agent

	// Dec is the bottleneck decomposition of the ring.
	Dec *bottleneck.Decomposition
	// HonestU is U_v(G; w), the utility without deviation.
	HonestU numeric.Rat
	// W1Zero and W2Zero are the amounts v sends to its two neighbors under
	// the honest BD allocation; by Lemma 9, splitting with exactly these
	// weights reproduces HonestU on the path.
	W1Zero, W2Zero numeric.Rat

	// interior lists the ring vertices between the two neighbors in path
	// order n1 ... n2 (i.e. the ring order starting after v).
	interior []int
	n1, n2   int
}

// NewInstance validates g as a ring and precomputes the honest-side data.
func NewInstance(g *graph.Graph, v int) (*Instance, error) {
	if !g.IsRing() {
		return nil, fmt.Errorf("core: graph is not a ring")
	}
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("core: vertex %d out of range", v)
	}
	dec, err := bottleneck.Decompose(g)
	if err != nil {
		return nil, fmt.Errorf("core: decomposing ring: %w", err)
	}
	alloc, err := allocation.Compute(g, dec)
	if err != nil {
		return nil, fmt.Errorf("core: allocating on ring: %w", err)
	}
	ring, err := g.RingOrder(v)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		G:        g,
		V:        v,
		Dec:      dec,
		HonestU:  dec.Utility(g, v),
		interior: ring[1:],
		n1:       ring[1],
		n2:       ring[len(ring)-1],
	}
	in.W1Zero = alloc.Get(v, in.n1)
	in.W2Zero = alloc.Get(v, in.n2)
	if !in.W1Zero.Add(in.W2Zero).Equal(g.Weight(v)) {
		return nil, fmt.Errorf("core: honest allocation sends %v+%v ≠ w_v = %v",
			in.W1Zero, in.W2Zero, g.Weight(v))
	}
	return in, nil
}

// W returns w_v, the attacker's total endowment.
func (in *Instance) W() numeric.Rat { return in.G.Weight(in.V) }

// Neighbors returns the attacker's two ring neighbors (n1, n2); identity v¹
// attaches to n1 and v² to n2.
func (in *Instance) Neighbors() (n1, n2 int) { return in.n1, in.n2 }

// PathEval is the exact outcome of one configuration P_v(w1, w2).
type PathEval struct {
	W1, W2 numeric.Rat
	// Path is the evaluated path graph; position 0 is v¹, position N-1 is
	// v², positions 1..N-2 are the ring interior in order n1..n2.
	Path *graph.Graph
	// OrigOf maps path positions 1..N-2 back to ring vertex indices.
	OrigOf []int
	// V1, V2 are the path positions of the identities (0 and N-1).
	V1, V2 int
	// Dec is the bottleneck decomposition of Path.
	Dec *bottleneck.Decomposition
	// U1, U2 are the identities' utilities; U = U1 + U2.
	U1, U2, U numeric.Rat
	// Signature is Dec's structure signature (piece identity).
	Signature string
}

// EvalPair evaluates the configuration P_v(w1, w2) for arbitrary
// non-negative leaf weights — including the off-simplex intermediate
// configurations of the proof's Stages C-1/C-2 and D-1/D-2 where
// w1 + w2 ≠ w_v.
func (in *Instance) EvalPair(w1, w2 numeric.Rat) (*PathEval, error) {
	if w1.Sign() < 0 || w2.Sign() < 0 {
		return nil, fmt.Errorf("core: negative identity weight (%v, %v)", w1, w2)
	}
	n := len(in.interior) + 2
	ws := make([]numeric.Rat, n)
	orig := make([]int, n)
	ws[0], orig[0] = w1, -1
	for i, u := range in.interior {
		ws[i+1], orig[i+1] = in.G.Weight(u), u
	}
	ws[n-1], orig[n-1] = w2, -1
	p := graph.Path(ws)
	p.SetLabel(0, fmt.Sprintf("%s^1", in.G.Label(in.V)))
	p.SetLabel(n-1, fmt.Sprintf("%s^2", in.G.Label(in.V)))
	dec, err := bottleneck.DecomposeWith(p, bottleneck.EnginePathDP)
	if err != nil {
		return nil, fmt.Errorf("core: decomposing P_v(%v, %v): %w", w1, w2, err)
	}
	ev := &PathEval{
		W1: w1, W2: w2,
		Path: p, OrigOf: orig,
		V1: 0, V2: n - 1,
		Dec: dec,
		U1:  dec.Utility(p, 0),
		U2:  dec.Utility(p, n-1),
	}
	ev.U = ev.U1.Add(ev.U2)
	ev.Signature = dec.StructureSignature()
	return ev, nil
}

// EvalSplit evaluates the legal Sybil split (w1, w_v − w1).
func (in *Instance) EvalSplit(w1 numeric.Rat) (*PathEval, error) {
	if w1.Sign() < 0 || in.W().Less(w1) {
		return nil, fmt.Errorf("core: split weight %v outside [0, %v]", w1, in.W())
	}
	return in.EvalPair(w1, in.W().Sub(w1))
}

// HonestSplitEval evaluates P_v(w1⁰, w2⁰); by Lemma 9 its total utility
// equals HonestU exactly.
func (in *Instance) HonestSplitEval() (*PathEval, error) {
	return in.EvalPair(in.W1Zero, in.W2Zero)
}

// VClass returns the attacker's class on the original ring, with the
// paper's convention that a vertex of the final self-pair (α = 1) is
// treated as C class for the case analysis.
func (in *Instance) VClass() bottleneck.Class {
	if c := in.Dec.ClassOf(in.V); c != bottleneck.ClassBoth {
		return c
	}
	return bottleneck.ClassC
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sybil"
)

// Certification limits, tighter than the plain compute limits: a certificate
// carries per-pair Hall-condition flow witnesses for every evaluated split,
// so its size (and construction cost) grows with both the ring and the grid.
const (
	// maxCertRingSize caps the ring for any ?cert=1 request.
	maxCertRingSize = 512
	// maxCertSweepGrid caps the sweep grid for ?cert=1 — each of the grid+1
	// points gets a fully witnessed split certificate.
	maxCertSweepGrid = 512
)

// wantCert reports whether the request opted into certification, via either
// the body flag or the ?cert=1 query parameter.
func wantCert(r *http.Request, bodyFlag bool) bool {
	return bodyFlag || r.URL.Query().Get("cert") == "1"
}

// certify runs the trusted-side builder output through the solver-free
// checker, applying the test-only corruption hook first. The returned error
// means the server must answer cert_invalid rather than ship an unchecked
// certificate.
func (s *Server) certify(c cert.Checkable) error {
	if s.corruptCert != nil {
		s.corruptCert(c)
	}
	return cert.Check(c)
}

// statusClientClosed is nginx's convention for "client closed request";
// it never reaches the client (the connection is gone) but it keeps the
// logs and metrics honest about why the request ended.
const statusClientClosed = 499

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error body: a stable machine-readable code
// plus a human-readable message.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Code: code, Message: msg})
}

// writeErrorDetail is writeError with underlying error text in Detail.
func writeErrorDetail(w http.ResponseWriter, status int, code, msg, detail string) {
	writeJSON(w, status, ErrorResponse{Code: code, Message: msg, Detail: detail})
}

// writeComputeError maps a computation error to a status: context errors
// become timeouts/client-gone; injected faults are transient by definition
// and map to a retryable 503 + Retry-After so chaos replays converge under
// client retries; contained panics surface as 500 internal_panic (also
// retryable — the panic poisoned one computation, not the process);
// everything else is a plain 500.
func writeComputeError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *par.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeTimeout, "computation exceeded the request timeout")
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosed, CodeClientClosed, "client canceled")
	case errors.Is(err, fault.ErrInjected):
		retryAfter(w, time.Second)
		writeErrorDetail(w, http.StatusServiceUnavailable, CodeBusy, "transient fault; retry", err.Error())
	case errors.As(err, &pe):
		writeErrorDetail(w, http.StatusInternalServerError, CodeInternalPanic,
			"computation panicked; the panic was contained and the request may be retried",
			fmt.Sprint(pe.Value))
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// decodeBody parses the request body into v, rejecting unknown fields and
// trailing garbage so schema drift fails loudly on the client side too.
// When the request is traced, the parse is recorded as a "server.decode"
// stage span.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	_, sp := obs.Start(r.Context(), "server.decode")
	defer sp.End()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErrorDetail(w, http.StatusBadRequest, CodeBadBody, "invalid request body", err.Error())
		return false
	}
	if dec.More() {
		writeErrorDetail(w, http.StatusBadRequest, CodeBadBody, "invalid request body", "trailing data")
		return false
	}
	return true
}

// writeResult writes a success body, recorded as the request's
// "server.write" stage span when traced.
func writeResult(w http.ResponseWriter, r *http.Request, v any) {
	_, sp := obs.Start(r.Context(), "server.write")
	writeJSON(w, http.StatusOK, v)
	sp.End()
}

// entryForWire builds the graph from its wire form and resolves the cache
// entry for its canonical key, recording the hit/miss both on the request's
// span and in the per-endpoint cache metrics.
func (s *Server) entryForWire(w http.ResponseWriter, r *http.Request, wg *WireGraph) (*cacheEntry, bool) {
	return s.entryForKeyed(w, r, wg, CanonicalKey)
}

// entryForKeyed is entryForWire under a caller-chosen key derivation —
// the mechanism-scoped endpoints pass mechKey so backends never share
// cached state (see mechanisms.go).
func (s *Server) entryForKeyed(w http.ResponseWriter, r *http.Request, wg *WireGraph, keyOf func(*graph.Graph) string) (*cacheEntry, bool) {
	g, err := wg.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadGraph, err.Error())
		return nil, false
	}
	if err := fault.Hit(r.Context(), fault.SiteCacheGet); err != nil {
		writeComputeError(w, r, err)
		return nil, false
	}
	entry, hit := s.cache.entryFor(keyOf(g), g)
	s.metrics.cacheLookup(r.URL.Path, hit)
	if sp := obs.FromContext(r.Context()); sp != nil {
		if hit {
			sp.AddInt("cache_hit", 1)
		} else {
			sp.AddInt("cache_miss", 1)
		}
	}
	return entry, true
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadEngine, err.Error())
		return
	}
	entry, ok := s.entryForWire(w, r, &req.Graph)
	if !ok {
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	cctx, csp := obs.Start(ctx, "server.compute")
	d, err := entry.decomposition(cctx, engine)
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	resp := DecomposeResponse{
		Pairs:     make([]WirePair, len(d.Pairs)),
		Vertices:  make([]WireVertex, entry.g.N()),
		Signature: d.StructureSignature(),
	}
	for i, p := range d.Pairs {
		resp.Pairs[i] = WirePair{B: p.B, C: p.C, Alpha: EncodeRat(p.Alpha)}
	}
	for v := 0; v < entry.g.N(); v++ {
		resp.Vertices[v] = WireVertex{
			Index:   v,
			Label:   entry.g.Label(v),
			Weight:  EncodeRat(entry.g.Weight(v)),
			Class:   d.ClassOf(v).String(),
			Alpha:   EncodeRat(d.AlphaOf(v)),
			Utility: EncodeRat(d.Utility(entry.g, v)),
		}
	}
	writeResult(w, r, resp)
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	var req AllocateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadEngine, err.Error())
		return
	}
	m, ok := resolveWireMechanism(w, req.Mechanism)
	if !ok {
		return
	}
	if _, decomposes := m.(mechanism.Decomposer); !decomposes && req.Engine != "" && req.Engine != "auto" {
		writeError(w, http.StatusBadRequest, CodeBadEngine,
			fmt.Sprintf("engine selection applies to decomposition-based mechanisms, not %q", m.Name()))
		return
	}
	entry, ok := s.entryForMech(w, r, &req.Graph, m)
	if !ok {
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	cctx, csp := obs.Start(ctx, "server.compute")
	a, err := entry.mechAllocation(cctx, m, engine)
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	resp := AllocateResponse{Transfers: []WireTransfer{}, Utilities: make([]string, entry.g.N())}
	for _, e := range entry.g.Edges() {
		for _, dir := range [2][2]int{{e[0], e[1]}, {e[1], e[0]}} {
			if amt := a.Get(dir[0], dir[1]); !amt.IsZero() {
				resp.Transfers = append(resp.Transfers, WireTransfer{From: dir[0], To: dir[1], Amount: EncodeRat(amt)})
			}
		}
	}
	sortTransfers(resp.Transfers)
	for v := 0; v < entry.g.N(); v++ {
		resp.Utilities[v] = EncodeRat(a.Utility(v))
	}
	writeResult(w, r, resp)
}

// sortTransfers orders by (from, to) so the wire format is deterministic.
func sortTransfers(ts []WireTransfer) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && (ts[j].From < ts[j-1].From || (ts[j].From == ts[j-1].From && ts[j].To < ts[j-1].To)); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func (s *Server) handleUtilities(w http.ResponseWriter, r *http.Request) {
	var req UtilitiesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadEngine, err.Error())
		return
	}
	entry, ok := s.entryForWire(w, r, &req.Graph)
	if !ok {
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	cctx, csp := obs.Start(ctx, "server.compute")
	d, err := entry.decomposition(cctx, engine)
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	us := d.Utilities(entry.g)
	total := numeric.Zero
	for _, u := range us {
		total = total.Add(u)
	}
	writeResult(w, r, UtilitiesResponse{
		Utilities:   encodeRats(us),
		Total:       EncodeRat(total),
		TotalWeight: EncodeRat(entry.g.TotalWeight()),
	})
}

func (s *Server) handleRatio(w http.ResponseWriter, r *http.Request) {
	var req RatioRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Grid < 0 || req.Grid > 4096 {
		writeError(w, http.StatusBadRequest, CodeBadGrid, "grid outside [0, 4096]")
		return
	}
	m, ok := resolveWireMechanism(w, req.Mechanism)
	if !ok {
		return
	}
	entry, ok := s.entryForMech(w, r, &req.Graph, m)
	if !ok {
		return
	}
	if !entry.g.IsRing() {
		writeError(w, http.StatusBadRequest, CodeNotRing, "ratio requires a ring graph")
		return
	}
	if req.V < 0 || req.V >= entry.g.N() {
		writeError(w, http.StatusBadRequest, CodeBadAgent, fmt.Sprintf("agent %d out of range [0, %d)", req.V, entry.g.N()))
		return
	}
	withCert := wantCert(r, req.Cert)
	if withCert && !mechCertifiable(m) {
		writeError(w, http.StatusBadRequest, CodeCertLimit,
			fmt.Sprintf("certificates are only available for certifiable mechanisms (bd), not %q", m.Name()))
		return
	}
	if withCert && entry.g.N() > maxCertRingSize {
		writeError(w, http.StatusBadRequest, CodeCertLimit,
			fmt.Sprintf("certificates are limited to rings of at most %d vertices, got %d", maxCertRingSize, entry.g.N()))
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	if _, exact := m.(mechanism.RingOptimizer); !exact {
		s.ratioGeneric(ctx, w, r, entry, m, &req)
		return
	}
	// Micro-batch: concurrent ratio requests for the same (instance, agent,
	// grid) share one optimizer run over the entry's shared solver state.
	// The computation runs detached from any single request (computeBase),
	// so its solver spans cannot hang off a request's trace; instead the
	// batch opens its own collector trace and every participant's compute
	// span records that trace's id plus whether it joined or opened the run.
	cctx, csp := obs.Start(ctx, "server.compute")
	key := fmt.Sprintf("%s|v=%d|grid=%d", entry.key, req.V, req.Grid)
	val, joined, err := s.batch.do(cctx, key, s.computeBase, func(runCtx context.Context) (any, error) {
		if err := fault.Hit(runCtx, fault.SiteServerBatch); err != nil {
			return nil, err
		}
		var batchTrace uint64
		if s.collector != nil {
			tr := s.collector.NewTrace("/v1/ratio#compute")
			batchTrace = tr.ID()
			runCtx = tr.Context(runCtx)
			defer tr.Finish()
		}
		in, err := entry.instance(runCtx, req.V)
		if err != nil {
			return nil, err
		}
		opt, err := in.OptimizeCtx(runCtx, core.OptimizeOptions{Grid: req.Grid})
		if err != nil {
			return nil, err
		}
		return ratioBatchResult{opt: opt, trace: batchTrace}, nil
	})
	if csp != nil {
		if joined {
			csp.AddInt("batch_joined", 1)
		} else {
			csp.AddInt("batch_opened", 1)
		}
		if err == nil {
			if rb := val.(ratioBatchResult); rb.trace != 0 {
				csp.SetAttr("batch_trace", strconv.FormatUint(rb.trace, 10))
			}
		}
	}
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	opt := val.(ratioBatchResult).opt
	in, err := entry.instance(ctx, req.V) // cached by the batch computation
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	resp := RatioResponse{
		Honest: EncodeRat(in.HonestU),
		BestW1: EncodeRat(opt.BestW1),
		BestU:  EncodeRat(opt.BestU),
		Ratio:  EncodeRat(opt.Ratio),
		LeqTwo: opt.Ratio.LessEq(numeric.Two),
		Evals:  opt.Evals,
		Pieces: len(opt.Pieces),
	}
	if withCert {
		// Certification happens outside the batch: the optimizer answer is
		// shared, the certificate is per-request. The builder re-derives every
		// quantity exactly and the solver-free checker gates the response.
		rc, err := build.Ratio(ctx, in, opt)
		if err == nil {
			err = s.certify(rc)
		}
		if err != nil {
			if ctx.Err() != nil {
				writeComputeError(w, r, ctx.Err())
				return
			}
			writeErrorDetail(w, http.StatusInternalServerError, CodeCertInvalid,
				"certificate failed the server's solver-free self-check", err.Error())
			return
		}
		resp.Certificate = rc
	}
	writeResult(w, r, resp)
}

// ratioBatchResult is the shared answer of one batched ratio computation:
// the optimizer result plus the id of the collector trace that recorded the
// run (0 when tracing is disabled).
type ratioBatchResult struct {
	opt   *core.OptResult
	trace uint64
}

// ratioGeneric answers /v1/ratio for a mechanism without an exact ring
// optimizer: the empirical best over the sweep grid (req.Grid, default 64),
// computed by the generic mechanism sweep. Requests micro-batch on the
// mechanism-scoped entry key exactly like the bd path, so concurrent
// identical requests still share one run.
func (s *Server) ratioGeneric(ctx context.Context, w http.ResponseWriter, r *http.Request, entry *cacheEntry, m mechanism.Mechanism, req *RatioRequest) {
	cctx, csp := obs.Start(ctx, "server.compute")
	key := fmt.Sprintf("%s|v=%d|grid=%d", entry.key, req.V, req.Grid)
	val, joined, err := s.batch.do(cctx, key, s.computeBase, func(runCtx context.Context) (any, error) {
		if err := fault.Hit(runCtx, fault.SiteServerBatch); err != nil {
			return nil, err
		}
		res, err := mechanism.RingSweep(runCtx, m, entry.g, req.V, sybil.SweepOptions{Grid: req.Grid})
		if err != nil {
			return nil, err
		}
		if res.Partial {
			// The batch deadline cut the sweep short; a grid ratio has no
			// resume protocol (that's /v1/sweep), so report the timeout.
			return nil, context.DeadlineExceeded
		}
		return res, nil
	})
	if csp != nil {
		if joined {
			csp.AddInt("batch_joined", 1)
		} else {
			csp.AddInt("batch_opened", 1)
		}
	}
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	res := val.(*sybil.SweepResult)
	writeResult(w, r, RatioResponse{
		Honest: EncodeRat(res.Honest),
		BestW1: EncodeRat(res.BestW1),
		BestU:  EncodeRat(res.BestU),
		Ratio:  EncodeRat(res.Ratio),
		LeqTwo: res.Ratio.LessEq(numeric.Two),
		Evals:  len(res.Points),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	grid := req.Grid
	if grid == 0 {
		grid = 64
	}
	if grid < 0 || grid > 4096 {
		writeError(w, http.StatusBadRequest, CodeBadGrid, "grid outside [1, 4096]")
		return
	}
	m, ok := resolveWireMechanism(w, req.Mechanism)
	if !ok {
		return
	}
	entry, ok := s.entryForMech(w, r, &req.Graph, m)
	if !ok {
		return
	}
	if !entry.g.IsRing() {
		writeError(w, http.StatusBadRequest, CodeNotRing, "sweep requires a ring graph")
		return
	}
	if req.V < 0 || req.V >= entry.g.N() {
		writeError(w, http.StatusBadRequest, CodeBadAgent, fmt.Sprintf("agent %d out of range [0, %d)", req.V, entry.g.N()))
		return
	}
	withCert := wantCert(r, req.Cert)
	if withCert && !mechCertifiable(m) {
		writeError(w, http.StatusBadRequest, CodeCertLimit,
			fmt.Sprintf("certificates are only available for certifiable mechanisms (bd), not %q", m.Name()))
		return
	}
	if withCert {
		if entry.g.N() > maxCertRingSize {
			writeError(w, http.StatusBadRequest, CodeCertLimit,
				fmt.Sprintf("certificates are limited to rings of at most %d vertices, got %d", maxCertRingSize, entry.g.N()))
			return
		}
		if grid > maxCertSweepGrid {
			writeError(w, http.StatusBadRequest, CodeCertLimit,
				fmt.Sprintf("sweep certificates are limited to grids of at most %d, got %d", maxCertSweepGrid, grid))
			return
		}
	}
	start := 0
	if req.Resume != "" {
		tok, err := decodeResumeToken(req.Resume)
		if err != nil {
			writeErrorDetail(w, http.StatusBadRequest, CodePartialResult, "invalid resume token", err.Error())
			return
		}
		if tok.Key != entry.key || tok.V != req.V || tok.Grid != grid {
			writeError(w, http.StatusBadRequest, CodePartialResult,
				"resume token was minted for a different graph, agent, grid, or mechanism")
			return
		}
		if tok.Next < 0 || tok.Next > grid {
			writeError(w, http.StatusBadRequest, CodePartialResult, "resume token index out of range")
			return
		}
		start = tok.Next
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	cctx, csp := obs.Start(ctx, "server.compute")
	resp, err := s.sweep(cctx, entry, m, req.V, grid, start, withCert)
	csp.End()
	if err != nil {
		var ce *certError
		if errors.As(err, &ce) {
			writeErrorDetail(w, http.StatusInternalServerError, CodeCertInvalid,
				"certificate failed the server's solver-free self-check", ce.err.Error())
			return
		}
		writeComputeError(w, r, err)
		return
	}
	writeResult(w, r, resp)
}

// certError marks a certificate construction or self-check failure so
// handleSweep can answer cert_invalid instead of a generic 500.
type certError struct{ err error }

func (e *certError) Error() string { return "certificate self-check: " + e.err.Error() }
func (e *certError) Unwrap() error { return e.err }

// sweep evaluates the split-utility curve of mechanism m on the entry,
// starting at grid index start (nonzero when resuming from a partial
// result). Native sweepers (bd) run sybil.SweepInstanceCtx on the entry's
// cached core.Instance — the same code path as the library sweep, point for
// point, so API answers stay bit-identical to in-process results; other
// mechanisms run the generic sweep (one split allocation per point) with
// identical grid, best-point and partial-prefix semantics. A sweep cut
// short by cancellation or the request deadline returns its completed
// prefix and a resume token (minted against the mechanism-scoped entry
// key) instead of an error.
//
// With withCert set (bd only — the handler rejects other mechanisms with
// cert_limit), a completed (non-partial, non-empty) segment is additionally
// certified: the builder re-derives every point with flow witnesses and
// cert.Check gates the answer. A partial segment skips the certificate —
// its context is already at the deadline, and the client resumes anyway;
// the final resumed segment carries the certificate of its covered indices.
func (s *Server) sweep(ctx context.Context, entry *cacheEntry, m mechanism.Mechanism, v, grid, start int, withCert bool) (*SweepResponse, error) {
	var res *sybil.SweepResult
	var in *core.Instance
	var err error
	if _, native := m.(mechanism.RingSweeper); native {
		in, err = entry.instance(ctx, v)
		if err != nil {
			return nil, err
		}
		res, err = sybil.SweepInstanceCtx(ctx, in, sybil.SweepOptions{Grid: grid, Start: start})
	} else {
		res, err = mechanism.RingSweep(ctx, m, entry.g, v, sybil.SweepOptions{Grid: grid, Start: start})
	}
	if err != nil {
		return nil, err
	}
	resp := &SweepResponse{Points: make([]WireSweepPoint, len(res.Points))}
	for i, p := range res.Points {
		resp.Points[i] = WireSweepPoint{W1: EncodeRat(p.W1), U: EncodeRat(p.U)}
	}
	resp.BestW1, resp.BestU = EncodeRat(res.BestW1), EncodeRat(res.BestU)
	resp.Honest = EncodeRat(res.Honest)
	resp.Ratio = EncodeRat(res.Ratio)
	if start > 0 || res.Partial {
		resp.StartIndex = res.Start
		resp.NextIndex = res.NextIndex
	}
	if res.Partial {
		resp.Partial = true
		resp.ResumeToken = encodeResumeToken(resumeToken{Key: entry.key, V: v, Grid: grid, Next: res.NextIndex})
	}
	if withCert && !res.Partial && len(res.Points) > 0 {
		sc, err := build.Sweep(ctx, in, res, grid)
		if err == nil {
			err = s.certify(sc)
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, &certError{err}
		}
		resp.Certificate = sc
	}
	return resp, nil
}

package numeric

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Fatalf("zero value is not zero: %v", z)
	}
	if got := z.Add(FromInt(3)); !got.Equal(FromInt(3)) {
		t.Fatalf("0 + 3 = %v", got)
	}
	if got := z.Mul(FromInt(3)); !got.IsZero() {
		t.Fatalf("0 * 3 = %v", got)
	}
	if z.String() != "0" {
		t.Fatalf("zero String = %q", z.String())
	}
	if z.Sign() != 0 {
		t.Fatalf("zero Sign = %d", z.Sign())
	}
}

func TestNewNormalization(t *testing.T) {
	cases := []struct {
		n, d int64
		want string
	}{
		{1, 2, "1/2"},
		{2, 4, "1/2"},
		{-2, 4, "-1/2"},
		{2, -4, "-1/2"},
		{-2, -4, "1/2"},
		{0, 5, "0"},
		{0, -5, "0"},
		{6, 3, "2"},
		{7, 1, "7"},
		{-7, 1, "-7"},
		{math.MaxInt64, math.MaxInt64, "1"},
	}
	for _, c := range cases {
		got := New(c.n, c.d)
		if got.String() != c.want {
			t.Errorf("New(%d, %d) = %q, want %q", c.n, c.d, got.String(), c.want)
		}
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestMinInt64Promotion(t *testing.T) {
	r := New(math.MinInt64, 3)
	want := new(big.Rat).SetFrac(big.NewInt(math.MinInt64), big.NewInt(3))
	if r.bigVal().Cmp(want) != 0 {
		t.Fatalf("New(MinInt64,3) = %v, want %v", r, want)
	}
	r2 := New(3, math.MinInt64)
	want2 := new(big.Rat).SetFrac(big.NewInt(3), big.NewInt(math.MinInt64))
	if r2.bigVal().Cmp(want2) != 0 {
		t.Fatalf("New(3,MinInt64) = %v, want %v", r2, want2)
	}
}

func TestBasicArithmetic(t *testing.T) {
	a := New(1, 3)
	b := New(1, 6)
	if got := a.Add(b); got.String() != "1/2" {
		t.Errorf("1/3 + 1/6 = %v", got)
	}
	if got := a.Sub(b); got.String() != "1/6" {
		t.Errorf("1/3 - 1/6 = %v", got)
	}
	if got := a.Mul(b); got.String() != "1/18" {
		t.Errorf("1/3 * 1/6 = %v", got)
	}
	if got := a.Div(b); got.String() != "2" {
		t.Errorf("(1/3) / (1/6) = %v", got)
	}
	if got := a.Neg(); got.String() != "-1/3" {
		t.Errorf("-(1/3) = %v", got)
	}
	if got := a.Inv(); got.String() != "3" {
		t.Errorf("inv(1/3) = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv of zero did not panic")
		}
	}()
	Zero.Inv()
}

func TestCmpAndOrdering(t *testing.T) {
	vals := []Rat{New(-3, 2), New(-1, 1), Zero, New(1, 3), New(1, 2), One, Two}
	for i := range vals {
		for j := range vals {
			got := vals[i].Cmp(vals[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Cmp(%v, %v) = %d, want %d", vals[i], vals[j], got, want)
			}
			if vals[i].Less(vals[j]) != (want < 0) {
				t.Errorf("Less(%v, %v) inconsistent", vals[i], vals[j])
			}
			if vals[i].LessEq(vals[j]) != (want <= 0) {
				t.Errorf("LessEq(%v, %v) inconsistent", vals[i], vals[j])
			}
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	a, b := New(-1, 2), New(1, 3)
	if got := a.Min(b); !got.Equal(a) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); !got.Equal(b) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Abs(); !got.Equal(New(1, 2)) {
		t.Errorf("Abs = %v", got)
	}
	if got := b.Abs(); !got.Equal(b) {
		t.Errorf("Abs of positive changed: %v", got)
	}
}

func TestOverflowFallbackMatchesBig(t *testing.T) {
	huge := New(math.MaxInt64, 1)
	tiny := New(1, math.MaxInt64)
	// MaxInt64 + MaxInt64 overflows int64.
	sum := huge.Add(huge)
	wantSum := new(big.Rat).Add(huge.bigVal(), huge.bigVal())
	if sum.bigVal().Cmp(wantSum) != 0 {
		t.Fatalf("huge+huge = %v, want %v", sum, wantSum)
	}
	// MaxInt64 * MaxInt64 overflows int64.
	prod := huge.Mul(huge)
	wantProd := new(big.Rat).Mul(huge.bigVal(), huge.bigVal())
	if prod.bigVal().Cmp(wantProd) != 0 {
		t.Fatalf("huge*huge = %v, want %v", prod, wantProd)
	}
	// Mixing magnitudes round-trips exactly.
	x := huge.Mul(tiny)
	if !x.Equal(One) {
		t.Fatalf("MaxInt64 * 1/MaxInt64 = %v, want 1", x)
	}
	// Demotion: big values that cancel return to the fast path.
	y := prod.Div(huge)
	if y.isBig() {
		t.Fatalf("(%v)/(%v) should demote to int64 path", prod, huge)
	}
	if !y.Equal(huge) {
		t.Fatalf("huge*huge/huge = %v, want %v", y, huge)
	}
}

func TestCmpOverflowPath(t *testing.T) {
	a := New(math.MaxInt64, 3)
	b := New(math.MaxInt64-1, 3)
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Fatalf("Cmp near overflow wrong: a.Cmp(b)=%d", a.Cmp(b))
	}
}

func TestCmp128BitCrossProducts(t *testing.T) {
	// Cross products here exceed int64 but stay exact in the 128-bit fast
	// path; verify against the big.Rat oracle on adversarial neighbors.
	const M = math.MaxInt64
	cases := [][2]Rat{
		{New(M-1, M), New(M-2, M-1)},
		{New(M, M-1), New(M-1, M-2)},
		{New(-(M - 1), M), New(-(M - 2), M-1)},
		{New(M, 2), New(M-1, 2)},
		{New(1, M), New(1, M-1)},
		{New(-M, M-1), New(M, M-1)},
		{New(M, M), New(M-1, M-1)}, // both normalize to 1
	}
	for _, c := range cases {
		want := c[0].bigVal().Cmp(c[1].bigVal())
		if got := c[0].Cmp(c[1]); got != want {
			t.Errorf("Cmp(%v, %v) = %d, oracle %d", c[0], c[1], got, want)
		}
		if got := c[1].Cmp(c[0]); got != -want {
			t.Errorf("Cmp(%v, %v) = %d, oracle %d", c[1], c[0], got, -want)
		}
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64(1/2) = %v", got)
	}
	if got := New(-3, 4).Float64(); got != -0.75 {
		t.Errorf("Float64(-3/4) = %v", got)
	}
}

func TestMulIntDivInt(t *testing.T) {
	r := New(3, 4)
	if got := r.MulInt(8); !got.Equal(FromInt(6)) {
		t.Errorf("3/4 * 8 = %v", got)
	}
	if got := r.DivInt(3); !got.Equal(New(1, 4)) {
		t.Errorf("3/4 / 3 = %v", got)
	}
}

// ratOracle converts to big.Rat for oracle comparisons in quick tests.
func ratOracle(n, d int64) (*big.Rat, bool) {
	if d == 0 {
		return nil, false
	}
	return new(big.Rat).SetFrac(big.NewInt(n), big.NewInt(d)), true
}

func TestQuickAddMatchesBigOracle(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		oa, ok := ratOracle(an, ad)
		if !ok {
			return true
		}
		ob, ok := ratOracle(bn, bd)
		if !ok {
			return true
		}
		got := makeRat(an, ad).Add(makeRat(bn, bd))
		want := new(big.Rat).Add(oa, ob)
		return got.bigVal().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulMatchesBigOracle(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		oa, ok := ratOracle(an, ad)
		if !ok {
			return true
		}
		ob, ok := ratOracle(bn, bd)
		if !ok {
			return true
		}
		got := makeRat(an, ad).Mul(makeRat(bn, bd))
		want := new(big.Rat).Mul(oa, ob)
		return got.bigVal().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpMatchesBigOracle(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		oa, ok := ratOracle(an, ad)
		if !ok {
			return true
		}
		ob, ok := ratOracle(bn, bd)
		if !ok {
			return true
		}
		return makeRat(an, ad).Cmp(makeRat(bn, bd)) == oa.Cmp(ob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickFieldAxioms(t *testing.T) {
	// Small operands keep everything on the fast path; axioms must hold
	// regardless of representation.
	mk := func(n int8, d int8) Rat {
		if d == 0 {
			d = 1
		}
		return New(int64(n), int64(d))
	}
	comm := func(an, ad, bn, bd int8) bool {
		a, b := mk(an, ad), mk(bn, bd)
		return a.Add(b).Equal(b.Add(a)) && a.Mul(b).Equal(b.Mul(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	assoc := func(an, ad, bn, bd, cn, cd int8) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c))) &&
			a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}
	distr := func(an, ad, bn, bd, cn, cd int8) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distr, nil); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	inverse := func(an, ad int8) bool {
		a := mk(an, ad)
		if a.IsZero() {
			return a.Add(a.Neg()).IsZero()
		}
		return a.Add(a.Neg()).IsZero() && a.Mul(a.Inv()).Equal(One)
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Errorf("inverses: %v", err)
	}
}

func TestQuickNormalizationInvariant(t *testing.T) {
	f := func(n, d int64) bool {
		if d == 0 {
			return true
		}
		r := makeRat(n, d)
		if r.b != nil {
			return true // big path has its own invariant
		}
		num, den := r.parts()
		if den <= 0 {
			return false
		}
		return gcd64(abs64(num), den) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

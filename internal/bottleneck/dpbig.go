package bottleneck

import (
	"math/big"

	"repro/internal/numeric"
)

// Arbitrary-precision fast path for the DP passes.
//
// The int64 plan (dpint.go) dies as soon as λ or a weight carries a large
// denominator — exactly what the optimizer's breakpoint bisection produces
// (w1 values with 2^-48-scale dust). The stock fallback was the fully
// normalized rational DP, whose cost is dominated by gcd normalization on
// every cell update. This plan removes the gcds instead of the precision:
// with λ = P/Q and weights w_i = n_i/D (common denominator D, everything
// big.Int), every DP cost is an integer multiple of 1/(Q·D) —
//
//	select i: −P·n_i    charge i: Q·n_i    minimizer weight: n_i (unit 1/D)
//
// — so the passes run on raw big.Int adds and compares (a few machine words,
// no normalization), and only the final value is converted back to a
// canonical Rat. Exactness is untouched: the integers are the same rationals
// in a fixed-denominator representation.

// bigPlan is the prepared big.Int instance for one λ.
type bigPlan struct {
	sel       []*big.Int // −P·n_i
	charge    []*big.Int // Q·n_i
	chargeSel []*big.Int // charge_i + sel_{i+1}, the hot combined transition delta
	wInt      []*big.Int // n_i
	qd        *big.Int   // Q·D, the cost denominator
	d         *big.Int   // D, the weight denominator
}

// bigParts returns r's numerator and denominator as big.Ints without going
// through the big.Rat boxing of Num/Denom when r is on the int64 fast path.
func bigParts(r numeric.Rat) (*big.Int, *big.Int) {
	if n, d, ok := r.Int64Parts(); ok {
		return big.NewInt(n), big.NewInt(d)
	}
	return r.Num(), r.Denom()
}

// bigPlanFor prepares the big.Int representation; unlike intPlanFor it
// always succeeds. The returned plan's ints are read-only.
func (c dpComponent) bigPlanFor(lambda numeric.Rat) bigPlan {
	p, q := bigParts(lambda)
	nums := make([]*big.Int, len(c.ws))
	dens := make([]*big.Int, len(c.ws))
	d := big.NewInt(1)
	var tmp big.Int
	for i, w := range c.ws {
		nums[i], dens[i] = bigParts(w)
		tmp.GCD(nil, nil, d, dens[i])
		d.Mul(d, new(big.Int).Quo(dens[i], &tmp))
	}
	m := len(c.ws)
	pl := bigPlan{
		sel:       make([]*big.Int, m),
		charge:    make([]*big.Int, m),
		chargeSel: make([]*big.Int, m),
		wInt:      make([]*big.Int, m),
		qd:        new(big.Int).Mul(q, d),
		d:         d,
	}
	negP := new(big.Int).Neg(p)
	for i := range c.ws {
		n := new(big.Int).Quo(d, dens[i])
		n.Mul(n, nums[i])
		pl.wInt[i] = n
		pl.sel[i] = new(big.Int).Mul(negP, n)
		pl.charge[i] = new(big.Int).Mul(q, n)
	}
	for i := 0; i+1 < m; i++ {
		pl.chargeSel[i] = new(big.Int).Add(pl.charge[i], pl.sel[i+1])
	}
	return pl
}

// bigCell mirrors costW on big.Int. Cells are value-semantic: the pointed-to
// ints are never mutated after creation, so copying a cell is safe.
type bigCell struct {
	cost, wS *big.Int
	ok       bool
}

var bigZero = big.NewInt(0)

func bigCellZero() bigCell { return bigCell{cost: bigZero, wS: bigZero, ok: true} }

func (a bigCell) better(b bigCell) bool {
	if !b.ok {
		return a.ok
	}
	if !a.ok {
		return false
	}
	if c := a.cost.Cmp(b.cost); c != 0 {
		return c < 0
	}
	return a.wS.Cmp(b.wS) > 0
}

// add returns a + (deltaCost, deltaW); nil deltas mean zero. Cells with a
// nil wS (the membership sweeps track cost only) keep it nil.
func (a bigCell) add(deltaCost, deltaW *big.Int) bigCell {
	out := bigCell{cost: a.cost, wS: a.wS, ok: true}
	if deltaCost != nil {
		out.cost = new(big.Int).Add(a.cost, deltaCost)
	}
	if deltaW != nil && a.wS != nil {
		out.wS = new(big.Int).Add(a.wS, deltaW)
	}
	return out
}

// step applies one path/cycle DP transition: charge of vertex i when
// a ∨ cb, plus selection of vertex i+1 when cb.
func (pl bigPlan) step(cell bigCell, i, a, cb int) bigCell {
	var dc, dw *big.Int
	switch {
	case cb == 1 && a == 1:
		dc = pl.chargeSel[i]
	case cb == 1:
		// Selecting i+1 retro-charges i too: a==0 here, so s_{i+1}=1 is what
		// puts i into Γ(S).
		dc = pl.chargeSel[i]
	case a == 1:
		dc = pl.charge[i]
	}
	if cb == 1 {
		dw = pl.wInt[i+1]
	}
	return cell.add(dc, dw)
}

// toCostW converts a big cell back to canonical rationals (the only gcd of
// the whole pass).
func (pl bigPlan) toCostW(c bigCell) costW {
	if !c.ok {
		panic("bottleneck: infeasible big-int DP")
	}
	return costW{
		cost: numeric.FromBig(new(big.Rat).SetFrac(c.cost, pl.qd)),
		wS:   numeric.FromBig(new(big.Rat).SetFrac(c.wS, pl.d)),
		ok:   true,
	}
}

func (pl bigPlan) costRat(cost *big.Int) numeric.Rat {
	return numeric.FromBig(new(big.Rat).SetFrac(cost, pl.qd))
}

func (c dpComponent) pathValueBig(pl bigPlan) costW {
	m := len(c.order)
	var dp [2][2]bigCell
	dp[0][0] = bigCellZero()
	dp[0][1] = bigCell{cost: pl.sel[0], wS: pl.wInt[0], ok: true}
	for i := 0; i+1 < m; i++ {
		var ndp [2][2]bigCell
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !dp[a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					cand := pl.step(dp[a][b], i, a, cb)
					if cand.better(ndp[b][cb]) {
						ndp[b][cb] = cand
					}
				}
			}
		}
		dp = ndp
	}
	best := bigCell{}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if !dp[a][b].ok {
				continue
			}
			var dc *big.Int
			if a == 1 {
				dc = pl.charge[m-1]
			}
			cand := dp[a][b].add(dc, nil)
			if cand.better(best) {
				best = cand
			}
		}
	}
	return pl.toCostW(best)
}

func (c dpComponent) cycleValueBig(pl bigPlan) costW {
	m := len(c.order)
	best := bigCell{}
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			var dp [2][2]bigCell
			init := bigCellZero()
			if s0 == 1 {
				init = init.add(pl.sel[0], pl.wInt[0])
			}
			if s1 == 1 {
				init = init.add(pl.sel[1], pl.wInt[1])
			}
			dp[s0][s1] = init
			for i := 1; i+1 < m; i++ {
				var ndp [2][2]bigCell
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !dp[a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							cand := pl.step(dp[a][b], i, a, cb)
							if cand.better(ndp[b][cb]) {
								ndp[b][cb] = cand
							}
						}
					}
				}
				dp = ndp
			}
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !dp[a][b].ok {
						continue
					}
					cand := dp[a][b]
					if a == 1 || s0 == 1 {
						cand = cand.add(pl.charge[m-1], nil)
					}
					if s1 == 1 || b == 1 {
						cand = cand.add(pl.charge[0], nil)
					}
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
	}
	return pl.toCostW(best)
}

// pathMembershipBig mirrors pathMembershipInt on big.Int: one forward and
// one backward sweep plus per-position gluing.
func (c dpComponent) pathMembershipBig(pl bigPlan) (numeric.Rat, []bool) {
	m := len(c.order)
	fwd := make([][2][2]bigCell, m)
	fwd[0][0][0] = bigCell{cost: bigZero, ok: true}
	fwd[0][0][1] = bigCell{cost: pl.sel[0], ok: true}
	for i := 0; i+1 < m; i++ {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !fwd[i][a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					cand := pl.step(fwd[i][a][b], i, a, cb)
					if membBetter(cand, fwd[i+1][b][cb]) {
						fwd[i+1][b][cb] = cand
					}
				}
			}
		}
	}
	bwd := make([][2][2]bigCell, m)
	for b := 0; b < 2; b++ {
		bwd[m-1][b][0] = bigCell{cost: bigZero, ok: true}
	}
	for i := m - 2; i >= 0; i-- {
		for b := 0; b < 2; b++ {
			for cb := 0; cb < 2; cb++ {
				best := bigCell{}
				for d := 0; d < 2; d++ {
					if !bwd[i+1][cb][d].ok {
						continue
					}
					cand := bwd[i+1][cb][d]
					if b == 1 || d == 1 {
						cand = bigCell{cost: new(big.Int).Add(cand.cost, pl.charge[i+1]), ok: true}
					}
					if membBetter(cand, best) {
						best = cand
					}
				}
				if best.ok {
					if cb == 1 {
						best = bigCell{cost: new(big.Int).Add(best.cost, pl.sel[i+1]), ok: true}
					}
					bwd[i][b][cb] = best
				}
			}
		}
	}
	atPos := func(i, bFixed int) bigCell {
		best := bigCell{}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if bFixed >= 0 && b != bFixed {
					continue
				}
				if !fwd[i][a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					if !bwd[i][b][cb].ok {
						continue
					}
					cost := new(big.Int).Add(fwd[i][a][b].cost, bwd[i][b][cb].cost)
					if a == 1 || cb == 1 {
						cost.Add(cost, pl.charge[i])
					}
					cand := bigCell{cost: cost, ok: true}
					if membBetter(cand, best) {
						best = cand
					}
				}
			}
		}
		return best
	}
	globalMin := atPos(0, -1)
	members := make([]bool, m)
	for i := 0; i < m; i++ {
		with := atPos(i, 1)
		members[i] = with.ok && with.cost.Cmp(globalMin.cost) == 0
	}
	return pl.costRat(globalMin.cost), members
}

// cycleMembershipBig mirrors cycleMembershipInt on big.Int.
func (c dpComponent) cycleMembershipBig(pl bigPlan) (numeric.Rat, []bool) {
	m := len(c.order)
	globalMin := bigCell{}
	memberMin := make([]bigCell, m)

	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			fwd := make([][2][2]bigCell, m)
			init := bigCell{cost: bigZero, ok: true}
			if s0 == 1 {
				init = bigCell{cost: new(big.Int).Set(pl.sel[0]), ok: true}
			}
			if s1 == 1 {
				init = bigCell{cost: new(big.Int).Add(init.cost, pl.sel[1]), ok: true}
			}
			fwd[1][s0][s1] = init
			for i := 1; i+1 < m; i++ {
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !fwd[i][a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							cand := pl.step(fwd[i][a][b], i, a, cb)
							if membBetter(cand, fwd[i+1][b][cb]) {
								fwd[i+1][b][cb] = cand
							}
						}
					}
				}
			}
			bwd := make([][2][2]bigCell, m)
			for b := 0; b < 2; b++ {
				for cb := 0; cb < 2; cb++ {
					cost := new(big.Int)
					if cb == 1 {
						cost.Add(cost, pl.sel[m-1])
					}
					if b == 1 || s0 == 1 {
						cost.Add(cost, pl.charge[m-1])
					}
					if s1 == 1 || cb == 1 {
						cost.Add(cost, pl.charge[0])
					}
					bwd[m-2][b][cb] = bigCell{cost: cost, ok: true}
				}
			}
			for i := m - 3; i >= 1; i-- {
				for b := 0; b < 2; b++ {
					for cb := 0; cb < 2; cb++ {
						best := bigCell{}
						for d := 0; d < 2; d++ {
							if !bwd[i+1][cb][d].ok {
								continue
							}
							cand := bwd[i+1][cb][d]
							if b == 1 || d == 1 {
								cand = bigCell{cost: new(big.Int).Add(cand.cost, pl.charge[i+1]), ok: true}
							}
							if membBetter(cand, best) {
								best = cand
							}
						}
						if best.ok {
							if cb == 1 {
								best = bigCell{cost: new(big.Int).Add(best.cost, pl.sel[i+1]), ok: true}
							}
							bwd[i][b][cb] = best
						}
					}
				}
			}
			glue := func(i, bFixed, cFixed int) bigCell {
				best := bigCell{}
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if bFixed >= 0 && b != bFixed {
							continue
						}
						if !fwd[i][a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							if cFixed >= 0 && cb != cFixed {
								continue
							}
							if !bwd[i][b][cb].ok {
								continue
							}
							cost := new(big.Int).Add(fwd[i][a][b].cost, bwd[i][b][cb].cost)
							if a == 1 || cb == 1 {
								cost.Add(cost, pl.charge[i])
							}
							cand := bigCell{cost: cost, ok: true}
							if membBetter(cand, best) {
								best = cand
							}
						}
					}
				}
				return best
			}
			free := glue(1, -1, -1)
			if membBetter(free, globalMin) {
				globalMin = free
			}
			update := func(i int, v bigCell) {
				if membBetter(v, memberMin[i]) {
					memberMin[i] = v
				}
			}
			if s0 == 1 {
				update(0, free)
			}
			if s1 == 1 {
				update(1, free)
			}
			for i := 2; i <= m-2; i++ {
				update(i, glue(i, 1, -1))
			}
			update(m-1, glue(m-2, -1, 1))
		}
	}
	members := make([]bool, m)
	for i := range members {
		members[i] = memberMin[i].ok && memberMin[i].cost.Cmp(globalMin.cost) == 0
	}
	return pl.costRat(globalMin.cost), members
}

// membBetter compares membership cells by cost alone (wS may be nil there).
func membBetter(a, b bigCell) bool {
	if !b.ok {
		return a.ok
	}
	return a.ok && a.cost.Cmp(b.cost) < 0
}

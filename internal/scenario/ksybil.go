package scenario

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// KSybilOptions tunes KSybil. Zero values select defaults.
type KSybilOptions struct {
	// K is the number of identities the agent splits into (required, ≥ 2).
	// k = 2 is exactly the paper's two-identity split; the enumeration then
	// reproduces sybil.RingSweep index for index, point for point.
	K int
	// Grid is the composition resolution: identity j receives
	// w_v·c_j/Grid with Σ c_j = Grid (default 64).
	Grid int
	// Mechanism selects the allocation backend (nil = the registry default,
	// BD). Mechanisms with a native ring sweep engine (RingSweeper) are
	// evaluated through the shared core.Instance incremental path; others
	// pay one Allocate per point on the explicit two-leaf split path.
	Mechanism mechanism.Mechanism
	// Instance, when non-nil, supplies a pre-built BD instance for g/v so a
	// caller's solver cache (memoized pair evaluations, warm Dinkelbach
	// state) is reused. Only consulted on the native BD path.
	Instance *core.Instance
	// Start is the first point index to evaluate, in [0, Total]. A resumed
	// scan passes the NextIndex of an earlier partial result.
	Start int
	// Progress, when set, is invoked after each point completes with the
	// point's index. Points are evaluated sequentially, so indices arrive
	// strictly ascending — the property the durable job checkpoints rely on.
	Progress func(i int)
	// OnPoint, when set, streams each completed point (index and payload)
	// before Progress fires. Returning an error aborts the scan as a real
	// failure — the durable job runner checkpoints through this hook, and a
	// WAL append error must fail the attempt, not truncate it.
	OnPoint func(i int, p KSybilPoint) error
}

// KSybilPoint is one exactly evaluated k-way split.
type KSybilPoint struct {
	// Comp is the grid composition (c_1, ..., c_k), Σ c_j = Grid; identity j
	// holds w_v·c_j/Grid.
	Comp []int
	// U is the attacker's combined utility Σ_j U_{v^j} at this split.
	U numeric.Rat
}

// KSybilResult is the outcome of KSybil, with the sweep contract of
// sybil.SweepResult: on cancellation Points holds the contiguous completed
// prefix starting at Start, Partial is set, and rerunning with
// Start = NextIndex and concatenating Points reconstructs the full scan
// bit for bit.
type KSybilResult struct {
	Points []KSybilPoint
	// BestIndex is the index into Points of the best split — the earliest
	// maximum. BestComp/BestU mirror that point. Zero values when Points is
	// empty.
	BestIndex int
	BestComp  []int
	BestU     numeric.Rat
	// Honest is U_v(G; w) under the selected mechanism, and
	// Ratio = BestU / Honest (1 when both are zero). For a partial result
	// the ratio covers only the returned points.
	Honest, Ratio numeric.Rat
	// Partial/Start/NextIndex delimit the covered index range
	// [Start, NextIndex) exactly as in sybil.SweepResult.
	Partial   bool
	Start     int
	NextIndex int
	// Total is the number of points of the full (symmetry-reduced)
	// enumeration — the denominator for progress reporting.
	Total int
}

// KSybilTotal returns the number of points a KSybil scan over grid/k
// evaluates (the symmetry-reduced composition count), capped at limit as in
// Odometer.Count. It is the submission-time validator for the durable job.
func KSybilTotal(grid, k, limit int) (int, error) {
	o, err := NewOdometer(grid, k, true)
	if err != nil {
		return 0, err
	}
	return o.Count(limit), nil
}

// KSybil scans the k-identity Sybil attack of agent v on ring g: v splits
// into identities v¹..v^k, v¹ keeping the edge to v's successor on the
// ring, v^k the edge to the predecessor, and v²..v^{k-1} isolated. Weights
// range over the composition grid Σ c_j = Grid in odometer order (see
// NewOdometer; interior permutations are reduced for k ≥ 3, since isolated
// identities are interchangeable under any anonymous mechanism).
//
// Isolated identities earn nothing — they have no neighbors to trade with —
// so each point is evaluated on the two-leaf split path carrying only w¹
// and w^k, i.e. the paper's P_v(w¹, w^k) with total reported weight
// w¹ + w^k ≤ w_v. For k = 2 this is exactly the two-identity sweep: the
// result matches sybil.RingSweep (BD) and mechanism.RingSweep (generic)
// bit for bit, point for point.
func KSybil(ctx context.Context, g *graph.Graph, v int, opts KSybilOptions) (*KSybilResult, error) {
	if opts.K < 2 {
		return nil, fmt.Errorf("scenario: k-identity scan needs k ≥ 2, got %d", opts.K)
	}
	if opts.Grid <= 0 {
		opts.Grid = 64
	}
	if !g.IsRing() {
		return nil, fmt.Errorf("scenario: graph is not a ring")
	}
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("scenario: vertex %d outside [0, %d)", v, g.N())
	}
	od, err := NewOdometer(opts.Grid, opts.K, true)
	if err != nil {
		return nil, err
	}
	total := od.Count(0)
	if opts.Start < 0 || opts.Start > total {
		return nil, fmt.Errorf("scenario: start index %d outside [0, %d]", opts.Start, total)
	}
	m := opts.Mechanism
	if m == nil {
		var err error
		if m, err = mechanism.Get(""); err != nil {
			return nil, err
		}
	}
	ctx, span := obs.Start(ctx, "scenario.ksybil")
	defer span.End()
	if span != nil {
		span.SetAttr("mechanism", m.Name())
		span.SetAttr("k", strconv.Itoa(opts.K))
		span.SetAttr("grid", strconv.Itoa(opts.Grid))
		span.SetAttr("points", strconv.Itoa(total))
	}

	W := g.Weight(v)
	eval, honest, err := ksybilKernel(ctx, m, g, v, opts.K, opts.Instance)
	if err != nil {
		return nil, err
	}
	res := &KSybilResult{Honest: honest, Start: opts.Start, NextIndex: opts.Start, Total: total}
	for i := 0; ; i++ {
		comp, ok := od.Next()
		if !ok {
			break
		}
		if i < opts.Start {
			continue
		}
		if err := pointErr(ctx); err != nil {
			if isCancel(err) {
				res.Partial = true
				break
			}
			return nil, fmt.Errorf("scenario: ksybil point %d: %w", i, err)
		}
		w1 := W.MulInt(int64(comp[0])).DivInt(int64(opts.Grid))
		wk := W.MulInt(int64(comp[opts.K-1])).DivInt(int64(opts.Grid))
		u, err := eval(ctx, w1, wk)
		if err != nil {
			if isCancel(err) {
				res.Partial = true
				break
			}
			return nil, fmt.Errorf("scenario: ksybil point %d: %w", i, err)
		}
		res.Points = append(res.Points, KSybilPoint{Comp: append([]int(nil), comp...), U: u})
		res.NextIndex = i + 1
		if opts.OnPoint != nil {
			if err := opts.OnPoint(i, res.Points[len(res.Points)-1]); err != nil {
				return nil, fmt.Errorf("scenario: ksybil point %d: %w", i, err)
			}
		}
		if opts.Progress != nil {
			opts.Progress(i)
		}
	}
	if span != nil && res.Partial {
		span.AddEvent("scan_partial", "next_index", strconv.Itoa(res.NextIndex))
	}
	if len(res.Points) > 0 {
		res.BestComp, res.BestU = res.Points[0].Comp, res.Points[0].U
		for i, p := range res.Points[1:] {
			if res.BestU.Less(p.U) {
				res.BestComp, res.BestU, res.BestIndex = p.Comp, p.U, i+1
			}
		}
	}
	if res.Ratio, err = ratioOf(res.BestU, res.Honest); err != nil {
		return nil, err
	}
	return res, nil
}

// ksybilKernel binds the per-point evaluator and honest utility for the
// chosen mechanism: the incremental core.Instance pair engine for BD (any
// RingSweeper), one Allocate over the explicit two-leaf path for the rest.
func ksybilKernel(ctx context.Context, m mechanism.Mechanism, g *graph.Graph, v, k int, in *core.Instance) (func(context.Context, numeric.Rat, numeric.Rat) (numeric.Rat, error), numeric.Rat, error) {
	if _, native := m.(mechanism.RingSweeper); native {
		if in == nil {
			var err error
			if in, err = core.NewInstanceCtx(ctx, g, v); err != nil {
				return nil, numeric.Rat{}, err
			}
		}
		eval := func(ctx context.Context, w1, wk numeric.Rat) (numeric.Rat, error) {
			ev, err := in.EvalWithheldCtx(ctx, w1, wk)
			if err != nil {
				return numeric.Rat{}, err
			}
			return ev.U, nil
		}
		return eval, in.HonestU, nil
	}
	honestAlloc, err := m.Allocate(ctx, g)
	if err != nil {
		return nil, numeric.Rat{}, fmt.Errorf("scenario: honest allocation: %w", err)
	}
	if k == 2 {
		// Delegate to the generic sweep's exact kernel: w1 + w2 = w_v, and
		// iterative mechanisms (pr) are sensitive to the split graph's vertex
		// numbering, so bit-identity with mechanism.RingSweep requires the
		// identical graph.TwoSplitOnRing construction, not merely an
		// isomorphic path.
		eval := func(ctx context.Context, w1, _ numeric.Rat) (numeric.Rat, error) {
			return mechanism.SplitUtility(ctx, m, g, v, w1)
		}
		return eval, honestAlloc.Utility(v), nil
	}
	ring, err := g.RingOrder(v)
	if err != nil {
		return nil, numeric.Rat{}, err
	}
	// The split path runs v¹, then the rest of the ring in ring order, then
	// v^k — the same vertex sequence as graph.TwoSplitOnRing, so the k = 2
	// case sees an isomorphic (identically ordered) graph to the generic
	// sweep's kernel.
	interior := make([]numeric.Rat, len(ring)-1)
	for i, u := range ring[1:] {
		interior[i] = g.Weight(u)
	}
	eval := func(ctx context.Context, w1, wk numeric.Rat) (numeric.Rat, error) {
		ws := make([]numeric.Rat, 0, len(interior)+2)
		ws = append(ws, w1)
		ws = append(ws, interior...)
		ws = append(ws, wk)
		p := graph.Path(ws)
		a, err := m.Allocate(ctx, p)
		if err != nil {
			return numeric.Rat{}, err
		}
		return a.Utility(0).Add(a.Utility(p.N() - 1)), nil
	}
	return eval, honestAlloc.Utility(v), nil
}

// pointErr is the shared per-point gate: context liveness first, then the
// scenario fault-injection site.
func pointErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fault.Hit(ctx, fault.SiteScenarioPoint)
}

// isCancel classifies the errors that truncate a scan to its completed
// prefix instead of failing it (the sweep contract: context errors are
// checkpoints, everything else — including injected faults — is a failure).
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

package repro

// Scale stress tests: larger instances than the experiment sweeps touch,
// gated behind -short so the quick suite stays fast.

import (
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/p2p"
)

func TestStressLargeRingDecomposition(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(201))
	for _, n := range []int{256, 512} {
		g := graph.RandomRing(rng, n, graph.DistUniform)
		d, err := bottleneck.DecomposeWith(g, bottleneck.EnginePathDP)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := d.Validate(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := numeric.Sum(d.Utilities(g)); !got.Equal(g.TotalWeight()) {
			t.Fatalf("n=%d: ΣU = %v ≠ Σw = %v", n, got, g.TotalWeight())
		}
	}
}

func TestStressLargeRingEnginesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.RandomRing(rand.New(rand.NewSource(202)), 96, graph.DistPowers)
	dDP, err := bottleneck.DecomposeWith(g, bottleneck.EnginePathDP)
	if err != nil {
		t.Fatal(err)
	}
	dFlow, err := bottleneck.DecomposeWith(g, bottleneck.EngineFlow)
	if err != nil {
		t.Fatal(err)
	}
	if dDP.StructureSignature() != dFlow.StructureSignature() {
		t.Fatal("engines disagree at n=96")
	}
	for i := range dDP.Pairs {
		if !dDP.Pairs[i].Alpha.Equal(dFlow.Pairs[i].Alpha) {
			t.Fatalf("α mismatch at pair %d", i)
		}
	}
}

func TestStressTheorem8OnLargeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A 64-vertex member of the tight family: ratio must exceed 1.9 yet
	// stay ≤ 2 with exact comparisons.
	g, v, err := core.LowerBoundFamily(29, numeric.FromInt(100000)) // n = 63
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := core.RingRatio(g, v, core.OptimizeOptions{Grid: 48})
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Float64() < 1.9 {
		t.Fatalf("ratio %v below the family's expected ≈ %v", ratio, core.LowerBoundLimitRatio(29))
	}
	if numeric.Two.Less(ratio) {
		t.Fatalf("Theorem 8 violated at scale: %v", ratio)
	}
}

func TestStressSwarmThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.RandomRing(rand.New(rand.NewSource(203)), 512, graph.DistUniform)
	res, err := p2p.Run(g, p2p.Config{Rounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(2*g.M()*200) {
		t.Fatalf("message accounting wrong: %d", res.Messages)
	}
}

package server_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// TestNoGoroutineLeakOnCloseUnderJobLoad races srv.Close against a burst of
// concurrent job submissions and in-flight polls — the cluster router does
// exactly this to a backend it is failing away from — and requires the
// goroutine count to return to (about) the pre-boot baseline. A scheduler
// worker, sweep pool, or jobs-WAL goroutine that outlives Close would
// accumulate across the router's kill/recover cycles.
func TestNoGoroutineLeakOnCloseUnderJobLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		srv, err := server.New(server.Config{
			DataDir: t.TempDir(),
			NodeID:  "leaktest",
			Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		c := client.New(ts.URL, client.WithMaxAttempts(2),
			client.WithBackoff(time.Millisecond, 4*time.Millisecond))
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)

		// Submissions, polls, and the server's shutdown all race: errors are
		// expected once Close wins (refused connections, 503s) — only hangs
		// and leaks are bugs.
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ring := client.Graph{Ring: []string{"1", "3/2", "2", fmt.Sprintf("%d", 3+i)}}
				sub, err := c.SubmitSweep(ctx, &client.JobSubmitRequest{
					Graph: ring, V: i % 4, Grid: 256,
				})
				if err != nil {
					return
				}
				c.GetJob(ctx, sub.Job.ID)
			}(i)
		}
		// Let some submissions land and some jobs start running, then tear
		// the server down underneath the rest.
		time.Sleep(time.Duration(5+10*round) * time.Millisecond)
		ts.CloseClientConnections()
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		wg.Wait()
		cancel()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Package scenario is the strategic-manipulation engine: deterministic,
// checkpointable grid searches over attack spaces that go beyond the
// paper's single-agent two-identity ring split. Three scenario kinds exist,
// each runnable against any registered mechanism (internal/mechanism):
//
//   - k-identity Sybil (KSybil): one ring agent splits into k identities
//     over a (k−1)-dimensional weight-composition grid, generalizing
//     sybil.RingSweep — whose output the k = 2 special case reproduces bit
//     for bit;
//   - coalition manipulation (Coalition): m colluding agents jointly
//     misreport their endowments over an m-dimensional report grid, with
//     joint-utility objective and per-member gain attribution (the engine
//     form of the E16 experiment seed);
//   - topology scans (Topology): empirical incentive-ratio scans over
//     generated graph families (rings, trees, barbells, small-world,
//     Erdős–Rényi), recording the worst instance and deviation per family.
//
// Every engine shares the sweep contract of sybil.SweepInstanceCtx: a
// pinned enumeration order, Start/Progress checkpoint hooks, partial
// results on cancellation (never on real errors), exact rational
// arithmetic throughout, and the earliest-maximum best rule — which is what
// makes the durable job kinds built on top (internal/server) recover bit
// identically from a WAL checkpoint.
package scenario

import (
	"fmt"

	"repro/internal/numeric"
)

// Odometer enumerates the compositions of Total into K non-negative parts
// (the lattice Σ c_j = Total) in lexicographic order of the digit vector
// (c_1 most significant), optionally reduced by the isolated-identity
// symmetry (see Reduced). The enumeration is streaming — Next mutates the
// current digit vector in place — so a (k−1)-dimensional grid is walked
// without materializing it, and an index is a stable address: point i means
// the same composition in every process that ever resumes a scan.
type Odometer struct {
	total, k int
	reduced  bool
	c        []int
	started  bool
}

// NewOdometer returns an odometer over compositions of total ≥ 0 into
// k ≥ 1 parts. With reduced set and k ≥ 3, compositions whose interior
// digits (c_2..c_{k-1}) are not in non-increasing order are skipped: the
// interior identities of a k-way ring split have no neighbors, so
// permuting their weights yields the same attack, and only the canonical
// (non-increasing) representative of each interior multiset is evaluated.
// Reduction never applies to k ≤ 2 — the k = 2 enumeration stays exactly
// the sweep's index order (c_1 = 0, 1, ..., total).
func NewOdometer(total, k int, reduced bool) (*Odometer, error) {
	if total < 0 || k < 1 {
		return nil, fmt.Errorf("scenario: odometer needs total ≥ 0 and k ≥ 1, got (%d, %d)", total, k)
	}
	return &Odometer{total: total, k: k, reduced: reduced && k >= 3}, nil
}

// Reduced reports whether the interior-symmetry reduction is active.
func (o *Odometer) Reduced() bool { return o.reduced }

// Next advances to the next composition, returning it (a slice owned by the
// odometer — copy before retaining) and false when the enumeration is
// exhausted. The first call returns the first composition (0, ..., 0, total).
func (o *Odometer) Next() ([]int, bool) {
	if !o.started {
		o.started = true
		o.c = make([]int, o.k)
		o.c[o.k-1] = o.total
		if o.admissible() {
			return o.c, true
		}
	}
	for o.advance() {
		if o.admissible() {
			return o.c, true
		}
	}
	return nil, false
}

// advance moves to the next candidate composition. From an admissible state
// it takes the raw lexicographic successor; from an inadmissible one it
// jumps past the whole condemned block at once: a violation c_{i-1} < c_i
// at the leftmost interior index i rules out every composition sharing the
// digits up to position i (all lexicographic successors inside that block
// keep c_i'' ≥ c_i > c_{i-1}), so the successor increments position i−1
// directly. Without the jump, reduced enumerations crawl one raw
// composition at a time through blocks that hold a single admissible point
// — Count(limit) on a wide grid (say total 512 into 8 parts) would walk
// ~10^11 raw states before its second admissible one.
func (o *Odometer) advance() bool {
	if o.k == 1 {
		return false
	}
	j := o.k - 2
	if i := o.violation(); i >= 0 {
		j = i - 1
	}
	// tail holds everything at positions > j once positions ≤ j are fixed;
	// find the rightmost position ≤ j that can absorb one unit from it.
	for ; j >= 0; j-- {
		tail := 0
		for i := j + 1; i < o.k; i++ {
			tail += o.c[i]
		}
		if tail > 0 {
			o.c[j]++
			for i := j + 1; i < o.k-1; i++ {
				o.c[i] = 0
			}
			o.c[o.k-1] = tail - 1
			return true
		}
	}
	return false
}

// violation returns the leftmost interior index i with c_{i-1} < c_i, or
// −1 when the current composition is admissible.
func (o *Odometer) violation() int {
	if !o.reduced {
		return -1
	}
	for i := 2; i < o.k-1; i++ {
		if o.c[i-1] < o.c[i] {
			return i
		}
	}
	return -1
}

// admissible applies the interior reduction to the current composition.
func (o *Odometer) admissible() bool { return o.violation() < 0 }

// Count walks the enumeration and returns the number of admissible
// compositions, capped at limit (returning limit+1 when the cap is hit) so
// submission validation can reject explosive grids without enumerating
// them in full.
func (o *Odometer) Count(limit int) int {
	n := 0
	probe := &Odometer{total: o.total, k: o.k, reduced: o.reduced}
	for {
		if _, ok := probe.Next(); !ok {
			return n
		}
		n++
		if limit > 0 && n > limit {
			return n
		}
	}
}

// At returns a copy of the composition at index i (0-based in enumeration
// order), or an error when i is out of range. It walks from the start —
// O(i) — which is fine at the point counts the job layer admits.
func (o *Odometer) At(i int) ([]int, error) {
	if i < 0 {
		return nil, fmt.Errorf("scenario: odometer index %d negative", i)
	}
	probe := &Odometer{total: o.total, k: o.k, reduced: o.reduced}
	for n := 0; ; n++ {
		c, ok := probe.Next()
		if !ok {
			return nil, fmt.Errorf("scenario: odometer index %d out of range", i)
		}
		if n == i {
			return append([]int(nil), c...), nil
		}
	}
}

// ratioOf applies the shared ratio convention of every engine: best/honest
// when honest > 0, exactly 1 when both are zero, and an error — never a
// silent ∞ — when a positive attack utility arises from zero honest
// utility.
func ratioOf(best, honest numeric.Rat) (numeric.Rat, error) {
	switch {
	case honest.Sign() > 0:
		return best.Div(honest), nil
	case best.Sign() > 0:
		return numeric.Rat{}, fmt.Errorf("scenario: positive attack utility %v from zero honest utility", best)
	default:
		return numeric.One, nil
	}
}

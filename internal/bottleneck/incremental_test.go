package bottleneck

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// splitPath builds the path [w1, interior..., w2].
func splitPath(interior []numeric.Rat, w1, w2 numeric.Rat) *graph.Graph {
	ws := make([]numeric.Rat, len(interior)+2)
	ws[0] = w1
	copy(ws[1:], interior)
	ws[len(ws)-1] = w2
	return graph.Path(ws)
}

// requireDecEqual asserts two decompositions agree Rat-exactly: same pairs
// (sets and α), same signature, same per-vertex utilities on g.
func requireDecEqual(t *testing.T, g *graph.Graph, got, want *Decomposition, ctx string) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: pair count %d != %d\n got: %v\nwant: %v", ctx, len(got.Pairs), len(want.Pairs), got, want)
	}
	for i := range got.Pairs {
		gp, wp := got.Pairs[i], want.Pairs[i]
		if !intsEqual(gp.B, wp.B) || !intsEqual(gp.C, wp.C) || !gp.Alpha.Equal(wp.Alpha) {
			t.Fatalf("%s: pair %d differs\n got: %v\nwant: %v", ctx, i, gp, wp)
		}
	}
	if gs, ws := got.StructureSignature(), want.StructureSignature(); gs != ws {
		t.Fatalf("%s: signature %q != %q", ctx, gs, ws)
	}
	gu, wu := got.Utilities(g), want.Utilities(g)
	for v := range gu {
		if !gu[v].Equal(wu[v]) {
			t.Fatalf("%s: utility of %d: %v != %v", ctx, v, gu[v], wu[v])
		}
	}
}

// TestSplitSolverParityRandom is the tentpole correctness gate: across
// hundreds of random interiors and w1 samples — including bisection-style
// dust denominators, zero endpoints, and heavy equal-weight ties — the
// incremental engine must be Rat-identical to a fresh stock decomposition.
// Zero tolerance; every comparison is exact rational equality.
func TestSplitSolverParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260804))
	evals := 0
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(14) + 1 // interior length 1..14
		interior := make([]numeric.Rat, k)
		tie := rng.Intn(3) == 0 // equal-weight tie regime
		for i := range interior {
			if tie {
				interior[i] = numeric.New(int64(rng.Intn(2)+1), 1)
			} else {
				interior[i] = numeric.New(int64(rng.Intn(40)+1), int64(rng.Intn(6)+1))
			}
		}
		s := NewSplitSolver(interior)
		wv := numeric.New(int64(rng.Intn(50)+2), 1)
		for sample := 0; sample < 8; sample++ {
			var w1 numeric.Rat
			switch sample {
			case 0:
				w1 = numeric.Zero // zero endpoint: stock-fallback path
			case 1:
				w1 = wv // other endpoint zero
			case 2:
				// Bisection-style dust denominator, scaled into (0, wv).
				w1 = numeric.New(int64(rng.Intn(1<<30)+1), 1).
					Div(numeric.New(1<<31, 1)).Mul(wv)
			default:
				w1 = wv.Mul(numeric.New(int64(rng.Intn(63)+1), 64))
			}
			w2 := wv.Sub(w1)
			p := splitPath(interior, w1, w2)
			got, err := s.Eval(p, w1, w2)
			if err != nil {
				t.Fatalf("trial %d sample %d (w1=%v): %v", trial, sample, w1, err)
			}
			want, err := DecomposeWith(p, EnginePathDP)
			if err != nil {
				t.Fatalf("trial %d sample %d: stock: %v", trial, sample, err)
			}
			requireDecEqual(t, p, got, want,
				fmt.Sprintf("trial %d sample %d (interior=%v w1=%v)", trial, sample, interior, w1))
			evals++
		}
		// Re-evaluate one earlier w1 to hit the fully warm path.
		w1 := wv.Mul(numeric.New(1, 3))
		w2 := wv.Sub(w1)
		p := splitPath(interior, w1, w2)
		got, err := s.Eval(p, w1, w2)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := DecomposeWith(p, EnginePathDP)
		requireDecEqual(t, p, got, want, fmt.Sprintf("trial %d rewarm", trial))
		evals++
	}
	if evals < 200 {
		t.Fatalf("only %d parity evaluations, want ≥ 200", evals)
	}
}

// TestSplitSolverParityDenseSweep mirrors the optimizer's access pattern: a
// fine ordered sweep followed by bisection-style refinements around a
// breakpoint, all on one solver, so warm hints and tail caches are heavily
// reused before being checked against the oracle.
func TestSplitSolverParityDenseSweep(t *testing.T) {
	interior := numeric.Ints(3, 1, 4, 1, 5, 9, 2, 6, 5, 3)
	s := NewSplitSolver(interior)
	wv := numeric.FromInt(12)
	check := func(w1 numeric.Rat, ctx string) {
		t.Helper()
		w2 := wv.Sub(w1)
		p := splitPath(interior, w1, w2)
		got, err := s.Eval(p, w1, w2)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		want, err := DecomposeWith(p, EnginePathDP)
		if err != nil {
			t.Fatalf("%s: stock: %v", ctx, err)
		}
		requireDecEqual(t, p, got, want, ctx)
	}
	for i := 0; i <= 48; i++ {
		check(wv.MulInt(int64(i)).DivInt(48), fmt.Sprintf("grid %d/48", i))
	}
	// Bisection refinement: exact midpoints down to tiny denominators.
	lo, hi := wv.MulInt(17).DivInt(48), wv.MulInt(18).DivInt(48)
	for i := 0; i < 40; i++ {
		mid := lo.Add(hi).DivInt(2)
		check(mid, fmt.Sprintf("bisect %d", i))
		if i%2 == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	st := s.Stats()
	if st.TailHits == 0 || st.TransferHits == 0 {
		t.Errorf("sweep did not exercise the caches: %+v", st)
	}
	if st.Stage1Warm == 0 {
		t.Errorf("sweep never warm-started: %+v", st)
	}
}

// TestSplitSolverTieHeavy pins the wS tie-break plumbing: constant-weight
// interiors make many subsets share the minimum cost, so any divergence
// between the transfer combine's tie handling and the stock DP shows up.
func TestSplitSolverTieHeavy(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		interior := make([]numeric.Rat, k)
		for i := range interior {
			interior[i] = numeric.One
		}
		s := NewSplitSolver(interior)
		for num := int64(1); num <= 7; num++ {
			w1 := numeric.New(num, 4)
			w2 := numeric.FromInt(2).Sub(w1)
			p := splitPath(interior, w1, w2)
			got, err := s.Eval(p, w1, w2)
			if err != nil {
				t.Fatalf("k=%d w1=%v: %v", k, w1, err)
			}
			want, _ := DecomposeWith(p, EnginePathDP)
			requireDecEqual(t, p, got, want, fmt.Sprintf("k=%d w1=%v", k, w1))
		}
	}
}

// TestSplitSolverZeroInteriorFallsBack checks that interiors containing
// zero-weight vertices route every evaluation through the stock engine
// (whose zero-attachment convention the incremental path does not model).
func TestSplitSolverZeroInteriorFallsBack(t *testing.T) {
	interior := []numeric.Rat{numeric.FromInt(2), numeric.Zero, numeric.FromInt(3)}
	s := NewSplitSolver(interior)
	w1, w2 := numeric.FromInt(1), numeric.FromInt(4)
	p := splitPath(interior, w1, w2)
	got, err := s.Eval(p, w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := DecomposeWith(p, EnginePathDP)
	requireDecEqual(t, p, got, want, "zero interior")
	if st := s.Stats(); st.Fallbacks != st.Evals || st.Evals == 0 {
		t.Errorf("expected all evals to fall back: %+v", st)
	}
}

// TestSplitSolverBigRatFallsOffIntPath forces non-int64 magnitudes so the
// Rat transfer builder (not just the integer fast path) is parity-checked.
func TestSplitSolverBigRatFallsOffIntPath(t *testing.T) {
	huge := numeric.New(1, 1)
	for i := 0; i < 5; i++ {
		huge = huge.Mul(numeric.New(1<<62, 1<<62-1)) // denominator outgrows int64
	}
	interior := []numeric.Rat{
		numeric.FromInt(2).Mul(huge),
		numeric.FromInt(1).Mul(huge),
		numeric.FromInt(3).Mul(huge),
		numeric.FromInt(1).Mul(huge),
	}
	s := NewSplitSolver(interior)
	wv := numeric.FromInt(4).Mul(huge)
	for num := int64(1); num < 4; num++ {
		w1 := wv.MulInt(num).DivInt(4)
		w2 := wv.Sub(w1)
		p := splitPath(interior, w1, w2)
		got, err := s.Eval(p, w1, w2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DecomposeWith(p, EnginePathDP)
		if err != nil {
			t.Fatal(err)
		}
		requireDecEqual(t, p, got, want, fmt.Sprintf("huge w1=%v", w1))
	}
}

// TestSplitSolverConcurrent hammers one solver from many goroutines over
// overlapping w1 values — the optimizer's grid phase shape — so the race
// detector can see the cache locking, and every result is still exact.
func TestSplitSolverConcurrent(t *testing.T) {
	interior := numeric.Ints(5, 2, 7, 1, 8, 2, 8, 1, 8)
	s := NewSplitSolver(interior)
	wv := numeric.FromInt(10)
	const goroutines = 8
	const per = 25
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + gi)))
			for j := 0; j < per; j++ {
				w1 := wv.MulInt(int64(rng.Intn(31) + 1)).DivInt(32)
				w2 := wv.Sub(w1)
				p := splitPath(interior, w1, w2)
				got, err := s.Eval(p, w1, w2)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", gi, err)
					return
				}
				want, err := DecomposeWith(p, EnginePathDP)
				if err != nil {
					errs <- err
					return
				}
				for i := range got.Pairs {
					if !intsEqual(got.Pairs[i].B, want.Pairs[i].B) ||
						!intsEqual(got.Pairs[i].C, want.Pairs[i].C) ||
						!got.Pairs[i].Alpha.Equal(want.Pairs[i].Alpha) {
						errs <- fmt.Errorf("goroutine %d w1=%v: pair %d differs", gi, w1, i)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSplitSolverMinimalInterior exercises the single-interior-vertex path
// (n = 3), where the transfer DP runs zero transitions and most boundary
// cells stay infeasible.
func TestSplitSolverMinimalInterior(t *testing.T) {
	for mid := int64(1); mid <= 6; mid++ {
		interior := []numeric.Rat{numeric.FromInt(mid)}
		s := NewSplitSolver(interior)
		for num := int64(1); num <= 5; num++ {
			w1 := numeric.New(num, 2)
			w2 := numeric.FromInt(3).Sub(w1)
			p := splitPath(interior, w1, w2)
			got, err := s.Eval(p, w1, w2)
			if err != nil {
				t.Fatalf("mid=%d w1=%v: %v", mid, w1, err)
			}
			want, _ := DecomposeWith(p, EnginePathDP)
			requireDecEqual(t, p, got, want, fmt.Sprintf("mid=%d w1=%v", mid, w1))
		}
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// TestGoldenWireFormat pins the JSON wire format of every endpoint on the
// paper's Fig. 1-style fixed instances. Any change to field names, ordering,
// rational rendering ("p/q" strings) or status handling shows up as a diff
// against the checked-in files — the wire format is part of the contract.
func TestGoldenWireFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	ring := WireGraph{Ring: []string{"1", "2", "3", "4", "5"}}
	cases := []struct {
		name string
		path string
		body any
	}{
		{"decompose_ring", "/v1/decompose", DecomposeRequest{Graph: ring}},
		{"decompose_brute", "/v1/decompose", DecomposeRequest{Graph: ring, Engine: "brute"}},
		{"decompose_general", "/v1/decompose", DecomposeRequest{Graph: WireGraph{
			N:       4,
			Weights: []string{"1/2", "3", "3", "1/2"},
			Edges:   [][2]int{{0, 1}, {1, 2}, {2, 3}},
		}}},
		{"allocate_ring", "/v1/allocate", AllocateRequest{Graph: ring}},
		{"utilities_path", "/v1/utilities", UtilitiesRequest{Graph: WireGraph{Path: []string{"2", "1", "2"}}}},
		{"ratio_ring", "/v1/ratio", RatioRequest{Graph: ring, V: 2, Grid: 8}},
		{"sweep_ring", "/v1/sweep", SweepRequest{Graph: ring, V: 2, Grid: 4}},
		{"scenario_ksybil", "/v1/scenario", ScenarioRequest{Kind: "ksybil", Graph: ring, V: 2, K: 3, Grid: 4}},
		{"scenario_coalition", "/v1/scenario", ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{0, 2}, Grid: 2}},
		{"scenario_topology", "/v1/scenario", ScenarioRequest{Kind: "topology", Families: []string{"ring"}, Count: 1, N: 5, Grid: 3, Seed: 1}},
		{"error_bad_engine", "/v1/decompose", DecomposeRequest{Graph: ring, Engine: "quantum"}},
		{"error_scenario_limit", "/v1/scenario", ScenarioRequest{Kind: "ksybil", Graph: ring, V: 0, K: 9}},
		{"error_unknown_topology", "/v1/scenario", ScenarioRequest{Kind: "topology", Families: []string{"torus"}}},
		{"error_not_ring", "/v1/ratio", RatioRequest{Graph: WireGraph{Path: []string{"1", "2", "3"}}, V: 0}},
		{"error_two_shapes", "/v1/decompose", DecomposeRequest{Graph: WireGraph{Ring: []string{"1", "1", "1"}, Path: []string{"1"}}}},
		{"error_negative_weight", "/v1/utilities", UtilitiesRequest{Graph: WireGraph{Ring: []string{"1", "-2", "3"}}}},
		{"error_bad_resume", "/v1/sweep", SweepRequest{Graph: ring, V: 2, Grid: 4, Resume: "not-a-token"}},
		{"error_mismatched_resume", "/v1/sweep", SweepRequest{Graph: ring, V: 2, Grid: 4,
			Resume: encodeResumeToken(resumeToken{Key: "n3;w1,1,1;e0-1,0-2,1-2", V: 2, Grid: 4, Next: 2})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL, tc.path, tc.body)
			if wantErr := len(tc.name) >= 5 && tc.name[:5] == "error"; wantErr != (status != http.StatusOK) {
				t.Fatalf("status %d for case %s: %s", status, tc.name, raw)
			}
			got := append(raw, []byte(nil)...) // raw already ends in \n from json.Encoder
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("wire format drifted from %s:\ngot:  %swant: %s", path, got, want)
			}
			// The body must also be valid JSON.
			var v any
			if err := json.Unmarshal(got, &v); err != nil {
				t.Fatalf("response is not valid JSON: %v", err)
			}
		})
	}
}

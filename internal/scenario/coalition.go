package scenario

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// CoalitionOptions tunes Coalition. Zero values select defaults.
type CoalitionOptions struct {
	// Members are the colluding vertices (required, ≥ 2, distinct, in
	// range). Member order is part of the enumeration contract: the first
	// member is the most significant digit of the report odometer.
	Members []int
	// Grid is the report resolution: member j reports w_j·c_j/Grid for a
	// digit c_j ∈ {1, ..., Grid} (default 8; the grid is a full product, so
	// points grow as Grid^m). Reports are strictly positive — the zero
	// report leaves an agent with no endowment, a degenerate profile
	// outside the model's w > 0 domain; near-sacrificial members report
	// w_j/Grid instead.
	Grid int
	// Mechanism selects the allocation backend (nil = registry default, BD).
	Mechanism mechanism.Mechanism
	// Start is the first point index to evaluate, in [0, Grid^m].
	Start int
	// Progress, when set, is invoked after each point with its index;
	// points are sequential so indices arrive strictly ascending.
	Progress func(i int)
	// OnPoint, when set, streams each completed point before Progress.
	// Returning an error aborts the scan as a real failure (the durable job
	// runner's checkpoint hook).
	OnPoint func(i int, p CoalitionPoint) error
}

// CoalitionPoint is one exactly evaluated joint misreport.
type CoalitionPoint struct {
	// Digits holds c_j per member (first member most significant in the
	// enumeration); member j reported w_j·c_j/Grid.
	Digits []int
	// Members holds each member's utility at this point (Members order of
	// the options); Joint is their sum. Carrying the per-member vector in
	// every point is what lets a resumed scan reconstruct the best point's
	// attribution without re-evaluating it.
	Members []numeric.Rat
	Joint   numeric.Rat
}

// CoalitionResult is the outcome of Coalition, following the shared sweep
// contract (partial prefix on cancellation, earliest-maximum best).
type CoalitionResult struct {
	Points []CoalitionPoint
	// BestIndex indexes Points at the earliest maximum of Joint;
	// BestDigits/BestJoint mirror that point.
	BestIndex  int
	BestDigits []int
	BestJoint  numeric.Rat
	// HonestJoint is Σ_j U_j with every member truthful;
	// JointRatio = BestJoint / HonestJoint (1 when both zero).
	HonestJoint numeric.Rat
	JointRatio  numeric.Rat
	// Honest, BestMember hold the per-member utilities truthful and at the
	// best point (same order as Members); Gains[j] = BestMember[j] −
	// Honest[j] (may be negative — a sacrificial member), and
	// MemberRatios[j] = BestMember[j]/Honest[j] with the convention of
	// sybil.PairAttack: 1 when the honest utility is zero.
	Honest       []numeric.Rat
	BestMember   []numeric.Rat
	Gains        []numeric.Rat
	MemberRatios []numeric.Rat
	Partial      bool
	Start        int
	NextIndex    int
	Total        int
}

// CoalitionTotal returns grid^members, the full point count of a coalition
// scan, or an error when it exceeds limit (limit ≤ 0 = no cap).
func CoalitionTotal(grid, members, limit int) (int, error) {
	if grid <= 0 || members < 2 {
		return 0, fmt.Errorf("scenario: coalition needs grid ≥ 1 and ≥ 2 members, got (%d, %d)", grid, members)
	}
	total := 1
	for j := 0; j < members; j++ {
		total *= grid
		if limit > 0 && total > limit {
			return 0, fmt.Errorf("scenario: coalition grid %d^%d exceeds %d points", grid, members, limit)
		}
	}
	return total, nil
}

// coalitionDigits decodes point index i into per-member digits in
// {1, ..., grid}, first member most significant, base grid.
func coalitionDigits(i, grid, members int) []int {
	d := make([]int, members)
	for j := members - 1; j >= 0; j-- {
		d[j] = 1 + i%grid
		i /= grid
	}
	return d
}

// Coalition scans joint misreports by a set of colluding agents on any
// connected graph: each member j simultaneously reports w_j·c_j/Grid in
// place of its true endowment w_j, over the full product grid of digit
// vectors in odometer order (first member most significant, so point
// Total−1 is the all-truthful profile). The objective is the coalition's
// joint utility; per-member gain attribution at the best point shows who
// profits and who sacrifices. Theorem 8 does not govern these deviations —
// the scan is the engine form of experiment E16, which shows coalitions
// escaping the ×2 bound.
func Coalition(ctx context.Context, g *graph.Graph, opts CoalitionOptions) (*CoalitionResult, error) {
	if len(opts.Members) < 2 {
		return nil, fmt.Errorf("scenario: coalition needs ≥ 2 members, got %d", len(opts.Members))
	}
	if opts.Grid <= 0 {
		opts.Grid = 8
	}
	seen := make(map[int]bool, len(opts.Members))
	for _, v := range opts.Members {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("scenario: coalition member %d outside [0, %d)", v, g.N())
		}
		if seen[v] {
			return nil, fmt.Errorf("scenario: coalition member %d listed twice", v)
		}
		seen[v] = true
	}
	total, err := CoalitionTotal(opts.Grid, len(opts.Members), 0)
	if err != nil {
		return nil, err
	}
	if opts.Start < 0 || opts.Start > total {
		return nil, fmt.Errorf("scenario: start index %d outside [0, %d]", opts.Start, total)
	}
	m := opts.Mechanism
	if m == nil {
		var err error
		if m, err = mechanism.Get(""); err != nil {
			return nil, err
		}
	}
	ctx, span := obs.Start(ctx, "scenario.coalition")
	defer span.End()
	if span != nil {
		span.SetAttr("mechanism", m.Name())
		span.SetAttr("members", strconv.Itoa(len(opts.Members)))
		span.SetAttr("grid", strconv.Itoa(opts.Grid))
		span.SetAttr("points", strconv.Itoa(total))
	}

	honestAlloc, err := m.Allocate(ctx, g)
	if err != nil {
		return nil, fmt.Errorf("scenario: honest allocation: %w", err)
	}
	res := &CoalitionResult{Start: opts.Start, NextIndex: opts.Start, Total: total}
	res.Honest = make([]numeric.Rat, len(opts.Members))
	for j, v := range opts.Members {
		res.Honest[j] = honestAlloc.Utility(v)
		res.HonestJoint = res.HonestJoint.Add(res.Honest[j])
	}

	digits := coalitionDigits(opts.Start, opts.Grid, len(opts.Members))
	memberAt := make([]numeric.Rat, len(opts.Members))
	for i := opts.Start; i < total; i++ {
		if err := pointErr(ctx); err != nil {
			if isCancel(err) {
				res.Partial = true
				break
			}
			return nil, fmt.Errorf("scenario: coalition point %d: %w", i, err)
		}
		gp := g.Clone()
		for j, v := range opts.Members {
			gp.MustSetWeight(v, g.Weight(v).MulInt(int64(digits[j])).DivInt(int64(opts.Grid)))
		}
		a, err := m.Allocate(ctx, gp)
		if err != nil {
			if isCancel(err) {
				res.Partial = true
				break
			}
			return nil, fmt.Errorf("scenario: coalition point %s: %w", digitKey(digits), err)
		}
		joint := numeric.Zero
		for j, v := range opts.Members {
			memberAt[j] = a.Utility(v)
			joint = joint.Add(memberAt[j])
		}
		res.Points = append(res.Points, CoalitionPoint{
			Digits:  append([]int(nil), digits...),
			Members: append([]numeric.Rat(nil), memberAt...),
			Joint:   joint,
		})
		p := res.Points[len(res.Points)-1]
		if len(res.Points) == 1 || res.BestJoint.Less(joint) {
			res.BestIndex = len(res.Points) - 1
			res.BestDigits = p.Digits
			res.BestJoint = joint
			res.BestMember = p.Members
		}
		res.NextIndex = i + 1
		if opts.OnPoint != nil {
			if err := opts.OnPoint(i, p); err != nil {
				return nil, fmt.Errorf("scenario: coalition point %d: %w", i, err)
			}
		}
		if opts.Progress != nil {
			opts.Progress(i)
		}
		// Increment the odometer: last member is the least significant digit.
		for j := len(digits) - 1; j >= 0; j-- {
			digits[j]++
			if digits[j] <= opts.Grid {
				break
			}
			digits[j] = 1
		}
	}
	if span != nil && res.Partial {
		span.AddEvent("scan_partial", "next_index", strconv.Itoa(res.NextIndex))
	}
	if len(res.Points) > 0 {
		res.Gains = make([]numeric.Rat, len(opts.Members))
		res.MemberRatios = make([]numeric.Rat, len(opts.Members))
		for j := range opts.Members {
			res.Gains[j] = res.BestMember[j].Sub(res.Honest[j])
			if res.Honest[j].Sign() > 0 {
				res.MemberRatios[j] = res.BestMember[j].Div(res.Honest[j])
			} else {
				res.MemberRatios[j] = numeric.One
			}
		}
	}
	switch {
	case res.HonestJoint.Sign() > 0:
		res.JointRatio = res.BestJoint.Div(res.HonestJoint)
	case res.BestJoint.Sign() > 0:
		// A coalition of honestly worthless members (zero honest utility) with
		// a positive best is an unbounded ratio; surface it rather than
		// dividing by zero.
		return nil, fmt.Errorf("scenario: positive coalition utility %v from zero honest utility", res.BestJoint)
	default:
		res.JointRatio = numeric.One
	}
	return res, nil
}

// digitKey renders a digit vector as the comma-joined form used in error
// messages and checkpoint encodings ("3,0,7").
func digitKey(digits []int) string {
	parts := make([]string, len(digits))
	for i, d := range digits {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

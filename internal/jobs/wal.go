package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// The write-ahead log is a sequence of self-delimiting frames:
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// The payload is one JSON walEntry. Replay stops at the first frame that is
// short, oversized, or fails its checksum — a torn tail from a crash
// mid-write is discarded, never misparsed. Everything before the tear was
// either fsync'd (state transitions) or is a checkpoint delta whose loss
// only costs recomputation.

// walMaxFrame bounds one frame so a corrupt length field cannot demand an
// outsized allocation. A frame holds at most one job record or one
// checkpoint delta; both are far smaller.
const walMaxFrame = 16 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walEntry is one logged mutation. Op selects the shape:
//
//   - "job": Job is the full record sans Points; replay upserts it and
//     truncates any resident points to Job.NextIndex (so a requeued or
//     resubmitted job's stale tail is dropped, and snapshot+stale-WAL
//     replay converges — every truncated point reappears from a later
//     "points" entry in the same log).
//   - "points": a checkpoint delta: Points covers work units
//     [Start, Start+len(Points)) of job ID.
type walEntry struct {
	Op     string  `json:"op"`
	Job    *Record `json:"job,omitempty"`
	ID     string  `json:"id,omitempty"`
	Start  int     `json:"start,omitempty"`
	Points []Point `json:"points,omitempty"`
}

// encodeFrame renders one entry as a single byte slice so the file write is
// one syscall — a killed process never leaves a half-written header with a
// valid-looking payload behind it.
func encodeFrame(e *walEntry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode wal entry: %w", err)
	}
	if len(payload) > walMaxFrame {
		return nil, fmt.Errorf("jobs: wal entry of %d bytes exceeds frame limit %d", len(payload), walMaxFrame)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, walCRC))
	copy(buf[8:], payload)
	return buf, nil
}

// readFrames decodes frames from r until EOF or the first damaged frame,
// invoking fn per entry. It returns the byte offset of the valid prefix —
// the caller truncates the log there — and whether a damaged tail was
// dropped. Errors from fn abort the scan.
func readFrames(r io.Reader, fn func(*walEntry) error) (valid int64, torn bool, err error) {
	br := &countingReader{r: r}
	var header [8]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			// Clean EOF ends the log; a partial header is a torn tail.
			return valid, err != io.EOF, nil
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		if n > walMaxFrame {
			return valid, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, true, nil
		}
		if crc32.Checksum(payload, walCRC) != binary.LittleEndian.Uint32(header[4:8]) {
			return valid, true, nil
		}
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			// A frame that passes its checksum but fails to parse is not a
			// torn write — it is a logic error or deliberate corruption, and
			// silently dropping the rest of the log would hide it.
			return valid, false, fmt.Errorf("jobs: wal entry at offset %d: %w", valid, err)
		}
		if err := fn(&e); err != nil {
			return valid, false, err
		}
		valid = br.n
	}
}

// countingReader tracks how many bytes have been consumed, so replay knows
// where the valid prefix ends.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Package enum exhaustively certifies small ring instances.
//
// It walks every ring of n ∈ [MinN, MaxN] vertices with integer weights in
// {1..Levels}, up to the symmetries that fix the designated attacker
// (vertex 0): rotations are factored out by pinning the attacker, the
// reflection through vertex 0 by keeping only tuples lexicographically ≤
// their mirror image, and global weight scaling by skipping tuples with
// gcd > 1. Every surviving instance is solved, certified (internal/cert/build)
// and independently re-verified (cert.Check); the summary records any
// failure, the maximum incentive ratio seen, and the near-tight frontier —
// instances whose ratio is within Eps of the paper's bound 2.
//
// The enumeration is deterministic and indexable (Enumerate returns the
// instance list in a fixed order), which is what lets the durable-job layer
// run it with checkpointed resume: instance i means the same ring in every
// process that ever computes it.
package enum

import (
	"context"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/par"
)

// Options bounds the enumeration. Zero values select defaults.
type Options struct {
	// MinN and MaxN bound the ring size (defaults 3 and 6; MaxN ≤ 10).
	MinN, MaxN int
	// Levels is the number of integer weight levels 1..Levels (default 3,
	// ≤ 6): the coarse rational lattice, exhaustive up to scaling.
	Levels int
	// Grid is the split-optimizer grid per instance (default 8 — small, the
	// piecewise search refines it exactly).
	Grid int
	// Eps is the frontier threshold: instances with ratio ≥ 2 − Eps are
	// archived (default 1/2).
	Eps numeric.Rat
	// Workers bounds parallel certification (≤ 0 = GOMAXPROCS).
	Workers int
}

// Resolved returns the options with all defaults applied — what Run and
// Enumerate actually use. Callers persisting options (the durable-job
// layer) resolve them first so a stored spec never depends on defaults
// changing.
func (o Options) Resolved() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.MinN <= 0 {
		o.MinN = 3
	}
	if o.MaxN <= 0 {
		o.MaxN = 6
	}
	if o.Levels <= 0 {
		o.Levels = 3
	}
	if o.Grid <= 0 {
		o.Grid = 8
	}
	if o.Eps.IsZero() {
		o.Eps = numeric.New(1, 2)
	}
	return o
}

func (o Options) validate() error {
	if o.MinN < 3 {
		return fmt.Errorf("enum: MinN %d below 3 (smallest ring)", o.MinN)
	}
	if o.MaxN < o.MinN || o.MaxN > 10 {
		return fmt.Errorf("enum: MaxN %d outside [MinN, 10]", o.MaxN)
	}
	if o.Levels > 6 {
		return fmt.Errorf("enum: Levels %d above 6 (lattice explosion)", o.Levels)
	}
	return nil
}

// Spec identifies one enumerated instance: a ring of len(Weights) vertices,
// attacker fixed at vertex 0.
type Spec struct {
	Weights []int64
}

// Key renders the spec canonically, e.g. "r5:3,1,2,1,5".
func (s Spec) Key() string {
	parts := make([]string, len(s.Weights))
	for i, w := range s.Weights {
		parts[i] = fmt.Sprintf("%d", w)
	}
	return fmt.Sprintf("r%d:%s", len(s.Weights), strings.Join(parts, ","))
}

// Graph materializes the ring.
func (s Spec) Graph() *graph.Graph {
	ws := make([]numeric.Rat, len(s.Weights))
	for i, w := range s.Weights {
		ws[i] = numeric.FromInt(w)
	}
	return graph.Ring(ws)
}

// canonical reports whether w survives the symmetry reduction: it must be
// lexicographically ≤ its reflection through vertex 0 (the only ring
// automorphism fixing the attacker besides identity) and have gcd 1 (scale
// invariance of the incentive ratio).
func canonical(w []int64) bool {
	n := len(w)
	for i := 1; i < n; i++ {
		m := w[n-i] // reflection: σ(w)_i = w_{(n−i) mod n}
		if w[i] < m {
			break
		}
		if w[i] > m {
			return false
		}
	}
	g := w[0]
	for _, x := range w[1:] {
		g = gcd(g, x)
	}
	return g == 1
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Enumerate returns every canonical instance in a fixed deterministic
// order: ring sizes ascending, weight tuples in odometer order.
func Enumerate(o Options) ([]Spec, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	var specs []Spec
	for n := o.MinN; n <= o.MaxN; n++ {
		w := make([]int64, n)
		for i := range w {
			w[i] = 1
		}
		for {
			if canonical(w) {
				specs = append(specs, Spec{Weights: append([]int64(nil), w...)})
			}
			// Odometer increment over {1..Levels}^n.
			i := n - 1
			for ; i >= 0; i-- {
				if w[i] < int64(o.Levels) {
					w[i]++
					break
				}
				w[i] = 1
			}
			if i < 0 {
				break
			}
		}
	}
	return specs, nil
}

// Count returns the number of canonical instances without materializing
// per-instance state beyond the odometer.
func Count(o Options) (int, error) {
	specs, err := Enumerate(o)
	if err != nil {
		return 0, err
	}
	return len(specs), nil
}

// Outcome is the certified result of one instance. Exactly one of Ratio and
// Err is set; a non-empty Err means the instance FAILED certification —
// solver error, builder error, or (the interesting case) cert.Check
// rejecting the solver's own answer.
type Outcome struct {
	Key   string `json:"key"`
	Ratio string `json:"ratio,omitempty"`
	Err   string `json:"err,omitempty"`
}

// Certify solves one instance, builds its ratio certificate and verifies it
// with the solver-free checker.
func Certify(ctx context.Context, sp Spec, grid int) Outcome {
	out := Outcome{Key: sp.Key()}
	g := sp.Graph()
	in, err := core.NewInstanceCtx(ctx, g, 0)
	if err != nil {
		out.Err = fmt.Sprintf("instance: %v", err)
		return out
	}
	opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: grid})
	if err != nil {
		out.Err = fmt.Sprintf("optimize: %v", err)
		return out
	}
	rc, err := build.Ratio(ctx, in, opt)
	if err != nil {
		out.Err = fmt.Sprintf("build: %v", err)
		return out
	}
	if err := cert.Check(rc); err != nil {
		out.Err = fmt.Sprintf("check: %v", err)
		return out
	}
	out.Ratio = rc.Ratio
	return out
}

// Summary aggregates an enumeration run.
type Summary struct {
	Instances int       `json:"instances"`
	Certified int       `json:"certified"`
	Failures  []Outcome `json:"failures,omitempty"`
	// MaxRatio/MaxKey is the largest certified incentive ratio and the
	// instance achieving it.
	MaxRatio string `json:"max_ratio"`
	MaxKey   string `json:"max_key"`
	// Frontier archives the near-tight instances (ratio ≥ 2 − Eps), in
	// enumeration order.
	Frontier []Outcome `json:"frontier,omitempty"`
}

// Summarize folds per-instance outcomes into a Summary. It is exact: ratio
// strings are parsed back to rationals for the max and frontier
// comparisons, so a ratio above 2 can never hide behind formatting.
func Summarize(outs []Outcome, eps numeric.Rat) (*Summary, error) {
	if eps.IsZero() {
		eps = numeric.New(1, 2)
	}
	threshold := numeric.Two.Sub(eps)
	s := &Summary{Instances: len(outs), MaxRatio: "0"}
	maxR := numeric.Zero
	for _, out := range outs {
		if out.Err != "" {
			s.Failures = append(s.Failures, out)
			continue
		}
		r, err := parseRatio(out.Ratio)
		if err != nil {
			return nil, fmt.Errorf("enum: %s: %w", out.Key, err)
		}
		s.Certified++
		if maxR.Less(r) {
			maxR = r
			s.MaxRatio, s.MaxKey = out.Ratio, out.Key
		}
		if !r.Less(threshold) {
			s.Frontier = append(s.Frontier, out)
		}
	}
	return s, nil
}

func parseRatio(str string) (numeric.Rat, error) {
	br, ok := new(big.Rat).SetString(str)
	if !ok {
		return numeric.Zero, fmt.Errorf("unparsable ratio %q", str)
	}
	return numeric.FromBig(br), nil
}

// Run certifies the whole enumeration in parallel and summarizes it.
func Run(ctx context.Context, o Options) (*Summary, error) {
	o = o.withDefaults()
	specs, err := Enumerate(o)
	if err != nil {
		return nil, err
	}
	outs := par.MapCtx(ctx, len(specs), o.Workers, func(ctx context.Context, i int) Outcome {
		if err := ctx.Err(); err != nil {
			return Outcome{Key: specs[i].Key(), Err: fmt.Sprintf("canceled: %v", err)}
		}
		return Certify(ctx, specs[i], o.Grid)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Summarize(outs, o.Eps)
}

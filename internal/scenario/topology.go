package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Topology families. A family names a deterministic generator: instance i
// of a scan is fully determined by (family, seed, i, n, dist), so a
// resumed scan regenerates byte-identical graphs.
const (
	FamilyRing       = "ring"
	FamilyTree       = "tree"
	FamilyBarbell    = "barbell"
	FamilySmallWorld = "smallworld"
	FamilyER         = "er"
)

// Families returns the registered topology family names, in canonical
// (scan) order.
func Families() []string {
	return []string{FamilyRing, FamilyTree, FamilyBarbell, FamilySmallWorld, FamilyER}
}

// ValidFamily reports whether name is a registered topology family.
func ValidFamily(name string) bool {
	for _, f := range Families() {
		if f == name {
			return true
		}
	}
	return false
}

// TopologyOptions tunes Topology. Zero values select defaults.
type TopologyOptions struct {
	// Families lists the graph families to scan, in order (required,
	// each a registered family name; see Families).
	Families []string
	// Count is the number of instances per family (default 4).
	Count int
	// N is the vertex count per instance (default 8, minimum 5 — the floor
	// of the barbell and small-world generators).
	N int
	// Grid is the misreport resolution: each vertex's candidate reports are
	// w_v·c/Grid for c ∈ {1, ..., Grid−1} (default 8; c = Grid is the
	// truthful report, which is the scan's baseline rather than a point, and
	// c = 0 is excluded — zero reports fall outside the model's w > 0
	// domain).
	Grid int
	// Seed derives every instance's rng (see instanceSeed); two scans with
	// equal options enumerate identical graphs.
	Seed int64
	// Dist is the weight distribution for generated instances.
	Dist graph.WeightDist
	// Mechanism selects the allocation backend (nil = registry default, BD).
	Mechanism mechanism.Mechanism
	// Start is the first instance index to evaluate, in [0, Total].
	Start int
	// Progress, when set, is invoked after each instance with its global
	// index; instances are sequential so indices arrive strictly ascending.
	Progress func(i int)
	// OnOutcome, when set, streams each completed instance outcome before
	// Progress. Returning an error aborts the scan as a real failure (the
	// durable job runner's checkpoint hook).
	OnOutcome func(i int, out TopologyOutcome) error
}

// TopologyOutcome is the scan result for one generated instance: the worst
// single-agent misreport deviation found over all vertices and grid
// reports.
type TopologyOutcome struct {
	// Family/Index locate the instance: Index is the global scan index, so
	// the instance graph is TopologyInstance(opts, Index).
	Family string
	Index  int
	// N/M are the instance's vertex and edge counts.
	N, M int
	// WorstV is the vertex with the largest misreport ratio; WorstDigit its
	// maximizing report numerator (report = w_v·WorstDigit/Grid). −1/−1
	// when no deviation beats honesty anywhere (ratio 1 at the honest
	// report of vertex 0).
	WorstV, WorstDigit int
	// Honest/Best/Ratio are U_{WorstV} truthful, its best deviation
	// utility, and Best/Honest. When Unbounded is set a vertex with zero
	// honest utility gained Best > 0 and Ratio is meaningless (zero).
	Honest, Best, Ratio numeric.Rat
	Unbounded           bool
}

// FamilySummary aggregates a family's outcomes: the worst instance and its
// deviation.
type FamilySummary struct {
	Family string
	// Count is the number of outcomes aggregated.
	Count int
	// WorstIndex is the global index of the family's worst instance (−1
	// when Count is 0). WorstRatio is that instance's ratio — or, when
	// Unbounded is set, its raw deviation utility (the ratio being
	// infinite).
	WorstIndex int
	WorstRatio numeric.Rat
	Unbounded  bool
}

// TopologyResult is the outcome of Topology, following the shared sweep
// contract (partial prefix on cancellation).
type TopologyResult struct {
	// Outcomes covers instances [Start, NextIndex), one per instance in
	// global scan order (family-major: all of Families[0] first).
	Outcomes []TopologyOutcome
	// Summaries aggregates the returned outcomes per family, in Families
	// order (partial scans aggregate only the covered instances).
	Summaries []FamilySummary
	Partial   bool
	Start     int
	NextIndex int
	Total     int
}

// TopologyTotal returns the instance count of a scan: families × count.
func TopologyTotal(families, count int) int { return families * count }

// instanceSeed derives instance i's rng seed. The formula is part of the
// checkpoint contract — changing it would regenerate different graphs under
// resumed scans — so it is pinned here once: a fixed odd stride keeps
// neighboring instances' streams apart.
func instanceSeed(seed int64, i int) int64 { return seed + int64(i)*1_000_003 + 1 }

// TopologyInstance regenerates the instance at global index i of a scan
// with the given options (family-major order). The server's certificate
// path uses it to rebuild a scan's worst ring instance exactly.
func TopologyInstance(opts TopologyOptions, i int) (*graph.Graph, string, error) {
	opts = topologyDefaults(opts)
	if err := topologyValidate(opts); err != nil {
		return nil, "", err
	}
	total := TopologyTotal(len(opts.Families), opts.Count)
	if i < 0 || i >= total {
		return nil, "", fmt.Errorf("scenario: instance index %d outside [0, %d)", i, total)
	}
	family := opts.Families[i/opts.Count]
	rng := rand.New(rand.NewSource(instanceSeed(opts.Seed, i)))
	var g *graph.Graph
	switch family {
	case FamilyRing:
		g = graph.RandomRing(rng, opts.N, opts.Dist)
	case FamilyTree:
		g = graph.RandomTree(rng, opts.N, opts.Dist)
	case FamilyBarbell:
		g = graph.RandomBarbell(rng, opts.N, opts.Dist)
	case FamilySmallWorld:
		g = graph.SmallWorld(rng, opts.N, 0.3, opts.Dist)
	case FamilyER:
		g = graph.RandomConnected(rng, opts.N, 0.15, opts.Dist)
	default:
		return nil, "", fmt.Errorf("scenario: unknown topology family %q", family)
	}
	return g, family, nil
}

func topologyDefaults(opts TopologyOptions) TopologyOptions {
	if opts.Count <= 0 {
		opts.Count = 4
	}
	if opts.N <= 0 {
		opts.N = 8
	}
	if opts.Grid <= 0 {
		opts.Grid = 8
	}
	return opts
}

func topologyValidate(opts TopologyOptions) error {
	if len(opts.Families) == 0 {
		return fmt.Errorf("scenario: topology scan needs at least one family")
	}
	for _, f := range opts.Families {
		if !ValidFamily(f) {
			return fmt.Errorf("scenario: unknown topology family %q", f)
		}
	}
	if opts.N < 5 {
		return fmt.Errorf("scenario: topology scan needs n ≥ 5, got %d", opts.N)
	}
	return nil
}

// Topology scans generated graph families for single-agent misreport
// deviations: for every instance, every vertex v tries reporting
// w_v·c/Grid for each c < Grid (the Cheng et al. deviation space
// restricted to the grid), and the instance's outcome records the vertex
// with the worst empirical incentive ratio. Unlike the ring machinery this
// is a lower-bound probe — no exactness claim beyond the evaluated points —
// but it runs under any mechanism and any registered family, which is what
// the general-network conjecture needs surveyed.
func Topology(ctx context.Context, opts TopologyOptions) (*TopologyResult, error) {
	opts = topologyDefaults(opts)
	if err := topologyValidate(opts); err != nil {
		return nil, err
	}
	total := TopologyTotal(len(opts.Families), opts.Count)
	if opts.Start < 0 || opts.Start > total {
		return nil, fmt.Errorf("scenario: start index %d outside [0, %d]", opts.Start, total)
	}
	m := opts.Mechanism
	if m == nil {
		var err error
		if m, err = mechanism.Get(""); err != nil {
			return nil, err
		}
	}
	ctx, span := obs.Start(ctx, "scenario.topology")
	defer span.End()
	if span != nil {
		span.SetAttr("mechanism", m.Name())
		span.SetAttr("families", strconv.Itoa(len(opts.Families)))
		span.SetAttr("instances", strconv.Itoa(total))
	}

	res := &TopologyResult{Start: opts.Start, NextIndex: opts.Start, Total: total}
	for i := opts.Start; i < total; i++ {
		if err := pointErr(ctx); err != nil {
			if isCancel(err) {
				res.Partial = true
				break
			}
			return nil, fmt.Errorf("scenario: topology instance %d: %w", i, err)
		}
		g, family, err := TopologyInstance(opts, i)
		if err != nil {
			return nil, err
		}
		out, err := scanInstance(ctx, m, g, opts.Grid)
		if err != nil {
			if isCancel(err) {
				res.Partial = true
				break
			}
			return nil, fmt.Errorf("scenario: topology instance %d (%s): %w", i, family, err)
		}
		out.Family, out.Index = family, i
		res.Outcomes = append(res.Outcomes, *out)
		res.NextIndex = i + 1
		if opts.OnOutcome != nil {
			if err := opts.OnOutcome(i, *out); err != nil {
				return nil, fmt.Errorf("scenario: topology instance %d: %w", i, err)
			}
		}
		if opts.Progress != nil {
			opts.Progress(i)
		}
	}
	if span != nil && res.Partial {
		span.AddEvent("scan_partial", "next_index", strconv.Itoa(res.NextIndex))
	}
	res.Summaries = SummarizeFamilies(opts.Families, res.Outcomes)
	return res, nil
}

// scanInstance evaluates every (vertex, report) deviation of one instance.
func scanInstance(ctx context.Context, m mechanism.Mechanism, g *graph.Graph, grid int) (*TopologyOutcome, error) {
	honestAlloc, err := m.Allocate(ctx, g)
	if err != nil {
		return nil, fmt.Errorf("honest allocation: %w", err)
	}
	out := &TopologyOutcome{
		N: g.N(), M: g.M(),
		WorstV: -1, WorstDigit: -1,
		Honest: honestAlloc.Utility(0), Best: honestAlloc.Utility(0),
		Ratio: numeric.One,
	}
	for v := 0; v < g.N(); v++ {
		honest := honestAlloc.Utility(v)
		best, bestDigit := honest, grid
		for c := 1; c < grid; c++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			gp := g.Clone()
			gp.MustSetWeight(v, g.Weight(v).MulInt(int64(c)).DivInt(int64(grid)))
			a, err := m.Allocate(ctx, gp)
			if err != nil {
				return nil, fmt.Errorf("vertex %d report %d/%d: %w", v, c, grid, err)
			}
			if u := a.Utility(v); best.Less(u) {
				best, bestDigit = u, c
			}
		}
		unbounded := honest.Sign() == 0 && best.Sign() > 0
		var ratio numeric.Rat
		if honest.Sign() > 0 {
			ratio = best.Div(honest)
		} else if !unbounded {
			ratio = numeric.One
		}
		// An unbounded vertex dominates every finite ratio; among finite
		// ones the earliest strict maximum wins (vertex order, then digit).
		better := false
		switch {
		case unbounded && !out.Unbounded:
			better = true
		case unbounded == out.Unbounded && !unbounded:
			better = out.Ratio.Less(ratio)
		case unbounded && out.Unbounded:
			better = out.Best.Less(best)
		}
		if better {
			out.WorstV, out.WorstDigit = v, bestDigit
			out.Honest, out.Best, out.Ratio, out.Unbounded = honest, best, ratio, unbounded
		}
	}
	return out, nil
}

// SummarizeFamilies folds outcomes into per-family worst-instance
// summaries, in the given family order. The server's topology job calls it
// over the full checkpointed outcome set at completion; Topology calls it
// over whatever prefix a (possibly partial) scan covered.
func SummarizeFamilies(families []string, outcomes []TopologyOutcome) []FamilySummary {
	sums := make([]FamilySummary, len(families))
	for i, f := range families {
		sums[i] = FamilySummary{Family: f, WorstIndex: -1}
	}
	pos := make(map[string]int, len(families))
	for i, f := range families {
		pos[f] = i
	}
	for _, out := range outcomes {
		j, ok := pos[out.Family]
		if !ok {
			continue
		}
		s := &sums[j]
		s.Count++
		better := false
		switch {
		case s.WorstIndex < 0:
			better = true
		case out.Unbounded && !s.Unbounded:
			better = true
		case out.Unbounded == s.Unbounded && !out.Unbounded:
			better = s.WorstRatio.Less(out.Ratio)
		case out.Unbounded && s.Unbounded:
			better = s.WorstRatio.Less(out.Best)
		}
		if better {
			s.WorstIndex = out.Index
			s.Unbounded = out.Unbounded
			if out.Unbounded {
				s.WorstRatio = out.Best
			} else {
				s.WorstRatio = out.Ratio
			}
		}
	}
	return sums
}

// Package numeric provides exact rational arithmetic for the resource
// sharing library.
//
// All quantities in the bottleneck decomposition — vertex weights, α-ratios,
// flow capacities, allocations and utilities — are ratios of sums of input
// weights. Floating point is not safe there: the decomposition algorithm
// branches on exact comparisons (is α(S) < α(T)?, is the cut value exactly
// zero?) and a single misclassification changes the combinatorial structure.
// Rat therefore keeps an int64 numerator/denominator fast path and promotes
// transparently to math/big.Rat when an operation would overflow.
//
// Rat values are immutable; all operations return new values. The zero value
// of Rat is the number 0 and is ready to use.
package numeric

import (
	"fmt"
	"math"
	"math/big"
)

// Rat is an immutable exact rational number.
//
// Invariant (when b == nil and den != 0): den > 0 and gcd(|num|, den) == 1.
// The zero value (num == 0, den == 0, b == nil) denotes the number 0.
type Rat struct {
	num, den int64
	b        *big.Rat // overflow fallback; when non-nil, num/den are unused
}

// Common constants.
var (
	Zero = Rat{}
	One  = FromInt(1)
	Two  = FromInt(2)
)

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	return Rat{num: n, den: 1}
}

// New returns the rational n/d. It panics if d == 0.
func New(n, d int64) Rat {
	if d == 0 {
		panic("numeric: zero denominator")
	}
	return makeRat(n, d)
}

// FromBig returns a Rat equal to br. The argument is copied.
func FromBig(br *big.Rat) Rat {
	return demote(new(big.Rat).Set(br))
}

// parts returns the int64 fast-path representation, fixing up the zero value.
// Callers must have checked r.b == nil.
func (r Rat) parts() (int64, int64) {
	if r.den == 0 {
		return 0, 1
	}
	return r.num, r.den
}

// isBig reports whether r is carried by the big fallback.
func (r Rat) isBig() bool { return r.b != nil }

// bigVal returns r as a freshly allocated big.Rat.
func (r Rat) bigVal() *big.Rat {
	if r.b != nil {
		return new(big.Rat).Set(r.b)
	}
	n, d := r.parts()
	return big.NewRat(n, d)
}

// makeRat normalizes n/d (d != 0) into a canonical Rat, promoting to big
// only for the two int64 values whose negation overflows.
func makeRat(n, d int64) Rat {
	if n == math.MinInt64 || d == math.MinInt64 {
		return demote(new(big.Rat).SetFrac(big.NewInt(n), big.NewInt(d)))
	}
	if d < 0 {
		n, d = -n, -d
	}
	if n == 0 {
		return Rat{}
	}
	g := gcd64(abs64(n), d)
	return Rat{num: n / g, den: d / g}
}

// demote converts br to the int64 fast path when it fits. It takes ownership
// of br.
func demote(br *big.Rat) Rat {
	if br.Num().IsInt64() && br.Denom().IsInt64() {
		n, d := br.Num().Int64(), br.Denom().Int64()
		if n != math.MinInt64 && d != math.MinInt64 {
			// big.Rat is already normalized with positive denominator.
			if n == 0 {
				return Rat{}
			}
			return Rat{num: n, den: d}
		}
	}
	return Rat{b: br}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// add64 returns a+b and whether it did not overflow.
func add64(a, b int64) (int64, bool) {
	c := a + b
	if (a > 0 && b > 0 && c <= 0) || (a < 0 && b < 0 && c >= 0) {
		return 0, false
	}
	return c, true
}

// mul64 returns a*b and whether it did not overflow.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// Num returns the normalized numerator as a big.Int.
func (r Rat) Num() *big.Int { return r.bigVal().Num() }

// Denom returns the normalized denominator as a big.Int.
func (r Rat) Denom() *big.Int { return r.bigVal().Denom() }

// Int64Parts returns the numerator and denominator when they fit in int64.
func (r Rat) Int64Parts() (num, den int64, ok bool) {
	if r.b != nil {
		if r.b.Num().IsInt64() && r.b.Denom().IsInt64() {
			return r.b.Num().Int64(), r.b.Denom().Int64(), true
		}
		return 0, 0, false
	}
	n, d := r.parts()
	return n, d, true
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	if r.b != nil {
		return r.b.Sign()
	}
	n, _ := r.parts()
	switch {
	case n > 0:
		return 1
	case n < 0:
		return -1
	}
	return 0
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Sign() == 0 }

// Float64 returns the nearest float64 to r.
func (r Rat) Float64() float64 {
	if r.b != nil {
		f, _ := r.b.Float64()
		return f
	}
	n, d := r.parts()
	return float64(n) / float64(d)
}

// String formats r as "n" for integers and "n/d" otherwise.
func (r Rat) String() string {
	if r.b != nil {
		if r.b.IsInt() {
			return r.b.Num().String()
		}
		return r.b.String()
	}
	n, d := r.parts()
	if d == 1 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d/%d", n, d)
}

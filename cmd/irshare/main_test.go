package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestDecomposeFig1(t *testing.T) {
	out, err := runCapture(t, "decompose", "-fig1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"α=1/3", "B1{0,1}", "class=B=C"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDecomposeDOT(t *testing.T) {
	out, err := runCapture(t, "decompose", "-fig1", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "graph G {") || !strings.Contains(out, "lightblue") {
		t.Errorf("DOT output wrong:\n%s", out)
	}
}

func TestAllocateRing(t *testing.T) {
	out, err := runCapture(t, "allocate", "-ring", "1,100,1,5,5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x[") {
		t.Errorf("no transfers printed:\n%s", out)
	}
}

func TestUtilitiesPath(t *testing.T) {
	out, err := runCapture(t, "utilities", "-path", "1,100,1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ΣU = 102") {
		t.Errorf("missing utility sum:\n%s", out)
	}
}

func TestRatioCommand(t *testing.T) {
	out, err := runCapture(t, "ratio", "-v", "3", "-grid", "16", "-ring", "100,1,1,1,1,1,1,1,1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "≤ 2: true") {
		t.Errorf("Theorem 8 verdict missing:\n%s", out)
	}
}

func TestGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(file, []byte("n 3\nw 0 1\nw 1 100\nw 2 1\ne 0 1\ne 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCapture(t, "utilities", "-in", file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "U(v0) = 50") {
		t.Errorf("file graph utilities wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus", "-fig1"},
		{"decompose"},                            // no graph selected
		{"decompose", "-fig1", "-ring", "1,2,3"}, // two graphs selected
		{"decompose", "-fig1", "-engine", "turbo"}, // bad engine
		{"decompose", "-ring", "1,x,3"},            // bad weight
		{"ratio", "-fig1"},                         // missing -v
		{"ratio", "-v", "0", "-fig1"},              // not a ring
		{"decompose", "-in", "/nonexistent/file"},
	}
	for _, args := range cases {
		if _, err := runCapture(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestEngineSelection(t *testing.T) {
	for _, engine := range []string{"auto", "flow", "path-dp", "brute"} {
		out, err := runCapture(t, "decompose", "-engine", engine, "-ring", "1,100,1,5,5")
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out, "α=1/50") {
			t.Errorf("engine %s output wrong:\n%s", engine, out)
		}
	}
}

func TestCurveCommand(t *testing.T) {
	out, err := runCapture(t, "curve", "-v", "0", "-ring", "8,1,1,1,1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Proposition 11 classification: Case B-3", "exact crossing x* = 2", "structure intervals"} {
		if !strings.Contains(out, want) {
			t.Errorf("curve output missing %q:\n%s", want, out)
		}
	}
}

func TestDecomposeTraceFlag(t *testing.T) {
	out, err := runCapture(t, "decompose", "-trace", "-ring", "1,100,1,5,5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace: stage 1: solving", "trace: stage 1: λ =", "trace: stage 1: extracted"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestMechanismsCommand(t *testing.T) {
	out, err := runCapture(t, "mechanisms")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bd", "(default)", "eqsplit", "pr", "cert=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("mechanisms output missing %q:\n%s", want, out)
		}
	}
	// Sorted registry order: bd before eqsplit before pr. Match names at
	// the start of their rows ("pr" also occurs inside descriptions).
	rows := "\n" + out
	if bd, eq, pr := strings.Index(rows, "\n  bd "), strings.Index(rows, "\n  eqsplit "), strings.Index(rows, "\n  pr "); bd < 0 || eq < 0 || pr < 0 || !(bd < eq && eq < pr) {
		t.Errorf("mechanisms listing not sorted:\n%s", out)
	}
}

func TestTournamentCommand(t *testing.T) {
	out, err := runCapture(t, "tournament", "-v", "0", "-grid", "16", "-ring", "3,1,2,1,5")
	if err != nil {
		t.Fatal(err)
	}
	// Exact rationals end to end: the bd row is deterministic, and on this
	// instance bd strictly beats the no-reciprocity baseline (ζ = 1).
	for _, want := range []string{"tournament: agent v0, grid 16", "ζ = 3965/3689", "eqsplit", "efficiency = 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("tournament output missing %q:\n%s", want, out)
		}
	}

	// Mechanism subset selection and its error path.
	out2, err := runCapture(t, "tournament", "-v", "0", "-grid", "8", "-mechanisms", "eqsplit", "-ring", "3,1,2,1,5")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "bd ") || !strings.Contains(out2, "eqsplit") {
		t.Errorf("tournament -mechanisms filter wrong:\n%s", out2)
	}
	if _, err := runCapture(t, "tournament", "-v", "0", "-mechanisms", "quantum", "-ring", "1,2,3"); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if _, err := runCapture(t, "tournament", "-ring", "1,2,3"); err == nil {
		t.Error("tournament without -v accepted")
	}
}

func TestVerifyCommand(t *testing.T) {
	out, err := runCapture(t, "verify", "-v", "1", "-grid", "16", "-ring", "1,100,1,5,5")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "0 failed") || strings.Contains(out, "[FAIL]") {
		t.Errorf("verify output:\n%s", out)
	}
	// Non-ring graphs skip the Theorem 8 battery but still verify structure.
	out2, err := runCapture(t, "verify", "-fig1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out2)
	}
	if !strings.Contains(out2, "Proposition 3") {
		t.Errorf("verify -fig1 output:\n%s", out2)
	}
}

func TestScenarioCommand(t *testing.T) {
	out, err := runCapture(t, "scenario", "-kind", "ksybil",
		"-ring", "128,2,128,128,512,4,32", "-v", "4", "-k", "3", "-grid", "8")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"3 identities", "45 points", "incentive ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("ksybil output missing %q:\n%s", want, out)
		}
	}

	out2, err := runCapture(t, "scenario", "-kind", "coalition",
		"-ring", "128,2,128,128,512,4,32", "-members", "5,4", "-grid", "4")
	if err != nil {
		t.Fatalf("%v\n%s", err, out2)
	}
	for _, want := range []string{"members [5 4]", "joint ratio", "member v5"} {
		if !strings.Contains(out2, want) {
			t.Errorf("coalition output missing %q:\n%s", want, out2)
		}
	}

	out3, err := runCapture(t, "scenario", "-kind", "topology",
		"-families", "ring,tree", "-count", "1", "-n", "5", "-grid", "3", "-seed", "7")
	if err != nil {
		t.Fatalf("%v\n%s", err, out3)
	}
	for _, want := range []string{"topology scan: 2 instances", "ring", "tree"} {
		if !strings.Contains(out3, want) {
			t.Errorf("topology output missing %q:\n%s", want, out3)
		}
	}

	// Error paths: missing kind, unknown kind, unknown family, bad members.
	if _, err := runCapture(t, "scenario", "-ring", "1,2,3"); err == nil {
		t.Error("scenario without -kind accepted")
	}
	if _, err := runCapture(t, "scenario", "-kind", "quantum", "-ring", "1,2,3"); err == nil {
		t.Error("unknown scenario kind accepted")
	}
	if _, err := runCapture(t, "scenario", "-kind", "topology", "-families", "torus"); err == nil {
		t.Error("unknown topology family accepted")
	}
	if _, err := runCapture(t, "scenario", "-kind", "coalition", "-ring", "1,2,3", "-members", "x"); err == nil {
		t.Error("bad member list accepted")
	}
	if _, err := runCapture(t, "scenario", "-kind", "ksybil", "-ring", "1,2,3", "-v", "0", "-mechanism", "quantum"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

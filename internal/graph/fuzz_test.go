package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseGraph throws arbitrary bytes at the text-format parser. Accepted
// inputs must survive a Write/Read round trip unchanged; nothing may panic
// or allocate unboundedly. This target surfaced the unbounded n-line
// pre-allocation (now capped by maxReadVertices) and the exponent blowup in
// numeric.Parse reachable through w lines.
func FuzzParseGraph(f *testing.F) {
	f.Add("n 3\nw 0 1\nw 1 2\nw 2 3\ne 0 1\ne 1 2\ne 2 0\n")
	f.Add("n 1\nw 0 1/3\n")
	f.Add("# comment\nn 2\nw 0 0.5\nw 1 2.25\ne 0 1\n")
	f.Add("n 0\n")
	f.Add("n 4\nw 0 1e3\nw 1 10/4\ne 0 3\ne 1 2\n")
	f.Add("n 99999999999\n")
	f.Add("n 2\nw 0 1e999999999\n")
	f.Add("e 0 1\nn 2\n")
	f.Add("n 2\ne 0 0\n")
	f.Add("x 1 2\n")
	// Near-tight frontier rings from the exhaustive small-n certification
	// (cmd/certenum at eps 3/5): the weight patterns that drive the
	// incentive ratio toward the bound 2 are exactly the ones whose
	// mutations are worth exploring.
	f.Add("n 5\nw 0 2\nw 1 1\nw 2 1\nw 3 3\nw 4 1\ne 0 1\ne 1 2\ne 2 3\ne 3 4\ne 0 4\n")
	f.Add("n 5\nw 0 3\nw 1 1\nw 2 3\nw 3 1\nw 4 2\ne 0 1\ne 1 2\ne 2 3\ne 3 4\ne 0 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of written form: %v\nwritten:\n%s", err, buf.String())
		}
		if g2.N() != g.N() {
			t.Fatalf("round trip changed n: %d -> %d", g.N(), g2.N())
		}
		for v := 0; v < g.N(); v++ {
			if !g.Weight(v).Equal(g2.Weight(v)) {
				t.Fatalf("round trip changed weight of %d: %v -> %v", v, g.Weight(v), g2.Weight(v))
			}
		}
		e1, e2 := g.Edges(), g2.Edges()
		if len(e1) != len(e2) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, e1[i], e2[i])
			}
		}
	})
}

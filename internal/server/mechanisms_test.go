package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mechanism"
)

// TestGoldenMechanismWire pins the wire contract of the mechanism layer:
// the GET /v1/mechanisms discovery body, the unknown_mechanism error shape
// on every mechanism-aware endpoint, the cert_limit answer for certificate
// requests against non-certifiable backends, and a small deterministic
// tournament. Golden files regenerate with -update.
func TestGoldenMechanismWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"1", "2", "3", "4", "5"}}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
	}{
		{"mechanisms", http.MethodGet, "/v1/mechanisms", nil},
		{"error_unknown_mechanism_allocate", http.MethodPost, "/v1/allocate", AllocateRequest{Graph: ring, Mechanism: "quantum"}},
		{"error_unknown_mechanism_ratio", http.MethodPost, "/v1/ratio", RatioRequest{Graph: ring, V: 1, Mechanism: "quantum"}},
		{"error_unknown_mechanism_sweep", http.MethodPost, "/v1/sweep", SweepRequest{Graph: ring, V: 1, Mechanism: "quantum"}},
		{"error_cert_mechanism_ratio", http.MethodPost, "/v1/ratio", RatioRequest{Graph: ring, V: 1, Mechanism: "pr", Cert: true}},
		{"error_cert_mechanism_sweep", http.MethodPost, "/v1/sweep", SweepRequest{Graph: ring, V: 1, Grid: 4, Mechanism: "eqsplit", Cert: true}},
		{"allocate_eqsplit", http.MethodPost, "/v1/allocate", AllocateRequest{Graph: ring, Mechanism: "eqsplit"}},
		{"ratio_eqsplit", http.MethodPost, "/v1/ratio", RatioRequest{Graph: ring, V: 2, Grid: 8, Mechanism: "eqsplit"}},
		{"tournament_small", http.MethodPost, "/v1/tournament", TournamentRequest{
			Instances:  []TournamentWireInstance{{Graph: ring, V: 2}, {Graph: WireGraph{Ring: []string{"9", "1", "1", "1"}}, V: 0}},
			Mechanisms: []string{"bd", "eqsplit"},
			Grid:       4,
		}},
		{"error_tournament_unknown_mechanism", http.MethodPost, "/v1/tournament", TournamentRequest{
			Instances:  []TournamentWireInstance{{Graph: ring, V: 0}},
			Mechanisms: []string{"bd", "quantum"},
		}},
		{"error_tournament_not_ring", http.MethodPost, "/v1/tournament", TournamentRequest{
			Instances: []TournamentWireInstance{{Graph: WireGraph{Path: []string{"1", "2", "3"}}, V: 0}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var raw []byte
			var status int
			if tc.method == http.MethodGet {
				resp, err := http.Get(ts.URL + tc.path)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				raw, err = io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				status = resp.StatusCode
			} else {
				status, raw = postJSON(t, ts.URL, tc.path, tc.body)
			}
			if wantErr := strings.HasPrefix(tc.name, "error"); wantErr != (status != http.StatusOK) {
				t.Fatalf("status %d for case %s: %s", status, tc.name, raw)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("wire format drifted from %s:\ngot:  %swant: %s", path, raw, want)
			}
		})
	}
}

// TestMechanismBDWireEquivalence pins the default-path contract at the wire
// layer: /v1/allocate, /v1/ratio, and /v1/sweep answer byte-identically
// whether the mechanism field is absent or explicitly "bd" — with the cache
// enabled and disabled.
func TestMechanismBDWireEquivalence(t *testing.T) {
	graphs := []WireGraph{
		{Ring: []string{"1", "2", "3", "4", "5"}},
		{Ring: []string{"7/2", "1", "1/3", "9", "2", "2"}},
		{Path: []string{"2", "1", "2", "5"}},
		{N: 4, Weights: []string{"1/2", "3", "3", "1/2"}, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, capacity := range []int{-1, 64} {
		_, ts := newTestServer(t, Config{CacheSize: capacity})
		for gi, wg := range graphs {
			_, bare := postJSON(t, ts.URL, "/v1/allocate", AllocateRequest{Graph: wg})
			_, tagged := postJSON(t, ts.URL, "/v1/allocate", AllocateRequest{Graph: wg, Mechanism: "bd"})
			if !bytes.Equal(bare, tagged) {
				t.Fatalf("cache=%d graph %d: /v1/allocate diverges with mechanism=bd:\n%s\n%s", capacity, gi, bare, tagged)
			}
			ring := wg.Ring != nil
			if !ring {
				continue
			}
			_, bare = postJSON(t, ts.URL, "/v1/ratio", RatioRequest{Graph: wg, V: 1, Grid: 8})
			_, tagged = postJSON(t, ts.URL, "/v1/ratio", RatioRequest{Graph: wg, V: 1, Grid: 8, Mechanism: "bd"})
			if !bytes.Equal(bare, tagged) {
				t.Fatalf("cache=%d graph %d: /v1/ratio diverges with mechanism=bd:\n%s\n%s", capacity, gi, bare, tagged)
			}
			_, bare = postJSON(t, ts.URL, "/v1/sweep", SweepRequest{Graph: wg, V: 1, Grid: 6})
			_, tagged = postJSON(t, ts.URL, "/v1/sweep", SweepRequest{Graph: wg, V: 1, Grid: 6, Mechanism: "bd"})
			if !bytes.Equal(bare, tagged) {
				t.Fatalf("cache=%d graph %d: /v1/sweep diverges with mechanism=bd:\n%s\n%s", capacity, gi, bare, tagged)
			}
		}
	}
}

// TestMechanismScopedCache proves backends never share cached state: the
// same graph under bd and pr occupies two distinct cache entries with
// distinct allocations, and repeats of each are cache hits.
func TestMechanismScopedCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"3", "1", "2", "1", "5"}}

	var bd, pr AllocateResponse
	mustPost(t, ts.URL, "/v1/allocate", AllocateRequest{Graph: ring}, &bd)
	mustPost(t, ts.URL, "/v1/allocate", AllocateRequest{Graph: ring, Mechanism: "pr"}, &pr)
	if srv.cache.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per mechanism)", srv.cache.len())
	}
	same := true
	for v := range bd.Utilities {
		if bd.Utilities[v] != pr.Utilities[v] {
			same = false
		}
	}
	if same {
		t.Fatal("pr answered with bd's utilities — mechanism cache entries are mixed")
	}

	var pr2 AllocateResponse
	raw := mustPost(t, ts.URL, "/v1/allocate", AllocateRequest{Graph: ring, Mechanism: "pr"}, &pr2)
	var raw1 bytes.Buffer
	if err := json.NewEncoder(&raw1).Encode(pr); err != nil {
		t.Fatal(err)
	}
	if srv.cache.len() != 2 {
		t.Fatalf("repeat pr request changed entry count to %d", srv.cache.len())
	}
	var prBack AllocateResponse
	if err := json.Unmarshal(raw, &prBack); err != nil {
		t.Fatal(err)
	}
	for v := range pr.Utilities {
		if pr.Utilities[v] != prBack.Utilities[v] {
			t.Fatalf("cached pr answer drifted at %d", v)
		}
	}
}

// TestSweepMechanismGenericAndResumeScope runs the generic sweep end to end
// for a non-native backend and pins mechanism-scoped resume tokens: a token
// minted under one mechanism is rejected when replayed under another.
func TestSweepMechanismGenericAndResumeScope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"3", "1", "2", "1", "5"}}

	var resp SweepResponse
	mustPost(t, ts.URL, "/v1/sweep", SweepRequest{Graph: ring, V: 0, Grid: 8, Mechanism: "eqsplit"}, &resp)
	if len(resp.Points) != 9 {
		t.Fatalf("generic sweep returned %d points, want 9", len(resp.Points))
	}
	if resp.Partial {
		t.Fatal("uninterrupted generic sweep reported partial")
	}

	// Forge the cross-mechanism replay: a token carrying the eqsplit-scoped
	// key must not resume a bd sweep of the same graph/agent/grid.
	g, err := ring.Build()
	if err != nil {
		t.Fatal(err)
	}
	eqm, err := mechanism.Get("eqsplit")
	if err != nil {
		t.Fatal(err)
	}
	tok := encodeResumeToken(resumeToken{Key: mechKey(g, eqm), V: 0, Grid: 8, Next: 4})
	status, raw := postJSON(t, ts.URL, "/v1/sweep", SweepRequest{Graph: ring, V: 0, Grid: 8, Resume: tok})
	if status != http.StatusBadRequest {
		t.Fatalf("cross-mechanism resume accepted: %d %s", status, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Code != CodePartialResult {
		t.Fatalf("cross-mechanism resume error = %s (err %v)", raw, err)
	}
	// The same token is valid under its own mechanism.
	var resumed SweepResponse
	mustPost(t, ts.URL, "/v1/sweep", SweepRequest{Graph: ring, V: 0, Grid: 8, Mechanism: "eqsplit", Resume: tok}, &resumed)
	if resumed.StartIndex != 4 || len(resumed.Points) != 5 {
		t.Fatalf("scoped resume: start %d, %d points", resumed.StartIndex, len(resumed.Points))
	}
	for i, p := range resumed.Points {
		if p != resp.Points[4+i] {
			t.Fatalf("resumed point %d diverges from full sweep", i)
		}
	}
}

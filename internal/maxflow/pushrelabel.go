package maxflow

import "repro/internal/numeric"

// pushRelabel computes a maximum flow with the FIFO push–relabel algorithm.
// It is the ablation partner of dinic (experiment E12): same exact
// arithmetic, different combinatorial strategy.
func (nw *Network) pushRelabel() numeric.Rat {
	n := nw.n
	height := make([]int, n)
	excess := make([]numeric.Rat, n)
	inQueue := make([]bool, n)
	queue := make([]int, 0, n)

	enqueue := func(v int) {
		if !inQueue[v] && v != nw.s && v != nw.t && excess[v].Sign() > 0 {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	// Saturate all source arcs.
	height[nw.s] = n
	for _, id := range nw.adj[nw.s] {
		if id%2 != 0 {
			continue
		}
		c := nw.arcs[id].cap
		if c.Sign() <= 0 {
			continue
		}
		nw.push(id, c)
		excess[nw.arcs[id].to] = excess[nw.arcs[id].to].Add(c)
		excess[nw.s] = excess[nw.s].Sub(c)
		enqueue(nw.arcs[id].to)
	}

	discharge := func(u int) {
		for excess[u].Sign() > 0 {
			minH := 2*n + 1
			pushedAny := false
			for _, id := range nw.adj[u] {
				res := nw.residual(id)
				if res.Sign() <= 0 {
					continue
				}
				v := nw.arcs[id].to
				if height[u] == height[v]+1 {
					amt := excess[u].Min(res)
					nw.push(id, amt)
					excess[u] = excess[u].Sub(amt)
					excess[v] = excess[v].Add(amt)
					enqueue(v)
					pushedAny = true
					if excess[u].Sign() == 0 {
						return
					}
				} else if height[v]+1 < minH {
					minH = height[v] + 1
				}
			}
			if !pushedAny {
				if minH > 2*n {
					// No admissible or relabelable arc: excess is stuck,
					// which cannot happen with a correct residual graph.
					return
				}
				height[u] = minH
			}
		}
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		discharge(u)
		enqueue(u) // re-queue if still active (height changed)
	}
	return excess[nw.t]
}

package server

import (
	"encoding/json"
	"net/http/httptest"
	"slices"
	"testing"

	"repro/internal/mechanism"
)

// FuzzRatDecode throws arbitrary strings at the wire-format rational
// decoder. Accepted values must encode back to a canonical fixed point
// (decode∘encode = identity on the encoded form) and survive a JSON round
// trip. This target surfaced the big.Rat exponent expansion ("1e999999999"
// materializing a billion-digit integer), now rejected by numeric.Parse.
func FuzzRatDecode(f *testing.F) {
	f.Add("0")
	f.Add("1")
	f.Add("-7")
	f.Add("22/7")
	f.Add("-3/9")
	f.Add("0.125")
	f.Add("1e3")
	f.Add("1e999999999")
	f.Add("1/0")
	f.Add("9223372036854775807")
	f.Add("170141183460469231731687303715884105727/3")
	f.Add(" 1")
	f.Add("+2/4")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := DecodeRat(input)
		if err != nil {
			return
		}
		enc := EncodeRat(r)
		r2, err := DecodeRat(enc)
		if err != nil {
			t.Fatalf("decode of own encoding %q: %v", enc, err)
		}
		if !r.Equal(r2) {
			t.Fatalf("decode(encode(%q)) = %v, want %v", input, r2, r)
		}
		if EncodeRat(r2) != enc {
			t.Fatalf("encoding not a fixed point: %q -> %q", enc, EncodeRat(r2))
		}
		// The wire format carries rationals as JSON strings; a full JSON
		// round trip must preserve the canonical form.
		blob, err := json.Marshal(enc)
		if err != nil {
			t.Fatalf("marshal %q: %v", enc, err)
		}
		var back string
		if err := json.Unmarshal(blob, &back); err != nil || back != enc {
			t.Fatalf("JSON round trip %q -> %q (err %v)", enc, back, err)
		}
	})
}

// FuzzMechanismField throws arbitrary strings at the "mechanism" wire field
// of /v1/allocate. The contract under fuzz: the server never crashes, and
// the answer is exactly 200 for a registered name (or the empty default)
// and 400 unknown_mechanism for everything else — no third outcome, no
// case folding, no trimming.
func FuzzMechanismField(f *testing.F) {
	f.Add("")
	f.Add("bd")
	f.Add("pr")
	f.Add("eqsplit")
	f.Add("quantum")
	f.Add("BD")
	f.Add("bd ")
	f.Add(" bd")
	f.Add("bd\x00")
	f.Add("bd;m=pr")
	f.Add("механизм")

	srv, err := New(Config{Logger: discardLogger()})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)
	f.Cleanup(func() { srv.Close() })
	known := mechanism.Names()

	f.Fuzz(func(t *testing.T, name string) {
		status, raw := postJSON(t, ts.URL, "/v1/allocate",
			AllocateRequest{Graph: WireGraph{Ring: []string{"1", "2", "3"}}, Mechanism: name})
		if name == "" || slices.Contains(known, name) {
			if status != 200 {
				t.Fatalf("registered mechanism %q rejected: %d %s", name, status, raw)
			}
			return
		}
		if status != 400 {
			t.Fatalf("unknown mechanism %q: status %d %s", name, status, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Code != CodeUnknownMechanism {
			t.Fatalf("unknown mechanism %q: body %s (err %v)", name, raw, err)
		}
	})
}

package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/par"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// CacheSize bounds the instance LRU by graph count (default 128;
	// negative disables caching entirely).
	CacheSize int
	// PoolSize bounds concurrent heavy computations (≤ 0 = GOMAXPROCS).
	PoolSize int
	// RequestTimeout bounds one computation (default 30s). It is enforced
	// server-side: the deadline context reaches the Dinkelbach/DP loops.
	RequestTimeout time.Duration
	// QueueTimeout bounds the wait for a pool slot (default 5s); requests
	// that cannot be admitted in time fail with 503.
	QueueTimeout time.Duration
	// BatchWindow is how long the first /v1/ratio request for an instance
	// holds its batch open for others to join (default 0: join-in-flight
	// batching only, no added latency).
	BatchWindow time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
	// TraceBuffer bounds the number of finished request traces retained for
	// /debug/trace?id= (default 256; negative disables request tracing —
	// no per-request span trees, no stage metrics).
	TraceBuffer int
	// TraceRetention expires buffered traces by age (default 10m); an
	// expired id answers 404 like an evicted one.
	TraceRetention time.Duration
	// TraceMaxSpans caps the spans recorded per trace (default 4096);
	// excess spans are dropped and counted on the trace.
	TraceMaxSpans int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// MaxQueueDepth sheds load before queueing: when this many requests are
	// already waiting for a pool slot, new compute requests are rejected
	// immediately with 429 + Retry-After instead of queueing to a likely
	// timeout, and /readyz reports not-ready. Default 0 = 4× the pool
	// capacity; negative disables shedding (queue timeout still applies).
	MaxQueueDepth int
	// Chaos installs a fault injector on every request and batch context,
	// arming the registered injection sites (see internal/fault). nil — the
	// default — disables injection entirely; cmd/irshared only sets it when
	// both -chaos and -chaos-allow are given.
	Chaos *fault.Injector
	// DataDir enables the durable /v1/jobs subsystem: the crash-safe job
	// store (WAL + snapshot) lives here, and queued/running jobs found at
	// startup are recovered and resumed from their last checkpoint. Empty —
	// the default — disables the jobs API (501 jobs_disabled).
	DataDir string
	// NodeID identifies this process to cluster routers: /healthz and
	// /readyz echo it, so a probe can detect a backend that was replaced
	// behind the same address. Default: the hostname ("irshared" when even
	// that is unavailable).
	NodeID string
	// OnJobCheckpoint, when set, is invoked after every durably persisted
	// job checkpoint with the job ID and the next index to execute. Cluster
	// routers use it (via daemon plumbing) as the lease-renewal heartbeat.
	// It runs on the job's worker goroutine — keep it fast and non-blocking.
	OnJobCheckpoint func(id string, nextIndex int)
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = obs.DefaultCapacity
	}
	if c.TraceBuffer < 0 {
		c.TraceBuffer = 0 // tracing disabled
	}
	if c.TraceRetention <= 0 {
		c.TraceRetention = obs.DefaultRetention
	}
	if c.TraceMaxSpans <= 0 {
		c.TraceMaxSpans = obs.DefaultMaxSpans
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 4 * par.Workers(c.PoolSize)
	}
	if c.MaxQueueDepth < 0 {
		c.MaxQueueDepth = 0 // shedding disabled
	}
	if c.NodeID == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			c.NodeID = host
		} else {
			c.NodeID = "irshared"
		}
	}
	return c
}

// Server is the irshared service: five /v1 compute endpoints over the
// shared cache/pool/batcher, plus /healthz and /metrics. Construct with
// New, mount via Handler, and drain with http.Server.Shutdown — the pool
// empties as in-flight requests finish, so shutdown is graceful by
// construction.
type Server struct {
	cfg       Config
	pool      *par.Limiter
	cache     *instanceCache
	batch     *batcher
	metrics   *metrics
	collector *obs.Collector // nil when tracing is disabled
	log       *slog.Logger

	// jobStore/jobSched are the durable jobs subsystem, nil unless
	// Config.DataDir is set.
	jobStore *jobs.Store
	jobSched *jobs.Scheduler

	// corruptCert, when non-nil, mutates every freshly built certificate
	// before the server's solver-free self-check. Test-only: it exercises the
	// cert_invalid path, proving the self-check really gates the response.
	corruptCert func(c any)
}

// New constructs a Server from cfg. With a DataDir configured it also opens
// the durable job store, recovers any jobs a previous process left behind
// (a failure here fails the boot — a broken store must not silently drop
// acknowledged work), and starts the scheduler; call Close to flush and
// release the store on shutdown.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var col *obs.Collector
	if cfg.TraceBuffer > 0 {
		col = obs.NewCollector(obs.CollectorConfig{
			Capacity:         cfg.TraceBuffer,
			Retention:        cfg.TraceRetention,
			MaxSpansPerTrace: cfg.TraceMaxSpans,
		})
	}
	s := &Server{
		cfg:       cfg,
		pool:      par.NewLimiter(cfg.PoolSize),
		cache:     newInstanceCache(cfg.CacheSize),
		batch:     newBatcher(cfg.BatchWindow),
		metrics:   newMetrics(),
		collector: col,
		log:       cfg.Logger,
	}
	// Panics contained inside detached batch computations never reach the
	// handler barrier, so the batcher reports them for panics_total here.
	s.batch.onPanic = func() { s.metrics.panics.Add(1) }
	if cfg.DataDir != "" {
		store, err := jobs.Open(cfg.DataDir, jobs.StoreConfig{})
		if err != nil {
			return nil, err
		}
		// The scheduler base context carries the chaos injector (when armed)
		// into job execution, checkpoint appends, and recovery — the
		// jobs.wal.append and jobs.recover sites fire there.
		base := fault.ContextWith(context.Background(), cfg.Chaos)
		sched, err := jobs.NewScheduler(jobs.SchedulerConfig{
			Store:        store,
			Pool:         s.pool,
			Run:          s.runJob,
			Base:         base,
			Logger:       cfg.Logger,
			OnCheckpoint: cfg.OnJobCheckpoint,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		n, err := sched.Recover(base)
		if err != nil {
			sched.Close()
			store.Close()
			return nil, err
		}
		if n > 0 {
			cfg.Logger.Info("recovered jobs", "count", n, "data_dir", cfg.DataDir)
		}
		sched.Start()
		s.jobStore, s.jobSched = store, sched
	}
	return s, nil
}

// Close stops the job scheduler (running jobs checkpoint and requeue for
// the next boot) and closes the job store. Safe on a server without jobs,
// and safe to call after (or concurrently with) http.Server.Shutdown.
func (s *Server) Close() error {
	if s.jobSched != nil {
		s.jobSched.Close()
	}
	if s.jobStore != nil {
		return s.jobStore.Close()
	}
	return nil
}

// Collector exposes the server's trace collector (nil when tracing is
// disabled); tests and embedding daemons use it to inspect traces directly.
func (s *Server) Collector() *obs.Collector { return s.collector }

// Handler returns the service's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decompose", s.instrument("/v1/decompose", s.handleDecompose))
	mux.HandleFunc("POST /v1/allocate", s.instrument("/v1/allocate", s.handleAllocate))
	mux.HandleFunc("POST /v1/utilities", s.instrument("/v1/utilities", s.handleUtilities))
	mux.HandleFunc("POST /v1/ratio", s.instrument("/v1/ratio", s.handleRatio))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("GET /v1/mechanisms", s.instrument("/v1/mechanisms", s.handleMechanisms))
	mux.HandleFunc("POST /v1/tournament", s.instrument("/v1/tournament", s.handleTournament))
	mux.HandleFunc("POST /v1/scenario", s.instrument("/v1/scenario", s.handleScenario))
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobCancel))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter records the status code for logging and metrics, and whether
// the response has started — the panic barrier may only write an error body
// if the handler had not begun its (now abandoned) success response.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with body limits, logging and metrics. For the
// /v1 compute endpoints it additionally opens a per-request trace in the
// collector: the handler's decode/admit/compute/write stages and every
// solver span underneath them land in one tree, retrievable afterwards at
// /debug/trace?id= using the id echoed in the X-Trace-Id response header.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	traced := s.collector != nil && strings.HasPrefix(endpoint, "/v1/")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		if traced {
			tr := s.collector.NewTrace(endpoint)
			w.Header().Set("X-Trace-Id", strconv.FormatUint(tr.ID(), 10))
			r = r.WithContext(tr.Context(r.Context()))
			defer tr.Finish()
		}
		if s.cfg.Chaos != nil {
			r = r.WithContext(fault.ContextWith(r.Context(), s.cfg.Chaos))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.contain(sw, r, h)
		elapsed := time.Since(start)
		if sp := obs.FromContext(r.Context()); sp != nil {
			sp.SetAttr("status", strconv.Itoa(sw.code))
		}
		s.metrics.observe(endpoint, sw.code, elapsed)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("endpoint", endpoint),
			slog.String("method", r.Method),
			slog.Int("status", sw.code),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// contain runs the handler behind the server's panic barrier: a panic —
// injected by chaos testing or real — is converted into a 500 with code
// internal_panic (when the response has not started), counted in
// panics_total, and recorded as an event on the request's trace span. One
// poisoned request never takes the process down.
func (s *Server) contain(sw *statusWriter, r *http.Request, h http.HandlerFunc) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		s.metrics.panics.Add(1)
		var stack []byte
		if pe, ok := rec.(*par.PanicError); ok {
			stack = pe.Stack
		}
		if sp := obs.FromContext(r.Context()); sp != nil {
			sp.AddEvent("panic_contained", "value", fmt.Sprint(rec))
		}
		s.log.LogAttrs(r.Context(), slog.LevelError, "panic contained",
			slog.String("endpoint", r.URL.Path),
			slog.String("value", fmt.Sprint(rec)),
			slog.String("stack", string(stack)),
		)
		if !sw.wrote {
			writeErrorDetail(sw, http.StatusInternalServerError, CodeInternalPanic,
				"computation panicked; the panic was contained and the request may be retried",
				fmt.Sprint(rec))
		} else if sw.code < http.StatusBadRequest {
			// The success response is torn mid-body; reflect that in the
			// logged/metered status at least.
			sw.code = http.StatusInternalServerError
		}
	}()
	h(sw, r)
}

// retryAfter stamps the conventional back-off hint on a shed or busy
// response; clients (including client.Client) honor it as a floor.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// saturated reports whether the pool wait queue is at or beyond the
// shedding threshold.
func (s *Server) saturated() bool {
	return s.cfg.MaxQueueDepth > 0 && s.pool.Waiting() >= s.cfg.MaxQueueDepth
}

// admit takes a pool slot and a computation context for one request. The
// returned release must be called when the computation finishes; ok=false
// means the request was rejected (response already written). Requests
// arriving while the wait queue is saturated are shed immediately (429 +
// Retry-After) instead of queueing toward a near-certain timeout.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (ctx context.Context, release func(), ok bool) {
	if s.saturated() {
		s.metrics.shed.Add(1)
		retryAfter(w, time.Second)
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, "server overloaded: pool wait queue is saturated")
		return nil, nil, false
	}
	_, sp := obs.Start(r.Context(), "server.admit")
	queueCtx, cancelQueue := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
	err := s.pool.Acquire(queueCtx)
	cancelQueue()
	sp.End()
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away while queued; nothing useful to write.
			writeError(w, statusClientClosed, CodeClientClosed, "client canceled while queued")
		} else {
			retryAfter(w, s.cfg.QueueTimeout)
			writeError(w, http.StatusServiceUnavailable, CodeBusy, "server busy: no worker slot within queue timeout")
		}
		return nil, nil, false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	release = func() { cancel(); s.pool.Release() }
	// The injection hit below may panic (KindPanic chaos rules). At this
	// point the slot is held but the handler's defer release() does not exist
	// yet, so an escaping panic would leak the slot and eventually deadlock
	// the pool. Release on the way out, then rethrow to the barrier.
	defer func() {
		if rec := recover(); rec != nil {
			release()
			panic(rec)
		}
	}()
	if err := fault.Hit(ctx, fault.SiteServerCompute); err != nil {
		release()
		writeComputeError(w, r, err)
		return nil, nil, false
	}
	return ctx, release, true
}

// computeBase builds the context for a batched computation: bounded by the
// server's request timeout but NOT by any single request's lifetime (the
// batcher cancels it when the batch ends or every participant departs).
// The chaos injector rides along so detached batch work is faultable too.
func (s *Server) computeBase() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	return fault.ContextWith(ctx, s.cfg.Chaos), cancel
}

// HealthzResponse is the body of GET /healthz. NodeID lets a cluster
// router detect a backend process swapped behind a reused address.
type HealthzResponse struct {
	Status string `json:"status"`
	NodeID string `json:"node_id"`
}

// ReadyzResponse is the body of GET /readyz when the node is ready.
// QueueDepth counts work waiting for a worker slot — queued compute
// requests plus queued durable jobs — which routers use to steer placement;
// Waiting is the pre-cluster spelling of the compute wait count, kept so
// existing probes don't break.
type ReadyzResponse struct {
	Status     string `json:"status"`
	NodeID     string `json:"node_id"`
	QueueDepth int    `json:"queue_depth"`
	Waiting    string `json:"waiting"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok", NodeID: s.cfg.NodeID})
}

// queueDepth is the total backlog behind the worker pool: requests waiting
// for a slot plus durable jobs queued but not yet running.
func (s *Server) queueDepth() int {
	depth := s.pool.Waiting()
	if s.jobSched != nil {
		depth += s.jobSched.Stats().QueueDepth
	}
	return depth
}

// handleReadyz is the readiness probe: liveness (/healthz) says the process
// runs; readiness says it can take more compute work. When the wait queue
// is saturated it answers 429 with Retry-After so load balancers and
// clients back off before burning the queue timeout. The body carries the
// stable node ID and current queue depth for cluster routers.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.saturated() {
		retryAfter(w, time.Second)
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, "not ready: pool wait queue is saturated")
		return
	}
	writeJSON(w, http.StatusOK, ReadyzResponse{
		Status:     "ready",
		NodeID:     s.cfg.NodeID,
		QueueDepth: s.queueDepth(),
		Waiting:    strconv.Itoa(s.pool.Waiting()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, gauges{
		poolCap:        s.pool.Cap(),
		poolInUse:      s.pool.InUse(),
		poolWaiting:    s.pool.Waiting(),
		cacheEntries:   s.cache.len(),
		cacheHits:      s.cache.hits.Load(),
		cacheMisses:    s.cache.misses.Load(),
		cacheEvictions: s.cache.evictions.Load(),
		batchRuns:      s.batch.runs.Load(),
		batchJoins:     s.batch.joins.Load(),
	})
	s.writeJobsMetrics(w)
	if s.collector != nil {
		s.collector.WritePrometheus(w, "irshared_")
	}
}

package bottleneck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// bruteMaxN bounds the exhaustive oracle; 2^16 subsets with exact
// arithmetic is still instantaneous, larger graphs should use a real engine.
const bruteMaxN = 16

// bruteOracle solves the λ-subproblem by enumerating every subset. It is
// the test oracle for the flow and DP engines.
type bruteOracle struct {
	g      *graph.Graph
	nbMask []uint32 // bitmask of Γ(v)
}

func newBruteOracle(g *graph.Graph) (*bruteOracle, error) {
	if g.N() > bruteMaxN {
		return nil, fmt.Errorf("bottleneck: brute-force engine limited to %d vertices, got %d", bruteMaxN, g.N())
	}
	o := &bruteOracle{g: g, nbMask: make([]uint32, g.N())}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			o.nbMask[v] |= 1 << uint(u)
		}
	}
	return o, nil
}

// eval computes f_λ(S) for the subset encoded by mask.
func (o *bruteOracle) eval(lambda numeric.Rat, mask uint32) numeric.Rat {
	var gamma uint32
	wS := numeric.Zero
	for v := 0; v < o.g.N(); v++ {
		if mask&(1<<uint(v)) != 0 {
			gamma |= o.nbMask[v]
			wS = wS.Add(o.g.Weight(v))
		}
	}
	wG := numeric.Zero
	for v := 0; v < o.g.N(); v++ {
		if gamma&(1<<uint(v)) != 0 {
			wG = wG.Add(o.g.Weight(v))
		}
	}
	return wG.Sub(lambda.Mul(wS))
}

// minimum returns the subproblem minimum over all subsets.
func (o *bruteOracle) minimum(lambda numeric.Rat) numeric.Rat {
	n := o.g.N()
	best := numeric.Zero // S = ∅
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		if v := o.eval(lambda, mask); v.Less(best) {
			best = v
		}
	}
	return best
}

func (o *bruteOracle) value(lambda numeric.Rat) (numeric.Rat, numeric.Rat) {
	best := o.minimum(lambda)
	// Weight of the heaviest minimizer (any minimizer serves Dinkelbach).
	wS := numeric.Zero
	n := o.g.N()
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		if !o.eval(lambda, mask).Equal(best) {
			continue
		}
		w := numeric.Zero
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				w = w.Add(o.g.Weight(v))
			}
		}
		wS = wS.Max(w)
	}
	return best, wS
}

func (o *bruteOracle) maximal(lambda numeric.Rat) []int {
	best := o.minimum(lambda)
	n := o.g.N()
	var union uint32
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		if o.eval(lambda, mask).Equal(best) {
			union |= mask
		}
	}
	var S []int
	for v := 0; v < n; v++ {
		if union&(1<<uint(v)) != 0 {
			S = append(S, v)
		}
	}
	return S
}

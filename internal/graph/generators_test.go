package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

func TestGeneratorsBasicShapes(t *testing.T) {
	ring := Ring(numeric.Ints(1, 2, 3, 4))
	if !ring.IsRing() || ring.M() != 4 {
		t.Error("Ring wrong")
	}
	path := Path(numeric.Ints(1, 2, 3))
	if !path.IsPath() || path.M() != 2 {
		t.Error("Path wrong")
	}
	comp := Complete(numeric.Ints(1, 1, 1, 1))
	if comp.M() != 6 {
		t.Error("Complete wrong")
	}
	star := Star(numeric.Ints(1, 2, 3))
	if star.Degree(0) != 2 || star.M() != 2 {
		t.Error("Star wrong")
	}
	kab := CompleteBipartite(2, 3, numeric.Ints(1, 1, 1, 1, 1))
	if kab.M() != 6 || kab.HasEdge(0, 1) {
		t.Error("CompleteBipartite wrong")
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Ring(numeric.Ints(1, 2)) },
		func() { Path(nil) },
		func() { Complete(nil) },
		func() { Star(numeric.Ints(1)) },
		func() { CompleteBipartite(0, 2, numeric.Ints(1, 1)) },
		func() { Theta(0, 0, 1, numeric.Ints(1, 1, 1)) },
		func() { Theta(1, 1, 1, numeric.Ints(1, 1)) },
		func() { Theta(-1, 1, 1, nil) },
		func() { RandomTree(rand.New(rand.NewSource(1)), 0, DistUnit) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTheta(t *testing.T) {
	// Paths of internal lengths 1, 2, 3 → 2 + 6 = 8 vertices,
	// edges: (1+1) + (2+1) + (3+1) = 9.
	ws := numeric.Ints(10, 20, 1, 2, 3, 4, 5, 6)
	g := Theta(1, 2, 3, ws)
	if g.N() != 8 || g.M() != 9 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("theta not connected")
	}
	if g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Fatalf("terminal degrees %d, %d", g.Degree(0), g.Degree(1))
	}
	for v := 2; v < 8; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("internal vertex %d has degree %d", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// One empty path is allowed: direct edge between terminals.
	g2 := Theta(0, 1, 1, numeric.Ints(1, 1, 1, 1))
	if !g2.HasEdge(0, 1) || g2.M() != 5 {
		t.Fatalf("theta with direct edge wrong: M=%d", g2.M())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(15) + 1
		g := RandomTree(rng, n, WeightDist(rng.Intn(4)))
		if g.M() != n-1 {
			t.Fatalf("tree with %d vertices has %d edges", n, g.M())
		}
		if !g.IsConnected() {
			t.Fatal("tree not connected")
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWeightDistStrings(t *testing.T) {
	for d, want := range map[WeightDist]string{
		DistUniform:    "uniform[1,100]",
		DistSkewed:     "skewed",
		DistPowers:     "powers-of-two",
		DistUnit:       "unit",
		WeightDist(99): "WeightDist(99)",
	} {
		if d.String() != want {
			t.Errorf("%d: %q != %q", int(d), d.String(), want)
		}
	}
}

func TestRandomWeightsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, d := range []WeightDist{DistUniform, DistSkewed, DistPowers, DistUnit} {
		ws := RandomWeights(rng, 200, d)
		for _, w := range ws {
			if w.Sign() <= 0 {
				t.Fatalf("%v produced non-positive weight %v", d, w)
			}
		}
	}
	if DistUnit.String() == "" {
		t.Fatal("unreachable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown distribution did not panic")
		}
	}()
	RandomWeights(rng, 1, WeightDist(42))
}

func TestFig1GraphShape(t *testing.T) {
	g := Fig1Graph()
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Label(0) != "v1" || g.Label(5) != "v6" {
		t.Error("labels wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarbellShape(t *testing.T) {
	ws := make([]numeric.Rat, 9)
	for i := range ws {
		ws[i] = numeric.One
	}
	g := Barbell(3, 3, ws)
	if g.N() != 9 {
		t.Fatalf("N=%d", g.N())
	}
	// Two K_3 (3 edges each) plus a 4-edge bridge path 2-3-4-5-6.
	if g.M() != 3+3+4 {
		t.Fatalf("M=%d", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("barbell disconnected")
	}
	if g.Degree(3) != 2 || g.Degree(0) != 2 || g.Degree(2) != 3 {
		t.Fatalf("degrees: %d %d %d", g.Degree(3), g.Degree(0), g.Degree(2))
	}
	// bridge = 0: the cliques share one direct edge.
	g0 := Barbell(2, 0, ws[:4])
	if g0.M() != 1+1+1 || !g0.IsConnected() {
		t.Fatalf("bridge-0 barbell: M=%d", g0.M())
	}
}

func TestRandomBarbellAndSmallWorldConnectedDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, n := range []int{5, 8, 13} {
			b := RandomBarbell(rand.New(rand.NewSource(seed)), n, DistUniform)
			if b.N() != n || !b.IsConnected() {
				t.Fatalf("barbell seed=%d n=%d: N=%d connected=%v", seed, n, b.N(), b.IsConnected())
			}
			s := SmallWorld(rand.New(rand.NewSource(seed)), n, 0.2, DistUniform)
			if s.N() != n || !s.IsConnected() {
				t.Fatalf("smallworld seed=%d n=%d: N=%d connected=%v", seed, n, s.N(), s.IsConnected())
			}
			s2 := SmallWorld(rand.New(rand.NewSource(seed)), n, 0.2, DistUniform)
			if fmt.Sprint(s.Edges()) != fmt.Sprint(s2.Edges()) {
				t.Fatalf("smallworld not deterministic for seed %d", seed)
			}
		}
	}
}

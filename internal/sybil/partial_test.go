package sybil

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func mustParseRing(t *testing.T, weights []string) *graph.Graph {
	t.Helper()
	ws := make([]numeric.Rat, len(weights))
	for i, s := range weights {
		r, err := numeric.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = r
	}
	return graph.Ring(ws)
}

// TestRingSweepCancelEveryIndex cancels the sweep after every possible grid
// index and checks the partial-result contract at each cut point: the call
// returns nil error with Partial set, the completed prefix is bit-identical
// to the same points of the uncanceled run, and resuming from NextIndex
// reconstructs the full sweep exactly.
func TestRingSweepCancelEveryIndex(t *testing.T) {
	g := mustParseRing(t, []string{"1", "3/2", "2", "1/2", "5"})
	const grid = 8
	full, err := RingSweep(g, 1, SweepOptions{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || len(full.Points) != grid+1 {
		t.Fatalf("full sweep unexpectedly partial: %+v", full)
	}
	for cut := 0; cut <= grid; cut++ {
		ctx, cancel := context.WithCancel(context.Background())
		opts := SweepOptions{
			Grid:    grid,
			Workers: 1, // deterministic ascending completion order
			Progress: func(i int) {
				if i == cut {
					cancel()
				}
			},
		}
		res, err := RingSweepCtx(ctx, g, 1, opts)
		cancel()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Workers=1 guarantees indices complete in order, so cancellation at
		// index `cut` yields exactly the prefix [0, cut].
		if want := cut + 1; len(res.Points) != want {
			t.Fatalf("cut %d: got %d points, want %d", cut, len(res.Points), want)
		}
		wantPartial := cut < grid
		if res.Partial != wantPartial {
			t.Fatalf("cut %d: Partial=%v, want %v", cut, res.Partial, wantPartial)
		}
		if res.Start != 0 || res.NextIndex != cut+1 {
			t.Fatalf("cut %d: Start=%d NextIndex=%d", cut, res.Start, res.NextIndex)
		}
		for i, p := range res.Points {
			if !p.W1.Equal(full.Points[i].W1) || !p.U.Equal(full.Points[i].U) {
				t.Fatalf("cut %d point %d: partial (%v, %v) != full (%v, %v)",
					cut, i, p.W1, p.U, full.Points[i].W1, full.Points[i].U)
			}
		}
		if !res.Partial {
			continue
		}
		// Resume from the checkpoint; the tail must complete and concatenate
		// into the exact full sweep, and the combined best must match.
		tail, err := RingSweep(g, 1, SweepOptions{Grid: grid, Start: res.NextIndex})
		if err != nil {
			t.Fatalf("cut %d resume: %v", cut, err)
		}
		if tail.Partial || tail.Start != res.NextIndex || tail.NextIndex != grid+1 {
			t.Fatalf("cut %d resume: %+v", cut, tail)
		}
		merged := append(append([]SweepPoint(nil), res.Points...), tail.Points...)
		if len(merged) != len(full.Points) {
			t.Fatalf("cut %d: merged %d points, want %d", cut, len(merged), len(full.Points))
		}
		for i := range merged {
			if !merged[i].W1.Equal(full.Points[i].W1) || !merged[i].U.Equal(full.Points[i].U) {
				t.Fatalf("cut %d merged point %d differs from full sweep", cut, i)
			}
		}
		best := merged[0]
		for _, p := range merged[1:] {
			if best.U.Less(p.U) {
				best = p
			}
		}
		if !best.U.Equal(full.BestU) || !best.W1.Equal(full.BestW1) {
			t.Fatalf("cut %d: merged best (%v, %v) != full best (%v, %v)",
				cut, best.W1, best.U, full.BestW1, full.BestU)
		}
	}
}

// TestRingSweepAlreadyCanceled verifies a context dead on arrival yields an
// empty partial result, not an error: zero points, NextIndex == Start, and
// the neutral ratio 1.
func TestRingSweepAlreadyCanceled(t *testing.T) {
	g := mustParseRing(t, []string{"1", "2", "3"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RingSweepCtx(ctx, g, 0, SweepOptions{Grid: 4})
	if err != nil {
		// NewInstanceCtx may itself observe the dead context; either behavior
		// (error from instance construction, or empty partial) is acceptable,
		// but if the instance was built the sweep must return the contract
		// result. Distinguish by building the instance eagerly below.
		t.Skipf("instance construction observed cancellation first: %v", err)
	}
	if !res.Partial || len(res.Points) != 0 || res.NextIndex != 0 {
		t.Fatalf("expected empty partial result, got %+v", res)
	}
	if !res.Ratio.Equal(numeric.One) {
		t.Fatalf("empty partial ratio = %v, want 1", res.Ratio)
	}
}

// TestRingSweepStartValidation pins the Start bounds check.
func TestRingSweepStartValidation(t *testing.T) {
	g := mustParseRing(t, []string{"1", "2", "3"})
	for _, start := range []int{-1, 6} {
		if _, err := RingSweep(g, 0, SweepOptions{Grid: 5, Start: start}); err == nil {
			t.Fatalf("Start=%d accepted", start)
		}
	}
	// Start == Grid+0 is the last index and legal; Start == Grid yields one point.
	res, err := RingSweep(g, 0, SweepOptions{Grid: 5, Start: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Partial {
		t.Fatalf("Start=Grid sweep: %+v", res)
	}
}

#!/bin/sh
# Repository gate: build, vet, and the full test suite under the race
# detector (the incremental split engine and the parallel decomposition are
# exercised concurrently by their tests). Run from the repo root:
#
#	./ci.sh
set -eux

go build ./...
go vet ./...
go test -race ./...

# Focused race pass on the observability layer and the server: the span
# recorder is mutated from every solver goroutine and the trace collector
# is shared across requests, so these two packages get a dedicated -count=2
# run to shake out interleavings the full-suite pass may not hit.
go test -race -count=2 ./internal/obs ./internal/server

# Resilience: a dedicated -count=2 race pass over the fault-injection
# registry and the retrying client (deterministic injection counters, the
# backoff jitter RNG, and SweepAll's resume loop are all concurrency-facing),
# then a chaos smoke — the binary's -chaos/-chaos-allow gating and a live
# fault-injected boot via the cmd tests. The full chaos replay (100-instance
# corpus under faults at every site, client retries converging bit-identically)
# runs as part of the full-suite pass above.
go test -race -count=2 ./internal/fault ./client
go test ./cmd/irshared -run 'TestChaos' -count=1

# Durable jobs: a dedicated -count=2 race pass (the store serializes WAL
# appends against compaction and the scheduler races submit/cancel/shutdown
# against its workers), then the crash-recovery smoke — a real child
# process SIGKILLed mid-grid must recover from its -data-dir and finish
# bit-identically.
go test -race -count=2 ./internal/jobs
go test ./cmd/irshared -run 'TestKillAndRecover' -count=1

# Refresh the recorded disabled-vs-enabled tracing overhead numbers.
go run ./cmd/benchjson -bench 'Obs' -pkg ./internal/obs -out BENCH_obs.json \
	-note "disabled-vs-enabled recorder overhead: primitives (Start/AddInt/End) and end-to-end DecomposeCtx on a 64-ring"

# Refresh the disabled-injection overhead numbers (fault.Hit in the hot
# loops with no injector installed must stay within noise of the baseline).
go run ./cmd/benchjson -bench 'OptimizeSplit$/n=129' -out BENCH_fault.json \
	-note "disabled-injection overhead check: BenchmarkOptimizeSplit n=129 with fault sites live but no injector installed; compare seed_baseline"

# Refresh the job-store durability numbers: un-synced WAL append throughput
# (the per-point checkpoint hot path), fsync'd state transitions, and full
# recovery (replay + requeue) of a 10k-record store.
go run ./cmd/benchjson -bench 'WAL|Recover' -pkg ./internal/jobs -out BENCH_jobs.json \
	-note "durable job store: WAL append (unsynced checkpoint path vs fsync'd state transition) and 10k-record recovery replay"

# Fuzz smoke: run each native fuzz target briefly against its seed corpus
# plus fresh mutations. Parser/codec regressions (panics, unbounded
# allocation) surface here long before a full fuzzing campaign.
go test ./internal/graph -run '^$' -fuzz '^FuzzParseGraph$' -fuzztime 10s
go test ./internal/server -run '^$' -fuzz '^FuzzRatDecode$' -fuzztime 10s

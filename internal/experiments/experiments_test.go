package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/numeric"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.Add(1, "x")
	tb.Add("yy", 2)
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== demo ==", "a   bb", "1   x", "yy  2", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,x\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("q", "c")
	tb.Add(`a,"b"`)
	if want := "c\n\"a,\"\"b\"\"\"\n"; tb.CSV() != want {
		t.Errorf("CSV = %q, want %q", tb.CSV(), want)
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	tb.Add(1)
}

func TestE1(t *testing.T) {
	tb, err := E1Fig1()
	if err != nil {
		t.Fatalf("%v\n%s", err, tb)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
}

func TestE2(t *testing.T) {
	tabs, err := E2Fig2(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables: %d", len(tabs))
	}
	for _, tb := range tabs {
		if len(tb.Rows) != 13 {
			t.Errorf("%s: %d rows", tb.Title, len(tb.Rows))
		}
	}
}

func TestE3(t *testing.T) {
	if _, err := E3Fig3(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE4(t *testing.T) {
	if _, err := E4Fig4(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE5(t *testing.T) {
	if _, err := E5Theorem8UpperBound(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE6(t *testing.T) {
	tb, err := E6LowerBoundFamily([]int{0, 1, 2}, numeric.FromInt(10000), 48)
	if err != nil {
		t.Fatalf("%v\n%s", err, tb)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
}

func TestE7(t *testing.T) {
	if _, err := E7Lemma9(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE8(t *testing.T) {
	if _, err := E8Theorem10(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE9(t *testing.T) {
	if _, err := E9StageDeltas(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE10(t *testing.T) {
	if _, err := E10DynamicsConvergence(1 << 12); err != nil {
		t.Fatal(err)
	}
}

func TestE11(t *testing.T) {
	if _, err := E11Misreport(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE12(t *testing.T) {
	tb, err := E12SolverAblation([]int{8, 16}, 2)
	if err != nil {
		t.Fatalf("%v\n%s", err, tb)
	}
}

func TestE13(t *testing.T) {
	if _, err := E13GeneralConjecture(Quick); err != nil {
		t.Fatal(err)
	}
}

func TestE14(t *testing.T) {
	if _, err := E14SwarmAttack(4000); err != nil {
		t.Fatal(err)
	}
}

func TestE15(t *testing.T) {
	if _, err := E15AsyncRobustness(8000); err != nil {
		t.Fatal(err)
	}
}

func TestE16(t *testing.T) {
	tb, err := E16CoalitionAttack(4, 6)
	if err != nil {
		t.Fatalf("%v\n%s", err, tb)
	}
}

func TestE17(t *testing.T) {
	tb, err := E17FreeRiding(6000)
	if err != nil {
		t.Fatalf("%v\n%s", err, tb)
	}
}

func TestRunFilteredValidation(t *testing.T) {
	var sb strings.Builder
	if err := RunFiltered(&sb, Quick, []string{"E99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	if err := RunFiltered(&sb, Quick, []string{"e1"}); err != nil {
		t.Fatalf("case-insensitive id rejected: %v", err)
	}
	if !strings.Contains(sb.String(), "1 experiments completed") {
		t.Fatalf("filtered run output wrong:\n%s", sb.String())
	}
	if len(IDs()) != 17 {
		t.Fatalf("expected 17 experiments, got %d", len(IDs()))
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	if err := RunAll(&sb, Quick); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "17 experiments completed") {
		t.Fatal("missing completion marker")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	files, err := WriteCSV(dir, Quick, []string{"E1", "E2"})
	if err != nil {
		t.Fatal(err)
	}
	// E1 produces one table, E2 three.
	if len(files) != 4 {
		t.Fatalf("wrote %d files, want 4: %v", len(files), files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pair,B,C,alpha,expected\n") {
		t.Fatalf("E1 CSV header wrong: %q", string(data)[:40])
	}
	if _, err := WriteCSV(dir, Quick, []string{"nope"}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

package dynamics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// runToEquilibrium simulates g and checks convergence to the Proposition 6
// utilities within tol.
func runToEquilibrium(t *testing.T, g *graph.Graph, damping, tol float64) *Result {
	t.Helper()
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	res, err := Run(g, Options{
		MaxRounds:       200000,
		Tol:             1e-13,
		Damping:         damping,
		TargetUtilities: d.Utilities(g),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.FinalUtilityError(); got > tol {
		t.Fatalf("utility error %v > %v after %d rounds (converged=%v)",
			got, tol, res.Rounds, res.Converged)
	}
	return res
}

func TestSingleEdgeImmediateFixedPoint(t *testing.T) {
	g := graph.Path(numeric.Ints(2, 3))
	res := runToEquilibrium(t, g, 0, 1e-9)
	if res.Rounds > 5 {
		t.Errorf("single edge took %d rounds", res.Rounds)
	}
	// Each sends its whole weight to the only neighbor.
	if math.Abs(res.X[0][0]-2) > 1e-12 || math.Abs(res.X[1][0]-3) > 1e-12 {
		t.Errorf("transfers %v", res.X)
	}
}

func TestHeavyMiddlePathConverges(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 100, 1))
	res := runToEquilibrium(t, g, 0, 1e-6)
	// Equilibrium: U_middle = 2, U_leaf = 50.
	if math.Abs(res.Utilities[1]-2) > 1e-6 || math.Abs(res.Utilities[0]-50) > 1e-6 {
		t.Errorf("utilities %v", res.Utilities)
	}
}

func TestUnitRingFixedPointImmediately(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1, 1, 1))
	res := runToEquilibrium(t, g, 0, 1e-12)
	if !res.Converged || res.Rounds > 3 {
		t.Errorf("unit ring: rounds=%d converged=%v", res.Rounds, res.Converged)
	}
}

func TestRandomRingsConvergeToProposition6(t *testing.T) {
	// Convergence is geometric for α < 1 pairs but only Θ(1/t) at
	// degenerate α = 1 equilibria where some equilibrium transfer is 0
	// (e.g. ring weights 512-512-1024: x_{01} → 0 like 1/t). The assertion
	// therefore accepts either a tiny final error or a demonstrated decay
	// by 100× from the initial error.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		d, err := bottleneck.Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, Options{MaxRounds: 100000, Tol: 1e-13, TargetUtilities: d.Utilities(g)})
		if err != nil {
			t.Fatal(err)
		}
		final := res.FinalUtilityError()
		initial := res.UtilityError[0]
		if final > 1e-5 && !(initial > 0 && final < initial/100) {
			t.Fatalf("trial %d (n=%d, w=%v): error %v (initial %v) after %d rounds",
				trial, n, g.Weights(), final, initial, res.Rounds)
		}
	}
}

func TestRandomConnectedGraphsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomConnected(rng, rng.Intn(8)+2, 0.4, graph.DistUniform)
		runToEquilibrium(t, g, 0, 1e-5)
	}
}

func TestCompleteGraphConverges(t *testing.T) {
	g := graph.Complete(numeric.Ints(3, 1, 4, 1, 5))
	runToEquilibrium(t, g, 0, 1e-6)
}

func TestErrorSeriesIsRecordedAndDecays(t *testing.T) {
	// Asymmetric leaves so the equal-split initial state is NOT already the
	// fixed point (with weights 1-100-1 it is, a cute degeneracy).
	g := graph.Path(numeric.Ints(1, 100, 2))
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{MaxRounds: 500, TargetUtilities: d.Utilities(g)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UtilityError) != res.Rounds+1 {
		t.Fatalf("error series length %d, rounds %d", len(res.UtilityError), res.Rounds)
	}
	if res.UtilityError[len(res.UtilityError)-1] >= res.UtilityError[0] {
		t.Errorf("error did not decay: first %v last %v",
			res.UtilityError[0], res.UtilityError[len(res.UtilityError)-1])
	}
}

func TestSublinearRateAtDegenerateEquilibrium(t *testing.T) {
	// Ring 512-512-1024 has α = 1 with equilibrium transfer x_{01} = 0; the
	// dynamics approaches it at rate Θ(1/t): ten times the rounds must cut
	// the error by roughly ten (we assert at least 5×).
	g := graph.Ring(numeric.Ints(512, 512, 1024))
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(rounds int) float64 {
		res, err := Run(g, Options{MaxRounds: rounds, Tol: 1e-300, TargetUtilities: d.Utilities(g)})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalUtilityError()
	}
	e1, e10 := errAt(2000), errAt(20000)
	if e10 >= e1/5 {
		t.Errorf("expected ~10x decay from 10x rounds, got %v -> %v", e1, e10)
	}
	if e10 > e1 || e1 > 1 {
		t.Errorf("errors out of range: %v, %v", e1, e10)
	}
}

func TestDampingStillConverges(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 7, 2, 9, 3))
	runToEquilibrium(t, g, 0.3, 1e-5)
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.RandomRing(rand.New(rand.NewSource(8)), 12, graph.DistUniform)
	seq, err := Run(g, Options{MaxRounds: 200, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := Run(g, Options{MaxRounds: 200, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.X {
		for j := range seq.X[v] {
			if seq.X[v][j] != parl.X[v][j] {
				t.Fatalf("parallel/sequential diverge at x[%d][%d]: %v vs %v",
					v, j, seq.X[v][j], parl.X[v][j])
			}
		}
	}
}

func TestOptionValidation(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 1))
	if _, err := Run(g, Options{Damping: 1.0}); err == nil {
		t.Error("damping 1.0 accepted")
	}
	if _, err := Run(g, Options{Damping: -0.1}); err == nil {
		t.Error("negative damping accepted")
	}
	if _, err := Run(g, Options{TargetUtilities: numeric.Ints(1)}); err == nil {
		t.Error("mismatched targets accepted")
	}
	if _, err := Run(graph.New(0), Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestZeroWeightVertexDoesNotNaN(t *testing.T) {
	g := graph.Path([]numeric.Rat{numeric.Zero, numeric.One, numeric.FromInt(3)})
	res, err := Run(g, Options{MaxRounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for v, u := range res.Utilities {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			t.Fatalf("utility of %d is %v", v, u)
		}
	}
}

func TestBDAllocationIsAFixedPoint(t *testing.T) {
	// Warm-starting the dynamics AT the exact BD allocation must keep it
	// there (up to float rounding): the allocation mechanism's output is a
	// proportional-response fixed point, including the symmetrized α = 1
	// self-pairs.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.RandomRing(rng, rng.Intn(8)+3, graph.WeightDist(rng.Intn(4)))
		} else {
			g = graph.RandomConnected(rng, rng.Intn(7)+2, 0.5, graph.DistUniform)
		}
		d, err := bottleneck.Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		a, err := allocation.Compute(g, d)
		if err != nil {
			t.Fatal(err)
		}
		init := make([][]float64, g.N())
		for v := 0; v < g.N(); v++ {
			init[v] = make([]float64, g.Degree(v))
			for j, u := range g.Neighbors(v) {
				init[v][j] = a.Get(v, u).Float64()
			}
		}
		res, err := Run(g, Options{MaxRounds: 50, Tol: 1e-300, InitialTransfers: init})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			for j, u := range g.Neighbors(v) {
				want := a.Get(v, u).Float64()
				if math.Abs(res.X[v][j]-want) > 1e-9*(want+1) {
					t.Fatalf("trial %d: transfer %d→%d drifted from %v to %v (w=%v)",
						trial, v, u, want, res.X[v][j], g.Weights())
				}
			}
		}
	}
}

func TestInitialTransfersValidation(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 1))
	if _, err := Run(g, Options{InitialTransfers: [][]float64{{1}}}); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := Run(g, Options{InitialTransfers: [][]float64{{1, 2}, {1}}}); err == nil {
		t.Error("wrong degree row accepted")
	}
}

func TestFinalUtilityErrorWithoutTargets(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 1))
	res, err := Run(g, Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.FinalUtilityError()) {
		t.Error("expected NaN without targets")
	}
}

package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
)

// CheckpointFunc persists a contiguous run of partial results starting at
// work-unit index start. Runners call it after each completed unit; the
// scheduler routes it to Store.AppendPoints.
type CheckpointFunc func(start int, pts []Point) error

// Runner executes one job: rec is a private clone carrying the spec and any
// checkpointed prefix (resume from rec.NextIndex), ckpt persists progress,
// and the returned bytes become the job's final Result. A context error
// means the job was canceled or the scheduler is shutting down — the
// scheduler requeues or cancels accordingly; any other error fails the job.
type Runner func(ctx context.Context, rec *Record, ckpt CheckpointFunc) ([]byte, error)

// Sentinel errors the API layer maps to its error catalogue.
var (
	// ErrNotFound: the job ID is not in the store.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrTerminal: the operation needs a live job but the job already
	// reached a terminal state.
	ErrTerminal = errors.New("jobs: job already terminal")
)

// SchedulerConfig wires a Scheduler. Store, Pool and Run are required.
type SchedulerConfig struct {
	Store *Store
	// Pool is the worker pool jobs share with the rest of the process (the
	// server passes its request pool, so background jobs and interactive
	// requests compete for the same bounded capacity).
	Pool *par.Limiter
	Run  Runner
	// Base is the root context of every job execution: canceled by Close,
	// and the carrier of the chaos injector when one is armed. nil means
	// context.Background().
	Base context.Context
	// Logger receives job lifecycle logs (default slog.Default()).
	Logger *slog.Logger
	// OnCheckpoint, when non-nil, observes every persisted checkpoint: the
	// job ID and its new NextIndex after the append. A cluster node uses it
	// as the lease-renewal hook — progress proves liveness, so an embedding
	// router can renew the node's lease without polling. Called on the
	// worker goroutine after the store append succeeds; keep it fast.
	OnCheckpoint func(id string, nextIndex int)
}

// Scheduler drains the job queue into the worker pool: higher Priority
// first, FIFO within a priority. One Scheduler owns all transitions of its
// store's jobs; readers go through the store directly.
type Scheduler struct {
	store  *Store
	pool   *par.Limiter
	run    Runner
	log    *slog.Logger
	onCkpt func(id string, nextIndex int)

	base context.Context
	stop context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobQueue
	running map[string]context.CancelFunc
	closed  bool
	started bool

	transitions map[State]int64
	ageCounts   []int64 // len(AgeBuckets())+1, last = +Inf
	ageSum      float64
	ageCount    int64
	deduped     int64
	recovered   int64

	wg sync.WaitGroup
}

// NewScheduler builds a Scheduler. Call Recover (optionally) and then Start.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.Store == nil || cfg.Pool == nil || cfg.Run == nil {
		return nil, fmt.Errorf("jobs: scheduler needs Store, Pool and Run")
	}
	if cfg.Base == nil {
		cfg.Base = context.Background()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	base, stop := context.WithCancel(cfg.Base)
	s := &Scheduler{
		store:       cfg.Store,
		pool:        cfg.Pool,
		run:         cfg.Run,
		log:         cfg.Logger,
		onCkpt:      cfg.OnCheckpoint,
		base:        base,
		stop:        stop,
		running:     make(map[string]context.CancelFunc),
		transitions: make(map[State]int64),
		ageCounts:   make([]int64, len(ageBuckets)+1),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Recover requeues every non-terminal job left in the store by a previous
// process: queued jobs as they are, running jobs demoted back to queued
// (their checkpointed prefix intact, so they resume where the crash cut
// them off). Each considered job is a jobs.recover fault-injection site; an
// injected or real error aborts recovery so a broken store fails the boot
// loudly instead of silently dropping work.
func (s *Scheduler) Recover(ctx context.Context) (int, error) {
	n := 0
	for _, rec := range s.store.Pending() {
		if err := fault.Hit(ctx, fault.SiteJobsRecover); err != nil {
			return n, fmt.Errorf("jobs: recover %s: %w", rec.ID, err)
		}
		if rec.State == StateRunning {
			var err error
			rec, err = s.store.Update(ctx, rec.ID, func(r *Record) error {
				r.State = StateQueued
				r.StartedUnixNano = 0
				return nil
			})
			if err != nil {
				return n, fmt.Errorf("jobs: recover %s: %w", rec.ID, err)
			}
		}
		s.enqueue(rec)
		n++
		s.mu.Lock()
		s.recovered++
		s.mu.Unlock()
		s.log.Info("job recovered", "job", rec.ID, "next_index", rec.NextIndex)
	}
	return n, nil
}

// Start launches the dispatcher. Idempotent.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.wg.Add(1)
	go s.dispatch()
}

// Close stops dispatching, cancels running jobs (they transition back to
// queued, checkpoints intact, ready for the next boot's Recover) and waits
// for all workers to finish their final store writes. The store itself
// stays open; the caller closes it after Close returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Submit persists and (when new or restarted) enqueues a job. The enqueued
// flag is false when the submission deduped to an existing queued, running,
// or done job — content-addressing makes submission idempotent.
func (s *Scheduler) Submit(ctx context.Context, sub Submission) (*Record, bool, error) {
	rec, enqueue, err := s.store.Submit(ctx, sub)
	if err != nil {
		return nil, false, err
	}
	if enqueue {
		s.countTransition(StateQueued)
		s.enqueue(rec)
	} else {
		s.mu.Lock()
		s.deduped++
		s.mu.Unlock()
	}
	return rec, enqueue, nil
}

// Cancel requests cancellation: a queued job transitions to canceled
// immediately; a running job gets its context canceled and transitions once
// the worker unwinds. Returns the record as of the request, ErrNotFound for
// an unknown ID, or ErrTerminal when the job is already finished.
func (s *Scheduler) Cancel(ctx context.Context, id string) (*Record, error) {
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	if rec.State.Terminal() {
		return rec, ErrTerminal
	}
	rec, err := s.store.Update(ctx, id, func(r *Record) error {
		if r.State.Terminal() {
			return ErrTerminal
		}
		r.CancelRequested = true
		if r.State == StateQueued {
			r.State = StateCanceled
			r.FinishedUnixNano = time.Now().UnixNano()
		}
		return nil
	})
	if err != nil {
		return rec, err
	}
	if rec.State == StateCanceled {
		s.observeTerminal(rec)
	}
	s.mu.Lock()
	cancel := s.running[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return rec, nil
}

// enqueue pushes a job reference onto the priority queue.
func (s *Scheduler) enqueue(rec *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	heap.Push(&s.queue, queueItem{id: rec.ID, priority: rec.Priority, seq: rec.Seq})
	s.cond.Signal()
}

// waitItem blocks until the queue is non-empty (without popping) or the
// scheduler closes.
func (s *Scheduler) waitItem() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	return !s.closed
}

func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		// Wait for work BEFORE taking a pool slot — an idle scheduler must
		// not starve the request pool it shares with inline endpoints — but
		// pop only AFTER the slot is acquired: items submitted while all
		// workers are busy stay in the heap, so a higher-priority job that
		// arrives during the wait is still the one dispatched next. Dispatch
		// is the only popper, so the queue cannot drain in between.
		if !s.waitItem() {
			return
		}
		if err := s.pool.Acquire(s.base); err != nil {
			return // closing; queued jobs stay in the store
		}
		s.mu.Lock()
		if s.closed || len(s.queue) == 0 {
			s.mu.Unlock()
			s.pool.Release()
			return
		}
		item := heap.Pop(&s.queue).(queueItem)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.work(item.id)
	}
}

// work executes one job end to end: queued → running → terminal (or back
// to queued on shutdown). The runner is wrapped in a panic barrier, so one
// poisoned job fails cleanly instead of taking the process down.
func (s *Scheduler) work(id string) {
	defer s.wg.Done()
	defer s.pool.Release()
	rec, ok := s.store.Get(id)
	if !ok || rec.State != StateQueued {
		return // canceled (or superseded) while queued
	}
	rec, err := s.store.Update(s.base, id, func(r *Record) error {
		if r.State != StateQueued {
			return ErrTerminal
		}
		r.State = StateRunning
		r.StartedUnixNano = time.Now().UnixNano()
		return nil
	})
	if err != nil {
		s.log.Error("job start failed", "job", id, "err", err)
		return
	}
	s.countTransition(StateRunning)

	jctx, cancel := context.WithCancel(s.base)
	s.mu.Lock()
	s.running[id] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.running, id)
		s.mu.Unlock()
		cancel()
	}()

	ckpt := func(start int, pts []Point) error {
		if err := s.store.AppendPoints(jctx, id, start, pts); err != nil {
			return err
		}
		if s.onCkpt != nil {
			s.onCkpt(id, start+len(pts))
		}
		return nil
	}
	var result []byte
	err = par.Protect(func() error {
		var rerr error
		result, rerr = s.run(jctx, rec, ckpt)
		return rerr
	})

	switch {
	case err == nil:
		s.finish(id, func(r *Record) {
			r.State = StateDone
			r.Result = result
		})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		latest, _ := s.store.Get(id)
		if latest != nil && latest.CancelRequested {
			s.finish(id, func(r *Record) {
				r.State = StateCanceled
			})
		} else {
			// Shutdown requeue: back to queued with the checkpointed prefix
			// intact; the next boot's Recover picks it up.
			if _, uerr := s.store.Update(s.base, id, func(r *Record) error {
				r.State = StateQueued
				r.StartedUnixNano = 0
				return nil
			}); uerr != nil {
				s.log.Error("job requeue failed", "job", id, "err", uerr)
			} else {
				s.countTransition(StateQueued)
			}
		}
	default:
		errMsg := err.Error()
		s.finish(id, func(r *Record) {
			r.State = StateFailed
			r.Error = errMsg
		})
	}
}

// finish applies a terminal transition and records its metrics.
func (s *Scheduler) finish(id string, set func(*Record)) {
	rec, err := s.store.Update(s.base, id, func(r *Record) error {
		set(r)
		r.FinishedUnixNano = time.Now().UnixNano()
		return nil
	})
	if err != nil {
		s.log.Error("job finish failed", "job", id, "err", err)
		return
	}
	s.observeTerminal(rec)
	s.log.Info("job finished", "job", id, "state", string(rec.State), "age", rec.Age(time.Now()))
}

// countTransition bumps the per-state transition counter.
func (s *Scheduler) countTransition(to State) {
	s.mu.Lock()
	s.transitions[to]++
	s.mu.Unlock()
}

// ageBuckets are the job age histogram bounds, in seconds.
var ageBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600, 3600}

// AgeBuckets returns the job-age histogram upper bounds in seconds
// (cumulative-histogram convention, +Inf implicit).
func AgeBuckets() []float64 {
	out := make([]float64, len(ageBuckets))
	copy(out, ageBuckets)
	return out
}

// observeTerminal folds a finished job into the transition counters and the
// queued-to-finished age histogram.
func (s *Scheduler) observeTerminal(rec *Record) {
	age := rec.Age(time.Now()).Seconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transitions[rec.State]++
	i := 0
	for i < len(ageBuckets) && age > ageBuckets[i] {
		i++
	}
	s.ageCounts[i]++
	s.ageSum += age
	s.ageCount++
}

// SchedulerStats is a point-in-time snapshot of scheduler counters.
type SchedulerStats struct {
	QueueDepth  int             // items waiting for a worker slot
	Running     int             // jobs currently executing
	Transitions map[State]int64 // entries into each state since boot
	Deduped     int64           // submissions answered by an existing job
	Recovered   int64           // jobs requeued by Recover at boot
	AgeCounts   []int64         // job age histogram (AgeBuckets, +Inf last)
	AgeSum      float64         // sum of observed ages, seconds
	AgeCount    int64           // observed terminal jobs
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := make(map[State]int64, len(s.transitions))
	for k, v := range s.transitions {
		tr[k] = v
	}
	counts := make([]int64, len(s.ageCounts))
	copy(counts, s.ageCounts)
	return SchedulerStats{
		QueueDepth:  len(s.queue),
		Running:     len(s.running),
		Transitions: tr,
		Deduped:     s.deduped,
		Recovered:   s.recovered,
		AgeCounts:   counts,
		AgeSum:      s.ageSum,
		AgeCount:    s.ageCount,
	}
}

// queueItem orders the dispatch queue: higher priority first, then FIFO by
// submission sequence.
type queueItem struct {
	id       string
	priority int
	seq      uint64
}

type jobQueue []queueItem

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(queueItem)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Package mechanism defines the pluggable allocation-mechanism backend
// interface and its process-wide registry. A Mechanism maps a weighted
// resource-sharing network to an allocation; the paper's BD Allocation
// Mechanism is the first registered backend ("bd"), and alternatives from
// the related literature register alongside it so identical instances —
// and identical Sybil attacks — can be evaluated under competing
// mechanisms (see Tournament).
//
// The registry is deliberately deterministic: Names and Infos iterate in
// sorted name order regardless of registration order, so API listings and
// tournament output are byte-stable for golden tests.
package mechanism

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sybil"
)

// Mechanism is one allocation mechanism backend: a deterministic map from a
// weighted graph to a resource allocation. Implementations must be safe for
// concurrent use and must return bit-identical allocations for equal inputs
// (the tournament and cache layers depend on it).
type Mechanism interface {
	// Name is the stable registry key ("bd", "pr", ...): lowercase, no
	// spaces, part of the wire API.
	Name() string
	// Allocate computes the mechanism's allocation of g. The context
	// carries cancellation (and tracing) into the computation.
	Allocate(ctx context.Context, g *graph.Graph) (*allocation.Allocation, error)
}

// Optional capability interfaces. A Mechanism may additionally implement
// any of these; callers discover capabilities by type assertion (or via
// Info, which records them as flags).

// Decomposer exposes the bottleneck decomposition underlying the mechanism.
// Only mechanisms whose allocation is derived from a bottleneck
// decomposition (BD) implement it; /v1/decompose and certificates are
// defined in terms of this capability.
type Decomposer interface {
	Decompose(ctx context.Context, g *graph.Graph, engine bottleneck.Engine) (*bottleneck.Decomposition, error)
}

// RingSweeper natively evaluates the two-identity Sybil split curve on a
// ring. BD implements it with the incremental split engine; mechanisms
// without it are swept generically (RingSweep), one split graph per point.
type RingSweeper interface {
	SweepRing(ctx context.Context, g *graph.Graph, v int, opts sybil.SweepOptions) (*sybil.SweepResult, error)
}

// RingOptimizer computes the exact incentive ratio on a ring via a
// certified optimizer rather than a grid. BD implements it (core.Instance's
// piecewise search); mechanisms without it report the empirical grid ratio.
type RingOptimizer interface {
	OptimizeRing(ctx context.Context, g *graph.Graph, v int, opts core.OptimizeOptions) (*core.OptResult, error)
}

// Certifier marks mechanisms whose answers can ship exact-rational
// certificates (internal/cert). Certificates encode BD-specific structure
// (covers, α-chains), so for now only the BD backend implements it; the
// wire layer answers cert_limit for any other mechanism.
type Certifier interface {
	Certifiable() bool
}

// Info is the discovery record of one registered mechanism, served by
// GET /v1/mechanisms and repro.Mechanisms. The capability flags mirror the
// optional interfaces above.
type Info struct {
	// Name is the registry key, usable as the "mechanism" wire field.
	Name string `json:"name"`
	// Description is a one-line human description.
	Description string `json:"description"`
	// Certifiable reports that answers can carry exact-rational
	// certificates (?cert=1). BD only, for now.
	Certifiable bool `json:"certifiable"`
	// ExactRatio reports that /v1/ratio runs a certified exact optimizer;
	// false means the ratio is the empirical best over the sweep grid.
	ExactRatio bool `json:"exact_ratio"`
}

// Describer lets a mechanism supply its one-line description; mechanisms
// without it get an empty description in Info.
type Describer interface {
	Description() string
}

// registry is the process-wide mechanism table. Registration happens in
// package init functions; reads vastly dominate, so a plain mutex is fine.
var registry = struct {
	mu sync.Mutex
	m  map[string]Mechanism
}{m: make(map[string]Mechanism)}

// Register adds m to the registry. It panics on an empty name or a
// duplicate registration — both are programmer errors that must fail at
// init, not at first request.
func Register(m Mechanism) {
	name := m.Name()
	if name == "" {
		panic("mechanism: Register with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("mechanism: duplicate registration of %q", name))
	}
	registry.m[name] = m
}

// Default is the name resolved when a caller does not select a mechanism:
// the paper's BD Allocation Mechanism, making the pluggable layer invisible
// (and bit-identical) for existing callers.
const Default = "bd"

// ErrUnknown wraps an unresolvable mechanism name; the wire layer maps it
// to the stable error code unknown_mechanism.
type ErrUnknown struct{ Name string }

func (e *ErrUnknown) Error() string {
	return fmt.Sprintf("unknown mechanism %q (known: %v)", e.Name, Names())
}

// Get resolves name ("" = Default) against the registry.
func Get(name string) (Mechanism, error) {
	if name == "" {
		name = Default
	}
	registry.mu.Lock()
	m, ok := registry.m[name]
	registry.mu.Unlock()
	if !ok {
		return nil, &ErrUnknown{Name: name}
	}
	return m, nil
}

// Names returns the registered mechanism names in sorted order —
// registration-order independent, so listings are byte-stable.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos returns the discovery records of every registered mechanism, in
// sorted name order.
func Infos() []Info {
	names := Names()
	infos := make([]Info, 0, len(names))
	for _, n := range names {
		m, err := Get(n)
		if err != nil {
			continue // racy unregister cannot happen; defensive only
		}
		infos = append(infos, infoOf(m))
	}
	return infos
}

// infoOf derives the discovery record from the mechanism's capabilities.
func infoOf(m Mechanism) Info {
	info := Info{Name: m.Name()}
	if d, ok := m.(Describer); ok {
		info.Description = d.Description()
	}
	if c, ok := m.(Certifier); ok {
		info.Certifiable = c.Certifiable()
	}
	_, info.ExactRatio = m.(RingOptimizer)
	return info
}

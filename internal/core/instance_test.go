package core

import (
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func mustInstance(t *testing.T, ws []numeric.Rat, v int) *Instance {
	t.Helper()
	in, err := NewInstance(graph.Ring(ws), v)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(graph.Path(numeric.Ints(1, 2, 3)), 0); err == nil {
		t.Error("path accepted as ring")
	}
	if _, err := NewInstance(graph.Ring(numeric.Ints(1, 2, 3)), 5); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestHonestSplitSumsToWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !in.W1Zero.Add(in.W2Zero).Equal(g.Weight(v)) {
			t.Fatalf("trial %d: honest split %v + %v ≠ %v", trial, in.W1Zero, in.W2Zero, g.Weight(v))
		}
	}
}

func TestLemma9HonestSplitIsUtilityNeutral(t *testing.T) {
	// Lemma 9: splitting with the honest allocation amounts reproduces U_v
	// exactly.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(9) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := in.HonestSplitEval()
		if err != nil {
			t.Fatal(err)
		}
		if !ev.U.Equal(in.HonestU) {
			t.Fatalf("trial %d: U(w1⁰,w2⁰) = %v ≠ U_v = %v (ring %v, v=%d, split %v/%v)",
				trial, ev.U, in.HonestU, g.Weights(), v, in.W1Zero, in.W2Zero)
		}
	}
}

func TestEvalSplitMatchesGraphSplit(t *testing.T) {
	// EvalSplit's hand-built path must agree with the generic
	// graph.TwoSplitOnRing transform plus a fresh decomposition.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(7) + 3
		g := graph.RandomRing(rng, n, graph.DistUniform)
		v := rng.Intn(n)
		in, err := NewInstance(g, v)
		if err != nil {
			t.Fatal(err)
		}
		w1 := g.Weight(v).MulInt(int64(rng.Intn(5))).DivInt(4)
		ev, err := in.EvalSplit(w1)
		if err != nil {
			t.Fatal(err)
		}
		path, _, v1, v2, err := graph.TwoSplitOnRing(g, v, w1, g.Weight(v).Sub(w1))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := bottleneck.Decompose(path)
		if err != nil {
			t.Fatal(err)
		}
		want := dec.Utility(path, v1).Add(dec.Utility(path, v2))
		if !ev.U.Equal(want) {
			t.Fatalf("trial %d: EvalSplit U = %v, graph.Split U = %v", trial, ev.U, want)
		}
	}
}

func TestEvalPairRejectsNegative(t *testing.T) {
	in := mustInstance(t, numeric.Ints(1, 2, 3), 0)
	if _, err := in.EvalPair(numeric.FromInt(-1), numeric.One); err == nil {
		t.Error("negative w1 accepted")
	}
	if _, err := in.EvalSplit(numeric.FromInt(2)); err == nil {
		t.Error("w1 > w_v accepted")
	}
}

func TestEvalPairOffSimplex(t *testing.T) {
	// The proof's intermediate configurations have w1 + w2 ≠ w_v; they must
	// evaluate fine.
	in := mustInstance(t, numeric.Ints(4, 1, 2, 3), 0)
	ev, err := in.EvalPair(numeric.One, numeric.One)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Path.TotalWeight().Equal(numeric.FromInt(8)) {
		t.Fatalf("off-simplex total = %v", ev.Path.TotalWeight())
	}
}

func TestVClassConvention(t *testing.T) {
	// Unit ring: every vertex is ClassBoth, treated as C.
	in := mustInstance(t, numeric.Ints(1, 1, 1, 1), 0)
	if got := in.VClass(); got != bottleneck.ClassC {
		t.Fatalf("VClass on unit ring = %v, want C", got)
	}
	// Heavy vertex is B class: ring (100, 1, 1, 1).
	in2 := mustInstance(t, numeric.Ints(100, 1, 1, 1), 0)
	if got := in2.VClass(); got != bottleneck.ClassB {
		t.Fatalf("VClass of heavy vertex = %v, want B", got)
	}
}

func TestNeighborsOrientation(t *testing.T) {
	in := mustInstance(t, numeric.Ints(1, 2, 3, 4), 0)
	n1, n2 := in.Neighbors()
	if n1 == n2 || !in.G.HasEdge(0, n1) || !in.G.HasEdge(0, n2) {
		t.Fatalf("neighbors (%d, %d)", n1, n2)
	}
	// EvalSplit with all weight on w1 must starve n2's side leaf.
	ev, err := in.EvalSplit(in.W())
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Path.Weight(ev.V2).IsZero() || !ev.Path.Weight(ev.V1).Equal(in.W()) {
		t.Fatal("weight routing wrong")
	}
}

// Package client is the public Go client for the irshared service: typed
// calls for every /v1 endpoint — compute, mechanism discovery, tournaments,
// and durable jobs — with context-aware retries.
//
// Transient failures — 429 overload shedding, 503 queue/chaos busyness,
// 504 server-side timeouts, contained panics (500 internal_panic) and
// transport-level errors — are retried with capped exponential backoff and
// deterministic jitter, honoring the server's Retry-After header as a floor
// on the delay. All endpoints are pure computations, so retrying a POST is
// safe: the server either answers bit-identically (the instance cache makes
// repeats cheap) or sheds again.
//
// SweepAll layers automatic resumption on top: when /v1/sweep returns a
// partial result (the server's request timeout cut the sweep short), the
// client feeds the resume token back until the sweep completes, then merges
// the segments into one exact result — bit-identical to an uninterrupted
// sweep, because every grid point is independent and exact.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Wire types are shared with the server package via aliases, so the request
// and response shapes cannot drift between the two ends.
type (
	// Graph is the wire form of an instance (ring/path shorthand or explicit
	// n/weights/edges).
	Graph = server.WireGraph
	// DecomposeRequest is the body of POST /v1/decompose.
	DecomposeRequest = server.DecomposeRequest
	// DecomposeResponse is the answer of /v1/decompose.
	DecomposeResponse = server.DecomposeResponse
	// AllocateRequest is the body of POST /v1/allocate.
	AllocateRequest = server.AllocateRequest
	// AllocateResponse is the answer of /v1/allocate.
	AllocateResponse = server.AllocateResponse
	// UtilitiesRequest is the body of POST /v1/utilities.
	UtilitiesRequest = server.UtilitiesRequest
	// UtilitiesResponse is the answer of /v1/utilities.
	UtilitiesResponse = server.UtilitiesResponse
	// RatioRequest is the body of POST /v1/ratio.
	RatioRequest = server.RatioRequest
	// RatioResponse is the answer of /v1/ratio.
	RatioResponse = server.RatioResponse
	// SweepRequest is the body of POST /v1/sweep.
	SweepRequest = server.SweepRequest
	// WireSweepPoint is one exactly evaluated split of a sweep.
	WireSweepPoint = server.WireSweepPoint
	// SweepResponse is the answer of /v1/sweep (possibly partial).
	SweepResponse = server.SweepResponse
	// MechanismsResponse is the answer of GET /v1/mechanisms: every
	// registered backend in sorted name order with capability flags.
	MechanismsResponse = server.MechanismsResponse
	// TournamentInstance is one arena of a tournament: a ring graph and the
	// attacker vertex.
	TournamentInstance = server.TournamentWireInstance
	// TournamentRequest is the body of POST /v1/tournament.
	TournamentRequest = server.TournamentRequest
	// TournamentCell is one (instance, mechanism) evaluation of a tournament.
	TournamentCell = server.WireTournamentCell
	// MechanismSummary aggregates one mechanism's tournament column.
	MechanismSummary = server.WireMechanismSummary
	// TournamentResponse is the answer of /v1/tournament (and the final
	// result of a kind "tournament" job).
	TournamentResponse = server.TournamentResponse
	// JobSubmitRequest is the body of POST /v1/jobs.
	JobSubmitRequest = server.JobSubmitRequest
	// EnumJobRequest parameterizes a kind "enumerate" job: exhaustive
	// small-n certification over a rational weight lattice.
	EnumJobRequest = server.EnumJobRequest
	// JobSubmitResponse is the answer of POST /v1/jobs.
	JobSubmitResponse = server.JobSubmitResponse
	// Job is the API view of one durable background job.
	Job = server.WireJob
	// JobListResponse is the answer of GET /v1/jobs.
	JobListResponse = server.JobListResponse
	// ErrorResponse is the body of every non-2xx answer.
	ErrorResponse = server.ErrorResponse
)

// APIError is a non-2xx answer from the service, carrying the machine-
// readable error code and, when the server sent one, its Retry-After hint.
type APIError struct {
	Status     int           // HTTP status code
	Code       string        // stable code from the error catalogue
	Message    string        // human-readable message
	Detail     string        // optional underlying error text
	RetryAfter time.Duration // parsed Retry-After header (0 if absent)
}

func (e *APIError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("irshared: %d %s: %s (%s)", e.Status, e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("irshared: %d %s: %s", e.Status, e.Code, e.Message)
}

// Retryable reports whether the request that produced this error is worth
// repeating: overload shedding, queue/chaos busyness, gateway failures
// (502/504 — a cluster router answering for a backend it lost), server-side
// timeouts, and contained panics are all transient by the server's
// contract; input errors (4xx) and plain internal errors are not.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return e.Code == server.CodeInternalPanic
}

// Client talks to an irshared service — one base URL, or a list of
// equivalent ones (replicated routers, or the cluster's nodes directly).
// Requests stick to the current base; a node-level failure (transport
// error, 502, 504) rotates to the next before the retry, so one dead
// address costs one backoff instead of exhausting every attempt. It is safe
// for concurrent use.
type Client struct {
	bases          []string
	cur            atomic.Uint32
	hc             *http.Client
	maxAttempts    int
	baseDelay      time.Duration
	maxDelay       time.Duration
	stallThreshold int
	onRetry        func(attempt int, err error, delay time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default:
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxAttempts bounds the total tries per call, including the first
// (default 5; values < 1 mean 1 — no retries).
func WithMaxAttempts(n int) Option {
	return func(c *Client) {
		if n < 1 {
			n = 1
		}
		c.maxAttempts = n
	}
}

// WithBackoff sets the first-retry delay and the cap on the exponentially
// growing delay (defaults 100ms and 5s). The server's Retry-After, when
// present, acts as a floor regardless of these values.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.baseDelay = base
		}
		if max > 0 {
			c.maxDelay = max
		}
	}
}

// WithSeed makes the retry jitter deterministic — chaos tests replay the
// exact same retry schedule run after run.
func WithSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithRetryHook installs an observer called before every retry sleep with
// the failed attempt number (1-based), the error, and the chosen delay.
func WithRetryHook(f func(attempt int, err error, delay time.Duration)) Option {
	return func(c *Client) { c.onRetry = f }
}

// WithFallbacks appends alternative base URLs tried — in order, wrapping —
// when the current base fails at the node level: a transport error
// (connection refused/reset, EOF) or a gateway error (502/504). Server-
// answered backpressure (429/503) stays on the same base, since it proves
// the node is alive and its Retry-After is about that node's queue.
func WithFallbacks(bases ...string) Option {
	return func(c *Client) {
		for _, b := range bases {
			c.bases = append(c.bases, strings.TrimRight(b, "/"))
		}
	}
}

// WithStallThreshold sets how many consecutive zero-progress rounds SweepAll
// tolerates before giving up (default: the client's max attempts — the
// historical behavior). Raise it for servers whose request timeout sits
// close to the cost of a single grid point; values < 1 keep the default.
func WithStallThreshold(n int) Option {
	return func(c *Client) {
		if n >= 1 {
			c.stallThreshold = n
		}
	}
}

// New builds a client for the service at base (e.g. "http://127.0.0.1:8080").
// Additional equivalent endpoints can be supplied with WithFallbacks.
func New(base string, opts ...Option) *Client {
	c := &Client{
		bases:       []string{strings.TrimRight(base, "/")},
		hc:          http.DefaultClient,
		maxAttempts: 5,
		baseDelay:   100 * time.Millisecond,
		maxDelay:    5 * time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// pickBase snapshots the current base URL with its rotation epoch.
func (c *Client) pickBase() (string, uint32) {
	epoch := c.cur.Load()
	return c.bases[int(epoch)%len(c.bases)], epoch
}

// rotateBase advances past the base that failed at epoch. The CAS makes
// concurrent failures on the same base advance the rotation once, not once
// per in-flight request.
func (c *Client) rotateBase(epoch uint32) {
	if len(c.bases) > 1 {
		c.cur.CompareAndSwap(epoch, epoch+1)
	}
}

// Decompose calls POST /v1/decompose.
func (c *Client) Decompose(ctx context.Context, req *DecomposeRequest) (*DecomposeResponse, error) {
	var resp DecomposeResponse
	if err := c.do(ctx, "/v1/decompose", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Allocate calls POST /v1/allocate.
func (c *Client) Allocate(ctx context.Context, req *AllocateRequest) (*AllocateResponse, error) {
	var resp AllocateResponse
	if err := c.do(ctx, "/v1/allocate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Utilities calls POST /v1/utilities.
func (c *Client) Utilities(ctx context.Context, req *UtilitiesRequest) (*UtilitiesResponse, error) {
	var resp UtilitiesResponse
	if err := c.do(ctx, "/v1/utilities", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ratio calls POST /v1/ratio.
func (c *Client) Ratio(ctx context.Context, req *RatioRequest) (*RatioResponse, error) {
	var resp RatioResponse
	if err := c.do(ctx, "/v1/ratio", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweep calls POST /v1/sweep once. The answer may be partial (Partial set,
// ResumeToken present) when the server's request timeout cut the sweep
// short; use SweepAll to resume automatically.
func (c *Client) Sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	var resp SweepResponse
	if err := c.do(ctx, "/v1/sweep", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Mechanisms calls GET /v1/mechanisms: the registered allocation backends,
// sorted by name. Any listed name is valid in the "mechanism" field of
// Allocate, Ratio, Sweep, sweep jobs, and tournament mechanism sets.
func (c *Client) Mechanisms(ctx context.Context) (*MechanismsResponse, error) {
	var resp MechanismsResponse
	if err := c.doMethod(ctx, http.MethodGet, "/v1/mechanisms", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Tournament calls POST /v1/tournament: every selected mechanism evaluated
// on every instance under one attack grid. For long grids or many
// instances, submit a kind "tournament" job via SubmitJob instead.
func (c *Client) Tournament(ctx context.Context, req *TournamentRequest) (*TournamentResponse, error) {
	var resp TournamentResponse
	if err := c.do(ctx, "/v1/tournament", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do POSTs the JSON body and decodes the answer into out.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	return c.doMethod(ctx, http.MethodPost, path, in, out)
}

// doMethod performs one JSON exchange with the given method (in == nil
// sends no body, as GET/DELETE do) and decodes the answer into out,
// retrying transient failures with backoff until the context dies or
// attempts run out. The request body is marshaled once and replayed per
// attempt; every endpoint is either a pure computation or idempotent
// (submission is content-addressed, cancellation converges), so replaying
// any method is safe.
func (c *Client) doMethod(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	var err error
	for attempt := 1; ; attempt++ {
		base, epoch := c.pickBase()
		err = c.once(ctx, method, base+path, body, out)
		if err == nil {
			return nil
		}
		if nodeFailure(err) {
			c.rotateBase(epoch)
		}
		if !retryable(err) || attempt >= c.maxAttempts {
			return err
		}
		delay := c.delay(attempt, err)
		if c.onRetry != nil {
			c.onRetry(attempt, err, delay)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
		case <-t.C:
		}
	}
}

// once performs a single HTTP exchange against the given absolute URL.
func (c *Client) once(ctx context.Context, method, url string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode < http.StatusOK || resp.StatusCode >= http.StatusMultipleChoices {
		apiErr := &APIError{Status: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
		var body ErrorResponse
		if json.Unmarshal(raw, &body) == nil && body.Code != "" {
			apiErr.Code, apiErr.Message, apiErr.Detail = body.Code, body.Message, body.Detail
		} else {
			apiErr.Code = "http_" + strconv.Itoa(resp.StatusCode)
			apiErr.Message = strings.TrimSpace(string(raw))
		}
		return apiErr
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// retryable classifies an error from once: API errors answer for themselves;
// everything else is transport-level (connection refused/reset, EOF) and
// retryable unless it is really the caller's context giving up.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Retryable()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// nodeFailure reports whether the error indicts the base URL itself rather
// than the request: any transport error (connection refused/reset, EOF —
// but not the caller's own context dying) and the gateway statuses a router
// answers when its backend is gone. These rotate the client to its next
// base; per-node backpressure (429/503) does not.
func nodeFailure(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusBadGateway || apiErr.Status == http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// delay picks the sleep before retry attempt+1: exponential growth from
// baseDelay capped at maxDelay, halved-plus-jitter so concurrent clients
// decorrelate, then floored at the server's Retry-After when it sent one.
func (c *Client) delay(attempt int, err error) time.Duration {
	d := c.baseDelay << (attempt - 1)
	if d > c.maxDelay || d <= 0 { // <= 0 catches shift overflow
		d = c.maxDelay
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// parseRetryAfter understands both legal Retry-After forms of RFC 9110
// §10.2.3: delta-seconds ("120") and an HTTP-date ("Fri, 31 Dec 1999
// 23:59:59 GMT", plus the obsolete RFC 850 and asctime layouts via
// http.ParseTime). The service itself emits delta-seconds, but proxies and
// load balancers in front of it rewrite to dates; a date in the past (or
// anything unparseable) yields 0 — no floor on the backoff.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

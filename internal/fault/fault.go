// Package fault is a deterministic fault-injection registry: the chaos
// counterpart of internal/obs. Solvers and the server declare named
// injection sites (SiteDinkelbach, SiteMaxflowPush, ...); an Injector built
// from seeded Rules decides, per hit, whether to inject an error, extra
// latency, or a panic at that site. The injector travels through
// context.Context exactly like an obs span, so the same plumbing that
// carries cancellation and tracing carries faults.
//
// The design goal mirrors obs: a near-zero disabled path. With no injector
// installed, Hit is a single context Value lookup returning nil; hot paths
// that cannot afford even that (maxflow's per-arc push loop) cache the
// injector in a struct field once per solve and pay one nil pointer check
// per iteration.
//
// Decisions are deterministic: every site keeps an atomic hit counter, and
// rule firing is a pure function of (seed, site, rule, hit index). Two runs
// of a single-threaded workload inject at identical points; concurrent
// workloads are deterministic per interleaving (the counter serializes
// hits, not goroutines). Retrying a failed operation advances the counter,
// so probabilistic rules converge — the property the chaos suite leans on.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// The canonical injection-site registry. Sites are declared here (not
// scattered across packages) so a chaos spec can be validated up front: a
// typo in -chaos is a startup error, not a silently dead rule.
const (
	// SiteDinkelbach fires once per Dinkelbach iteration, in both the stock
	// loop (bottleneck.dinkelbachLoop) and the incremental solver's
	// warm-started loop.
	SiteDinkelbach = "decompose.dinkelbach"
	// SiteMaxflowPush fires once per elementary flow push inside a max-flow
	// solve. Errors cannot propagate out of the flow kernels, so error
	// injections at this site escalate to contained panics (StrikePanic).
	SiteMaxflowPush = "maxflow.push"
	// SiteServerCompute fires once per request at the top of every /v1
	// handler's compute stage.
	SiteServerCompute = "server.compute"
	// SiteCacheGet fires once per instance-cache lookup in the server.
	SiteCacheGet = "cache.get"
	// SiteSweepPoint fires once per grid point of a split-utility sweep.
	SiteSweepPoint = "sweep.point"
	// SiteScenarioPoint fires once per evaluated point of a scenario grid
	// search (k-identity Sybil compositions, coalition joint reports,
	// topology-scan instances alike).
	SiteScenarioPoint = "scenario.point"
	// SiteServerBatch fires once per batched /v1/ratio computation, inside
	// the detached batch goroutine (exercising the batcher's containment).
	SiteServerBatch = "server.batch"
	// SiteJobsWAL fires once per job-store WAL append — state transitions
	// and checkpoint deltas alike. An injected error surfaces as a failed
	// submit or a failed job, never a corrupt log.
	SiteJobsWAL = "jobs.wal.append"
	// SiteJobsRecover fires once per job considered during startup recovery
	// of the durable job store; an injected error aborts the boot loudly.
	SiteJobsRecover = "jobs.recover"
	// SiteClusterProbe fires once per health probe the cluster router sends
	// to a backend. An injected error looks exactly like a failed probe, so
	// chaos rules here drive nodes through the dead→alive membership cycle.
	SiteClusterProbe = "cluster.probe"
	// SiteClusterLease fires once per lease-log append in the cluster
	// router (grants, renewals, retirements). An injected error surfaces as
	// a failed lease write; the router must degrade without corrupting its
	// lease table.
	SiteClusterLease = "cluster.lease"
)

// Sites returns the registered site names, sorted.
func Sites() []string {
	s := []string{
		SiteDinkelbach,
		SiteMaxflowPush,
		SiteServerCompute,
		SiteCacheGet,
		SiteSweepPoint,
		SiteScenarioPoint,
		SiteServerBatch,
		SiteJobsWAL,
		SiteJobsRecover,
		SiteClusterProbe,
		SiteClusterLease,
	}
	sort.Strings(s)
	return s
}

// Kind is the effect of an injection.
type Kind int

const (
	// KindError makes Hit/Strike return an *Error wrapping ErrInjected.
	KindError Kind = iota
	// KindLatency makes Hit/Strike sleep for the rule's Latency, then
	// proceed normally.
	KindLatency
	// KindPanic makes Hit/Strike panic with a *PanicValue — exercising the
	// containment barriers, which must convert it into a structured error
	// instead of letting the process die.
	KindPanic
)

// String names the kind as in the spec grammar.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule arms one site with one effect. Exactly one of Rate / Every selects
// hits: Rate fires pseudo-randomly (seeded, deterministic per hit index)
// with the given probability; Every fires deterministically on every N-th
// hit. Limit, when positive, caps the total number of injections from this
// rule — the "finite fault budget" shape chaos tests use to guarantee
// convergence.
type Rule struct {
	// Site is a registered site name, a prefix wildcard ("maxflow.*"), or
	// "*" for every registered site.
	Site string
	Kind Kind
	// Rate is the per-hit injection probability in (0, 1]. Ignored when
	// Every is set.
	Rate float64
	// Every fires on hits N, 2N, 3N, ... when positive.
	Every int64
	// Latency is the injected delay for KindLatency rules.
	Latency time.Duration
	// Limit caps total injections from this rule (0 = unlimited).
	Limit int64
}

func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s=%s:", r.Site, r.Kind)
	if r.Every > 0 {
		fmt.Fprintf(&b, "1/%d", r.Every)
	} else {
		fmt.Fprintf(&b, "%g", r.Rate)
	}
	if r.Kind == KindLatency {
		fmt.Fprintf(&b, ":%s", r.Latency)
	}
	if r.Limit > 0 {
		fmt.Fprintf(&b, ":limit=%d", r.Limit)
	}
	return b.String()
}

// ErrInjected is the sentinel every injected error wraps. Layers that must
// distinguish synthetic faults from real failures (the server maps them to
// retryable 503s) test errors.Is(err, ErrInjected).
var ErrInjected = errors.New("injected fault")

// Error is one injected error: the site it fired at and the hit index.
type Error struct {
	Site string
	N    int64 // 1-based hit index at the site
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s (hit %d)", e.Site, e.N)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *Error) Unwrap() error { return ErrInjected }

// PanicValue is the payload of an injected panic. Containment barriers
// (par.Protect, the server's handler barrier) see it like any other panic
// value; tests recognize it to assert the panic was synthetic.
type PanicValue struct {
	Site string
	N    int64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("fault: injected panic at %s (hit %d)", p.Site, p.N)
}

// compiled is one armed rule plus its injection counter.
type compiled struct {
	rule     Rule
	salt     uint64
	injected atomic.Int64
}

// siteState is the armed state of one site.
type siteState struct {
	hits  atomic.Int64
	rules []*compiled
}

// Injector is an immutable set of armed sites plus their mutable counters.
// Safe for concurrent use; the zero of *Injector (nil) is a no-op.
type Injector struct {
	seed  uint64
	sites map[string]*siteState
	rules []Rule // as armed, for String()
}

// New arms rules against the site registry. Wildcard sites expand to every
// matching registered site; a rule whose site matches nothing, a rate
// outside (0, 1], or a latency rule without a duration is a construction
// error — chaos configuration fails loudly, never silently.
func New(seed uint64, rules ...Rule) (*Injector, error) {
	inj := &Injector{seed: seed, sites: make(map[string]*siteState)}
	known := Sites()
	for i, r := range rules {
		if r.Every < 0 {
			return nil, fmt.Errorf("fault: rule %d (%s): negative every %d", i, r.Site, r.Every)
		}
		if r.Every == 0 && (r.Rate <= 0 || r.Rate > 1) {
			return nil, fmt.Errorf("fault: rule %d (%s): rate %g outside (0, 1]", i, r.Site, r.Rate)
		}
		if r.Kind == KindLatency && r.Latency <= 0 {
			return nil, fmt.Errorf("fault: rule %d (%s): latency rule without a positive duration", i, r.Site)
		}
		targets := expandSite(r.Site, known)
		if len(targets) == 0 {
			return nil, fmt.Errorf("fault: rule %d: unknown site %q (known: %s)", i, r.Site, strings.Join(known, ", "))
		}
		for _, site := range targets {
			st := inj.sites[site]
			if st == nil {
				st = &siteState{}
				inj.sites[site] = st
			}
			st.rules = append(st.rules, &compiled{
				rule: r,
				salt: splitmix64(seed ^ fnv64(site) ^ (uint64(i+1) * 0x9e3779b97f4a7c15)),
			})
		}
		inj.rules = append(inj.rules, r)
	}
	return inj, nil
}

// expandSite resolves a rule site against the registry: exact match, "*",
// or "prefix.*".
func expandSite(site string, known []string) []string {
	if site == "*" {
		return known
	}
	if prefix, ok := strings.CutSuffix(site, "*"); ok {
		var out []string
		for _, k := range known {
			if strings.HasPrefix(k, prefix) {
				out = append(out, k)
			}
		}
		return out
	}
	for _, k := range known {
		if k == site {
			return []string{site}
		}
	}
	return nil
}

// String renders the armed rules in spec-grammar form plus the seed.
func (inj *Injector) String() string {
	if inj == nil {
		return "<disabled>"
	}
	parts := make([]string, len(inj.rules))
	for i, r := range inj.rules {
		parts[i] = r.String()
	}
	return fmt.Sprintf("seed=%d %s", inj.seed, strings.Join(parts, ";"))
}

// Strike consults the injector for one hit at site. A nil injector and an
// unarmed site both cost one map lookup and return nil. Latency rules
// sleep and fall through; error rules return an *Error; panic rules panic
// with a *PanicValue.
func (inj *Injector) Strike(site string) error {
	if inj == nil {
		return nil
	}
	st := inj.sites[site]
	if st == nil {
		return nil
	}
	n := st.hits.Add(1)
	for _, c := range st.rules {
		if !c.fires(n) {
			continue
		}
		switch c.rule.Kind {
		case KindLatency:
			time.Sleep(c.rule.Latency)
		case KindError:
			return &Error{Site: site, N: n}
		case KindPanic:
			panic(&PanicValue{Site: site, N: n})
		}
	}
	return nil
}

// StrikePanic is Strike for sites that cannot propagate an error (the flow
// kernels): an injected error escalates to a *PanicValue panic so a
// containment barrier still sees it; latency behaves as usual.
func (inj *Injector) StrikePanic(site string) {
	if err := inj.Strike(site); err != nil {
		var e *Error
		errors.As(err, &e)
		panic(&PanicValue{Site: site, N: e.N})
	}
}

// fires decides hit n for this rule, deterministically, and consumes the
// rule's budget when it fires.
func (c *compiled) fires(n int64) bool {
	if c.rule.Limit > 0 && c.injected.Load() >= c.rule.Limit {
		return false
	}
	var hit bool
	if c.rule.Every > 0 {
		hit = n%c.rule.Every == 0
	} else {
		// Uniform in [0,1) from the top 53 bits of a splitmix64 draw.
		u := splitmix64(c.salt + uint64(n)*0xbf58476d1ce4e5b9)
		hit = float64(u>>11)/(1<<53) < c.rule.Rate
	}
	if !hit {
		return false
	}
	if c.rule.Limit > 0 && c.injected.Add(1) > c.rule.Limit {
		// Lost a race for the last budget slot; undo and pass.
		c.injected.Add(-1)
		return false
	}
	if c.rule.Limit == 0 {
		c.injected.Add(1)
	}
	return true
}

// SiteStats is one site's hit/injection counters.
type SiteStats struct {
	Hits     int64
	Injected int64
}

// Stats snapshots every armed site's counters, keyed by site name.
func (inj *Injector) Stats() map[string]SiteStats {
	if inj == nil {
		return nil
	}
	out := make(map[string]SiteStats, len(inj.sites))
	for site, st := range inj.sites {
		var injected int64
		for _, c := range st.rules {
			injected += c.injected.Load()
		}
		out[site] = SiteStats{Hits: st.hits.Load(), Injected: injected}
	}
	return out
}

// splitmix64 is the standard 64-bit finalizer-style mixer: deterministic,
// dependency-free, and good enough to turn (seed, site, hit) into an
// unbiased coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a site name (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
)

// NodeState is one backend's standing in the cluster.
type NodeState string

const (
	// StateAlive: the last probe succeeded; the node takes traffic.
	StateAlive NodeState = "alive"
	// StateDead: DeadAfter consecutive probes failed; requests skip the
	// node until a probe succeeds again.
	StateDead NodeState = "dead"
	// StateQuarantined: the node answered with a certificate that failed
	// the router's solver-free check. Quarantine outranks liveness — a node
	// that computes wrong answers is worse than one that computes none —
	// and lifts only after QuarantineFor elapses AND a probe succeeds.
	StateQuarantined NodeState = "quarantined"
)

// Member is the router's view of one backend.
type Member struct {
	URL        string
	State      NodeState
	NodeID     string // from the last successful /readyz probe
	QueueDepth int    // from the last successful /readyz probe
	Failures   int    // consecutive failed probes
}

// membership tracks backend health from periodic /readyz probes. All nodes
// start alive — the first probe round corrects optimism within one
// ProbeInterval, and starting pessimistic would make a fresh router reject
// everything until then.
type membership struct {
	mu         sync.Mutex
	members    map[string]*Member
	deadAfter  int
	quarFor    time.Duration
	quarUntil  map[string]time.Time
	probeTotal map[string]int64 // "ok" / "fail" counters for /metrics
}

func newMembership(nodes []string, deadAfter int, quarFor time.Duration) *membership {
	m := &membership{
		members:    make(map[string]*Member, len(nodes)),
		deadAfter:  deadAfter,
		quarFor:    quarFor,
		quarUntil:  make(map[string]time.Time),
		probeTotal: map[string]int64{"ok": 0, "fail": 0},
	}
	for _, n := range nodes {
		m.members[n] = &Member{URL: n, State: StateAlive}
	}
	return m
}

// alive reports whether node currently takes traffic.
func (m *membership) alive(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[node]
	return ok && mem.State == StateAlive
}

// snapshot returns a copy of every member for introspection.
func (m *membership) snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, *mem)
	}
	return out
}

// quarantine marks node untrusted for the configured period. A dead node
// can be quarantined too: the sentence outlives its next recovery.
func (m *membership) quarantine(node string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[node]; ok {
		mem.State = StateQuarantined
		m.quarUntil[node] = now.Add(m.quarFor)
	}
}

// markFailed records one failed probe, returning true when the node just
// crossed the death threshold.
func (m *membership) markFailed(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.probeTotal["fail"]++
	mem, ok := m.members[node]
	if !ok {
		return false
	}
	mem.Failures++
	if mem.State == StateAlive && mem.Failures >= m.deadAfter {
		mem.State = StateDead
		return true
	}
	return false
}

// markOK records one successful probe with the node's reported identity and
// queue depth. A dead node rejoins immediately; a quarantined one rejoins
// only once its sentence has expired.
func (m *membership) markOK(node, nodeID string, depth int, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.probeTotal["ok"]++
	mem, ok := m.members[node]
	if !ok {
		return
	}
	mem.Failures = 0
	mem.NodeID = nodeID
	mem.QueueDepth = depth
	switch mem.State {
	case StateDead:
		mem.State = StateAlive
	case StateQuarantined:
		if now.After(m.quarUntil[node]) {
			mem.State = StateAlive
			delete(m.quarUntil, node)
		}
	}
}

func (m *membership) probeCounts() (ok, fail int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.probeTotal["ok"], m.probeTotal["fail"]
}

// probeOnce probes every member sequentially. The fault site cluster.probe
// fires per probe: an injected error is indistinguishable from a down
// backend, which is exactly how chaos drives the dead→alive cycle.
func (r *Router) probeOnce(ctx context.Context) {
	for _, node := range r.ring.nodes {
		id, depth, err := r.probe(ctx, node)
		if err != nil {
			if r.members.markFailed(node) {
				r.log.Warn("node dead", "node", node)
			}
			continue
		}
		r.members.markOK(node, id, depth, time.Now())
	}
}

// probe performs one /readyz exchange. A 429 (saturated but alive) counts
// as success: the node is healthy, just busy, and killing it would dogpile
// its queue onto the survivors.
func (r *Router) probe(ctx context.Context, node string) (nodeID string, depth int, err error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	if err := fault.Hit(ctx, fault.SiteClusterProbe); err != nil {
		return "", 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/readyz", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", 0, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return "", 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("cluster: probe %s: status %d", node, resp.StatusCode)
	}
	var body server.ReadyzResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		return "", 0, fmt.Errorf("cluster: probe %s: %w", node, err)
	}
	return body.NodeID, body.QueueDepth, nil
}

package mechanism

import (
	"context"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sybil"
)

// BD is the paper's Bottleneck-Decomposition Allocation Mechanism
// (Definition 5) rehomed behind the Mechanism interface: decompose the
// graph (Definition 2), then realize the proportional-response equilibrium
// with one bipartite max flow per bottleneck pair. It is the Default
// backend and the only one with decomposition, exact-optimizer, and
// certificate capabilities.
type BD struct{}

// Name implements Mechanism.
func (BD) Name() string { return "bd" }

// Description implements Describer.
func (BD) Description() string {
	return "bottleneck-decomposition allocation (Definition 5): the exact proportional-response equilibrium"
}

// Certifiable implements Certifier: BD answers can ship exact-rational
// certificates (internal/cert).
func (BD) Certifiable() bool { return true }

// Allocate implements Mechanism via the classic pipeline: bottleneck
// decomposition under the auto engine, then allocation.Compute. It is
// bit-identical to the pre-registry facade/server default path.
func (b BD) Allocate(ctx context.Context, g *graph.Graph) (*allocation.Allocation, error) {
	d, err := b.Decompose(ctx, g, bottleneck.EngineAuto)
	if err != nil {
		return nil, err
	}
	return allocation.Compute(g, d)
}

// Decompose implements Decomposer, exposing the engine selection of the
// underlying solver.
func (BD) Decompose(ctx context.Context, g *graph.Graph, engine bottleneck.Engine) (*bottleneck.Decomposition, error) {
	return bottleneck.DecomposeCtx(ctx, g, engine)
}

// DecomposeParallel is Decompose with per-component parallel decomposition
// (the facade's WithWorkers path).
func (BD) DecomposeParallel(ctx context.Context, g *graph.Graph, engine bottleneck.Engine, workers int) (*bottleneck.Decomposition, error) {
	return bottleneck.DecomposeParallelCtx(ctx, g, engine, workers)
}

// SweepRing implements RingSweeper with the incremental split engine —
// shared interior transfers, warm-started Dinkelbach — point for point the
// same arithmetic as the pre-registry sybil sweep.
func (BD) SweepRing(ctx context.Context, g *graph.Graph, v int, opts sybil.SweepOptions) (*sybil.SweepResult, error) {
	return sybil.RingSweepCtx(ctx, g, v, opts)
}

// OptimizeRing implements RingOptimizer with the certified piecewise
// optimizer of core.Instance (Theorem 8 machinery).
func (BD) OptimizeRing(ctx context.Context, g *graph.Graph, v int, opts core.OptimizeOptions) (*core.OptResult, error) {
	in, err := core.NewInstanceCtx(ctx, g, v)
	if err != nil {
		return nil, err
	}
	return in.OptimizeCtx(ctx, opts)
}

func init() { Register(BD{}) }

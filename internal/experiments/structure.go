package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// E1Fig1 reproduces Fig. 1: the bottleneck decomposition of the paper's
// 6-vertex example, with the expected pairs checked exactly.
func E1Fig1() (*Table, error) {
	g := graph.Fig1Graph()
	d, err := bottleneck.Decompose(g)
	if err != nil {
		return nil, err
	}
	t := NewTable("E1 / Fig.1 — bottleneck decomposition of the example graph",
		"pair", "B", "C", "alpha", "expected")
	expected := []struct {
		b, c, alpha string
	}{
		{"[0 1]", "[2]", "1/3"},
		{"[3 4 5]", "[3 4 5]", "1"},
	}
	ok := true
	for i, p := range d.Pairs {
		exp := "?"
		if i < len(expected) {
			exp = fmt.Sprintf("B=%s C=%s α=%s", expected[i].b, expected[i].c, expected[i].alpha)
			if fmt.Sprintf("%v", p.B) != expected[i].b ||
				fmt.Sprintf("%v", p.C) != expected[i].c ||
				p.Alpha.String() != expected[i].alpha {
				ok = false
			}
		}
		t.Add(i+1, fmt.Sprintf("%v", p.B), fmt.Sprintf("%v", p.C), p.Alpha, exp)
	}
	if err := d.Validate(g); err != nil {
		return nil, fmt.Errorf("E1: Proposition 3 validation: %w", err)
	}
	t.Note("pairs match the paper: %v (Proposition 3 invariants verified exactly)", ok)
	if !ok {
		return t, fmt.Errorf("E1: decomposition does not match Fig. 1")
	}
	return t, nil
}

// E2Fig2 reproduces Fig. 2: the three shapes of α_v(x) under misreporting.
// One series per case, on instances constructed to realize B-1, B-2, B-3.
func E2Fig2(samples int) ([]*Table, error) {
	if samples <= 0 {
		samples = 24
	}
	type inst struct {
		name string
		g    *graph.Graph
		v    int
		want analysis.AlphaCase
	}
	instances := []inst{
		{
			name: "Case B-1 (always C class): light vertex on a heavy ring",
			g:    graph.Ring(numeric.Ints(2, 50, 50, 50)),
			v:    0,
			want: analysis.CaseB1,
		},
		{
			name: "Case B-2 (always B class): neighborhood pre-covered, path 100-1-v-1-100",
			g:    graph.Path(numeric.Ints(100, 1, 4, 1, 100)),
			v:    2,
			want: analysis.CaseB2,
		},
		{
			name: "Case B-3 (C then B, crossing α = 1): heavy vertex on a light ring",
			g:    graph.Ring(numeric.Ints(8, 1, 1, 1, 1)),
			v:    0,
			want: analysis.CaseB3,
		},
	}
	var tables []*Table
	for _, it := range instances {
		curve, err := analysis.SampleCurve(it.g, it.v, samples)
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", it.name, err)
		}
		got, err := analysis.ClassifyAlphaCurve(curve)
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", it.name, err)
		}
		t := NewTable("E2 / Fig.2 — "+it.name, "x", "alpha_v(x)", "class", "U_v(x)")
		for _, pt := range curve {
			t.Add(fmtF(pt.X.Float64()), fmtF(pt.Alpha.Float64()), pt.Class, fmtF(pt.U.Float64()))
		}
		t.Note("classified as %v (expected %v); monotonicity pattern verified exactly", got, it.want)
		if got != it.want {
			return tables, fmt.Errorf("E2 %s: classified %v, want %v", it.name, got, it.want)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// E3Fig3 reproduces Fig. 3: merge/split events of the pair containing the
// reporting agent, with Proposition 12 verified at every breakpoint.
func E3Fig3(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E3 / Fig.3 — bottleneck pair transitions under weight change (Prop. 12)",
		"trial", "n", "dist", "intervals", "merges", "splits", "verified")
	events := 0
	for trial := 0; trial < 4*s.Trials; trial++ {
		n := s.RingSizes[trial%len(s.RingSizes)]
		dist := graph.WeightDist(rng.Intn(3))
		g := graph.RandomRing(rng, n, dist)
		v := rng.Intn(n)
		log, err := analysis.SweepTransitions(g, v, 24, 44)
		if err != nil {
			return t, fmt.Errorf("E3 trial %d (w=%v, v=%d): %w", trial, g.Weights(), v, err)
		}
		merges, splits := 0, 0
		for _, k := range log.Transitions {
			switch k {
			case analysis.TransitionMerge:
				merges++
			case analysis.TransitionSplit:
				splits++
			}
		}
		events += len(log.Transitions)
		t.Add(trial, n, dist, len(log.Intervals), merges, splits, true)
	}
	t.Note("Proposition 12 verified at every breakpoint; %d transitions observed in total", events)
	return t, nil
}

// E4Fig4 reproduces Fig. 4 and Lemmas 14/20: the classification of the
// honest-split decomposition B(w1⁰, w2⁰) over random rings.
func E4Fig4(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E4 / Fig.4 — forms of B(w1_0, w2_0) (Lemmas 14 and 20)",
		"n", "dist", "instances", "C-1", "C-2", "C-3", "D-1", "unknown")
	for _, n := range s.RingSizes {
		for _, dist := range []graph.WeightDist{graph.DistUniform, graph.DistSkewed, graph.DistPowers} {
			counts := map[core.InitialForm]int{}
			for trial := 0; trial < s.Trials; trial++ {
				g := graph.RandomRing(rng, n, dist)
				v := rng.Intn(n)
				in, err := core.NewInstance(g, v)
				if err != nil {
					return t, fmt.Errorf("E4: %w", err)
				}
				opt, err := in.Optimize(core.OptimizeOptions{Grid: s.OptGrid})
				if err != nil {
					return t, fmt.Errorf("E4: %w", err)
				}
				rep, err := in.AnalyzeStages(opt.BestW1)
				if err != nil {
					return t, fmt.Errorf("E4: %w", err)
				}
				counts[rep.Form]++
			}
			t.Add(n, dist, s.Trials,
				counts[core.FormC1], counts[core.FormC2], counts[core.FormC3],
				counts[core.FormD1], counts[core.FormUnknown])
			if counts[core.FormUnknown] > 0 {
				return t, fmt.Errorf("E4: %d instances outside the Lemma 14/20 catalog", counts[core.FormUnknown])
			}
		}
	}
	t.Note("every instance fell into the Lemma 14 / Lemma 20 catalog (no unknowns)")
	return t, nil
}

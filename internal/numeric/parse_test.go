package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"42", "42", false},
		{"-7", "-7", false},
		{"3/4", "3/4", false},
		{"-22/7", "-22/7", false},
		{"6/4", "3/2", false},
		{"0.25", "1/4", false},
		{"-1.5", "-3/2", false},
		{"  8 ", "8", false},
		{"", "", true},
		{"abc", "", true},
		{"1/0", "", true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q) unexpected error: %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of garbage did not panic")
		}
	}()
	MustParse("not a number")
}

func TestTextRoundTrip(t *testing.T) {
	f := func(n, d int64) bool {
		if d == 0 {
			return true
		}
		r := makeRat(n, d)
		text, err := r.MarshalText()
		if err != nil {
			return false
		}
		var back Rat
		if err := back.UnmarshalText(text); err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestApproximateExactValues(t *testing.T) {
	cases := []struct {
		x      float64
		maxDen int64
		want   string
	}{
		{0.5, 100, "1/2"},
		{0.25, 100, "1/4"},
		{-0.75, 100, "-3/4"},
		{2, 100, "2"},
		{0, 100, "0"},
		{1.0 / 3.0, 1000, "1/3"},
	}
	for _, c := range cases {
		got := Approximate(c.x, c.maxDen)
		if got.String() != c.want {
			t.Errorf("Approximate(%v, %d) = %q, want %q", c.x, c.maxDen, got.String(), c.want)
		}
	}
}

func TestApproximatePi(t *testing.T) {
	got := Approximate(math.Pi, 120)
	if got.String() != "355/113" {
		t.Errorf("Approximate(pi, 120) = %v, want 355/113", got)
	}
	got = Approximate(math.Pi, 10)
	if got.String() != "22/7" {
		t.Errorf("Approximate(pi, 10) = %v, want 22/7", got)
	}
}

func TestApproximateRespectsDenominatorBound(t *testing.T) {
	f := func(xs uint32, md uint16) bool {
		x := float64(xs) / float64(math.MaxUint32) // in [0, 1]
		maxDen := int64(md%5000) + 1
		r := Approximate(x, maxDen)
		_, den, ok := r.Int64Parts()
		if !ok {
			return false
		}
		if den > maxDen {
			return false
		}
		// Error is at most 1/maxDen (weak but safe bound for approximations
		// in [0,1] with denominator ≤ maxDen).
		return math.Abs(r.Float64()-x) <= 1.0/float64(maxDen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestApproximatePanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Approximate(NaN) did not panic")
		}
	}()
	Approximate(math.NaN(), 10)
}

package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestGracefulShutdown boots the full binary path (flags, server, signal
// handling), verifies it serves, then delivers SIGTERM and expects a clean
// drain.
func TestGracefulShutdown(t *testing.T) {
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-log", "json", "-drain", "5s"})
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// signal.NotifyContext has SIGTERM claimed, so self-delivery drains the
	// server instead of killing the test process.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

// TestTraceAndPprofFlags boots with tracing and pprof enabled and checks
// both debug surfaces respond before draining.
func TestTraceAndPprofFlags(t *testing.T) {
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", addr, "-log", "json", "-drain", "5s",
			"-trace-buffer", "8", "-trace-retention", "1m", "-pprof",
		})
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/decompose", "application/json",
		strings.NewReader(`{"graph":{"ring":["1","2","3"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompose status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id header with -trace-buffer 8")
	}
	tr, err := http.Get(base + "/debug/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace?id=%s status %d", id, tr.StatusCode)
	}
	pp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", pp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-log", "yaml"}); err == nil {
		t.Fatal("bad -log format accepted")
	}
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/cert"
)

// TestScenarioKSybilK2MatchesSweep pins the k = 2 equivalence on the wire:
// the ksybil scenario at k = 2 answers the same utilities, honest baseline,
// best point and ratio as /v1/sweep for the same (graph, agent, grid) —
// canonical string for canonical string.
func TestScenarioKSybilK2MatchesSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"1", "3/2", "2", "1/2", "5"}}

	status, raw := postJSON(t, ts.URL, "/v1/sweep", SweepRequest{Graph: ring, V: 1, Grid: 12})
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %s", status, raw)
	}
	var sw SweepResponse
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}

	status, raw = postJSON(t, ts.URL, "/v1/scenario",
		ScenarioRequest{Kind: "ksybil", Graph: ring, V: 1, K: 2, Grid: 12})
	if status != http.StatusOK {
		t.Fatalf("scenario: %d %s", status, raw)
	}
	var sc ScenarioResponse
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Fatal(err)
	}
	ks := sc.KSybil
	if sc.Kind != "ksybil" || ks == nil {
		t.Fatalf("wrong payload: %s", raw)
	}
	if ks.Total != 13 || len(ks.Points) != 13 || len(sw.Points) != 13 {
		t.Fatalf("total %d scenario points %d sweep points %d", ks.Total, len(ks.Points), len(sw.Points))
	}
	for i, p := range ks.Points {
		if len(p.Comp) != 2 || p.Comp[0] != i || p.Comp[1] != 12-i {
			t.Fatalf("point %d composition %v", i, p.Comp)
		}
		if p.U != sw.Points[i].U {
			t.Fatalf("point %d: scenario %s sweep %s", i, p.U, sw.Points[i].U)
		}
	}
	if ks.Honest != sw.Honest || ks.BestU != sw.BestU || ks.Ratio != sw.Ratio {
		t.Fatalf("summary drift: scenario (%s, %s, %s) sweep (%s, %s, %s)",
			ks.Honest, ks.BestU, ks.Ratio, sw.Honest, sw.BestU, sw.Ratio)
	}
}

// TestScenarioJobsMatchInline is the core equivalence property of the three
// scenario job kinds: each job's final Result must be bit-identical to the
// /v1/scenario response of the same request, and resubmission dedupes.
func TestScenarioJobsMatchInline(t *testing.T) {
	_, ts := jobsTestServer(t)
	ring := WireGraph{Ring: []string{"128", "2", "128", "128", "512", "4", "32"}}
	cases := []struct {
		name  string
		total int
		req   ScenarioRequest
	}{
		{"ksybil", 28, ScenarioRequest{Kind: "ksybil", Graph: ring, V: 4, K: 3, Grid: 6}},
		{"coalition", 9, ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{5, 4}, Grid: 3}},
		{"topology", 3, ScenarioRequest{Kind: "topology", Families: []string{"ring", "tree", "er"}, Count: 1, N: 5, Grid: 3, Seed: 11}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, inline := postJSON(t, ts.URL, "/v1/scenario", tc.req)
			if status != http.StatusOK {
				t.Fatalf("inline: %d %s", status, inline)
			}
			resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: tc.req.Kind, Scenario: &tc.req})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d %s", resp.StatusCode, body)
			}
			var sub JobSubmitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Fatal(err)
			}
			if sub.Job.Kind != tc.req.Kind || sub.Job.TotalPoints != tc.total {
				t.Fatalf("job %+v, want kind %s total %d", sub.Job, tc.req.Kind, tc.total)
			}
			done := waitJobState(t, ts.URL, sub.Job.ID, "done")
			if !bytes.Equal(bytes.TrimSpace(done.Result), bytes.TrimSpace(inline)) {
				t.Fatalf("job result differs from inline:\njob:    %s\ninline: %s", done.Result, inline)
			}
			// Resubmitting the identical scan dedupes to the finished job.
			resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: tc.req.Kind, Scenario: &tc.req})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
			}
			var dup JobSubmitResponse
			if err := json.Unmarshal(body, &dup); err != nil {
				t.Fatal(err)
			}
			if !dup.Deduped || dup.Job.ID != sub.Job.ID {
				t.Fatalf("resubmission did not dedupe: %+v", dup)
			}
		})
	}
}

// TestScenarioJobCheckpointSeed replays a completed ksybil job's checkpoint
// prefix into a fresh server (the cluster router's failover path) and
// requires the re-placed job to resume — not restart — and still produce
// the bit-identical final Result.
func TestScenarioJobCheckpointSeed(t *testing.T) {
	_, tsA := jobsTestServer(t)
	req := ScenarioRequest{Kind: "ksybil", Graph: WireGraph{Ring: []string{"3", "1", "4", "1", "5"}}, V: 2, K: 3, Grid: 5}
	resp, body := jobsPost(t, tsA.URL+"/v1/jobs", JobSubmitRequest{Kind: "ksybil", Scenario: &req})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	doneA := waitJobState(t, tsA.URL, sub.Job.ID, "done")
	var detail WireJob
	jobsGet(t, tsA.URL+"/v1/jobs/"+sub.Job.ID, &detail)
	if len(detail.Points) != detail.TotalPoints || detail.TotalPoints == 0 {
		t.Fatalf("detail carries %d/%d points", len(detail.Points), detail.TotalPoints)
	}

	_, tsB := jobsTestServer(t)
	seedLen := 5
	resp, body = jobsPost(t, tsB.URL+"/v1/jobs", JobSubmitRequest{
		Kind:     "ksybil",
		Scenario: &req,
		Checkpoint: &JobCheckpoint{
			NextIndex: seedLen,
			Points:    detail.Points[:seedLen],
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seeded submit: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.NextIndex != seedLen {
		t.Fatalf("seeded job starts at %d, want %d", sub.Job.NextIndex, seedLen)
	}
	doneB := waitJobState(t, tsB.URL, sub.Job.ID, "done")
	if !bytes.Equal(doneA.Result, doneB.Result) {
		t.Fatalf("seeded result differs:\nA: %s\nB: %s", doneA.Result, doneB.Result)
	}
}

// TestScenarioTopologyCertificate requires a cert-opted topology scan to
// attach a BD ratio certificate for the best ring point, checkable by the
// client without trusting the server.
func TestScenarioTopologyCertificate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, raw := postJSON(t, ts.URL, "/v1/scenario",
		ScenarioRequest{Kind: "topology", Families: []string{"ring"}, Count: 2, N: 5, Grid: 4, Seed: 3, Cert: true})
	if status != http.StatusOK {
		t.Fatalf("scenario: %d %s", status, raw)
	}
	var resp ScenarioResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Topology == nil || resp.Topology.Certificate == nil {
		t.Fatalf("no certificate attached: %s", raw)
	}
	if err := cert.Check(resp.Topology.Certificate); err != nil {
		t.Fatalf("client-side certificate check: %v", err)
	}
}

// TestScenarioValidation pins the stable error codes of the scenario
// request surface.
func TestScenarioValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ring := WireGraph{Ring: []string{"1", "2", "3", "4", "5"}}
	cases := []struct {
		name string
		code string
		req  ScenarioRequest
	}{
		{"missing_kind", CodeBadBody, ScenarioRequest{}},
		{"unknown_kind", CodeBadBody, ScenarioRequest{Kind: "quantum"}},
		{"k_too_big", CodeScenarioLimit, ScenarioRequest{Kind: "ksybil", Graph: ring, V: 0, K: 9}},
		{"points_blowup", CodeScenarioLimit, ScenarioRequest{Kind: "ksybil", Graph: ring, V: 0, K: 8, Grid: 512}},
		{"not_ring", CodeNotRing, ScenarioRequest{Kind: "ksybil", Graph: WireGraph{Path: []string{"1", "2", "3"}}, V: 0}},
		{"bad_agent", CodeBadAgent, ScenarioRequest{Kind: "ksybil", Graph: ring, V: 9}},
		{"bad_graph", CodeBadGraph, ScenarioRequest{Kind: "coalition", Graph: WireGraph{Ring: []string{"1", "-2", "3"}}, Members: []int{0, 1}}},
		{"dup_member", CodeBadAgent, ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{1, 1}}},
		{"member_range", CodeBadAgent, ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{0, 7}}},
		{"too_many_members", CodeScenarioLimit, ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{0, 1, 2, 3, 4}}},
		{"coalition_blowup", CodeScenarioLimit, ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{0, 1, 2, 3}, Grid: 9}},
		{"unknown_family", CodeUnknownTopology, ScenarioRequest{Kind: "topology", Families: []string{"torus"}}},
		{"dup_family", CodeBadBody, ScenarioRequest{Kind: "topology", Families: []string{"ring", "ring"}}},
		{"bad_dist", CodeBadBody, ScenarioRequest{Kind: "topology", Dist: "zipf"}},
		{"small_n", CodeScenarioLimit, ScenarioRequest{Kind: "topology", N: 4}},
		{"grid_one", CodeBadGrid, ScenarioRequest{Kind: "topology", Grid: 1}},
		{"cert_wrong_kind", CodeCertLimit, ScenarioRequest{Kind: "ksybil", Graph: ring, V: 0, Cert: true}},
		{"cert_bad_mech", CodeCertLimit, ScenarioRequest{Kind: "topology", Mechanism: "eqsplit", Cert: true}},
		{"cert_no_ring", CodeCertLimit, ScenarioRequest{Kind: "topology", Families: []string{"tree"}, Cert: true}},
		{"unknown_mech", CodeUnknownMechanism, ScenarioRequest{Kind: "ksybil", Graph: ring, V: 0, Mechanism: "quantum"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL, "/v1/scenario", tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d: %s", status, raw)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Code != tc.code {
				t.Fatalf("code %q (err %v), want %q: %s", er.Code, err, tc.code, raw)
			}
		})
	}
}

// TestScenarioJobKindConflict rejects a submission whose nested scenario
// kind contradicts the job kind.
func TestScenarioJobKindConflict(t *testing.T) {
	_, ts := jobsTestServer(t)
	ring := WireGraph{Ring: []string{"1", "2", "3"}}
	resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind:     "ksybil",
		Scenario: &ScenarioRequest{Kind: "coalition", Graph: ring, Members: []int{0, 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != CodeBadBody {
		t.Fatalf("code %q (err %v): %s", er.Code, err, body)
	}
}

// TestJobListKindFilter exercises the ?kind= filter of GET /v1/jobs.
func TestJobListKindFilter(t *testing.T) {
	_, ts := jobsTestServer(t)
	ring := WireGraph{Ring: []string{"1", "2", "3", "4", "5"}}
	resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 1, Grid: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d %s", resp.StatusCode, body)
	}
	sr := ScenarioRequest{Kind: "ksybil", Graph: ring, V: 1, K: 2, Grid: 4}
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "ksybil", Scenario: &sr})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ksybil submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts.URL, sub.Job.ID, "done")

	var list JobListResponse
	jobsGet(t, ts.URL+"/v1/jobs?kind=ksybil", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].Kind != "ksybil" {
		t.Fatalf("kind filter answered %+v", list.Jobs)
	}
	if list.Jobs[0].TotalPoints != 5 {
		t.Fatalf("total_points %d, want 5", list.Jobs[0].TotalPoints)
	}
	var all JobListResponse
	jobsGet(t, ts.URL+"/v1/jobs", &all)
	if len(all.Jobs) != 2 {
		t.Fatalf("unfiltered list has %d jobs", len(all.Jobs))
	}
	if resp := jobsGet(t, ts.URL+"/v1/jobs?kind=quantum", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind filter: %d", resp.StatusCode)
	}
}

package server

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"testing"
)

// Resume-token validation at the edges of its domain: the smallest legal
// ring (n=3), the smallest legal grid (grid=1, two points), and tokens whose
// embedded request does not match the one they are replayed against. Tokens
// are minted with the server's own codec — package-internal access keeps the
// tests independent of timing (no need to force a real partial response).

// sweepWith posts a sweep with the given resume token and returns the
// status plus decoded error (nil on 200).
func sweepWith(t *testing.T, base string, req SweepRequest, tok resumeToken) (int, *ErrorResponse) {
	t.Helper()
	req.Resume = encodeResumeToken(tok)
	status, raw := postJSON(t, base, "/v1/sweep", req)
	if status == http.StatusOK {
		return status, nil
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decode error body: %v\n%s", err, raw)
	}
	return status, &er
}

func TestResumeTokenEdgeCases(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueueDepth: -1})
	ring := WireGraph{Ring: []string{"1", "2", "3"}} // minimal ring
	g, err := ring.Build()
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalKey(g)
	req := SweepRequest{Graph: ring, V: 1, Grid: 1} // single-step grid
	good := resumeToken{Key: key, V: 1, Grid: 1}

	// A full uninterrupted run of the tiny request, as the reference.
	var want SweepResponse
	mustPost(t, ts.URL, "/v1/sweep", req, &want)
	if len(want.Points) != 2 {
		t.Fatalf("grid=1 sweep has %d points, want 2", len(want.Points))
	}

	// Next=0 resumes from the start and must reproduce the whole response.
	fromStart := req
	fromStart.Resume = encodeResumeToken(good)
	var fromZero SweepResponse
	mustPost(t, ts.URL, "/v1/sweep", fromStart, &fromZero)
	if len(fromZero.Points) != 2 || fromZero.Ratio != want.Ratio {
		t.Fatalf("Next=0 resume diverged: %+v vs %+v", fromZero, want)
	}

	// Next=grid is the last valid index: exactly the final point remains.
	tok := good
	tok.Next = 1
	tail := req
	tail.Resume = encodeResumeToken(tok)
	var fromOne SweepResponse
	mustPost(t, ts.URL, "/v1/sweep", tail, &fromOne)
	if fromOne.StartIndex != 1 || len(fromOne.Points) != 1 {
		t.Fatalf("Next=grid resume: %+v", fromOne)
	}
	if fromOne.Points[0] != want.Points[1] {
		t.Fatalf("resumed tail point %+v != reference %+v", fromOne.Points[0], want.Points[1])
	}

	// Out-of-range indices on the single-step grid: both sides rejected.
	for _, next := range []int{-1, 2} {
		tok := good
		tok.Next = next
		status, er := sweepWith(t, ts.URL, req, tok)
		if status != http.StatusBadRequest || er.Code != CodePartialResult {
			t.Fatalf("Next=%d: got %d %+v, want 400 %s", next, status, er, CodePartialResult)
		}
	}

	// Grid mismatch: token minted for grid=1 replayed against other grids,
	// including grid=0 (which the server defaults to 64 — the token must be
	// compared against the effective grid, not the literal request field).
	for _, grid := range []int{2, 64, 0} {
		mismatched := req
		mismatched.Grid = grid
		status, er := sweepWith(t, ts.URL, mismatched, good)
		if status != http.StatusBadRequest || er.Code != CodePartialResult {
			t.Fatalf("grid=%d with grid=1 token: got %d %+v, want 400 %s", grid, status, er, CodePartialResult)
		}
	}
	// ... and the exact complement: a grid=64 token against a grid=0 request
	// must be ACCEPTED, because 0 means 64.
	tok64 := resumeToken{Key: key, V: 1, Grid: 64, Next: 3}
	defaulted := SweepRequest{Graph: ring, V: 1, Grid: 0}
	if status, er := sweepWith(t, ts.URL, defaulted, tok64); status != http.StatusOK {
		t.Fatalf("grid=64 token against defaulted grid: %d %+v", status, er)
	}

	// Agent mismatch on the minimal ring.
	otherV := req
	otherV.V = 2
	if status, er := sweepWith(t, ts.URL, otherV, good); status != http.StatusBadRequest || er.Code != CodePartialResult {
		t.Fatalf("agent mismatch: %d %+v", status, er)
	}

	// Key mismatch: same shape, one weight changed — canonicalization must
	// distinguish them.
	otherG := req
	otherG.Graph = WireGraph{Ring: []string{"1", "2", "4"}}
	if status, er := sweepWith(t, ts.URL, otherG, good); status != http.StatusBadRequest || er.Code != CodePartialResult {
		t.Fatalf("key mismatch: %d %+v", status, er)
	}

	// Weight spelling must NOT matter: "2/1" canonicalizes to "2", so the
	// token still matches.
	respelled := req
	respelled.Graph = WireGraph{Ring: []string{"1", "2/1", "3"}}
	if status, er := sweepWith(t, ts.URL, respelled, good); status != http.StatusOK {
		t.Fatalf("respelled graph rejected the token: %d %+v", status, er)
	}

	// Structurally broken tokens: bad base64, wrong version, wrong field
	// count, non-numeric fields.
	enc := func(raw string) string { return base64.RawURLEncoding.EncodeToString([]byte(raw)) }
	for _, bad := range []string{
		"%%%not-base64%%%",
		encodeResumeToken(good) + "x",
		enc("rs2|1|1|0|" + key), // unknown version
		enc("rs1|1|1|" + key),   // missing a field
		enc("rs1|1|1|abc|" + key),
		enc("rs1|x|1|0|" + key),
		enc("rs1|1|x|0|" + key),
	} {
		r := req
		r.Resume = bad
		status, raw := postJSON(t, ts.URL, "/v1/sweep", r)
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("decode error body: %v\n%s", err, raw)
		}
		if status != http.StatusBadRequest || er.Code != CodePartialResult {
			t.Fatalf("malformed token %q: got %d %+v, want 400 %s", bad, status, er, CodePartialResult)
		}
	}
}

package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotVersion tags the snapshot layout so a future change rejects old
// files loudly instead of misreading them.
const snapshotVersion = 1

// snapshot is the compacted store state: every live record (points
// included) plus the submission-sequence high-water mark. It is written
// atomically — tmp file, fsync, rename, directory fsync — so a crash
// during compaction leaves either the old snapshot or the new one, never a
// torn file.
type snapshot struct {
	Version int       `json:"version"`
	Seq     uint64    `json:"seq"`
	Jobs    []*Record `json:"jobs"`
}

const (
	snapshotName = "snapshot.json"
	walName      = "jobs.wal"
)

// loadSnapshot reads dir's snapshot, if any. A missing file is an empty
// store, not an error.
func loadSnapshot(dir string) (*snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return &snapshot{Version: snapshotVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: read snapshot: %w", err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("jobs: parse snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("jobs: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	return &s, nil
}

// writeSnapshot atomically replaces dir's snapshot with s.
func writeSnapshot(dir string, s *snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("jobs: encode snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: create snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: publish snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Some platforms refuse to fsync directories; that only weakens
// durability of the rename, not correctness, so such errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

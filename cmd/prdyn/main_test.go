package main

import (
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestDynamicsMode(t *testing.T) {
	out, err := runCapture(t, "-path", "1,100,2", "-rounds", "2000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dynamics:") || !strings.Contains(out, "exact 100/3") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSwarmMode(t *testing.T) {
	out, err := runCapture(t, "-ring", "1,7,2,9,3", "-rounds", "500", "-swarm", "-track", "0,2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "swarm:") || !strings.Contains(out, "agent 0 history") {
		t.Errorf("output:\n%s", out)
	}
}

func TestDampedDynamics(t *testing.T) {
	out, err := runCapture(t, "-ring", "1,7,2,9,3", "-rounds", "2000", "-damping", "0.4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dynamics:") {
		t.Errorf("output:\n%s", out)
	}
}

func TestPrdynErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no graph
		{"-ring", "1,2,3", "-path", "1,2"},    // two graphs
		{"-ring", "a,b,c"},                    // bad weights
		{"-ring", "1,2,3", "-damping", "1.5"}, // bad damping
		{"-ring", "1,2,3", "-swarm", "-track", "zz"}, // bad track list
		{"-in", "/nonexistent"},
	}
	for _, args := range cases {
		if _, err := runCapture(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestNewAndBasicOps(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("New(4): N=%d M=%d", g.N(), g.M())
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 1)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("Degree wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestWeights(t *testing.T) {
	g := New(3)
	g.MustSetWeight(0, numeric.New(1, 2))
	g.MustSetWeight(1, numeric.FromInt(3))
	if err := g.SetWeight(2, numeric.FromInt(-1)); err == nil {
		t.Error("negative weight accepted")
	}
	if !g.TotalWeight().Equal(numeric.New(7, 2)) {
		t.Errorf("TotalWeight = %v", g.TotalWeight())
	}
	if !g.WeightOf([]int{0, 1}).Equal(numeric.New(7, 2)) {
		t.Errorf("WeightOf = %v", g.WeightOf([]int{0, 1}))
	}
	if err := g.SetWeights(numeric.Ints(1, 2)); err == nil {
		t.Error("SetWeights with wrong length accepted")
	}
}

func TestNeighborhoodSet(t *testing.T) {
	// Path 0-1-2-3.
	g := Path(numeric.Ints(1, 1, 1, 1))
	if got := g.NeighborhoodSet([]int{0}); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Γ({0}) = %v", got)
	}
	if got := g.NeighborhoodSet([]int{1, 2}); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("Γ({1,2}) = %v (inclusive neighborhood expected)", got)
	}
	if got := g.NeighborhoodSet([]int{0, 3}); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Γ({0,3}) = %v", got)
	}
	if got := g.NeighborhoodSet(nil); len(got) != 0 {
		t.Errorf("Γ(∅) = %v", got)
	}
}

func TestIsIndependent(t *testing.T) {
	g := Ring(numeric.Ints(1, 1, 1, 1, 1))
	if !g.IsIndependent([]int{0, 2}) {
		t.Error("{0,2} should be independent on C5")
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Error("{0,1} should not be independent on C5")
	}
	if !g.IsIndependent(nil) {
		t.Error("empty set should be independent")
	}
}

func TestEdgesAndClone(t *testing.T) {
	g := Ring(numeric.Ints(1, 2, 3))
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v", got)
	}
	c := g.Clone()
	c.MustSetWeight(0, numeric.FromInt(99))
	if !g.Weight(0).Equal(numeric.One) {
		t.Error("Clone shares weights")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone Validate: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Ring(numeric.Ints(1, 2, 3, 4, 5))
	sub, orig := g.InducedSubgraph([]int{3, 0, 4})
	if !reflect.DeepEqual(orig, []int{0, 3, 4}) {
		t.Fatalf("orig = %v", orig)
	}
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	// Edges among {0,3,4} in C5: (3,4) and (4,0).
	if sub.M() != 2 || !sub.HasEdge(1, 2) || !sub.HasEdge(0, 2) || sub.HasEdge(0, 1) {
		t.Fatalf("induced edges wrong: %v", sub.Edges())
	}
	if !sub.Weight(1).Equal(numeric.FromInt(4)) {
		t.Errorf("induced weight = %v", sub.Weight(1))
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(3, 4)
	comps := g.Components()
	want := [][]int{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("Components = %v", comps)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !New(0).IsConnected() {
		t.Error("empty graph should be connected")
	}
}

func TestIsRingIsPath(t *testing.T) {
	ring := Ring(numeric.Ints(1, 1, 1, 1))
	if !ring.IsRing() || ring.IsPath() {
		t.Error("C4 misclassified")
	}
	path := Path(numeric.Ints(1, 1, 1))
	if path.IsRing() || !path.IsPath() {
		t.Error("P3 misclassified")
	}
	single := Path(numeric.Ints(1))
	if !single.IsPath() {
		t.Error("single vertex should be a path")
	}
	// Two disjoint triangles: all degree 2, not connected.
	two := New(6)
	two.MustAddEdge(0, 1)
	two.MustAddEdge(1, 2)
	two.MustAddEdge(2, 0)
	two.MustAddEdge(3, 4)
	two.MustAddEdge(4, 5)
	two.MustAddEdge(5, 3)
	if two.IsRing() {
		t.Error("disjoint triangles reported as ring")
	}
}

func TestPathOrder(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(3, 1)
	order, err := g.PathOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Path is 2-0-3-1; lower-indexed endpoint is 1 or 2 → starts at 1.
	if !reflect.DeepEqual(order, []int{1, 3, 0, 2}) && !reflect.DeepEqual(order, []int{2, 0, 3, 1}) {
		t.Fatalf("PathOrder = %v", order)
	}
	if _, err := Ring(numeric.Ints(1, 1, 1)).PathOrder(); err == nil {
		t.Error("PathOrder on ring should fail")
	}
}

func TestRingOrder(t *testing.T) {
	g := Ring(numeric.Ints(1, 1, 1, 1, 1))
	order, err := g.RingOrder(2)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 2 || len(order) != 5 {
		t.Fatalf("RingOrder = %v", order)
	}
	// Consecutive entries must be adjacent, and it must wrap around.
	for i := range order {
		if !g.HasEdge(order[i], order[(i+1)%len(order)]) {
			t.Fatalf("RingOrder %v not cyclic at %d", order, i)
		}
	}
	if _, err := Path(numeric.Ints(1, 1)).RingOrder(0); err == nil {
		t.Error("RingOrder on path should fail")
	}
}

func TestLabels(t *testing.T) {
	g := New(2)
	if g.Label(1) != "v1" {
		t.Errorf("default label = %q", g.Label(1))
	}
	g.SetLabel(1, "attacker")
	if g.Label(1) != "attacker" {
		t.Errorf("label = %q", g.Label(1))
	}
}

func TestQuickRandomConnectedIsConnectedAndValid(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw)%20 + 1
		p := float64(pRaw) / 255.0
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(rng, n, p, DistUniform)
		return g.IsConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNeighborhoodMonotone(t *testing.T) {
	// Γ is monotone: S ⊆ T ⇒ Γ(S) ⊆ Γ(T).
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%15 + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(rng, n, 0.3, DistUnit)
		var S, T []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				T = append(T, v)
				if rng.Intn(2) == 0 {
					S = append(S, v)
				}
			}
		}
		gs := g.NeighborhoodSet(S)
		gt := make(map[int]bool)
		for _, v := range g.NeighborhoodSet(T) {
			gt[v] = true
		}
		for _, v := range gs {
			if !gt[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

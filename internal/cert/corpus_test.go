package cert_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/sybil"
)

// TestRegenerateFuzzCorpus rebuilds the seeded FuzzCertRoundTrip corpus
// from solver-built certificates when REGEN_CORPUS=1; otherwise it verifies
// that every committed seed still decodes and checks, so corpus rot shows
// up in plain `go test` rather than only under the fuzzer.
func TestRegenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCertRoundTrip")
	regen := os.Getenv("REGEN_CORPUS") == "1"
	ctx := context.Background()

	var seeds [][]byte
	addJSON := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	// Solver-built certificates across the three schemas, including a
	// zero-weight cluster and the near-tight two-heavy-vertices shape.
	for _, ws := range [][]int64{{1, 1, 1}, {3, 1, 2, 1, 5}, {1, 100, 1, 1, 100, 1}, {0, 0, 0}} {
		g := ringOf(ws)
		in, err := core.NewInstanceCtx(ctx, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: 8})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := build.Ratio(ctx, in, opt)
		if err != nil {
			t.Fatal(err)
		}
		addJSON(rc)
		addJSON(&rc.Ring)
		res, err := sybil.SweepInstanceCtx(ctx, in, sybil.SweepOptions{Grid: 4})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := build.Sweep(ctx, in, res, 4)
		if err != nil {
			t.Fatal(err)
		}
		addJSON(sc)
	}

	if regen {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			// The corpus stores []byte arguments as quoted Go strings.
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus seeds to %s", len(seeds), dir)
		return
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seeded corpus missing (run with REGEN_CORPUS=1): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seeded corpus directory is empty")
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: each committed seed contains a decodable, checkable
		// certificate (format: "go test fuzz v1\n[]byte("...")\n").
		var payload string
		if _, err := fmt.Sscanf(string(b), "go test fuzz v1\n[]byte(%q)", &payload); err != nil {
			t.Fatalf("%s: unexpected corpus format: %v", e.Name(), err)
		}
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal([]byte(payload), &probe); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		var c cert.Checkable
		switch probe.Schema {
		case cert.SchemaDecomposition:
			c = new(cert.DecompositionCert)
		case cert.SchemaRatio:
			c = new(cert.RatioCert)
		case cert.SchemaSweep:
			c = new(cert.SweepCert)
		default:
			t.Fatalf("%s: unknown schema %q", e.Name(), probe.Schema)
		}
		if err := json.Unmarshal([]byte(payload), c); err != nil {
			t.Fatalf("%s: decode: %v", e.Name(), err)
		}
		if err := cert.Check(c); err != nil {
			t.Fatalf("%s: seed no longer checks: %v", e.Name(), err)
		}
	}
}

package analysis

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// AlphaStar locates the exact crossing point x* of Proposition 11 Case B-3:
// the report at which agent v's α-ratio reaches 1 and its class flips from
// C to B. It returns the crossing as an exact rational (recovered with
// Stern–Brocot snapping from a bisection bracket) together with the case
// classification:
//
//   - CaseB1: v is C class for every report; x* does not exist (w_v is
//     returned as the bracket edge).
//   - CaseB2: v is B class for every report; x* = 0.
//   - CaseB3: the crossing exists in (0, w_v]; x* is exact whenever it is
//     the simplest rational inside the final bracket (always, in practice:
//     breakpoints are ratios of small weight sums) and satisfies
//     α_v(x*) = 1 exactly, which is verified before returning.
func AlphaStar(g *graph.Graph, v int, bisectIters int) (numeric.Rat, AlphaCase, error) {
	if v < 0 || v >= g.N() {
		return numeric.Rat{}, CaseB1, fmt.Errorf("analysis: vertex %d out of range", v)
	}
	if bisectIters <= 0 {
		bisectIters = 60
	}
	w := g.Weight(v)
	if w.IsZero() {
		return numeric.Rat{}, CaseB1, fmt.Errorf("analysis: zero-weight agent has no α curve")
	}
	classAt := func(x numeric.Rat) (bottleneck.Class, error) {
		pt, err := evalReport(g, v, x)
		if err != nil {
			return bottleneck.ClassNone, err
		}
		return pt.Class, nil
	}
	top, err := classAt(w)
	if err != nil {
		return numeric.Rat{}, CaseB1, err
	}
	if top != bottleneck.ClassB {
		// v never becomes strictly B class (a ClassBoth truthful report is
		// the α = 1 plateau, counted as C by the paper's convention):
		// Case B-1.
		return w, CaseB1, nil
	}
	// Probe a tiny positive report: if already strictly B class, Case B-2.
	tiny := w.DivInt(1 << 20)
	low, err := classAt(tiny)
	if err != nil {
		return numeric.Rat{}, CaseB1, err
	}
	if low == bottleneck.ClassB {
		return numeric.Zero, CaseB2, nil
	}
	// Bisect the boundary of the strictly-B region. α_v may sit at 1 on a
	// whole plateau of ClassBoth reports; x* is the plateau's right edge,
	// the last report with α_v = 1.
	lo, hi := tiny, w
	for it := 0; it < bisectIters && lo.Less(hi); it++ {
		mid := lo.Add(hi).DivInt(2)
		c, err := classAt(mid)
		if err != nil {
			return numeric.Rat{}, CaseB3, err
		}
		if c == bottleneck.ClassB {
			hi = mid
		} else {
			lo = mid
		}
	}
	// The bracket (lo, hi) now pins the plateau's right edge: lo has
	// α_v = 1 (class C or Both), hi is strictly B. The edge is a breakpoint
	// — a ratio of weight sums — hence the simplest rational inside the
	// bracket. Verify both halves of its defining property exactly.
	if !lo.Less(hi) {
		return numeric.Rat{}, CaseB3, fmt.Errorf("analysis: degenerate crossing bracket at %v", lo)
	}
	cand := numeric.SimplestBetween(lo, hi)
	pt, err := evalReport(g, v, cand)
	if err != nil {
		return numeric.Rat{}, CaseB3, err
	}
	if !pt.Alpha.Equal(numeric.One) {
		return numeric.Rat{}, CaseB3, fmt.Errorf("analysis: bracket (%v, %v) snapped to %v with α = %v ≠ 1",
			lo, hi, cand, pt.Alpha)
	}
	above, err := evalReport(g, v, cand.Add(hi).DivInt(2))
	if err != nil {
		return numeric.Rat{}, CaseB3, err
	}
	if above.Class != bottleneck.ClassB {
		return numeric.Rat{}, CaseB3, fmt.Errorf("analysis: %v is not the plateau edge (class %v just above)",
			cand, above.Class)
	}
	return cand, CaseB3, nil
}

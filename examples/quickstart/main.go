// Quickstart: build a ring of resource-sharing agents, compute its
// bottleneck decomposition and equilibrium allocation, then measure how
// much one agent can gain from a Sybil attack — the quantity Theorem 8
// bounds by 2.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()

	// Nine agents on a ring: one rich peer (weight 100) and eight unit
	// peers. Agent 3 will be our manipulator.
	g := repro.Ring(repro.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1))

	// 1. The bottleneck decomposition drives everything (Definition 2).
	// The solver entry points are context-first and take functional options
	// (repro.WithEngine, repro.WithWorkers, repro.WithRecorder, ...).
	dec, err := repro.Decompose(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bottleneck decomposition:", dec)

	// 2. The BD Allocation Mechanism computes the proportional-response
	// equilibrium exactly (Definition 5 / Proposition 6). Reuse the
	// decomposition from step 1 instead of recomputing it.
	alloc, err := repro.Allocate(ctx, g, repro.WithDecomposition(dec))
	if err != nil {
		log.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  agent %d: weight %-4s class %-4s utility %s\n",
			v, g.Weight(v), dec.ClassOf(v), alloc.Utility(v))
	}

	// 3. The dynamics converge to the same utilities (Proposition 6).
	dyn, err := repro.RunDynamics(g, repro.DynamicsOptions{MaxRounds: 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamics after %d rounds: U(3) = %.6f (exact %s)\n",
		dyn.Rounds, dyn.Utilities[3], alloc.Utility(3))

	// 4. Agent 3's best Sybil attack (exactly optimized; ≤ 2 by Theorem 8).
	// A TraceCapture recorder keeps the solve's span tree — the same
	// observability the irshared service exposes at /debug/trace.
	rec := &repro.TraceCapture{}
	ratio, err := repro.IncentiveRatio(ctx, g, 3, repro.WithRecorder(rec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incentive ratio of agent 3: %s ≈ %.6f (Theorem 8 caps it at 2)\n",
		ratio, ratio.Float64())
	if snap := rec.Last(); snap != nil {
		evals := int64(0)
		snap.Root.Walk(func(sp *repro.SpanSnapshot) { evals += sp.Counter("evals") })
		fmt.Printf("trace %q: %v total, %d optimizer evals recorded\n",
			snap.Name, snap.Duration, evals)
	}
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// E5Theorem8UpperBound sweeps random rings and reports the worst incentive
// ratio per (size, distribution) cell; every exactly-evaluated ratio must be
// ≤ 2.
func E5Theorem8UpperBound(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E5 / Theorem 8 — incentive ratio upper bound on random rings",
		"n", "dist", "instances", "max ratio", "argmax weights", "cache hit", "warm dink", "all <= 2")
	two := numeric.Two
	for _, n := range s.RingSizes {
		for _, dist := range []graph.WeightDist{graph.DistUniform, graph.DistSkewed, graph.DistPowers} {
			worst := numeric.One
			var worstW string
			var st core.EvalStats
			for trial := 0; trial < s.Trials; trial++ {
				g := graph.RandomRing(rng, n, dist)
				v := rng.Intn(n)
				in, err := core.NewInstance(g, v)
				if err != nil {
					return t, fmt.Errorf("E5 (n=%d, %v): %w", n, dist, err)
				}
				opt, err := in.Optimize(core.OptimizeOptions{Grid: s.OptGrid})
				if err != nil {
					return t, fmt.Errorf("E5 (n=%d, %v): %w", n, dist, err)
				}
				accumulateStats(&st, in.EvalStats())
				ratio := opt.Ratio
				if two.Less(ratio) {
					return t, fmt.Errorf("E5: ratio %v > 2 on ring %v (v=%d)", ratio, g.Weights(), v)
				}
				if worst.Less(ratio) {
					worst = ratio
					worstW = fmt.Sprintf("%v@%d", g.Weights(), v)
				}
			}
			t.Add(n, dist, s.Trials, fmtF(worst.Float64()), worstW,
				hitRate(st.CacheHits, st.CacheMisses), hitRate(int64(st.Solver.Stage1Warm+st.Solver.LaterWarm), int64(st.Solver.Stage1Cold+st.Solver.LaterCold)), true)
		}
	}
	t.Note("Theorem 8 upper bound verified with exact rational comparisons; cache hit = eval-cache, warm dink = warm-started Dinkelbach runs")
	return t, nil
}

// E6LowerBoundFamily measures the family of rings whose ratio tends to 2:
// odd ring of 2k+5 unit vertices plus one heavy vertex, attacker at ring
// distance 3 (located by search, matching the lower bound of [5]).
func E6LowerBoundFamily(ks []int, heavy numeric.Rat, optGrid int) (*Table, error) {
	if len(ks) == 0 {
		ks = []int{0, 1, 2, 4, 8}
	}
	if heavy.IsZero() {
		heavy = numeric.FromInt(1000000)
	}
	t := NewTable("E6 / Theorem 8 tightness — lower-bound family ratio -> 2",
		"k", "n", "heavy H", "measured ratio", "limit (2k+1)/(k+1)", "gap to 2", "evals (cached)")
	prev := numeric.Zero
	for _, k := range ks {
		g, v, err := core.LowerBoundFamily(k, heavy)
		if err != nil {
			return t, err
		}
		in, err := core.NewInstance(g, v)
		if err != nil {
			return t, fmt.Errorf("E6 k=%d: %w", k, err)
		}
		opt, err := in.Optimize(core.OptimizeOptions{Grid: optGrid})
		if err != nil {
			return t, fmt.Errorf("E6 k=%d: %w", k, err)
		}
		ratio := opt.Ratio
		limit := core.LowerBoundLimitRatio(k)
		if numeric.Two.Less(ratio) {
			return t, fmt.Errorf("E6 k=%d: ratio %v > 2", k, ratio)
		}
		if ratio.Less(prev) {
			return t, fmt.Errorf("E6 k=%d: family ratio not monotone (%v after %v)", k, ratio, prev)
		}
		prev = ratio
		st := in.EvalStats()
		t.Add(k, 2*k+5, heavy, fmtF(ratio.Float64()), limit.String(),
			fmtF(2-ratio.Float64()), fmt.Sprintf("%d (%d)", st.CacheMisses, st.CacheHits))
	}
	t.Note("ratio increases toward 2 along the family; limit formula (2k+1)/(k+1); evals = distinct splits decomposed, (cached) = re-served from the eval cache")
	return t, nil
}

// accumulateStats folds one instance's evaluation counters into a running
// total for a table cell.
func accumulateStats(dst *core.EvalStats, s core.EvalStats) {
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.Solver.Evals += s.Solver.Evals
	dst.Solver.Fallbacks += s.Solver.Fallbacks
	dst.Solver.Stage1Warm += s.Solver.Stage1Warm
	dst.Solver.Stage1Cold += s.Solver.Stage1Cold
	dst.Solver.WarmRestarts += s.Solver.WarmRestarts
	dst.Solver.TransferHits += s.Solver.TransferHits
	dst.Solver.TransferMisses += s.Solver.TransferMisses
	dst.Solver.TailHits += s.Solver.TailHits
	dst.Solver.TailMisses += s.Solver.TailMisses
	dst.Solver.LaterWarm += s.Solver.LaterWarm
	dst.Solver.LaterCold += s.Solver.LaterCold
}

// hitRate renders hits/(hits+misses) as a percentage table cell.
func hitRate(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
}

// E7Lemma9 verifies Lemma 9 exactly across random rings: the honest split
// is utility-neutral.
func E7Lemma9(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E7 / Lemma 9 — honest split is utility-neutral",
		"n", "dist", "instances", "exact matches")
	for _, n := range s.RingSizes {
		for _, dist := range []graph.WeightDist{graph.DistUniform, graph.DistUnit, graph.DistPowers} {
			matches := 0
			for trial := 0; trial < s.Trials; trial++ {
				g := graph.RandomRing(rng, n, dist)
				v := rng.Intn(n)
				in, err := core.NewInstance(g, v)
				if err != nil {
					return t, fmt.Errorf("E7: %w", err)
				}
				ev, err := in.HonestSplitEval()
				if err != nil {
					return t, fmt.Errorf("E7: %w", err)
				}
				if !ev.U.Equal(in.HonestU) {
					return t, fmt.Errorf("E7: Lemma 9 fails on %v (v=%d): %v vs %v",
						g.Weights(), v, ev.U, in.HonestU)
				}
				matches++
			}
			t.Add(n, dist, s.Trials, matches)
		}
	}
	t.Note("U_v(w1_0, w2_0) = U_v held with exact equality on every instance")
	return t, nil
}

// E8Theorem10 verifies monotone non-decreasing misreport utility across
// random rings and general graphs.
func E8Theorem10(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E8 / Theorem 10 — U_v(x) monotone non-decreasing",
		"family", "instances", "samples per curve", "violations")
	families := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"random rings", func() *graph.Graph {
			return graph.RandomRing(rng, s.RingSizes[rng.Intn(len(s.RingSizes))], graph.WeightDist(rng.Intn(3)))
		}},
		{"random connected", func() *graph.Graph {
			return graph.RandomConnected(rng, rng.Intn(6)+3, 0.5, graph.WeightDist(rng.Intn(3)))
		}},
	}
	const samples = 32
	for _, fam := range families {
		for trial := 0; trial < 2*s.Trials; trial++ {
			g := fam.gen()
			v := rng.Intn(g.N())
			curve, err := analysis.SampleCurve(g, v, samples)
			if err != nil {
				return t, fmt.Errorf("E8: %w", err)
			}
			if err := analysis.VerifyTheorem10(curve); err != nil {
				return t, fmt.Errorf("E8 (%s, w=%v, v=%d): %w", fam.name, g.Weights(), v, err)
			}
		}
		t.Add(fam.name, 2*s.Trials, samples, 0)
	}
	t.Note("monotonicity verified with exact comparisons at every sample")
	return t, nil
}

// E9StageDeltas verifies the per-stage utility deltas' signs (Lemmas 16,
// 18, 19, 22, 24) at the optimizer's best split.
func E9StageDeltas(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E9 / stage analysis — per-stage deltas and lemma verdicts",
		"n", "dist", "instances", "C-class cases", "B-class cases", "adjusted", "all checks pass")
	for _, n := range s.RingSizes {
		for _, dist := range []graph.WeightDist{graph.DistUniform, graph.DistSkewed} {
			cC, cB, adj := 0, 0, 0
			for trial := 0; trial < s.Trials; trial++ {
				g := graph.RandomRing(rng, n, dist)
				v := rng.Intn(n)
				verdict, err := core.VerifyTheorem8(g, v, core.OptimizeOptions{Grid: s.OptGrid})
				if err != nil {
					return t, fmt.Errorf("E9: %w", err)
				}
				if !verdict.Stages.AllChecksPass() {
					for _, c := range verdict.Stages.Checks {
						if !c.Pass {
							return t, fmt.Errorf("E9 (w=%v, v=%d): %s: %s", g.Weights(), v, c.Name, c.Detail)
						}
					}
				}
				if verdict.Stages.VClass.IsC() {
					cC++
				} else {
					cB++
				}
				if verdict.Stages.Adjusted {
					adj++
				}
			}
			t.Add(n, dist, s.Trials, cC, cB, adj, true)
		}
	}
	t.Note("every δ/Δ sign matched its lemma; Adjusting Technique engaged where both identities shared a pair")
	return t, nil
}

// E11Misreport verifies that misreporting alone never gains on rings
// (truthfulness of [7] in the single-parameter deviation).
func E11Misreport(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E11 / misreport truthfulness on rings ([7])",
		"n", "dist", "instances", "reports per instance", "max gain")
	for _, n := range s.RingSizes {
		for _, dist := range []graph.WeightDist{graph.DistUniform, graph.DistPowers} {
			maxGain := 1.0
			const reports = 16
			for trial := 0; trial < s.Trials; trial++ {
				g := graph.RandomRing(rng, n, dist)
				v := rng.Intn(n)
				honest, err := sybil.HonestUtility(g, v)
				if err != nil {
					return t, fmt.Errorf("E11: %w", err)
				}
				for k := 0; k <= reports; k++ {
					x := g.Weight(v).MulInt(int64(k)).DivInt(reports)
					u, err := sybil.MisreportUtility(g, v, x)
					if err != nil {
						return t, fmt.Errorf("E11: %w", err)
					}
					if honest.Less(u) {
						return t, fmt.Errorf("E11: misreport gained on %v (v=%d, x=%v)", g.Weights(), v, x)
					}
					if honest.Sign() > 0 {
						if gain := u.Div(honest).Float64(); gain > maxGain {
							maxGain = gain
						}
					}
				}
			}
			t.Add(n, dist, s.Trials, reports+1, fmtF(maxGain))
		}
	}
	t.Note("no misreport ever exceeded the truthful utility (gain stays at 1)")
	return t, nil
}

// E13GeneralConjecture probes the conclusion's conjecture: on small general
// networks, exhaustive m-split Sybil search stays within ratio 2.
func E13GeneralConjecture(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	t := NewTable("E13 / conjecture — Sybil ratio on general networks",
		"family", "instances", "max ratio", "all <= 2")
	families := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"random connected n<=6", func() *graph.Graph {
			return graph.RandomConnected(rng, rng.Intn(4)+3, 0.5, graph.WeightDist(rng.Intn(3)))
		}},
		{"stars n<=6", func() *graph.Graph {
			return graph.Star(graph.RandomWeights(rng, rng.Intn(4)+3, graph.DistUniform))
		}},
		{"complete n<=5", func() *graph.Graph {
			return graph.Complete(graph.RandomWeights(rng, rng.Intn(3)+3, graph.DistUniform))
		}},
		{"trees n<=7", func() *graph.Graph {
			return graph.RandomTree(rng, rng.Intn(5)+3, graph.WeightDist(rng.Intn(3)))
		}},
		{"theta graphs", func() *graph.Graph {
			l1, l2, l3 := rng.Intn(2), rng.Intn(2)+1, rng.Intn(2)+1
			n := 2 + l1 + l2 + l3
			return graph.Theta(l1, l2, l3, graph.RandomWeights(rng, n, graph.DistUniform))
		}},
	}
	for _, fam := range families {
		worst := 1.0
		for trial := 0; trial < s.Trials; trial++ {
			g := fam.gen()
			v := rng.Intn(g.N())
			if g.Degree(v) == 0 {
				continue
			}
			res, err := sybil.Search(g, v, sybil.SearchOptions{GridResolution: 6})
			if err != nil {
				return t, fmt.Errorf("E13: %w", err)
			}
			if numeric.Two.Less(res.Ratio) {
				return t, fmt.Errorf("E13: conjecture violated: ratio %v on %v (v=%d)",
					res.Ratio, g.Weights(), v)
			}
			if r := res.Ratio.Float64(); r > worst {
				worst = r
			}
		}
		t.Add(fam.name, s.Trials, fmtF(worst), true)
	}
	t.Note("no searched strategy exceeded ratio 2, consistent with the paper's conjecture")
	return t, nil
}

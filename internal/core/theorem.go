package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// Verdict bundles the full Theorem 8 verification of one (ring, agent)
// instance: the optimizer's best split, the incentive ratio, and the
// stage-analysis report at the optimum.
type Verdict struct {
	Instance *Instance
	Opt      *OptResult
	Stages   *StageReport
	// Ratio is ζ_v as measured: best attack utility / honest utility.
	Ratio numeric.Rat
	// LeqTwo is the Theorem 8 statement ζ_v ≤ 2, checked exactly.
	LeqTwo bool
}

// VerifyTheorem8 optimizes the Sybil split of agent v on ring g and checks
// every assertion of the paper's proof along the way.
func VerifyTheorem8(g *graph.Graph, v int, opts OptimizeOptions) (*Verdict, error) {
	in, err := NewInstance(g, v)
	if err != nil {
		return nil, err
	}
	opt, err := in.Optimize(opts)
	if err != nil {
		return nil, err
	}
	stages, err := in.AnalyzeStages(opt.BestW1)
	if err != nil {
		return nil, err
	}
	return &Verdict{
		Instance: in,
		Opt:      opt,
		Stages:   stages,
		Ratio:    opt.Ratio,
		LeqTwo:   opt.Ratio.LessEq(numeric.Two),
	}, nil
}

// RingRatio is a convenience wrapper returning only ζ_v.
func RingRatio(g *graph.Graph, v int, opts OptimizeOptions) (numeric.Rat, error) {
	return RingRatioCtx(context.Background(), g, v, opts)
}

// RingRatioCtx is RingRatio with cancellation and tracing threaded through
// instance construction and the split optimization.
func RingRatioCtx(ctx context.Context, g *graph.Graph, v int, opts OptimizeOptions) (numeric.Rat, error) {
	in, err := NewInstanceCtx(ctx, g, v)
	if err != nil {
		return numeric.Rat{}, err
	}
	opt, err := in.OptimizeCtx(ctx, opts)
	if err != nil {
		return numeric.Rat{}, err
	}
	return opt.Ratio, nil
}

// LowerBoundFamily builds the ring family whose incentive ratio approaches
// the tight bound 2 (experiment E6), located by exhaustive search with this
// package's exact optimizer:
//
//	an odd ring of n = 2k+5 vertices, all of weight 1 except one heavy
//	vertex of weight H at position 0; the attacker sits at ring distance 3
//	from it.
//
// As H → ∞ the measured ratio converges to (2k+1)/(k+1), which increases to
// 2 as k → ∞ — matching the lower bound of 2 from Chen et al. [5] that
// Theorem 8 proves tight.
func LowerBoundFamily(k int, heavy numeric.Rat) (*graph.Graph, int, error) {
	if k < 0 {
		return nil, 0, fmt.Errorf("core: k must be non-negative, got %d", k)
	}
	if heavy.Sign() <= 0 {
		return nil, 0, fmt.Errorf("core: heavy weight must be positive, got %v", heavy)
	}
	n := 2*k + 5
	ws := make([]numeric.Rat, n)
	for i := range ws {
		ws[i] = numeric.One
	}
	ws[0] = heavy
	return graph.Ring(ws), 3, nil
}

// LowerBoundLimitRatio returns (2k+1)/(k+1), the H → ∞ incentive ratio of
// LowerBoundFamily(k, H).
func LowerBoundLimitRatio(k int) numeric.Rat {
	return numeric.New(2*int64(k)+1, int64(k)+1)
}

package repro_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro"
)

// TestWithMechanismBDEquivalence pins the mechanism registry's default
// routing: on the same 50-instance corpus as TestFacadeEquivalence, every
// facade call with an explicit WithMechanism("bd") — and with the empty
// name, which resolves to the default — returns bit-identical results to
// the bare call. This is the api_redesign contract: introducing the
// registry must not move a single byte of the default path.
func TestWithMechanismBDEquivalence(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		g := randomInstance(rng, i)

		base, err := repro.Decompose(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"bd", ""} {
			d, err := repro.Decompose(ctx, g, repro.WithMechanism(name))
			if err != nil {
				t.Fatalf("instance %d: Decompose(%q): %v", i, name, err)
			}
			sameDecomposition(t, g, base, d, "WithMechanism("+name+")")
		}

		want, err := repro.Allocate(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := repro.Allocate(ctx, g, repro.WithMechanism("bd"))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if !want.Utility(v).Equal(got.Utility(v)) {
				t.Fatalf("instance %d: allocation utility differs at %d", i, v)
			}
			for u := 0; u < g.N(); u++ {
				if !want.Get(v, u).Equal(got.Get(v, u)) {
					t.Fatalf("instance %d: transfer x[%d][%d] differs", i, v, u)
				}
			}
		}

		if i%3 == 0 { // rings
			v := i % g.N()
			r1, err := repro.IncentiveRatio(ctx, g, v)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := repro.IncentiveRatio(ctx, g, v, repro.WithMechanism("bd"))
			if err != nil {
				t.Fatal(err)
			}
			if !r1.Equal(r2) {
				t.Fatalf("instance %d: ratio differs: %v vs %v", i, r1, r2)
			}
			s1, err := repro.RingSweep(ctx, g, v, repro.WithGrid(12))
			if err != nil {
				t.Fatal(err)
			}
			s2, err := repro.RingSweep(ctx, g, v, repro.WithGrid(12), repro.WithMechanism("bd"))
			if err != nil {
				t.Fatal(err)
			}
			if len(s1.Points) != len(s2.Points) || !s1.Ratio.Equal(s2.Ratio) || !s1.BestU.Equal(s2.BestU) {
				t.Fatalf("instance %d: sweeps diverge", i)
			}
			for k := range s1.Points {
				if !s1.Points[k].W1.Equal(s2.Points[k].W1) || !s1.Points[k].U.Equal(s2.Points[k].U) {
					t.Fatalf("instance %d: sweep point %d differs", i, k)
				}
			}
		}
	}
}

// TestMechanismRegistryFacade exercises the non-default backends end to end
// through the facade, plus the registry's error contract.
func TestMechanismRegistryFacade(t *testing.T) {
	ctx := context.Background()

	infos := repro.Mechanisms()
	if len(infos) < 3 {
		t.Fatalf("registry lists %d mechanisms, want at least bd, eqsplit, pr", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("mechanism listing not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
	byName := map[string]repro.MechanismInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if !byName["bd"].Certifiable || !byName["bd"].ExactRatio {
		t.Fatalf("bd capabilities wrong: %+v", byName["bd"])
	}
	if byName["pr"].Certifiable || byName["eqsplit"].Certifiable {
		t.Fatal("non-bd mechanisms must not claim certifiability")
	}

	g := repro.Ring(repro.Ints(3, 1, 2, 1, 5))

	// Unknown names fail uniformly, naming the registry's contents.
	if _, err := repro.Allocate(ctx, g, repro.WithMechanism("quantum")); err == nil || !strings.Contains(err.Error(), "unknown mechanism") {
		t.Fatalf("unknown mechanism error = %v", err)
	}
	if _, err := repro.IncentiveRatio(ctx, g, 0, repro.WithMechanism("quantum")); err == nil {
		t.Fatal("IncentiveRatio accepted an unknown mechanism")
	}

	for _, name := range []string{"eqsplit", "pr"} {
		a, err := repro.Allocate(ctx, g, repro.WithMechanism(name))
		if err != nil {
			t.Fatalf("%s: Allocate: %v", name, err)
		}
		total := repro.NewRat(0, 1)
		for v := 0; v < g.N(); v++ {
			total = total.Add(a.Utility(v))
		}
		if !total.Equal(g.TotalWeight()) {
			t.Fatalf("%s: total utility %v != total weight %v", name, total, g.TotalWeight())
		}

		ratio, err := repro.IncentiveRatio(ctx, g, 0, repro.WithMechanism(name), repro.WithGrid(8))
		if err != nil {
			t.Fatalf("%s: IncentiveRatio: %v", name, err)
		}
		if ratio.Less(repro.NewRat(1, 1)) {
			t.Fatalf("%s: empirical ratio %v < 1", name, ratio)
		}

		res, err := repro.RingSweep(ctx, g, 0, repro.WithGrid(8), repro.WithMechanism(name))
		if err != nil {
			t.Fatalf("%s: RingSweep: %v", name, err)
		}
		if len(res.Points) != 9 {
			t.Fatalf("%s: sweep returned %d points, want 9", name, len(res.Points))
		}

		// Certificates stay a bd capability; non-bd requests fail loudly.
		var c repro.Certificate
		if _, err := repro.IncentiveRatio(ctx, g, 0, repro.WithMechanism(name), repro.WithCertificate(&c)); err == nil ||
			!strings.Contains(err.Error(), "certifiable") {
			t.Fatalf("%s: certificate request error = %v", name, err)
		}

		// Non-decomposition backends reject decomposition plumbing.
		d, err := repro.Decompose(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := repro.Allocate(ctx, g, repro.WithMechanism(name), repro.WithDecomposition(d)); err == nil {
			t.Fatalf("%s: WithDecomposition accepted by a non-decomposition mechanism", name)
		}
		if _, err := repro.Decompose(ctx, g, repro.WithMechanism(name)); err == nil {
			t.Fatalf("%s: Decompose accepted by a non-decomposition mechanism", name)
		}
	}
}
